//! Property-based tests for flows, packings, and connectivity.

use nab_netgraph::arborescence::{pack_arborescences, validate_packing};
use nab_netgraph::connectivity::{vertex_connectivity_pair, vertex_disjoint_paths};
use nab_netgraph::flow::{
    broadcast_rate, min_cut, min_cut_undirected, min_pairwise_cut_undirected,
};
use nab_netgraph::gen;
use nab_netgraph::treepack::{max_spanning_trees, pack_spanning_trees, validate_tree_packing};
use nab_netgraph::{DiGraph, UnGraph};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Strategy: a random strongly-connected digraph described by (n, seed,
/// density, max capacity).
fn arb_graph() -> impl Strategy<Value = DiGraph> {
    (4usize..8, any::<u64>(), 0.2f64..0.9, 1u64..5).prop_map(|(n, seed, p, cap)| {
        let mut rng = StdRng::seed_from_u64(seed);
        gen::random_connected(n, p, cap, &mut rng)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn mincut_bounded_by_degree_cuts(g in arb_graph()) {
        for t in 1..g.node_count() {
            let cut = min_cut(&g, 0, t);
            let in_cap: u64 = g.in_edges(t).map(|(_, e)| e.cap).sum();
            let out_cap: u64 = g.out_edges(0).map(|(_, e)| e.cap).sum();
            prop_assert!(cut <= in_cap);
            prop_assert!(cut <= out_cap);
        }
    }

    #[test]
    fn broadcast_rate_is_min_of_mincuts(g in arb_graph()) {
        let rate = broadcast_rate(&g, 0);
        let direct = (1..g.node_count()).map(|t| min_cut(&g, 0, t)).min().unwrap();
        prop_assert_eq!(rate, direct);
    }

    #[test]
    fn edmonds_packing_achieves_broadcast_rate(g in arb_graph()) {
        let rate = broadcast_rate(&g, 0);
        let trees = pack_arborescences(&g, 0, rate).expect("Edmonds guarantees a packing");
        prop_assert_eq!(trees.len() as u64, rate);
        prop_assert!(validate_packing(&g, 0, &trees).is_ok());
    }

    #[test]
    fn undirected_cut_at_least_directed(g in arb_graph()) {
        let u = UnGraph::from_digraph(&g);
        for t in 1..g.node_count() {
            prop_assert!(min_cut_undirected(&u, 0, t) >= min_cut(&g, 0, t));
        }
    }

    #[test]
    fn tutte_half_cut_trees_pack(g in arb_graph()) {
        let u = UnGraph::from_digraph(&g);
        let cut = min_pairwise_cut_undirected(&u).unwrap();
        let k = (cut / 2) as usize;
        if k > 0 {
            let trees = pack_spanning_trees(&u, k).expect("Tutte/Nash-Williams");
            prop_assert!(validate_tree_packing(&u, &trees).is_ok());
        }
    }

    #[test]
    fn strength_at_least_half_min_cut(g in arb_graph()) {
        let u = UnGraph::from_digraph(&g);
        let cut = min_pairwise_cut_undirected(&u).unwrap();
        let strength = max_spanning_trees(&u) as u64;
        prop_assert!(strength >= cut / 2);
        // And strength can never exceed the min cut itself.
        prop_assert!(strength <= cut);
    }

    #[test]
    fn disjoint_paths_match_connectivity(g in arb_graph()) {
        let k = vertex_connectivity_pair(&g, 0, g.node_count() - 1) as usize;
        if k > 0 {
            let paths = vertex_disjoint_paths(&g, 0, g.node_count() - 1, k)
                .expect("connectivity many paths");
            prop_assert_eq!(paths.len(), k);
            // Pairwise internal disjointness.
            let mut internal = std::collections::HashSet::new();
            for p in &paths {
                for &v in &p[1..p.len() - 1] {
                    prop_assert!(internal.insert(v));
                }
            }
        }
        prop_assert!(vertex_disjoint_paths(&g, 0, g.node_count() - 1, k + 1).is_none());
    }

    #[test]
    fn removing_an_edge_never_raises_rate(g in arb_graph()) {
        let before = broadcast_rate(&g, 0);
        let Some((_, e)) = g.edges().next() else { return Ok(()); };
        let (src, dst) = (e.src, e.dst);
        let mut g2 = g.clone();
        g2.remove_edges_between(src, dst);
        if g2.all_reachable_from(0) {
            prop_assert!(broadcast_rate(&g2, 0) <= before);
        }
    }
}
