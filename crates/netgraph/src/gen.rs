//! Graph generators: the paper's worked examples plus families used by the
//! experiments.

use rand::Rng;

use crate::graph::DiGraph;

/// The 4-node directed graph of Figure 1(a).
///
/// Reconstructed from the constraints the paper states for it:
/// `MINCUT(G,1,2) = MINCUT(G,1,4) = 2`, `MINCUT(G,1,3) = 3`, hence `γ = 2`;
/// no link between nodes 2 and 4; and after nodes 2 and 3 are found in
/// dispute (Figure 1(b)), the two candidate fault-free subgraphs
/// `{1,2,4}` and `{1,3,4}` have `U_k = 2`.
///
/// Node ids are zero-based: paper node `i` is `i − 1` here.
pub fn figure_1a() -> DiGraph {
    let mut g = DiGraph::new(4);
    g.add_edge(0, 1, 2); // 1 -> 2, cap 2
    g.add_edge(0, 2, 2); // 1 -> 3, cap 2
    g.add_edge(0, 3, 1); // 1 -> 4, cap 1
    g.add_edge(1, 2, 1); // 2 -> 3, cap 1
    g.add_edge(2, 3, 1); // 3 -> 4, cap 1
    g.add_edge(3, 0, 1); // 4 -> 1, cap 1
    g
}

/// Figure 1(b): the graph of Figure 1(a) after nodes 2 and 3 (ids 1 and 2)
/// have been found in dispute, removing the links between them.
pub fn figure_1b() -> DiGraph {
    let mut g = figure_1a();
    g.remove_edges_between(1, 2);
    g
}

/// The 4-node directed graph of Figure 2(a).
///
/// Reconstructed from the paper's description of Figure 2(c): `γ = 2` and
/// two unit-capacity spanning trees embed in the graph with link (1,2) used
/// by both (so `z_(1,2) = 2`); and of Figure 2(d)/Appendix C.3: directed
/// edges (2,3), (1,4), (4,3) exist and their undirected versions form a
/// spanning tree of the undirected view.
pub fn figure_2a() -> DiGraph {
    let mut g = DiGraph::new(4);
    g.add_edge(0, 1, 2); // 1 -> 2, cap 2 (used by both spanning trees)
    g.add_edge(1, 2, 1); // 2 -> 3
    g.add_edge(1, 3, 1); // 2 -> 4
    g.add_edge(0, 3, 1); // 1 -> 4
    g.add_edge(3, 2, 1); // 4 -> 3
    g
}

/// The complete digraph on `n` nodes with uniform link capacity `cap`.
pub fn complete(n: usize, cap: u64) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge(i, j, cap);
            }
        }
    }
    g
}

/// A complete digraph with capacities drawn uniformly from
/// `lo..=hi` — the heterogeneous-capacity setting where capacity-oblivious
/// protocols lose badly (Section 1).
pub fn complete_heterogeneous<R: Rng + ?Sized>(n: usize, lo: u64, hi: u64, rng: &mut R) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for j in 0..n {
            if i != j {
                g.add_edge(i, j, rng.gen_range(lo..=hi));
            }
        }
    }
    g
}

/// A bidirectional ring on `n` nodes with uniform capacity.
pub fn ring(n: usize, cap: u64) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        g.add_edge(i, j, cap);
        g.add_edge(j, i, cap);
    }
    g
}

/// A random digraph: every ordered pair gets an edge with probability `p`
/// and capacity uniform in `1..=max_cap`; a bidirectional unit-capacity ring
/// is always included so the graph is strongly connected.
pub fn random_connected<R: Rng + ?Sized>(n: usize, p: f64, max_cap: u64, rng: &mut R) -> DiGraph {
    let mut g = DiGraph::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        if g.find_edge(i, j).is_none() {
            g.add_edge(i, j, rng.gen_range(1..=max_cap));
        }
        if g.find_edge(j, i).is_none() {
            g.add_edge(j, i, rng.gen_range(1..=max_cap));
        }
    }
    for i in 0..n {
        for j in 0..n {
            if i != j && g.find_edge(i, j).is_none() && rng.gen_bool(p) {
                g.add_edge(i, j, rng.gen_range(1..=max_cap));
            }
        }
    }
    g
}

/// A "barbell": two complete clusters of size `half` joined by `bridges`
/// bidirectional links of capacity `bridge_cap` — a family whose broadcast
/// rate is throttled by the bridge, used to stress capacity-awareness.
pub fn barbell(half: usize, cluster_cap: u64, bridges: usize, bridge_cap: u64) -> DiGraph {
    assert!(bridges <= half, "at most one bridge per node pair");
    let n = 2 * half;
    let mut g = DiGraph::new(n);
    for i in 0..half {
        for j in 0..half {
            if i != j {
                g.add_edge(i, j, cluster_cap);
                g.add_edge(half + i, half + j, cluster_cap);
            }
        }
    }
    for b in 0..bridges {
        g.add_edge(b, half + b, bridge_cap);
        g.add_edge(half + b, b, bridge_cap);
    }
    g
}

/// A circulant digraph: every node `i` gets bidirectional links to
/// `i ± 1, …, i ± m (mod n)`, all with capacity `cap`.
///
/// For `n > 2m` this is the Harary construction `H_{2m,n}`: vertex
/// connectivity exactly `2m` with the minimum possible number of edges —
/// the cheapest family meeting NAB's `2f+1`-connectivity prerequisite.
///
/// # Panics
///
/// Panics unless `1 ≤ m` and `2m < n`.
pub fn circulant(n: usize, m: usize, cap: u64) -> DiGraph {
    assert!(m >= 1 && 2 * m < n, "circulant needs 1 ≤ m and 2m < n");
    let mut g = DiGraph::new(n);
    for i in 0..n {
        for d in 1..=m {
            let j = (i + d) % n;
            g.add_edge(i, j, cap);
            g.add_edge(j, i, cap);
        }
    }
    g
}

/// A random digraph guaranteed `k`-vertex-connected: a circulant
/// `H_{2⌈k/2⌉,n}` backbone (connectivity `≥ k`) with heterogeneous backbone
/// capacities in `1..=max_cap` plus extra random links, each ordered pair
/// added with probability `extra_p`.
///
/// This is the parameterized family the scenario engine sweeps to exercise
/// NAB on networks that *just* clear the `2f+1`-connectivity prerequisite
/// (`k = 2f+1`) instead of the comfortable complete graph.
///
/// # Panics
///
/// Panics unless `1 ≤ k`, `2⌈k/2⌉ < n`, `max_cap ≥ 1`, and
/// `0.0 ≤ extra_p ≤ 1.0`.
pub fn random_k_connected<R: Rng + ?Sized>(
    n: usize,
    k: usize,
    max_cap: u64,
    extra_p: f64,
    rng: &mut R,
) -> DiGraph {
    assert!(k >= 1, "k-connected needs k ≥ 1");
    assert!(max_cap >= 1, "capacities must be positive");
    assert!(
        (0.0..=1.0).contains(&extra_p),
        "extra_p must be a probability in [0, 1]"
    );
    let m = k.div_ceil(2);
    assert!(2 * m < n, "random_k_connected needs 2⌈k/2⌉ < n");
    let mut g = DiGraph::new(n);
    // Backbone: circulant links with random capacities (both directions
    // drawn independently — the model is directed).
    for i in 0..n {
        for d in 1..=m {
            let j = (i + d) % n;
            g.add_edge(i, j, rng.gen_range(1..=max_cap));
            g.add_edge(j, i, rng.gen_range(1..=max_cap));
        }
    }
    // Extra random chords on top of the guaranteed backbone.
    for i in 0..n {
        for j in 0..n {
            if i != j && g.find_edge(i, j).is_none() && rng.gen_bool(extra_p) {
                g.add_edge(i, j, rng.gen_range(1..=max_cap));
            }
        }
    }
    g
}

/// A `k`-ary fat-tree (Clos) switch fabric: `(k/2)²` core switches plus
/// `k` pods of `k/2` aggregation and `k/2` edge switches, all links
/// bidirectional with capacity `cap`.
///
/// Hosts are omitted — every node is a switch, so the graph stays
/// `k/2`-vertex-connected (an edge switch's only neighbours are its pod's
/// aggregation layer). Node ids: cores first (`0..(k/2)²`, so the broadcast
/// SOURCE is a core switch), then per pod the aggregation switches followed
/// by the edge switches. Total nodes: `(k/2)² + k²`; `k = 32` gives the
/// 1280-node datacenter fabric used by `dc-grid`.
///
/// # Panics
///
/// Panics unless `k` is even and `k ≥ 2`.
pub fn fat_tree(k: usize, cap: u64) -> DiGraph {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree needs even k ≥ 2");
    let half = k / 2;
    let cores = half * half;
    let n = cores + k * k;
    let mut g = DiGraph::new(n);
    let agg = |pod: usize, i: usize| cores + pod * k + i;
    let edge = |pod: usize, j: usize| cores + pod * k + half + j;
    for pod in 0..k {
        // Every edge switch uplinks to every aggregation switch in its pod.
        for j in 0..half {
            for i in 0..half {
                g.add_edge(edge(pod, j), agg(pod, i), cap);
                g.add_edge(agg(pod, i), edge(pod, j), cap);
            }
        }
        // Aggregation switch `i` uplinks to core stripe `i`.
        for i in 0..half {
            for c in 0..half {
                let core = i * half + c;
                g.add_edge(agg(pod, i), core, cap);
                g.add_edge(core, agg(pod, i), cap);
            }
        }
    }
    g
}

/// A 2-D torus: node `(r, c)` is `r·cols + c` and links bidirectionally to
/// its four wraparound grid neighbours with capacity `cap` — the sparse
/// constant-degree fabric (vertex connectivity 4) whose planning cost is
/// dominated by diameter, not degree.
///
/// # Panics
///
/// Panics unless `rows ≥ 3` and `cols ≥ 3` (smaller wraps collapse into
/// duplicate links).
pub fn torus(rows: usize, cols: usize, cap: u64) -> DiGraph {
    assert!(rows >= 3 && cols >= 3, "torus needs rows ≥ 3 and cols ≥ 3");
    let mut g = DiGraph::new(rows * cols);
    let id = |r: usize, c: usize| r * cols + c;
    for r in 0..rows {
        for c in 0..cols {
            let right = id(r, (c + 1) % cols);
            let down = id((r + 1) % rows, c);
            g.add_edge(id(r, c), right, cap);
            g.add_edge(right, id(r, c), cap);
            g.add_edge(id(r, c), down, cap);
            g.add_edge(down, id(r, c), cap);
        }
    }
    g
}

/// A dragonfly: `groups` groups of `routers` routers, complete inside each
/// group, one bidirectional global link per group pair. The router carrying
/// the global link for the pair `(i, j)` is chosen by the pair's distance
/// `d = j − i`, spreading global links round-robin over a group's routers.
/// All links have capacity `cap`.
///
/// # Panics
///
/// Panics unless `groups ≥ 2` and `routers ≥ 2`.
pub fn dragonfly(groups: usize, routers: usize, cap: u64) -> DiGraph {
    assert!(
        groups >= 2 && routers >= 2,
        "dragonfly needs groups ≥ 2 and routers ≥ 2"
    );
    let mut g = DiGraph::new(groups * routers);
    let id = |grp: usize, r: usize| grp * routers + r;
    for grp in 0..groups {
        for a in 0..routers {
            for b in 0..routers {
                if a != b {
                    g.add_edge(id(grp, a), id(grp, b), cap);
                }
            }
        }
    }
    for i in 0..groups {
        for j in (i + 1)..groups {
            let d = j - i;
            let u = id(i, (d - 1) % routers);
            let v = id(j, (d - 1) % routers);
            g.add_edge(u, v, cap);
            g.add_edge(v, u, cap);
        }
    }
    g
}

/// A random expander: a bidirectional ring backbone (so the graph is always
/// strongly connected) plus `⌈(degree − 2) / 2⌉` rounds of random
/// bidirectional chords, one attempted per node per round, with capacities
/// uniform in `1..=max_cap`. Random constant-degree graphs of this shape are
/// expanders with high probability — the sparse reconfigurable-fabric model
/// of the OCS literature.
///
/// # Panics
///
/// Panics unless `n ≥ 3`, `degree ≥ 2`, and `max_cap ≥ 1`.
pub fn random_expander<R: Rng + ?Sized>(
    n: usize,
    degree: usize,
    max_cap: u64,
    rng: &mut R,
) -> DiGraph {
    assert!(n >= 3, "random_expander needs n ≥ 3");
    assert!(degree >= 2, "random_expander needs degree ≥ 2");
    assert!(max_cap >= 1, "capacities must be positive");
    let mut g = DiGraph::new(n);
    for i in 0..n {
        let j = (i + 1) % n;
        g.add_edge(i, j, rng.gen_range(1..=max_cap));
        g.add_edge(j, i, rng.gen_range(1..=max_cap));
    }
    let rounds = (degree - 2).div_ceil(2);
    for _ in 0..rounds {
        for i in 0..n {
            let j = rng.gen_range(0..n);
            if i != j && g.find_edge(i, j).is_none() && g.find_edge(j, i).is_none() {
                g.add_edge(i, j, rng.gen_range(1..=max_cap));
                g.add_edge(j, i, rng.gen_range(1..=max_cap));
            }
        }
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::connectivity::{strongly_connected, vertex_connectivity};
    use crate::flow::{broadcast_rate, min_cut};

    #[test]
    fn figure_1a_satisfies_all_stated_constraints() {
        let g = figure_1a();
        assert_eq!(min_cut(&g, 0, 1), 2);
        assert_eq!(min_cut(&g, 0, 2), 3);
        assert_eq!(min_cut(&g, 0, 3), 2);
        assert_eq!(broadcast_rate(&g, 0), 2);
        // No link between paper-nodes 2 and 4 (ids 1 and 3).
        assert!(g.find_edge(1, 3).is_none());
        assert!(g.find_edge(3, 1).is_none());
    }

    #[test]
    fn figure_1b_drops_the_disputed_links() {
        let g = figure_1b();
        assert!(g.find_edge(1, 2).is_none());
        // Still broadcasts at rate 2.
        assert_eq!(broadcast_rate(&g, 0), 2);
    }

    #[test]
    fn figure_2a_has_gamma_2() {
        let g = figure_2a();
        assert_eq!(broadcast_rate(&g, 0), 2);
        assert_eq!(g.find_edge(0, 1).unwrap().1.cap, 2);
    }

    #[test]
    fn complete_graph_counts() {
        let g = complete(5, 2);
        assert_eq!(g.edge_count(), 20);
        assert_eq!(broadcast_rate(&g, 0), 8); // (n-1) * cap on in-cut
        assert_eq!(vertex_connectivity(&g), Some(4));
    }

    #[test]
    fn ring_has_rate_cap_times_two() {
        let g = ring(5, 3);
        assert_eq!(broadcast_rate(&g, 0), 6);
    }

    #[test]
    fn barbell_rate_is_bridge_limited() {
        let g = barbell(3, 10, 1, 1);
        // Crossing to the far cluster passes the single unit bridge.
        assert_eq!(broadcast_rate(&g, 0), 1);
    }

    #[test]
    fn random_connected_is_strongly_connected() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..5 {
            let g = random_connected(7, 0.3, 4, &mut rng);
            for s in 0..7 {
                assert!(g.all_reachable_from(s));
            }
        }
    }

    #[test]
    fn circulant_is_harary_connectivity() {
        for (n, m) in [(5usize, 1usize), (7, 2), (9, 3), (10, 2)] {
            let g = circulant(n, m, 2);
            assert_eq!(
                vertex_connectivity(&g),
                Some(2 * m as u64),
                "H_{{{},{}}}",
                2 * m,
                n
            );
            // Minimum edge count for that connectivity: n·m in each direction.
            assert_eq!(g.edge_count(), 2 * n * m);
        }
    }

    #[test]
    fn random_k_connected_meets_its_promise() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(9);
        for k in 1..=4usize {
            for _ in 0..3 {
                let g = random_k_connected(8, k, 4, 0.2, &mut rng);
                let conn = vertex_connectivity(&g).unwrap();
                assert!(conn >= k as u64, "k={k}: got connectivity {conn}");
                for (_, e) in g.edges() {
                    assert!((1..=4).contains(&e.cap));
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "2m < n")]
    fn circulant_rejects_overlapping_chords() {
        let _ = circulant(4, 2, 1);
    }

    #[test]
    fn fat_tree_structure_and_connectivity() {
        let g = fat_tree(4, 2);
        // (k/2)² cores + k pods × k switches.
        assert_eq!(g.node_count(), 4 + 16);
        // Per pod: (k/2)² edge-agg pairs + (k/2)² agg-core pairs, ×2 dirs.
        assert_eq!(g.edge_count(), 4 * (4 + 4) * 2);
        assert!(strongly_connected(&g));
        // Edge switches bottleneck the fabric at k/2 neighbours.
        assert_eq!(vertex_connectivity(&g), Some(2));
        assert_eq!(broadcast_rate(&g, 0), 2 * 2); // core has k/2 links of cap 2
    }

    #[test]
    fn torus_is_four_connected() {
        let g = torus(4, 5, 3);
        assert_eq!(g.node_count(), 20);
        assert_eq!(g.edge_count(), 20 * 4); // degree 4, each dir counted once
        assert_eq!(vertex_connectivity(&g), Some(4));
        assert_eq!(broadcast_rate(&g, 0), 4 * 3);
    }

    #[test]
    #[should_panic(expected = "rows ≥ 3")]
    fn torus_rejects_degenerate_wrap() {
        let _ = torus(2, 5, 1);
    }

    #[test]
    fn dragonfly_structure() {
        let g = dragonfly(4, 3, 2);
        assert_eq!(g.node_count(), 12);
        // 4 groups × 3·2 intra edges + 6 group pairs × 2 dirs.
        assert_eq!(g.edge_count(), 4 * 6 + 6 * 2);
        assert!(strongly_connected(&g));
        assert!(vertex_connectivity(&g).unwrap() >= 1);
        assert!(broadcast_rate(&g, 0) >= 2);
    }

    #[test]
    fn random_expander_is_strongly_connected_with_bounded_caps() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(12);
        for _ in 0..3 {
            let g = random_expander(16, 4, 5, &mut rng);
            assert!(strongly_connected(&g));
            assert!(vertex_connectivity(&g).unwrap() >= 2);
            for (_, e) in g.edges() {
                assert!((1..=5).contains(&e.cap));
            }
        }
    }

    #[test]
    fn heterogeneous_capacities_in_range() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let g = complete_heterogeneous(4, 2, 9, &mut rng);
        for (_, e) in g.edges() {
            assert!((2..=9).contains(&e.cap));
        }
    }
}
