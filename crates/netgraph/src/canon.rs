//! Stable canonical keys for graphs — the content-addressing layer under
//! the plan cache.
//!
//! Two keys with different invariance guarantees:
//!
//! - [`labeled_key`] — a digest of the graph *as labeled*: node universe,
//!   active mask, and the sorted live edge list `(src, dst, cap)`. Two
//!   graphs get the same labeled key iff they are the same concrete
//!   network (up to edge insertion order). This is the component that
//!   makes a cache key sound for label-dependent artifacts (arborescences,
//!   routing paths are expressed in node ids).
//! - [`canonical_key`] — a relabeling-**invariant** digest computed by
//!   Weisfeiler–Leman color refinement over capacity-annotated
//!   neighborhoods: renaming nodes never changes it, while changing any
//!   link capacity (or the degree/capacity structure) does. This is the
//!   content-address that buckets isomorphic topologies together, e.g.
//!   every `complete:n:cap` instance a sweep generates hashes identically
//!   no matter how the generator happened to number the nodes.
//!
//! Neither key is persisted; both are deterministic functions of the
//! graph (no [`std::collections::hash_map::RandomState`] involved), so
//! they are stable within and across processes.

use crate::graph::{DiGraph, NodeId};

/// Seed constant for the fold-based digests (splitmix64's increment).
const SEED: u64 = 0x9E37_79B9_7F4A_7C15;

/// One splitmix64-style mixing step.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_add(SEED).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 30)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Order-sensitive digest of a value sequence.
fn hash_seq(vals: impl IntoIterator<Item = u64>) -> u64 {
    vals.into_iter().fold(SEED, mix)
}

/// Digest of the graph exactly as labeled: node universe size, active
/// mask, and the live edges sorted by `(src, dst)`. Insensitive to edge
/// insertion order, sensitive to everything else — including node names.
pub fn labeled_key(g: &DiGraph) -> u64 {
    let mut edges: Vec<(NodeId, NodeId, u64)> =
        g.edges().map(|(_, e)| (e.src, e.dst, e.cap)).collect();
    edges.sort_unstable();
    let mut h = mix(g.node_count() as u64, 0x1ABE1);
    for v in 0..g.node_count() {
        h = mix(h, u64::from(g.is_active(v)));
    }
    for (s, d, c) in edges {
        h = hash_seq([h, s as u64, d as u64, c]);
    }
    h
}

/// Relabeling-invariant digest of the capacitated topology.
///
/// Runs 1-dimensional Weisfeiler–Leman refinement: every active node
/// starts with a color derived from its sorted in/out capacity multisets,
/// then repeatedly absorbs the sorted multiset of `(neighbor color,
/// link capacity)` over incoming and outgoing links. After `|V|` rounds
/// the sorted multiset of node colors — together with global invariants
/// (active count, edge count, total capacity) — is folded into the key.
///
/// Every intermediate quantity is a sorted multiset of label-independent
/// values, so the result cannot depend on node numbering. Like any
/// WL-style invariant it is not a *complete* isomorphism test (rare
/// regular non-isomorphic pairs may collide), which is why the plan cache
/// pairs it with [`labeled_key`] rather than using it alone.
pub fn canonical_key(g: &DiGraph) -> u64 {
    let n = g.node_count();
    let mut color = vec![0u64; n];
    for v in g.nodes() {
        let mut outs: Vec<u64> = g.out_edges(v).map(|(_, e)| e.cap).collect();
        let mut ins: Vec<u64> = g.in_edges(v).map(|(_, e)| e.cap).collect();
        outs.sort_unstable();
        ins.sort_unstable();
        color[v] = hash_seq([1, hash_seq(outs), hash_seq(ins)]);
    }
    // Each round's color absorbs the previous one, so the partition only
    // ever refines; once the class count stops growing it is stable and
    // no later round can separate anything new. The break condition
    // depends only on the (label-independent) partition evolution, so
    // invariance is preserved — and `PlanKey` computes this digest on
    // every cache fetch, which is why the early exit matters.
    let distinct = |color: &[u64]| {
        g.nodes()
            .map(|v| color[v])
            .collect::<std::collections::BTreeSet<u64>>()
            .len()
    };
    let mut classes = distinct(&color);
    for _ in 0..g.active_count() {
        let mut next = color.clone();
        for v in g.nodes() {
            let mut outs: Vec<u64> = g
                .out_edges(v)
                .map(|(_, e)| mix(color[e.dst], e.cap))
                .collect();
            let mut ins: Vec<u64> = g
                .in_edges(v)
                .map(|(_, e)| mix(color[e.src], e.cap))
                .collect();
            outs.sort_unstable();
            ins.sort_unstable();
            next[v] = hash_seq([color[v], hash_seq(outs), hash_seq(ins)]);
        }
        color = next;
        let refined = distinct(&color);
        if refined == classes {
            break;
        }
        classes = refined;
    }
    let mut final_colors: Vec<u64> = g.nodes().map(|v| color[v]).collect();
    final_colors.sort_unstable();
    hash_seq([
        g.active_count() as u64,
        g.edge_count() as u64,
        g.total_capacity(),
        hash_seq(final_colors),
    ])
}

/// Renames the nodes of `g` through the permutation `perm` (old id `v`
/// becomes `perm[v]`). Exposed for canonicalization tests and tooling.
///
/// # Panics
///
/// Panics if `perm` is not a permutation of `0..g.node_count()`.
pub fn relabel(g: &DiGraph, perm: &[NodeId]) -> DiGraph {
    assert_eq!(perm.len(), g.node_count(), "permutation length mismatch");
    let mut seen = vec![false; perm.len()];
    for &p in perm {
        assert!(p < perm.len() && !seen[p], "not a permutation: {perm:?}");
        seen[p] = true;
    }
    let mut out = DiGraph::new(g.node_count());
    for (_, e) in g.edges() {
        out.add_edge(perm[e.src], perm[e.dst], e.cap);
    }
    for (v, &p) in perm.iter().enumerate() {
        if !g.is_active(v) {
            out.remove_node(p);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_perm(n: usize, rng: &mut StdRng) -> Vec<NodeId> {
        let mut p: Vec<NodeId> = (0..n).collect();
        for i in (1..n).rev() {
            let j = rng.gen_range(0..=i);
            p.swap(i, j);
        }
        p
    }

    #[test]
    fn canonical_key_is_invariant_under_relabeling() {
        let mut rng = StdRng::seed_from_u64(0xCAFE);
        let graphs = [
            gen::complete(5, 2),
            gen::complete_heterogeneous(6, 1, 4, &mut StdRng::seed_from_u64(5)),
            gen::figure_1a(),
            gen::figure_2a(),
            gen::random_connected(7, 0.5, 2, &mut rng),
        ];
        for g in &graphs {
            let key = canonical_key(g);
            for _ in 0..8 {
                let perm = random_perm(g.node_count(), &mut rng);
                let h = relabel(g, &perm);
                assert_eq!(
                    canonical_key(&h),
                    key,
                    "relabeling {perm:?} changed the canonical key of {g:?}"
                );
            }
        }
    }

    #[test]
    fn canonical_key_distinguishes_differing_capacities() {
        // Uniform capacity bumps.
        assert_ne!(
            canonical_key(&gen::complete(4, 1)),
            canonical_key(&gen::complete(4, 2))
        );
        // A single-link capacity change.
        let g = gen::complete(4, 2);
        let mut h = g.clone();
        h.remove_edges_between(1, 2);
        h.add_edge(1, 2, 3);
        h.add_edge(2, 1, 2);
        assert_ne!(canonical_key(&g), canonical_key(&h));
    }

    #[test]
    fn canonical_key_distinguishes_structure() {
        assert_ne!(
            canonical_key(&gen::complete(5, 1)),
            canonical_key(&gen::ring(5, 1))
        );
        assert_ne!(
            canonical_key(&gen::complete(5, 1)),
            canonical_key(&gen::complete(6, 1))
        );
    }

    #[test]
    fn labeled_key_pins_the_labeling() {
        let g = gen::complete_heterogeneous(5, 1, 3, &mut StdRng::seed_from_u64(9));
        assert_eq!(labeled_key(&g), labeled_key(&g.clone()));
        // A non-trivial relabeling changes the labeled key (the concrete
        // network differs) while the canonical key stays put.
        let perm = vec![1, 0, 2, 3, 4];
        let h = relabel(&g, &perm);
        assert_ne!(labeled_key(&g), labeled_key(&h));
        assert_eq!(canonical_key(&g), canonical_key(&h));
    }

    #[test]
    fn labeled_key_ignores_edge_insertion_order() {
        let mut a = DiGraph::new(3);
        a.add_edge(0, 1, 2);
        a.add_edge(1, 2, 1);
        let mut b = DiGraph::new(3);
        b.add_edge(1, 2, 1);
        b.add_edge(0, 1, 2);
        assert_eq!(labeled_key(&a), labeled_key(&b));
    }

    #[test]
    fn labeled_key_sees_active_mask_and_caps() {
        let g = gen::complete(4, 2);
        let mut off = g.clone();
        off.remove_node(3);
        assert_ne!(labeled_key(&g), labeled_key(&off));
        assert_ne!(
            labeled_key(&gen::complete(4, 1)),
            labeled_key(&gen::complete(4, 2))
        );
    }

    #[test]
    fn relabel_rejects_non_permutations() {
        let g = gen::complete(3, 1);
        let r = std::panic::catch_unwind(|| relabel(&g, &[0, 0, 1]));
        assert!(r.is_err());
    }
}
