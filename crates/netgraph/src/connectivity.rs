//! Vertex connectivity and vertex-disjoint path routing.
//!
//! The paper assumes network connectivity at least `2f + 1`, and Appendix D
//! uses the classical construction: with `≤ f` faults and `2f + 1`
//! internally-vertex-disjoint paths between two nodes, sending a copy of a
//! message along every path and taking the majority at the receiver yields
//! reliable end-to-end communication between fault-free nodes — a *complete
//! graph emulation* on which any classic BB protocol can run.

use crate::flow::FlowNet;
use crate::graph::{DiGraph, NodeId};

/// Large capacity standing in for ∞ in node-split constructions.
const INF: u64 = u64::MAX / 4;

/// Builds the node-split flow network for internally-vertex-disjoint path
/// counting: every node `v` becomes `v_in = v`, `v_out = v + n` joined by a
/// unit arc (infinite for `s`, `t`); every edge `(u, v)` becomes a unit arc
/// `u_out → v_in`.
fn split_network(g: &DiGraph, s: NodeId, t: NodeId) -> (FlowNet, Vec<Option<usize>>) {
    let n = g.node_count();
    let mut net = FlowNet::new(2 * n);
    for v in g.nodes() {
        let cap = if v == s || v == t { INF } else { 1 };
        net.add_arc(v, v + n, cap);
    }
    // Track the arc id for each graph edge so paths can be decoded.
    let mut edge_arcs = vec![None; g.edges().map(|(id, _)| id + 1).max().unwrap_or(0)];
    for (id, e) in g.edges() {
        let arc = net.add_arc(e.src + n, e.dst, 1);
        edge_arcs[id] = Some(arc);
    }
    (net, edge_arcs)
}

/// The maximum number of internally-vertex-disjoint directed paths from `s`
/// to `t` (a direct edge counts as one path).
///
/// # Panics
///
/// Panics if `s` or `t` is inactive or `s == t`.
pub fn vertex_connectivity_pair(g: &DiGraph, s: NodeId, t: NodeId) -> u64 {
    assert!(
        g.is_active(s) && g.is_active(t) && s != t,
        "bad connectivity query"
    );
    let n = g.node_count();
    let (mut net, _) = split_network(g, s, t);
    net.max_flow(s + n, t)
}

/// The directed vertex connectivity of the graph: the minimum over all
/// ordered pairs of active nodes of [`vertex_connectivity_pair`].
///
/// Each pair's flow is capped at the best minimum seen so far — a pair can
/// only matter if it pushes *less* than the current best, so later pairs
/// cost `O(best · (V + E))` instead of a full max-flow. The returned value
/// is exact.
///
/// Returns `None` with fewer than two active nodes.
pub fn vertex_connectivity(g: &DiGraph) -> Option<u64> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    if nodes.len() < 2 {
        return None;
    }
    let n = g.node_count();
    let mut best = u64::MAX;
    for &s in &nodes {
        for &t in &nodes {
            if s != t {
                let (mut net, _) = split_network(g, s, t);
                best = best.min(net.max_flow_limited(s + n, t, best));
                if best == 0 {
                    return Some(0);
                }
            }
        }
    }
    Some(best)
}

/// Whether every active node can reach every other active node — directed
/// vertex connectivity `≥ 1`, checked with two breadth-first sweeps
/// (forward and reverse from one pivot) in `O(V + E)` instead of `n²`
/// max-flows. Vacuously true with fewer than two active nodes.
pub fn strongly_connected(g: &DiGraph) -> bool {
    let Some(pivot) = g.nodes().next() else {
        return true;
    };
    let n = g.node_count();
    let mut fwd: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    let mut rev: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (_, e) in g.edges() {
        fwd[e.src].push(e.dst);
        rev[e.dst].push(e.src);
    }
    let reach = |adj: &[Vec<NodeId>]| {
        let mut seen = vec![false; n];
        seen[pivot] = true;
        let mut stack = vec![pivot];
        while let Some(u) = stack.pop() {
            for &v in &adj[u] {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        seen
    };
    let down = reach(&fwd);
    let up = reach(&rev);
    g.nodes().all(|v| down[v] && up[v])
}

/// Whether the directed vertex connectivity is at least `k`: every ordered
/// pair must carry `k` internally-disjoint paths, so each pair's flow is
/// capped at `k` (`O(k · (V + E))` per pair) and the scan exits on the
/// first pair that falls short.
///
/// Returns `false` with fewer than two active nodes (no pair exists), and
/// trivially `true` for `k = 0`.
pub fn vertex_connectivity_at_least(g: &DiGraph, k: u64) -> bool {
    if k == 0 {
        return true;
    }
    let nodes: Vec<NodeId> = g.nodes().collect();
    if nodes.len() < 2 {
        return false;
    }
    let n = g.node_count();
    for &s in &nodes {
        for &t in &nodes {
            if s != t {
                let (mut net, _) = split_network(g, s, t);
                if net.max_flow_limited(s + n, t, k) < k {
                    return false;
                }
            }
        }
    }
    true
}

/// Extracts `k` internally-vertex-disjoint directed paths from `s` to `t`,
/// each given as the node sequence `s, …, t`.
///
/// Returns `None` if fewer than `k` disjoint paths exist.
///
/// # Panics
///
/// Panics if `s` or `t` is inactive or `s == t`.
pub fn vertex_disjoint_paths(
    g: &DiGraph,
    s: NodeId,
    t: NodeId,
    k: usize,
) -> Option<Vec<Vec<NodeId>>> {
    assert!(g.is_active(s) && g.is_active(t) && s != t, "bad path query");
    let n = g.node_count();
    let (mut net, edge_arcs) = split_network(g, s, t);
    let flow = net.max_flow(s + n, t);
    if (flow as usize) < k {
        return None;
    }

    // Successor map via flow decomposition: for each node u with flow
    // leaving u_out, record which edges carry flow.
    let mut flow_out: Vec<Vec<NodeId>> = vec![Vec::new(); n];
    for (id, e) in g.edges() {
        if let Some(arc) = edge_arcs[id] {
            let f = net.flow_on(arc);
            debug_assert!(f <= 1);
            if f == 1 {
                flow_out[e.src].push(e.dst);
            }
        }
    }

    let mut paths = Vec::with_capacity(k);
    for _ in 0..k {
        let mut path = vec![s];
        let mut cur = s;
        loop {
            let next = flow_out[cur].pop().expect("flow decomposition ran dry"); // nab-lint: allow(NAB003): flow conservation yields an outgoing unit at every non-sink
            path.push(next);
            if next == t {
                break;
            }
            cur = next;
        }
        paths.push(path);
    }
    Some(paths)
}

/// Checks the existence conditions for Byzantine broadcast from the paper's
/// system model: `n ≥ 3f + 1` active nodes and vertex connectivity
/// `≥ 2f + 1`.
pub fn supports_byzantine_broadcast(g: &DiGraph, f: usize) -> bool {
    let n = g.active_count();
    if n < 3 * f + 1 {
        return false;
    }
    if n < 2 {
        return f == 0;
    }
    if f == 0 {
        // κ ≥ 1 is exactly strong connectivity — linear-time check, which
        // is what keeps 1000-node fault-free fabrics plannable.
        return strongly_connected(g);
    }
    vertex_connectivity_at_least(g, (2 * f + 1) as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn complete_graph_connectivity_is_n_minus_1() {
        let g = gen::complete(5, 1);
        assert_eq!(vertex_connectivity(&g), Some(4));
    }

    #[test]
    fn path_graph_connectivity_is_1() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.add_edge(2, 1, 1);
        g.add_edge(1, 0, 1);
        assert_eq!(vertex_connectivity(&g), Some(1));
    }

    #[test]
    fn disjoint_paths_in_complete_graph() {
        let g = gen::complete(6, 1);
        let paths = vertex_disjoint_paths(&g, 0, 5, 5).expect("K6 has 5 disjoint paths");
        assert_eq!(paths.len(), 5);
        // Internal nodes must be distinct across paths.
        let mut seen = std::collections::HashSet::new();
        for p in &paths {
            assert_eq!(*p.first().unwrap(), 0);
            assert_eq!(*p.last().unwrap(), 5);
            for &v in &p[1..p.len() - 1] {
                assert!(seen.insert(v), "internal node {v} reused");
            }
        }
    }

    #[test]
    fn disjoint_paths_paths_are_edges() {
        let g = gen::complete(4, 1);
        let paths = vertex_disjoint_paths(&g, 0, 3, 3).unwrap();
        for p in &paths {
            for w in p.windows(2) {
                assert!(g.find_edge(w[0], w[1]).is_some(), "non-edge {w:?} in path");
            }
        }
    }

    #[test]
    fn too_many_paths_requested_returns_none() {
        let g = gen::complete(4, 1);
        assert!(vertex_disjoint_paths(&g, 0, 3, 4).is_none());
    }

    #[test]
    fn bb_support_conditions() {
        // K4 supports f=1 (n=4≥4, κ=3≥3) but not f=2.
        let g = gen::complete(4, 1);
        assert!(supports_byzantine_broadcast(&g, 1));
        assert!(!supports_byzantine_broadcast(&g, 2));
        // K7 supports f=2 (n=7≥7, κ=6≥5).
        let g7 = gen::complete(7, 1);
        assert!(supports_byzantine_broadcast(&g7, 2));
    }

    #[test]
    fn strong_connectivity_matches_kappa_at_least_one() {
        let ring = gen::ring(6, 1);
        assert!(strongly_connected(&ring));
        let mut one_way = DiGraph::new(3);
        one_way.add_edge(0, 1, 1);
        one_way.add_edge(1, 2, 1);
        assert!(!strongly_connected(&one_way));
        // A single active node is vacuously strongly connected.
        let mut lone = DiGraph::new(2);
        lone.remove_node(1);
        assert!(strongly_connected(&lone));
    }

    #[test]
    fn threshold_check_agrees_with_exact_connectivity() {
        for g in [
            gen::complete(5, 1),
            gen::circulant(7, 2, 1),
            gen::ring(5, 2),
            gen::figure_1a(),
        ] {
            let exact = vertex_connectivity(&g).unwrap();
            for k in 0..=exact + 2 {
                assert_eq!(
                    vertex_connectivity_at_least(&g, k),
                    k <= exact,
                    "threshold {k} vs exact {exact}"
                );
            }
        }
    }

    #[test]
    fn connectivity_pair_counts_direct_edge() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 2, 1); // direct
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1); // via node 1
        assert_eq!(vertex_connectivity_pair(&g, 0, 2), 2);
    }
}
