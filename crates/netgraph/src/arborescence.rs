//! Packing capacity-respecting spanning arborescences (Appendix A).
//!
//! Edmonds' theorem: a digraph whose min cut from root `r` to every other
//! node is at least `k` contains `k` edge-disjoint spanning arborescences
//! rooted at `r` (with integer capacities, "edge-disjoint" means each edge
//! `e` is used by at most `z_e` arborescences in total). Phase 1 of NAB
//! splits the `L`-bit input into `γ` blocks and streams one block down each
//! arborescence, achieving the optimal unreliable-broadcast rate `γ`.
//!
//! This module implements the constructive proof due to Lovász: grow each
//! arborescence one edge at a time, only ever adding a *safe* edge — one
//! whose removal from the residual graph keeps the root min cut at
//! `k − 1` for every node, which guarantees the remaining `k − 1`
//! arborescences can still be completed.

use std::collections::{BTreeSet, HashMap};

use crate::flow::FlowNet;
use crate::graph::{DiGraph, EdgeId, NodeId};

/// A spanning arborescence: `parent_edge[v] = Some((u, v))` for every
/// non-root active node `v`, forming a tree directed away from the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Arborescence {
    /// The root (broadcast source).
    pub root: NodeId,
    /// Tree edges as `(src, dst)` pairs; every active non-root node appears
    /// exactly once as a `dst`.
    pub edges: Vec<(NodeId, NodeId)>,
}

impl Arborescence {
    /// The parent of `v` in the tree, if `v` is not the root.
    pub fn parent(&self, v: NodeId) -> Option<NodeId> {
        self.edges.iter().find(|&&(_, d)| d == v).map(|&(s, _)| s)
    }

    /// Children of `u`.
    pub fn children(&self, u: NodeId) -> Vec<NodeId> {
        self.edges
            .iter()
            .filter(|&&(s, _)| s == u)
            .map(|&(_, d)| d)
            .collect()
    }

    /// Nodes in BFS order from the root (root first). Each node appears
    /// after its parent, so forwarding in this order respects causality.
    pub fn bfs_order(&self) -> Vec<NodeId> {
        let mut order = vec![self.root];
        let mut i = 0;
        while i < order.len() {
            let u = order[i];
            order.extend(self.children(u));
            i += 1;
        }
        order
    }

    /// Depth (number of hops) of the deepest node.
    pub fn depth(&self) -> usize {
        fn depth_of(t: &Arborescence, v: NodeId) -> usize {
            match t.parent(v) {
                None => 0,
                Some(p) => 1 + depth_of(t, p),
            }
        }
        self.edges
            .iter()
            .map(|&(_, d)| depth_of(self, d))
            .max()
            .unwrap_or(0)
    }
}

/// Computes the residual min cut from `root` to `target` given per-edge
/// remaining capacities.
fn residual_min_cut(g: &DiGraph, rem: &[u64], root: NodeId, target: NodeId) -> u64 {
    let mut net = FlowNet::new(g.node_count());
    for (id, e) in g.edges() {
        if rem[id] > 0 {
            net.add_arc(e.src, e.dst, rem[id]);
        }
    }
    net.max_flow(root, target)
}

/// Whether, with remaining capacities `rem`, every active node still has
/// min cut ≥ `need` from the root.
fn invariant_holds(g: &DiGraph, rem: &[u64], root: NodeId, need: u64) -> bool {
    if need == 0 {
        return true;
    }
    g.nodes()
        .filter(|&v| v != root)
        .all(|v| residual_min_cut(g, rem, root, v) >= need)
}

/// Computes a sparse flow witness: a feasible `root → target` flow of value
/// `need` in the residual graph `rem`, as `edge id → units shipped`, or
/// `None` if the residual min cut is below `need`.
fn capped_witness(
    g: &DiGraph,
    rem: &[u64],
    root: NodeId,
    target: NodeId,
    need: u64,
) -> Option<HashMap<EdgeId, u64>> {
    let mut net = FlowNet::new(g.node_count());
    let mut arcs: Vec<(EdgeId, usize)> = Vec::new();
    for (id, e) in g.edges() {
        if rem[id] > 0 {
            arcs.push((id, net.add_arc(e.src, e.dst, rem[id])));
        }
    }
    if net.max_flow_limited(root, target, need) < need {
        return None;
    }
    let mut flows = HashMap::new();
    for (id, arc) in arcs {
        let f = net.flow_on(arc);
        if f > 0 {
            flows.insert(id, f);
        }
    }
    Some(flows)
}

/// Packs `k` capacity-respecting spanning arborescences rooted at `root`.
///
/// Returns `None` if the graph's broadcast rate from `root` is below `k`
/// (Edmonds' condition fails) — callers should pick
/// `k = flow::broadcast_rate(g, root)`.
///
/// This is the witness-incremental implementation: instead of re-running a
/// full max-flow from the root to *every* node after each tentative edge
/// decrement (as [`pack_arborescences_naive`] does), it keeps a sparse flow
/// witness of value ≥ `need` per node. Decrementing edge `e` can only break
/// witnesses that ship more than the new residual over `e`, so exactly those
/// nodes are re-solved (with a flow capped at `need`); all others provably
/// still meet the cut bound. The safety decision for every candidate edge is
/// the same boolean the naive checker computes, so the produced packing is
/// **identical** — a fact the differential tests (and the engine's
/// repair-vs-recompute proptests) pin down.
///
/// # Panics
///
/// Panics if `root` is inactive.
pub fn pack_arborescences(g: &DiGraph, root: NodeId, k: u64) -> Option<Vec<Arborescence>> {
    assert!(g.is_active(root), "root must be active");
    if k == 0 {
        return Some(Vec::new());
    }
    let max_id = g.edges().map(|(id, _)| id + 1).max().unwrap_or(0);
    let mut rem = vec![0u64; max_id];
    for (id, e) in g.edges() {
        rem[id] = e.cap;
    }

    // Entry check doubling as witness construction: every node gets a flow
    // witness of value `k` (exactly Edmonds' condition).
    let n = g.node_count();
    let mut wit: Vec<HashMap<EdgeId, u64>> = vec![HashMap::new(); n];
    let mut users: Vec<BTreeSet<NodeId>> = vec![BTreeSet::new(); max_id];
    for v in g.nodes() {
        if v == root {
            continue;
        }
        let w = capped_witness(g, &rem, root, v, k)?;
        for &e in w.keys() {
            users[e].insert(v);
        }
        wit[v] = w;
    }

    let nodes: Vec<NodeId> = g.nodes().collect();
    let mut trees = Vec::with_capacity(k as usize);

    for tree_idx in 0..k {
        // Remaining trees to build after this one.
        let need = k - tree_idx - 1;
        let mut in_tree = vec![false; g.node_count()];
        in_tree[root] = true;
        let mut covered = 1usize;
        let mut edges = Vec::new();

        while covered < nodes.len() {
            let mut advanced = false;
            'candidates: for (id, e) in g.edges() {
                if rem[id] == 0 || !in_tree[e.src] || in_tree[e.dst] {
                    continue;
                }
                // Tentatively take one unit of edge `id`.
                rem[id] -= 1;
                let safe = if need == 0 {
                    true
                } else {
                    // Only witnesses shipping more than the new residual
                    // over `id` can have dropped below `need`; re-solve
                    // exactly those and commit on success.
                    let affected: Vec<NodeId> = users[id]
                        .iter()
                        .copied()
                        .filter(|&v| wit[v][&id] > rem[id])
                        .collect();
                    let mut rebuilt = Vec::with_capacity(affected.len());
                    let mut feasible = true;
                    for &v in &affected {
                        match capped_witness(g, &rem, root, v, need) {
                            Some(w) => rebuilt.push((v, w)),
                            None => {
                                feasible = false;
                                break;
                            }
                        }
                    }
                    if feasible {
                        for (v, w) in rebuilt {
                            for &e2 in wit[v].keys() {
                                users[e2].remove(&v);
                            }
                            for &e2 in w.keys() {
                                users[e2].insert(v);
                            }
                            wit[v] = w;
                        }
                    }
                    feasible
                };
                if safe {
                    in_tree[e.dst] = true;
                    covered += 1;
                    edges.push((e.src, e.dst));
                    advanced = true;
                    break 'candidates;
                }
                // Unsafe: restore the unit. The untouched witnesses are
                // feasible again under the restored residuals.
                rem[id] += 1;
            }
            if !advanced {
                // Cannot happen when Edmonds' condition held at entry; kept
                // as a defensive bail-out rather than a panic.
                return None;
            }
        }
        trees.push(Arborescence { root, edges });
    }
    Some(trees)
}

/// Reference implementation of [`pack_arborescences`]: Lovász's constructive
/// proof with a full `O(V)`-max-flow invariant check per candidate edge.
///
/// Kept as the differential oracle — the witness-incremental packer must
/// produce bit-identical output — and as the deliberately-unoptimized
/// baseline the benches contrast against.
///
/// # Panics
///
/// Panics if `root` is inactive.
pub fn pack_arborescences_naive(g: &DiGraph, root: NodeId, k: u64) -> Option<Vec<Arborescence>> {
    assert!(g.is_active(root), "root must be active");
    if k == 0 {
        return Some(Vec::new());
    }
    let max_id = g.edges().map(|(id, _)| id + 1).max().unwrap_or(0);
    let mut rem = vec![0u64; max_id];
    for (id, e) in g.edges() {
        rem[id] = e.cap;
    }
    if !invariant_holds(g, &rem, root, k) {
        return None;
    }

    let nodes: Vec<NodeId> = g.nodes().collect();
    let mut trees = Vec::with_capacity(k as usize);

    for tree_idx in 0..k {
        // Remaining trees to build after this one.
        let need = k - tree_idx - 1;
        let mut in_tree = vec![false; g.node_count()];
        in_tree[root] = true;
        let mut covered = 1usize;
        let mut edges = Vec::new();

        while covered < nodes.len() {
            // Find a safe frontier edge: src in tree, dst not, and removing
            // one unit of its capacity keeps every node's residual min cut
            // ≥ `need`.
            let mut advanced = false;
            'candidates: for (id, e) in g.edges() {
                if rem[id] == 0 || !in_tree[e.src] || in_tree[e.dst] {
                    continue;
                }
                rem[id] -= 1;
                if invariant_holds(g, &rem, root, need) {
                    in_tree[e.dst] = true;
                    covered += 1;
                    edges.push((e.src, e.dst));
                    advanced = true;
                    break 'candidates;
                }
                rem[id] += 1;
            }
            if !advanced {
                // Cannot happen when Edmonds' condition held at entry; kept
                // as a defensive bail-out rather than a panic.
                return None;
            }
        }
        trees.push(Arborescence { root, edges });
    }
    Some(trees)
}

/// Validates an arborescence packing: each tree spans all active nodes from
/// the root, and total per-edge usage respects capacities. Returns a
/// human-readable error on failure (used by tests and benches).
pub fn validate_packing(g: &DiGraph, root: NodeId, trees: &[Arborescence]) -> Result<(), String> {
    let mut usage: std::collections::BTreeMap<(NodeId, NodeId), u64> =
        std::collections::BTreeMap::new();
    let active: Vec<NodeId> = g.nodes().collect();
    for (i, t) in trees.iter().enumerate() {
        if t.root != root {
            return Err(format!("tree {i} has wrong root"));
        }
        let mut indeg = vec![0usize; g.node_count()];
        for &(s, d) in &t.edges {
            if g.find_edge(s, d).is_none() {
                return Err(format!("tree {i} uses non-edge ({s}, {d})"));
            }
            indeg[d] += 1;
            *usage.entry((s, d)).or_insert(0) += 1;
        }
        for &v in &active {
            let expect = usize::from(v != root);
            if indeg[v] != expect {
                return Err(format!("tree {i}: node {v} has in-degree {}", indeg[v]));
            }
        }
        // Reachability from root within tree edges.
        let order = t.bfs_order();
        if order.len() != active.len() {
            return Err(format!("tree {i} does not span: covers {}", order.len()));
        }
    }
    for ((s, d), used) in usage {
        let cap = g.find_edge(s, d).map(|(_, e)| e.cap).unwrap_or(0);
        if used > cap {
            return Err(format!("edge ({s}, {d}) used {used} > cap {cap}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::broadcast_rate;
    use crate::gen;

    #[test]
    fn figure_2a_packs_two_trees() {
        // The paper's Figure 2(a)/(c): γ = 2, and two unit-capacity spanning
        // trees exist with link (1,2) used by both.
        let g = gen::figure_2a();
        let k = broadcast_rate(&g, 0);
        assert_eq!(k, 2);
        let trees = pack_arborescences(&g, 0, k).expect("packing exists");
        assert_eq!(trees.len(), 2);
        validate_packing(&g, 0, &trees).unwrap();
    }

    #[test]
    fn figure_1a_packs_gamma_trees() {
        let g = gen::figure_1a();
        let k = broadcast_rate(&g, 0);
        assert_eq!(k, 2);
        let trees = pack_arborescences(&g, 0, k).expect("packing exists");
        validate_packing(&g, 0, &trees).unwrap();
    }

    #[test]
    fn complete_graph_packs_n_minus_1_unit_trees() {
        let g = gen::complete(5, 1);
        let k = broadcast_rate(&g, 0);
        assert_eq!(k, 4);
        let trees = pack_arborescences(&g, 0, k).expect("packing exists");
        assert_eq!(trees.len(), 4);
        validate_packing(&g, 0, &trees).unwrap();
    }

    #[test]
    fn over_requesting_returns_none() {
        let g = gen::complete(4, 1);
        let k = broadcast_rate(&g, 0);
        assert!(pack_arborescences(&g, 0, k + 1).is_none());
    }

    #[test]
    fn zero_trees_is_trivially_ok() {
        let g = gen::complete(3, 1);
        assert_eq!(pack_arborescences(&g, 0, 0).unwrap().len(), 0);
    }

    #[test]
    fn high_capacity_edge_reused_across_trees() {
        // Line 0 -> 1 with cap 3 fanning to 2 and 3 each cap 3: rate 3 uses
        // (0,1) three times.
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 3);
        let trees = pack_arborescences(&g, 0, 3).expect("packing exists");
        assert_eq!(trees.len(), 3);
        validate_packing(&g, 0, &trees).unwrap();
    }

    #[test]
    fn random_graphs_always_pack_their_broadcast_rate() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2024);
        for trial in 0..15 {
            let g = gen::random_connected(6, 0.6, 3, &mut rng);
            let k = broadcast_rate(&g, 0);
            if k == 0 {
                continue;
            }
            let trees =
                pack_arborescences(&g, 0, k).unwrap_or_else(|| panic!("trial {trial}: no packing"));
            assert_eq!(trees.len() as u64, k);
            validate_packing(&g, 0, &trees).unwrap();
        }
    }

    #[test]
    fn witness_packer_is_bit_identical_to_naive() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(77);
        let mut nontrivial = 0;
        for trial in 0..20 {
            let g = if trial % 2 == 0 {
                gen::random_connected(6, 0.5, 3, &mut rng)
            } else {
                gen::random_k_connected(7, 3, 4, 0.2, &mut rng)
            };
            let k = broadcast_rate(&g, 0);
            for req in [k, k + 1] {
                assert_eq!(
                    pack_arborescences(&g, 0, req),
                    pack_arborescences_naive(&g, 0, req),
                    "trial {trial} diverged at k={req}"
                );
            }
            if k > 1 {
                nontrivial += 1;
            }
        }
        assert!(nontrivial >= 5, "test exercised only trivial packings");
    }

    #[test]
    fn witness_packer_matches_naive_after_edge_removals() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(41);
        for trial in 0..10 {
            let mut g = gen::random_k_connected(8, 3, 3, 0.3, &mut rng);
            // Dispute-style removals shrink the graph between packings.
            for _ in 0..3 {
                let a = rng.gen_range(1..8);
                let b = rng.gen_range(1..8);
                if a != b {
                    g.remove_edges_between(a, b);
                }
                let k = broadcast_rate(&g, 0);
                assert_eq!(
                    pack_arborescences(&g, 0, k),
                    pack_arborescences_naive(&g, 0, k),
                    "trial {trial} diverged after removal"
                );
            }
        }
    }

    #[test]
    fn bfs_order_parents_precede_children() {
        let g = gen::complete(5, 1);
        let trees = pack_arborescences(&g, 0, 2).unwrap();
        for t in &trees {
            let order = t.bfs_order();
            let pos: std::collections::HashMap<_, _> =
                order.iter().enumerate().map(|(i, &v)| (v, i)).collect();
            for &(s, d) in &t.edges {
                assert!(pos[&s] < pos[&d]);
            }
        }
    }

    #[test]
    fn arborescence_accessors() {
        let t = Arborescence {
            root: 0,
            edges: vec![(0, 1), (1, 2), (0, 3)],
        };
        assert_eq!(t.parent(2), Some(1));
        assert_eq!(t.parent(0), None);
        assert_eq!(t.children(0), vec![1, 3]);
        assert_eq!(t.depth(), 2);
        assert_eq!(t.bfs_order(), vec![0, 1, 3, 2]);
    }
}
