//! Packing edge-disjoint spanning trees in undirected graphs (Appendix C).
//!
//! Theorem 1's proof needs, for every candidate fault-free subgraph `H̄`
//! with min cut `U`, a set of `⌊U/2⌋` edge-disjoint undirected spanning
//! trees (Tutte/Nash-Williams, cited as [16] in the paper); the columns of
//! the check matrix `C_H` indexed by each tree form the invertible blocks of
//! `M_H`. This module packs those trees with the classic matroid-union
//! augmenting-path algorithm on `k` copies of the graphic matroid.

use std::collections::{HashMap, VecDeque};

use crate::graph::NodeId;
use crate::undirected::UnGraph;

/// One packed spanning tree: a list of undirected edges `(a, b)` with the
/// multiplicity-copy index they came from.
pub type Tree = Vec<(NodeId, NodeId)>;

/// An element of the matroid-union ground set: one unit of capacity of one
/// undirected edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Element {
    a: NodeId,
    b: NodeId,
}

/// Disjoint-set forest for cycle detection.
struct Dsu {
    parent: Vec<usize>,
}

impl Dsu {
    fn new(n: usize) -> Self {
        Dsu {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, x: usize) -> usize {
        if self.parent[x] != x {
            let r = self.find(self.parent[x]);
            self.parent[x] = r;
        }
        self.parent[x]
    }

    fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        self.parent[ra] = rb;
        true
    }
}

/// State of the matroid-union computation: `k` edge-disjoint forests.
struct Packer {
    node_count: usize,
    k: usize,
    elements: Vec<Element>,
    /// forest index each element currently belongs to, if any.
    assignment: Vec<Option<usize>>,
}

impl Packer {
    /// Members of forest `i`.
    fn forest(&self, i: usize) -> impl Iterator<Item = usize> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |(_, a)| **a == Some(i))
            .map(|(id, _)| id)
    }

    /// Whether forest `i` plus element `x` stays acyclic.
    fn independent_with(&self, i: usize, x: usize) -> bool {
        let mut dsu = Dsu::new(self.node_count);
        for id in self.forest(i) {
            if id != x {
                let e = self.elements[id];
                dsu.union(e.a, e.b);
            }
        }
        let e = self.elements[x];
        dsu.find(e.a) != dsu.find(e.b)
    }

    /// The circuit created by adding `x` to forest `i`: the elements of the
    /// forest on the path between `x`'s endpoints. Empty when independent.
    fn circuit(&self, i: usize, x: usize) -> Vec<usize> {
        let e = self.elements[x];
        // BFS in forest i from e.a to e.b, tracking the element used.
        let mut adj: HashMap<NodeId, Vec<(NodeId, usize)>> = HashMap::new();
        for id in self.forest(i) {
            if id == x {
                continue;
            }
            let f = self.elements[id];
            adj.entry(f.a).or_default().push((f.b, id));
            adj.entry(f.b).or_default().push((f.a, id));
        }
        let mut prev: HashMap<NodeId, (NodeId, usize)> = HashMap::new();
        let mut q = VecDeque::from([e.a]);
        let mut seen = std::collections::HashSet::from([e.a]);
        while let Some(u) = q.pop_front() {
            if u == e.b {
                break;
            }
            if let Some(nbrs) = adj.get(&u) {
                for &(v, id) in nbrs {
                    if seen.insert(v) {
                        prev.insert(v, (u, id));
                        q.push_back(v);
                    }
                }
            }
        }
        if !prev.contains_key(&e.b) && e.a != e.b {
            return Vec::new(); // endpoints disconnected: independent
        }
        let mut out = Vec::new();
        let mut cur = e.b;
        while cur != e.a {
            let (p, id) = prev[&cur];
            out.push(id);
            cur = p;
        }
        out
    }

    /// Attempts to bring unassigned element `e0` into some forest via a
    /// shortest augmenting swap sequence. Returns whether it succeeded.
    fn augment(&mut self, e0: usize) -> bool {
        debug_assert!(self.assignment[e0].is_none());
        // BFS over elements; parent[x] = (predecessor element, forest where
        // x lies on predecessor's circuit).
        let mut parent: HashMap<usize, (usize, usize)> = HashMap::new();
        let mut q = VecDeque::from([e0]);
        let mut visited = std::collections::HashSet::from([e0]);

        while let Some(x) = q.pop_front() {
            for i in 0..self.k {
                if Some(i) == self.assignment[x] {
                    continue;
                }
                if self.independent_with(i, x) {
                    // Unwind the swap chain: x enters forest i; its parent
                    // (if any) takes x's old slot, and so on up to e0.
                    let mut cur = x;
                    let mut dest = i;
                    loop {
                        let old = self.assignment[cur];
                        self.assignment[cur] = Some(dest);
                        match parent.get(&cur) {
                            None => return true, // cur == e0
                            Some(&(pred, forest)) => {
                                debug_assert_eq!(old, Some(forest));
                                dest = forest;
                                cur = pred;
                            }
                        }
                    }
                }
                for y in self.circuit(i, x) {
                    if visited.insert(y) {
                        parent.insert(y, (x, i));
                        q.push_back(y);
                    }
                }
            }
        }
        false
    }
}

/// Attempts to pack `k` edge-disjoint spanning trees in `u` (each edge used
/// by at most `cap` trees in total across its capacity units).
///
/// Returns `None` if no such packing exists — by Nash-Williams/Tutte this
/// happens exactly when some partition of the nodes has fewer than
/// `k · (parts − 1)` crossing capacity; in particular `k = ⌊U/2⌋` (half the
/// pairwise min cut) always succeeds.
pub fn pack_spanning_trees(u: &UnGraph, k: usize) -> Option<Vec<Tree>> {
    let nodes: Vec<NodeId> = u.nodes().collect();
    if nodes.len() <= 1 || k == 0 {
        return Some(vec![Vec::new(); k]);
    }
    let mut elements = Vec::new();
    for (_, e) in u.edges() {
        for _ in 0..e.cap {
            elements.push(Element { a: e.a, b: e.b });
        }
    }
    let n_elem = elements.len();
    let mut p = Packer {
        node_count: u.node_count(),
        k,
        elements,
        assignment: vec![None; n_elem],
    };
    for e0 in 0..n_elem {
        // One attempt per element: if no augmenting sequence exists now, the
        // element stays spanned by the union forever (closure is monotone).
        p.augment(e0);
    }
    let need = nodes.len() - 1;
    let mut trees = Vec::with_capacity(k);
    for i in 0..k {
        let tree: Tree = p
            .forest(i)
            .map(|id| (p.elements[id].a, p.elements[id].b))
            .collect();
        if tree.len() != need {
            return None;
        }
        trees.push(tree);
    }
    Some(trees)
}

/// The maximum number of edge-disjoint spanning trees packable in `u`
/// (the graph's *strength*, Nash-Williams/Tutte number).
pub fn max_spanning_trees(u: &UnGraph) -> usize {
    let nodes: Vec<NodeId> = u.nodes().collect();
    if nodes.len() <= 1 {
        return 1 << 20; // vacuously unbounded; cap for sanity
    }
    // The strength is at most total_cap / (n-1); binary search the largest
    // feasible k.
    let total: u64 = u.edges().map(|(_, e)| e.cap).sum();
    let mut lo = 0usize;
    let mut hi = (total / (nodes.len() as u64 - 1)) as usize;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if pack_spanning_trees(u, mid).is_some() {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

/// Validates a packing: each tree spans the active nodes and total usage of
/// each undirected edge stays within its capacity.
pub fn validate_tree_packing(u: &UnGraph, trees: &[Tree]) -> Result<(), String> {
    let nodes: Vec<NodeId> = u.nodes().collect();
    let mut usage: HashMap<(NodeId, NodeId), u64> = HashMap::new();
    for (i, t) in trees.iter().enumerate() {
        if t.len() != nodes.len().saturating_sub(1) {
            return Err(format!(
                "tree {i} has {} edges, want {}",
                t.len(),
                nodes.len() - 1
            ));
        }
        let mut dsu = Dsu::new(u.node_count());
        for &(a, b) in t {
            if u.find_edge(a, b).is_none() {
                return Err(format!("tree {i} uses non-edge ({a}, {b})"));
            }
            if !dsu.union(a, b) {
                return Err(format!("tree {i} has a cycle at ({a}, {b})"));
            }
            *usage.entry((a.min(b), a.max(b))).or_insert(0) += 1;
        }
    }
    for ((a, b), used) in usage {
        let cap = u.find_edge(a, b).map(|(_, e)| e.cap).unwrap_or(0);
        if used > cap {
            return Err(format!("edge ({a}, {b}) used {used} > cap {cap}"));
        }
    }
    Ok(())
}

/// Exhaustive Nash-Williams bound for small graphs: the minimum over all
/// partitions `P` of active nodes of `⌊ cross(P) / (|P| − 1) ⌋`. Exponential
/// in node count — test-support only.
pub fn nash_williams_bound_exhaustive(u: &UnGraph) -> usize {
    let nodes: Vec<NodeId> = u.nodes().collect();
    let n = nodes.len();
    assert!(
        n <= 10,
        "exhaustive partition enumeration is for small graphs"
    );
    if n <= 1 {
        return 1 << 20;
    }
    // Enumerate set partitions via restricted growth strings.
    let mut best = usize::MAX;
    let mut rgs = vec![0usize; n];
    loop {
        let parts = rgs.iter().copied().max().unwrap() + 1; // nab-lint: allow(NAB003): rgs is non-empty: one entry per node
        if parts >= 2 {
            let mut cross = 0u64;
            for (_, e) in u.edges() {
                let ia = nodes.iter().position(|&v| v == e.a).unwrap(); // nab-lint: allow(NAB003): edge endpoints are members of nodes
                let ib = nodes.iter().position(|&v| v == e.b).unwrap(); // nab-lint: allow(NAB003): edge endpoints are members of nodes
                if rgs[ia] != rgs[ib] {
                    cross += e.cap;
                }
            }
            best = best.min((cross / (parts as u64 - 1)) as usize);
        }
        // Next restricted growth string.
        let mut i = n - 1;
        loop {
            if i == 0 {
                return best;
            }
            let max_prefix = rgs[..i].iter().copied().max().unwrap(); // nab-lint: allow(NAB003): prefix is non-empty for i >= 1
            if rgs[i] <= max_prefix {
                rgs[i] += 1;
                for r in rgs[i + 1..].iter_mut() {
                    *r = 0;
                }
                break;
            }
            i -= 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::min_pairwise_cut_undirected;
    use crate::gen;

    #[test]
    fn k4_packs_two_unit_trees() {
        // K4 with unit capacities: strength 2 (6 edges / 3 per tree).
        let u = UnGraph::from_digraph(&gen::complete(4, 1));
        // Each undirected edge has cap 2 (two directions); K4 doubled has
        // strength 4: 12 units / 3 = 4 and it is achievable.
        let trees = pack_spanning_trees(&u, 4).expect("4 trees in doubled K4");
        validate_tree_packing(&u, &trees).unwrap();
    }

    #[test]
    fn strength_matches_exhaustive_nash_williams() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..12 {
            let g = gen::random_connected(5, 0.7, 2, &mut rng);
            let u = UnGraph::from_digraph(&g);
            let strength = max_spanning_trees(&u);
            let bound = nash_williams_bound_exhaustive(&u);
            assert_eq!(strength, bound, "strength mismatch on {u:?}");
        }
    }

    #[test]
    fn half_mincut_trees_always_pack() {
        // Tutte/Nash-Williams corollary used by Theorem 1: ⌊U/2⌋ spanning
        // trees exist when the pairwise min cut is U.
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..12 {
            let g = gen::random_connected(6, 0.6, 3, &mut rng);
            let u = UnGraph::from_digraph(&g);
            let cut = min_pairwise_cut_undirected(&u).unwrap();
            let k = (cut / 2) as usize;
            if k == 0 {
                continue;
            }
            let trees = pack_spanning_trees(&u, k)
                .unwrap_or_else(|| panic!("no {k}-tree packing with U={cut} in {u:?}"));
            validate_tree_packing(&u, &trees).unwrap();
        }
    }

    #[test]
    fn figure_2b_packs_a_spanning_tree() {
        let u = UnGraph::from_digraph(&gen::figure_2a());
        let trees = pack_spanning_trees(&u, 1).expect("one spanning tree");
        validate_tree_packing(&u, &trees).unwrap();
    }

    #[test]
    fn infeasible_k_returns_none() {
        // A path graph has strength 1.
        let mut u = UnGraph::new(3);
        u.add_edge(0, 1, 1);
        u.add_edge(1, 2, 1);
        assert!(pack_spanning_trees(&u, 1).is_some());
        assert!(pack_spanning_trees(&u, 2).is_none());
        assert_eq!(max_spanning_trees(&u), 1);
    }

    #[test]
    fn capacity_multiplicity_is_honored() {
        // Two nodes joined by one cap-3 edge: 3 "spanning trees" of K2.
        let mut u = UnGraph::new(2);
        u.add_edge(0, 1, 3);
        let trees = pack_spanning_trees(&u, 3).unwrap();
        assert_eq!(trees.len(), 3);
        validate_tree_packing(&u, &trees).unwrap();
        assert!(pack_spanning_trees(&u, 4).is_none());
    }

    #[test]
    fn disconnected_graph_packs_nothing() {
        let mut u = UnGraph::new(4);
        u.add_edge(0, 1, 5);
        u.add_edge(2, 3, 5);
        assert!(pack_spanning_trees(&u, 1).is_none());
        assert_eq!(max_spanning_trees(&u), 0);
    }

    #[test]
    fn single_node_graph_trivial() {
        let u = UnGraph::new(1);
        assert!(pack_spanning_trees(&u, 3).is_some());
    }
}
