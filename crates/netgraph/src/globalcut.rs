//! Stoer–Wagner global minimum cut for undirected capacitated graphs.
//!
//! `U_k` asks for the minimum over *all pairs* of undirected min cuts in
//! every candidate subgraph — exactly the global min cut. Stoer–Wagner
//! computes it in `O(V³)` instead of `V` max-flow runs, which matters
//! because `Ω_k` contains `C(n, n−f)` subgraphs.

use std::collections::BTreeSet;

use crate::graph::NodeId;
use crate::undirected::UnGraph;

/// The global minimum cut value of the active part of `u`, with one side
/// of an optimal cut.
///
/// Returns `None` when fewer than two nodes are active. A disconnected
/// graph returns `Some((0, …))`.
pub fn global_min_cut(u: &UnGraph) -> Option<(u64, BTreeSet<NodeId>)> {
    let nodes: Vec<NodeId> = u.nodes().collect();
    let n = nodes.len();
    if n < 2 {
        return None;
    }
    // Dense working copy over compact indices; `groups[i]` tracks which
    // original nodes have been merged into slot i.
    let idx_of = |v: NodeId| nodes.iter().position(|&x| x == v).unwrap(); // nab-lint: allow(NAB003): callers only index vertices drawn from nodes
    let mut w = vec![vec![0u64; n]; n];
    for (_, e) in u.edges() {
        let (a, b) = (idx_of(e.a), idx_of(e.b));
        w[a][b] += e.cap;
        w[b][a] += e.cap;
    }
    let mut groups: Vec<Vec<NodeId>> = nodes.iter().map(|&v| vec![v]).collect();
    let mut active: Vec<usize> = (0..n).collect();

    let mut best: Option<(u64, BTreeSet<NodeId>)> = None;

    while active.len() > 1 {
        // Maximum-adjacency (minimum-cut-phase) ordering.
        let mut in_a = vec![false; n];
        let mut weights = vec![0u64; n];
        let mut order = Vec::with_capacity(active.len());
        for _ in 0..active.len() {
            // Pick the most tightly connected remaining vertex.
            let &next = active
                .iter()
                .filter(|&&v| !in_a[v])
                .max_by_key(|&&v| weights[v])
                .expect("active vertex remains"); // nab-lint: allow(NAB003): loop invariant: active set is non-empty
            in_a[next] = true;
            order.push(next);
            for &v in &active {
                if !in_a[v] {
                    weights[v] += w[next][v];
                }
            }
        }
        let t = *order.last().unwrap(); // nab-lint: allow(NAB003): order holds >= 2 vertices for n >= 2
        let s = order[order.len() - 2];
        // Cut-of-the-phase: t alone against the rest.
        let cut_value = active.iter().filter(|&&v| v != t).map(|&v| w[t][v]).sum();
        let side: BTreeSet<NodeId> = groups[t].iter().copied().collect();
        if best.as_ref().is_none_or(|(b, _)| cut_value < *b) {
            best = Some((cut_value, side));
        }
        // Merge t into s.
        let t_group = std::mem::take(&mut groups[t]);
        groups[s].extend(t_group);
        for &v in &active {
            if v != s && v != t {
                w[s][v] += w[t][v];
                w[v][s] = w[s][v];
            }
        }
        active.retain(|&v| v != t);
    }

    best
}

/// Convenience: just the global min-cut value.
pub fn global_min_cut_value(u: &UnGraph) -> Option<u64> {
    global_min_cut(u).map(|(v, _)| v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::min_cut_undirected;
    use crate::gen;
    use crate::undirected::UnGraph;

    /// Oracle: min over all pairs of s–t max-flow cuts.
    fn brute_force(u: &UnGraph) -> Option<u64> {
        let nodes: Vec<_> = u.nodes().collect();
        if nodes.len() < 2 {
            return None;
        }
        let mut best = u64::MAX;
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                best = best.min(min_cut_undirected(u, nodes[i], nodes[j]));
            }
        }
        Some(best)
    }

    #[test]
    fn matches_brute_force_on_random_graphs() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1234);
        for _ in 0..20 {
            let g = gen::random_connected(7, 0.5, 4, &mut rng);
            let u = UnGraph::from_digraph(&g);
            assert_eq!(global_min_cut_value(&u), brute_force(&u), "graph {u:?}");
        }
    }

    #[test]
    fn cut_side_is_proper_and_achieves_value() {
        let u = UnGraph::from_digraph(&gen::complete(5, 2));
        let (value, side) = global_min_cut(&u).unwrap();
        assert!(!side.is_empty() && side.len() < 5);
        // Sum of capacities crossing the side must equal the cut value.
        let crossing: u64 = u
            .edges()
            .filter(|(_, e)| side.contains(&e.a) != side.contains(&e.b))
            .map(|(_, e)| e.cap)
            .sum();
        assert_eq!(crossing, value);
    }

    #[test]
    fn paper_example_cut() {
        // Figure 1(a) undirected: global min cut is min over pairs; the
        // thin corner (node 2 or 4, degree-limited) gives the value.
        let u = UnGraph::from_digraph(&gen::figure_1a());
        assert_eq!(global_min_cut_value(&u), brute_force(&u));
    }

    #[test]
    fn disconnected_graph_has_zero_cut() {
        let mut u = UnGraph::new(4);
        u.add_edge(0, 1, 3);
        u.add_edge(2, 3, 3);
        assert_eq!(global_min_cut_value(&u), Some(0));
    }

    #[test]
    fn two_nodes_cut_is_edge_capacity() {
        let mut u = UnGraph::new(2);
        u.add_edge(0, 1, 7);
        assert_eq!(global_min_cut_value(&u), Some(7));
    }

    #[test]
    fn single_node_is_none() {
        let u = UnGraph::new(1);
        assert_eq!(global_min_cut_value(&u), None);
    }

    #[test]
    fn respects_inactive_nodes() {
        let mut g = gen::complete(5, 1);
        g.remove_node(4);
        let u = UnGraph::from_digraph(&g);
        // K4 with doubled caps (2 per undirected edge): global cut = 6.
        assert_eq!(global_min_cut_value(&u), Some(6));
    }
}
