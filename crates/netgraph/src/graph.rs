//! The directed capacitated graph type used throughout the workspace.
//!
//! Nodes are small integer ids that stay *stable across subgraph operations*:
//! NAB repeatedly removes edges and nodes from the running graph `G_k`
//! (dispute control), and the protocol state at node `i` must keep meaning
//! "node `i`" afterwards. A [`DiGraph`] therefore keeps a fixed universe of
//! `node_count` ids plus an `active` mask, rather than renumbering.

use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Index of a node. The paper numbers nodes `1..n` with node 1 the source;
/// we use `0..n` with node 0 the source.
pub type NodeId = usize;

/// Index of an edge within a [`DiGraph`].
pub type EdgeId = usize;

/// A directed capacitated link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Tail (transmitting node).
    pub src: NodeId,
    /// Head (receiving node).
    pub dst: NodeId,
    /// Capacity in bits per unit time; always ≥ 1 for a live edge.
    pub cap: u64,
}

/// A directed graph with integer link capacities and a stable node universe.
///
/// # Example
///
/// ```
/// use nab_netgraph::DiGraph;
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1, 2);
/// g.add_edge(1, 2, 1);
/// assert_eq!(g.out_edges(0).count(), 1);
/// assert_eq!(g.total_capacity(), 3);
/// ```
#[derive(Clone)]
pub struct DiGraph {
    node_count: usize,
    active: Vec<bool>,
    edges: Vec<Edge>,
    /// Derived adjacency index `(src, dst) → EdgeId`, kept in sync with
    /// `edges` so membership tests are O(1) instead of an O(E) scan —
    /// generators and packers probe candidate edges millions of times on
    /// datacenter-scale graphs. Never consulted for iteration, so it
    /// cannot perturb any deterministic edge order.
    index: HashMap<(NodeId, NodeId), EdgeId>,
}

/// Graph identity is the node universe, the active mask, and the edge
/// list (in insertion order); the adjacency index is derived state.
impl PartialEq for DiGraph {
    fn eq(&self, other: &Self) -> bool {
        self.node_count == other.node_count
            && self.active == other.active
            && self.edges == other.edges
    }
}

impl Eq for DiGraph {}

impl DiGraph {
    /// Creates a graph with nodes `0..node_count` (all active) and no edges.
    pub fn new(node_count: usize) -> Self {
        DiGraph {
            node_count,
            active: vec![true; node_count],
            edges: Vec::new(),
            index: HashMap::new(),
        }
    }

    /// Size of the node universe (including deactivated nodes).
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of currently active nodes.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Whether node `v` is active.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the node universe.
    pub fn is_active(&self, v: NodeId) -> bool {
        assert!(v < self.node_count, "node id out of range");
        self.active[v]
    }

    /// Iterator over active node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).filter(move |&v| self.active[v])
    }

    /// The set of active nodes.
    pub fn node_set(&self) -> BTreeSet<NodeId> {
        self.nodes().collect()
    }

    /// Adds a directed edge.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range or inactive, on self-loops, on
    /// zero capacity, or if the edge `(src, dst)` already exists (the model
    /// is a simple graph).
    pub fn add_edge(&mut self, src: NodeId, dst: NodeId, cap: u64) -> EdgeId {
        assert!(
            src < self.node_count && dst < self.node_count,
            "endpoint out of range"
        );
        assert!(self.active[src] && self.active[dst], "endpoint inactive");
        assert_ne!(src, dst, "self-loops are not allowed");
        assert!(cap > 0, "link capacities are positive integers");
        assert!(
            !self.index.contains_key(&(src, dst)),
            "duplicate edge ({src}, {dst}); the network is a simple graph"
        );
        self.edges.push(Edge { src, dst, cap });
        let id = self.edges.len() - 1;
        self.index.insert((src, dst), id);
        id
    }

    /// Re-provisions the capacity of edge `id` in place (an OCS-style
    /// link degrade/boost: the edge set is untouched, only the rate
    /// changes).
    ///
    /// # Panics
    ///
    /// Panics on an unknown edge id or zero capacity.
    pub fn set_edge_cap(&mut self, id: EdgeId, cap: u64) {
        assert!(id < self.edges.len(), "unknown edge id {id}");
        assert!(cap > 0, "link capacities are positive integers");
        self.edges[id].cap = cap;
    }

    /// All edges (between active nodes), with their ids.
    pub fn edges(&self) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| self.active[e.src] && self.active[e.dst])
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edges().count()
    }

    /// Looks up the edge `(src, dst)` if it exists between active nodes.
    /// O(1) via the adjacency index.
    pub fn find_edge(&self, src: NodeId, dst: NodeId) -> Option<(EdgeId, &Edge)> {
        let &id = self.index.get(&(src, dst))?;
        let e = &self.edges[id];
        (self.active[e.src] && self.active[e.dst]).then_some((id, e))
    }

    /// The edge with the given id, if live.
    pub fn edge(&self, id: EdgeId) -> Option<&Edge> {
        let e = self.edges.get(id)?;
        (self.active[e.src] && self.active[e.dst]).then_some(e)
    }

    /// Outgoing live edges of `v`.
    pub fn out_edges(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges().filter(move |(_, e)| e.src == v)
    }

    /// Incoming live edges of `v`.
    pub fn in_edges(&self, v: NodeId) -> impl Iterator<Item = (EdgeId, &Edge)> + '_ {
        self.edges().filter(move |(_, e)| e.dst == v)
    }

    /// Out-neighbors of `v`.
    pub fn out_neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.out_edges(v).map(|(_, e)| e.dst)
    }

    /// Nodes adjacent to `v` in either direction.
    pub fn neighbors(&self, v: NodeId) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        for (_, e) in self.edges() {
            if e.src == v {
                out.insert(e.dst);
            } else if e.dst == v {
                out.insert(e.src);
            }
        }
        out
    }

    /// Sum of capacities of all live edges.
    pub fn total_capacity(&self) -> u64 {
        self.edges().map(|(_, e)| e.cap).sum()
    }

    /// Deactivates a node, removing it (and implicitly its incident edges)
    /// from all queries.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn remove_node(&mut self, v: NodeId) {
        assert!(v < self.node_count, "node id out of range");
        self.active[v] = false;
    }

    /// Removes both directed edges between `a` and `b` if present.
    ///
    /// This is the dispute-control operation: when nodes `a, b` are found in
    /// dispute, the links between them are excluded from `E_{k+1}`.
    pub fn remove_edges_between(&mut self, a: NodeId, b: NodeId) {
        self.edges
            .retain(|e| !((e.src == a && e.dst == b) || (e.src == b && e.dst == a)));
        // Compaction renumbers edge ids; rebuild the derived index.
        self.index = self
            .edges
            .iter()
            .enumerate()
            .map(|(id, e)| ((e.src, e.dst), id))
            .collect();
    }

    /// The subgraph induced by `keep` (deactivates all other nodes).
    ///
    /// Node ids are preserved.
    pub fn induced_subgraph(&self, keep: &BTreeSet<NodeId>) -> DiGraph {
        let mut g = self.clone();
        for v in 0..self.node_count {
            if !keep.contains(&v) {
                g.active[v] = false;
            }
        }
        g
    }

    /// Whether every active node is reachable from `s` following directed
    /// edges.
    pub fn all_reachable_from(&self, s: NodeId) -> bool {
        if !self.is_active(s) {
            return false;
        }
        let mut seen = vec![false; self.node_count];
        let mut stack = vec![s];
        seen[s] = true;
        while let Some(u) = stack.pop() {
            for v in self.out_neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        self.nodes().all(|v| seen[v])
    }

    /// Renders the graph in Graphviz DOT format (for debugging/docs).
    pub fn to_dot(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::from("digraph G {\n");
        for v in self.nodes() {
            let _ = writeln!(s, "  n{v};");
        }
        for (_, e) in self.edges() {
            let _ = writeln!(s, "  n{} -> n{} [label=\"{}\"];", e.src, e.dst, e.cap);
        }
        s.push('}');
        s
    }
}

impl fmt::Debug for DiGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DiGraph(n={}, active={}, edges=[",
            self.node_count,
            self.active_count()
        )?;
        for (i, (_, e)) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}->{}:{}", e.src, e.dst, e.cap)?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> DiGraph {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 3, 2);
        g.add_edge(0, 2, 1);
        g.add_edge(2, 3, 1);
        g
    }

    #[test]
    fn basic_accessors() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.active_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.total_capacity(), 6);
        assert_eq!(g.out_neighbors(0).collect::<Vec<_>>(), vec![1, 2]);
        assert_eq!(g.neighbors(3), BTreeSet::from([1, 2]));
        assert!(g.find_edge(0, 1).is_some());
        assert!(g.find_edge(1, 0).is_none());
    }

    #[test]
    fn removing_node_hides_incident_edges() {
        let mut g = diamond();
        g.remove_node(1);
        assert_eq!(g.active_count(), 3);
        assert_eq!(g.edge_count(), 2);
        assert!(g.find_edge(0, 1).is_none());
        assert!(g.find_edge(0, 2).is_some());
    }

    #[test]
    fn remove_edges_between_is_bidirectional() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 0, 3);
        g.remove_edges_between(0, 1);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn induced_subgraph_preserves_ids() {
        let g = diamond();
        let sub = g.induced_subgraph(&BTreeSet::from([0, 2, 3]));
        assert!(sub.is_active(3));
        assert!(!sub.is_active(1));
        assert!(sub.find_edge(2, 3).is_some());
        assert!(sub.find_edge(0, 1).is_none());
        // Original untouched.
        assert!(g.is_active(1));
    }

    #[test]
    fn reachability() {
        let g = diamond();
        assert!(g.all_reachable_from(0));
        assert!(!g.all_reachable_from(3)); // 3 has no outgoing edges
        let mut g2 = g.clone();
        g2.remove_node(1);
        assert!(g2.all_reachable_from(0)); // still via 2
        g2.remove_node(2);
        assert!(!g2.all_reachable_from(0));
    }

    #[test]
    #[should_panic(expected = "duplicate edge")]
    fn duplicate_edges_rejected() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 1);
        g.add_edge(0, 1, 2);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        let mut g = DiGraph::new(2);
        g.add_edge(1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 0);
    }

    #[test]
    fn dot_output_mentions_edges() {
        let g = diamond();
        let dot = g.to_dot();
        assert!(dot.contains("n0 -> n1"));
        assert!(dot.contains("label=\"2\""));
    }
}
