//! Max-flow / min-cut (Dinic's algorithm) and the broadcast rate `γ`.
//!
//! `MINCUT(G, 1, j)` is the paper's notation for the s–t min cut from the
//! source to node `j`; the Phase-1 broadcast rate is
//! `γ_k = min_{j ∈ V_k} MINCUT(G_k, 1, j)` (Section 2), and the
//! equality-check parameter comes from pairwise min cuts of undirected
//! views (Section 3).

use std::collections::BTreeSet;

use crate::graph::{DiGraph, NodeId};
use crate::undirected::UnGraph;

/// A reusable Dinic max-flow solver over an explicit arc list.
///
/// Build with [`FlowNet::new`], add arcs, then call [`FlowNet::max_flow`].
/// Residual state persists between calls, so create a fresh net per query.
#[derive(Debug, Clone)]
pub struct FlowNet {
    n: usize,
    // arcs[i] and arcs[i^1] are a residual pair.
    to: Vec<usize>,
    cap: Vec<u64>,
    head: Vec<Vec<usize>>, // arc indices per node
}

impl FlowNet {
    /// An empty flow network over `n` nodes.
    pub fn new(n: usize) -> Self {
        FlowNet {
            n,
            to: Vec::new(),
            cap: Vec::new(),
            head: vec![Vec::new(); n],
        }
    }

    /// Adds a directed arc `u → v` with the given capacity (and its zero
    /// residual reverse).
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    pub fn add_arc(&mut self, u: usize, v: usize, cap: u64) -> usize {
        assert!(u < self.n && v < self.n, "arc endpoint out of range");
        let id = self.to.len();
        self.to.push(v);
        self.cap.push(cap);
        self.head[u].push(id);
        self.to.push(u);
        self.cap.push(0);
        self.head[v].push(id + 1);
        id
    }

    /// Remaining capacity of the arc returned by [`FlowNet::add_arc`].
    pub fn residual(&self, arc: usize) -> u64 {
        self.cap[arc]
    }

    /// Flow pushed through the arc returned by [`FlowNet::add_arc`]
    /// (capacity of its reverse twin).
    pub fn flow_on(&self, arc: usize) -> u64 {
        self.cap[arc ^ 1]
    }

    fn bfs_levels(&self, s: usize, t: usize) -> Option<Vec<i32>> {
        let mut level = vec![-1i32; self.n];
        let mut q = std::collections::VecDeque::new();
        level[s] = 0;
        q.push_back(s);
        while let Some(u) = q.pop_front() {
            for &a in &self.head[u] {
                let v = self.to[a];
                if self.cap[a] > 0 && level[v] < 0 {
                    level[v] = level[u] + 1;
                    q.push_back(v);
                }
            }
        }
        (level[t] >= 0).then_some(level)
    }

    fn dfs_push(
        &mut self,
        u: usize,
        t: usize,
        pushed: u64,
        level: &[i32],
        it: &mut [usize],
    ) -> u64 {
        if u == t {
            return pushed;
        }
        while it[u] < self.head[u].len() {
            let a = self.head[u][it[u]];
            let v = self.to[a];
            if self.cap[a] > 0 && level[v] == level[u] + 1 {
                let d = self.dfs_push(v, t, pushed.min(self.cap[a]), level, it);
                if d > 0 {
                    self.cap[a] -= d;
                    self.cap[a ^ 1] += d;
                    return d;
                }
            }
            it[u] += 1;
        }
        0
    }

    /// Computes the max flow from `s` to `t`, consuming residual capacity.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow(&mut self, s: usize, t: usize) -> u64 {
        assert!(s < self.n && t < self.n && s != t, "bad flow endpoints");
        let mut total = 0u64;
        while let Some(level) = self.bfs_levels(s, t) {
            let mut it = vec![0usize; self.n];
            loop {
                let pushed = self.dfs_push(s, t, u64::MAX, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    /// Like [`FlowNet::max_flow`] but stops augmenting once `limit` units
    /// have been pushed, returning `min(max_flow, limit)`.
    ///
    /// Threshold queries ("is the cut at least `k`?") and witness rebuilds
    /// only need this much flow, and capping bounds the work at
    /// `O(limit · (V + E))` instead of a full max-flow.
    ///
    /// # Panics
    ///
    /// Panics if `s == t` or either is out of range.
    pub fn max_flow_limited(&mut self, s: usize, t: usize, limit: u64) -> u64 {
        assert!(s < self.n && t < self.n && s != t, "bad flow endpoints");
        let mut total = 0u64;
        while total < limit {
            let Some(level) = self.bfs_levels(s, t) else {
                break;
            };
            let mut it = vec![0usize; self.n];
            while total < limit {
                let pushed = self.dfs_push(s, t, limit - total, &level, &mut it);
                if pushed == 0 {
                    break;
                }
                total += pushed;
            }
        }
        total
    }

    /// After [`FlowNet::max_flow`], the set of nodes reachable from `s` in
    /// the residual graph — the source side of a minimum cut.
    pub fn source_side(&self, s: usize) -> BTreeSet<usize> {
        let mut seen = vec![false; self.n];
        seen[s] = true;
        let mut stack = vec![s];
        while let Some(u) = stack.pop() {
            for &a in &self.head[u] {
                let v = self.to[a];
                if self.cap[a] > 0 && !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        (0..self.n).filter(|&v| seen[v]).collect()
    }
}

/// `MINCUT(G, s, t)`: the max-flow value from `s` to `t` in the directed
/// capacitated graph.
///
/// # Panics
///
/// Panics if `s` or `t` is inactive, or `s == t`.
pub fn min_cut(g: &DiGraph, s: NodeId, t: NodeId) -> u64 {
    assert!(
        g.is_active(s) && g.is_active(t),
        "min_cut endpoints must be active"
    );
    let mut net = FlowNet::new(g.node_count());
    for (_, e) in g.edges() {
        net.add_arc(e.src, e.dst, e.cap);
    }
    net.max_flow(s, t)
}

/// The broadcast rate `γ = min_{j} MINCUT(G, s, j)` over all active `j ≠ s`.
///
/// Returns 0 if some node is unreachable. By the max-flow/min-cut theorem
/// and Edmonds' theorem this is the highest rate at which `s` can stream
/// data to *all* other nodes simultaneously (Appendix A).
///
/// # Panics
///
/// Panics if `s` is inactive.
pub fn broadcast_rate(g: &DiGraph, s: NodeId) -> u64 {
    assert!(g.is_active(s), "source must be active");
    g.nodes()
        .filter(|&j| j != s)
        .map(|j| min_cut(g, s, j))
        .min()
        .unwrap_or(0)
}

/// `MINCUT(H̄, s, t)` in an undirected capacitated graph.
///
/// # Panics
///
/// Panics if `s` or `t` is inactive, or `s == t`.
pub fn min_cut_undirected(u: &UnGraph, s: NodeId, t: NodeId) -> u64 {
    assert!(
        u.is_active(s) && u.is_active(t),
        "min_cut endpoints must be active"
    );
    let mut net = FlowNet::new(u.node_count());
    for (_, e) in u.edges() {
        // An undirected edge behaves as a pair of independent antiparallel
        // arcs for max-flow purposes.
        net.add_arc(e.a, e.b, e.cap);
        net.add_arc(e.b, e.a, e.cap);
    }
    net.max_flow(s, t)
}

/// The minimum over all pairs of active nodes of the undirected min cut —
/// the quantity `U_H = min_{i,j∈H} MINCUT(H̄, i, j)` from Section 3.
///
/// Returns `None` when fewer than two nodes are active.
pub fn min_pairwise_cut_undirected(u: &UnGraph) -> Option<u64> {
    let nodes: Vec<NodeId> = u.nodes().collect();
    if nodes.len() < 2 {
        return None;
    }
    let mut best = u64::MAX;
    // Undirected global pairwise min cut: fixing one endpoint suffices
    // (the minimizing pair (i, j) is separated by some cut, and any fixed
    // vertex lies on one side of it, paired against a vertex on the other).
    let s = nodes[0];
    for &t in &nodes[1..] {
        best = best.min(min_cut_undirected(u, s, t));
    }
    Some(best)
}

/// The source side of a minimum `s`–`t` cut in an undirected graph
/// (used to construct the partition attacks of Theorem 2's proof).
pub fn min_cut_partition_undirected(
    u: &UnGraph,
    s: NodeId,
    t: NodeId,
) -> (BTreeSet<NodeId>, BTreeSet<NodeId>) {
    let mut net = FlowNet::new(u.node_count());
    for (_, e) in u.edges() {
        net.add_arc(e.a, e.b, e.cap);
        net.add_arc(e.b, e.a, e.cap);
    }
    net.max_flow(s, t);
    let raw = net.source_side(s);
    let left: BTreeSet<NodeId> = u.nodes().filter(|v| raw.contains(v)).collect();
    let right: BTreeSet<NodeId> = u.nodes().filter(|v| !raw.contains(v)).collect();
    (left, right)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The directed graph of Figure 1(a): 4 nodes, capacities as printed.
    /// (Edge list reconstructed so that MINCUT(1,2)=MINCUT(1,4)=2,
    /// MINCUT(1,3)=3, γ=2, matching the paper's stated values.)
    fn figure_1a() -> DiGraph {
        crate::gen::figure_1a()
    }

    #[test]
    fn figure_1a_mincuts_match_paper() {
        let g = figure_1a();
        // Paper: MINCUT(G,1,2) = MINCUT(G,1,4) = 2, MINCUT(G,1,3) = 3, γ = 2.
        assert_eq!(min_cut(&g, 0, 1), 2);
        assert_eq!(min_cut(&g, 0, 3), 2);
        assert_eq!(min_cut(&g, 0, 2), 3);
        assert_eq!(broadcast_rate(&g, 0), 2);
    }

    #[test]
    fn simple_path_flow() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 5);
        g.add_edge(1, 2, 3);
        assert_eq!(min_cut(&g, 0, 2), 3);
        assert_eq!(broadcast_rate(&g, 0), 3);
    }

    #[test]
    fn parallel_paths_add() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 3, 2);
        g.add_edge(0, 2, 3);
        g.add_edge(2, 3, 3);
        assert_eq!(min_cut(&g, 0, 3), 5);
    }

    #[test]
    fn unreachable_node_gives_zero_rate() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1);
        // node 2 unreachable
        assert_eq!(broadcast_rate(&g, 0), 0);
    }

    #[test]
    fn undirected_cut_counts_both_directions() {
        let mut g = DiGraph::new(2);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 0, 3);
        let u = UnGraph::from_digraph(&g);
        assert_eq!(min_cut_undirected(&u, 0, 1), 5);
        assert_eq!(min_pairwise_cut_undirected(&u), Some(5));
    }

    #[test]
    fn pairwise_cut_on_ring() {
        // 4-cycle with unit capacities: every pairwise cut is 2.
        let mut u = UnGraph::new(4);
        u.add_edge(0, 1, 1);
        u.add_edge(1, 2, 1);
        u.add_edge(2, 3, 1);
        u.add_edge(3, 0, 1);
        assert_eq!(min_pairwise_cut_undirected(&u), Some(2));
    }

    #[test]
    fn min_cut_partition_separates_endpoints() {
        let mut u = UnGraph::new(4);
        u.add_edge(0, 1, 1);
        u.add_edge(1, 2, 1);
        u.add_edge(2, 3, 1);
        let (l, r) = min_cut_partition_undirected(&u, 0, 3);
        assert!(l.contains(&0) && r.contains(&3));
        assert_eq!(l.len() + r.len(), 4);
    }

    #[test]
    fn source_side_after_maxflow_is_min_cut() {
        // Bottleneck edge 1->2 with cap 1.
        let mut net = FlowNet::new(4);
        net.add_arc(0, 1, 10);
        let bottleneck = net.add_arc(1, 2, 1);
        net.add_arc(2, 3, 10);
        assert_eq!(net.max_flow(0, 3), 1);
        assert_eq!(net.flow_on(bottleneck), 1);
        assert_eq!(net.residual(bottleneck), 0);
        let side = net.source_side(0);
        assert!(side.contains(&0) && side.contains(&1));
        assert!(!side.contains(&2) && !side.contains(&3));
    }

    #[test]
    fn flow_respects_inactive_nodes() {
        let mut g = DiGraph::new(4);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 3, 1);
        g.add_edge(0, 2, 1);
        g.add_edge(2, 3, 1);
        assert_eq!(min_cut(&g, 0, 3), 2);
        g.remove_node(1);
        assert_eq!(min_cut(&g, 0, 3), 1);
    }
}
