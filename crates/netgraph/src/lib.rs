//! Capacitated graphs, flows, connectivity, and tree packings for NAB.
//!
//! The paper's network model is a directed simple graph `G(V, E)` where each
//! directed link `e` has an integer capacity `z_e` (bits per unit time).
//! Everything NAB needs from graph theory lives here:
//!
//! - [`graph::DiGraph`] / [`undirected::UnGraph`] — the two graph views of a
//!   network (Figure 2 of the paper),
//! - [`flow`] — Dinic max-flow, `MINCUT(G, s, t)`, and the broadcast rate
//!   `γ = min_j MINCUT(G, 1, j)`,
//! - [`connectivity`] — directed vertex connectivity and vertex-disjoint
//!   path extraction (used to emulate a complete graph over a
//!   `2f+1`-connected network),
//! - [`arborescence`] — Edmonds-style packing of `γ` capacity-respecting
//!   spanning arborescences (Phase 1 unreliable broadcast, Appendix A),
//! - [`treepack`] — matroid-union packing of `⌊U/2⌋` undirected spanning
//!   trees (the structure underlying Theorem 1, Appendix C),
//! - [`globalcut`] — Stoer–Wagner global min cut (the all-pairs minimum
//!   `U_H` in one `O(V³)` pass instead of `V` max-flows),
//! - [`gomoryhu`] — Gomory–Hu trees for the full all-pairs min-cut
//!   structure (which pair is binding, and by how much),
//! - [`gen`] — graph generators, including the paper's worked examples,
//! - [`canon`] — stable graph keys: a relabeling-invariant canonical
//!   digest plus a labeled digest, the content-addressing layer under the
//!   engine's plan cache.

pub mod arborescence;
pub mod canon;
pub mod connectivity;
pub mod flow;
pub mod gen;
pub mod globalcut;
pub mod gomoryhu;
pub mod graph;
pub mod treepack;
pub mod undirected;

pub use graph::{DiGraph, Edge, EdgeId, NodeId};
pub use undirected::{UnEdge, UnGraph};
