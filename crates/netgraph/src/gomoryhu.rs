//! Gomory–Hu trees (Gusfield's algorithm): the all-pairs min-cut structure
//! of an undirected capacitated graph in `n − 1` max-flow computations.
//!
//! `U_H = min_{i,j} MINCUT(H̄, i, j)` only needs the global minimum (see
//! [`crate::globalcut`]), but capacity *analysis* wants more: which pair of
//! nodes is binding, and how much headroom every other pair has. A
//! Gomory–Hu tree answers every pairwise min-cut query from `n − 1` stored
//! cuts: `MINCUT(i, j)` equals the minimum edge weight on the unique
//! `i`–`j` tree path.

use std::collections::BTreeMap;

use crate::flow::FlowNet;
use crate::graph::NodeId;
use crate::undirected::UnGraph;

/// A Gomory–Hu (equivalent-flow) tree over the active nodes of a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GomoryHuTree {
    /// Active nodes in the order used by the tree arrays.
    nodes: Vec<NodeId>,
    /// `parent[i]` — index into `nodes` of the tree parent (root: itself).
    parent: Vec<usize>,
    /// `weight[i]` — min-cut value between `nodes[i]` and its parent.
    weight: Vec<u64>,
}

impl GomoryHuTree {
    /// Builds the tree with Gusfield's algorithm (`n − 1` max flows, no
    /// node contraction).
    ///
    /// Returns `None` when fewer than two nodes are active.
    pub fn build(u: &UnGraph) -> Option<Self> {
        let nodes: Vec<NodeId> = u.nodes().collect();
        let n = nodes.len();
        if n < 2 {
            return None;
        }
        let mut parent = vec![0usize; n];
        let mut weight = vec![0u64; n];

        for i in 1..n {
            let (cut, source_side) = st_cut(u, nodes[i], nodes[parent[i]]);
            weight[i] = cut;
            for j in (i + 1)..n {
                if parent[j] == parent[i] && source_side.contains(&nodes[j]) {
                    parent[j] = i;
                }
            }
        }
        Some(GomoryHuTree {
            nodes,
            parent,
            weight,
        })
    }

    /// The tree's node set.
    pub fn nodes(&self) -> &[NodeId] {
        &self.nodes
    }

    /// Tree edges as `(a, b, min_cut)` triples.
    pub fn edges(&self) -> Vec<(NodeId, NodeId, u64)> {
        (1..self.nodes.len())
            .map(|i| (self.nodes[i], self.nodes[self.parent[i]], self.weight[i]))
            .collect()
    }

    /// `MINCUT(a, b)` from the tree: the minimum edge weight on the `a`–`b`
    /// tree path.
    ///
    /// # Panics
    ///
    /// Panics if `a` or `b` is not a tree node, or `a == b`.
    pub fn min_cut(&self, a: NodeId, b: NodeId) -> u64 {
        assert_ne!(a, b, "min cut of a node with itself is undefined");
        let idx = |v: NodeId| {
            self.nodes
                .iter()
                .position(|&x| x == v)
                .unwrap_or_else(|| panic!("node {v} not in tree")) // nab-lint: allow(NAB003): tree stores a parent for every non-root node
        };
        // Walk both nodes to the root, tracking the minimum edge seen.
        let (mut x, mut y) = (idx(a), idx(b));
        let depth = |mut v: usize| {
            let mut d = 0;
            while self.parent[v] != v {
                v = self.parent[v];
                d += 1;
            }
            d
        };
        let (mut dx, mut dy) = (depth(x), depth(y));
        let mut best = u64::MAX;
        while dx > dy {
            best = best.min(self.weight[x]);
            x = self.parent[x];
            dx -= 1;
        }
        while dy > dx {
            best = best.min(self.weight[y]);
            y = self.parent[y];
            dy -= 1;
        }
        while x != y {
            best = best.min(self.weight[x].min(self.weight[y]));
            x = self.parent[x];
            y = self.parent[y];
        }
        best
    }

    /// The globally binding pair: the tree edge of minimum weight, i.e.
    /// the graph's global min cut and a pair achieving it.
    pub fn binding_pair(&self) -> (NodeId, NodeId, u64) {
        let i = (1..self.nodes.len())
            .min_by_key(|&i| self.weight[i])
            .expect("tree has an edge"); // nab-lint: allow(NAB003): path between distinct tree nodes has >= 1 edge
        (self.nodes[i], self.nodes[self.parent[i]], self.weight[i])
    }

    /// All pairwise min cuts as a map (test/report helper; `O(n²)` tree
    /// walks).
    pub fn all_pairs(&self) -> BTreeMap<(NodeId, NodeId), u64> {
        let mut out = BTreeMap::new();
        for (i, &a) in self.nodes.iter().enumerate() {
            for &b in &self.nodes[i + 1..] {
                out.insert((a, b), self.min_cut(a, b));
            }
        }
        out
    }
}

/// One s–t max flow on the undirected graph, returning the cut value and
/// the source-side node set.
fn st_cut(u: &UnGraph, s: NodeId, t: NodeId) -> (u64, Vec<NodeId>) {
    let mut net = FlowNet::new(u.node_count());
    for (_, e) in u.edges() {
        net.add_arc(e.a, e.b, e.cap);
        net.add_arc(e.b, e.a, e.cap);
    }
    let cut = net.max_flow(s, t);
    let raw = net.source_side(s);
    let side = u.nodes().filter(|v| raw.contains(v)).collect();
    (cut, side)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::min_cut_undirected;
    use crate::gen;
    use crate::globalcut::global_min_cut_value;

    #[test]
    fn all_pairs_match_direct_max_flow() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(404);
        for _ in 0..12 {
            let g = gen::random_connected(6, 0.5, 4, &mut rng);
            let u = UnGraph::from_digraph(&g);
            let tree = GomoryHuTree::build(&u).unwrap();
            for ((a, b), via_tree) in tree.all_pairs() {
                let direct = min_cut_undirected(&u, a, b);
                assert_eq!(via_tree, direct, "pair ({a},{b}) on {u:?}");
            }
        }
    }

    #[test]
    fn binding_pair_matches_global_min_cut() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let g = gen::random_connected(7, 0.4, 3, &mut rng);
            let u = UnGraph::from_digraph(&g);
            let tree = GomoryHuTree::build(&u).unwrap();
            let (_, _, w) = tree.binding_pair();
            assert_eq!(Some(w), global_min_cut_value(&u));
        }
    }

    #[test]
    fn tree_has_n_minus_1_edges() {
        let u = UnGraph::from_digraph(&gen::complete(5, 2));
        let tree = GomoryHuTree::build(&u).unwrap();
        assert_eq!(tree.edges().len(), 4);
        assert_eq!(tree.nodes().len(), 5);
    }

    #[test]
    fn figure_1b_binding_pair_is_the_uk_pair() {
        // On Figure 1(b)'s subgraph {1,2,4} the binding cut is 2 = U_k.
        let g = gen::figure_1b();
        let sub = g.induced_subgraph(&std::collections::BTreeSet::from([0, 1, 3]));
        let u = UnGraph::from_digraph(&sub);
        let tree = GomoryHuTree::build(&u).unwrap();
        let (_, _, w) = tree.binding_pair();
        assert_eq!(w, 2);
    }

    #[test]
    fn single_node_returns_none() {
        assert!(GomoryHuTree::build(&UnGraph::new(1)).is_none());
    }

    #[test]
    fn respects_inactive_nodes() {
        let mut g = gen::complete(5, 1);
        g.remove_node(2);
        let u = UnGraph::from_digraph(&g);
        let tree = GomoryHuTree::build(&u).unwrap();
        assert_eq!(tree.nodes().len(), 4);
        assert!(!tree.nodes().contains(&2));
    }

    #[test]
    #[should_panic(expected = "undefined")]
    fn self_query_panics() {
        let u = UnGraph::from_digraph(&gen::complete(3, 1));
        let tree = GomoryHuTree::build(&u).unwrap();
        let _ = tree.min_cut(1, 1);
    }
}
