//! The undirected view of a network (Figure 2(b) of the paper).
//!
//! For a directed graph `H(V, E)` the paper defines the undirected graph
//! `H̄(V, Ē)`: same vertices; undirected edge `(i, j)` present iff either
//! directed edge exists; its capacity is the *sum* of the two directed
//! capacities. The equality-check parameter `U_k` is a min-cut in this view.

use std::collections::BTreeSet;
use std::fmt;

use crate::graph::{DiGraph, NodeId};

/// An undirected capacitated edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct UnEdge {
    /// Smaller endpoint.
    pub a: NodeId,
    /// Larger endpoint.
    pub b: NodeId,
    /// Combined capacity of the two directed links.
    pub cap: u64,
}

/// An undirected capacitated graph over the same stable node universe as
/// [`DiGraph`].
#[derive(Clone, PartialEq, Eq)]
pub struct UnGraph {
    node_count: usize,
    active: Vec<bool>,
    edges: Vec<UnEdge>,
}

impl UnGraph {
    /// Creates an undirected graph with nodes `0..node_count` and no edges.
    pub fn new(node_count: usize) -> Self {
        UnGraph {
            node_count,
            active: vec![true; node_count],
            edges: Vec::new(),
        }
    }

    /// Builds the undirected view of a directed graph, summing antiparallel
    /// capacities (the paper's `H̄` construction).
    pub fn from_digraph(g: &DiGraph) -> Self {
        let mut u = UnGraph {
            node_count: g.node_count(),
            active: (0..g.node_count()).map(|v| g.is_active(v)).collect(),
            edges: Vec::new(),
        };
        let mut acc: std::collections::BTreeMap<(NodeId, NodeId), u64> =
            std::collections::BTreeMap::new();
        for (_, e) in g.edges() {
            let key = (e.src.min(e.dst), e.src.max(e.dst));
            *acc.entry(key).or_insert(0) += e.cap;
        }
        for ((a, b), cap) in acc {
            u.edges.push(UnEdge { a, b, cap });
        }
        u
    }

    /// Size of the node universe.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// Number of active nodes.
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Whether node `v` is active.
    ///
    /// # Panics
    ///
    /// Panics if `v` is outside the node universe.
    pub fn is_active(&self, v: NodeId) -> bool {
        assert!(v < self.node_count, "node id out of range");
        self.active[v]
    }

    /// Active node ids in increasing order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.node_count).filter(move |&v| self.active[v])
    }

    /// Adds an undirected edge.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range/inactive endpoints, self-loops, zero capacity,
    /// or duplicate edges.
    pub fn add_edge(&mut self, a: NodeId, b: NodeId, cap: u64) {
        assert!(
            a < self.node_count && b < self.node_count,
            "endpoint out of range"
        );
        assert!(self.active[a] && self.active[b], "endpoint inactive");
        assert_ne!(a, b, "self-loops are not allowed");
        assert!(cap > 0, "capacities are positive integers");
        let (a, b) = (a.min(b), a.max(b));
        assert!(
            self.find_edge(a, b).is_none(),
            "duplicate undirected edge ({a}, {b})"
        );
        self.edges.push(UnEdge { a, b, cap });
    }

    /// Live edges with their indices.
    pub fn edges(&self) -> impl Iterator<Item = (usize, &UnEdge)> + '_ {
        self.edges
            .iter()
            .enumerate()
            .filter(move |(_, e)| self.active[e.a] && self.active[e.b])
    }

    /// Number of live edges.
    pub fn edge_count(&self) -> usize {
        self.edges().count()
    }

    /// Looks up the undirected edge between `a` and `b`.
    pub fn find_edge(&self, a: NodeId, b: NodeId) -> Option<(usize, &UnEdge)> {
        let (a, b) = (a.min(b), a.max(b));
        self.edges().find(|(_, e)| e.a == a && e.b == b)
    }

    /// Neighbors of `v`.
    pub fn neighbors(&self, v: NodeId) -> BTreeSet<NodeId> {
        let mut out = BTreeSet::new();
        for (_, e) in self.edges() {
            if e.a == v {
                out.insert(e.b);
            } else if e.b == v {
                out.insert(e.a);
            }
        }
        out
    }

    /// The subgraph induced by `keep` (node ids preserved).
    pub fn induced_subgraph(&self, keep: &BTreeSet<NodeId>) -> UnGraph {
        let mut g = self.clone();
        for v in 0..self.node_count {
            if !keep.contains(&v) {
                g.active[v] = false;
            }
        }
        g
    }

    /// Whether the active part of the graph is connected (ignoring isolated
    /// inactive ids). An empty graph counts as connected.
    pub fn is_connected(&self) -> bool {
        let Some(start) = self.nodes().next() else {
            return true;
        };
        let mut seen = vec![false; self.node_count];
        seen[start] = true;
        let mut stack = vec![start];
        while let Some(u) = stack.pop() {
            for v in self.neighbors(u) {
                if !seen[v] {
                    seen[v] = true;
                    stack.push(v);
                }
            }
        }
        self.nodes().all(|v| seen[v])
    }
}

impl fmt::Debug for UnGraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "UnGraph(n={}, active={}, edges=[",
            self.node_count,
            self.active_count()
        )?;
        for (i, (_, e)) in self.edges().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}--{}:{}", e.a, e.b, e.cap)?;
        }
        write!(f, "])")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_digraph_sums_antiparallel_capacities() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 2);
        g.add_edge(1, 0, 3);
        g.add_edge(1, 2, 1);
        let u = UnGraph::from_digraph(&g);
        assert_eq!(u.edge_count(), 2);
        assert_eq!(u.find_edge(0, 1).unwrap().1.cap, 5);
        assert_eq!(u.find_edge(2, 1).unwrap().1.cap, 1);
    }

    #[test]
    fn from_digraph_respects_inactive_nodes() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        g.remove_node(2);
        let u = UnGraph::from_digraph(&g);
        assert_eq!(u.edge_count(), 1);
        assert!(!u.is_active(2));
    }

    #[test]
    fn connectivity_detection() {
        let mut u = UnGraph::new(4);
        u.add_edge(0, 1, 1);
        u.add_edge(2, 3, 1);
        assert!(!u.is_connected());
        u.add_edge(1, 2, 1);
        assert!(u.is_connected());
    }

    #[test]
    fn induced_subgraph_drops_edges() {
        let mut u = UnGraph::new(3);
        u.add_edge(0, 1, 1);
        u.add_edge(1, 2, 1);
        let s = u.induced_subgraph(&BTreeSet::from([0, 1]));
        assert_eq!(s.edge_count(), 1);
        assert!(s.is_connected());
    }

    #[test]
    fn neighbors_symmetric() {
        let mut u = UnGraph::new(3);
        u.add_edge(0, 1, 1);
        assert_eq!(u.neighbors(0), BTreeSet::from([1]));
        assert_eq!(u.neighbors(1), BTreeSet::from([0]));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_edge_rejected_in_either_direction() {
        let mut u = UnGraph::new(2);
        u.add_edge(0, 1, 1);
        u.add_edge(1, 0, 1);
    }
}
