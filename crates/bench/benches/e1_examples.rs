//! E1 bench: regenerates the Figure 1/2 quantities (min cuts, γ, U_k,
//! arborescence and spanning-tree packings on the paper's examples).

use criterion::{criterion_group, criterion_main, Criterion};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e1_examples");
    g.bench_function("figure_quantities", |b| {
        b.iter(|| std::hint::black_box(nab_bench::e1_examples::run()))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
