//! E5 bench: the capacity-oblivious baseline broadcast vs one NAB
//! instance on the skewed network.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};
use nab::adversary::HonestStrategy;
use nab::engine::{NabConfig, NabEngine};
use nab::value::Value;
use nab_bb::baselines::oblivious_throughput;
use nab_bench::e5_baselines::skewed_network;

fn bench(c: &mut Criterion) {
    let g = skewed_network(8);
    let mut group = c.benchmark_group("e5_baselines");
    group.sample_size(20);
    group.bench_function("oblivious_broadcast", |b| {
        b.iter(|| std::hint::black_box(oblivious_throughput(&g, 0, 1, 1920)))
    });
    let cfg = NabConfig {
        f: 1,
        symbols: 120,
        seed: 1,
    };
    let input = Value::from_u64s(&(0..120).collect::<Vec<_>>());
    group.bench_function("nab_instance", |b| {
        b.iter_batched(
            || NabEngine::new(g.clone(), cfg).unwrap(),
            |mut e| {
                e.run_instance(&input, &BTreeSet::new(), &mut HonestStrategy)
                    .unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
