//! E6 bench: pipeline-model construction from real packings (γ, tree
//! depth) plus the sweep itself.

use criterion::{criterion_group, criterion_main, Criterion};
use nab_bench::e6_pipelining::{model_for, run};
use nab_netgraph::gen;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e6_pipelining");
    let ring = gen::ring(8, 2);
    group.bench_function("model_from_ring8", |b| {
        b.iter(|| std::hint::black_box(model_for("ring", &ring, 4096.0, 32.0)))
    });
    group.bench_function("full_sweep", |b| b.iter(|| std::hint::black_box(run(200))));
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
