//! E7 bench: the bounds report (γ*, ρ*, Eq.6, Theorem 2) for a single
//! network and for the whole table.

use criterion::{criterion_group, criterion_main, Criterion};
use nab::bounds::bounds_report;
use nab_netgraph::gen;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e7_capacity");
    group.sample_size(20);
    let k4 = gen::complete(4, 2);
    group.bench_function("bounds_report_k4", |b| {
        b.iter(|| std::hint::black_box(bounds_report(&k4, 0, 1, 1 << 18)))
    });
    group.bench_function("full_table", |b| {
        b.iter(|| std::hint::black_box(nab_bench::e7_capacity::run()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
