//! Micro-benchmarks of the substrates: field arithmetic, max-flow,
//! packings, and the equality check.

use criterion::{criterion_group, criterion_main, Criterion};
use nab::equality::{equality_check_flags, no_tamper, CodingScheme};
use nab::value::Value;
use nab_gf::field::Field;
use nab_gf::{Gf2_16, Gf2m, Matrix};
use nab_netgraph::arborescence::pack_arborescences;
use nab_netgraph::flow::{broadcast_rate, min_cut};
use nab_netgraph::gen;
use nab_netgraph::treepack::pack_spanning_trees;
use nab_netgraph::UnGraph;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_gf(c: &mut Criterion) {
    let mut group = c.benchmark_group("gf");
    let a16 = Gf2_16::from_u64(0xBEEF);
    let b16 = Gf2_16::from_u64(0x1234);
    group.bench_function("gf2_16_mul_table", |b| {
        b.iter(|| std::hint::black_box(a16.mul(b16)))
    });
    let a32 = Gf2m::<32>::from_u64(0xDEADBEEF);
    let b32 = Gf2m::<32>::from_u64(0x12345678);
    group.bench_function("gf2_32_mul_clmul", |b| {
        b.iter(|| std::hint::black_box(a32.mul(b32)))
    });
    group.bench_function("gf2_32_inv", |b| b.iter(|| std::hint::black_box(a32.inv())));
    let mut rng = StdRng::seed_from_u64(5);
    let m = Matrix::<Gf2_16>::random(16, 16, &mut rng);
    group.bench_function("invert_16x16_gf2_16", |b| {
        b.iter(|| std::hint::black_box(nab_gf::linalg::invert(&m)))
    });
    group.finish();
}

fn bench_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("netgraph");
    let k8 = gen::complete(8, 3);
    group.bench_function("min_cut_k8", |b| {
        b.iter(|| std::hint::black_box(min_cut(&k8, 0, 7)))
    });
    group.bench_function("broadcast_rate_k8", |b| {
        b.iter(|| std::hint::black_box(broadcast_rate(&k8, 0)))
    });
    group.sample_size(20);
    group.bench_function("pack_arborescences_k6", |b| {
        let g = gen::complete(6, 1);
        b.iter(|| std::hint::black_box(pack_arborescences(&g, 0, 5)))
    });
    group.bench_function("pack_spanning_trees_k6", |b| {
        let u = UnGraph::from_digraph(&gen::complete(6, 1));
        b.iter(|| std::hint::black_box(pack_spanning_trees(&u, 4)))
    });
    group.finish();
}

fn bench_equality(c: &mut Criterion) {
    let mut group = c.benchmark_group("equality_check");
    let g = gen::complete(6, 2);
    let scheme = CodingScheme::random(&g, 2, 9);
    let v = Value::from_u64s(&(0..512).collect::<Vec<_>>());
    let values: std::collections::BTreeMap<_, _> = g.nodes().map(|n| (n, v.clone())).collect();
    group.bench_function("flags_k6_512sym", |b| {
        b.iter(|| std::hint::black_box(equality_check_flags(&g, &values, &scheme, &mut no_tamper)))
    });
    group.bench_function("encode_one_edge_512sym", |b| {
        b.iter(|| std::hint::black_box(scheme.encode(0, 1, &v)))
    });
    group.finish();
}

criterion_group!(benches, bench_gf, bench_graph, bench_equality);
criterion_main!(benches);
