//! E3 bench: one full NAB instance (all three phases' machinery, fault
//! free and adversarial) on K4.

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};
use nab::adversary::{HonestStrategy, TruthfulCorruptor};
use nab::engine::{NabConfig, NabEngine};
use nab::value::Value;
use nab_netgraph::gen;

fn bench(c: &mut Criterion) {
    let cfg = NabConfig {
        f: 1,
        symbols: 240,
        seed: 7,
    };
    let input = Value::from_u64s(&(0..240).collect::<Vec<_>>());
    let mut group = c.benchmark_group("e3_throughput");
    group.bench_function("instance_fault_free", |b| {
        b.iter_batched(
            || NabEngine::new(gen::complete(4, 2), cfg).unwrap(),
            |mut e| {
                e.run_instance(&input, &BTreeSet::new(), &mut HonestStrategy)
                    .unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.bench_function("instance_with_corruptor", |b| {
        b.iter_batched(
            || NabEngine::new(gen::complete(4, 2), cfg).unwrap(),
            |mut e| {
                e.run_instance(&input, &BTreeSet::from([2]), &mut TruthfulCorruptor)
                    .unwrap()
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
