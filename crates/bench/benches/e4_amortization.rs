//! E4 bench: a short dispute-forcing series (false-alarm adversary over 4
//! instances, including one dispute-control execution).

use std::collections::BTreeSet;

use criterion::{criterion_group, criterion_main, Criterion};
use nab::adversary::FalseAlarm;
use nab_bench::e4_amortization::run_series;
use nab_netgraph::gen;

fn bench(c: &mut Criterion) {
    let g = gen::complete(4, 2);
    let mut group = c.benchmark_group("e4_amortization");
    group.sample_size(20);
    group.bench_function("false_alarm_series_q4", |b| {
        b.iter(|| {
            std::hint::black_box(run_series(
                "false-alarm",
                &g,
                1,
                120,
                4,
                &BTreeSet::from([2]),
                &mut FalseAlarm,
            ))
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
