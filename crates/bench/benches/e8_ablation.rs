//! E8 bench: the ρ-sweep soundness/attack analysis and the packing
//! ablation.

use criterion::{criterion_group, criterion_main, Criterion};
use nab_bench::e8_ablation::{packing_ablation, rho_sweep};
use nab_netgraph::gen;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("e8_ablation");
    group.sample_size(10);
    let g = gen::complete(4, 2);
    group.bench_function("rho_sweep_k4", |b| {
        b.iter(|| std::hint::black_box(rho_sweep(&g, 960.0)))
    });
    group.bench_function("packing_ablation", |b| {
        b.iter(|| std::hint::black_box(packing_ablation()))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
