//! E2 bench: one Theorem-1 Monte-Carlo trial (sample coding matrices,
//! verify soundness on every Ω subgraph) at two symbol widths.

use criterion::{criterion_group, criterion_main, Criterion};
use nab::theory::theorem1_trial;
use nab_gf::Gf2m;
use nab_netgraph::gen;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench(c: &mut Criterion) {
    let g = gen::complete(4, 2);
    let mut group = c.benchmark_group("e2_theorem1");
    group.bench_function("trial_m8", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(theorem1_trial::<Gf2m<8>, _>(&g, 1, 2, &mut rng)))
    });
    group.bench_function("trial_m16", |b| {
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| std::hint::black_box(theorem1_trial::<Gf2m<16>, _>(&g, 1, 2, &mut rng)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
