//! E6 — pipelining under propagation delays (Appendix D, Figure 3).
//!
//! Compares store-and-forward against Appendix D's hop-pipelined schedule
//! on tree depths measured from real arborescence packings, confirming
//! that pipelining recovers the zero-delay bound of Eq. 6.

// nab-lint: allow-file(NAB003): perf-harness setup; aborting on a malformed experiment configuration is the intended behavior

use nab::pipeline::PipelineModel;
use nab_netgraph::arborescence::pack_arborescences;
use nab_netgraph::flow::broadcast_rate;
use nab_netgraph::gen;

/// One depth sweep point.
#[derive(Debug, Clone)]
pub struct PipelineRow {
    /// Network label.
    pub name: String,
    /// Deepest arborescence (hops).
    pub depth: usize,
    /// Instances simulated.
    pub q: usize,
    /// Store-and-forward throughput.
    pub unpipelined: f64,
    /// Pipelined throughput.
    pub pipelined: f64,
    /// The `Q → ∞` limit (`≈` Eq. 6 with overhead).
    pub asymptotic: f64,
}

/// Builds a model from a real graph: measures `γ`, tree depth, and uses
/// `ρ = γ` for a conservative equality-check rate.
pub fn model_for(
    name: &str,
    g: &nab_netgraph::DiGraph,
    l_bits: f64,
    overhead: f64,
) -> PipelineModel {
    let gamma = broadcast_rate(g, 0);
    let trees = pack_arborescences(g, 0, gamma).expect("packing");
    let depth = trees.iter().map(|t| t.depth()).max().unwrap_or(1);
    let _ = name;
    PipelineModel {
        l_bits,
        gamma: gamma as f64,
        rho: gamma as f64,
        overhead,
        depth,
    }
}

/// Runs the sweep over network families of growing diameter.
pub fn run(q: usize) -> Vec<PipelineRow> {
    let mut rows = Vec::new();
    let nets = vec![
        ("K4".to_string(), gen::complete(4, 1)),
        ("K6".to_string(), gen::complete(6, 1)),
        ("barbell 3+3".to_string(), gen::barbell(3, 2, 2, 1)),
        ("ring 8".to_string(), gen::ring(8, 2)),
    ];
    for (name, g) in nets {
        let m = model_for(&name, &g, 4096.0, 32.0);
        rows.push(PipelineRow {
            name,
            depth: m.depth,
            q,
            unpipelined: m.unpipelined_throughput(q),
            pipelined: m.pipelined_throughput(q),
            asymptotic: m.asymptotic_throughput(),
        });
    }
    rows
}

/// Formats the sweep.
pub fn table(rows: &[PipelineRow]) -> String {
    crate::format_table(
        &[
            "network",
            "depth",
            "Q",
            "store&fwd T",
            "pipelined T",
            "Q→∞ limit",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.depth.to_string(),
                    r.q.to_string(),
                    format!("{:.1}", r.unpipelined),
                    format!("{:.1}", r.pipelined),
                    format!("{:.1}", r.asymptotic),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipelining_never_loses_and_wins_on_deep_graphs() {
        let rows = run(200);
        for r in &rows {
            assert!(
                r.pipelined >= r.unpipelined * 0.999,
                "{}: pipelined {} < unpipelined {}",
                r.name,
                r.pipelined,
                r.unpipelined
            );
            assert!(r.pipelined <= r.asymptotic);
        }
        // The ring has real depth; pipelining must win clearly there.
        let ring = rows.iter().find(|r| r.name == "ring 8").unwrap();
        assert!(ring.depth >= 3);
        assert!(ring.pipelined > ring.unpipelined * 1.5);
    }
}
