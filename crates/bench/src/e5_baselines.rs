//! E5 — NAB vs capacity-oblivious baselines (Section 1's motivation).
//!
//! "One can easily construct example networks in which previously proposed
//! algorithms achieve throughput that is arbitrarily worse than the optimal
//! throughput": we reproduce the construction by scaling the capacity of a
//! complete graph except for a handful of thin links. The oblivious
//! protocol pays full price on the thin links; NAB routes around them, so
//! the throughput ratio grows without bound as capacities scale.

// nab-lint: allow-file(NAB003): perf-harness setup; aborting on a malformed experiment configuration is the intended behavior

use std::collections::BTreeSet;

use nab::adversary::HonestStrategy;
use nab::engine::{run_many, NabConfig, NabEngine};
use nab_bb::baselines::oblivious_broadcast_with_router;
use nab_bb::eig::HonestAdversary;
use nab_netgraph::{gen, DiGraph};

/// One sweep point: capacity scale vs both throughputs.
#[derive(Debug, Clone)]
pub struct BaselineRow {
    /// Fat-link capacity (thin links stay at 1).
    pub scale: u64,
    /// NAB measured throughput.
    pub nab: f64,
    /// Capacity-oblivious EIG baseline throughput.
    pub oblivious: f64,
    /// nab / oblivious.
    pub ratio: f64,
}

/// K4 where every link has capacity `scale` except the two links between
/// nodes 2 and 3, which stay at capacity 1 — the "thin back-channel"
/// family. `γ` and `ρ` both scale; the oblivious baseline is stuck at the
/// thin link's pace.
pub fn skewed_network(scale: u64) -> DiGraph {
    let mut g = gen::complete(4, 1);
    for i in 0..4 {
        for j in 0..4 {
            if i != j && !(i == 2 && j == 3) && !(i == 3 && j == 2) {
                g.remove_edges_between(i, j);
            }
        }
    }
    // Rebuild: fat everywhere, thin between 2 and 3.
    let mut fat = DiGraph::new(4);
    for i in 0..4 {
        for j in 0..4 {
            if i == j {
                continue;
            }
            let cap = if (i, j) == (2, 3) || (i, j) == (3, 2) {
                1
            } else {
                scale
            };
            fat.add_edge(i, j, cap);
        }
    }
    let _ = g;
    fat
}

/// Runs the sweep.
pub fn run(scales: &[u64], symbols: usize, q: usize) -> Vec<BaselineRow> {
    let mut rows = Vec::new();
    for &scale in scales {
        let g = skewed_network(scale);
        let mut engine = NabEngine::new(
            g.clone(),
            NabConfig {
                f: 1,
                symbols,
                seed: 3,
            },
        )
        .expect("valid network");
        let nab = run_many(&mut engine, q, &BTreeSet::new(), &mut HonestStrategy, 4)
            .expect("run succeeds");
        assert!(nab.all_correct);
        let l_bits = (symbols as u64) * 16;
        // The engine's plan already owns the 2f+1-disjoint-path router
        // for this network; the baseline borrows it instead of paying
        // the all-pairs disjoint-path construction a second time.
        let rep = oblivious_broadcast_with_router(
            &g,
            engine.plan().router(),
            0,
            1,
            l_bits,
            0xA5A5,
            &BTreeSet::new(),
            &mut HonestAdversary,
        );
        let oblivious = l_bits as f64 / rep.time;
        rows.push(BaselineRow {
            scale,
            nab: nab.throughput,
            oblivious,
            ratio: nab.throughput / oblivious,
        });
    }
    rows
}

/// Formats the sweep.
pub fn table(rows: &[BaselineRow]) -> String {
    crate::format_table(
        &["fat-link cap", "NAB T", "oblivious T", "NAB / oblivious"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.scale.to_string(),
                    format!("{:.2}", r.nab),
                    format!("{:.3}", r.oblivious),
                    format!("{:.1}×", r.ratio),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nab_advantage_grows_with_capacity_skew() {
        let rows = run(&[1, 4, 16], 480, 3);
        assert_eq!(rows.len(), 3);
        // Monotone ratio growth: the oblivious baseline cannot exploit the
        // fat links.
        assert!(rows[1].ratio > rows[0].ratio);
        assert!(rows[2].ratio > rows[1].ratio);
        // At scale 16 the gap is large (the paper's "arbitrarily worse").
        assert!(
            rows[2].ratio > 4.0,
            "expected a big gap, got {:.2}",
            rows[2].ratio
        );
    }

    #[test]
    fn skewed_network_shape() {
        let g = skewed_network(8);
        assert_eq!(g.find_edge(2, 3).unwrap().1.cap, 1);
        assert_eq!(g.find_edge(0, 1).unwrap().1.cap, 8);
        assert_eq!(g.edge_count(), 12);
    }
}
