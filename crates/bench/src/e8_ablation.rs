//! E8 — ablations of NAB's design choices (DESIGN.md §5).
//!
//! 1. **ρ sweep**: the equality check gets faster as `ρ` grows (`L/ρ`
//!    time) but becomes *attackable* the moment `ρ > U/2` — the
//!    kernel-collision constructor finds undetectable disagreements.
//! 2. **Random vs Vandermonde coding matrices**: the deterministic
//!    construction matches the random one on well-provisioned graphs.
//! 3. **Arborescence packing vs single tree**: Phase 1 at rate `γ` vs
//!    rate 1, propagated through Eq. 6.

// nab-lint: allow-file(NAB003): perf-harness setup; aborting on a malformed experiment configuration is the intended behavior

use std::collections::BTreeSet;

use nab::bounds::{omega_subsets, tnab_lower_bound, u_k};
use nab::equality::CodingScheme;
use nab::theory::{ch_is_sound, colliding_values};
use nab_netgraph::flow::broadcast_rate;
use nab_netgraph::{gen, DiGraph};

/// One ρ-sweep point.
#[derive(Debug, Clone)]
pub struct RhoRow {
    /// The equality-check parameter swept.
    pub rho: usize,
    /// Whether ρ ≤ U/2 (the paper's requirement).
    pub within_budget: bool,
    /// Equality-check wall-time for a 960-bit value (`≈ L/ρ`).
    pub eq_time: f64,
    /// Whether random matrices were sound on every Ω subgraph.
    pub random_sound: bool,
    /// Whether Vandermonde matrices were sound on every Ω subgraph.
    pub vandermonde_sound: bool,
    /// Whether the kernel-collision attack found undetectable values on
    /// some candidate fault-free subgraph.
    pub attack_exists: bool,
}

/// Sweeps ρ on graph `g` (f = 1).
pub fn rho_sweep(g: &DiGraph, l_bits: f64) -> Vec<RhoRow> {
    let f = 1;
    let u = u_k(g, f, &BTreeSet::new()).expect("U exists");
    let mut rows = Vec::new();
    for rho in 1..=(u as usize + 2) {
        let random = CodingScheme::random(g, rho, 1000 + rho as u64);
        let vander = CodingScheme::vandermonde(g, rho);
        let mut random_sound = true;
        let mut vander_sound = true;
        let mut attack = false;
        for h_nodes in omega_subsets(g, f, &BTreeSet::new()) {
            let h = g.induced_subgraph(&h_nodes);
            random_sound &= ch_is_sound(&h, &random);
            vander_sound &= ch_is_sound(&h, &vander);
            attack |= colliding_values(&h, &random).is_some();
        }
        rows.push(RhoRow {
            rho,
            within_budget: rho as u64 <= u / 2,
            eq_time: l_bits / rho as f64,
            random_sound,
            vandermonde_sound: vander_sound,
            attack_exists: attack,
        });
    }
    rows
}

/// Formats the ρ sweep.
pub fn rho_table(rows: &[RhoRow]) -> String {
    crate::format_table(
        &[
            "ρ",
            "ρ≤U/2",
            "eq time",
            "random sound",
            "vandermonde sound",
            "attack exists",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.rho.to_string(),
                    if r.within_budget { "yes" } else { "NO" }.into(),
                    format!("{:.0}", r.eq_time),
                    r.random_sound.to_string(),
                    r.vandermonde_sound.to_string(),
                    r.attack_exists.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

/// One packing-ablation row.
#[derive(Debug, Clone)]
pub struct PackingRow {
    /// Network label.
    pub name: String,
    /// Full Phase-1 rate `γ` (arborescence packing).
    pub gamma: u64,
    /// Eq. 6 throughput with the packing.
    pub with_packing: f64,
    /// Eq. 6 throughput with a single spanning tree (rate 1).
    pub single_tree: f64,
}

/// Compares Phase 1 with full packing vs a single tree across networks.
pub fn packing_ablation() -> Vec<PackingRow> {
    let nets = vec![
        ("K4 ×2".to_string(), gen::complete(4, 2)),
        ("K5 ×2".to_string(), gen::complete(5, 2)),
        ("K4 ×4".to_string(), gen::complete(4, 4)),
    ];
    let mut rows = Vec::new();
    for (name, g) in nets {
        let gamma = broadcast_rate(&g, 0);
        let u = u_k(&g, 1, &BTreeSet::new()).unwrap_or(2);
        let rho = u / 2;
        rows.push(PackingRow {
            name,
            gamma,
            with_packing: tnab_lower_bound(gamma, rho),
            single_tree: tnab_lower_bound(1, rho),
        });
    }
    rows
}

/// Formats the packing ablation.
pub fn packing_table(rows: &[PackingRow]) -> String {
    crate::format_table(
        &["network", "γ", "T with packing", "T single tree", "speedup"],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.gamma.to_string(),
                    format!("{:.2}", r.with_packing),
                    format!("{:.2}", r.single_tree),
                    format!("{:.1}×", r.with_packing / r.single_tree),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rho_budget_is_sufficient_and_column_frontier_is_tight() {
        // K4 cap 2: U = 8 → the paper's budget is ρ ≤ 4, which is
        // *sufficient*: within it, both schemes are sound and no attack
        // exists. The information-theoretic frontier is the column budget:
        // every Ω subgraph (K3 at cap 2) offers m = 12 coded symbols
        // against (n_H − 1)ρ = 2ρ difference dimensions, so collisions are
        // unavoidable exactly when ρ > 6. In between (ρ = 5, 6) random
        // coding happens to remain sound on this dense graph — the paper's
        // tree-packing argument is conservative there.
        let rows = rho_sweep(&gen::complete(4, 2), 960.0);
        let column_frontier = 6; // m_H / (n_H − 1) = 12 / 2
        for r in &rows {
            if r.within_budget {
                assert!(r.random_sound, "ρ={} random unsound in budget", r.rho);
                assert!(!r.attack_exists, "ρ={} attackable in budget", r.rho);
            }
            if r.rho > column_frontier {
                assert!(
                    r.attack_exists,
                    "ρ={} beyond the column frontier must be attackable",
                    r.rho
                );
                assert!(!r.random_sound);
            } else {
                assert!(
                    !r.attack_exists,
                    "ρ={} within the column frontier cannot be forced",
                    r.rho
                );
            }
        }
        // Equality time decreases in ρ: the throughput incentive to pick
        // ρ as large as soundness allows.
        for w in rows.windows(2) {
            assert!(w[1].eq_time < w[0].eq_time);
        }
    }

    #[test]
    fn vandermonde_matches_random_inside_budget() {
        let rows = rho_sweep(&gen::complete(4, 2), 960.0);
        for r in rows.iter().filter(|r| r.within_budget) {
            assert_eq!(
                r.vandermonde_sound, r.random_sound,
                "ρ={}: schemes disagree",
                r.rho
            );
        }
    }

    #[test]
    fn packing_speedup_is_substantial() {
        for r in packing_ablation() {
            assert!(r.with_packing > r.single_tree, "{}", r.name);
            assert!(r.gamma >= 4);
        }
    }
}
