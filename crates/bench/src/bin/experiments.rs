//! Regenerates every paper artifact and prints the paper-vs-measured
//! tables recorded in EXPERIMENTS.md.
//!
//! Usage: `cargo run --release -p nab-bench --bin experiments [--quick]`

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (trials, q, scales): (usize, usize, &[u64]) = if quick {
        (40, 3, &[1, 4, 16])
    } else {
        (200, 8, &[1, 2, 4, 8, 16, 32])
    };

    println!("# NAB experiment suite (quick={quick})\n");

    println!("## E1 — paper worked examples (Figures 1–2)\n");
    println!("{}", nab_bench::e1_examples::table());

    println!("## E2 — Theorem 1 soundness probability vs symbol width\n");
    let e2 = nab_bench::e2_theorem1::run_default(trials);
    println!("{}", nab_bench::e2_theorem1::table(&e2));

    println!("## E3 — throughput vs Eq.6 lower bound and Theorem 2 capacity bound\n");
    let e3 = nab_bench::e3_throughput::run(if quick { 480 } else { 1200 }, q);
    println!("{}", nab_bench::e3_throughput::table(&e3));

    println!("## E4 — dispute-control amortization (budget f(f+1))\n");
    let e4 = nab_bench::e4_amortization::run_default(if quick { 6 } else { 12 });
    println!("{}", nab_bench::e4_amortization::table(&e4));
    for s in &e4 {
        let times: Vec<String> = s.points.iter().map(|p| format!("{:.0}", p.time)).collect();
        println!(
            "  {} per-instance times: [{}]",
            s.adversary,
            times.join(", ")
        );
    }
    println!();

    println!("## E5 — NAB vs capacity-oblivious baseline (capacity skew sweep)\n");
    let e5 = nab_bench::e5_baselines::run(scales, 480, q.min(4));
    println!("{}", nab_bench::e5_baselines::table(&e5));

    println!("## E6 — pipelining under propagation delay (Figure 3 model)\n");
    let e6 = nab_bench::e6_pipelining::run(if quick { 100 } else { 1000 });
    println!("{}", nab_bench::e6_pipelining::table(&e6));

    println!("## E7 — capacity table (Theorem 2 + Theorem 3 fractions)\n");
    let e7 = nab_bench::e7_capacity::run();
    println!("{}", nab_bench::e7_capacity::table(&e7));

    println!("## E8 — ablations: ρ sweep, coding-matrix construction, tree packing\n");
    let rho = nab_bench::e8_ablation::rho_sweep(&nab_netgraph::gen::complete(4, 2), 960.0);
    println!("{}", nab_bench::e8_ablation::rho_table(&rho));
    let pack = nab_bench::e8_ablation::packing_ablation();
    println!("{}", nab_bench::e8_ablation::packing_table(&pack));

    println!("## E3/E4/E7 via the scenario engine (shared sweep-runner code path)\n");
    for spec in [
        nab_bench::scenarios::e3_throughput_scenario(if quick { 60 } else { 240 }, q),
        nab_bench::scenarios::e4_amortization_scenario(if quick { 4 } else { 8 }),
        nab_bench::scenarios::e7_capacity_scenario(if quick { 2 } else { 4 }),
    ] {
        // threads = 0: the sweep runner maps it to one worker per CPU.
        let (report, table) = nab_bench::scenarios::run_and_table(&spec, 0);
        println!("### {}\n", report.scenario);
        println!("{table}");
        println!(
            "  aggregate: mean throughput {:.3}, disputes {}, all correct: {}\n",
            report.aggregate.mean_throughput,
            report.aggregate.total_dispute_rounds,
            report.aggregate.all_correct
        );
    }
}
