//! `perf` — regenerate the repo's perf baselines (`BENCH_gf.json`,
//! `BENCH_sweep.json`).
//!
//! ```text
//! perf [--quick] [--threads N] [--out DIR]
//! ```
//!
//! Times the GF kernel tiers (byte-slab, table kernels, scalar reference)
//! and a bundled scenario sweep, then writes both reports as
//! deterministic-schema JSON into `--out` (default: the current
//! directory). See `docs/perf.md` for the schema and interpretation.

use std::path::PathBuf;
use std::process::ExitCode;

use nab_bench::perf;

const HELP: &str = "perf — NAB perf-report generator

USAGE:
    perf [OPTIONS]

OPTIONS:
    --quick         smoke-sized grid (small sizes, few iterations); used
                    by the CI bench job
    --threads N     worker threads for the scenario sweep (default 0 =
                    one per CPU)
    --out DIR       directory to write BENCH_gf.json / BENCH_sweep.json
                    (default: current directory)
    -h, --help      show this help
";

struct Args {
    quick: bool,
    threads: usize,
    out: PathBuf,
}

fn parse_args() -> Result<Option<Args>, String> {
    let mut args = Args {
        quick: false,
        threads: 0,
        out: PathBuf::from("."),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--quick" => args.quick = true,
            "--threads" => {
                i += 1;
                args.threads = argv
                    .get(i)
                    .ok_or("missing value for --threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--out" => {
                i += 1;
                args.out = PathBuf::from(argv.get(i).ok_or("missing value for --out")?);
            }
            "--help" | "-h" => {
                print!("{HELP}");
                return Ok(None);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
        i += 1;
    }
    Ok(Some(args))
}

fn run(args: &Args) -> Result<(), String> {
    eprintln!(
        "perf: GF kernel micro-benchmarks ({} mode)…",
        if args.quick { "quick" } else { "full" }
    );
    let cases = perf::run_gf_bench(args.quick);
    print!("{}", perf::gf_summary_table(&cases));
    let gf_path = args.out.join("BENCH_gf.json");
    std::fs::write(
        &gf_path,
        perf::gf_report_json(&cases, args.quick).render_pretty(),
    )
    .map_err(|e| format!("cannot write {}: {e}", gf_path.display()))?;
    eprintln!("perf: wrote {}", gf_path.display());

    eprintln!("perf: bundled scenario sweep…");
    let (report, wall_ns, threads) = perf::run_sweep_bench(args.quick, args.threads)?;
    println!(
        "sweep: {} jobs ({} ok) on {} threads in {:.1} ms wall, all correct: {}",
        report.aggregate.jobs,
        report.aggregate.ok_jobs,
        threads,
        wall_ns as f64 / 1e6,
        report.aggregate.all_correct
    );

    eprintln!("perf: plan-cache cold vs cached sweep…");
    let pc = perf::run_plan_cache_bench(args.quick, args.threads)?;
    println!(
        "plan-cache ({}, {} jobs, {} threads): no-cache {:.1} ms, fresh cache {:.1} ms, \
         warm cache {:.1} ms ({} plans built, {} shared fetches, identical reports: {})",
        pc.scenario,
        pc.jobs,
        pc.threads,
        pc.cold_wall_ns as f64 / 1e6,
        pc.cache_cold_wall_ns as f64 / 1e6,
        pc.cache_warm_wall_ns as f64 / 1e6,
        pc.plan_misses,
        pc.plan_hits,
        pc.reports_identical,
    );
    println!(
        "plan-cache disk tier ({} planning pass, {} grid points): cold (build+persist) \
         {:.1} ms, warm (load) {:.1} ms ({} stored, {} loaded)",
        pc.disk_scenario,
        pc.disk_grid_points,
        pc.disk_cold_wall_ns as f64 / 1e6,
        pc.disk_warm_wall_ns as f64 / 1e6,
        pc.disk_stores,
        pc.disk_hits,
    );

    eprintln!("perf: plan-repair on vs off sweep…");
    let pr = perf::run_plan_repair_bench(args.quick, args.threads)?;
    println!(
        "plan-repair ({}, {} jobs, {} threads): replan {:.1} ms repaired vs {:.1} ms \
         recomputed ({} repairs + {} forced recomputes vs {} recomputes, identical \
         reports: {})",
        pr.scenario,
        pr.jobs,
        pr.threads,
        pr.repair_replan_ns as f64 / 1e6,
        pr.norepair_replan_ns as f64 / 1e6,
        pr.repairs,
        pr.full_recomputes,
        pr.norepair_recomputes,
        pr.reports_identical,
    );

    let sweep_path = args.out.join("BENCH_sweep.json");
    std::fs::write(
        &sweep_path,
        perf::sweep_report_json(&report, wall_ns, threads, args.quick, &pc, &pr).render_pretty(),
    )
    .map_err(|e| format!("cannot write {}: {e}", sweep_path.display()))?;
    eprintln!("perf: wrote {}", sweep_path.display());
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(Some(a)) => a,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
