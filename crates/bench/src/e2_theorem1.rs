//! E2 — Theorem 1: random coding matrices are correct w.h.p.
//!
//! Sweeps the symbol width `m` (the paper's `L/ρ`) and measures the
//! empirical probability that freshly sampled coding matrices are
//! *unsound* — i.e. fail to guarantee property (EC) on some candidate
//! fault-free subgraph — against the union bound
//! `2^{−m} · C(n, n−f) · (n−f−1) · ρ`.

use nab::equality::theorem1_failure_bound;
use nab::theory::theorem1_trial;
use nab_gf::Gf2m;
use nab_netgraph::{gen, DiGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One sweep point.
#[derive(Debug, Clone, PartialEq)]
pub struct Theorem1Row {
    /// Symbol width in bits (`L/ρ`).
    pub m_bits: u32,
    /// Monte-Carlo trials run.
    pub trials: usize,
    /// Trials in which some `Ω` subgraph was unsound.
    pub failures: usize,
    /// Empirical failure probability.
    pub empirical: f64,
    /// The paper's union bound (may exceed 1 for tiny fields).
    pub bound: f64,
}

/// Runs the sweep on graph `g` with fault bound `f` and equality parameter
/// `rho`, for the given symbol widths.
pub fn run(g: &DiGraph, f: usize, rho: usize, trials: usize, seed: u64) -> Vec<Theorem1Row> {
    let n = g.active_count();
    let mut rows = Vec::new();
    // Each width needs its own monomorphized field type.
    macro_rules! sweep {
        ($($m:literal),*) => {
            $(
                {
                    let mut rng = StdRng::seed_from_u64(seed ^ $m);
                    let mut failures = 0;
                    for _ in 0..trials {
                        if !theorem1_trial::<Gf2m<$m>, _>(g, f, rho, &mut rng) {
                            failures += 1;
                        }
                    }
                    rows.push(Theorem1Row {
                        m_bits: $m,
                        trials,
                        failures,
                        empirical: failures as f64 / trials as f64,
                        bound: theorem1_failure_bound(n, f, rho, $m),
                    });
                }
            )*
        };
    }
    sweep!(1, 2, 3, 4, 6, 8, 12, 16);
    rows
}

/// Default configuration: the paper's 4-node setting.
pub fn run_default(trials: usize) -> Vec<Theorem1Row> {
    let g = gen::complete(4, 2);
    run(&g, 1, 2, trials, 2024)
}

/// Formats the sweep as a table.
pub fn table(rows: &[Theorem1Row]) -> String {
    crate::format_table(
        &[
            "m (bits)",
            "trials",
            "failures",
            "empirical P(unsound)",
            "union bound",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.m_bits.to_string(),
                    r.trials.to_string(),
                    r.failures.to_string(),
                    format!("{:.4}", r.empirical),
                    format!("{:.4}", r.bound),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_failure_is_below_bound_and_decreasing() {
        let rows = run_default(60);
        for r in &rows {
            // The bound holds wherever it is non-vacuous.
            if r.bound < 1.0 {
                assert!(
                    r.empirical <= r.bound + 0.12,
                    "m={}: empirical {} far above bound {}",
                    r.m_bits,
                    r.empirical,
                    r.bound
                );
            }
        }
        // Wide symbols essentially never fail.
        let wide = rows.iter().find(|r| r.m_bits == 16).unwrap();
        assert_eq!(wide.failures, 0);
        // Tiny fields fail noticeably (sanity that the experiment bites).
        let narrow = rows.iter().find(|r| r.m_bits == 1).unwrap();
        assert!(narrow.empirical > wide.empirical);
    }
}
