//! E4 — amortization of dispute control (Section 2's `f(f+1)` bound).
//!
//! An adversary that forces dispute control on every instance it can
//! (false alarms, corruptions) still triggers at most `f(f+1)` dispute
//! rounds; afterwards every instance runs at full speed. We record the
//! per-instance time series and the cumulative average converging to the
//! steady state.

// nab-lint: allow-file(NAB003): perf-harness setup; aborting on a malformed experiment configuration is the intended behavior

use std::collections::BTreeSet;

use nab::adversary::{FalseAlarm, LyingCorruptor, NabAdversary, TruthfulCorruptor};
use nab::dispute::DisputeState;
use nab::engine::{NabConfig, NabEngine};
use nab::value::Value;
use nab_netgraph::{gen, DiGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Per-instance observation.
#[derive(Debug, Clone, PartialEq)]
pub struct InstancePoint {
    /// Instance index `k` (1-based).
    pub k: usize,
    /// Instance duration.
    pub time: f64,
    /// Whether dispute control ran.
    pub dispute: bool,
    /// Cumulative average time per instance after `k` instances.
    pub running_avg: f64,
}

/// Full series for one adversary.
#[derive(Debug, Clone)]
pub struct AmortizationSeries {
    /// Adversary label.
    pub adversary: String,
    /// The per-instance points.
    pub points: Vec<InstancePoint>,
    /// Total dispute rounds observed.
    pub dispute_rounds: usize,
    /// The paper's bound `f(f+1)`.
    pub dispute_budget: usize,
}

/// Runs `q` instances on `g` with the given adversary.
pub fn run_series(
    name: &str,
    g: &DiGraph,
    f: usize,
    symbols: usize,
    q: usize,
    faulty: &BTreeSet<usize>,
    adv: &mut dyn NabAdversary,
) -> AmortizationSeries {
    let mut engine = NabEngine::new(
        g.clone(),
        NabConfig {
            f,
            symbols,
            seed: 11,
        },
    )
    .expect("valid network");
    let mut rng = StdRng::seed_from_u64(3);
    let mut points = Vec::with_capacity(q);
    let mut total = 0.0;
    let mut disputes = 0;
    for k in 1..=q {
        let input = Value::random(symbols, &mut rng);
        let rep = engine
            .run_instance(&input, faulty, adv)
            .expect("instance runs");
        total += rep.times.total();
        disputes += usize::from(rep.dispute_ran);
        points.push(InstancePoint {
            k,
            time: rep.times.total(),
            dispute: rep.dispute_ran,
            running_avg: total / k as f64,
        });
    }
    AmortizationSeries {
        adversary: name.to_string(),
        points,
        dispute_rounds: disputes,
        dispute_budget: DisputeState::max_executions(f),
    }
}

/// The default E4 set: three dispute-forcing adversaries on K4.
pub fn run_default(q: usize) -> Vec<AmortizationSeries> {
    let g = gen::complete(4, 2);
    let faulty = BTreeSet::from([2]);
    vec![
        run_series("false-alarm", &g, 1, 240, q, &faulty, &mut FalseAlarm),
        run_series(
            "truthful-corruptor",
            &g,
            1,
            240,
            q,
            &faulty,
            &mut TruthfulCorruptor,
        ),
        run_series(
            "lying-corruptor",
            &g,
            1,
            240,
            q,
            &faulty,
            &mut LyingCorruptor,
        ),
    ]
}

/// Formats the series as a table of (k, time, dispute) milestones.
pub fn table(series: &[AmortizationSeries]) -> String {
    let mut rows = Vec::new();
    for s in series {
        let first = s.points.first().unwrap();
        let last = s.points.last().unwrap();
        rows.push(vec![
            s.adversary.clone(),
            s.dispute_rounds.to_string(),
            s.dispute_budget.to_string(),
            format!("{:.1}", first.time),
            format!("{:.1}", last.time),
            format!("{:.1}", last.running_avg),
        ]);
    }
    crate::format_table(
        &[
            "adversary",
            "dispute rounds",
            "budget f(f+1)",
            "t(1st)",
            "t(last)",
            "avg t/instance",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dispute_rounds_within_budget_and_steady_state_reached() {
        for s in run_default(6) {
            assert!(
                s.dispute_rounds <= s.dispute_budget,
                "{}: {} rounds > budget {}",
                s.adversary,
                s.dispute_rounds,
                s.dispute_budget
            );
            // After the budget is spent, instances run without disputes.
            let tail_disputes = s
                .points
                .iter()
                .skip(s.dispute_budget)
                .filter(|p| p.dispute)
                .count();
            assert_eq!(tail_disputes, 0, "{}: disputes after budget", s.adversary);
            // Steady-state time is far below the first (dispute-laden)
            // instance.
            let first = s.points.first().unwrap().time;
            let last = s.points.last().unwrap().time;
            assert!(
                last < first,
                "{}: no speedup (first {first}, last {last})",
                s.adversary
            );
        }
    }

    #[test]
    fn running_average_is_monotone_decreasing_after_disputes_stop() {
        for s in run_default(6) {
            let after: Vec<f64> = s
                .points
                .iter()
                .skip_while(|p| p.dispute)
                .map(|p| p.running_avg)
                .collect();
            for w in after.windows(2) {
                assert!(w[1] <= w[0] + 1e-9);
            }
        }
    }
}
