//! E1 — the paper's worked examples (Figures 1 and 2).
//!
//! Regenerates every number the paper states about its example graphs:
//! the per-node min cuts and `γ` of Figure 1(a), the post-dispute `Ω_k`
//! and `U_k = 2` of Figure 1(b), and the two-arborescence packing of
//! Figure 2(a)/(c) with link (1,2) shared by both trees.

// nab-lint: allow-file(NAB003): perf-harness setup; aborting on a malformed experiment configuration is the intended behavior

use std::collections::BTreeSet;

use nab::bounds::{omega_subsets, pair, u_k};
use nab_netgraph::arborescence::pack_arborescences;
use nab_netgraph::flow::{broadcast_rate, min_cut};
use nab_netgraph::gen;
use nab_netgraph::treepack::pack_spanning_trees;
use nab_netgraph::UnGraph;

/// All quantities the paper states about Figures 1–2.
#[derive(Debug, Clone, PartialEq)]
pub struct FigureReport {
    /// `MINCUT(G, 1, j)` for j = 2, 3, 4 on Figure 1(a) (paper: 2, 3, 2).
    pub fig1a_mincuts: [u64; 3],
    /// `γ` of Figure 1(a) (paper: 2).
    pub fig1a_gamma: u64,
    /// `|Ω_k|` after the 2–3 dispute on Figure 1(b) (paper: 2).
    pub fig1b_omega_len: usize,
    /// `U_k` of Figure 1(b) (paper: 2).
    pub fig1b_uk: u64,
    /// `γ` of Figure 2(a) (paper: 2 spanning trees embed).
    pub fig2a_gamma: u64,
    /// Arborescences packed in Figure 2(a) (paper: 2).
    pub fig2a_trees: usize,
    /// Times the capacity-2 link (1,2) is used across the packing
    /// (paper: both trees use it).
    pub fig2a_link12_usage: u64,
    /// Undirected spanning trees packed in Figure 2(b) (paper shows one in
    /// Figure 2(d)).
    pub fig2b_undirected_trees: usize,
}

/// Runs E1.
pub fn run() -> FigureReport {
    let g1a = gen::figure_1a();
    let fig1a_mincuts = [
        min_cut(&g1a, 0, 1),
        min_cut(&g1a, 0, 2),
        min_cut(&g1a, 0, 3),
    ];
    let fig1a_gamma = broadcast_rate(&g1a, 0);

    let g1b = gen::figure_1b();
    let disputes = BTreeSet::from([pair(1, 2)]);
    let omega = omega_subsets(&g1b, 1, &disputes);
    let fig1b_uk = u_k(&g1b, 1, &disputes).unwrap_or(0);

    let g2a = gen::figure_2a();
    let fig2a_gamma = broadcast_rate(&g2a, 0);
    let trees = pack_arborescences(&g2a, 0, fig2a_gamma).expect("γ trees pack");
    let link12_usage = trees
        .iter()
        .flat_map(|t| t.edges.iter())
        .filter(|&&(s, d)| s == 0 && d == 1)
        .count() as u64;

    let u2b = UnGraph::from_digraph(&g2a);
    let undirected = pack_spanning_trees(&u2b, 1).map_or(0, |t| t.len());

    FigureReport {
        fig1a_mincuts,
        fig1a_gamma,
        fig1b_omega_len: omega.len(),
        fig1b_uk,
        fig2a_gamma,
        fig2a_trees: trees.len(),
        fig2a_link12_usage: link12_usage,
        fig2b_undirected_trees: undirected,
    }
}

/// The paper-vs-measured table.
pub fn table() -> String {
    let r = run();
    crate::format_table(
        &["quantity", "paper", "measured"],
        &[
            vec![
                "Fig1(a) MINCUT(1,2)".into(),
                "2".into(),
                r.fig1a_mincuts[0].to_string(),
            ],
            vec![
                "Fig1(a) MINCUT(1,3)".into(),
                "3".into(),
                r.fig1a_mincuts[1].to_string(),
            ],
            vec![
                "Fig1(a) MINCUT(1,4)".into(),
                "2".into(),
                r.fig1a_mincuts[2].to_string(),
            ],
            vec!["Fig1(a) γ".into(), "2".into(), r.fig1a_gamma.to_string()],
            vec![
                "Fig1(b) |Ω_k|".into(),
                "2".into(),
                r.fig1b_omega_len.to_string(),
            ],
            vec!["Fig1(b) U_k".into(), "2".into(), r.fig1b_uk.to_string()],
            vec!["Fig2(a) γ".into(), "2".into(), r.fig2a_gamma.to_string()],
            vec![
                "Fig2(c) spanning trees".into(),
                "2".into(),
                r.fig2a_trees.to_string(),
            ],
            vec![
                "Fig2(c) link(1,2) usage".into(),
                "2".into(),
                r.fig2a_link12_usage.to_string(),
            ],
            vec![
                "Fig2(d) undirected tree".into(),
                "1".into(),
                r.fig2b_undirected_trees.to_string(),
            ],
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paper_number_matches() {
        let r = run();
        assert_eq!(r.fig1a_mincuts, [2, 3, 2]);
        assert_eq!(r.fig1a_gamma, 2);
        assert_eq!(r.fig1b_omega_len, 2);
        assert_eq!(r.fig1b_uk, 2);
        assert_eq!(r.fig2a_gamma, 2);
        assert_eq!(r.fig2a_trees, 2);
        assert_eq!(r.fig2a_link12_usage, 2);
        assert_eq!(r.fig2b_undirected_trees, 1);
    }

    #[test]
    fn table_mentions_gamma() {
        assert!(table().contains("Fig1(a) γ"));
    }
}
