//! E-experiments re-expressed as declarative scenarios.
//!
//! The hand-coded experiment modules (`e3_throughput`,
//! `e4_amortization`, `e7_capacity`) predate the scenario engine; this
//! module states the same designs as [`ScenarioSpec`]s so they run on
//! the shared sweep runner (parallelism, JSON reports, deterministic
//! seeds) and so `experiments` output and `nab-sim --scenario` output
//! come from one code path. New experiments should start here — a
//! scenario first, a bespoke module only if the design cannot be
//! expressed declaratively.

// nab-lint: allow-file(NAB003): perf-harness setup; aborting on a malformed experiment configuration is the intended behavior

use std::collections::BTreeSet;

use nab_scenario::{
    run_sweep, AdversarySpec, FaultSchedule, ScenarioSpec, SweepReport, Tok, TopologyTemplate,
};

/// E3 as a scenario: fault-free throughput on the uniform complete-graph
/// grid (K4 and K5, each at capacity ×1/×2/×4) against the paper's
/// bounds. This covers the uniform entries of the hand-coded
/// `e3_throughput::network_suite`; its heterogeneous and `f = 2` entries
/// remain hand-coded (see `e7_capacity_scenario` for the heterogeneous
/// setting).
pub fn e3_throughput_scenario(symbols: usize, q: usize) -> ScenarioSpec {
    ScenarioSpec::new("e3-throughput")
        .with_topology(TopologyTemplate::Complete {
            n: Tok::N,
            cap: Tok::Cap,
        })
        .with_q(q)
        .with_n(vec![4, 5])
        .with_cap(vec![1, 2, 4])
        .with_symbols(vec![symbols])
        .with_bounds(true)
}

/// E4 as a scenario: the false-alarm amortization attack swept over
/// rotating fault placements; the report's per-stream budget check *is*
/// the `f(f+1)` claim.
pub fn e4_amortization_scenario(q: usize) -> ScenarioSpec {
    ScenarioSpec::new("e4-amortization")
        .with_topology(TopologyTemplate::Complete {
            n: Tok::N,
            cap: Tok::Cap,
        })
        .with_adversary(AdversarySpec::FalseAlarm)
        .with_faults(FaultSchedule::Rotating { count: 1 })
        .with_q(q)
        .with_n(vec![4, 5])
        .with_cap(vec![2])
        .with_symbols(vec![16])
        .with_seeds(4)
}

/// E7 as a scenario: worst-case single-fault placement on heterogeneous
/// meshes — the capacity-skew setting where placement matters most.
pub fn e7_capacity_scenario(q: usize) -> ScenarioSpec {
    ScenarioSpec::new("e7-capacity")
        .with_topology(TopologyTemplate::Hetero {
            n: Tok::N,
            lo: Tok::Lit(1),
            hi: Tok::Cap,
        })
        .with_adversary(AdversarySpec::Corruptor)
        .with_faults(FaultSchedule::WorstCase {
            count: 1,
            max_candidates: 8,
        })
        .with_q(q)
        .with_n(vec![4, 5])
        .with_cap(vec![4, 8])
        .with_symbols(vec![24])
        .with_seeds(2)
}

/// Runs a scenario-expressed experiment and formats the standard table.
pub fn run_and_table(spec: &ScenarioSpec, threads: usize) -> (SweepReport, String) {
    let report = run_sweep(spec, threads).expect("experiment scenarios are valid");
    let rows: Vec<Vec<String>> = report
        .jobs
        .iter()
        .map(|j| match &j.result {
            Ok(m) => vec![
                format!(
                    "n={} cap={} f={} S={} #{}",
                    j.n, j.cap, j.f, j.symbols, j.seed_index
                ),
                format!("{:?}", j.faulty),
                format!("{:.3}", m.throughput),
                m.steady_throughput
                    .map(|t| format!("{t:.3}"))
                    .unwrap_or_else(|| "-".into()),
                format!("{}/{}", m.dispute_rounds, m.dispute_budget),
                m.bounds
                    .as_ref()
                    .map(|b| format!("{:.2}", b.eq6_lower))
                    .unwrap_or_else(|| "-".into()),
                if m.all_correct {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ],
            Err(e) => vec![
                format!(
                    "n={} cap={} f={} S={} #{}",
                    j.n, j.cap, j.f, j.symbols, j.seed_index
                ),
                format!("{:?}", j.faulty),
                "rejected".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                e.clone(),
            ],
        })
        .collect();
    let table = crate::format_table(
        &[
            "grid point",
            "faulty",
            "tput",
            "steady",
            "disputes",
            "eq6",
            "ok",
        ],
        &rows,
    );
    (report, table)
}

/// Cross-check: the scenario-expressed E3 must agree with the hand-coded
/// `run_many` measurement on the same network, config, and seed.
pub fn e3_matches_handcoded(symbols: usize, q: usize) -> bool {
    use nab::adversary::HonestStrategy;
    use nab::engine::{run_many, NabConfig, NabEngine};
    use nab_netgraph::gen;

    let spec = e3_throughput_scenario(symbols, q);
    let report = run_sweep(&spec, 1).expect("valid scenario");
    report.jobs.iter().all(|job| {
        let m = match &job.result {
            Ok(m) => m,
            Err(_) => return false,
        };
        let g = gen::complete(job.n, job.cap);
        let cfg = NabConfig {
            f: job.f,
            symbols: job.symbols,
            seed: job.seed,
        };
        let mut engine = NabEngine::new(g, cfg).expect("suite networks are valid");
        let sum = run_many(
            &mut engine,
            q,
            &BTreeSet::new(),
            &mut HonestStrategy,
            job.seed,
        )
        .expect("fault-free run succeeds");
        // The two sides draw *different* input values (the sweep derives
        // its input RNG from the job seed, run_many uses the seed
        // directly), so this validates the simulated *time model*: on the
        // fault-free path every phase cost depends only on the workload
        // shape (symbols, graph, f), never on input content, hence equal
        // throughput. It is not an input-for-input replay.
        sum.all_correct && m.all_correct && (m.throughput - sum.throughput).abs() < 1e-9
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e3_scenario_agrees_with_handcoded_run_many() {
        assert!(e3_matches_handcoded(16, 3));
    }

    #[test]
    fn e4_scenario_respects_dispute_budget() {
        let (report, table) = run_and_table(&e4_amortization_scenario(4), 2);
        assert_eq!(report.aggregate.rejected_jobs, 0);
        assert!(report.aggregate.all_correct);
        assert!(
            !report.aggregate.dispute_budget_violated,
            "f(f+1) must hold"
        );
        // Every job saw the false alarm trigger at least one dispute.
        assert!(report
            .jobs
            .iter()
            .all(|j| j.result.as_ref().unwrap().dispute_rounds >= 1));
        assert!(table.contains("tput"));
    }

    #[test]
    fn e7_scenario_reports_worst_placement() {
        let (report, _) = run_and_table(&e7_capacity_scenario(2), 2);
        assert!(report.aggregate.all_correct);
        for job in &report.jobs {
            assert!(job.candidates_tried > 1, "worst-case search ran");
            assert_eq!(job.faulty.len(), 1);
        }
    }
}
