//! The perf-report subsystem: wall-clock benchmarks of the GF kernel
//! tiers and a bundled scenario sweep, emitting deterministic-schema JSON
//! (`BENCH_gf.json`, `BENCH_sweep.json`).
//!
//! "Deterministic schema" means the key set and key order of the emitted
//! documents never change between runs — only the measured nanosecond
//! values do — so perf reports diff cleanly across commits and the CI
//! smoke job can validate them structurally. The JSON is rendered with
//! the same hand-rolled writer the sweep reports use
//! ([`nab_scenario::json::Json`]); regeneration instructions live in
//! `docs/perf.md`.

use nab_obs::clock;
use std::hint::black_box;

use nab::equality::CodingScheme;
use nab::value::Value;
use nab_gf::bytes::{self, ByteMatrix};
use nab_gf::kernel::{self, scalar_mul_row_add, FastOps};
use nab_gf::linalg;
use nab_gf::matrix::Matrix;
use nab_gf::words::WordMatrix;
use nab_gf::{simd, Field, Gf256, Gf2_16};
use nab_netgraph::gen;
use nab_scenario::json::Json;
use nab_scenario::{parse_str, PhaseLatency, SweepReport};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Bumped whenever a key is added to / removed from the emitted JSON.
/// v2: plan-cache stats in timed sweep metrics/aggregate plus the
/// `plan_cache` cold-vs-cached comparison section.
/// v3: per-phase latency-distribution `percentiles` section, plus the
/// `latency` histograms and `metrics` registry inside the embedded timed
/// sweep report (see `docs/observability.md`).
/// v4: top-level `tier`/`cpu` kernel metadata (the detected arch-SIMD
/// tier and CPU features), batched-op cases (`mul_row_add_batch`,
/// `encode_batch`, `check_batch`, word-slab `mat_mul`) with SIMD tier
/// names, and min-of-[`MIN_REPS`] timing per case.
/// v5: the `plan_repair` A/B section (dispute-heavy replanning with
/// incremental repair on vs. off), disk-tier fields in the `plan_cache`
/// section (`disk_scenario`, `disk_grid_points`, `disk_cold_wall_ns`,
/// `disk_warm_wall_ns`, `disk_hits`, `disk_stores` — the `dc-grid`
/// planning pass, built+persisted vs. loaded), and per-job/aggregate
/// `plan_repairs` / `plan_full_recomputes` / `plan_repair_ns` counters
/// inside the embedded timed sweep.
pub const SCHEMA_VERSION: u64 = 5;

/// Repetitions of every timed loop; the reported `total_ns` is the
/// **minimum** over these (min-of-N filters scheduler and frequency
/// noise, so committed baselines diff stably across regenerations).
pub const MIN_REPS: u32 = 5;

/// The bundled scenario the sweep benchmark runs (the E3 complete-graph
/// grid), embedded so the `perf` binary works from any directory.
pub const SWEEP_SCENARIO: &str = include_str!("../../../scenarios/complete-sweep.scenario");

/// The scenario the plan-cache benchmark runs: the 120-job `scale-grid`,
/// whose 12 distinct networks make plan sharing measurable.
pub const PLAN_CACHE_SCENARIO: &str = include_str!("../../../scenarios/scale-grid.scenario");

/// The scenario the plan-repair benchmark runs: `dispute-storm`, where a
/// fixed corruptor raises disputes in the first instances and every later
/// instance replans on the shrunken `G_k` (plus a degrade schedule that
/// migrates plans mid-job).
pub const PLAN_REPAIR_SCENARIO: &str = include_str!("../../../scenarios/dispute-storm.scenario");

/// The scenario whose planning pass the disk-tier benchmark times: the
/// 1024-node `dc-grid` torus, where plan construction — not execution —
/// is the cold-start cost the persistent cache exists to amortize.
pub const PLAN_DISK_SCENARIO: &str = include_str!("../../../scenarios/dc-grid.scenario");

/// One timed GF micro-benchmark case.
#[derive(Debug, Clone)]
pub struct GfCase {
    /// Operation: `mul_row_add`, `mat_mul`, `invert`, `solve`, `encode`.
    pub op: &'static str,
    /// Implementation tier, `<field>/<kernel>` (e.g. `gf256/bytes`,
    /// `gf2_16/split-table16`, `gf2_16/scalar`).
    pub tier: &'static str,
    /// Problem size: row length for row kernels, matrix dimension for
    /// `mat_mul`/`invert`/`solve`, symbol count for `encode`.
    pub n: u64,
    /// Timed iterations per repetition (after one warmup iteration).
    pub iters: u64,
    /// Minimum total nanoseconds over [`MIN_REPS`] repetitions of the
    /// `iters`-iteration loop.
    pub total_ns: u64,
}

impl GfCase {
    /// Mean nanoseconds per iteration.
    pub fn ns_per_iter(&self) -> f64 {
        self.total_ns as f64 / self.iters.max(1) as f64
    }
}

/// Times `iters` iterations of `f`, repeated [`MIN_REPS`] times after one
/// warmup call, and returns the minimum repetition total (min-of-N).
fn time<R>(iters: u64, mut f: impl FnMut() -> R) -> u64 {
    black_box(f());
    let mut best = u64::MAX;
    for _ in 0..MIN_REPS {
        let t0 = clock::mono_now();
        for _ in 0..iters {
            black_box(f());
        }
        best = best.min(t0.elapsed().as_nanos() as u64);
    }
    best
}

fn case<R>(
    op: &'static str,
    tier: &'static str,
    n: u64,
    iters: u64,
    f: impl FnMut() -> R,
) -> GfCase {
    GfCase {
        op,
        tier,
        n,
        iters,
        total_ns: time(iters, f),
    }
}

/// The tier label a `FastOps` row call actually takes for rows of `len`
/// elements: the detected arch-SIMD kernel when one exists and the row
/// clears the dispatch threshold, otherwise the table-tier `fallback`.
/// Labels are static so `GfCase` stays `&'static str` throughout.
fn row_tier(field: &str, len: usize, fallback: &'static str) -> &'static str {
    if len < simd::SIMD_THRESHOLD {
        return fallback;
    }
    match (field, simd::tier()) {
        ("gf256", "avx2") => "gf256/simd-avx2",
        ("gf256", "ssse3") => "gf256/simd-ssse3",
        ("gf2_16", "avx2") => "gf2_16/simd-avx2",
        ("gf2_16", "ssse3") => "gf2_16/simd-ssse3",
        _ => fallback,
    }
}

/// Runs the GF micro-benchmark grid: every kernel tier
/// (byte slab / `FastOps` table kernels / scalar reference) on the row
/// kernel, matrix multiply, inversion, solving, and Algorithm-1 encode.
///
/// `quick` shrinks sizes and iteration counts for smoke runs (CI, tests).
pub fn run_gf_bench(quick: bool) -> Vec<GfCase> {
    let mut rng = StdRng::seed_from_u64(0xBEAC);
    let mut cases = Vec::new();

    // --- Row kernel: dst += s * src over a long row. -------------------
    let row_lens: &[usize] = if quick { &[1024] } else { &[256, 4096] };
    let row_iters = |len: usize| {
        if quick {
            2_000
        } else {
            2_000_000 / len.max(1) as u64 + 1_000
        }
    };
    for &len in row_lens {
        let iters = row_iters(len);
        // `bytes::mul_row_add` and `<Gf256 as FastOps>::mul_row_add` are
        // the same dispatched kernel (FastOps reinterprets and forwards),
        // so one case covers both entry points. FastOps dispatches on row
        // length and the detected SIMD tier: label the tier that actually
        // runs, so BENCH_gf.json attributes timings to the right kernel.
        let src8: Vec<u8> = (0..len).map(|i| (i * 31 + 7) as u8).collect();
        let mut dst8: Vec<u8> = (0..len).map(|i| (i * 17 + 3) as u8).collect();
        cases.push(case(
            "mul_row_add",
            row_tier("gf256", len, "gf256/bytes"),
            len as u64,
            iters,
            || bytes::mul_row_add(&mut dst8, &src8, 0x57),
        ));

        let srcf: Vec<Gf256> = src8.iter().map(|&x| Gf256(x)).collect();
        let mut dsts: Vec<Gf256> = (0..len).map(|i| Gf256((i * 13 + 1) as u8)).collect();
        cases.push(case(
            "mul_row_add",
            "gf256/scalar",
            len as u64,
            iters,
            || scalar_mul_row_add(&mut dsts, &srcf, Gf256(0x57)),
        ));

        let src16: Vec<Gf2_16> = (0..len)
            .map(|i| Gf2_16::from_u64(i as u64 * 257 + 11))
            .collect();
        let mut dst16: Vec<Gf2_16> = (0..len)
            .map(|i| Gf2_16::from_u64(i as u64 * 41 + 5))
            .collect();
        let table_tier = if len >= kernel::GF2_16_SPLIT_THRESHOLD {
            "gf2_16/split-table16"
        } else {
            "gf2_16/log16"
        };
        let gf2_16_tier = row_tier("gf2_16", len, table_tier);
        cases.push(case("mul_row_add", gf2_16_tier, len as u64, iters, || {
            <Gf2_16 as FastOps>::mul_row_add(&mut dst16, &src16, Gf2_16(0xABCD))
        }));
        let mut dst16s = dst16.clone();
        cases.push(case(
            "mul_row_add",
            "gf2_16/scalar",
            len as u64,
            iters,
            || scalar_mul_row_add(&mut dst16s, &src16, Gf2_16(0xABCD)),
        ));

        // Batched fused multiply-add: one destination accumulating many
        // scaled sources (the blocked-mat_mul inner shape).
        let nsrcs = 8usize;
        let batch_srcs: Vec<Vec<Gf2_16>> = (0..nsrcs)
            .map(|r| {
                (0..len)
                    .map(|i| Gf2_16::from_u64((i * 97 + r * 13 + 1) as u64))
                    .collect()
            })
            .collect();
        let batch_refs: Vec<&[Gf2_16]> = batch_srcs.iter().map(|v| v.as_slice()).collect();
        let batch_scalars: Vec<Gf2_16> = (0..nsrcs)
            .map(|r| Gf2_16::from_u64(r as u64 * 0x1234 + 2))
            .collect();
        let batch_iters = iters / nsrcs as u64 + 1;
        let mut dstb = dst16.clone();
        cases.push(case(
            "mul_row_add_batch",
            gf2_16_tier,
            len as u64,
            batch_iters,
            || <Gf2_16 as FastOps>::mul_row_add_batch(&mut dstb, &batch_refs, &batch_scalars),
        ));
        let mut dstbs = dst16.clone();
        cases.push(case(
            "mul_row_add_batch",
            "gf2_16/scalar",
            len as u64,
            batch_iters,
            || {
                for (src, &s) in batch_refs.iter().zip(&batch_scalars) {
                    scalar_mul_row_add(&mut dstbs, src, s);
                }
            },
        ));
    }

    // --- Dense linear algebra: mat_mul / invert / solve. ---------------
    let dims: &[usize] = if quick { &[24] } else { &[48, 96] };
    for &n in dims {
        let iters = if quick {
            10
        } else {
            2_000_000 / (n * n * n) as u64 + 5
        };
        let a8 = ByteMatrix::random(n, n, &mut rng);
        let b8 = ByteMatrix::random(n, n, &mut rng);
        cases.push(case("mat_mul", "gf256/bytes", n as u64, iters, || {
            a8.mat_mul(&b8)
        }));
        let a = Matrix::<Gf2_16>::random(n, n, &mut rng);
        let b = Matrix::<Gf2_16>::random(n, n, &mut rng);
        cases.push(case("mat_mul", "gf2_16/kernel", n as u64, iters, || {
            kernel::mat_mul(&a, &b)
        }));
        let aw = WordMatrix::from_matrix(&a);
        let bw = WordMatrix::from_matrix(&b);
        cases.push(case("mat_mul", "gf2_16/words", n as u64, iters, || {
            aw.mat_mul(&bw)
        }));
        cases.push(case("mat_mul", "gf2_16/scalar", n as u64, iters, || {
            a.mul(&b)
        }));

        cases.push(case("invert", "gf256/bytes", n as u64, iters, || {
            a8.invert()
        }));
        cases.push(case("invert", "gf2_16/kernel", n as u64, iters, || {
            kernel::invert(&a)
        }));
        cases.push(case("invert", "gf2_16/scalar", n as u64, iters, || {
            linalg::invert(&a)
        }));

        let rhs: Vec<Gf2_16> = (0..n).map(|i| Gf2_16::from_u64(i as u64 + 1)).collect();
        cases.push(case("solve", "gf2_16/kernel", n as u64, iters, || {
            kernel::solve(&a, &rhs)
        }));
        cases.push(case("solve", "gf2_16/scalar", n as u64, iters, || {
            linalg::solve(&a, &rhs)
        }));
    }

    // --- Algorithm-1 encode on the full coding-scheme path. ------------
    let symbols = if quick { 64 } else { 512 };
    let enc_iters = if quick { 50 } else { 500 };
    let g = gen::complete(6, 4);
    let scheme = CodingScheme::random(&g, 4, 29);
    let value = Value::random(symbols, &mut rng);
    cases.push(case(
        "encode",
        "gf2_16/kernel",
        symbols as u64,
        enc_iters,
        || scheme.encode(0, 1, &value),
    ));

    // --- Batched Algorithm-1 encode/check over a packed column slab. ----
    // The shape the batched execution path hands the kernels: one ρ×width
    // slab holding the value-columns of many instances/streams, encoded
    // by a single blocked multiply per edge. `n` records the slab width
    // (packed columns).
    let width = if quick { 256 } else { 2048 };
    let (rho, z) = (6usize, 10usize);
    let code = Matrix::<Gf2_16>::random(rho, z, &mut rng);
    let xslab: Vec<Gf2_16> = (0..rho * width)
        .map(|i| Gf2_16::from_u64(i as u64 * 193 + 7))
        .collect();
    let slab_iters = if quick { 100 } else { 400 };
    let slab_tier = row_tier("gf2_16", width, "gf2_16/split-table16");
    let mut out = vec![Gf2_16::ZERO; z * width];
    cases.push(case(
        "encode_batch",
        slab_tier,
        width as u64,
        slab_iters,
        || <Gf2_16 as FastOps>::encode_batch(&code, &xslab, width, &mut out),
    ));
    // Scalar baseline: the per-column path the batched encode replaces.
    let mut out_s = vec![Gf2_16::ZERO; z * width];
    cases.push(case(
        "encode_batch",
        "gf2_16/scalar",
        width as u64,
        slab_iters,
        || {
            for j in 0..width {
                for r in 0..z {
                    let mut acc = Gf2_16::ZERO;
                    for k in 0..rho {
                        acc = acc.add(code[(k, r)].mul(xslab[k * width + j]));
                    }
                    out_s[r * width + j] = acc;
                }
            }
        },
    ));
    let expected = out.clone();
    cases.push(case(
        "check_batch",
        slab_tier,
        width as u64,
        slab_iters,
        || <Gf2_16 as FastOps>::check_batch(&code, &xslab, width, &expected),
    ));

    cases
}

/// Renders the GF micro-benchmark report (`BENCH_gf.json`): the selected
/// arch-SIMD tier and detected CPU features (so baselines from different
/// machines stay comparable), then every timed case.
pub fn gf_report_json(cases: &[GfCase], quick: bool) -> Json {
    Json::obj(vec![
        ("report", Json::str("gf")),
        ("schema", Json::U64(SCHEMA_VERSION)),
        ("quick", Json::Bool(quick)),
        ("tier", Json::str(simd::tier())),
        ("cpu", Json::str(simd::cpu_features())),
        (
            "cases",
            Json::Arr(
                cases
                    .iter()
                    .map(|c| {
                        Json::obj(vec![
                            ("op", Json::str(c.op)),
                            ("tier", Json::str(c.tier)),
                            ("n", Json::U64(c.n)),
                            ("iters", Json::U64(c.iters)),
                            ("total_ns", Json::U64(c.total_ns)),
                            ("ns_per_iter", Json::F64(c.ns_per_iter())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Runs the bundled scenario sweep under timing instrumentation.
///
/// `quick` shrinks the grid to a smoke-sized subset. Returns the report,
/// the elapsed wall nanoseconds, and the **resolved** worker count
/// (`threads == 0` means one per CPU, resolved here exactly as the sweep
/// runner resolves it, so the recorded metadata matches the run).
///
/// # Errors
///
/// Returns the scenario parse/validation failure, if any.
pub fn run_sweep_bench(quick: bool, threads: usize) -> Result<(SweepReport, u64, usize), String> {
    let mut spec = parse_str(SWEEP_SCENARIO).map_err(|e| e.to_string())?;
    if quick {
        spec.q = spec.q.min(2);
        spec.seeds = spec.seeds.min(1);
        spec.symbols.truncate(1);
        spec.n.truncate(1);
        spec.cap.truncate(1);
        spec.bounds = false;
    }
    let resolved = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    let t0 = clock::mono_now();
    let report = nab_scenario::sweep::run_sweep(&spec, resolved)?;
    Ok((report, t0.elapsed().as_nanos() as u64, resolved))
}

/// The cold-vs-cached plan-cache comparison: the same sweep measured
/// with per-engine planning (cache off), with a fresh sweep-private
/// cache, and against a pre-warmed external cache.
#[derive(Debug, Clone)]
pub struct PlanCacheBench {
    /// Scenario name the comparison ran.
    pub scenario: String,
    /// Jobs in the sweep grid.
    pub jobs: usize,
    /// Worker threads used for all three runs.
    pub threads: usize,
    /// Wall ns with `plan_cache = false` (every engine plans privately).
    pub cold_wall_ns: u64,
    /// Wall ns with a fresh cache (plans built once, then shared).
    pub cache_cold_wall_ns: u64,
    /// Wall ns re-running against the already-populated cache.
    pub cache_warm_wall_ns: u64,
    /// Cache stats after the fresh-cache run (distinct networks built).
    pub plan_misses: u64,
    /// Cache hits during the fresh-cache run (shared fetches).
    pub plan_hits: u64,
    /// Wall ns the fresh-cache run spent building plans.
    pub plan_build_ns: u64,
    /// Scenario whose *planning pass* the disk-tier timings measure
    /// (`dc-grid`: 1024-node torus — the regime where planning, not
    /// execution, dominates cold start).
    pub disk_scenario: String,
    /// Grid points planned per disk-tier pass.
    pub disk_grid_points: usize,
    /// Wall ns to plan every grid point with a fresh disk-backed cache
    /// over an empty directory: every distinct plan is built *and*
    /// persisted (write-then-rename) — the no-cache cold start plus
    /// persistence overhead.
    pub disk_cold_wall_ns: u64,
    /// Wall ns of the same planning pass in a fresh process-equivalent
    /// cache over the populated directory: in-memory cache empty, every
    /// plan loaded (and re-verified) from disk instead of built.
    pub disk_warm_wall_ns: u64,
    /// Plans loaded from disk during the disk-warm pass.
    pub disk_hits: u64,
    /// Plans persisted during the disk-cold pass.
    pub disk_stores: u64,
    /// Whether all runs produced byte-identical canonical JSON
    /// (the tentpole guarantee; recorded so a regression is visible in
    /// the committed baseline).
    pub reports_identical: bool,
}

/// Runs the plan-cache comparison on the `scale-grid` scenario, plus the
/// disk-tier A/B on the `dc-grid` planning pass (build+persist vs. load
/// at 1024 nodes — the cold-start cost the disk cache amortizes).
///
/// `quick` shrinks the grids to smoke-sized subsets that still contain
/// duplicate networks (so hits stay observable).
///
/// # Errors
///
/// Returns the scenario parse/validation failure, if any.
/// Plans every grid point of `spec` through `cache` — the `--validate`
/// code path without the printing. Returns the number of grid points.
fn plan_grid(
    spec: &nab_scenario::ScenarioSpec,
    cache: &nab::plan::PlanCache,
) -> Result<usize, String> {
    let jobs = nab_scenario::sweep::expand_jobs(spec);
    for job in &jobs {
        let ctx = nab_scenario::topology::ResolveCtx {
            n: job.n,
            cap: job.cap,
            f: job.f,
            seed: job.seed,
        };
        let g = spec
            .topology
            .build(&ctx)
            .map_err(|e| format!("{} grid point {}: {e}", spec.name, job.index))?;
        cache
            .fetch(&g, job.f)
            .map_err(|e| format!("{} grid point {}: {e}", spec.name, job.index))?;
    }
    Ok(jobs.len())
}

pub fn run_plan_cache_bench(quick: bool, threads: usize) -> Result<PlanCacheBench, String> {
    let mut spec = parse_str(PLAN_CACHE_SCENARIO).map_err(|e| e.to_string())?;
    if quick {
        spec.q = 1;
        spec.seeds = spec.seeds.min(2);
        spec.symbols.truncate(1);
        spec.n.truncate(2);
        spec.cap.truncate(2);
    }
    let resolved = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };

    spec.plan_cache = false;
    let t0 = clock::mono_now();
    let cold = nab_scenario::sweep::run_sweep(&spec, resolved)?;
    let cold_wall_ns = t0.elapsed().as_nanos() as u64;

    spec.plan_cache = true;
    let cache = nab::plan::PlanCache::new();
    let t0 = clock::mono_now();
    let cached = nab_scenario::run_sweep_with_cache(&spec, resolved, Some(&cache))?;
    let cache_cold_wall_ns = t0.elapsed().as_nanos() as u64;
    let stats = cache.stats();

    let t0 = clock::mono_now();
    let warm = nab_scenario::run_sweep_with_cache(&spec, resolved, Some(&cache))?;
    let cache_warm_wall_ns = t0.elapsed().as_nanos() as u64;

    // Disk tier, identity half: run the same sweep through a disk-backed
    // cache (empty directory, then the populated one) and fold both
    // reports into the byte-identity check — the disk path must never
    // perturb results.
    let dir = std::env::temp_dir().join(format!("nab-plan-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let disk_sweep_cold_cache = nab::plan::PlanCache::with_dir(&dir);
    let disk_cold =
        nab_scenario::run_sweep_with_cache(&spec, resolved, Some(&disk_sweep_cold_cache))?;
    let disk_sweep_warm_cache = nab::plan::PlanCache::with_dir(&dir);
    let disk_warm =
        nab_scenario::run_sweep_with_cache(&spec, resolved, Some(&disk_sweep_warm_cache))?;
    let _ = std::fs::remove_dir_all(&dir);

    // Disk tier, timing half: the datacenter-scale `dc-grid` planning
    // pass — plan every grid point against an empty directory (build +
    // persist), then again from a fresh cache over the populated one
    // (load + verify). Execution is deliberately absent: the disk tier
    // amortizes cold-start *planning*, which at 1024 nodes dwarfs a plan
    // load; timing the whole sweep would mostly measure execution.
    let mut disk_spec = parse_str(PLAN_DISK_SCENARIO).map_err(|e| e.to_string())?;
    if quick {
        disk_spec.cap.truncate(1);
    }
    let _ = std::fs::remove_dir_all(&dir);
    let disk_cold_cache = nab::plan::PlanCache::with_dir(&dir);
    let t0 = clock::mono_now();
    let disk_grid_points = plan_grid(&disk_spec, &disk_cold_cache)?;
    let disk_cold_wall_ns = t0.elapsed().as_nanos() as u64;
    let disk_stores = disk_cold_cache.stats().disk_stores;

    let disk_warm_cache = nab::plan::PlanCache::with_dir(&dir);
    let t0 = clock::mono_now();
    plan_grid(&disk_spec, &disk_warm_cache)?;
    let disk_warm_wall_ns = t0.elapsed().as_nanos() as u64;
    let disk_hits = disk_warm_cache.stats().disk_hits;
    let _ = std::fs::remove_dir_all(&dir);

    let reference = cold.to_json();
    Ok(PlanCacheBench {
        scenario: spec.name.clone(),
        jobs: spec.job_count(),
        threads: resolved,
        cold_wall_ns,
        cache_cold_wall_ns,
        cache_warm_wall_ns,
        plan_misses: stats.misses,
        plan_hits: stats.hits,
        plan_build_ns: stats.build_ns,
        disk_scenario: disk_spec.name.clone(),
        disk_grid_points,
        disk_cold_wall_ns,
        disk_warm_wall_ns,
        disk_hits,
        disk_stores,
        reports_identical: reference == cached.to_json()
            && reference == warm.to_json()
            && reference == disk_cold.to_json()
            && reference == disk_warm.to_json(),
    })
}

/// The incremental plan-repair A/B: the same dispute-heavy sweep run
/// with `plan_repair` on (witness-incremental packer + memoized `G_k`
/// derivations) and off (full recompute on every disputed instance).
#[derive(Debug, Clone)]
pub struct PlanRepairBench {
    /// Scenario name the comparison ran.
    pub scenario: String,
    /// Jobs in the sweep grid.
    pub jobs: usize,
    /// Worker threads used for both runs.
    pub threads: usize,
    /// Total sweep wall ns with repair on.
    pub repair_wall_ns: u64,
    /// Total sweep wall ns with repair off.
    pub norepair_wall_ns: u64,
    /// Replanning ns with repair on (the acceptance metric's numerator
    /// base: repairs + the forced full recomputes).
    pub repair_replan_ns: u64,
    /// Replanning ns with repair off (every disputed instance recomputes).
    pub norepair_replan_ns: u64,
    /// Derivations resolved by incremental repair (repair-on run).
    pub repairs: u64,
    /// Forced full recomputes (repair-on run: γ/ρ changed or migration).
    pub full_recomputes: u64,
    /// Full recomputes in the repair-off run.
    pub norepair_recomputes: u64,
    /// Whether both runs produced byte-identical canonical JSON.
    pub reports_identical: bool,
}

/// Runs the plan-repair comparison on the `dispute-storm` scenario.
///
/// `quick` shrinks the grid while keeping the dispute-then-long-tail
/// shape that makes replanning measurable.
///
/// # Errors
///
/// Returns the scenario parse/validation failure, if any.
pub fn run_plan_repair_bench(quick: bool, threads: usize) -> Result<PlanRepairBench, String> {
    let mut spec = parse_str(PLAN_REPAIR_SCENARIO).map_err(|e| e.to_string())?;
    if quick {
        spec.q = spec.q.min(10);
        spec.seeds = spec.seeds.min(2);
        spec.n.truncate(1);
    }
    let resolved = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };

    spec.plan_repair = true;
    let t0 = clock::mono_now();
    let on = nab_scenario::sweep::run_sweep(&spec, resolved)?;
    let repair_wall_ns = t0.elapsed().as_nanos() as u64;

    spec.plan_repair = false;
    let t0 = clock::mono_now();
    let off = nab_scenario::sweep::run_sweep(&spec, resolved)?;
    let norepair_wall_ns = t0.elapsed().as_nanos() as u64;

    Ok(PlanRepairBench {
        scenario: spec.name.clone(),
        jobs: spec.job_count(),
        threads: resolved,
        repair_wall_ns,
        norepair_wall_ns,
        repair_replan_ns: on.aggregate.plan_repair_ns,
        norepair_replan_ns: off.aggregate.plan_repair_ns,
        repairs: on.aggregate.plan_repairs,
        full_recomputes: on.aggregate.plan_full_recomputes,
        norepair_recomputes: off.aggregate.plan_full_recomputes,
        reports_identical: on.to_json() == off.to_json(),
    })
}

/// Renders the sweep-wide latency percentiles (`p50`/`p90`/`p99` wall
/// nanoseconds per phase) from the aggregate latency histograms.
fn percentiles_json(latency: &PhaseLatency) -> Json {
    Json::obj(
        latency
            .phases()
            .into_iter()
            .map(|(name, h)| {
                (
                    name,
                    Json::obj(vec![
                        ("count", Json::U64(h.count())),
                        ("p50_ns", Json::U64(h.percentile(50.0))),
                        ("p90_ns", Json::U64(h.percentile(90.0))),
                        ("p99_ns", Json::U64(h.percentile(99.0))),
                    ]),
                )
            })
            .collect(),
    )
}

/// Renders the sweep benchmark report (`BENCH_sweep.json`): run metadata,
/// per-phase latency percentiles, the full timed sweep report (per-job
/// `wall_*_ns`, latency histograms, plan-cache and plan-repair stats
/// included), the cold-vs-cached-vs-disk `plan_cache` comparison, and
/// the repair-on-vs-off `plan_repair` comparison.
pub fn sweep_report_json(
    report: &SweepReport,
    wall_ns: u64,
    threads: usize,
    quick: bool,
    plan_cache: &PlanCacheBench,
    plan_repair: &PlanRepairBench,
) -> Json {
    Json::obj(vec![
        ("report", Json::str("sweep")),
        ("schema", Json::U64(SCHEMA_VERSION)),
        ("quick", Json::Bool(quick)),
        ("threads", Json::U64(threads as u64)),
        ("wall_ns", Json::U64(wall_ns)),
        ("percentiles", percentiles_json(&report.aggregate.latency)),
        (
            "plan_cache",
            Json::obj(vec![
                ("scenario", Json::str(&plan_cache.scenario)),
                ("jobs", Json::U64(plan_cache.jobs as u64)),
                ("threads", Json::U64(plan_cache.threads as u64)),
                ("cold_wall_ns", Json::U64(plan_cache.cold_wall_ns)),
                (
                    "cache_cold_wall_ns",
                    Json::U64(plan_cache.cache_cold_wall_ns),
                ),
                (
                    "cache_warm_wall_ns",
                    Json::U64(plan_cache.cache_warm_wall_ns),
                ),
                ("plan_misses", Json::U64(plan_cache.plan_misses)),
                ("plan_hits", Json::U64(plan_cache.plan_hits)),
                ("plan_build_ns", Json::U64(plan_cache.plan_build_ns)),
                ("disk_scenario", Json::str(&plan_cache.disk_scenario)),
                (
                    "disk_grid_points",
                    Json::U64(plan_cache.disk_grid_points as u64),
                ),
                ("disk_cold_wall_ns", Json::U64(plan_cache.disk_cold_wall_ns)),
                ("disk_warm_wall_ns", Json::U64(plan_cache.disk_warm_wall_ns)),
                ("disk_hits", Json::U64(plan_cache.disk_hits)),
                ("disk_stores", Json::U64(plan_cache.disk_stores)),
                (
                    "reports_identical",
                    Json::Bool(plan_cache.reports_identical),
                ),
            ]),
        ),
        (
            "plan_repair",
            Json::obj(vec![
                ("scenario", Json::str(&plan_repair.scenario)),
                ("jobs", Json::U64(plan_repair.jobs as u64)),
                ("threads", Json::U64(plan_repair.threads as u64)),
                ("repair_wall_ns", Json::U64(plan_repair.repair_wall_ns)),
                ("norepair_wall_ns", Json::U64(plan_repair.norepair_wall_ns)),
                ("repair_replan_ns", Json::U64(plan_repair.repair_replan_ns)),
                (
                    "norepair_replan_ns",
                    Json::U64(plan_repair.norepair_replan_ns),
                ),
                ("repairs", Json::U64(plan_repair.repairs)),
                ("full_recomputes", Json::U64(plan_repair.full_recomputes)),
                (
                    "norepair_recomputes",
                    Json::U64(plan_repair.norepair_recomputes),
                ),
                (
                    "reports_identical",
                    Json::Bool(plan_repair.reports_identical),
                ),
            ]),
        ),
        ("sweep", report.to_json_value(true)),
    ])
}

/// A terminal summary table of GF cases (op, tier, n, ns/iter).
pub fn gf_summary_table(cases: &[GfCase]) -> String {
    let rows: Vec<Vec<String>> = cases
        .iter()
        .map(|c| {
            vec![
                c.op.to_string(),
                c.tier.to_string(),
                c.n.to_string(),
                format!("{:.0}", c.ns_per_iter()),
            ]
        })
        .collect();
    crate::format_table(&["op", "tier", "n", "ns/iter"], &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gf_report_schema_is_stable() {
        let cases = vec![GfCase {
            op: "mul_row_add",
            tier: "gf256/bytes",
            n: 64,
            iters: 10,
            total_ns: 1234,
        }];
        let j = gf_report_json(&cases, true).render();
        assert!(j.starts_with("{\"report\":\"gf\",\"schema\":5,\"quick\":true,\"tier\":\""));
        for key in [
            "\"cpu\":\"",
            "\"cases\":[",
            "\"op\":",
            "\"tier\":",
            "\"n\":64",
            "\"iters\":10",
            "\"total_ns\":1234",
            "\"ns_per_iter\":123.4",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }

    #[test]
    fn quick_gf_bench_covers_every_op_and_tier_pair() {
        let cases = run_gf_bench(true);
        let ops: std::collections::BTreeSet<&str> = cases.iter().map(|c| c.op).collect();
        assert_eq!(
            ops.into_iter().collect::<Vec<_>>(),
            vec![
                "check_batch",
                "encode",
                "encode_batch",
                "invert",
                "mat_mul",
                "mul_row_add",
                "mul_row_add_batch",
                "solve"
            ]
        );
        // Every specialized tier appears alongside its scalar baseline,
        // with the row cases labeled by the kernel that actually runs on
        // this machine (arch-SIMD when detected, table tiers otherwise).
        assert!(cases.iter().any(|c| c.tier == "gf256/bytes"));
        assert!(cases.iter().any(|c| c.tier == "gf2_16/words"));
        assert!(cases.iter().any(|c| c.tier == "gf2_16/scalar"));
        let expected_row = match simd::tier() {
            "avx2" => "gf2_16/simd-avx2",
            "ssse3" => "gf2_16/simd-ssse3",
            _ => "gf2_16/split-table16",
        };
        assert!(
            cases
                .iter()
                .any(|c| c.op == "mul_row_add" && c.tier == expected_row),
            "row tier must track the detected kernel ({expected_row})"
        );
        for c in &cases {
            assert!(c.iters > 0, "{c:?}");
        }
    }

    fn fixture_plan_cache_bench() -> PlanCacheBench {
        PlanCacheBench {
            scenario: "scale-grid".into(),
            jobs: 8,
            threads: 2,
            cold_wall_ns: 300,
            cache_cold_wall_ns: 200,
            cache_warm_wall_ns: 100,
            plan_misses: 4,
            plan_hits: 4,
            plan_build_ns: 50,
            disk_scenario: "dc-grid".into(),
            disk_grid_points: 2,
            disk_cold_wall_ns: 250,
            disk_warm_wall_ns: 120,
            disk_hits: 4,
            disk_stores: 4,
            reports_identical: true,
        }
    }

    fn fixture_plan_repair_bench() -> PlanRepairBench {
        PlanRepairBench {
            scenario: "dispute-storm".into(),
            jobs: 4,
            threads: 2,
            repair_wall_ns: 400,
            norepair_wall_ns: 900,
            repair_replan_ns: 60,
            norepair_replan_ns: 500,
            repairs: 5,
            full_recomputes: 2,
            norepair_recomputes: 40,
            reports_identical: true,
        }
    }

    #[test]
    fn quick_sweep_bench_produces_timed_report() {
        let (report, wall_ns, threads) = run_sweep_bench(true, 2).expect("bundled scenario runs");
        assert_eq!(threads, 2, "explicit thread counts pass through");
        assert!(report.aggregate.ok_jobs > 0);
        assert!(report.aggregate.all_correct);
        let j = sweep_report_json(
            &report,
            wall_ns,
            threads,
            true,
            &fixture_plan_cache_bench(),
            &fixture_plan_repair_bench(),
        )
        .render();
        assert!(j.starts_with("{\"report\":\"sweep\",\"schema\":5"));
        assert!(
            j.contains("\"wall_total_ns\":"),
            "timed sweep embedded: {j}"
        );
        assert!(
            j.contains("\"plan_cache_hits\":"),
            "per-job cache stats embedded: {j}"
        );
        // The v3 percentile section covers every phase plus the
        // whole-instance distribution, in declaration order.
        assert!(
            j.contains("\"percentiles\":{\"phase1\":{\"count\":"),
            "latency percentiles embedded: {j}"
        );
        for phase in ["phase1", "equality", "flags", "dispute", "instance"] {
            assert!(
                j.contains(&format!("\"{phase}\":{{\"count\":")),
                "percentiles cover {phase}: {j}"
            );
        }
        for p in ["p50_ns", "p90_ns", "p99_ns"] {
            assert!(j.contains(&format!("\"{p}\":")), "{p} present");
        }
        // The timed sweep inside carries per-job latency histograms and
        // the sweep-wide metrics registry.
        assert!(j.contains("\"latency\":{\"phase1\":{"), "job latency: {j}");
        assert!(
            j.contains("\"metrics\":{\"counters\":{"),
            "metrics registry: {j}"
        );
        assert!(j.contains(
            "\"plan_cache\":{\"scenario\":\"scale-grid\",\"jobs\":8,\"threads\":2,\
             \"cold_wall_ns\":300,\"cache_cold_wall_ns\":200,\"cache_warm_wall_ns\":100,\
             \"plan_misses\":4,\"plan_hits\":4,\"plan_build_ns\":50,\
             \"disk_scenario\":\"dc-grid\",\"disk_grid_points\":2,\
             \"disk_cold_wall_ns\":250,\"disk_warm_wall_ns\":120,\
             \"disk_hits\":4,\"disk_stores\":4,\
             \"reports_identical\":true}"
        ));
        assert!(j.contains(
            "\"plan_repair\":{\"scenario\":\"dispute-storm\",\"jobs\":4,\"threads\":2,\
             \"repair_wall_ns\":400,\"norepair_wall_ns\":900,\
             \"repair_replan_ns\":60,\"norepair_replan_ns\":500,\
             \"repairs\":5,\"full_recomputes\":2,\"norepair_recomputes\":40,\
             \"reports_identical\":true}"
        ));
        // The v5 timed sweep carries the per-job repair counters.
        assert!(j.contains("\"plan_repairs\":"), "repair counters: {j}");
        assert!(
            j.contains("\"plan_full_recomputes\":"),
            "recompute counters: {j}"
        );
        assert!(j.contains("\"sweep\":{\"scenario\":\"complete-sweep\""));
    }

    #[test]
    fn quick_plan_cache_bench_shares_plans_and_stays_identical() {
        let b = run_plan_cache_bench(true, 2).expect("scale-grid runs");
        assert_eq!(b.scenario, "scale-grid");
        assert!(b.jobs >= 8, "quick grid keeps duplicate networks");
        assert!(b.plan_misses > 0);
        assert!(
            b.plan_hits > 0,
            "duplicate networks must hit the cache: {b:?}"
        );
        assert!(b.plan_build_ns > 0);
        assert_eq!(b.disk_scenario, "dc-grid");
        assert!(b.disk_grid_points >= 1, "dc-grid plans at least once");
        assert!(b.disk_stores > 0, "disk-cold pass persists plans: {b:?}");
        assert_eq!(
            b.disk_hits, b.disk_stores,
            "warm pass loads every persisted plan: {b:?}"
        );
        assert!(
            b.disk_warm_wall_ns < b.disk_cold_wall_ns,
            "loading a 1024-node plan beats building it: {b:?}"
        );
        assert!(
            b.reports_identical,
            "cache state must not perturb canonical JSON"
        );
    }

    #[test]
    fn quick_plan_repair_bench_repairs_and_stays_identical() {
        let b = run_plan_repair_bench(true, 2).expect("dispute-storm runs");
        assert_eq!(b.scenario, "dispute-storm");
        assert!(b.jobs >= 2);
        assert!(
            b.repairs + b.full_recomputes > 0,
            "disputes must force derivations: {b:?}"
        );
        assert!(
            b.norepair_recomputes > b.repairs + b.full_recomputes,
            "repair must collapse derivations: {b:?}"
        );
        assert!(b.repair_replan_ns > 0 && b.norepair_replan_ns > 0);
        assert!(
            b.reports_identical,
            "repair mode must not perturb canonical JSON"
        );
    }

    #[test]
    fn default_thread_count_is_resolved_before_recording() {
        let (_, _, threads) = run_sweep_bench(true, 0).expect("bundled scenario runs");
        assert!(threads >= 1, "0 must resolve to the actual worker count");
    }
}
