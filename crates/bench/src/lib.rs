//! Experiment implementations regenerating every quantitative artifact of
//! the paper (see DESIGN.md §4 for the index).
//!
//! Each module produces typed result rows plus a formatted table, so the
//! same code backs the Criterion benches (`benches/`), the
//! `experiments` binary that fills EXPERIMENTS.md, and the integration
//! tests that assert the paper's claims hold.

pub mod e1_examples;
pub mod e2_theorem1;
pub mod e3_throughput;
pub mod e4_amortization;
pub mod e5_baselines;
pub mod e6_pipelining;
pub mod e7_capacity;
pub mod e8_ablation;
pub mod perf;
pub mod scenarios;

/// Formats a table of rows for terminal/markdown output.
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::from("|");
        for (c, w) in cells.iter().zip(widths) {
            line.push_str(&format!(" {c:w$} |"));
        }
        line
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&head, &widths));
    out.push('\n');
    out.push('|');
    for w in &widths {
        out.push_str(&format!("{:-<1$}|", "", w + 2));
    }
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    #[test]
    fn table_formatting_aligns() {
        let t = super::format_table(
            &["a", "bb"],
            &[vec!["1".into(), "2".into()], vec!["333".into(), "4".into()]],
        );
        assert!(t.contains("| a   | bb |"));
        assert!(t.contains("| 333 | 4  |"));
    }
}
