//! E7 — the capacity table: Theorem 2's upper bound vs Eq. 6's lower
//! bound across the network suite, verifying Theorem 3's 1/3 (and
//! conditional 1/2) guarantees.

use nab::bounds::{bounds_report, BoundsReport};
use nab_netgraph::{gen, DiGraph};

/// One network's bound structure.
#[derive(Debug, Clone)]
pub struct CapacityRow {
    /// Network label.
    pub name: String,
    /// The full bounds report.
    pub report: BoundsReport,
    /// Whether the `γ* ≤ ρ*` side-condition for the 1/2 guarantee holds.
    pub half_condition: bool,
}

/// The networks tabulated (paper examples + families).
pub fn networks() -> Vec<(String, DiGraph, usize)> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(13);
    vec![
        ("Figure 1(a)".into(), gen::figure_1a(), 1),
        ("Figure 2(a)".into(), gen::figure_2a(), 1),
        ("K4 ×1".into(), gen::complete(4, 1), 1),
        ("K4 ×3".into(), gen::complete(4, 3), 1),
        ("K5 ×2".into(), gen::complete(5, 2), 1),
        (
            "K5 hetero".into(),
            gen::complete_heterogeneous(5, 1, 6, &mut rng),
            1,
        ),
        ("K7 ×1 f=2".into(), gen::complete(7, 1), 2),
        ("barbell".into(), gen::barbell(2, 4, 2, 2), 1),
    ]
}

/// Computes the table rows (skipping networks whose `U_1 < 2`).
pub fn run() -> Vec<CapacityRow> {
    let mut rows = Vec::new();
    for (name, g, f) in networks() {
        if let Some(report) = bounds_report(&g, 0, f, 1 << 18) {
            let half = report.gamma_star.value <= report.rho_star;
            rows.push(CapacityRow {
                name,
                report,
                half_condition: half,
            });
        }
    }
    rows
}

/// Formats the capacity table.
pub fn table(rows: &[CapacityRow]) -> String {
    crate::format_table(
        &[
            "network",
            "γ1",
            "γ*",
            "U1",
            "ρ*",
            "Eq.6 lower",
            "Thm2 upper",
            "fraction",
            "guarantee",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.report.gamma1.to_string(),
                    format!(
                        "{}{}",
                        r.report.gamma_star.value,
                        if r.report.gamma_star.exact { "" } else { "≤" }
                    ),
                    r.report.u1.to_string(),
                    r.report.rho_star.to_string(),
                    format!("{:.2}", r.report.tnab_lower),
                    r.report.capacity_upper.to_string(),
                    format!("{:.3}", r.report.guaranteed_fraction),
                    if r.half_condition { "1/2" } else { "1/3" }.to_string(),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem3_holds_on_every_network() {
        let rows = run();
        assert!(rows.len() >= 6, "most networks should tabulate");
        for r in &rows {
            assert!(
                r.report.guaranteed_fraction >= 1.0 / 3.0 - 1e-9,
                "{}: fraction {} < 1/3",
                r.name,
                r.report.guaranteed_fraction
            );
            if r.half_condition {
                assert!(
                    r.report.guaranteed_fraction >= 0.5 - 1e-9,
                    "{}: fraction {} < 1/2 with γ*≤ρ*",
                    r.name,
                    r.report.guaranteed_fraction
                );
            }
        }
    }

    #[test]
    fn lower_bound_never_exceeds_upper() {
        for r in run() {
            assert!(
                r.report.tnab_lower <= r.report.capacity_upper as f64 + 1e-9,
                "{}",
                r.name
            );
        }
    }
}
