//! E3 — NAB throughput vs the Eq. 6 lower bound and the Theorem 2
//! capacity upper bound (the paper's headline: ≥ 1/3 of capacity, ≥ 1/2
//! when `γ* ≤ ρ*`).

use std::collections::BTreeSet;

use nab::adversary::{HonestStrategy, NabAdversary, TruthfulCorruptor};
use nab::bounds::bounds_report;
use nab::engine::{run_many, NabConfig, NabEngine};
use nab_netgraph::{gen, DiGraph};

/// One network's measurements.
#[derive(Debug, Clone)]
pub struct ThroughputRow {
    /// Network label.
    pub name: String,
    /// `γ*` (exactness flag folded into the name when approximate).
    pub gamma_star: u64,
    /// `ρ*`.
    pub rho_star: u64,
    /// Eq. 6 lower bound `γ*ρ*/(γ*+ρ*)`.
    pub tnab_bound: f64,
    /// Theorem 2 upper bound `min(γ*, 2ρ*)`.
    pub capacity_bound: u64,
    /// Measured fault-free throughput (bits / time unit).
    pub measured: f64,
    /// Steady-state throughput under the adversary: instances *after* the
    /// (boundedly many) dispute-control rounds have exposed the faults —
    /// the regime the paper's amortization argument converges to.
    pub adversarial_steady: f64,
    /// Dispute rounds the adversary managed to force.
    pub dispute_rounds: usize,
    /// measured / capacity_bound.
    pub fraction_of_capacity: f64,
}

/// The network suite used across experiments.
pub fn network_suite() -> Vec<(String, DiGraph, usize)> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(77);
    vec![
        ("K4 ×1".into(), gen::complete(4, 1), 1),
        ("K4 ×2".into(), gen::complete(4, 2), 1),
        ("K4 ×4".into(), gen::complete(4, 4), 1),
        ("K5 ×2".into(), gen::complete(5, 2), 1),
        (
            "K4 hetero".into(),
            gen::complete_heterogeneous(4, 1, 8, &mut rng),
            1,
        ),
        ("K7 ×1 f=2".into(), gen::complete(7, 1), 2),
    ]
}

/// Measures one network: `q` instances of `symbols`-symbol values,
/// fault-free and under `adv` with the given faulty set.
pub fn measure(
    name: &str,
    g: &DiGraph,
    f: usize,
    symbols: usize,
    q: usize,
    faulty: &BTreeSet<usize>,
    adv: &mut dyn NabAdversary,
) -> Option<ThroughputRow> {
    use nab::value::Value;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let rep = bounds_report(g, 0, f, 1 << 18)?;
    let cfg = NabConfig {
        f,
        symbols,
        seed: 5,
    };
    let mut engine = NabEngine::new(g.clone(), cfg).ok()?;
    let clean = run_many(&mut engine, q, &BTreeSet::new(), &mut HonestStrategy, 1).ok()?;
    assert!(clean.all_correct, "{name}: fault-free run must be correct");

    // Adversarial run: per-instance accounting so the steady state (after
    // the bounded dispute phase) can be reported separately.
    let mut engine2 = NabEngine::new(g.clone(), cfg).ok()?;
    let mut rng = StdRng::seed_from_u64(1);
    let mut steady_time = 0.0;
    let mut steady_bits = 0u64;
    let mut dispute_rounds = 0usize;
    for _ in 0..q {
        let input = Value::random(symbols, &mut rng);
        let irep = engine2.run_instance(&input, faulty, adv).ok()?;
        // Correctness of every instance.
        for (&v, out) in &irep.outputs {
            if !faulty.contains(&v) && !irep.defaulted && !faulty.contains(&0) {
                assert_eq!(*out, input, "{name}: node {v} wrong output");
            }
        }
        if irep.dispute_ran {
            dispute_rounds += 1;
        } else {
            steady_time += irep.times.total();
            steady_bits += input.bits();
        }
    }

    Some(ThroughputRow {
        name: name.to_string(),
        gamma_star: rep.gamma_star.value,
        rho_star: rep.rho_star,
        tnab_bound: rep.tnab_lower,
        capacity_bound: rep.capacity_upper,
        measured: clean.throughput,
        adversarial_steady: if steady_time > 0.0 {
            steady_bits as f64 / steady_time
        } else {
            0.0
        },
        dispute_rounds,
        fraction_of_capacity: clean.throughput / rep.capacity_upper as f64,
    })
}

/// Runs the full suite.
pub fn run(symbols: usize, q: usize) -> Vec<ThroughputRow> {
    let mut rows = Vec::new();
    for (name, g, f) in network_suite() {
        let faulty = BTreeSet::from([1]);
        let mut adv = TruthfulCorruptor;
        if let Some(row) = measure(&name, &g, f, symbols, q, &faulty, &mut adv) {
            rows.push(row);
        }
    }
    rows
}

/// Formats the rows.
pub fn table(rows: &[ThroughputRow]) -> String {
    crate::format_table(
        &[
            "network",
            "γ*",
            "ρ*",
            "Eq.6 bound",
            "cap bound",
            "measured T",
            "T adv (steady)",
            "disputes",
            "T / cap",
        ],
        &rows
            .iter()
            .map(|r| {
                vec![
                    r.name.clone(),
                    r.gamma_star.to_string(),
                    r.rho_star.to_string(),
                    format!("{:.2}", r.tnab_bound),
                    r.capacity_bound.to_string(),
                    format!("{:.2}", r.measured),
                    format!("{:.2}", r.adversarial_steady),
                    r.dispute_rounds.to_string(),
                    format!("{:.3}", r.fraction_of_capacity),
                ]
            })
            .collect::<Vec<_>>(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k4_measured_throughput_respects_both_bounds() {
        // Large L so the O(n^α) flag overhead is amortized.
        let faulty = BTreeSet::new();
        let mut adv = HonestStrategy;
        let row = measure("K4 ×2", &gen::complete(4, 2), 1, 1200, 4, &faulty, &mut adv)
            .expect("bounds exist");
        // Theorem 3: the lower bound is at least a third of the capacity
        // bound.
        assert!(row.tnab_bound * 3.0 + 1e-9 >= row.capacity_bound as f64);
        // Measured throughput (per-instance γ_k, ρ_k can exceed the
        // worst-case γ*, ρ*) must at least achieve the Eq. 6 bound up to
        // the amortized overhead.
        assert!(
            row.measured >= row.tnab_bound * 0.85,
            "measured {} vs bound {}",
            row.measured,
            row.tnab_bound
        );
        // And never beats capacity… measured uses γ_1 ≥ γ*, so compare
        // against the instantaneous capacity min(γ_1, 2ρ_1): here they are
        // equal on K4 with no disputes.
        let cap_now = row.capacity_bound as f64;
        let _ = cap_now; // fraction tracked in the row
        assert!(row.fraction_of_capacity > 0.0);
    }

    #[test]
    fn adversarial_run_still_correct_and_measured() {
        let faulty = BTreeSet::from([2]);
        let mut adv = TruthfulCorruptor;
        let row = measure("K4 ×2", &gen::complete(4, 2), 1, 600, 4, &faulty, &mut adv).unwrap();
        assert!(row.adversarial_steady > 0.0);
        assert_eq!(row.dispute_rounds, 1, "one dispute round exposes the fault");
    }
}
