//! Property-based tests for the NAB core: value plumbing, equality-check
//! algebra, dispute-control soundness, and bound consistency.

use std::collections::BTreeSet;
use std::sync::Arc;

use nab::adversary::{FalseAlarm, HonestStrategy, LyingCorruptor, NabAdversary, TruthfulCorruptor};
use nab::bounds::{self, pair};
use nab::dispute::DisputeState;
use nab::engine::{NabConfig, NabEngine};
use nab::equality::{equality_check_flags, no_tamper, CodingScheme};
use nab::plan::ExecutionPlan;
use nab::value::Value;
use nab_netgraph::gen;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_value(max_len: usize) -> impl Strategy<Value = Value> {
    proptest::collection::vec(any::<u16>(), 1..=max_len)
        .prop_map(|v| Value::from_u64s(&v.iter().map(|&x| x as u64).collect::<Vec<_>>()))
}

proptest! {
    #[test]
    fn split_join_roundtrips(v in arb_value(64), parts in 1usize..8) {
        let blocks = v.split_blocks(parts);
        prop_assert_eq!(blocks.len(), parts);
        prop_assert_eq!(Value::join_blocks(&blocks), v);
        // Blocks are balanced to within one symbol.
        let lens: Vec<usize> = blocks.iter().map(Vec::len).collect();
        let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        prop_assert!(mx - mn <= 1);
    }

    #[test]
    fn reshape_covers_all_symbols(v in arb_value(64), rho in 1usize..9) {
        let m = v.reshape(rho);
        let total: usize = m.len() * rho;
        prop_assert!(total >= v.len());
        prop_assert!(total < v.len() + rho);
        // Flattening column-major recovers the symbols (plus padding).
        let flat: Vec<_> = m.iter().flatten().copied().collect();
        prop_assert_eq!(&flat[..v.len()], v.symbols());
    }

    #[test]
    fn encode_is_linear(a in arb_value(24), b_seed in any::<u64>(), seed in any::<u64>()) {
        use nab_gf::field::Field;
        // Y(a + b) = Y(a) + Y(b): the coding is GF-linear, the property
        // the whole construction rests on.
        let g = gen::complete(3, 2);
        let scheme = CodingScheme::random(&g, 2, seed);
        let mut rng = StdRng::seed_from_u64(b_seed);
        let b = Value::random(a.len(), &mut rng);
        let sum = Value::from_symbols(
            a.symbols()
                .iter()
                .zip(b.symbols())
                .map(|(&x, &y)| x.add(y))
                .collect(),
        );
        let ya = scheme.encode(0, 1, &a);
        let yb = scheme.encode(0, 1, &b);
        let ysum = scheme.encode(0, 1, &sum);
        let manual: Vec<_> = ya.iter().zip(&yb).map(|(&x, &y)| x.add(y)).collect();
        prop_assert_eq!(ysum, manual);
    }

    #[test]
    fn equal_values_never_flag(v in arb_value(32), seed in any::<u64>(), rho in 1usize..4) {
        let g = gen::complete(4, 2);
        let scheme = CodingScheme::random(&g, rho, seed);
        let values = g.nodes().map(|n| (n, v.clone())).collect();
        let flags = equality_check_flags(&g, &values, &scheme, &mut no_tamper);
        prop_assert!(flags.values().all(|f| !f));
    }

    #[test]
    fn single_symbol_deviation_always_detected(
        v in arb_value(32),
        idx_seed in any::<u64>(),
        delta in 1u64..0xFFFF,
        seed in any::<u64>(),
    ) {
        // Over GF(2^16) a one-symbol deviation escapes a single coded
        // check with probability 2^-16; over the whole graph and test run
        // this should never fire.
        let g = gen::complete(4, 2);
        let scheme = CodingScheme::random(&g, 2, seed);
        let idx = (idx_seed as usize) % v.len();
        let mut values: std::collections::BTreeMap<_, _> =
            g.nodes().map(|n| (n, v.clone())).collect();
        values.insert(3, v.corrupt_symbol(idx, delta));
        let flags = equality_check_flags(&g, &values, &scheme, &mut no_tamper);
        prop_assert!(flags.values().any(|f| *f));
    }

    #[test]
    fn dispute_integration_is_sound(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 0..4),
    ) {
        // Whatever pairs are reported, a node is only removed if it lies
        // in EVERY ≤f explanation — so removal implies it covers pairs no
        // small set avoids.
        let g = gen::complete(4, 1);
        let valid: Vec<_> = pairs
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| pair(a, b))
            .collect();
        // Only integrate explainable sets (some single node covers all).
        let explainable = (0..4).any(|c| valid.iter().all(|&(a, b)| a == c || b == c));
        if !explainable {
            return Ok(());
        }
        let mut st = DisputeState::new();
        let removed = st.integrate(&g, 1, &valid, &[]);
        for &r in &removed {
            // r must appear in every single-node cover.
            for c in 0..4 {
                let covers = valid.iter().all(|&(a, b)| a == c || b == c);
                if covers {
                    prop_assert_eq!(c, r, "cover {} avoids removed {}", c, r);
                }
            }
        }
        // Graph evolution drops exactly the disputed links.
        let gk = st.current_graph(&g);
        for &(a, b) in &valid {
            if gk.is_active(a) && gk.is_active(b) {
                prop_assert!(gk.find_edge(a, b).is_none());
            }
        }
    }

    #[test]
    fn bounds_monotone_under_dispute(seed in any::<u64>(), a in 0usize..4, b in 0usize..4) {
        // Appendix C.2: Ω_k ⊆ Ω_1, hence U_k ≥ U_1 — disputes can only
        // *raise* the equality-check rate (ρ_k ≥ ρ*), because the minimum
        // runs over fewer candidate subgraphs and disputed pairs never
        // appear jointly inside any Ω_k member. Phase-1's γ, by contrast,
        // can only drop as G_k loses edges.
        if a == b { return Ok(()); }
        let mut grng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(4, 0.9, 3, &mut grng);
        let no_disputes = BTreeSet::new();
        let with: BTreeSet<_> = BTreeSet::from([pair(a, b)]);
        let mut st = DisputeState::new();
        st.integrate(&g, 1, &[pair(a, b)], &[]);
        let gk = st.current_graph(&g);
        if let (Some(u1), Some(uk)) = (bounds::u_k(&g, 1, &no_disputes), bounds::u_k(&gk, 1, &with)) {
            prop_assert!(uk >= u1, "U_k {} < U_1 {}", uk, u1);
        }
        if gk.is_active(0) && gk.all_reachable_from(0) {
            prop_assert!(bounds::gamma_k(&gk, 0) <= bounds::gamma_k(&g, 0));
        }
    }

    #[test]
    fn coding_scheme_is_seed_deterministic(seed in any::<u64>(), v in arb_value(16)) {
        let g = gen::complete(3, 2);
        let s1 = CodingScheme::random(&g, 2, seed);
        let s2 = CodingScheme::random(&g, 2, seed);
        prop_assert_eq!(s1.encode(0, 1, &v), s2.encode(0, 1, &v));
        prop_assert_eq!(s1.encode(2, 1, &v), s2.encode(2, 1, &v));
    }
}

/// One adversary strategy per schedule code; both engines in the
/// differential get their own (identically built) instance.
fn adversary(code: u8) -> Box<dyn NabAdversary> {
    match code % 4 {
        0 => Box::new(HonestStrategy),
        1 => Box::new(TruthfulCorruptor),
        2 => Box::new(LyingCorruptor),
        _ => Box::new(FalseAlarm),
    }
}

/// Runs one instance on both engines and checks the reports are
/// bit-identical (wall-clock fields excepted — those measure the
/// simulator, not the protocol).
fn differential_step(
    fast: &mut NabEngine,
    slow: &mut NabEngine,
    x: &Value,
    faulty: &BTreeSet<usize>,
    code: u8,
) {
    let mut adv_a = adversary(code);
    let mut adv_b = adversary(code);
    let ra = fast.run_instance(x, faulty, adv_a.as_mut());
    let rb = slow.run_instance(x, faulty, adv_b.as_mut());
    match (ra, rb) {
        (Ok(a), Ok(b)) => {
            assert_eq!(a.outputs, b.outputs);
            assert_eq!(a.times, b.times);
            assert_eq!(a.gamma_k, b.gamma_k);
            assert_eq!(a.rho_k, b.rho_k);
            assert_eq!(a.mismatch_detected, b.mismatch_detected);
            assert_eq!(a.dispute_ran, b.dispute_ran);
            assert_eq!(a.new_pairs, b.new_pairs);
            assert_eq!(a.newly_removed, b.newly_removed);
            assert_eq!(a.defaulted, b.defaulted);
        }
        (Err(ea), Err(eb)) => assert_eq!(ea, eb),
        (a, b) => panic!(
            "engines diverged: repair-on err={:?} repair-off err={:?}",
            a.err(),
            b.err()
        ),
    }
}

proptest! {
    // Each case runs up to a dozen full protocol instances; keep the
    // case count low enough for CI while still sweeping graph shapes,
    // adversary schedules, and mutation points.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Differential property behind `plan_repair`: with incremental
    /// repair on vs. off, every instance report of a random adversarial
    /// run is bit-identical — including dispute chains that end in a
    /// forced full recompute (γ/ρ changed, or a mid-sequence capacity
    /// mutation migrated the engines onto a fresh plan and invalidated
    /// the memo).
    #[test]
    fn plan_repair_matches_full_recompute_on_random_sequences(
        seed in any::<u64>(),
        n in 5usize..8,
        codes in proptest::collection::vec(0u8..4, 2..7),
        // Values ≥ the schedule length mean "no mutation this case".
        mutate_at in 0usize..9,
    ) {
        let mut grng = StdRng::seed_from_u64(seed);
        // f = 1 needs connectivity ≥ 3; sparse k-connected graphs are the
        // interesting case (disputes actually move γ_k and ρ_k around).
        let g = gen::random_k_connected(n, 3, 3, 0.3, &mut grng);
        let cfg = NabConfig { f: 1, symbols: 8, seed };
        let Ok(mut fast) = NabEngine::new(g.clone(), cfg) else {
            // The random network failed a feasibility condition (U_1 < 2);
            // nothing to differentiate.
            return Ok(());
        };
        let mut slow = fast.clone();
        slow.set_plan_repair(false);
        let faulty = BTreeSet::from([n - 1]);
        let x = Value::random(8, &mut grng);
        for (i, &code) in codes.iter().enumerate() {
            if mutate_at == i {
                // OCS-style capacity rewrite mid-sequence: halve every
                // other link, rebuild the plan, migrate both engines onto
                // it (disputes carry over; the repair memo is dropped, so
                // the next disputed instance derives G_k from scratch).
                let mut m = g.clone();
                let ids: Vec<usize> = m.edges().map(|(id, _)| id).collect();
                for &id in ids.iter().step_by(2) {
                    let cap = m.edge(id).expect("edge ids are live").cap;
                    m.set_edge_cap(id, (cap / 2).max(1));
                }
                let Ok(plan) = ExecutionPlan::build(m, 1) else { return Ok(()); };
                let plan = Arc::new(plan);
                fast.migrate_to_plan(Arc::clone(&plan)).expect("same f, same nodes");
                slow.migrate_to_plan(plan).expect("same f, same nodes");
            }
            differential_step(&mut fast, &mut slow, &x, &faulty, code);
        }
        prop_assert_eq!(&fast.disputes().pairs, &slow.disputes().pairs);
        prop_assert_eq!(&fast.disputes().removed, &slow.disputes().removed);
        prop_assert_eq!(slow.repair_stats().repairs, 0, "repair-off never repairs");
    }
}
