//! Property-based tests for the NAB core: value plumbing, equality-check
//! algebra, dispute-control soundness, and bound consistency.

use std::collections::BTreeSet;

use nab::bounds::{self, pair};
use nab::dispute::DisputeState;
use nab::equality::{equality_check_flags, no_tamper, CodingScheme};
use nab::value::Value;
use nab_netgraph::gen;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_value(max_len: usize) -> impl Strategy<Value = Value> {
    proptest::collection::vec(any::<u16>(), 1..=max_len)
        .prop_map(|v| Value::from_u64s(&v.iter().map(|&x| x as u64).collect::<Vec<_>>()))
}

proptest! {
    #[test]
    fn split_join_roundtrips(v in arb_value(64), parts in 1usize..8) {
        let blocks = v.split_blocks(parts);
        prop_assert_eq!(blocks.len(), parts);
        prop_assert_eq!(Value::join_blocks(&blocks), v);
        // Blocks are balanced to within one symbol.
        let lens: Vec<usize> = blocks.iter().map(Vec::len).collect();
        let (mn, mx) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        prop_assert!(mx - mn <= 1);
    }

    #[test]
    fn reshape_covers_all_symbols(v in arb_value(64), rho in 1usize..9) {
        let m = v.reshape(rho);
        let total: usize = m.len() * rho;
        prop_assert!(total >= v.len());
        prop_assert!(total < v.len() + rho);
        // Flattening column-major recovers the symbols (plus padding).
        let flat: Vec<_> = m.iter().flatten().copied().collect();
        prop_assert_eq!(&flat[..v.len()], v.symbols());
    }

    #[test]
    fn encode_is_linear(a in arb_value(24), b_seed in any::<u64>(), seed in any::<u64>()) {
        use nab_gf::field::Field;
        // Y(a + b) = Y(a) + Y(b): the coding is GF-linear, the property
        // the whole construction rests on.
        let g = gen::complete(3, 2);
        let scheme = CodingScheme::random(&g, 2, seed);
        let mut rng = StdRng::seed_from_u64(b_seed);
        let b = Value::random(a.len(), &mut rng);
        let sum = Value::from_symbols(
            a.symbols()
                .iter()
                .zip(b.symbols())
                .map(|(&x, &y)| x.add(y))
                .collect(),
        );
        let ya = scheme.encode(0, 1, &a);
        let yb = scheme.encode(0, 1, &b);
        let ysum = scheme.encode(0, 1, &sum);
        let manual: Vec<_> = ya.iter().zip(&yb).map(|(&x, &y)| x.add(y)).collect();
        prop_assert_eq!(ysum, manual);
    }

    #[test]
    fn equal_values_never_flag(v in arb_value(32), seed in any::<u64>(), rho in 1usize..4) {
        let g = gen::complete(4, 2);
        let scheme = CodingScheme::random(&g, rho, seed);
        let values = g.nodes().map(|n| (n, v.clone())).collect();
        let flags = equality_check_flags(&g, &values, &scheme, &mut no_tamper);
        prop_assert!(flags.values().all(|f| !f));
    }

    #[test]
    fn single_symbol_deviation_always_detected(
        v in arb_value(32),
        idx_seed in any::<u64>(),
        delta in 1u64..0xFFFF,
        seed in any::<u64>(),
    ) {
        // Over GF(2^16) a one-symbol deviation escapes a single coded
        // check with probability 2^-16; over the whole graph and test run
        // this should never fire.
        let g = gen::complete(4, 2);
        let scheme = CodingScheme::random(&g, 2, seed);
        let idx = (idx_seed as usize) % v.len();
        let mut values: std::collections::BTreeMap<_, _> =
            g.nodes().map(|n| (n, v.clone())).collect();
        values.insert(3, v.corrupt_symbol(idx, delta));
        let flags = equality_check_flags(&g, &values, &scheme, &mut no_tamper);
        prop_assert!(flags.values().any(|f| *f));
    }

    #[test]
    fn dispute_integration_is_sound(
        pairs in proptest::collection::vec((0usize..4, 0usize..4), 0..4),
    ) {
        // Whatever pairs are reported, a node is only removed if it lies
        // in EVERY ≤f explanation — so removal implies it covers pairs no
        // small set avoids.
        let g = gen::complete(4, 1);
        let valid: Vec<_> = pairs
            .into_iter()
            .filter(|&(a, b)| a != b)
            .map(|(a, b)| pair(a, b))
            .collect();
        // Only integrate explainable sets (some single node covers all).
        let explainable = (0..4).any(|c| valid.iter().all(|&(a, b)| a == c || b == c));
        if !explainable {
            return Ok(());
        }
        let mut st = DisputeState::new();
        let removed = st.integrate(&g, 1, &valid, &[]);
        for &r in &removed {
            // r must appear in every single-node cover.
            for c in 0..4 {
                let covers = valid.iter().all(|&(a, b)| a == c || b == c);
                if covers {
                    prop_assert_eq!(c, r, "cover {} avoids removed {}", c, r);
                }
            }
        }
        // Graph evolution drops exactly the disputed links.
        let gk = st.current_graph(&g);
        for &(a, b) in &valid {
            if gk.is_active(a) && gk.is_active(b) {
                prop_assert!(gk.find_edge(a, b).is_none());
            }
        }
    }

    #[test]
    fn bounds_monotone_under_dispute(seed in any::<u64>(), a in 0usize..4, b in 0usize..4) {
        // Appendix C.2: Ω_k ⊆ Ω_1, hence U_k ≥ U_1 — disputes can only
        // *raise* the equality-check rate (ρ_k ≥ ρ*), because the minimum
        // runs over fewer candidate subgraphs and disputed pairs never
        // appear jointly inside any Ω_k member. Phase-1's γ, by contrast,
        // can only drop as G_k loses edges.
        if a == b { return Ok(()); }
        let mut grng = StdRng::seed_from_u64(seed);
        let g = gen::random_connected(4, 0.9, 3, &mut grng);
        let no_disputes = BTreeSet::new();
        let with: BTreeSet<_> = BTreeSet::from([pair(a, b)]);
        let mut st = DisputeState::new();
        st.integrate(&g, 1, &[pair(a, b)], &[]);
        let gk = st.current_graph(&g);
        if let (Some(u1), Some(uk)) = (bounds::u_k(&g, 1, &no_disputes), bounds::u_k(&gk, 1, &with)) {
            prop_assert!(uk >= u1, "U_k {} < U_1 {}", uk, u1);
        }
        if gk.is_active(0) && gk.all_reachable_from(0) {
            prop_assert!(bounds::gamma_k(&gk, 0) <= bounds::gamma_k(&g, 0));
        }
    }

    #[test]
    fn coding_scheme_is_seed_deterministic(seed in any::<u64>(), v in arb_value(16)) {
        let g = gen::complete(3, 2);
        let s1 = CodingScheme::random(&g, 2, seed);
        let s2 = CodingScheme::random(&g, 2, seed);
        prop_assert_eq!(s1.encode(0, 1, &v), s2.encode(0, 1, &v));
        prop_assert_eq!(s1.encode(2, 1, &v), s2.encode(2, 1, &v));
    }
}
