//! DetSan smoke tests (`--features sanitize` only).
//!
//! Runs the same instance twice under a trace sink and asserts the
//! determinism-sanitizer digest sequences are present and identical — the
//! property two independent sanitize runs are diffed on in CI.

#![cfg(feature = "sanitize")]

use std::collections::BTreeSet;
use std::sync::Arc;

use nab::adversary::{HonestStrategy, LyingCorruptor};
use nab::engine::{NabConfig, NabEngine};
use nab::value::Value;
use nab_netgraph::gen;
use nab_obs::trace::{self, BufferSink, EventKind};

/// Runs one engine instance with `faulty` under a fresh sink and returns
/// the `(phase, digest)` pairs of all DetSan events, in emission order.
fn digest_run(faulty: &BTreeSet<usize>) -> Vec<(&'static str, u64)> {
    let sink = Arc::new(BufferSink::new());
    trace::set_thread_sink(Some(sink.clone()));
    let mut engine = NabEngine::new(
        gen::complete(4, 2),
        NabConfig {
            f: 1,
            symbols: 12,
            seed: 42,
        },
    )
    .unwrap();
    let input = Value::from_u64s(&(0..12).map(|i| i * 7 + 1).collect::<Vec<_>>());
    let report = if faulty.is_empty() {
        engine.run_instance(&input, faulty, &mut HonestStrategy)
    } else {
        engine.run_instance(&input, faulty, &mut LyingCorruptor)
    };
    report.unwrap();
    trace::set_thread_sink(None);
    sink.take_sorted()
        .into_iter()
        .filter_map(|ev| match ev.kind {
            EventKind::DetSanDigest { phase, digest } => Some((phase.name(), digest)),
            _ => None,
        })
        .collect()
}

#[test]
fn fault_free_instance_emits_identical_digests_across_runs() {
    let faulty = BTreeSet::new();
    let a = digest_run(&faulty);
    let b = digest_run(&faulty);
    assert!(!a.is_empty(), "sanitize build must emit DetSan digests");
    assert_eq!(a, b, "same configuration must digest identically");
    // Fault-free: phase1 + equality run, no dispute control.
    assert!(a.iter().any(|&(p, _)| p == "phase1"));
    assert!(a.iter().any(|&(p, _)| p == "equality"));
}

#[test]
fn corrupting_instance_digests_the_dispute_phase_deterministically() {
    let faulty = BTreeSet::from([2usize]);
    let a = digest_run(&faulty);
    let b = digest_run(&faulty);
    assert_eq!(a, b);
    assert!(
        a.iter().any(|&(p, _)| p == "dispute"),
        "a corrupting relay must trigger dispute control: {a:?}"
    );
    // Different fault injection must not alias the fault-free digests.
    assert_ne!(a, digest_run(&BTreeSet::new()));
}
