//! Dispute control (Phase 3, Appendix B) and the evolving dispute state.
//!
//! When any node announces a MISMATCH, every node Byzantine-broadcasts its
//! *claims*: everything it sent and received during Phases 1–2 (plus, for
//! the source, its input). Then:
//!
//! - **DC2**: a send-claim that contradicts the matching receive-claim puts
//!   the two endpoints *in dispute* — at least one of them is faulty,
//!   because the links themselves are reliable.
//! - **DC3**: NAB is deterministic, so a node whose claimed sends are not
//!   the protocol-prescribed function of its claimed receives (and input)
//!   is *exposed* as faulty outright.
//! - **DC4**: a node contained in every cardinality-`≤ f` explanation of
//!   the accumulated dispute pairs is necessarily faulty and is excluded
//!   from `V_{k+1}`; links between disputed pairs are excluded from
//!   `E_{k+1}`.

use std::collections::{BTreeMap, BTreeSet};

use nab_gf::Gf2_16;
use nab_netgraph::arborescence::Arborescence;
use nab_netgraph::{DiGraph, NodeId};

use crate::bounds::{k_subsets, pair, Pair};
use crate::equality::CodingScheme;
use crate::value::Value;

/// A node's broadcast claims about one instance's Phases 1–2.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Default)]
pub struct NodeClaims {
    /// The source's claimed input (source only).
    pub input: Option<Vec<Gf2_16>>,
    /// Phase-1 blocks claimed received: `(tree, from) → block`.
    pub p1_received: BTreeMap<(usize, NodeId), Vec<Gf2_16>>,
    /// Phase-1 blocks claimed sent: `(tree, to) → block`.
    pub p1_sent: BTreeMap<(usize, NodeId), Vec<Gf2_16>>,
    /// Equality-check coded symbols claimed received: `from → symbols`.
    pub eq_received: BTreeMap<NodeId, Vec<Gf2_16>>,
    /// Equality-check coded symbols claimed sent: `to → symbols`.
    pub eq_sent: BTreeMap<NodeId, Vec<Gf2_16>>,
    /// The 1-bit flag the node announced in step 2.2.
    pub flag: bool,
}

impl NodeClaims {
    /// Approximate wire size in bits (for link-time accounting).
    pub fn bits(&self) -> u64 {
        let symbols: usize = self.input.as_ref().map_or(0, Vec::len)
            + self.p1_received.values().map(Vec::len).sum::<usize>()
            + self.p1_sent.values().map(Vec::len).sum::<usize>()
            + self.eq_received.values().map(Vec::len).sum::<usize>()
            + self.eq_sent.values().map(Vec::len).sum::<usize>();
        (symbols as u64) * crate::value::SYMBOL_BITS + 64
    }

    /// The value this node's claims imply it holds after Phase 1: the
    /// source's input, or the join of its claimed per-tree received blocks.
    pub fn implied_value(&self, tree_count: usize) -> Value {
        if let Some(input) = &self.input {
            return Value::from_symbols(input.clone());
        }
        let mut blocks: Vec<Vec<Gf2_16>> = Vec::with_capacity(tree_count);
        for t in 0..tree_count {
            let block = self
                .p1_received
                .iter()
                .find(|((tt, _), _)| *tt == t)
                .map(|(_, b)| b.clone())
                .unwrap_or_default();
            blocks.push(block);
        }
        Value::join_blocks(&blocks)
    }
}

/// DC2: cross-examines all claims, returning the dispute pairs found.
pub fn dc2_disputes(claims: &BTreeMap<NodeId, NodeClaims>) -> Vec<Pair> {
    let mut pairs = BTreeSet::new();
    for (&a, ca) in claims {
        for (&b, cb) in claims {
            if a == b {
                continue;
            }
            // Phase-1 sends from a to b vs b's receives from a.
            for t in tree_indices(ca, cb) {
                let sent = ca.p1_sent.get(&(t, b));
                let recv = cb.p1_received.get(&(t, a));
                match (sent, recv) {
                    (None, None) => {}
                    (Some(s), Some(r)) if s == r => {}
                    _ => {
                        pairs.insert(pair(a, b));
                    }
                }
            }
            // Equality-check symbols.
            match (ca.eq_sent.get(&b), cb.eq_received.get(&a)) {
                (None, None) => {}
                (Some(s), Some(r)) if s == r => {}
                _ => {
                    pairs.insert(pair(a, b));
                }
            }
        }
    }
    pairs.into_iter().collect()
}

/// Tree indices mentioned by either claim set (Phase-1 traffic between the
/// two nodes).
fn tree_indices(a: &NodeClaims, b: &NodeClaims) -> BTreeSet<usize> {
    a.p1_sent
        .keys()
        .chain(a.p1_received.keys())
        .chain(b.p1_sent.keys())
        .chain(b.p1_received.keys())
        .map(|&(t, _)| t)
        .collect()
}

/// DC3: replays the deterministic protocol against each node's claims and
/// exposes nodes whose claimed sends don't follow from their claimed
/// receives (and input).
pub fn dc3_exposed(
    gk: &DiGraph,
    source: NodeId,
    trees: &[Arborescence],
    scheme: &CodingScheme,
    claims: &BTreeMap<NodeId, NodeClaims>,
) -> Vec<NodeId> {
    let mut exposed = BTreeSet::new();
    for (&v, c) in claims {
        // Phase 1 discipline: on tree t, the source must send its t-th
        // input block identically to every child; a relay must forward the
        // block it claims to have received from its tree parent.
        for (t, tree) in trees.iter().enumerate() {
            let prescribed: Option<Vec<Gf2_16>> = if v == source {
                c.input
                    .as_ref()
                    .map(|i| Value::from_symbols(i.clone()).split_blocks(trees.len())[t].clone())
            } else {
                tree.parent(v)
                    .and_then(|p| c.p1_received.get(&(t, p)).cloned())
            };
            for child in tree.children(v) {
                let claimed = c.p1_sent.get(&(t, child));
                match (&prescribed, claimed) {
                    (Some(p), Some(s)) if p == s => {}
                    (None, None) => {}
                    // A relay that claims to have received nothing must
                    // send nothing (default-value rule); any other
                    // combination is inconsistent.
                    (None, Some(s)) if s.is_empty() => {}
                    _ => {
                        exposed.insert(v);
                    }
                }
            }
        }
        // Phase 2 discipline: coded symbols must encode the value implied
        // by the node's own claims, and the announced flag must equal the
        // outcome of checking the claimed received symbols.
        let implied = c.implied_value(trees.len());
        for (_, e) in gk.out_edges(v) {
            let prescribed = scheme.encode(v, e.dst, &implied);
            match c.eq_sent.get(&e.dst) {
                Some(s) if *s == prescribed => {}
                _ => {
                    exposed.insert(v);
                }
            }
        }
        let mut should_flag = false;
        for (_, e) in gk.in_edges(v) {
            let got = c.eq_received.get(&e.src).cloned().unwrap_or_default();
            if !scheme.check(e.src, v, &implied, &got) {
                should_flag = true;
            }
        }
        if c.flag != should_flag {
            exposed.insert(v);
        }
    }
    exposed.into_iter().collect()
}

/// The cumulative dispute state across NAB instances.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DisputeState {
    /// All node pairs ever found in dispute.
    pub pairs: BTreeSet<Pair>,
    /// Nodes excluded as necessarily faulty.
    pub removed: BTreeSet<NodeId>,
}

impl DisputeState {
    /// An empty dispute state.
    pub fn new() -> Self {
        Self::default()
    }

    /// DC4: integrates newly found pairs and directly exposed nodes,
    /// recomputing the implied-faulty set. Returns the nodes newly removed.
    pub fn integrate(
        &mut self,
        g0: &DiGraph,
        f: usize,
        new_pairs: &[Pair],
        exposed: &[NodeId],
    ) -> Vec<NodeId> {
        nab_obs::trace::emit(nab_obs::trace::EventKind::DisputeRaised {
            new_pairs: new_pairs.len() as u32,
        });
        self.pairs.extend(new_pairs.iter().copied());
        // An exposed node is "in dispute with all its neighbors".
        for &x in exposed {
            for nbr in g0.neighbors(x) {
                self.pairs.insert(pair(x, nbr));
            }
        }
        let before = self.removed.clone();
        // Intersection of all explanations of size ≤ f.
        let nodes: Vec<NodeId> = g0.nodes().collect();
        let mut implied: Option<BTreeSet<NodeId>> = None;
        for size in 0..=f {
            for fset in k_subsets(&nodes, size) {
                if self
                    .pairs
                    .iter()
                    .all(|&(a, b)| fset.contains(&a) || fset.contains(&b))
                {
                    implied = Some(match implied {
                        None => fset,
                        Some(acc) => acc.intersection(&fset).copied().collect(),
                    });
                }
            }
        }
        if let Some(imp) = implied {
            self.removed.extend(imp);
        }
        self.removed.extend(exposed.iter().copied());
        let newly_removed: Vec<NodeId> = self.removed.difference(&before).copied().collect();
        for &node in &newly_removed {
            nab_obs::trace::emit(nab_obs::trace::EventKind::NodeExposed { node: node as u32 });
        }
        newly_removed
    }

    /// The graph `G_{k+1}`: the original graph minus removed nodes and
    /// minus links between disputed pairs.
    pub fn current_graph(&self, g0: &DiGraph) -> DiGraph {
        let mut g = g0.clone();
        for &v in &self.removed {
            g.remove_node(v);
        }
        for &(a, b) in &self.pairs {
            g.remove_edges_between(a, b);
        }
        g
    }

    /// Number of dispute-control executions this state could still absorb:
    /// the paper bounds total executions by `f(f+1)`.
    pub fn max_executions(f: usize) -> usize {
        f * (f + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nab_netgraph::gen;

    fn sym(v: u64) -> Vec<Gf2_16> {
        vec![Gf2_16(v as u16)]
    }

    #[test]
    fn dc2_detects_send_receive_mismatch() {
        let mut claims = BTreeMap::new();
        let mut a = NodeClaims::default();
        a.p1_sent.insert((0, 2), sym(5));
        let mut b = NodeClaims::default();
        b.p1_received.insert((0, 1), sym(6)); // b claims a sent 6
        claims.insert(1, a);
        claims.insert(2, b);
        assert_eq!(dc2_disputes(&claims), vec![(1, 2)]);
    }

    #[test]
    fn dc2_consistent_claims_no_disputes() {
        let mut claims = BTreeMap::new();
        let mut a = NodeClaims::default();
        a.p1_sent.insert((0, 2), sym(5));
        a.eq_sent.insert(2, sym(9));
        let mut b = NodeClaims::default();
        b.p1_received.insert((0, 1), sym(5));
        b.eq_received.insert(1, sym(9));
        claims.insert(1, a);
        claims.insert(2, b);
        assert!(dc2_disputes(&claims).is_empty());
    }

    #[test]
    fn dc2_missing_receive_is_a_dispute() {
        let mut claims = BTreeMap::new();
        let mut a = NodeClaims::default();
        a.p1_sent.insert((0, 2), sym(5));
        claims.insert(1, a);
        claims.insert(2, NodeClaims::default());
        assert_eq!(dc2_disputes(&claims), vec![(1, 2)]);
    }

    #[test]
    fn integrate_exposes_single_cover_node() {
        // Disputes (0,1) and (2,1): with f=1 the only explanation is {1}.
        let g = gen::complete(4, 1);
        let mut st = DisputeState::new();
        let newly = st.integrate(&g, 1, &[pair(0, 1), pair(2, 1)], &[]);
        assert_eq!(newly, vec![1]);
        assert!(st.removed.contains(&1));
        let gk = st.current_graph(&g);
        assert!(!gk.is_active(1));
        assert_eq!(gk.active_count(), 3);
    }

    #[test]
    fn integrate_single_pair_removes_nobody() {
        // One dispute (0,1) with f=1: both {0} and {1} explain it;
        // intersection is empty.
        let g = gen::complete(4, 1);
        let mut st = DisputeState::new();
        let newly = st.integrate(&g, 1, &[pair(0, 1)], &[]);
        assert!(newly.is_empty());
        let gk = st.current_graph(&g);
        assert_eq!(gk.active_count(), 4);
        assert!(gk.find_edge(0, 1).is_none(), "disputed link removed");
        assert!(gk.find_edge(1, 0).is_none());
    }

    #[test]
    fn exposed_node_disputes_all_neighbors() {
        let g = gen::complete(4, 1);
        let mut st = DisputeState::new();
        let newly = st.integrate(&g, 1, &[], &[2]);
        assert_eq!(newly, vec![2]);
        // 2 is disputed with everyone.
        for n in [0, 1, 3] {
            assert!(st.pairs.contains(&pair(2, n)));
        }
    }

    #[test]
    fn f1_dispute_budget() {
        assert_eq!(DisputeState::max_executions(1), 2);
        assert_eq!(DisputeState::max_executions(2), 6);
    }

    #[test]
    fn dc3_honest_claims_expose_nobody() {
        use crate::adversary::HonestStrategy;
        use crate::phase1::run_phase1;
        use nab_netgraph::arborescence::pack_arborescences;

        let g = gen::figure_2a();
        let trees = pack_arborescences(&g, 0, 2).unwrap();
        let scheme = CodingScheme::random(&g, 1, 3);
        let input = Value::from_u64s(&[1, 2, 3, 4]);
        let p1 = run_phase1(&g, 0, &input, &trees, &BTreeSet::new(), &mut HonestStrategy);
        let eq = crate::phase2::run_equality_phase(
            &g,
            &p1.values,
            &scheme,
            &BTreeSet::new(),
            &mut HonestStrategy,
        );
        let claims =
            crate::phase2::honest_claims(&g, 0, &input, &trees, &scheme, &p1, &eq, &eq.flags);
        assert!(dc2_disputes(&claims).is_empty());
        assert!(dc3_exposed(&g, 0, &trees, &scheme, &claims).is_empty());
    }
}
