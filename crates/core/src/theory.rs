//! The matrix machinery of Theorem 1's proof (Appendix C), executable.
//!
//! For a candidate fault-free subgraph `H` with nodes renamed
//! `1..n−f` and differences `D_i = X_i − X_{n−f}`, the per-edge checks
//! `(X_i − X_j)C_e = 0` are equivalent to `D_H C_H = 0` where `C_H`
//! concatenates block-expanded coding matrices `B_e`. The scheme is *sound
//! on `H`* iff `C_H` has full row rank `(n−f−1)ρ`; the proof exhibits an
//! invertible square submatrix `M_H` whose columns follow `ρ ≤ U/2`
//! edge-disjoint spanning trees of `H̄`.
//!
//! This module builds `C_H` and `M_H` explicitly so the experiments can
//! measure how often random coding matrices are correct and compare against
//! the paper's probability bound.

use std::collections::BTreeMap;

use nab_gf::kernel;
use nab_gf::matrix::Matrix;
use nab_gf::{FastOps, Gf2_16};
use nab_netgraph::treepack::Tree;
use nab_netgraph::{DiGraph, NodeId};

use crate::equality::CodingScheme;

/// Maps each live directed edge of `h` to the half-open column range it
/// owns inside `C_H` (one column per capacity unit).
pub fn column_layout(h: &DiGraph) -> BTreeMap<(NodeId, NodeId), (usize, usize)> {
    let mut layout = BTreeMap::new();
    let mut next = 0usize;
    for (_, e) in h.edges() {
        let z = e.cap as usize;
        layout.insert((e.src, e.dst), (next, next + z));
        next += z;
    }
    layout
}

/// Builds the `(n_H − 1)ρ × m` check matrix `C_H` for the (induced)
/// subgraph `h`, using the last active node as the reference node `n−f`.
///
/// # Panics
///
/// Panics if `h` has fewer than two active nodes.
pub fn build_ch(h: &DiGraph, scheme: &CodingScheme) -> Matrix<Gf2_16> {
    let nodes: Vec<NodeId> = h.nodes().collect();
    assert!(nodes.len() >= 2, "C_H needs at least two nodes");
    let rho = scheme.rho();
    let blocks = nodes.len() - 1; // all but the reference node
    let block_of: BTreeMap<NodeId, usize> = nodes[..blocks]
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();

    let m: usize = h.edges().map(|(_, e)| e.cap as usize).sum();
    let mut ch = Matrix::zero(blocks * rho, m);
    let layout = column_layout(h);
    for (_, e) in h.edges() {
        let ce = scheme.matrix(e.src, e.dst);
        let (start, end) = layout[&(e.src, e.dst)];
        // Block for src gets +C_e; block for dst gets −C_e (identical in
        // characteristic 2). The reference node owns no block. C_e's rows
        // land in contiguous column ranges of C_H, so each transfers as
        // one slice copy.
        for &block in [block_of.get(&e.src), block_of.get(&e.dst)]
            .iter()
            .flatten()
        {
            for r in 0..rho {
                ch.row_mut(block * rho + r)[start..end].copy_from_slice(ce.row(r));
            }
        }
    }
    ch
}

/// Whether the equality check is sound on subgraph `h`: `D_H C_H = 0` only
/// for `D_H = 0`, i.e. `C_H` has full row rank.
pub fn ch_is_sound(h: &DiGraph, scheme: &CodingScheme) -> bool {
    let nodes = h.active_count();
    if nodes < 2 {
        return true;
    }
    let ch = build_ch(h, scheme);
    kernel::rank(&ch) == (nodes - 1) * scheme.rho()
}

/// Extracts the square spanning-tree submatrix `M_H` of `C_H`: one column
/// per tree edge per tree, where `trees` is a packing of `ρ` edge-disjoint
/// spanning trees of `H̄` (from [`nab_netgraph::treepack`]).
///
/// Returns `None` if the trees over-consume some directed edge's capacity
/// (which a valid packing never does).
///
/// # Panics
///
/// Panics if `trees.len() != scheme.rho()`.
pub fn spanning_submatrix(
    h: &DiGraph,
    scheme: &CodingScheme,
    trees: &[Tree],
) -> Option<Matrix<Gf2_16>> {
    assert_eq!(
        trees.len(),
        scheme.rho(),
        "need exactly ρ spanning trees for M_H"
    );
    let ch = build_ch(h, scheme);
    let layout = column_layout(h);
    // Per-directed-edge consumption counters: an undirected tree edge
    // (a, b) consumes one capacity unit, drawn from (a→b) columns first,
    // then (b→a).
    let mut used: BTreeMap<(NodeId, NodeId), usize> = BTreeMap::new();
    let mut cols: Vec<usize> = Vec::new();
    for tree in trees {
        for &(a, b) in tree {
            let mut took = false;
            for key in [(a, b), (b, a)] {
                if let Some(&(start, end)) = layout.get(&key) {
                    let u = used.entry(key).or_insert(0);
                    if start + *u < end {
                        cols.push(start + *u);
                        *u += 1;
                        took = true;
                        break;
                    }
                }
            }
            if !took {
                return None;
            }
        }
    }
    Some(ch.select_cols(&cols))
}

/// Constructs *colliding values* defeating the equality check on `h`, if
/// any exist: distinct per-node values (each of `ρ` symbols) for which
/// every check in Algorithm 1 passes, so no fault-free node raises
/// MISMATCH. Exists exactly when `C_H` is rank-deficient — e.g. whenever
/// `ρ > U_H/2` starves the check of coded symbols. Returns `None` when the
/// scheme is sound on `h`.
///
/// This is the *attack constructor* for the ablation experiments: it
/// demonstrates that the paper's `ρ ≤ U/2` hypothesis is load-bearing.
pub fn colliding_values(
    h: &DiGraph,
    scheme: &CodingScheme,
) -> Option<BTreeMap<NodeId, crate::value::Value>> {
    let nodes: Vec<NodeId> = h.nodes().collect();
    if nodes.len() < 2 {
        return None;
    }
    let rho = scheme.rho();
    let ch = build_ch(h, scheme);
    // Left kernel of C_H: row vectors D with D · C_H = 0.
    let kernel = kernel::kernel_basis(&ch.transpose());
    if kernel.rows() == 0 {
        return None;
    }
    let d = kernel.row(0);
    // The reference node (last) holds zero; node i holds its D_i block.
    let mut values = BTreeMap::new();
    let blocks = nodes.len() - 1;
    for (i, &v) in nodes.iter().enumerate() {
        let symbols: Vec<Gf2_16> = if i < blocks {
            d[i * rho..(i + 1) * rho].to_vec()
        } else {
            vec![Gf2_16::default(); rho]
        };
        values.insert(v, crate::value::Value::from_symbols(symbols));
    }
    Some(values)
}

/// One Monte-Carlo trial of Theorem 1 over an arbitrary field `F`
/// (standing in for `GF(2^{L/ρ})` at any symbol width): samples fresh
/// uniform coding matrices for every edge of `g` and reports whether the
/// equality check is *simultaneously sound on every* `H ∈ Ω` — the event
/// whose probability Theorem 1 lower-bounds by
/// `1 − 2^{−m}·C(n, n−f)·(n−f−1)·ρ`.
pub fn theorem1_trial<F: FastOps, R: rand::Rng + ?Sized>(
    g: &DiGraph,
    f: usize,
    rho: usize,
    rng: &mut R,
) -> bool {
    // Sample C_e per edge.
    let mut mats: BTreeMap<(NodeId, NodeId), Matrix<F>> = BTreeMap::new();
    for (_, e) in g.edges() {
        mats.insert((e.src, e.dst), Matrix::random(rho, e.cap as usize, rng));
    }
    for h_nodes in crate::bounds::omega_subsets(g, f, &std::collections::BTreeSet::new()) {
        let h = g.induced_subgraph(&h_nodes);
        if !generic_ch_sound(&h, rho, &mats) {
            return false;
        }
    }
    true
}

/// Rank test of the generic `C_H` built from the supplied matrices.
fn generic_ch_sound<F: FastOps>(
    h: &DiGraph,
    rho: usize,
    mats: &BTreeMap<(NodeId, NodeId), Matrix<F>>,
) -> bool {
    let nodes: Vec<NodeId> = h.nodes().collect();
    if nodes.len() < 2 {
        return true;
    }
    let blocks = nodes.len() - 1;
    let block_of: BTreeMap<NodeId, usize> = nodes[..blocks]
        .iter()
        .enumerate()
        .map(|(i, &v)| (v, i))
        .collect();
    let m: usize = h.edges().map(|(_, e)| e.cap as usize).sum();
    let mut ch = Matrix::<F>::zero(blocks * rho, m);
    let mut col0 = 0usize;
    for (_, e) in h.edges() {
        let ce = &mats[&(e.src, e.dst)];
        let span = col0..col0 + ce.cols();
        for &block in [block_of.get(&e.src), block_of.get(&e.dst)]
            .iter()
            .flatten()
        {
            for r in 0..rho {
                ch.row_mut(block * rho + r)[span.clone()].copy_from_slice(ce.row(r));
            }
        }
        col0 += ce.cols();
    }
    kernel::rank(&ch) == blocks * rho
}

/// End-to-end Theorem 1 verification for one subgraph: pack `ρ` spanning
/// trees of `H̄`, extract `M_H`, and test invertibility.
///
/// Returns `None` when no `ρ`-tree packing exists (i.e. `ρ > U_H/2` was
/// chosen too aggressively).
pub fn mh_invertible(h: &DiGraph, scheme: &CodingScheme) -> Option<bool> {
    let u = nab_netgraph::UnGraph::from_digraph(h);
    let trees = nab_netgraph::treepack::pack_spanning_trees(&u, scheme.rho())?;
    let mh = spanning_submatrix(h, scheme, &trees)?;
    Some(kernel::is_invertible(&mh))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bounds;
    use nab_netgraph::gen;
    use std::collections::BTreeSet;

    #[test]
    fn ch_dimensions() {
        let g = gen::figure_2a();
        let scheme = CodingScheme::random(&g, 1, 1);
        let ch = build_ch(&g, &scheme);
        // 4 nodes → 3 blocks × ρ=1 rows; m = total capacity = 6 columns.
        assert_eq!(ch.rows(), 3);
        assert_eq!(ch.cols(), 6);
    }

    #[test]
    fn ch_annihilates_equal_values_only() {
        let g = gen::figure_2a();
        let scheme = CodingScheme::random(&g, 1, 2);
        assert!(ch_is_sound(&g, &scheme), "random matrices should be sound");
        // Soundness means full row rank: the left kernel (the space of
        // difference vectors D_H with D_H C_H = 0) is trivial, i.e. only
        // equal values pass all checks.
        let ch = build_ch(&g, &scheme);
        let kernel = nab_gf::linalg::kernel_basis(&ch.transpose());
        assert_eq!(kernel.rows(), 0, "left kernel must be trivial when sound");
    }

    #[test]
    fn mh_is_invertible_on_paper_example() {
        let g = gen::figure_2a();
        // U for figure_2a's undirected view ≥ 2 → ρ = 1 is valid.
        let scheme = CodingScheme::random(&g, 1, 3);
        assert_eq!(mh_invertible(&g, &scheme), Some(true));
    }

    #[test]
    fn mh_with_rho_2_on_dense_graph() {
        let g = gen::complete(4, 2);
        // Undirected K4 with cap 4 per edge: U = 12 ≥ 4 → ρ=2 fine.
        let scheme = CodingScheme::random(&g, 2, 4);
        assert_eq!(mh_invertible(&g, &scheme), Some(true));
        assert!(ch_is_sound(&g, &scheme));
    }

    #[test]
    fn rho_too_large_has_no_tree_packing() {
        let g = gen::figure_2a();
        // U = 2 for figure_2a's undirected view → ρ=3 cannot pack.
        let scheme = CodingScheme::random(&g, 3, 5);
        assert_eq!(mh_invertible(&g, &scheme), None);
    }

    #[test]
    fn soundness_over_all_omega_subgraphs() {
        // The full Theorem 1 statement: simultaneously sound on every
        // H ∈ Ω.
        let g = gen::complete(4, 2);
        let f = 1;
        let rho = bounds::rho_star(&g, f).expect("rho* exists");
        let scheme = CodingScheme::random(&g, rho as usize, 11);
        for h_nodes in bounds::omega_subsets(&g, f, &BTreeSet::new()) {
            let h = g.induced_subgraph(&h_nodes);
            assert!(ch_is_sound(&h, &scheme), "unsound on {h_nodes:?}");
        }
    }

    #[test]
    fn colliding_values_none_when_sound() {
        let g = gen::complete(4, 2);
        let scheme = CodingScheme::random(&g, 2, 7);
        assert!(ch_is_sound(&g, &scheme));
        assert!(colliding_values(&g, &scheme).is_none());
    }

    #[test]
    fn colliding_values_defeat_overgreedy_rho() {
        use crate::equality::equality_check_flags;
        use std::collections::BTreeSet;
        // figure_2a's undirected view has U = 2 → the paper requires
        // ρ ≤ 1. With ρ = 2, the candidate fault-free subgraph
        // H = {1, 3, 4} (ids 0, 2, 3) has only m = 2 coded symbols against
        // 4 difference dimensions: property (EC) is information-
        // theoretically unachievable. The attack: honest nodes hold a
        // kernel collision of C_H, and the faulty node (id 1) sends each
        // neighbor exactly what that neighbor expects.
        let g = gen::figure_2a();
        let scheme = CodingScheme::random(&g, 2, 13);
        let h_nodes: BTreeSet<NodeId> = BTreeSet::from([0, 2, 3]);
        let h = g.induced_subgraph(&h_nodes);
        let collision = colliding_values(&h, &scheme).expect("ρ > U_H/2 must be attackable on H");
        let distinct: std::collections::HashSet<_> = collision.values().collect();
        assert!(distinct.len() > 1, "attack must produce disagreement");

        // Full-graph values: honest nodes take the collision; faulty node
        // 1 holds anything (say zeros).
        let mut values = collision.clone();
        values.insert(1, crate::value::Value::zeros(2));
        // The faulty sender forges coded symbols per receiver.
        let forged: std::collections::BTreeMap<NodeId, Vec<Gf2_16>> = g
            .out_edges(1)
            .map(|(_, e)| (e.dst, scheme.encode(1, e.dst, &values[&e.dst])))
            .collect();
        let mut tamper = |src: NodeId, dst: NodeId, honest: Vec<Gf2_16>| {
            if src == 1 {
                forged[&dst].clone()
            } else {
                honest
            }
        };
        let flags = equality_check_flags(&g, &values, &scheme, &mut tamper);
        // No *fault-free* node raises a flag: the mismatch among honest
        // nodes goes entirely undetected — the (EC) violation the ρ ≤ U/2
        // hypothesis exists to prevent. (The faulty node's own flag is
        // meaningless; it would simply announce NULL.)
        for (&v, &flag) in &flags {
            if v != 1 {
                assert!(!flag, "fault-free node {v} flagged; attack failed");
            }
        }
    }

    #[test]
    fn vandermonde_scheme_is_sound_on_paper_graphs() {
        // Ablation: the deterministic construction also achieves soundness
        // on the worked examples at the paper-prescribed ρ.
        for (g, rho) in [(gen::figure_2a(), 1usize), (gen::complete(4, 2), 2)] {
            let scheme = CodingScheme::vandermonde(&g, rho);
            for h_nodes in crate::bounds::omega_subsets(&g, 1, &std::collections::BTreeSet::new()) {
                let h = g.induced_subgraph(&h_nodes);
                assert!(ch_is_sound(&h, &scheme), "unsound on {h_nodes:?}");
            }
        }
    }

    #[test]
    fn too_few_check_columns_are_unsound() {
        // Soundness needs m ≥ (n_H − 1)ρ columns; with only two coded
        // symbols in play the rank predicate must fail — demonstrating
        // that the capacity budget (not just randomness) carries Theorem 1.
        let g = gen::figure_2a();
        let scheme = CodingScheme::random(&g, 1, 6);
        let ch = build_ch(&g, &scheme);
        let fewer = ch.select_cols(&[0, 1]);
        assert!(nab_gf::linalg::rank(&fewer) < ch.rows());
    }
}
