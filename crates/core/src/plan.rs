//! The planning layer: one-time network setup split out of the engine,
//! plus the concurrent content-addressed [`PlanCache`] that lets many
//! broadcast deployments (sweep jobs, interleaved streams) share it.
//!
//! NAB's per-network setup is expensive — validating the paper's
//! conditions, building `2f+1` disjoint-path routing tables for every
//! node pair, packing `γ` Edmonds arborescences, computing `ρ = ⌊U/2⌋`
//! over all `(n−f)`-node subgraphs — yet depends only on `(G, f)`, not on
//! the instance payloads or seeds. An [`ExecutionPlan`] captures exactly
//! that seed-independent artifact set; [`crate::engine::NabEngine`]
//! borrows one via [`Arc`] and keeps only per-instance state (dispute
//! evolution, instance counter).
//!
//! Plans are immutable and deterministic functions of `(G, f)`: executing
//! against a cached plan is byte-for-byte identical to rebuilding it,
//! which is what lets the sweep runner share a [`PlanCache`] across
//! worker threads without perturbing canonical report JSON.

use nab_obs::clock;
// nab-lint: allow(NAB002): HashMap here backs point-lookup memo/cache
// tables only; nothing ever iterates them toward canonical output.
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

use nab_bb::router::PathRouter;
use nab_netgraph::arborescence::{pack_arborescences, Arborescence};
use nab_netgraph::canon;
use nab_netgraph::connectivity::supports_byzantine_broadcast;
use nab_netgraph::treepack::{pack_spanning_trees, Tree};
use nab_netgraph::{DiGraph, UnGraph};

use crate::bounds::{gamma_k, rho_k, BoundsReport};
use crate::engine::{NabError, SOURCE};
use crate::equality::CodingScheme;

/// The immutable one-time planning artifact for one network deployment
/// `(G, f)` rooted at [`SOURCE`].
///
/// Everything in here is independent of instance payloads, coding seeds,
/// and dispute evolution; the execution layer recomputes the per-`G_k`
/// quantities only after disputes actually shrink the graph.
pub struct ExecutionPlan {
    g0: DiGraph,
    f: usize,
    /// Labeled-graph digest of `g0`, fixed at build time so cache-hit
    /// verification and disk addressing never re-hash the graph.
    labeled: u64,
    gamma0: u64,
    rho0: u64,
    trees0: Vec<Arborescence>,
    /// Theorem-1 spanning-tree packing, computed on first request (the
    /// protocol's execution path never consumes it, so plan builds — the
    /// cold path the cache exists to amortize — don't pay for it).
    spanning_trees0: OnceLock<Option<Vec<Tree>>>,
    router: PathRouter,
    build_wall_ns: u64,
    /// Lazily computed Eq. 6 / Theorem 2 bounds, keyed by enumeration
    /// budget (each distinct budget is computed once; results are
    /// deterministic per `(G, f, budget)`).
    bounds: RwLock<HashMap<usize, Option<BoundsReport>>>, // nab-lint: allow(NAB002): point lookups only; never iterated toward canonical output
}

impl std::fmt::Debug for ExecutionPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExecutionPlan")
            .field("n", &self.g0.active_count())
            .field("edges", &self.g0.edge_count())
            .field("f", &self.f)
            .field("gamma0", &self.gamma0)
            .field("rho0", &self.rho0)
            .field("trees0", &self.trees0.len())
            .field("build_wall_ns", &self.build_wall_ns)
            .finish()
    }
}

impl ExecutionPlan {
    /// Realizes the topology: validates the paper's conditions (`n ≥
    /// 3f+1`, connectivity `≥ 2f+1`, `U_1 ≥ 2`) and derives every
    /// seed-independent artifact — γ₁ and its Phase-1 Edmonds arborescence
    /// packing, ρ₁ and (when one exists) its Theorem-1 spanning-tree
    /// packing of the undirected view, and the `2f+1`-disjoint-path
    /// router the classic-BB backends share.
    ///
    /// # Errors
    ///
    /// Returns the violated condition, with topology/rate context for
    /// packing failures.
    pub fn build(g: DiGraph, f: usize) -> Result<ExecutionPlan, NabError> {
        let t0 = clock::mono_now();
        let n = g.active_count();
        if n < 3 * f + 1 {
            return Err(NabError::TooManyFaults { n, f });
        }
        if !supports_byzantine_broadcast(&g, f) {
            return Err(NabError::InsufficientConnectivity);
        }
        let router = PathRouter::build(&g, f).ok_or(NabError::InsufficientConnectivity)?;
        let rho0 = rho_k(&g, f, &BTreeSet::new()).ok_or(NabError::NoEqualityParameter)?;
        let gamma0 = gamma_k(&g, SOURCE);
        let trees0 = pack_arborescences(&g, SOURCE, gamma0).ok_or_else(|| {
            NabError::ArborescencePacking {
                n,
                edges: g.edge_count(),
                gamma: gamma0,
            }
        })?;
        Ok(ExecutionPlan {
            labeled: canon::labeled_key(&g),
            g0: g,
            f,
            gamma0,
            rho0,
            trees0,
            spanning_trees0: OnceLock::new(),
            router,
            build_wall_ns: t0.elapsed().as_nanos() as u64,
            bounds: RwLock::new(HashMap::new()), // nab-lint: allow(NAB002): point lookups only; never iterated toward canonical output
        })
    }

    /// Reassembles a plan from verified persisted artifacts (γ₁, ρ₁, the
    /// arborescence packing), rebuilding only the cheap lazy pieces — the
    /// router's connectivity proof and the on-demand caches. The caller
    /// (the persistence layer) is responsible for having verified the
    /// artifacts; `wall_ns` records what the reassembly cost.
    ///
    /// # Errors
    ///
    /// Returns the violated validation condition, exactly as
    /// [`ExecutionPlan::build`] would for the same network.
    pub(crate) fn from_parts(
        g: DiGraph,
        f: usize,
        gamma0: u64,
        rho0: u64,
        trees0: Vec<Arborescence>,
        wall_ns: u64,
    ) -> Result<ExecutionPlan, NabError> {
        let n = g.active_count();
        if n < 3 * f + 1 {
            return Err(NabError::TooManyFaults { n, f });
        }
        let router = PathRouter::build(&g, f).ok_or(NabError::InsufficientConnectivity)?;
        Ok(ExecutionPlan {
            labeled: canon::labeled_key(&g),
            g0: g,
            f,
            gamma0,
            rho0,
            trees0,
            spanning_trees0: OnceLock::new(),
            router,
            build_wall_ns: wall_ns,
            bounds: RwLock::new(HashMap::new()), // nab-lint: allow(NAB002): point lookups only; never iterated toward canonical output
        })
    }

    /// The planned network `G_1`.
    pub fn graph(&self) -> &DiGraph {
        &self.g0
    }

    /// The labeled digest of the planned network, fixed at build time.
    pub fn labeled_digest(&self) -> u64 {
        self.labeled
    }

    /// The fault bound the plan was built for.
    pub fn f(&self) -> usize {
        self.f
    }

    /// `γ_1`, the Phase-1 broadcast rate of the undisputed graph.
    pub fn gamma0(&self) -> u64 {
        self.gamma0
    }

    /// `ρ_1 = ⌊U_1/2⌋`, the equality-check parameter of the undisputed
    /// graph.
    pub fn rho0(&self) -> u64 {
        self.rho0
    }

    /// The `γ_1` capacity-respecting spanning arborescences Phase 1
    /// streams over while no disputes have shrunk the graph.
    pub fn trees0(&self) -> &[Arborescence] {
        &self.trees0
    }

    /// Theorem 1's packing of `ρ_1` edge-disjoint undirected spanning
    /// trees, when the full graph admits one (`U_1` is a minimum over
    /// subgraphs, so the packing can legitimately be absent). Packed on
    /// first call and cached in the plan.
    pub fn spanning_trees0(&self) -> Option<&[Tree]> {
        self.spanning_trees0
            .get_or_init(|| {
                pack_spanning_trees(&UnGraph::from_digraph(&self.g0), self.rho0 as usize)
            })
            .as_deref()
    }

    /// The `2f+1`-disjoint-path router emulating a complete graph — the
    /// setup shared by every classic-BB backend (EIG, Phase-King) run
    /// against this plan.
    pub fn router(&self) -> &PathRouter {
        &self.router
    }

    /// Wall-clock nanoseconds spent building this plan.
    pub fn build_wall_ns(&self) -> u64 {
        self.build_wall_ns
    }

    /// Overrides the recorded build wall time (used by the persistence
    /// layer to report load-and-verify cost instead of the original
    /// build's).
    pub(crate) fn set_build_wall_ns(&mut self, ns: u64) {
        self.build_wall_ns = ns;
    }

    /// The per-instance coding scheme on the undisputed graph: uniform
    /// random `C_e` matrices at parameter `ρ_1`, derived from the public
    /// per-instance seed exactly as the engine derives them.
    pub fn instance_scheme(&self, cfg_seed: u64, instance: u64) -> CodingScheme {
        CodingScheme::random(
            &self.g0,
            self.rho0 as usize,
            cfg_seed.wrapping_add(instance),
        )
    }

    /// The paper's Eq. 6 / Theorem 2 bounds for this network at the
    /// given `γ*` enumeration budget, computed once per distinct budget
    /// and cached in the plan thereafter (so a sweep's worst-case
    /// candidate search and interleaved streams pay for the enumeration
    /// once per network, not once per measurement — and a plan reused
    /// across sweeps with *different* budgets still reports each sweep's
    /// own deterministic values).
    pub fn bounds_report(&self, budget: usize) -> Option<BoundsReport> {
        // Poison-tolerant lock access throughout: the maps only ever hold
        // fully-constructed values, so a panicked holder cannot leave them
        // torn, and a panicked job elsewhere must not wedge the cache.
        if let Some(cached) = self
            .bounds
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&budget)
        {
            return cached.clone();
        }
        // Computed outside the write lock; a concurrent duplicate
        // computes the identical value (deterministic per budget).
        let computed = crate::bounds::bounds_report(&self.g0, SOURCE, self.f, budget);
        self.bounds
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .entry(budget)
            .or_insert_with(|| computed.clone());
        computed
    }
}

/// Cache key. What actually gates plan reuse is the *labeled* digest
/// (plus the graph-equality check on hit): arborescences and routing
/// paths are expressed in concrete node ids, so only the identical
/// labeled network may share them — isomorphic-but-renamed graphs
/// deliberately get separate entries. The relabeling-invariant
/// *canonical* digest is the stable content-address component: it names
/// the topology family independent of node numbering, letting tooling
/// and diagnostics group cache entries (and collision analysis reason
/// about families) without affecting which plans are shared. `f` covers
/// the remaining planning input. Coding seeds and symbol counts are
/// deliberately absent: plans are seed-independent, which is what makes
/// them shareable across a sweep's jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanKey {
    /// Relabeling-invariant topology digest ([`canon::canonical_key`]).
    pub canon: u64,
    /// Labeled-graph digest ([`canon::labeled_key`]).
    pub labeled: u64,
    /// Fault bound.
    pub f: usize,
}

impl PlanKey {
    /// Computes the key of `(g, f)`.
    pub fn of(g: &DiGraph, f: usize) -> PlanKey {
        PlanKey {
            canon: canon::canonical_key(g),
            labeled: canon::labeled_key(g),
            f,
        }
    }
}

/// Result of one [`PlanCache::fetch`]: the shared plan plus whether this
/// call hit the cache and how long a miss spent building.
#[derive(Debug, Clone)]
pub struct PlanFetch {
    /// The (possibly freshly built) shared plan.
    pub plan: Arc<ExecutionPlan>,
    /// Whether the plan was already cached.
    pub hit: bool,
    /// Wall nanoseconds spent building (0 on a hit).
    pub build_ns: u64,
}

/// Aggregate counters of a [`PlanCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanCacheStats {
    /// Fetches served from the cache (in-memory or disk tier).
    pub hits: u64,
    /// Fetches that had to build a plan.
    pub misses: u64,
    /// Total wall nanoseconds spent building plans.
    pub build_ns: u64,
    /// Hits served by loading and verifying a persisted plan.
    pub disk_hits: u64,
    /// Freshly built plans persisted to the disk tier.
    pub disk_stores: u64,
    /// Persisted entries rejected by verification (corrupt or stale).
    pub disk_rejects: u64,
}

/// A concurrent content-addressed store of [`ExecutionPlan`]s, sharded
/// across `RwLock`ed hash maps so sweep worker threads contend only on
/// the shard their key lands in.
///
/// Lookups verify the stored plan's graph against the requested one
/// (`PlanKey` is a digest; on the astronomically unlikely collision the
/// cache builds a private plan instead of returning a wrong one), so a
/// hit is always semantically identical to a rebuild.
pub struct PlanCache {
    shards: Vec<RwLock<HashMap<PlanKey, Arc<ExecutionPlan>>>>, // nab-lint: allow(NAB002): point lookups only; never iterated toward canonical output
    /// Disk tier root: misses probe it before building, fresh builds are
    /// persisted into it ([`crate::persist`]).
    dir: Option<std::path::PathBuf>,
    hits: AtomicU64,
    misses: AtomicU64,
    build_ns: AtomicU64,
    disk_hits: AtomicU64,
    disk_stores: AtomicU64,
    disk_rejects: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        Self::new()
    }
}

impl PlanCache {
    /// A cache with the default shard count and no disk tier.
    pub fn new() -> Self {
        Self::with_shards(8)
    }

    /// A cache with `shards` lock shards (at least 1) and no disk tier.
    pub fn with_shards(shards: usize) -> Self {
        PlanCache {
            shards: (0..shards.max(1))
                .map(|_| RwLock::new(HashMap::new())) // nab-lint: allow(NAB002): point lookups only; never iterated toward canonical output
                .collect(),
            dir: None,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            build_ns: AtomicU64::new(0),
            disk_hits: AtomicU64::new(0),
            disk_stores: AtomicU64::new(0),
            disk_rejects: AtomicU64::new(0),
        }
    }

    /// A cache whose misses fall through to a persistent on-disk store in
    /// `dir` before building: verified entries load warm, fresh builds
    /// are written back (atomically), and corrupt or stale entries are
    /// rejected with a warning and rebuilt.
    pub fn with_dir(dir: impl Into<std::path::PathBuf>) -> Self {
        let mut cache = Self::new();
        cache.dir = Some(dir.into());
        cache
    }

    /// The disk-tier root, if one was configured.
    pub fn dir(&self) -> Option<&std::path::Path> {
        self.dir.as_deref()
    }

    // nab-lint: allow(NAB002): point lookups only; never iterated toward canonical output
    fn shard(&self, key: &PlanKey) -> &RwLock<HashMap<PlanKey, Arc<ExecutionPlan>>> {
        let idx = (key.canon ^ key.labeled.rotate_left(17) ^ key.f as u64) as usize;
        &self.shards[idx % self.shards.len()]
    }

    /// Returns the plan for `(g, f)`, building and caching it on a miss.
    ///
    /// Build errors are **not** cached: planning a rejected network fails
    /// identically (same [`NabError`]) on every call, exactly as direct
    /// [`ExecutionPlan::build`] calls would.
    ///
    /// # Errors
    ///
    /// Returns the plan-validation failure.
    pub fn fetch(&self, g: &DiGraph, f: usize) -> Result<PlanFetch, NabError> {
        let key = PlanKey::of(g, f);
        let shard = self.shard(&key);
        // Poison-tolerant: shards only hold finished `Arc<Plan>` entries.
        if let Some(plan) = shard
            .read()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&key)
        {
            if Self::verify_hit(plan, &key, g, f) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                nab_obs::trace::emit(nab_obs::trace::EventKind::PlanCacheHit);
                return Ok(PlanFetch {
                    plan: Arc::clone(plan),
                    hit: true,
                    build_ns: 0,
                });
            }
        }
        // Miss (or digest collision): build under the write lock so
        // concurrent workers asking for the same network build it once.
        let mut shard = shard
            .write()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(plan) = shard.get(&key) {
            if Self::verify_hit(plan, &key, g, f) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                nab_obs::trace::emit(nab_obs::trace::EventKind::PlanCacheHit);
                return Ok(PlanFetch {
                    plan: Arc::clone(plan),
                    hit: true,
                    build_ns: 0,
                });
            }
        }
        // Disk tier: a verified persisted plan substitutes for the build.
        if let Some(dir) = &self.dir {
            match crate::persist::load_plan(dir, &key, g, f) {
                crate::persist::LoadOutcome::Loaded(plan) => {
                    let plan: Arc<ExecutionPlan> = Arc::from(plan);
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    self.disk_hits.fetch_add(1, Ordering::Relaxed);
                    nab_obs::trace::emit(nab_obs::trace::EventKind::PlanDiskHit);
                    shard.entry(key).or_insert_with(|| Arc::clone(&plan));
                    return Ok(PlanFetch {
                        plan,
                        hit: true,
                        build_ns: 0,
                    });
                }
                crate::persist::LoadOutcome::Rejected(why) => {
                    self.disk_rejects.fetch_add(1, Ordering::Relaxed);
                    nab_obs::trace::emit(nab_obs::trace::EventKind::PlanDiskReject);
                    eprintln!(
                        "warning: rejected persisted plan {}: {why}; rebuilding",
                        crate::persist::plan_path(dir, &key).display()
                    );
                }
                crate::persist::LoadOutcome::Missing => {}
            }
        }
        nab_obs::trace::emit(nab_obs::trace::EventKind::PlanCacheMiss);
        let plan = Arc::new(ExecutionPlan::build(g.clone(), f)?);
        let build_ns = plan.build_wall_ns();
        self.misses.fetch_add(1, Ordering::Relaxed);
        self.build_ns.fetch_add(build_ns, Ordering::Relaxed);
        nab_obs::trace::emit(nab_obs::trace::EventKind::PlanBuilt { build_ns });
        if let Some(dir) = &self.dir {
            match crate::persist::save_plan(dir, &key, &plan) {
                Ok(()) => {
                    self.disk_stores.fetch_add(1, Ordering::Relaxed);
                    nab_obs::trace::emit(nab_obs::trace::EventKind::PlanDiskStore);
                }
                Err(e) => {
                    eprintln!("warning: could not persist plan to {}: {e}", dir.display());
                }
            }
        }
        // A digest collision (different graph already under this key)
        // keeps the incumbent and hands the caller a private plan.
        shard.entry(key).or_insert_with(|| Arc::clone(&plan));
        Ok(PlanFetch {
            plan,
            hit: false,
            build_ns,
        })
    }

    /// Hit verification: the stored labeled digest (fixed at build time)
    /// gates first — an O(1) compare that disposes of digest collisions
    /// and stale entries — and only a digest match proceeds to the O(E)
    /// structural equality check that makes collisions harmless.
    fn verify_hit(plan: &ExecutionPlan, key: &PlanKey, g: &DiGraph, f: usize) -> bool {
        plan.labeled_digest() == key.labeled && plan.f() == f && plan.graph() == g
    }

    /// Convenience wrapper around [`PlanCache::fetch`] discarding the
    /// hit/miss metadata.
    ///
    /// # Errors
    ///
    /// Returns the plan-validation failure.
    pub fn get_or_build(&self, g: &DiGraph, f: usize) -> Result<Arc<ExecutionPlan>, NabError> {
        self.fetch(g, f).map(|f| f.plan)
    }

    /// Distinct plans currently cached.
    pub fn plan_count(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.read()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .len()
            })
            .sum()
    }

    /// Snapshot of the hit/miss/build-time counters.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            build_ns: self.build_ns.load(Ordering::Relaxed),
            disk_hits: self.disk_hits.load(Ordering::Relaxed),
            disk_stores: self.disk_stores.load(Ordering::Relaxed),
            disk_rejects: self.disk_rejects.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for PlanCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.stats();
        f.debug_struct("PlanCache")
            .field("plans", &self.plan_count())
            .field("hits", &s.hits)
            .field("misses", &s.misses)
            .field("build_ns", &s.build_ns)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nab_netgraph::gen;

    #[test]
    fn plan_captures_network_quantities() {
        let g = gen::complete(4, 2);
        let plan = ExecutionPlan::build(g.clone(), 1).unwrap();
        assert_eq!(plan.graph(), &g);
        assert_eq!(plan.f(), 1);
        assert_eq!(plan.gamma0(), gamma_k(&g, SOURCE));
        assert_eq!(plan.rho0(), rho_k(&g, 1, &BTreeSet::new()).unwrap());
        assert_eq!(plan.trees0().len(), plan.gamma0() as usize);
        assert_eq!(plan.router().copies(), 3);
        // K4 cap 2 admits the Theorem-1 packing of ρ₁ spanning trees.
        let trees = plan.spanning_trees0().expect("packing exists");
        assert_eq!(trees.len(), plan.rho0() as usize);
    }

    #[test]
    fn plan_rejects_bad_networks_like_the_engine() {
        assert!(matches!(
            ExecutionPlan::build(gen::complete(3, 1), 1),
            Err(NabError::TooManyFaults { n: 3, f: 1 })
        ));
        assert!(matches!(
            ExecutionPlan::build(gen::ring(5, 1), 1),
            Err(NabError::InsufficientConnectivity)
        ));
    }

    #[test]
    fn instance_scheme_matches_direct_construction() {
        let g = gen::complete(4, 2);
        let plan = ExecutionPlan::build(g.clone(), 1).unwrap();
        let a = plan.instance_scheme(42, 1);
        let b = CodingScheme::random(&g, plan.rho0() as usize, 43);
        let v = crate::value::Value::from_u64s(&[1, 2, 3, 4, 5, 6]);
        assert_eq!(a.encode(0, 1, &v), b.encode(0, 1, &v));
    }

    #[test]
    fn bounds_are_cached_per_budget() {
        let g = gen::complete(4, 2);
        let plan = ExecutionPlan::build(g.clone(), 1).unwrap();
        let first = plan.bounds_report(1 << 14);
        let again = plan.bounds_report(1 << 14);
        assert_eq!(first, again);
        assert_eq!(
            first,
            crate::bounds::bounds_report(&g, SOURCE, 1, 1 << 14),
            "cached bounds equal direct computation"
        );
        // A different budget gets its own deterministic result — a plan
        // reused across sweeps must never serve one sweep's budget to
        // another (budget 2 forces the inexact γ* fallback on this graph).
        let tiny = plan.bounds_report(2);
        assert_eq!(
            tiny,
            crate::bounds::bounds_report(&g, SOURCE, 1, 2),
            "per-budget cache: small budget computed on its own terms"
        );
        assert!(!tiny.unwrap().gamma_star.exact);
        assert!(first.unwrap().gamma_star.exact);
    }

    #[test]
    fn cache_hits_on_identical_networks_and_counts() {
        let cache = PlanCache::new();
        let g = gen::complete(5, 2);
        let a = cache.fetch(&g, 1).unwrap();
        assert!(!a.hit);
        assert!(a.build_ns > 0);
        let b = cache.fetch(&g.clone(), 1).unwrap();
        assert!(b.hit);
        assert_eq!(b.build_ns, 0);
        assert!(Arc::ptr_eq(&a.plan, &b.plan), "hit returns the shared plan");
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!(s.build_ns >= a.build_ns);
        assert_eq!(cache.plan_count(), 1);
    }

    #[test]
    fn cache_distinguishes_f_and_capacities() {
        let cache = PlanCache::new();
        let p1 = cache.get_or_build(&gen::complete(7, 2), 1).unwrap();
        let p2 = cache.get_or_build(&gen::complete(7, 2), 2).unwrap();
        let p3 = cache.get_or_build(&gen::complete(7, 4), 1).unwrap();
        assert!(!Arc::ptr_eq(&p1, &p2));
        assert!(!Arc::ptr_eq(&p1, &p3));
        assert_eq!(cache.plan_count(), 3);
        assert_eq!(p1.router().copies(), 3);
        assert_eq!(p2.router().copies(), 5);
    }

    #[test]
    fn cache_does_not_cache_failures() {
        let cache = PlanCache::new();
        let g = gen::ring(5, 1);
        assert!(cache.fetch(&g, 1).is_err());
        assert!(cache.fetch(&g, 1).is_err());
        assert_eq!(cache.plan_count(), 0);
        assert_eq!(cache.stats().misses, 0);
    }

    #[test]
    fn disk_tier_warms_fresh_caches() {
        let dir = std::env::temp_dir().join(format!("nab-plan-disk-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = gen::complete(5, 2);
        let c1 = PlanCache::with_dir(&dir);
        assert_eq!(c1.dir(), Some(dir.as_path()));
        let a = c1.fetch(&g, 1).unwrap();
        assert!(!a.hit);
        assert_eq!(c1.stats().disk_stores, 1);
        // A fresh cache (new process, conceptually) starts warm from disk.
        let c2 = PlanCache::with_dir(&dir);
        let b = c2.fetch(&g, 1).unwrap();
        assert!(b.hit, "disk entry substitutes for the build");
        let s = c2.stats();
        assert_eq!((s.misses, s.disk_hits, s.disk_rejects), (0, 1, 0));
        assert_eq!(b.plan.trees0(), a.plan.trees0());
        assert_eq!(b.plan.gamma0(), a.plan.gamma0());
        assert_eq!(b.plan.rho0(), a.plan.rho0());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_fetches_share_one_plan() {
        let cache = PlanCache::new();
        let g = gen::complete(6, 2);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(|| cache.get_or_build(&g, 1).unwrap()))
                .collect();
            let plans: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
            for p in &plans[1..] {
                assert!(Arc::ptr_eq(&plans[0], p));
            }
        });
        let s = cache.stats();
        assert_eq!(s.hits + s.misses, 4);
        assert_eq!(s.misses, 1, "write-lock build deduplicates");
    }
}
