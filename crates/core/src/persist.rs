//! On-disk persistence for [`crate::plan::ExecutionPlan`]s.
//!
//! Plans are deterministic functions of `(G, f)`, so a sweep that ran
//! yesterday — or a sibling CI shard running right now — has already paid
//! for exactly the plans today's run needs. This module gives the
//! [`crate::plan::PlanCache`] a disk tier: entries are content-addressed
//! by the `canon` digests (`{canonical:016x}-{labeled:016x}-f{f}.plan`),
//! written atomically (temp file + rename, so concurrent sweeps never
//! observe a torn entry), and verified on load before they can influence
//! a result.
//!
//! # Format (version 1)
//!
//! A length-prefixed little-endian binary stream:
//!
//! ```text
//! magic    8 bytes  b"NABPLAN\0"
//! version  u32      1
//! payload:
//!   f, gamma0, rho0             u64 × 3
//!   canonical_key, labeled_key  u64 × 2
//!   node_count                  u64
//!   active mask                 node_count × u8 (1 = active)
//!   edge_count                  u64
//!   edges                       edge_count × (src u64, dst u64, cap u64)
//!   tree_count                  u64
//!   trees                       tree_count × [edge_count u64,
//!                                             edges × (src u64, dst u64)]
//! checksum  u64     FNV-1a over everything before it
//! ```
//!
//! Loading re-derives both digests from the decoded graph and compares
//! them (and the decoded graph itself) against the *requested* key and
//! network, re-validates the arborescence packing, and rejects on any
//! mismatch — a rejected or corrupt entry is rebuilt from scratch and can
//! never poison results. The checksum guards against torn or bit-rotted
//! files; deliberate tampering with a refreshed checksum is outside the
//! threat model (the cache directory is as trusted as the binary itself).

use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

use nab_netgraph::arborescence::{validate_packing, Arborescence};
use nab_netgraph::{canon, DiGraph, NodeId};

use crate::engine::SOURCE;
use crate::plan::{ExecutionPlan, PlanKey};

const MAGIC: &[u8; 8] = b"NABPLAN\0";
const VERSION: u32 = 1;

/// Result of probing the disk tier for one plan.
#[derive(Debug)]
pub enum LoadOutcome {
    /// No persisted entry for this key.
    Missing,
    /// An entry existed but failed verification (with the reason); the
    /// caller must rebuild and should warn.
    Rejected(String),
    /// The entry verified and was reassembled.
    Loaded(Box<ExecutionPlan>),
}

/// The file a key persists to inside `dir`.
pub fn plan_path(dir: &Path, key: &PlanKey) -> PathBuf {
    dir.join(format!(
        "{:016x}-{:016x}-f{}.plan",
        key.canon, key.labeled, key.f
    ))
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn u64(&mut self) -> Result<u64, String> {
        let end = self.pos.checked_add(8).ok_or("length overflow")?;
        let bytes = self.buf.get(self.pos..end).ok_or("truncated payload")?;
        self.pos = end;
        let arr: [u8; 8] = bytes.try_into().map_err(|_| "truncated u64 field")?;
        Ok(u64::from_le_bytes(arr))
    }

    fn u8(&mut self) -> Result<u8, String> {
        let b = *self.buf.get(self.pos).ok_or("truncated payload")?;
        self.pos += 1;
        Ok(b)
    }

    fn usize(&mut self) -> Result<usize, String> {
        usize::try_from(self.u64()?).map_err(|_| "count overflows usize".to_string())
    }
}

fn encode(key: &PlanKey, plan: &ExecutionPlan) -> Vec<u8> {
    let g = plan.graph();
    let mut out = Vec::with_capacity(64 + g.edge_count() * 24);
    out.extend_from_slice(MAGIC);
    out.extend_from_slice(&VERSION.to_le_bytes());
    push_u64(&mut out, plan.f() as u64);
    push_u64(&mut out, plan.gamma0());
    push_u64(&mut out, plan.rho0());
    push_u64(&mut out, key.canon);
    push_u64(&mut out, key.labeled);
    push_u64(&mut out, g.node_count() as u64);
    for v in 0..g.node_count() {
        out.push(u8::from(g.is_active(v)));
    }
    let edges: Vec<_> = g.edges().collect();
    push_u64(&mut out, edges.len() as u64);
    for (_, e) in edges {
        push_u64(&mut out, e.src as u64);
        push_u64(&mut out, e.dst as u64);
        push_u64(&mut out, e.cap);
    }
    push_u64(&mut out, plan.trees0().len() as u64);
    for t in plan.trees0() {
        push_u64(&mut out, t.edges.len() as u64);
        for &(s, d) in &t.edges {
            push_u64(&mut out, s as u64);
            push_u64(&mut out, d as u64);
        }
    }
    let checksum = fnv1a(&out);
    push_u64(&mut out, checksum);
    out
}

fn decode(bytes: &[u8], key: &PlanKey, g: &DiGraph, f: usize) -> Result<ExecutionPlan, String> {
    if bytes.len() < MAGIC.len() + 4 + 8 {
        return Err("file too short".into());
    }
    let (body, tail) = bytes.split_at(bytes.len() - 8);
    let tail: [u8; 8] = tail.try_into().map_err(|_| "truncated checksum")?;
    let stored_sum = u64::from_le_bytes(tail);
    if fnv1a(body) != stored_sum {
        return Err("checksum mismatch".into());
    }
    if &body[..MAGIC.len()] != MAGIC {
        return Err("bad magic".into());
    }
    let version_bytes: [u8; 4] = body[MAGIC.len()..MAGIC.len() + 4]
        .try_into()
        .map_err(|_| "truncated version field")?;
    let version = u32::from_le_bytes(version_bytes);
    if version != VERSION {
        return Err(format!("unsupported version {version}"));
    }
    let mut r = Reader {
        buf: body,
        pos: MAGIC.len() + 4,
    };
    let stored_f = r.usize()?;
    let gamma0 = r.u64()?;
    let rho0 = r.u64()?;
    let stored_canon = r.u64()?;
    let stored_labeled = r.u64()?;
    if stored_f != f || stored_canon != key.canon || stored_labeled != key.labeled {
        return Err("key mismatch".into());
    }
    let node_count = r.usize()?;
    if node_count > 1 << 24 {
        return Err("implausible node count".into());
    }
    let mut decoded = DiGraph::new(node_count);
    let mut inactive = Vec::new();
    for v in 0..node_count {
        if r.u8()? == 0 {
            inactive.push(v);
        }
    }
    let edge_count = r.usize()?;
    for _ in 0..edge_count {
        let src = r.usize()?;
        let dst = r.usize()?;
        let cap = r.u64()?;
        if src >= node_count || dst >= node_count || src == dst || cap == 0 {
            return Err("invalid edge".into());
        }
        if decoded.find_edge(src, dst).is_some() {
            return Err("duplicate edge".into());
        }
        decoded.add_edge(src, dst, cap);
    }
    for v in inactive {
        decoded.remove_node(v);
    }
    // The decoded graph must be the requested one, digests and all — a
    // stale or colliding entry is rejected, never served.
    if &decoded != g {
        return Err("graph mismatch".into());
    }
    if canon::canonical_key(&decoded) != key.canon || canon::labeled_key(&decoded) != key.labeled {
        return Err("digest mismatch".into());
    }
    let tree_count = r.usize()?;
    if tree_count != gamma0 as usize {
        return Err("tree count does not match gamma".into());
    }
    let mut trees = Vec::with_capacity(tree_count);
    for _ in 0..tree_count {
        let len = r.usize()?;
        if len > node_count {
            return Err("implausible tree size".into());
        }
        let mut edges: Vec<(NodeId, NodeId)> = Vec::with_capacity(len);
        for _ in 0..len {
            edges.push((r.usize()?, r.usize()?));
        }
        trees.push(Arborescence {
            root: SOURCE,
            edges,
        });
    }
    if r.pos != body.len() {
        return Err("trailing bytes".into());
    }
    validate_packing(&decoded, SOURCE, &trees).map_err(|e| format!("invalid packing: {e}"))?;
    if rho0 == 0 {
        return Err("invalid rho".into());
    }
    ExecutionPlan::from_parts(decoded, f, gamma0, rho0, trees, 0)
        .map_err(|e| format!("plan validation failed: {e:?}"))
}

/// Persists `plan` under its key in `dir` (created if absent), atomically:
/// the entry is written to a process-unique temp file and renamed into
/// place, so readers only ever see complete entries.
///
/// # Errors
///
/// Returns the underlying filesystem error.
pub fn save_plan(dir: &Path, key: &PlanKey, plan: &ExecutionPlan) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let bytes = encode(key, plan);
    let tmp = dir.join(format!(
        ".{:016x}-{:016x}-f{}.tmp-{}",
        key.canon,
        key.labeled,
        key.f,
        std::process::id()
    ));
    {
        let mut file = std::fs::File::create(&tmp)?;
        file.write_all(&bytes)?;
        file.sync_all()?;
    }
    let path = plan_path(dir, key);
    match std::fs::rename(&tmp, &path) {
        Ok(()) => Ok(()),
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

/// Probes `dir` for a persisted plan for `(g, f)` under `key`, fully
/// verifying any entry found (checksum, digests, graph equality, packing
/// validity) before reassembling it.
pub fn load_plan(dir: &Path, key: &PlanKey, g: &DiGraph, f: usize) -> LoadOutcome {
    let path = plan_path(dir, key);
    let mut bytes = Vec::new();
    match std::fs::File::open(&path) {
        Err(e) if e.kind() == io::ErrorKind::NotFound => return LoadOutcome::Missing,
        Err(e) => return LoadOutcome::Rejected(format!("open failed: {e}")),
        Ok(mut file) => {
            if let Err(e) = file.read_to_end(&mut bytes) {
                return LoadOutcome::Rejected(format!("read failed: {e}"));
            }
        }
    }
    let t0 = nab_obs::clock::mono_now();
    match decode(&bytes, key, g, f) {
        Ok(mut plan) => {
            plan.set_build_wall_ns(t0.elapsed().as_nanos() as u64);
            LoadOutcome::Loaded(Box::new(plan))
        }
        Err(why) => LoadOutcome::Rejected(why),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nab_netgraph::gen;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("nab-persist-test-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn round_trip_preserves_plan_artifacts() {
        let dir = tmpdir("roundtrip");
        let g = gen::complete(5, 2);
        let plan = ExecutionPlan::build(g.clone(), 1).unwrap();
        let key = PlanKey::of(&g, 1);
        save_plan(&dir, &key, &plan).unwrap();
        let LoadOutcome::Loaded(loaded) = load_plan(&dir, &key, &g, 1) else {
            panic!("expected load");
        };
        assert_eq!(loaded.graph(), plan.graph());
        assert_eq!(loaded.gamma0(), plan.gamma0());
        assert_eq!(loaded.rho0(), plan.rho0());
        assert_eq!(loaded.trees0(), plan.trees0());
        assert_eq!(loaded.f(), plan.f());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_corrupted_byte_is_rejected() {
        let dir = tmpdir("corrupt");
        let g = gen::complete(4, 2);
        let plan = ExecutionPlan::build(g.clone(), 1).unwrap();
        let key = PlanKey::of(&g, 1);
        save_plan(&dir, &key, &plan).unwrap();
        let path = plan_path(&dir, &key);
        let pristine = std::fs::read(&path).unwrap();
        // Flip one byte at a spread of offsets covering header, payload,
        // and checksum; every corruption must be rejected, never loaded.
        for idx in (0..pristine.len()).step_by(7).chain([pristine.len() - 1]) {
            let mut bad = pristine.clone();
            bad[idx] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            match load_plan(&dir, &key, &g, 1) {
                LoadOutcome::Rejected(_) => {}
                other => panic!("byte {idx}: corruption not rejected: {other:?}"),
            }
        }
        // Restoring the pristine bytes loads again.
        std::fs::write(&path, &pristine).unwrap();
        assert!(matches!(
            load_plan(&dir, &key, &g, 1),
            LoadOutcome::Loaded(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_and_mismatched_entries() {
        let dir = tmpdir("mismatch");
        let g = gen::complete(4, 2);
        let key = PlanKey::of(&g, 1);
        assert!(matches!(load_plan(&dir, &key, &g, 1), LoadOutcome::Missing));
        // An entry saved for a different network is rejected when probed
        // with forged key coordinates.
        let plan = ExecutionPlan::build(g.clone(), 1).unwrap();
        save_plan(&dir, &key, &plan).unwrap();
        let other = gen::complete(5, 2);
        let mut forged = PlanKey::of(&other, 1);
        forged.canon = key.canon;
        forged.labeled = key.labeled;
        assert!(matches!(
            load_plan(&dir, &forged, &other, 1),
            LoadOutcome::Rejected(_)
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
