//! The broadcast value: an `L`-bit string viewed as symbols of `GF(2^16)`.
//!
//! The paper works with abstract `L`-bit inputs that are re-interpreted per
//! phase: Phase 1 splits them into `γ_k` blocks, the equality check
//! re-shapes them into `ρ_k` symbols of `GF(2^{L/ρ_k})`. We fix the machine
//! symbol at 16 bits ([`nab_gf::Gf2_16`]) and represent an `L`-bit value as
//! `S = L/16` symbols; the giant field `GF(2^{L/ρ})` is realized as `S/ρ`
//! independent `GF(2^16)` *columns* checked with the same coding matrices —
//! exactly the block decomposition the random-coding argument factorizes
//! over (see DESIGN.md, substitutions).

use std::fmt;

use nab_gf::field::Field;
use nab_gf::Gf2_16;
use rand::Rng;

/// Bits per machine symbol.
pub const SYMBOL_BITS: u64 = 16;

/// An `L`-bit broadcast value as a vector of 16-bit field symbols.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Value {
    symbols: Vec<Gf2_16>,
}

impl Value {
    /// A value of `s` zero symbols.
    pub fn zeros(s: usize) -> Self {
        Value {
            symbols: vec![Gf2_16::ZERO; s],
        }
    }

    /// Builds a value from raw integers (each truncated to 16 bits).
    pub fn from_u64s(raw: &[u64]) -> Self {
        Value {
            symbols: raw.iter().map(|&x| Gf2_16::from_u64(x)).collect(),
        }
    }

    /// Builds a value from field symbols.
    pub fn from_symbols(symbols: Vec<Gf2_16>) -> Self {
        Value { symbols }
    }

    /// A uniformly random value of `s` symbols.
    pub fn random<R: Rng + ?Sized>(s: usize, rng: &mut R) -> Self {
        Value {
            symbols: (0..s).map(|_| Gf2_16::random(rng)).collect(),
        }
    }

    /// Number of symbols `S`.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Whether the value has no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Total size in bits (`L = 16·S`).
    pub fn bits(&self) -> u64 {
        self.symbols.len() as u64 * SYMBOL_BITS
    }

    /// The symbols as a slice.
    pub fn symbols(&self) -> &[Gf2_16] {
        &self.symbols
    }

    /// Splits the value into `parts` nearly-equal contiguous blocks
    /// (Phase 1: one block per spanning arborescence).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is zero.
    pub fn split_blocks(&self, parts: usize) -> Vec<Vec<Gf2_16>> {
        assert!(parts > 0, "cannot split into zero blocks");
        let s = self.symbols.len();
        let base = s / parts;
        let extra = s % parts;
        let mut out = Vec::with_capacity(parts);
        let mut idx = 0;
        for p in 0..parts {
            let take = base + usize::from(p < extra);
            out.push(self.symbols[idx..idx + take].to_vec());
            idx += take;
        }
        out
    }

    /// Reassembles a value from contiguous blocks (inverse of
    /// [`Value::split_blocks`]).
    pub fn join_blocks(blocks: &[Vec<Gf2_16>]) -> Self {
        Value {
            symbols: blocks.iter().flatten().copied().collect(),
        }
    }

    /// Re-shapes the value into a `ρ × cols` matrix for the equality check:
    /// entry `(r, c)` is symbol `c·ρ + r`, zero-padded to a whole number of
    /// columns. Column `c` plays the role of the vector `X_i` in Algorithm 1
    /// over one 16-bit slice of `GF(2^{L/ρ})`.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is zero.
    pub fn reshape(&self, rho: usize) -> Vec<Vec<Gf2_16>> {
        assert!(rho > 0, "equality-check parameter ρ must be positive");
        let cols = self.symbols.len().div_ceil(rho);
        let mut out = vec![vec![Gf2_16::ZERO; rho]; cols];
        for (i, &sym) in self.symbols.iter().enumerate() {
            out[i / rho][i % rho] = sym;
        }
        out
    }

    /// Flips one symbol (test helper for corruption scenarios).
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn corrupt_symbol(&self, idx: usize, delta: u64) -> Self {
        let mut v = self.clone();
        v.symbols[idx] = v.symbols[idx].add(Gf2_16::from_u64(delta | 1));
        v
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Value[{} sym:", self.symbols.len())?;
        for s in self.symbols.iter().take(4) {
            write!(f, " {s}")?;
        }
        if self.symbols.len() > 4 {
            write!(f, " …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_count_symbols() {
        let v = Value::from_u64s(&[1, 2, 3]);
        assert_eq!(v.bits(), 48);
        assert_eq!(v.len(), 3);
        assert!(!v.is_empty());
    }

    #[test]
    fn split_join_roundtrip_even() {
        let v = Value::from_u64s(&[1, 2, 3, 4, 5, 6]);
        let blocks = v.split_blocks(3);
        assert_eq!(
            blocks.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![2, 2, 2]
        );
        assert_eq!(Value::join_blocks(&blocks), v);
    }

    #[test]
    fn split_join_roundtrip_uneven() {
        let v = Value::from_u64s(&[1, 2, 3, 4, 5, 6, 7]);
        let blocks = v.split_blocks(3);
        assert_eq!(
            blocks.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![3, 2, 2]
        );
        assert_eq!(Value::join_blocks(&blocks), v);
    }

    #[test]
    fn reshape_is_column_major_with_padding() {
        let v = Value::from_u64s(&[1, 2, 3, 4, 5]);
        let m = v.reshape(2);
        // Columns: [1,2], [3,4], [5,0].
        assert_eq!(m.len(), 3);
        assert_eq!(m[0], vec![Gf2_16(1), Gf2_16(2)]);
        assert_eq!(m[2], vec![Gf2_16(5), Gf2_16(0)]);
    }

    #[test]
    fn distinct_values_differ_in_reshape() {
        let v = Value::from_u64s(&[1, 2, 3, 4]);
        let w = v.corrupt_symbol(2, 0);
        assert_ne!(v, w);
        let (mv, mw) = (v.reshape(2), w.reshape(2));
        assert_ne!(mv, mw);
    }

    #[test]
    fn random_values_differ() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        let a = Value::random(16, &mut rng);
        let b = Value::random(16, &mut rng);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "zero blocks")]
    fn zero_split_rejected() {
        Value::from_u64s(&[1]).split_blocks(0);
    }
}
