//! The Equality Check algorithm with local linear coding (Algorithm 1).
//!
//! Each node `i` holds an `L`-bit value `x_i` (what it received in
//! Phase 1), viewed as `ρ` symbols `X_i ∈ GF(2^{L/ρ})^ρ`. On every outgoing
//! link `e = (i, j)` of capacity `z_e`, node `i` transmits `Y_e = X_i C_e`,
//! where `C_e` is a `ρ × z_e` coding matrix fixed by the algorithm; node
//! `j` checks `Y_e = X_j C_e` against its own value and raises a MISMATCH
//! flag on failure. One round, no forwarding — a faulty node can send bad
//! coded symbols but cannot tamper with symbols exchanged between
//! fault-free nodes.
//!
//! Theorem 1: when `ρ ≤ U/2` and the `C_e` entries are uniform random, the
//! scheme is *correct* — any two fault-free nodes with different values
//! cause a MISMATCH at some fault-free node — with probability at least
//! `1 − 2^{−L/ρ}·C(n, n−f)·(n−f−1)·ρ`.

use std::collections::BTreeMap;

use nab_gf::field::Field;
use nab_gf::matrix::Matrix;
use nab_gf::{Gf2_16, WordMatrix};
use nab_netgraph::{DiGraph, NodeId};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::value::{Value, SYMBOL_BITS};

/// The per-edge coding matrices `{C_e | e ∈ E_k}` for one instance.
///
/// The matrices are part of the *algorithm specification*: every node knows
/// all of them (they are generated from a public seed), so a receiver can
/// recompute the expected coded symbols from its own value.
#[derive(Debug, Clone)]
pub struct CodingScheme {
    rho: usize,
    matrices: BTreeMap<(NodeId, NodeId), Matrix<Gf2_16>>,
}

impl CodingScheme {
    /// Samples uniform random coding matrices for every live edge of `g`,
    /// with equality-check parameter `rho`, from a deterministic seed.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is zero.
    pub fn random(g: &DiGraph, rho: usize, seed: u64) -> Self {
        assert!(rho > 0, "equality-check parameter ρ must be positive");
        let mut rng = StdRng::seed_from_u64(seed);
        let mut matrices = BTreeMap::new();
        for (_, e) in g.edges() {
            let c = Matrix::<Gf2_16>::random(rho, e.cap as usize, &mut rng);
            matrices.insert((e.src, e.dst), c);
        }
        CodingScheme { rho, matrices }
    }

    /// Builds a *deterministic* Vandermonde coding scheme: the `t`-th
    /// coded symbol of edge `e` uses the column `(1, α, α², …, α^{ρ−1})`
    /// for a globally distinct evaluation point `α` (consecutive powers of
    /// the field generator). An ablation alternative to random matrices —
    /// structured, reproducible without a seed, and empirically sound on
    /// well-provisioned graphs, though Theorem 1's probabilistic guarantee
    /// only covers the random construction.
    ///
    /// # Panics
    ///
    /// Panics if `rho` is zero or the graph needs more than `2^16 − 1`
    /// distinct evaluation points.
    pub fn vandermonde(g: &DiGraph, rho: usize) -> Self {
        assert!(rho > 0, "equality-check parameter ρ must be positive");
        let total: u64 = g.edges().map(|(_, e)| e.cap).sum();
        assert!(
            total < 65_535,
            "graph too large for distinct GF(2^16) points"
        );
        let gen_elt = Gf2_16::from_u64(2); // generator of GF(2^16)* for 0x1100B
        let mut alpha = Gf2_16::from_u64(1);
        let mut matrices = BTreeMap::new();
        for (_, e) in g.edges() {
            let cols = e.cap as usize;
            let mut m = Matrix::zero(rho, cols);
            for c in 0..cols {
                alpha = alpha.mul(gen_elt);
                let mut p = Gf2_16::from_u64(1);
                for r in 0..rho {
                    m[(r, c)] = p;
                    p = p.mul(alpha);
                }
            }
            matrices.insert((e.src, e.dst), m);
        }
        CodingScheme { rho, matrices }
    }

    /// The equality-check parameter `ρ`.
    pub fn rho(&self) -> usize {
        self.rho
    }

    /// The coding matrix of edge `(src, dst)`.
    ///
    /// # Panics
    ///
    /// Panics if the edge has no matrix (edge absent at generation time).
    pub fn matrix(&self, src: NodeId, dst: NodeId) -> &Matrix<Gf2_16> {
        self.matrices
            .get(&(src, dst))
            // nab-lint: allow(NAB003): plan construction emits a matrix for every live edge
            .unwrap_or_else(|| panic!("no coding matrix for edge ({src}, {dst})"))
    }

    /// Encodes a value for transmission on edge `(src, dst)`:
    /// `Y_e = X C_e` computed per 16-bit column, flattened column-major.
    ///
    /// The multiply runs on the [`nab_gf::kernel`] row kernels (the
    /// split-table `GF(2^16)` fast path); when encoding the same value on
    /// many edges, reshape once and use [`CodingScheme::encode_cols`].
    pub fn encode(&self, src: NodeId, dst: NodeId, value: &Value) -> Vec<Gf2_16> {
        self.encode_cols(src, dst, &value.reshape(self.rho))
    }

    /// Encodes pre-reshaped symbol columns (from
    /// [`Value::reshape`] with this scheme's `ρ`) for edge `(src, dst)`.
    /// This is the per-edge hot path of Phase 2: the reshape is hoisted so
    /// a node encoding on all its out-edges pays it once.
    pub fn encode_cols(&self, src: NodeId, dst: NodeId, cols: &[Vec<Gf2_16>]) -> Vec<Gf2_16> {
        let c = self.matrix(src, dst);
        let mut out = Vec::with_capacity(cols.len() * c.cols());
        for x in cols {
            out.extend(nab_gf::kernel::left_mul_vec(c, x));
        }
        out
    }

    /// The batched-encode shape: `Y_eᵀ = C_eᵀ · Xᵀ`, where `xt` is a
    /// `ρ × W` row-major slab whose columns are value columns (from any
    /// number of instances/streams packed side by side). One blocked
    /// [`WordMatrix::mat_mul`] with `W`-long rows replaces `W` per-column
    /// [`nab_gf::kernel::left_mul_vec`] calls with `z_e`-long rows — the
    /// hot path of the batched execution engine. Entry `(r, c)` of the
    /// result is coded symbol `r` of packed column `c`, bit-identical to
    /// [`CodingScheme::encode_cols`] on the same columns.
    ///
    /// # Panics
    ///
    /// Panics if the edge has no matrix or `xt` has `!= ρ` rows.
    pub fn encode_slab(&self, src: NodeId, dst: NodeId, xt: &WordMatrix) -> WordMatrix {
        let c = self.matrix(src, dst);
        assert_eq!(xt.rows(), self.rho, "packed slab must have ρ rows");
        let ct = WordMatrix::from_fn(c.cols(), c.rows(), |r, col| c[(col, r)].0);
        ct.mat_mul(xt)
    }

    /// Number of coded symbols [`CodingScheme::encode`] produces on an edge
    /// for a value of `s` symbols.
    pub fn encoded_len(&self, src: NodeId, dst: NodeId, s: usize) -> usize {
        let z = self.matrix(src, dst).cols();
        s.div_ceil(self.rho) * z
    }

    /// Bits transmitted on the edge for a value of `s` symbols
    /// (`z_e · L/ρ`, rounded up to whole columns).
    pub fn encoded_bits(&self, src: NodeId, dst: NodeId, s: usize) -> u64 {
        self.encoded_len(src, dst, s) as u64 * SYMBOL_BITS
    }

    /// The receiver check of step 2: does `received` equal `X_j C_e` for
    /// the receiver's own value?
    pub fn check(&self, src: NodeId, dst: NodeId, own: &Value, received: &[Gf2_16]) -> bool {
        self.encode(src, dst, own) == received
    }

    /// [`CodingScheme::check`] on pre-reshaped columns (reshape hoisted,
    /// for receivers checking many in-edges against the same value).
    pub fn check_cols(
        &self,
        src: NodeId,
        dst: NodeId,
        own_cols: &[Vec<Gf2_16>],
        received: &[Gf2_16],
    ) -> bool {
        self.encode_cols(src, dst, own_cols) == received
    }
}

/// Pure (simulator-free) execution of Algorithm 1 on graph `g` with the
/// values held by each node.
///
/// `tamper(i, j, honest)` lets a Byzantine sender substitute the coded
/// symbols it puts on edge `(i, j)`; pass [`no_tamper`] for fault-free
/// runs. Returns each node's 1-bit flag: `true` = MISMATCH.
///
/// # Panics
///
/// Panics if some active node is missing from `values`.
pub fn equality_check_flags(
    g: &DiGraph,
    values: &BTreeMap<NodeId, Value>,
    scheme: &CodingScheme,
    tamper: &mut dyn FnMut(NodeId, NodeId, Vec<Gf2_16>) -> Vec<Gf2_16>,
) -> BTreeMap<NodeId, bool> {
    let mut flags: BTreeMap<NodeId, bool> = g.nodes().map(|v| (v, false)).collect();
    // Reshape each node's value once, not once per incident edge.
    let reshaped: BTreeMap<NodeId, Vec<Vec<Gf2_16>>> = g
        .nodes()
        .map(|v| (v, values[&v].reshape(scheme.rho())))
        .collect();
    for (_, e) in g.edges() {
        let honest = scheme.encode_cols(e.src, e.dst, &reshaped[&e.src]);
        let sent = tamper(e.src, e.dst, honest);
        if !scheme.check_cols(e.src, e.dst, &reshaped[&e.dst], &sent) {
            flags.insert(e.dst, true);
        }
    }
    flags
}

/// A pass-through tamper function (all nodes follow the protocol).
pub fn no_tamper(_: NodeId, _: NodeId, honest: Vec<Gf2_16>) -> Vec<Gf2_16> {
    honest
}

/// The Theorem 1 failure-probability bound
/// `2^{−m} · C(n, n−f) · (n−f−1) · ρ`, where `m` is the per-symbol bit
/// width (the paper's `L/ρ`; 16 in this implementation's machine field).
pub fn theorem1_failure_bound(n: usize, f: usize, rho: usize, m_bits: u32) -> f64 {
    let choose = binomial(n, n - f) as f64;
    choose * (n - f - 1) as f64 * rho as f64 / 2f64.powi(m_bits as i32)
}

/// Binomial coefficient (saturating; fine for the small `n` used here).
pub fn binomial(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut num: u128 = 1;
    for i in 0..k {
        num = num * (n - i) as u128 / (i + 1) as u128;
    }
    num
}

#[cfg(test)]
mod tests {
    use super::*;
    use nab_netgraph::gen;

    fn values_all_equal(g: &DiGraph, v: &Value) -> BTreeMap<NodeId, Value> {
        g.nodes().map(|n| (n, v.clone())).collect()
    }

    #[test]
    fn equal_values_raise_no_flags() {
        let g = gen::figure_1a();
        let scheme = CodingScheme::random(&g, 1, 99);
        let v = Value::from_u64s(&[10, 20, 30, 40]);
        let flags = equality_check_flags(&g, &values_all_equal(&g, &v), &scheme, &mut no_tamper);
        assert!(flags.values().all(|f| !f));
    }

    #[test]
    fn single_deviant_value_is_detected() {
        let g = gen::figure_1a();
        let scheme = CodingScheme::random(&g, 1, 7);
        let v = Value::from_u64s(&[10, 20, 30, 40]);
        let mut vals = values_all_equal(&g, &v);
        vals.insert(2, v.corrupt_symbol(1, 4));
        let flags = equality_check_flags(&g, &vals, &scheme, &mut no_tamper);
        assert!(
            flags.values().any(|f| *f),
            "a mismatching neighbor must raise a flag"
        );
    }

    #[test]
    fn detection_probability_matches_theorem1_shape() {
        // Random coding over GF(2^16): a single differing pair is missed
        // with probability ~2^-16 per coded symbol; over many trials we
        // must see (essentially) perfect detection.
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let g = gen::complete(4, 1);
        let mut rng = StdRng::seed_from_u64(42);
        let mut detected = 0;
        let trials = 200;
        for t in 0..trials {
            let scheme = CodingScheme::random(&g, 2, t as u64);
            let v = Value::random(8, &mut rng);
            let mut vals = values_all_equal(&g, &v);
            let idx = rng.gen_range(0..8);
            vals.insert(3, v.corrupt_symbol(idx, rng.gen::<u64>() & 0xFFFF));
            let flags = equality_check_flags(&g, &vals, &scheme, &mut no_tamper);
            if flags.values().any(|f| *f) {
                detected += 1;
            }
        }
        assert_eq!(detected, trials, "missed detections far above 2^-16 rate");
    }

    #[test]
    fn tampered_symbols_flag_the_receiver() {
        let g = gen::figure_1a();
        let scheme = CodingScheme::random(&g, 1, 3);
        let v = Value::from_u64s(&[1, 2, 3, 4]);
        let vals = values_all_equal(&g, &v);
        // Node 1 garbles what it sends to node 2 (edge (1,2) exists in
        // figure_1a).
        let mut tamper = |src: NodeId, dst: NodeId, mut y: Vec<Gf2_16>| {
            if src == 1 && dst == 2 {
                y[0] = y[0].add(Gf2_16::ONE);
            }
            y
        };
        let flags = equality_check_flags(&g, &vals, &scheme, &mut tamper);
        assert!(flags[&2], "tampered edge must flag node 2");
        assert!(!flags[&0] && !flags[&3]);
    }

    #[test]
    fn encode_check_roundtrip() {
        let g = gen::complete(3, 2);
        let scheme = CodingScheme::random(&g, 2, 5);
        let v = Value::from_u64s(&[9, 8, 7, 6]);
        let y = scheme.encode(0, 1, &v);
        assert!(scheme.check(0, 1, &v, &y));
        let w = v.corrupt_symbol(0, 2);
        assert!(!scheme.check(0, 1, &w, &y));
    }

    #[test]
    fn encoded_sizes_match_capacity() {
        let g = gen::complete(3, 4); // z_e = 4
        let scheme = CodingScheme::random(&g, 2, 5);
        // 8 symbols, ρ=2 → 4 columns × z_e=4 coded symbols = 16.
        assert_eq!(scheme.encoded_len(0, 1, 8), 16);
        assert_eq!(scheme.encoded_bits(0, 1, 8), 256);
        let v = Value::from_u64s(&[1, 2, 3, 4, 5, 6, 7, 8]);
        assert_eq!(scheme.encode(0, 1, &v).len(), 16);
    }

    #[test]
    fn vandermonde_scheme_detects_deviations() {
        let g = gen::complete(4, 2);
        let scheme = CodingScheme::vandermonde(&g, 2);
        let v = Value::from_u64s(&[1, 2, 3, 4, 5, 6]);
        let mut vals = values_all_equal(&g, &v);
        let flags = equality_check_flags(&g, &vals, &scheme, &mut no_tamper);
        assert!(flags.values().all(|f| !f));
        vals.insert(2, v.corrupt_symbol(3, 9));
        let flags = equality_check_flags(&g, &vals, &scheme, &mut no_tamper);
        assert!(flags.values().any(|f| *f));
    }

    #[test]
    fn vandermonde_is_deterministic() {
        let g = gen::figure_2a();
        let a = CodingScheme::vandermonde(&g, 1);
        let b = CodingScheme::vandermonde(&g, 1);
        let v = Value::from_u64s(&[7, 8]);
        assert_eq!(a.encode(0, 1, &v), b.encode(0, 1, &v));
    }

    #[test]
    fn vandermonde_columns_are_vandermonde() {
        use nab_gf::linalg;
        // Any ρ distinct columns of a ρ-row Vandermonde scheme on one edge
        // are linearly independent.
        let g = gen::complete(3, 4);
        let scheme = CodingScheme::vandermonde(&g, 3);
        let m = scheme.matrix(0, 1);
        let sub = m.select_cols(&[0, 1, 2]);
        assert!(linalg::is_invertible(&sub));
    }

    #[test]
    fn encode_slab_matches_encode_cols_per_packed_stream() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let g = gen::complete(4, 3);
        let scheme = CodingScheme::random(&g, 2, 31);
        let mut rng = StdRng::seed_from_u64(8);
        // Three "streams" of 6 symbols each → 3 columns per stream.
        let vals: Vec<Value> = (0..3).map(|_| Value::random(6, &mut rng)).collect();
        let reshaped: Vec<Vec<Vec<Gf2_16>>> = vals.iter().map(|v| v.reshape(2)).collect();
        let cols = reshaped[0].len();
        let mut xt = WordMatrix::zero(2, 3 * cols);
        for (s, cs) in reshaped.iter().enumerate() {
            for (j, col) in cs.iter().enumerate() {
                for (r, &sym) in col.iter().enumerate() {
                    xt.set(r, s * cols + j, sym);
                }
            }
        }
        let yt = scheme.encode_slab(0, 1, &xt);
        assert_eq!(yt.rows(), scheme.matrix(0, 1).cols());
        for (s, cs) in reshaped.iter().enumerate() {
            let expect = scheme.encode_cols(0, 1, cs);
            let mut got = Vec::new();
            for j in 0..cols {
                for r in 0..yt.rows() {
                    got.push(yt.get(r, s * cols + j));
                }
            }
            assert_eq!(got, expect, "stream {s}");
        }
    }

    #[test]
    fn binomials() {
        assert_eq!(binomial(4, 3), 4);
        assert_eq!(binomial(7, 5), 21);
        assert_eq!(binomial(5, 0), 1);
        assert_eq!(binomial(3, 5), 0);
    }

    #[test]
    fn failure_bound_shrinks_with_symbol_width() {
        let b8 = theorem1_failure_bound(4, 1, 1, 8);
        let b16 = theorem1_failure_bound(4, 1, 1, 16);
        assert!(b16 < b8);
        // n=4, f=1, ρ=1: C(4,3)·2·1 = 8 over 2^m.
        assert!((b8 - 8.0 / 256.0).abs() < 1e-12);
    }
}
