//! NAB — Network-Aware Byzantine broadcast (Liang & Vaidya, 2012).
//!
//! This crate implements the paper's primary contribution: a Byzantine
//! broadcast algorithm for synchronous point-to-point networks with
//! per-link capacities that achieves at least 1/3 (sometimes 1/2) of the
//! network's BB capacity. Each broadcast *instance* runs three phases:
//!
//! 1. **Unreliable broadcast** ([`phase1`]): the source streams its `L`-bit
//!    input down `γ_k` capacity-respecting spanning arborescences of the
//!    current graph `G_k` — optimal rate, zero fault tolerance.
//! 2. **Failure detection** ([`phase2`]): the *equality check* with local
//!    linear coding ([`equality`], Algorithm 1) — every node sends random
//!    linear combinations of its received symbols on every outgoing link
//!    and checks its neighbors' combinations against its own value — then
//!    a classic 1-bit Byzantine broadcast of each node's MISMATCH flag.
//! 3. **Dispute control** ([`dispute`], only on detected misbehavior):
//!    full-transcript broadcasts that always end with a new dispute pair or
//!    an exposed faulty node, shrinking `G_{k+1}`; at most `f(f+1)`
//!    executions ever, so the amortized cost vanishes.
//!
//! The analysis side of the paper is implemented in [`bounds`] (the
//! throughput lower bound `γ*ρ*/(γ*+ρ*)`, the capacity upper bound
//! `min(γ*, 2ρ*)` of Theorem 2, and the reachable-graph family Γ) and
//! [`theory`] (the `C_H`/`M_H` matrix construction of Theorem 1's proof).
//! The executable protocol is split into a planning layer
//! ([`plan::ExecutionPlan`], the one-time network setup, shareable across
//! deployments through the content-addressed [`plan::PlanCache`]) and the
//! execution layer orchestrated by [`engine::NabEngine`], with Byzantine
//! strategies in [`adversary`].
//!
//! # Quickstart
//!
//! ```
//! use nab::engine::{NabConfig, NabEngine};
//! use nab::adversary::HonestStrategy;
//! use nab::value::Value;
//! use nab_netgraph::gen;
//! use std::collections::BTreeSet;
//!
//! # fn main() {
//! let g = gen::complete(4, 2);
//! let mut engine = NabEngine::new(g, NabConfig { f: 1, symbols: 8, seed: 7 }).unwrap();
//! let input = Value::from_u64s(&[1, 2, 3, 4, 5, 6, 7, 8]);
//! let report = engine
//!     .run_instance(&input, &BTreeSet::new(), &mut HonestStrategy)
//!     .unwrap();
//! assert!(report.outputs.values().all(|v| *v == input));
//! # }
//! ```

pub mod adversary;
pub mod bounds;
#[cfg(feature = "sanitize")]
pub mod detsan;
pub mod dispute;
pub mod engine;
pub mod equality;
pub mod netexec;
pub mod persist;
pub mod phase1;
pub mod phase2;
pub mod pipeline;
pub mod plan;
pub mod stats;
pub mod theory;
pub mod value;

pub use engine::{run_instances_batched, InstanceReport, NabConfig, NabEngine, NabError};
pub use netexec::{DeliveredTimes, NetExec};
pub use phase2::BroadcastKind;
pub use plan::{ExecutionPlan, PlanCache, PlanCacheStats, PlanFetch, PlanKey};
pub use value::Value;
