//! The analysis quantities of Sections 3 and 5: `Ω_k`, `U_k`, `ρ_k`,
//! `γ_k`, the reachable-graph family `Γ`, `γ*`, `ρ*`, the NAB throughput
//! lower bound (Eq. 6), and the capacity upper bound (Theorem 2).

use std::collections::BTreeSet;

use nab_netgraph::flow::{broadcast_rate, min_cut_undirected};
use nab_netgraph::{DiGraph, NodeId, UnGraph};

/// An unordered node pair, stored sorted.
pub type Pair = (NodeId, NodeId);

/// Normalizes an unordered pair.
pub fn pair(a: NodeId, b: NodeId) -> Pair {
    (a.min(b), a.max(b))
}

/// All `k`-element subsets of `items`, in lexicographic order.
pub fn k_subsets<T: Copy + Ord>(items: &[T], k: usize) -> Vec<BTreeSet<T>> {
    let mut out = Vec::new();
    if k > items.len() {
        return out;
    }
    let mut idx: Vec<usize> = (0..k).collect();
    loop {
        out.push(idx.iter().map(|&i| items[i]).collect());
        // Advance the combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if idx[i] != i + items.len() - k {
                break;
            }
            if i == 0 {
                return out;
            }
        }
        idx[i] += 1;
        for j in i + 1..k {
            idx[j] = idx[j - 1] + 1;
        }
    }
}

/// The set `Ω_k`: all `(n − f)`-node subsets of the active nodes of `g`
/// such that no two members have been found in dispute (Section 3).
///
/// `n` is the size of the graph's original node universe, per the paper.
pub fn omega_subsets(g: &DiGraph, f: usize, disputes: &BTreeSet<Pair>) -> Vec<BTreeSet<NodeId>> {
    let nodes: Vec<NodeId> = g.nodes().collect();
    let want = g.node_count().saturating_sub(f);
    k_subsets(&nodes, want)
        .into_iter()
        .filter(|h| {
            h.iter()
                .all(|&a| h.iter().all(|&b| a >= b || !disputes.contains(&pair(a, b))))
        })
        .collect()
}

/// `U_k`: the minimum pairwise min cut of the undirected views of all
/// subgraphs in `Ω_k`. `None` when `Ω_k` is empty or degenerate.
///
/// The all-pairs minimum inside each subgraph is its *global* min cut,
/// computed with Stoer–Wagner; the flow-based brute force remains as a
/// test oracle ([`u_k_brute_force`]).
pub fn u_k(g: &DiGraph, f: usize, disputes: &BTreeSet<Pair>) -> Option<u64> {
    let mut best: Option<u64> = None;
    for h_nodes in omega_subsets(g, f, disputes) {
        let h = g.induced_subgraph(&h_nodes);
        let uh = UnGraph::from_digraph(&h);
        if let Some(c) = nab_netgraph::globalcut::global_min_cut_value(&uh) {
            best = Some(best.map_or(c, |b| b.min(c)));
        }
    }
    best
}

/// Flow-based oracle for [`u_k`] (one max-flow per node pair per
/// subgraph). Exposed for tests and cross-validation only.
pub fn u_k_brute_force(g: &DiGraph, f: usize, disputes: &BTreeSet<Pair>) -> Option<u64> {
    let mut best: Option<u64> = None;
    for h_nodes in omega_subsets(g, f, disputes) {
        let h = g.induced_subgraph(&h_nodes);
        let uh = UnGraph::from_digraph(&h);
        let nodes: Vec<NodeId> = uh.nodes().collect();
        if nodes.len() < 2 {
            continue;
        }
        for i in 0..nodes.len() {
            for j in (i + 1)..nodes.len() {
                let c = min_cut_undirected(&uh, nodes[i], nodes[j]);
                best = Some(best.map_or(c, |b| b.min(c)));
            }
        }
    }
    best
}

/// `ρ_k = ⌊U_k / 2⌋`, the equality-check parameter for the current graph.
/// `None` when `U_k < 2` (the equality check needs at least one symbol per
/// link budget — such networks violate the paper's capacity assumptions).
pub fn rho_k(g: &DiGraph, f: usize, disputes: &BTreeSet<Pair>) -> Option<u64> {
    match u_k(g, f, disputes) {
        Some(u) if u >= 2 => Some(u / 2),
        _ => None,
    }
}

/// `γ_k = min_j MINCUT(G_k, source, j)`: the Phase-1 broadcast rate.
pub fn gamma_k(g: &DiGraph, source: NodeId) -> u64 {
    broadcast_rate(g, source)
}

/// `ρ* = ⌊U_1/2⌋` computed on the original graph with no disputes; this
/// lower-bounds every `ρ_k` because `Ω_k ⊆ Ω_1` (Appendix C.2).
pub fn rho_star(g: &DiGraph, f: usize) -> Option<u64> {
    rho_k(g, f, &BTreeSet::new())
}

/// Result of the `γ*` computation over the reachable-graph family `Γ`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GammaStar {
    /// The minimum broadcast rate over the family examined.
    pub value: u64,
    /// Whether the full dispute-pattern family was enumerated (`true`) or
    /// only the node-removal subfamily (`false`, used when the exact
    /// enumeration exceeds the work budget; the value is then an upper
    /// bound on the true `γ*`).
    pub exact: bool,
}

/// Computes `γ* = min_{G_k ∈ Γ} γ_k` (Section 5.1 / Appendix E).
///
/// `Γ` contains every graph reachable by dispute control: `G` minus the
/// edges of a dispute-pair set `D` that is *explainable* by some candidate
/// faulty set `F` (`|F| ≤ f` covering all pairs of `D`), minus the nodes
/// contained in **every** explanation of `D`. The enumeration is
/// exponential in the number of pairs incident to a candidate `F`;
/// `budget` caps the number of dispute sets examined before falling back to
/// the node-removal subfamily (`D` = all pairs incident to `F`).
pub fn gamma_star(g: &DiGraph, source: NodeId, f: usize, budget: usize) -> GammaStar {
    let nodes: Vec<NodeId> = g.nodes().collect();
    let mut best = broadcast_rate(g, source); // D = ∅ (i.e. Γ ∋ G itself)

    // Candidate faulty sets F of size 1..=f, excluding none a priori (the
    // source may be faulty; graphs without the source are excluded below).
    let mut candidate_f: Vec<BTreeSet<NodeId>> = Vec::new();
    for size in 1..=f {
        candidate_f.extend(k_subsets(&nodes, size));
    }

    // Enumerate dispute sets, deduplicated across F's.
    let mut seen: BTreeSet<Vec<Pair>> = BTreeSet::new();
    let mut exact = true;

    'outer: for fset in &candidate_f {
        let incident: Vec<Pair> = incident_pairs(g, fset);
        if incident.is_empty() {
            continue;
        }
        if (1usize << incident.len().min(24)) > budget || seen.len() >= budget {
            exact = false;
            break 'outer;
        }
        for mask in 1u64..(1u64 << incident.len()) {
            let d: Vec<Pair> = incident
                .iter()
                .enumerate()
                .filter(|(i, _)| mask >> i & 1 == 1)
                .map(|(_, &p)| p)
                .collect();
            if !seen.insert(d.clone()) {
                continue;
            }
            if seen.len() > budget {
                exact = false;
                break 'outer;
            }
            if let Some(rate) = psi_rate(g, source, f, &d, &nodes) {
                best = best.min(rate);
            }
        }
    }

    if !exact {
        // Node-removal subfamily: D = all pairs incident to F, which (for
        // graphs meeting the 2f+1-connectivity assumption) removes exactly
        // F. This is a superset-of-∅ subfamily, so the result upper-bounds
        // the true γ*.
        for fset in &candidate_f {
            if fset.contains(&source) {
                continue;
            }
            let keep: BTreeSet<NodeId> = nodes
                .iter()
                .copied()
                .filter(|v| !fset.contains(v))
                .collect();
            let sub = g.induced_subgraph(&keep);
            if sub.all_reachable_from(source) {
                best = best.min(broadcast_rate(&sub, source));
            } else {
                best = 0;
            }
        }
    }

    GammaStar { value: best, exact }
}

/// Pairs of adjacent nodes with at least one endpoint in `fset`.
fn incident_pairs(g: &DiGraph, fset: &BTreeSet<NodeId>) -> Vec<Pair> {
    let mut pairs = BTreeSet::new();
    for (_, e) in g.edges() {
        if fset.contains(&e.src) || fset.contains(&e.dst) {
            pairs.insert(pair(e.src, e.dst));
        }
    }
    pairs.into_iter().collect()
}

/// The broadcast rate of `Ψ(D)`: `g` minus the edges of the dispute pairs
/// `d`, minus the nodes present in every explanation of `d`. Returns `None`
/// when `Ψ(D)` does not contain the source (such graphs terminate NAB with
/// a default output and do not constrain throughput).
fn psi_rate(g: &DiGraph, source: NodeId, f: usize, d: &[Pair], nodes: &[NodeId]) -> Option<u64> {
    // Explanations: all subsets of size ≤ f covering every pair.
    let mut implied: Option<BTreeSet<NodeId>> = None;
    for size in 0..=f {
        for fset in k_subsets(nodes, size) {
            if d.iter()
                .all(|&(a, b)| fset.contains(&a) || fset.contains(&b))
            {
                implied = Some(match implied {
                    None => fset,
                    Some(acc) => acc.intersection(&fset).copied().collect(),
                });
            }
        }
    }
    let implied = implied?; // unexplainable D cannot arise
    if implied.contains(&source) {
        return None;
    }
    let mut psi = g.clone();
    for &(a, b) in d {
        psi.remove_edges_between(a, b);
    }
    for &v in &implied {
        psi.remove_node(v);
    }
    if !psi.is_active(source) {
        return None;
    }
    if !psi.all_reachable_from(source) {
        return Some(0);
    }
    Some(broadcast_rate(&psi, source))
}

/// The NAB throughput lower bound of Eq. 6: `γ*ρ*/(γ* + ρ*)`.
pub fn tnab_lower_bound(gamma_star: u64, rho_star: u64) -> f64 {
    if gamma_star == 0 || rho_star == 0 {
        return 0.0;
    }
    (gamma_star as f64 * rho_star as f64) / (gamma_star as f64 + rho_star as f64)
}

/// Theorem 2's capacity upper bound: `C_BB ≤ min(γ*, 2ρ*)`.
pub fn capacity_upper_bound(gamma_star: u64, rho_star: u64) -> u64 {
    gamma_star.min(2 * rho_star)
}

/// Everything Theorem 3 needs, bundled.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundsReport {
    /// `γ_1` on the original graph.
    pub gamma1: u64,
    /// `γ*` over the reachable family.
    pub gamma_star: GammaStar,
    /// `U_1` on the original graph.
    pub u1: u64,
    /// `ρ* = ⌊U_1/2⌋`.
    pub rho_star: u64,
    /// `γ*ρ*/(γ*+ρ*)` (Eq. 6).
    pub tnab_lower: f64,
    /// `min(γ*, 2ρ*)` (Theorem 2).
    pub capacity_upper: u64,
    /// `tnab_lower / capacity_upper` — Theorem 3 guarantees ≥ 1/3, and
    /// ≥ 1/2 when `γ* ≤ ρ*`.
    pub guaranteed_fraction: f64,
}

/// Computes the full bounds report for a network.
///
/// Returns `None` when `ρ*` is undefined (`U_1 < 2`).
pub fn bounds_report(g: &DiGraph, source: NodeId, f: usize, budget: usize) -> Option<BoundsReport> {
    let gamma1 = gamma_k(g, source);
    let gs = gamma_star(g, source, f, budget);
    let u1 = u_k(g, f, &BTreeSet::new())?;
    if u1 < 2 {
        return None;
    }
    let rs = u1 / 2;
    let t = tnab_lower_bound(gs.value, rs);
    let c = capacity_upper_bound(gs.value, rs);
    Some(BoundsReport {
        gamma1,
        gamma_star: gs,
        u1,
        rho_star: rs,
        tnab_lower: t,
        capacity_upper: c,
        guaranteed_fraction: if c == 0 { 0.0 } else { t / c as f64 },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nab_netgraph::gen;

    #[test]
    fn k_subsets_counts() {
        let items = [1, 2, 3, 4];
        assert_eq!(k_subsets(&items, 2).len(), 6);
        assert_eq!(k_subsets(&items, 0).len(), 1);
        assert_eq!(k_subsets(&items, 4).len(), 1);
        assert_eq!(k_subsets(&items, 5).len(), 0);
    }

    #[test]
    fn omega_on_paper_example() {
        // Figure 1(b): nodes 2,3 (ids 1,2) in dispute; n=4, f=1 → Ω_k has
        // exactly the two subgraphs {1,2,4} and {1,3,4} (ids {0,1,3} and
        // {0,2,3}).
        let g = gen::figure_1b();
        let disputes = BTreeSet::from([pair(1, 2)]);
        let omega = omega_subsets(&g, 1, &disputes);
        assert_eq!(omega.len(), 2);
        assert!(omega.contains(&BTreeSet::from([0, 1, 3])));
        assert!(omega.contains(&BTreeSet::from([0, 2, 3])));
    }

    #[test]
    fn uk_matches_brute_force_oracle() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(88);
        for _ in 0..8 {
            let g = gen::random_connected(5, 0.6, 3, &mut rng);
            assert_eq!(
                u_k(&g, 1, &BTreeSet::new()),
                u_k_brute_force(&g, 1, &BTreeSet::new())
            );
        }
        let disputes = BTreeSet::from([pair(1, 2)]);
        let g = gen::figure_1b();
        assert_eq!(u_k(&g, 1, &disputes), u_k_brute_force(&g, 1, &disputes));
    }

    #[test]
    fn uk_on_paper_example_is_2() {
        // The paper states U_k = 2 for this configuration.
        let g = gen::figure_1b();
        let disputes = BTreeSet::from([pair(1, 2)]);
        assert_eq!(u_k(&g, 1, &disputes), Some(2));
        assert_eq!(rho_k(&g, 1, &disputes), Some(1));
    }

    #[test]
    fn omega_without_disputes_is_all_subsets() {
        let g = gen::figure_1a();
        let omega = omega_subsets(&g, 1, &BTreeSet::new());
        assert_eq!(omega.len(), 4); // C(4,3)
    }

    #[test]
    fn gamma_star_on_complete_graph() {
        // K4 unit caps: γ_1 = 3. Removing a non-source node leaves K3 with
        // γ = 2; dispute subsets reduce further but never isolate anyone.
        let g = gen::complete(4, 1);
        let gs = gamma_star(&g, 0, 1, 1 << 20);
        assert!(gs.exact);
        assert!(
            gs.value >= 1,
            "K4 should keep positive rate, got {}",
            gs.value
        );
        assert!(gs.value <= 2);
    }

    #[test]
    fn gamma_star_never_exceeds_gamma1() {
        let g = gen::figure_1a();
        let gs = gamma_star(&g, 0, 1, 1 << 20);
        assert!(gs.value <= gamma_k(&g, 0));
    }

    #[test]
    fn budget_fallback_is_upper_bound() {
        let g = gen::complete(5, 2);
        let exact = gamma_star(&g, 0, 1, 1 << 22);
        let approx = gamma_star(&g, 0, 1, 2);
        assert!(exact.exact);
        assert!(!approx.exact);
        assert!(approx.value >= exact.value);
    }

    #[test]
    fn tnab_and_capacity_formulas() {
        assert_eq!(tnab_lower_bound(2, 2), 1.0);
        assert_eq!(tnab_lower_bound(6, 3), 2.0);
        assert_eq!(tnab_lower_bound(0, 5), 0.0);
        assert_eq!(capacity_upper_bound(5, 2), 4);
        assert_eq!(capacity_upper_bound(3, 2), 3);
    }

    #[test]
    fn theorem3_fraction_on_families() {
        // Theorem 3: the guaranteed fraction is ≥ 1/3 always, ≥ 1/2 when
        // γ* ≤ ρ*.
        for g in [gen::complete(4, 1), gen::complete(4, 3), gen::figure_1a()] {
            let Some(rep) = bounds_report(&g, 0, 1, 1 << 20) else {
                continue;
            };
            assert!(
                rep.guaranteed_fraction >= 1.0 / 3.0 - 1e-9,
                "fraction {} below 1/3 on {g:?}",
                rep.guaranteed_fraction
            );
            if rep.gamma_star.value <= rep.rho_star {
                assert!(rep.guaranteed_fraction >= 0.5 - 1e-9);
            }
        }
    }

    #[test]
    fn bounds_report_fields_consistent() {
        let g = gen::complete(4, 2);
        let rep = bounds_report(&g, 0, 1, 1 << 20).unwrap();
        assert_eq!(rep.rho_star, rep.u1 / 2);
        assert!(rep.gamma_star.value <= rep.gamma1);
        assert!(rep.capacity_upper <= rep.gamma_star.value.min(2 * rep.rho_star));
        assert!((0.0..=1.0).contains(&rep.guaranteed_fraction));
    }
}
