//! Message-level execution: replays the phases' exact send sets through
//! the `nab-net` discrete-event kernel, producing latency-aware phase
//! durations and per-phase delivered-time distributions.
//!
//! The protocol logic itself is untouched — outputs, flags, disputes,
//! and `G_k` evolution come from the synchronous path as always; this
//! layer re-times the *same messages* under a [`NetModel`] (latency,
//! jitter, loss with bounded retransmit). The paper's protocol is
//! synchronous, so phases and broadcast rounds are barrier-sequenced:
//! a phase (or BB round) begins when the previous one has fully
//! completed everywhere, and *within* it messages flow through FIFO
//! link serialization plus sampled propagation delay. Under the zero
//! model (zero latency, lossless) every phase duration collapses to the
//! synchronous formula charge — pinned by the cross-check test below.

use std::collections::BTreeMap;

use nab_gf::Gf2_16;
use nab_net::{mix, EventNet, UNIT_NS};
use nab_netgraph::arborescence::Arborescence;
use nab_netgraph::{DiGraph, NodeId};
use nab_obs::metrics::Histogram;
use nab_sim::Transcript;

use crate::engine::PhaseTimes;
use crate::value::SYMBOL_BITS;

/// Message-level execution config: the link models plus the seed all
/// jitter/loss randomness derives from (per-instance streams are mixed
/// from it; never wall-clock).
#[derive(Debug, Clone, PartialEq)]
pub struct NetExec {
    /// Per-link latency/jitter/loss models.
    pub model: nab_net::NetModel,
    /// Base seed for all sampled delays and losses.
    pub seed: u64,
}

/// Per-phase delivered-time distributions of message-level execution,
/// in virtual nanoseconds relative to each phase's start (`instance` is
/// the whole-instance completion time). Merging is commutative, so
/// per-job aggregation is thread-order invariant.
#[derive(Debug, Clone, PartialEq)]
pub struct DeliveredTimes {
    /// Phase-1 block deliveries (per arborescence edge, tail-arrival).
    pub phase1: Histogram,
    /// Equality-check symbol deliveries.
    pub equality: Histogram,
    /// Flag-broadcast message deliveries.
    pub flags: Histogram,
    /// Dispute-control claim-broadcast deliveries.
    pub dispute: Histogram,
    /// Whole-instance completion times.
    pub instance: Histogram,
}

impl Default for DeliveredTimes {
    fn default() -> Self {
        DeliveredTimes {
            phase1: Histogram::new(),
            equality: Histogram::new(),
            flags: Histogram::new(),
            dispute: Histogram::new(),
            instance: Histogram::new(),
        }
    }
}

impl DeliveredTimes {
    /// Accumulates another instance's (or job's) distributions.
    pub fn merge(&mut self, other: &DeliveredTimes) {
        self.phase1.merge(&other.phase1);
        self.equality.merge(&other.equality);
        self.flags.merge(&other.flags);
        self.dispute.merge(&other.dispute);
        self.instance.merge(&other.instance);
    }

    /// Named access to every distribution, in serialization order.
    pub fn phases(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("phase1", &self.phase1),
            ("equality", &self.equality),
            ("flags", &self.flags),
            ("dispute", &self.dispute),
            ("instance", &self.instance),
        ]
    }
}

/// Flattens a recorded transcript into per-round send lists
/// `(src, dst, bits)` for replay.
pub(crate) fn transcript_rounds<M>(t: &Transcript<M>) -> Vec<Vec<(NodeId, NodeId, u64)>> {
    t.rounds
        .iter()
        .map(|r| r.sends.iter().map(|s| (s.src, s.dst, s.bits)).collect())
        .collect()
}

/// Everything the replay needs from one executed instance. Send sets
/// are the *actual* transmissions (adversarial corruption included —
/// corrupted blocks have the same sizes, so timing sees the same load).
pub(crate) struct ReplayInput<'a> {
    /// `G_k` the streaming phases ran on.
    pub gk: &'a DiGraph,
    /// The original network the BB phases route over.
    pub g0: &'a DiGraph,
    /// The arborescences of Phase 1 (for tail-arrival causality).
    pub trees: &'a [Arborescence],
    /// Phase-1 blocks per `(tree, src, dst)`.
    pub p1_sends: &'a BTreeMap<(usize, NodeId, NodeId), crate::phase1::Block>,
    /// Equality-check symbols per link; `None` when the phase did not run.
    pub eq_sends: Option<&'a BTreeMap<(NodeId, NodeId), Vec<Gf2_16>>>,
    /// Flag-broadcast rounds (from the `NetSim` transcript).
    pub flag_rounds: &'a [Vec<(NodeId, NodeId, u64)>],
    /// Dispute claim-broadcast rounds; empty when no dispute ran.
    pub dispute_rounds: &'a [Vec<(NodeId, NodeId, u64)>],
}

/// Replays one instance's messages through the event kernel, returning
/// latency-aware [`PhaseTimes`] (in the formula path's time units) and
/// the delivered-time distributions.
pub(crate) fn replay_instance(
    nx: &NetExec,
    instance: u64,
    inp: &ReplayInput<'_>,
) -> (PhaseTimes, DeliveredTimes) {
    let seed = mix(nx.seed, instance);
    let mut delivered = DeliveredTimes::default();

    let p1_end = replay_phase1(nx, mix(seed, 0xF1A5E1), inp, &mut delivered.phase1);
    let eq_end = match inp.eq_sends {
        Some(sends) => {
            let round: Vec<(NodeId, NodeId, u64)> = sends
                .iter()
                .map(|(&(src, dst), block)| (src, dst, block.len() as u64 * SYMBOL_BITS))
                .collect();
            replay_rounds(
                nx,
                mix(seed, 0xE0),
                inp.gk,
                std::slice::from_ref(&round),
                &mut delivered.equality,
            )
        }
        None => 0,
    };
    let flags_end = replay_rounds(
        nx,
        mix(seed, 0xF1),
        inp.g0,
        inp.flag_rounds,
        &mut delivered.flags,
    );
    let dispute_end = replay_rounds(
        nx,
        mix(seed, 0xD1),
        inp.g0,
        inp.dispute_rounds,
        &mut delivered.dispute,
    );

    delivered
        .instance
        .record(p1_end + eq_end + flags_end + dispute_end);
    let units = |ns: u64| ns as f64 / UNIT_NS as f64;
    (
        PhaseTimes {
            phase1: units(p1_end),
            equality: units(eq_end),
            flags: units(flags_end),
            dispute: units(dispute_end),
        },
        delivered,
    )
}

/// Replays Phase 1's streamed blocks. All tree edges transmit
/// concurrently (the paper's cut-through streaming model); a node's
/// block on tree `t` counts as delivered no earlier than its parent's
/// (the tail of a stream cannot overtake the stream), which is how
/// per-hop latency accumulates down each arborescence.
fn replay_phase1(nx: &NetExec, seed: u64, inp: &ReplayInput<'_>, hist: &mut Histogram) -> u64 {
    if inp.p1_sends.is_empty() {
        return 0;
    }
    let mut net = EventNet::new(inp.gk, nx.model.clone(), seed);
    for (&(t, src, dst), block) in inp.p1_sends {
        net.schedule(t as u64, src, dst, block.len() as u64 * SYMBOL_BITS, 0);
    }
    let mut by_edge: BTreeMap<(u64, NodeId, NodeId), u64> = BTreeMap::new();
    for d in net.run() {
        by_edge.insert((d.id, d.src, d.dst), d.delivered_ns);
    }
    let mut end = 0;
    for (t, tree) in inp.trees.iter().enumerate() {
        let mut done: BTreeMap<NodeId, u64> = BTreeMap::new();
        for u in tree.bfs_order() {
            let du = done.get(&u).copied().unwrap_or(0);
            for child in tree.children(u) {
                let arrived = by_edge
                    .get(&(t as u64, u, child))
                    .copied()
                    .unwrap_or(du)
                    .max(du);
                done.insert(child, arrived);
                hist.record(arrived);
                end = end.max(arrived);
            }
        }
    }
    end
}

/// Replays a sequence of barrier-synchronized rounds on `g`, recording
/// every delivery (offset to the phase start) and returning the phase's
/// completion time.
fn replay_rounds(
    nx: &NetExec,
    seed: u64,
    g: &DiGraph,
    rounds: &[Vec<(NodeId, NodeId, u64)>],
    hist: &mut Histogram,
) -> u64 {
    let mut offset = 0u64;
    for (i, round) in rounds.iter().enumerate() {
        if round.is_empty() {
            continue;
        }
        let mut net = EventNet::new(g, nx.model.clone(), mix(seed, i as u64));
        for (id, &(src, dst, bits)) in round.iter().enumerate() {
            net.schedule(id as u64, src, dst, bits, 0);
        }
        for d in net.run() {
            hist.record(offset + d.delivered_ns);
        }
        offset += net.clock_ns();
    }
    offset
}
