//! Pipelining with propagation delays (Appendix D, Figure 3).
//!
//! With store-and-forward propagation, Phase 1's information travels one
//! hop per `L/γ` time units, so one instance takes `depth · L/γ + L/ρ + O(n^α)`
//! — much worse than the zero-delay model for deep trees. Appendix D's fix:
//! divide time into rounds of `L/γ* + L/ρ* + O(n^α)` and pipeline
//! successive instances hop-by-hop, so for `Q → ∞` the throughput returns
//! to `(L/γ* + L/ρ* + O(n^α))^{-1} · L` — the zero-delay bound of Eq. 6.

/// Cost model for one NAB deployment under propagation delays.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PipelineModel {
    /// Input size in bits.
    pub l_bits: f64,
    /// Phase-1 rate `γ*`.
    pub gamma: f64,
    /// Equality-check rate `ρ*`.
    pub rho: f64,
    /// Per-instance constant overhead (flag broadcasts, `O(n^α)`).
    pub overhead: f64,
    /// Maximum arborescence depth (hops from the source).
    pub depth: usize,
}

impl PipelineModel {
    /// Length of one pipelined round: `L/γ + L/ρ + overhead`.
    pub fn round_len(&self) -> f64 {
        self.l_bits / self.gamma + self.l_bits / self.rho + self.overhead
    }

    /// Time for one instance *without* pipelining: the broadcast crawls
    /// hop-by-hop, then the equality check runs.
    pub fn unpipelined_instance_time(&self) -> f64 {
        self.depth as f64 * (self.l_bits / self.gamma) + self.l_bits / self.rho + self.overhead
    }

    /// Total time for `q` instances without pipelining.
    pub fn unpipelined_total(&self, q: usize) -> f64 {
        q as f64 * self.unpipelined_instance_time()
    }

    /// Total time for `q` pipelined instances: the pipeline fills over
    /// `depth` rounds, then completes one instance per round.
    pub fn pipelined_total(&self, q: usize) -> f64 {
        if q == 0 {
            return 0.0;
        }
        (q as f64 + self.depth as f64 - 1.0) * self.round_len()
    }

    /// Throughput of `q` unpipelined instances.
    pub fn unpipelined_throughput(&self, q: usize) -> f64 {
        if q == 0 {
            return 0.0;
        }
        (q as f64 * self.l_bits) / self.unpipelined_total(q)
    }

    /// Throughput of `q` pipelined instances.
    pub fn pipelined_throughput(&self, q: usize) -> f64 {
        if q == 0 {
            return 0.0;
        }
        (q as f64 * self.l_bits) / self.pipelined_total(q)
    }

    /// The `Q → ∞` pipelined throughput: `L / round_len` — with zero
    /// overhead this is exactly Eq. 6's `γρ/(γ+ρ)`.
    pub fn asymptotic_throughput(&self) -> f64 {
        self.l_bits / self.round_len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(depth: usize) -> PipelineModel {
        PipelineModel {
            l_bits: 1200.0,
            gamma: 3.0,
            rho: 2.0,
            overhead: 10.0,
            depth,
        }
    }

    #[test]
    fn asymptotic_matches_eq6_when_overhead_vanishes() {
        let m = PipelineModel {
            overhead: 0.0,
            ..model(3)
        };
        let eq6 = (m.gamma * m.rho) / (m.gamma + m.rho);
        assert!((m.asymptotic_throughput() - eq6).abs() < 1e-9);
    }

    #[test]
    fn pipelining_beats_store_and_forward_for_deep_trees() {
        let m = model(4);
        let q = 100;
        assert!(m.pipelined_throughput(q) > m.unpipelined_throughput(q));
    }

    #[test]
    fn depth_one_pipelining_is_free() {
        // With a single hop there is nothing to pipeline; both models agree
        // as q grows.
        let m = model(1);
        let q = 10_000;
        let rel = (m.pipelined_throughput(q) - m.unpipelined_throughput(q)).abs()
            / m.pipelined_throughput(q);
        assert!(rel < 1e-3, "rel={rel}");
    }

    #[test]
    fn pipelined_throughput_converges_from_below() {
        let m = model(5);
        let t10 = m.pipelined_throughput(10);
        let t100 = m.pipelined_throughput(100);
        let t_inf = m.asymptotic_throughput();
        assert!(t10 < t100 && t100 < t_inf);
        assert!((m.pipelined_throughput(1_000_000) - t_inf).abs() / t_inf < 1e-4);
    }

    #[test]
    fn zero_instances_zero_time() {
        let m = model(3);
        assert_eq!(m.pipelined_total(0), 0.0);
        assert_eq!(m.unpipelined_throughput(0), 0.0);
        assert_eq!(m.pipelined_throughput(0), 0.0);
    }

    #[test]
    fn unpipelined_time_grows_with_depth() {
        assert!(model(6).unpipelined_instance_time() > model(2).unpipelined_instance_time());
    }
}
