//! Byzantine strategies for NAB simulations.
//!
//! The failure model (Section 1): up to `f` nodes are controlled by an
//! adversary with full knowledge of the topology, the algorithm (including
//! the coding matrices), and the source's input. A [`NabAdversary`]
//! receives a hook at every point where a faulty node chooses what to
//! transmit; the default implementations follow the protocol, so a
//! strategy overrides only the hooks it attacks.
//!
//! Within the classic-BB sub-protocol (flag and claim broadcasts) faulty
//! nodes may lie about their *own* inputs through the [`NabAdversary::flag`]
//! and [`NabAdversary::claims`] hooks; equivocation *inside* EIG relaying
//! is exercised separately by the `nab-bb` crate's tests (EIG tolerates it
//! by construction, so it cannot affect NAB's outcome).

use nab_gf::field::Field;
use nab_gf::Gf2_16;
use nab_netgraph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::dispute::NodeClaims;

/// Decision points for a faulty node during one NAB instance.
pub trait NabAdversary {
    /// Block the faulty *source* sends to `child` on arborescence `tree`
    /// (equivocation hook).
    fn phase1_source_block(
        &mut self,
        tree: usize,
        child: NodeId,
        honest: &[Gf2_16],
    ) -> Vec<Gf2_16> {
        let _ = (tree, child);
        honest.to_vec()
    }

    /// Block a faulty relay forwards to `child` on `tree` after receiving
    /// `honest`.
    fn phase1_forward(
        &mut self,
        node: NodeId,
        tree: usize,
        child: NodeId,
        honest: &[Gf2_16],
    ) -> Vec<Gf2_16> {
        let _ = (node, tree, child);
        honest.to_vec()
    }

    /// Coded symbols a faulty node puts on edge `(src, dst)` during the
    /// equality check.
    fn equality_symbols(&mut self, src: NodeId, dst: NodeId, honest: &[Gf2_16]) -> Vec<Gf2_16> {
        let _ = (src, dst);
        honest.to_vec()
    }

    /// The 1-bit flag a faulty node announces in step 2.2.
    fn flag(&mut self, node: NodeId, honest: bool) -> bool {
        let _ = node;
        honest
    }

    /// The claims a faulty node broadcasts during dispute control.
    fn claims(&mut self, node: NodeId, honest: &NodeClaims) -> NodeClaims {
        let _ = node;
        honest.clone()
    }
}

/// Faulty nodes follow the protocol exactly (baseline for fault-free runs
/// and for "crash-like" faulty sets).
#[derive(Debug, Clone, Default)]
pub struct HonestStrategy;

impl NabAdversary for HonestStrategy {}

/// Corrupts the first symbol of every block it forwards in Phase 1, then
/// *tells the truth* during dispute control — the DC3 determinism check
/// exposes it directly.
#[derive(Debug, Clone, Default)]
pub struct TruthfulCorruptor;

impl NabAdversary for TruthfulCorruptor {
    fn phase1_forward(&mut self, _: NodeId, _: usize, _: NodeId, honest: &[Gf2_16]) -> Vec<Gf2_16> {
        corrupt_first(honest)
    }
}

/// Corrupts Phase-1 forwards and then *lies* in dispute control, claiming
/// it forwarded faithfully — DC2 then pins it in a dispute pair with the
/// downstream receiver.
#[derive(Debug, Clone, Default)]
pub struct LyingCorruptor;

impl NabAdversary for LyingCorruptor {
    fn phase1_forward(&mut self, _: NodeId, _: usize, _: NodeId, honest: &[Gf2_16]) -> Vec<Gf2_16> {
        corrupt_first(honest)
    }

    fn claims(&mut self, _: NodeId, honest: &NodeClaims) -> NodeClaims {
        // Claim the prescribed (uncorrupted) forwards: sends = receives.
        let mut c = honest.clone();
        for ((tree, _), block) in honest.p1_received.clone() {
            for (key, sent) in c.p1_sent.iter_mut() {
                if key.0 == tree {
                    *sent = block.clone();
                }
            }
        }
        c
    }
}

/// A faulty *source* that sends different inputs down different
/// arborescences (splits the fault-free nodes' views).
#[derive(Debug, Clone, Default)]
pub struct EquivocatingSource;

impl NabAdversary for EquivocatingSource {
    fn phase1_source_block(
        &mut self,
        tree: usize,
        _child: NodeId,
        honest: &[Gf2_16],
    ) -> Vec<Gf2_16> {
        if tree == 0 {
            corrupt_first(honest)
        } else {
            honest.to_vec()
        }
    }
}

/// Announces MISMATCH even when everything checked out, forcing pointless
/// dispute-control rounds — the amortization attack the `f(f+1)` bound
/// caps.
#[derive(Debug, Clone, Default)]
pub struct FalseAlarm;

impl NabAdversary for FalseAlarm {
    fn flag(&mut self, _: NodeId, _: bool) -> bool {
        true
    }
}

/// Sends garbage coded symbols in the equality check while Phase 1 ran
/// clean — detected as misbehavior in Phase 2 per Section 3's second
/// consequence.
#[derive(Debug, Clone, Default)]
pub struct EqualityGarbler;

impl NabAdversary for EqualityGarbler {
    fn equality_symbols(&mut self, _: NodeId, _: NodeId, honest: &[Gf2_16]) -> Vec<Gf2_16> {
        corrupt_first(honest)
    }
}

/// Randomized adversary: each hook corrupts with probability `p`.
#[derive(Debug, Clone)]
pub struct RandomStrategy {
    rng: StdRng,
    /// Per-hook corruption probability.
    pub p: f64,
}

impl RandomStrategy {
    /// Creates a randomized strategy with corruption probability `p`.
    pub fn new(seed: u64, p: f64) -> Self {
        RandomStrategy {
            rng: StdRng::seed_from_u64(seed),
            p,
        }
    }

    fn maybe_corrupt(&mut self, honest: &[Gf2_16]) -> Vec<Gf2_16> {
        if self.rng.gen_bool(self.p) && !honest.is_empty() {
            let idx = self.rng.gen_range(0..honest.len());
            let mut out = honest.to_vec();
            out[idx] = out[idx].add(Gf2_16::from_u64(self.rng.gen_range(1..=0xFFFF)));
            out
        } else {
            honest.to_vec()
        }
    }
}

impl NabAdversary for RandomStrategy {
    fn phase1_source_block(&mut self, _: usize, _: NodeId, honest: &[Gf2_16]) -> Vec<Gf2_16> {
        self.maybe_corrupt(honest)
    }

    fn phase1_forward(&mut self, _: NodeId, _: usize, _: NodeId, honest: &[Gf2_16]) -> Vec<Gf2_16> {
        self.maybe_corrupt(honest)
    }

    fn equality_symbols(&mut self, _: NodeId, _: NodeId, honest: &[Gf2_16]) -> Vec<Gf2_16> {
        self.maybe_corrupt(honest)
    }

    fn flag(&mut self, _: NodeId, honest: bool) -> bool {
        if self.rng.gen_bool(self.p) {
            !honest
        } else {
            honest
        }
    }
}

/// A *colluding framing* strategy for two faulty nodes: the first corrupts
/// Phase-1 blocks, and during dispute control **both** lie in a coordinated
/// way designed to implicate an innocent third node `scapegoat` — each
/// claims to have received corrupted data from it.
///
/// Dispute control is sound against this: claims about traffic *between
/// two fault-free nodes* always cross-check (links are reliable and honest
/// claims are truthful), so the fabricated receive-claims only create
/// disputes between the liars and the scapegoat — pairs that genuinely
/// contain a faulty endpoint — and can never get the scapegoat *removed*
/// (it is not in every explanation). The engine tests assert exactly this.
#[derive(Debug, Clone)]
pub struct FramingCollusion {
    /// The fault-free node the colluders try to frame.
    pub scapegoat: NodeId,
    /// Which faulty node corrupts Phase 1 (the other only lies in claims).
    pub corruptor: NodeId,
}

impl NabAdversary for FramingCollusion {
    fn phase1_forward(
        &mut self,
        node: NodeId,
        _: usize,
        _: NodeId,
        honest: &[Gf2_16],
    ) -> Vec<Gf2_16> {
        if node == self.corruptor {
            corrupt_first(honest)
        } else {
            honest.to_vec()
        }
    }

    fn claims(&mut self, _: NodeId, honest: &NodeClaims) -> NodeClaims {
        let mut c = honest.clone();
        // Fabricate: "the scapegoat sent me garbage" — alter every
        // receive-claim attributed to the scapegoat.
        for ((_, from), block) in c.p1_received.iter_mut() {
            if *from == self.scapegoat {
                *block = corrupt_first(block);
            }
        }
        if let Some(sym) = c.eq_received.get_mut(&self.scapegoat) {
            *sym = corrupt_first(sym);
        }
        // And hide the corruptor's own misdeed: claim prescribed forwards.
        for ((tree, _), block) in honest.p1_received.clone() {
            for (key, sent) in c.p1_sent.iter_mut() {
                if key.0 == tree {
                    *sent = block.clone();
                }
            }
        }
        c
    }
}

/// Flips the first symbol (or appends one to an empty block).
fn corrupt_first(honest: &[Gf2_16]) -> Vec<Gf2_16> {
    let mut out = honest.to_vec();
    if let Some(first) = out.first_mut() {
        *first = first.add(Gf2_16::ONE);
    } else {
        out.push(Gf2_16::ONE);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_strategy_is_identity() {
        let mut s = HonestStrategy;
        let block = vec![Gf2_16(3), Gf2_16(4)];
        assert_eq!(s.phase1_forward(1, 0, 2, &block), block);
        assert_eq!(s.equality_symbols(1, 2, &block), block);
        assert!(!s.flag(1, false));
        assert!(s.flag(1, true));
    }

    #[test]
    fn corruptors_change_blocks() {
        let block = vec![Gf2_16(3), Gf2_16(4)];
        assert_ne!(TruthfulCorruptor.phase1_forward(1, 0, 2, &block), block);
        assert_ne!(LyingCorruptor.phase1_forward(1, 0, 2, &block), block);
        assert_ne!(EqualityGarbler.equality_symbols(1, 2, &block), block);
    }

    #[test]
    fn equivocating_source_splits_trees() {
        let mut s = EquivocatingSource;
        let block = vec![Gf2_16(7)];
        assert_ne!(s.phase1_source_block(0, 1, &block), block);
        assert_eq!(s.phase1_source_block(1, 1, &block), block);
    }

    #[test]
    fn false_alarm_always_mismatches() {
        let mut s = FalseAlarm;
        assert!(s.flag(3, false));
    }

    #[test]
    fn lying_corruptor_claims_faithful_forwarding() {
        let mut s = LyingCorruptor;
        let mut honest = NodeClaims::default();
        honest.p1_received.insert((0, 0), vec![Gf2_16(9)]);
        honest.p1_sent.insert((0, 2), vec![Gf2_16(10)]); // actually corrupted
        let lied = s.claims(1, &honest);
        assert_eq!(
            lied.p1_sent[&(0, 2)],
            vec![Gf2_16(9)],
            "claims the clean block"
        );
    }

    #[test]
    fn random_strategy_with_p1_always_corrupts() {
        let mut s = RandomStrategy::new(1, 1.0);
        let block = vec![Gf2_16(5), Gf2_16(6)];
        assert_ne!(s.phase1_forward(0, 0, 1, &block), block);
        assert!(s.flag(0, false));
    }

    #[test]
    fn random_strategy_with_p0_is_honest() {
        let mut s = RandomStrategy::new(1, 0.0);
        let block = vec![Gf2_16(5)];
        assert_eq!(s.phase1_forward(0, 0, 1, &block), block);
        assert!(!s.flag(0, false));
    }
}
