//! The NAB execution engine: orchestrates Phases 1–3 across repeated
//! instances, evolving `G_k` through dispute control (Section 2).
//!
//! One-time network setup (validation, γ₁/ρ₁, arborescence packing, the
//! disjoint-path router) lives in the planning layer
//! ([`crate::plan::ExecutionPlan`]); the engine borrows a plan via
//! [`Arc`] and keeps only per-instance state, so many engines — a sweep
//! job's interleaved streams, or every job of a grid sharing a topology —
//! execute against one shared plan.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use nab_bb::baselines::RoutedChannel;
use nab_bb::router::Routed;
use nab_netgraph::arborescence::{pack_arborescences, pack_arborescences_naive, Arborescence};
use nab_netgraph::{DiGraph, NodeId};
use nab_obs::trace::{self, EventKind, InstanceSpan, Phase, PhaseSpan};
use nab_sim::NetSim;

use crate::adversary::NabAdversary;
use crate::bounds::{gamma_k, rho_k, Pair};
use crate::dispute::{dc2_disputes, dc3_exposed, DisputeState, NodeClaims};
use crate::equality::CodingScheme;
use crate::netexec::{self, DeliveredTimes, NetExec, ReplayInput};
use crate::phase1::run_phase1;
use crate::phase2::{
    broadcast_value, honest_claims, run_equality_phase, run_flag_broadcast, BroadcastKind,
};
use crate::plan::ExecutionPlan;
use crate::value::Value;

/// The broadcast source — the paper's "node 1" is node 0 here.
pub const SOURCE: NodeId = 0;

/// Static configuration of a NAB deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NabConfig {
    /// Upper bound on the number of faulty nodes over the system lifetime.
    pub f: usize,
    /// Input size per instance in 16-bit symbols (`L = 16 · symbols`).
    pub symbols: usize,
    /// Seed for the per-instance coding matrices (public, part of the
    /// algorithm specification).
    pub seed: u64,
}

/// Errors detectable at setup or between instances.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NabError {
    /// Fewer than `3f + 1` nodes.
    TooManyFaults {
        /// Nodes in the network.
        n: usize,
        /// Configured fault bound.
        f: usize,
    },
    /// Vertex connectivity below `2f + 1`.
    InsufficientConnectivity,
    /// `U_k < 2`: no integer equality-check parameter exists.
    NoEqualityParameter,
    /// Input has the wrong number of symbols.
    WrongInputSize {
        /// Expected symbol count.
        expect: usize,
        /// Provided symbol count.
        got: usize,
    },
    /// Edmonds arborescence packing failed at the computed broadcast
    /// rate — a planning failure that carries the topology/rate context
    /// so a bad scenario reports cleanly instead of aborting a sweep.
    ArborescencePacking {
        /// Active nodes of the graph being planned.
        n: usize,
        /// Live edges of the graph being planned.
        edges: usize,
        /// The rate `γ` the packing was attempted at.
        gamma: u64,
    },
    /// [`NabEngine::from_plan`] was given a plan built for a different
    /// fault bound than the configuration asks for.
    PlanMismatch {
        /// The plan's fault bound.
        plan_f: usize,
        /// The configuration's fault bound.
        cfg_f: usize,
    },
}

impl std::fmt::Display for NabError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            NabError::TooManyFaults { n, f: ff } => {
                write!(f, "need n ≥ 3f+1: n={n}, f={ff}")
            }
            NabError::InsufficientConnectivity => {
                write!(f, "network connectivity below 2f+1")
            }
            NabError::NoEqualityParameter => {
                write!(f, "U_k < 2: equality check has no valid ρ")
            }
            NabError::WrongInputSize { expect, got } => {
                write!(f, "input must have {expect} symbols, got {got}")
            }
            NabError::ArborescencePacking { n, edges, gamma } => {
                write!(
                    f,
                    "Edmonds packing failed at rate γ={gamma} on a {n}-node, \
                     {edges}-edge graph (the rate should be achievable; this \
                     indicates an inconsistent topology)"
                )
            }
            NabError::PlanMismatch { plan_f, cfg_f } => {
                write!(
                    f,
                    "execution plan was built for f={plan_f} but the \
                     configuration asks for f={cfg_f}"
                )
            }
        }
    }
}

impl std::error::Error for NabError {}

/// Per-phase wall-clock breakdown of one instance.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTimes {
    /// Phase 1 unreliable broadcast (`≈ L/γ_k`).
    pub phase1: f64,
    /// Equality check (`≈ L/ρ_k`).
    pub equality: f64,
    /// Flag broadcasts (the `O(n^α)` term).
    pub flags: f64,
    /// Dispute control (0 when not triggered).
    pub dispute: f64,
}

impl PhaseTimes {
    /// Total instance time.
    pub fn total(&self) -> f64 {
        self.phase1 + self.equality + self.flags + self.dispute
    }
}

/// Per-phase **wall-clock** nanoseconds of one instance — how long the
/// simulator itself took, as opposed to [`PhaseTimes`], which is the
/// *simulated* link-time model. This is the raw material of the perf
/// report (`BENCH_sweep.json`): summed per job by the sweep runner and
/// serialized when timings are requested.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseWallNanos {
    /// Phase 1 (arborescence streaming).
    pub phase1: u64,
    /// Equality check (coding-matrix generation + encode/check).
    pub equality: u64,
    /// Flag broadcasts.
    pub flags: u64,
    /// Dispute control (claims broadcast + DC2/DC3), 0 when not run.
    pub dispute: u64,
}

impl PhaseWallNanos {
    /// Accumulates another instance's breakdown.
    ///
    /// (There is deliberately no `total()` here: the per-job total the
    /// sweep report serializes is `JobMetrics::wall_ns`, which also
    /// covers engine setup and input generation — a phase-sum "total"
    /// would silently disagree with it.)
    pub fn accumulate(&mut self, other: &PhaseWallNanos) {
        self.phase1 += other.phase1;
        self.equality += other.equality;
        self.flags += other.flags;
        self.dispute += other.dispute;
    }
}

/// Everything observable about one NAB instance.
#[derive(Debug, Clone)]
pub struct InstanceReport {
    /// Output value decided by each *fault-free* node (faulty nodes'
    /// entries are present but meaningless).
    pub outputs: BTreeMap<NodeId, Value>,
    /// Simulated-time breakdown.
    pub times: PhaseTimes,
    /// Measured wall-clock breakdown (nanoseconds).
    pub wall: PhaseWallNanos,
    /// `γ_k` used for Phase 1.
    pub gamma_k: u64,
    /// `ρ_k` used for the equality check.
    pub rho_k: u64,
    /// Whether any agreed flag was MISMATCH.
    pub mismatch_detected: bool,
    /// Whether dispute control executed.
    pub dispute_ran: bool,
    /// New dispute pairs found this instance.
    pub new_pairs: Vec<Pair>,
    /// Nodes newly excluded as faulty.
    pub newly_removed: Vec<NodeId>,
    /// Whether the fast path (source known faulty → default output) ran.
    pub defaulted: bool,
    /// Per-phase delivered-time distributions from message-level
    /// execution; `None` on the default formula path (or when the
    /// instance defaulted before any message was sent).
    pub delivered: Option<DeliveredTimes>,
}

/// Counters for per-`G_k` replanning work (see
/// [`NabEngine::repair_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Replans resolved by incremental repair: the γ/ρ bounds survived the
    /// dispute, so the packing was patched by the witness-incremental
    /// packer without touching the bounds.
    pub repairs: u64,
    /// Replans where a γ or ρ bound actually changed, forcing the full
    /// recompute fallback.
    pub full_recomputes: u64,
    /// Total wall nanoseconds spent replanning (repairs + recomputes).
    pub repair_ns: u64,
}

impl RepairStats {
    /// Accumulates another engine's counters (sweep aggregation).
    pub fn accumulate(&mut self, other: &RepairStats) {
        self.repairs += other.repairs;
        self.full_recomputes += other.full_recomputes;
        self.repair_ns += other.repair_ns;
    }
}

/// Memoized per-`G_k` planning artifacts, keyed by the dispute state that
/// produced them. Derivation is a deterministic function of
/// `(G_1, pairs, removed)`, so reuse across instances is bit-identical to
/// recomputing every time — it only removes redundant work.
#[derive(Debug, Clone)]
struct GkMemo {
    pairs: BTreeSet<Pair>,
    removed: BTreeSet<NodeId>,
    gamma: u64,
    trees: Arc<Vec<Arborescence>>,
    /// `ρ_k`, filled lazily on the first instance that reaches Phase 2
    /// under this dispute state (earlier phases never need it).
    rho: Option<u64>,
    /// Whether this derivation was counted as a repair (γ unchanged); a
    /// later ρ change reclassifies it as a full recompute.
    counted_repair: bool,
}

/// The NAB protocol engine (execution layer).
///
/// Create one engine per deployment and call
/// [`NabEngine::run_instance`] repeatedly; dispute state carries across
/// instances exactly as the paper's `G_k` evolution prescribes. The
/// one-time planning artifact is shared: engines built with
/// [`NabEngine::from_plan`] borrow the same [`ExecutionPlan`].
#[derive(Debug, Clone)]
pub struct NabEngine {
    plan: Arc<ExecutionPlan>,
    cfg: NabConfig,
    disputes: DisputeState,
    instance: usize,
    broadcast: BroadcastKind,
    net: Option<NetExec>,
    repair: bool,
    memo: Option<GkMemo>,
    repair_stats: RepairStats,
}

impl NabEngine {
    /// Validates the network against the paper's conditions (`n ≥ 3f+1`,
    /// connectivity `≥ 2f+1`, `U_1 ≥ 2`) and builds the engine with a
    /// private plan. Equivalent to [`ExecutionPlan::build`] +
    /// [`NabEngine::from_plan`].
    ///
    /// # Errors
    ///
    /// Returns the violated condition.
    pub fn new(g: DiGraph, cfg: NabConfig) -> Result<Self, NabError> {
        let plan = Arc::new(ExecutionPlan::build(g, cfg.f)?);
        Self::from_plan(plan, cfg)
    }

    /// Builds an engine executing against a shared, already-realized
    /// plan. The plan's fault bound must match the configuration's.
    ///
    /// # Errors
    ///
    /// Returns [`NabError::PlanMismatch`] when `cfg.f != plan.f()`.
    pub fn from_plan(plan: Arc<ExecutionPlan>, cfg: NabConfig) -> Result<Self, NabError> {
        if plan.f() != cfg.f {
            return Err(NabError::PlanMismatch {
                plan_f: plan.f(),
                cfg_f: cfg.f,
            });
        }
        Ok(NabEngine {
            plan,
            cfg,
            disputes: DisputeState::new(),
            instance: 0,
            broadcast: BroadcastKind::default(),
            net: None,
            repair: true,
            memo: None,
            repair_stats: RepairStats::default(),
        })
    }

    /// Re-seats the engine on a new plan — a live deployment whose
    /// network was re-provisioned mid-stream (link capacities changed,
    /// OCS-style) — while carrying forward everything it learned:
    /// dispute state, the instance counter (which seeds per-instance
    /// coding schemes), and the replanning counters. The per-`G_k` memo
    /// is dropped: it was derived against the old network. The node set
    /// must be unchanged (capacity-only mutation), or carried dispute
    /// state would reference nodes the new plan does not have.
    ///
    /// # Errors
    ///
    /// Returns [`NabError::PlanMismatch`] when `plan.f() != cfg.f`.
    ///
    /// # Panics
    ///
    /// Panics if the new plan's node count differs from the old one's.
    pub fn migrate_to_plan(&mut self, plan: Arc<ExecutionPlan>) -> Result<(), NabError> {
        if plan.f() != self.cfg.f {
            return Err(NabError::PlanMismatch {
                plan_f: plan.f(),
                cfg_f: self.cfg.f,
            });
        }
        assert_eq!(
            plan.graph().node_count(),
            self.plan.graph().node_count(),
            "plan migration requires a capacity-only mutation"
        );
        self.plan = plan;
        self.memo = None;
        Ok(())
    }

    /// Enables or disables incremental plan repair (default: enabled).
    ///
    /// Disabled, every disputed instance re-derives γ_k, the arborescence
    /// packing, and ρ_k from scratch with the reference packer — the
    /// pre-repair behavior, kept as the benchmark baseline and the
    /// differential-testing oracle. Outputs are bit-identical either way.
    pub fn set_plan_repair(&mut self, on: bool) {
        self.repair = on;
        if !on {
            self.memo = None;
        }
    }

    /// Whether incremental plan repair is enabled.
    pub fn plan_repair(&self) -> bool {
        self.repair
    }

    /// Replanning counters accumulated by this engine.
    pub fn repair_stats(&self) -> &RepairStats {
        &self.repair_stats
    }

    /// Switches the engine to message-level execution: phase durations
    /// and delivered-time distributions come from replaying the exact
    /// send sets through the `nab-net` event kernel under the given
    /// link models. `None` (the default) restores the formula path.
    /// Protocol outputs and dispute evolution are identical either way
    /// — only timing differs.
    pub fn set_net(&mut self, net: Option<NetExec>) {
        self.net = net;
    }

    /// The message-level execution config, if enabled.
    pub fn net(&self) -> Option<&NetExec> {
        self.net.as_ref()
    }

    /// The shared planning artifact this engine executes against.
    pub fn plan(&self) -> &Arc<ExecutionPlan> {
        &self.plan
    }

    /// The original network.
    pub fn original_graph(&self) -> &DiGraph {
        self.plan.graph()
    }

    /// The configuration.
    pub fn config(&self) -> &NabConfig {
        &self.cfg
    }

    /// Selects the classic-BB primitive used for flag and claim broadcasts
    /// (default: EIG; Phase-King needs `n > 4f` and falls back to EIG
    /// otherwise).
    pub fn set_broadcast_kind(&mut self, kind: BroadcastKind) {
        self.broadcast = kind;
    }

    /// The configured `Broadcast_Default`.
    pub fn broadcast_kind(&self) -> BroadcastKind {
        self.broadcast
    }

    /// The current `G_k` after all disputes so far.
    pub fn current_graph(&self) -> DiGraph {
        self.disputes.current_graph(self.plan.graph())
    }

    /// Accumulated dispute state.
    pub fn disputes(&self) -> &DisputeState {
        &self.disputes
    }

    /// Number of instances run.
    pub fn instances_run(&self) -> usize {
        self.instance
    }

    /// Residual fault budget among non-excluded nodes (excluded nodes are
    /// guaranteed faulty).
    pub fn residual_f(&self) -> usize {
        self.cfg.f.saturating_sub(self.disputes.removed.len())
    }

    /// Runs one NAB instance.
    ///
    /// `faulty` is the ground-truth faulty set (fixed across instances per
    /// the fault model; must have at most `f` members); `adv` chooses the
    /// faulty nodes' behavior.
    ///
    /// # Errors
    ///
    /// Returns [`NabError::WrongInputSize`] on a bad input, or
    /// [`NabError::NoEqualityParameter`] if dispute evolution drove
    /// `U_k` below 2 (cannot happen on networks meeting the paper's
    /// assumptions).
    ///
    /// # Panics
    ///
    /// Panics if `faulty` has more than `f` members.
    pub fn run_instance(
        &mut self,
        input: &Value,
        faulty: &BTreeSet<NodeId>,
        adv: &mut dyn NabAdversary,
    ) -> Result<InstanceReport, NabError> {
        assert!(
            faulty.len() <= self.cfg.f,
            "faulty set exceeds configured f"
        );
        if input.len() != self.cfg.symbols {
            return Err(NabError::WrongInputSize {
                expect: self.cfg.symbols,
                got: input.len(),
            });
        }
        self.instance += 1;
        // Tracing: a no-op unless a sink is installed on this thread (the
        // sweep runner installs one per worker when `--trace` is active).
        let _instance_span = InstanceSpan::enter((self.instance - 1) as u64);
        let plan = Arc::clone(&self.plan);
        // While no disputes have shrunk the graph, `G_k` *is* `G_1` and
        // the plan's precomputed γ/ρ/arborescences apply verbatim; only
        // after dispute control bites do the per-`G_k` quantities get
        // recomputed. Either way the values are identical to deriving
        // them from scratch (the plan is a deterministic function of the
        // same inputs), which keeps cached and uncached runs bit-equal.
        let undisputed = self.disputes.pairs.is_empty() && self.disputes.removed.is_empty();
        let gk_shrunk;
        let gk: &DiGraph = if undisputed {
            plan.graph()
        } else {
            gk_shrunk = self.disputes.current_graph(plan.graph());
            &gk_shrunk
        };

        // Special case 1: the source is known faulty — agree on default.
        if !gk.is_active(SOURCE) {
            trace::emit(EventKind::InstanceDefaulted);
            let outputs = gk
                .nodes()
                .map(|v| (v, Value::zeros(self.cfg.symbols)))
                .collect();
            return Ok(InstanceReport {
                outputs,
                times: PhaseTimes::default(),
                wall: PhaseWallNanos::default(),
                gamma_k: 0,
                rho_k: 0,
                mismatch_detected: false,
                dispute_ran: false,
                new_pairs: Vec::new(),
                newly_removed: Vec::new(),
                defaulted: true,
                delivered: None,
            });
        }

        let gamma;
        let trees_shrunk;
        let trees_memo;
        let trees: &[Arborescence] = if undisputed {
            gamma = plan.gamma0();
            plan.trees0()
        } else if self.repair {
            // Incremental repair: re-derive (γ_k, trees) only when the
            // dispute state changed since the last derivation, and use the
            // witness-incremental packer when it did. Both are exact — the
            // memoized artifacts equal a from-scratch naive recompute bit
            // for bit — so this path differs from the fallback below only
            // in wall time.
            let hit = self.memo.as_ref().is_some_and(|m| {
                m.pairs == self.disputes.pairs && m.removed == self.disputes.removed
            });
            if !hit {
                let t0 = nab_obs::clock::mono_now();
                let gamma_new = gamma_k(gk, SOURCE);
                let trees_new = pack_arborescences(gk, SOURCE, gamma_new).ok_or_else(|| {
                    NabError::ArborescencePacking {
                        n: gk.active_count(),
                        edges: gk.edge_count(),
                        gamma: gamma_new,
                    }
                })?;
                let ns = t0.elapsed().as_nanos() as u64;
                // DetSan: the witness-incremental packer must produce a
                // packing as valid as the from-scratch one; re-verify it
                // against `G_k` before it is memoized and used.
                #[cfg(feature = "sanitize")]
                nab_netgraph::arborescence::validate_packing(gk, SOURCE, &trees_new)
                    .expect("DetSan: incremental repair produced an invalid packing"); // nab-lint: allow(NAB003): DetSan check; aborting on a violated invariant is the point
                let counted_repair = gamma_new == plan.gamma0();
                if counted_repair {
                    self.repair_stats.repairs += 1;
                    trace::emit(EventKind::PlanRepair { ns });
                } else {
                    self.repair_stats.full_recomputes += 1;
                    trace::emit(EventKind::PlanFullRecompute { ns });
                }
                self.repair_stats.repair_ns += ns;
                self.memo = Some(GkMemo {
                    pairs: self.disputes.pairs.clone(),
                    removed: self.disputes.removed.clone(),
                    gamma: gamma_new,
                    trees: Arc::new(trees_new),
                    rho: None,
                    counted_repair,
                });
            }
            let m = self.memo.as_ref().expect("memo was just ensured"); // nab-lint: allow(NAB003): ensure_memo() on the preceding line set it
            gamma = m.gamma;
            trees_memo = Arc::clone(&m.trees);
            &trees_memo
        } else {
            // Full-recompute fallback (`plan_repair = false`): the
            // pre-repair behavior — re-derive everything per instance with
            // the reference packer.
            let t0 = nab_obs::clock::mono_now();
            gamma = gamma_k(gk, SOURCE);
            trees_shrunk = pack_arborescences_naive(gk, SOURCE, gamma).ok_or_else(|| {
                NabError::ArborescencePacking {
                    n: gk.active_count(),
                    edges: gk.edge_count(),
                    gamma,
                }
            })?;
            let ns = t0.elapsed().as_nanos() as u64;
            self.repair_stats.full_recomputes += 1;
            self.repair_stats.repair_ns += ns;
            trace::emit(EventKind::PlanFullRecompute { ns });
            &trees_shrunk
        };

        // Phase 1.
        let p1_span = PhaseSpan::enter(Phase::Phase1);
        let t0 = nab_obs::clock::mono_now();
        let p1 = run_phase1(gk, SOURCE, input, trees, faulty, adv);
        let mut times = PhaseTimes {
            phase1: p1.duration,
            ..PhaseTimes::default()
        };
        let mut wall = PhaseWallNanos {
            phase1: t0.elapsed().as_nanos() as u64,
            ..PhaseWallNanos::default()
        };
        drop(p1_span);
        #[cfg(feature = "sanitize")]
        trace::emit(EventKind::DetSanDigest {
            phase: Phase::Phase1,
            digest: crate::detsan::digest_values(&p1.values),
        });

        // Special case 2: at least f nodes excluded → everyone left is
        // fault-free; Phase 1 alone is reliable.
        if self.disputes.removed.len() >= self.cfg.f {
            let mut delivered = None;
            if let Some(nx) = &self.net {
                let (net_times, d) = netexec::replay_instance(
                    nx,
                    self.instance as u64,
                    &ReplayInput {
                        gk,
                        g0: plan.graph(),
                        trees,
                        p1_sends: &p1.sends,
                        eq_sends: None,
                        flag_rounds: &[],
                        dispute_rounds: &[],
                    },
                );
                times = net_times;
                delivered = Some(d);
            }
            return Ok(InstanceReport {
                outputs: p1.values,
                times,
                wall,
                gamma_k: gamma,
                rho_k: 0,
                mismatch_detected: false,
                dispute_ran: false,
                new_pairs: Vec::new(),
                newly_removed: Vec::new(),
                defaulted: false,
                delivered,
            });
        }

        // Phase 2: equality check + flag broadcast.
        let eq_span = PhaseSpan::enter(Phase::Equality);
        let t0 = nab_obs::clock::mono_now();
        let rho = if undisputed {
            plan.rho0()
        } else if self.repair {
            let rho0 = plan.rho0();
            let m = self.memo.as_mut().expect("memo set while packing trees"); // nab-lint: allow(NAB003): memo is set before tree packing completes
            match m.rho {
                Some(r) => r,
                None => {
                    let t0 = nab_obs::clock::mono_now();
                    let r = rho_k(gk, self.cfg.f, &self.disputes.pairs)
                        .ok_or(NabError::NoEqualityParameter)?;
                    self.repair_stats.repair_ns += t0.elapsed().as_nanos() as u64;
                    m.rho = Some(r);
                    if m.counted_repair && r != rho0 {
                        // The ρ bound moved after all: this derivation was
                        // a full recompute, not a repair.
                        m.counted_repair = false;
                        self.repair_stats.repairs -= 1;
                        self.repair_stats.full_recomputes += 1;
                    }
                    r
                }
            }
        } else {
            let t0 = nab_obs::clock::mono_now();
            let r =
                rho_k(gk, self.cfg.f, &self.disputes.pairs).ok_or(NabError::NoEqualityParameter)?;
            self.repair_stats.repair_ns += t0.elapsed().as_nanos() as u64;
            r
        };
        let scheme = if undisputed {
            plan.instance_scheme(self.cfg.seed, self.instance as u64)
        } else {
            CodingScheme::random(
                gk,
                rho as usize,
                self.cfg.seed.wrapping_add(self.instance as u64),
            )
        };
        let eq = run_equality_phase(gk, &p1.values, &scheme, faulty, adv);
        times.equality = eq.duration;
        wall.equality = t0.elapsed().as_nanos() as u64;
        drop(eq_span);
        #[cfg(feature = "sanitize")]
        trace::emit(EventKind::DetSanDigest {
            phase: Phase::Equality,
            digest: crate::detsan::digest_flags(&eq.flags),
        });

        Ok(self.finish_instance(
            gk, trees, gamma, rho, &scheme, p1, eq, input, faulty, adv, times, wall,
        ))
    }

    /// The shared tail of an instance — flag broadcast, mismatch
    /// evaluation, dispute control, message-level replay — identical
    /// between the per-instance and batched front halves.
    #[allow(clippy::too_many_arguments)] // internal seam of run_instance
    fn finish_instance(
        &mut self,
        gk: &DiGraph,
        trees: &[Arborescence],
        gamma: u64,
        rho: u64,
        scheme: &CodingScheme,
        p1: crate::phase1::Phase1Output,
        eq: crate::phase2::EqOutcome,
        input: &Value,
        faulty: &BTreeSet<NodeId>,
        adv: &mut dyn NabAdversary,
        mut times: PhaseTimes,
        mut wall: PhaseWallNanos,
    ) -> InstanceReport {
        let plan = Arc::clone(&self.plan);
        let flags_span = PhaseSpan::enter(Phase::Flags);
        let t0 = nab_obs::clock::mono_now();
        let participants: Vec<NodeId> = gk.nodes().collect();
        let f_res = self.residual_f();
        let flags = run_flag_broadcast(
            plan.graph(),
            plan.router(),
            &participants,
            f_res,
            &eq.flags,
            faulty,
            adv,
            self.broadcast,
            self.net.is_some(),
        );
        times.flags = flags.duration;
        wall.flags = t0.elapsed().as_nanos() as u64;
        drop(flags_span);
        #[cfg(feature = "sanitize")]
        trace::emit(EventKind::DetSanDigest {
            phase: Phase::Flags,
            digest: crate::detsan::digest_flags(&flags.announced),
        });

        // All fault-free nodes see the same set of agreed flags; evaluate
        // at an arbitrary fault-free participant.
        let observer = *participants
            .iter()
            .find(|v| !faulty.contains(v))
            .expect("at least one fault-free node"); // nab-lint: allow(NAB003): n >= 3f+1 leaves a fault-free node after f removals
        let mismatch = flags.any_mismatch(observer);

        if !mismatch {
            let mut delivered = None;
            if let Some(nx) = &self.net {
                let (net_times, d) = netexec::replay_instance(
                    nx,
                    self.instance as u64,
                    &ReplayInput {
                        gk,
                        g0: plan.graph(),
                        trees,
                        p1_sends: &p1.sends,
                        eq_sends: Some(&eq.sends),
                        flag_rounds: &flags.rounds,
                        dispute_rounds: &[],
                    },
                );
                times = net_times;
                delivered = Some(d);
            }
            return InstanceReport {
                outputs: p1.values,
                times,
                wall,
                gamma_k: gamma,
                rho_k: rho,
                mismatch_detected: false,
                dispute_ran: false,
                new_pairs: Vec::new(),
                newly_removed: Vec::new(),
                defaulted: false,
                delivered,
            };
        }

        // Phase 3: dispute control.
        let dispute_span = PhaseSpan::enter(Phase::Dispute);
        let t0 = nab_obs::clock::mono_now();
        let truthful = honest_claims(gk, SOURCE, input, trees, scheme, &p1, &eq, &flags.announced);
        let mut broadcast_claims: BTreeMap<NodeId, NodeClaims> = BTreeMap::new();
        for (&v, honest) in &truthful {
            let c = if faulty.contains(&v) {
                adv.claims(v, honest)
            } else {
                honest.clone()
            };
            broadcast_claims.insert(v, c);
        }

        // Broadcast every node's claims with the classic BB protocol and
        // charge the (large) communication time.
        let mut net: NetSim<Routed<NodeClaims>> = NetSim::new(plan.graph().clone());
        net.set_record_transcript(self.net.is_some());
        let mut agreed_claims: BTreeMap<NodeId, NodeClaims> = BTreeMap::new();
        for &b in &participants {
            let dec = {
                let mut chan = RoutedChannel {
                    net: &mut net,
                    router: plan.router(),
                    faulty,
                };
                broadcast_value(
                    self.broadcast,
                    &participants,
                    b,
                    f_res,
                    broadcast_claims[&b].clone(),
                    faulty,
                    &mut chan,
                    broadcast_claims[&b].bits(),
                )
            };
            // All fault-free nodes agree; record the observer's copy.
            agreed_claims.insert(b, dec[&observer].clone());
        }
        times.dispute = net.clock();

        // DC2 + DC3 on the agreed claims.
        let new_pairs = dc2_disputes(&agreed_claims);
        let exposed = dc3_exposed(gk, SOURCE, trees, scheme, &agreed_claims);
        let newly_removed = self
            .disputes
            .integrate(plan.graph(), self.cfg.f, &new_pairs, &exposed);

        // Instance output: the source's broadcast input claim (agreement is
        // inherited from the claim broadcast; validity because a fault-free
        // source claims its true input).
        let decided = agreed_claims
            .get(&SOURCE)
            .and_then(|c| c.input.clone())
            .map(Value::from_symbols)
            .unwrap_or_else(|| Value::zeros(self.cfg.symbols));
        let outputs = participants.iter().map(|&v| (v, decided.clone())).collect();
        wall.dispute = t0.elapsed().as_nanos() as u64;
        drop(dispute_span);
        #[cfg(feature = "sanitize")]
        trace::emit(EventKind::DetSanDigest {
            phase: Phase::Dispute,
            digest: crate::detsan::digest_disputes(&self.disputes),
        });

        let mut delivered = None;
        if let Some(nx) = &self.net {
            let dispute_rounds = netexec::transcript_rounds(net.transcript());
            let (net_times, d) = netexec::replay_instance(
                nx,
                self.instance as u64,
                &ReplayInput {
                    gk,
                    g0: plan.graph(),
                    trees,
                    p1_sends: &p1.sends,
                    eq_sends: Some(&eq.sends),
                    flag_rounds: &flags.rounds,
                    dispute_rounds: &dispute_rounds,
                },
            );
            times = net_times;
            delivered = Some(d);
        }

        InstanceReport {
            outputs,
            times,
            wall,
            gamma_k: gamma,
            rho_k: rho,
            mismatch_detected: true,
            dispute_ran: true,
            new_pairs,
            newly_removed,
            defaulted: false,
            delivered,
        }
    }

    /// Whether no dispute has shrunk `G_k` yet — the precondition for
    /// the plan's precomputed γ/ρ/trees (and for cross-stream batching).
    fn undisputed(&self) -> bool {
        self.disputes.pairs.is_empty() && self.disputes.removed.is_empty()
    }
}

/// Whether `engines` can take the batched equality path this step:
/// every engine must be on the undisputed fast path (so they share
/// `G_k`, trees, ρ, and — because coding matrices depend only on
/// `(seed, instance)` — the *same* [`CodingScheme`]), agree on config
/// and instance counter, borrow the very same plan, and use formula
/// timing (message-level replay retimes streams independently).
fn batch_compatible(engines: &[NabEngine]) -> bool {
    let Some(first) = engines.first() else {
        return false;
    };
    // f = 0 instances stop after Phase 1 (special case 2 holds
    // vacuously) — there is no equality phase to batch.
    first.cfg.f > 0
        && engines.iter().all(|e| {
            e.undisputed()
                && e.net.is_none()
                && e.cfg == first.cfg
                && e.instance == first.instance
                && e.broadcast == first.broadcast
                && Arc::ptr_eq(&e.plan, &first.plan)
        })
}

/// Runs one instance on every engine (one per stream), packing all
/// streams' equality-check columns into a single slab multiply per edge
/// when the streams are batch-compatible; otherwise falls back to
/// per-stream [`NabEngine::run_instance`] calls. Results are
/// bit-identical either way — batching only regroups XOR-exact GF
/// arithmetic and never changes protocol messages or RNG draw order.
///
/// `inputs` and `advs` are indexed by stream, matching `engines`.
///
/// # Errors
///
/// Returns the first stream's error ([`NabError::WrongInputSize`] etc.),
/// exactly as the per-stream loop would.
///
/// # Panics
///
/// Panics if `engines`, `inputs`, and `advs` have mismatched lengths or
/// a `faulty` set exceeds the configured `f`.
pub fn run_instances_batched(
    engines: &mut [NabEngine],
    inputs: &[Value],
    faulty: &BTreeSet<NodeId>,
    advs: &mut [&mut dyn NabAdversary],
) -> Result<Vec<InstanceReport>, NabError> {
    assert_eq!(engines.len(), inputs.len(), "one input per stream");
    assert_eq!(engines.len(), advs.len(), "one adversary per stream");

    if !batch_compatible(engines) {
        // Per-stream fallback: bit-identical to the caller looping
        // itself (stream tags keep traces attributable).
        let mut reports = Vec::with_capacity(engines.len());
        for (s, ((engine, input), adv)) in engines
            .iter_mut()
            .zip(inputs)
            .zip(advs.iter_mut())
            .enumerate()
        {
            trace::set_stream(s as u32);
            reports.push(engine.run_instance(input, faulty, &mut **adv)?);
        }
        return Ok(reports);
    }

    let streams = engines.len();
    let plan = Arc::clone(&engines[0].plan);
    let cfg = engines[0].cfg;
    for (engine, input) in engines.iter().zip(inputs) {
        assert!(
            faulty.len() <= engine.cfg.f,
            "faulty set exceeds configured f"
        );
        if input.len() != engine.cfg.symbols {
            return Err(NabError::WrongInputSize {
                expect: engine.cfg.symbols,
                got: input.len(),
            });
        }
    }

    let gk = plan.graph();
    let trees = plan.trees0();
    let gamma = plan.gamma0();
    let rho = plan.rho0();

    // Phase 1 per stream (protocol messages are per-stream regardless).
    let mut spans = Vec::with_capacity(streams);
    let mut p1s = Vec::with_capacity(streams);
    let mut times = Vec::with_capacity(streams);
    let mut walls = Vec::with_capacity(streams);
    for (s, (engine, input)) in engines.iter_mut().zip(inputs).enumerate() {
        trace::set_stream(s as u32);
        engine.instance += 1;
        spans.push(InstanceSpan::enter((engine.instance - 1) as u64));
        let p1_span = PhaseSpan::enter(Phase::Phase1);
        let t0 = nab_obs::clock::mono_now();
        let p1 = run_phase1(gk, SOURCE, input, trees, faulty, &mut *advs[s]);
        times.push(PhaseTimes {
            phase1: p1.duration,
            ..PhaseTimes::default()
        });
        walls.push(PhaseWallNanos {
            phase1: t0.elapsed().as_nanos() as u64,
            ..PhaseWallNanos::default()
        });
        drop(p1_span);
        p1s.push(p1);
    }

    // Equality check: one coding scheme (identical across streams by
    // construction), all streams' columns in one slab per edge.
    let t0 = nab_obs::clock::mono_now();
    let scheme = plan.instance_scheme(cfg.seed, engines[0].instance as u64);
    let values: Vec<&BTreeMap<NodeId, Value>> = p1s.iter().map(|p| &p.values).collect();
    let eqs = crate::phase2::run_equality_phase_batched(gk, &values, &scheme, faulty, advs);
    let eq_wall = t0.elapsed().as_nanos() as u64 / streams as u64;

    // Per-stream tail: flag broadcast, disputes, report.
    let mut reports = Vec::with_capacity(streams);
    for (s, (((engine, input), p1), eq)) in
        engines.iter_mut().zip(inputs).zip(p1s).zip(eqs).enumerate()
    {
        trace::set_stream(s as u32);
        let eq_span = PhaseSpan::enter(Phase::Equality);
        times[s].equality = eq.duration;
        walls[s].equality = eq_wall;
        drop(eq_span);
        let report = engine.finish_instance(
            gk,
            trees,
            gamma,
            rho,
            &scheme,
            p1,
            eq,
            input,
            faulty,
            &mut *advs[s],
            times[s],
            walls[s],
        );
        reports.push(report);
        drop(spans.pop());
    }
    Ok(reports)
}

/// Summary of a multi-instance run (the throughput experiment quantum).
#[derive(Debug, Clone)]
pub struct RunSummary {
    /// Instances executed.
    pub instances: usize,
    /// Total simulated time.
    pub total_time: f64,
    /// Total payload bits broadcast (`L · Q`).
    pub total_bits: u64,
    /// Dispute-control executions observed.
    pub dispute_rounds: usize,
    /// `total_bits / total_time`.
    pub throughput: f64,
    /// Every fault-free node agreed with the source's input in every
    /// instance (validity + agreement).
    pub all_correct: bool,
}

/// The paper's per-instance correctness conditions: *agreement* among
/// fault-free nodes always, and *validity* (every fault-free output equals
/// the input) when the source is fault-free and the known-faulty-source
/// fast path did not default the instance.
pub fn instance_correct(rep: &InstanceReport, faulty: &BTreeSet<NodeId>, input: &Value) -> bool {
    let honest: Vec<&Value> = rep
        .outputs
        .iter()
        .filter(|(v, _)| !faulty.contains(v))
        .map(|(_, o)| o)
        .collect();
    if honest.windows(2).any(|w| w[0] != w[1]) {
        return false;
    }
    if !faulty.contains(&SOURCE) && !rep.defaulted {
        return honest.first().is_some_and(|v| **v == *input);
    }
    true
}

/// Runs `q` instances with fresh random inputs and returns the aggregate
/// throughput report. Inputs are generated from `seed`.
pub fn run_many(
    engine: &mut NabEngine,
    q: usize,
    faulty: &BTreeSet<NodeId>,
    adv: &mut dyn NabAdversary,
    seed: u64,
) -> Result<RunSummary, NabError> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let symbols = engine.config().symbols;
    let mut total_time = 0.0;
    let mut dispute_rounds = 0;
    let mut all_correct = true;

    for _ in 0..q {
        let input = Value::random(symbols, &mut rng);
        let rep = engine.run_instance(&input, faulty, adv)?;
        total_time += rep.times.total();
        dispute_rounds += usize::from(rep.dispute_ran);
        if !instance_correct(&rep, faulty, &input) {
            all_correct = false;
        }
    }

    let total_bits = (q * symbols) as u64 * crate::value::SYMBOL_BITS;
    Ok(RunSummary {
        instances: q,
        total_time,
        total_bits,
        dispute_rounds,
        throughput: if total_time > 0.0 {
            total_bits as f64 / total_time
        } else {
            0.0
        },
        all_correct,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{
        EquivocatingSource, FalseAlarm, HonestStrategy, LyingCorruptor, TruthfulCorruptor,
    };
    use nab_netgraph::gen;

    fn engine(symbols: usize) -> NabEngine {
        NabEngine::new(
            gen::complete(4, 2),
            NabConfig {
                f: 1,
                symbols,
                seed: 42,
            },
        )
        .unwrap()
    }

    fn input(symbols: usize) -> Value {
        Value::from_u64s(&(0..symbols as u64).map(|i| i * 7 + 1).collect::<Vec<_>>())
    }

    #[test]
    fn fault_free_instance_is_fast_path() {
        let mut e = engine(12);
        let x = input(12);
        let rep = e
            .run_instance(&x, &BTreeSet::new(), &mut HonestStrategy)
            .unwrap();
        assert!(!rep.mismatch_detected);
        assert!(!rep.dispute_ran);
        for v in rep.outputs.values() {
            assert_eq!(*v, x);
        }
        assert!(rep.times.phase1 > 0.0);
        assert!(rep.times.equality > 0.0);
        assert!(rep.times.flags > 0.0);
        assert_eq!(rep.times.dispute, 0.0);
    }

    #[test]
    fn setup_rejects_bad_networks() {
        let cfg = NabConfig {
            f: 1,
            symbols: 4,
            seed: 0,
        };
        // Too few nodes for f=1.
        assert!(matches!(
            NabEngine::new(gen::complete(3, 1), cfg),
            Err(NabError::TooManyFaults { .. })
        ));
        // A ring is 2-connected at best — not enough for 2f+1=3.
        assert!(matches!(
            NabEngine::new(gen::ring(5, 1), cfg),
            Err(NabError::InsufficientConnectivity)
        ));
    }

    #[test]
    fn engines_sharing_a_plan_match_private_plan_engines() {
        // The plan/execute split must be invisible to results: an engine
        // borrowing a shared plan behaves bit-identically to one that
        // built its own.
        let g = gen::complete(4, 2);
        let cfg = NabConfig {
            f: 1,
            symbols: 12,
            seed: 42,
        };
        let plan = Arc::new(ExecutionPlan::build(g.clone(), 1).unwrap());
        let mut shared1 = NabEngine::from_plan(Arc::clone(&plan), cfg).unwrap();
        let mut shared2 = NabEngine::from_plan(Arc::clone(&plan), cfg).unwrap();
        let mut private = NabEngine::new(g, cfg).unwrap();
        let x = input(12);
        let faulty = BTreeSet::from([2]);
        for _ in 0..3 {
            let a = shared1
                .run_instance(&x, &faulty, &mut TruthfulCorruptor)
                .unwrap();
            let b = shared2
                .run_instance(&x, &faulty, &mut TruthfulCorruptor)
                .unwrap();
            let c = private
                .run_instance(&x, &faulty, &mut TruthfulCorruptor)
                .unwrap();
            assert_eq!(a.outputs, b.outputs);
            assert_eq!(a.outputs, c.outputs);
            assert_eq!((a.gamma_k, a.rho_k), (c.gamma_k, c.rho_k));
            assert_eq!(a.times, c.times);
            assert_eq!(a.new_pairs, c.new_pairs);
            assert_eq!(a.newly_removed, c.newly_removed);
        }
        assert_eq!(shared1.disputes().pairs, private.disputes().pairs);
        assert_eq!(shared1.disputes().removed, private.disputes().removed);
    }

    #[test]
    fn from_plan_rejects_fault_bound_mismatch() {
        let plan = Arc::new(ExecutionPlan::build(gen::complete(7, 2), 2).unwrap());
        let cfg = NabConfig {
            f: 1,
            symbols: 4,
            seed: 0,
        };
        assert!(matches!(
            NabEngine::from_plan(plan, cfg),
            Err(NabError::PlanMismatch {
                plan_f: 2,
                cfg_f: 1
            })
        ));
    }

    #[test]
    fn packing_error_carries_topology_context() {
        let e = NabError::ArborescencePacking {
            n: 5,
            edges: 9,
            gamma: 3,
        };
        let msg = e.to_string();
        assert!(msg.contains("γ=3"), "{msg}");
        assert!(msg.contains("5-node"), "{msg}");
        assert!(msg.contains("9-edge"), "{msg}");
    }

    #[test]
    fn wrong_input_size_rejected() {
        let mut e = engine(12);
        let bad = input(5);
        assert!(matches!(
            e.run_instance(&bad, &BTreeSet::new(), &mut HonestStrategy),
            Err(NabError::WrongInputSize { expect: 12, got: 5 })
        ));
    }

    #[test]
    fn corrupting_relay_triggers_dispute_and_correct_output() {
        let mut e = engine(12);
        let x = input(12);
        let faulty = BTreeSet::from([2]);
        let rep = e.run_instance(&x, &faulty, &mut TruthfulCorruptor).unwrap();
        assert!(rep.mismatch_detected);
        assert!(rep.dispute_ran);
        // Validity: fault-free nodes still output the source's input.
        for (&v, out) in &rep.outputs {
            if !faulty.contains(&v) {
                assert_eq!(*out, x, "node {v}");
            }
        }
        // The truthful corruptor exposes itself via DC3.
        assert_eq!(rep.newly_removed, vec![2]);
    }

    #[test]
    fn lying_relay_lands_in_dispute_pair() {
        let mut e = engine(12);
        let x = input(12);
        let faulty = BTreeSet::from([2]);
        let rep = e.run_instance(&x, &faulty, &mut LyingCorruptor).unwrap();
        assert!(rep.dispute_ran);
        assert!(
            rep.new_pairs.iter().any(|&(a, b)| a == 2 || b == 2),
            "the liar must appear in a dispute pair: {:?}",
            rep.new_pairs
        );
        for (&v, out) in &rep.outputs {
            if !faulty.contains(&v) {
                assert_eq!(*out, x);
            }
        }
    }

    #[test]
    fn equivocating_source_still_reaches_agreement() {
        let mut e = engine(12);
        let x = input(12);
        let faulty = BTreeSet::from([0]);
        let rep = e
            .run_instance(&x, &faulty, &mut EquivocatingSource)
            .unwrap();
        assert!(rep.mismatch_detected, "equality check must catch the split");
        // Agreement among fault-free nodes (validity not required: source
        // is faulty).
        let honest: Vec<&Value> = rep
            .outputs
            .iter()
            .filter(|(v, _)| !faulty.contains(v))
            .map(|(_, o)| o)
            .collect();
        assert!(honest.windows(2).all(|w| w[0] == w[1]));
    }

    #[test]
    fn false_alarm_wastes_a_dispute_round_then_stops() {
        let mut e = engine(12);
        let x = input(12);
        let faulty = BTreeSet::from([3]);
        let mut adv = FalseAlarm;
        let rep1 = e.run_instance(&x, &faulty, &mut adv).unwrap();
        assert!(rep1.dispute_ran);
        // DC3 exposes the false-alarmist (its claims show clean receives
        // yet it announced MISMATCH).
        assert_eq!(rep1.newly_removed, vec![3]);
        // Next instance: f nodes removed → fast path, no equality check.
        let rep2 = e.run_instance(&x, &faulty, &mut adv).unwrap();
        assert!(!rep2.dispute_ran);
        for (&v, out) in &rep2.outputs {
            if !faulty.contains(&v) {
                assert_eq!(*out, x);
            }
        }
    }

    #[test]
    fn plan_repair_is_bit_identical_to_full_recompute() {
        let x = input(12);
        let faulty = BTreeSet::from([2]);
        let mut fast = engine(12);
        let mut slow = engine(12);
        slow.set_plan_repair(false);
        assert!(fast.plan_repair());
        assert!(!slow.plan_repair());
        // Raise a dispute, then keep running so later instances replan on
        // the shrunken G_k.
        for i in 0..2 {
            let a = fast.run_instance(&x, &faulty, &mut LyingCorruptor).unwrap();
            let b = slow.run_instance(&x, &faulty, &mut LyingCorruptor).unwrap();
            assert_reports_match(&a, &b, &format!("lying instance {i}"));
        }
        for i in 0..3 {
            let a = fast.run_instance(&x, &faulty, &mut HonestStrategy).unwrap();
            let b = slow.run_instance(&x, &faulty, &mut HonestStrategy).unwrap();
            assert_reports_match(&a, &b, &format!("quiet instance {i}"));
        }
        assert_eq!(fast.disputes().pairs, slow.disputes().pairs);
        let fs = *fast.repair_stats();
        let ss = *slow.repair_stats();
        assert_eq!(ss.repairs, 0, "repair-off never counts repairs");
        assert!(
            ss.full_recomputes >= 4,
            "repair-off replans every disputed instance: {ss:?}"
        );
        let fast_derivations = fs.repairs + fs.full_recomputes;
        assert!(
            (1..ss.full_recomputes).contains(&fast_derivations),
            "memo must collapse stable dispute states: fast {fs:?} vs slow {ss:?}"
        );
    }

    #[test]
    fn phase_king_broadcast_kind_end_to_end() {
        // K5 has n = 5 > 4f = 4, so Phase-King is usable as
        // Broadcast_Default; the full adversarial round-trip must behave
        // identically to EIG.
        let mut e = NabEngine::new(
            gen::complete(5, 2),
            NabConfig {
                f: 1,
                symbols: 12,
                seed: 21,
            },
        )
        .unwrap();
        e.set_broadcast_kind(crate::phase2::BroadcastKind::PhaseKing);
        assert_eq!(e.broadcast_kind(), crate::phase2::BroadcastKind::PhaseKing);
        let x = input(12);
        let faulty = BTreeSet::from([2]);
        let rep = e.run_instance(&x, &faulty, &mut TruthfulCorruptor).unwrap();
        assert!(rep.mismatch_detected);
        assert!(rep.dispute_ran);
        for (&v, out) in &rep.outputs {
            if !faulty.contains(&v) {
                assert_eq!(*out, x, "node {v}");
            }
        }
        assert_eq!(rep.newly_removed, vec![2]);
    }

    #[test]
    fn run_many_fault_free_has_full_validity() {
        let mut e = engine(8);
        let sum = run_many(&mut e, 5, &BTreeSet::new(), &mut HonestStrategy, 9).unwrap();
        assert_eq!(sum.instances, 5);
        assert!(sum.all_correct);
        assert_eq!(sum.dispute_rounds, 0);
        assert!(sum.throughput > 0.0);
    }

    #[test]
    fn run_many_with_adversary_amortizes() {
        let mut e = engine(8);
        let faulty = BTreeSet::from([1]);
        let sum = run_many(&mut e, 6, &faulty, &mut TruthfulCorruptor, 9).unwrap();
        assert!(sum.all_correct);
        // The corruptor is exposed in the first dispute round; afterwards
        // the fast path runs (f=1 node removed → residual faults 0).
        assert_eq!(sum.dispute_rounds, 1);
        assert!(sum.dispute_rounds <= DisputeState::max_executions(1));
    }

    #[test]
    fn source_removal_defaults_all_outputs() {
        let mut e = engine(8);
        let x = input(8);
        let faulty = BTreeSet::from([0]);
        // An equivocating source that also lies in claims ends up removed…
        // simplest: force removal via dispute state by running with a
        // source that corrupts both trees and lies.
        let rep = e
            .run_instance(&x, &faulty, &mut EquivocatingSource)
            .unwrap();
        assert!(rep.dispute_ran);
        if e.disputes().removed.contains(&0) {
            let rep2 = e
                .run_instance(&x, &faulty, &mut EquivocatingSource)
                .unwrap();
            assert!(rep2.defaulted);
            for out in rep2.outputs.values() {
                assert_eq!(*out, Value::zeros(8));
            }
        }
    }

    /// Everything deterministic in a report (wall-clock excluded).
    fn assert_reports_match(a: &InstanceReport, b: &InstanceReport, ctx: &str) {
        assert_eq!(a.outputs, b.outputs, "{ctx}: outputs");
        assert_eq!(a.times, b.times, "{ctx}: times");
        assert_eq!((a.gamma_k, a.rho_k), (b.gamma_k, b.rho_k), "{ctx}: rates");
        assert_eq!(a.mismatch_detected, b.mismatch_detected, "{ctx}: mismatch");
        assert_eq!(a.dispute_ran, b.dispute_ran, "{ctx}: dispute_ran");
        assert_eq!(a.new_pairs, b.new_pairs, "{ctx}: new_pairs");
        assert_eq!(a.newly_removed, b.newly_removed, "{ctx}: removed");
        assert_eq!(a.defaulted, b.defaulted, "{ctx}: defaulted");
    }

    /// Drives `run_instances_batched` for several instances and mirrors
    /// every stream with an independent per-instance engine, asserting
    /// bit-identical reports and dispute evolution throughout.
    fn check_batched_equivalence<A: NabAdversary + Default>(
        faulty: &BTreeSet<NodeId>,
        instances: usize,
    ) {
        let g = gen::complete(4, 2);
        let cfg = NabConfig {
            f: 1,
            symbols: 12,
            seed: 42,
        };
        let plan = Arc::new(ExecutionPlan::build(g, 1).unwrap());
        let mk = |n: usize| -> Vec<NabEngine> {
            (0..n)
                .map(|_| NabEngine::from_plan(Arc::clone(&plan), cfg).unwrap())
                .collect()
        };
        let mut batched = mk(3);
        let mut solo = mk(3);
        let inputs: Vec<Value> = (0..3u64)
            .map(|s| Value::from_u64s(&(0..12u64).map(|i| i * 7 + s + 1).collect::<Vec<_>>()))
            .collect();
        for k in 0..instances {
            let mut a0 = A::default();
            let mut a1 = A::default();
            let mut a2 = A::default();
            let mut advs: Vec<&mut dyn NabAdversary> = vec![&mut a0, &mut a1, &mut a2];
            let reps = run_instances_batched(&mut batched, &inputs, faulty, &mut advs).unwrap();
            assert_eq!(reps.len(), 3);
            for (s, rep) in reps.iter().enumerate() {
                let mut adv = A::default();
                let want = solo[s].run_instance(&inputs[s], faulty, &mut adv).unwrap();
                assert_reports_match(rep, &want, &format!("instance {k} stream {s}"));
            }
        }
        for (b, s) in batched.iter().zip(&solo) {
            assert_eq!(b.disputes().pairs, s.disputes().pairs);
            assert_eq!(b.disputes().removed, s.disputes().removed);
            assert_eq!(b.instances_run(), s.instances_run());
        }
    }

    #[test]
    fn batched_streams_match_per_instance_fault_free() {
        check_batched_equivalence::<HonestStrategy>(&BTreeSet::new(), 3);
    }

    #[test]
    fn batched_streams_match_per_instance_through_dispute_fallback() {
        // Instance 0 takes the packed-slab path and exposes node 2 via
        // DC3; from instance 1 on the engines are disputed, so the entry
        // point must take its internal per-stream fallback — reports and
        // dispute state stay bit-identical to solo engines either way.
        check_batched_equivalence::<TruthfulCorruptor>(&BTreeSet::from([2]), 4);
    }

    /// Grows every forwarded Phase-1 block by one symbol, so downstream
    /// nodes assemble values *longer* than the source's input and
    /// per-node (and per-stream) column counts diverge — the
    /// heterogeneous-width case of the packed-slab equality check.
    #[derive(Default)]
    struct BlockStretcher;
    impl NabAdversary for BlockStretcher {
        fn phase1_forward(
            &mut self,
            _: NodeId,
            _: usize,
            _: NodeId,
            honest: &[nab_gf::Gf2_16],
        ) -> Vec<nab_gf::Gf2_16> {
            let mut out = honest.to_vec();
            out.push(nab_gf::Gf2_16(0x5A));
            out
        }
    }

    #[test]
    fn batched_streams_match_per_instance_under_length_tampering() {
        // A length-tampering relay makes node values (hence reshaped
        // column counts) unequal across nodes; the batched pack must
        // reproduce the per-instance flags and sends exactly.
        check_batched_equivalence::<BlockStretcher>(&BTreeSet::from([2]), 3);
    }

    #[test]
    fn batched_streams_match_per_instance_under_equality_tampering() {
        // The garbler corrupts coded symbols *inside* the equality phase,
        // exercising the batched path's per-stream adversary calls (and
        // their RNG-free determinism) rather than Phase-1 corruption.
        check_batched_equivalence::<crate::adversary::EqualityGarbler>(&BTreeSet::from([1]), 3);
    }

    #[test]
    fn batched_entry_point_handles_heterogeneous_engines() {
        // Engines with private (non-shared) plans are batch-incompatible;
        // the entry point must silently fall back and still match.
        let g = gen::complete(4, 2);
        let cfg = NabConfig {
            f: 1,
            symbols: 12,
            seed: 42,
        };
        let mut batched: Vec<NabEngine> = (0..2)
            .map(|_| NabEngine::new(g.clone(), cfg).unwrap())
            .collect();
        let mut solo: Vec<NabEngine> = (0..2)
            .map(|_| NabEngine::new(g.clone(), cfg).unwrap())
            .collect();
        let x = input(12);
        let inputs = vec![x.clone(), x.clone()];
        let mut a0 = HonestStrategy;
        let mut a1 = HonestStrategy;
        let mut advs: Vec<&mut dyn NabAdversary> = vec![&mut a0, &mut a1];
        let reps =
            run_instances_batched(&mut batched, &inputs, &BTreeSet::new(), &mut advs).unwrap();
        for (s, rep) in reps.iter().enumerate() {
            let want = solo[s]
                .run_instance(&x, &BTreeSet::new(), &mut HonestStrategy)
                .unwrap();
            assert_reports_match(rep, &want, &format!("stream {s}"));
        }
    }

    #[test]
    fn message_level_zero_model_matches_formula() {
        // The pinned cross-check: with zero-latency lossless links the
        // event-driven path must reproduce the synchronous formula
        // charges to within integer-nanosecond rounding (UNIT_NS ns per
        // time unit → sub-microsecond absolute error), on the clean
        // fast path and through a full dispute round alike.
        let x = input(12);
        type MkAdv = fn() -> Box<dyn NabAdversary>;
        let cases: [(BTreeSet<NodeId>, MkAdv); 2] = [
            (BTreeSet::new(), || Box::new(HonestStrategy)),
            (BTreeSet::from([2]), || Box::new(TruthfulCorruptor)),
        ];
        for (faulty, mk_adv) in cases {
            let mut formula = engine(12);
            let mut event = engine(12);
            event.set_net(Some(crate::netexec::NetExec {
                model: nab_net::NetModel::default(),
                seed: 99,
            }));
            for _ in 0..3 {
                let a = formula
                    .run_instance(&x, &faulty, mk_adv().as_mut())
                    .unwrap();
                let b = event.run_instance(&x, &faulty, mk_adv().as_mut()).unwrap();
                assert_eq!(a.outputs, b.outputs, "net mode must not change outputs");
                assert_eq!(a.dispute_ran, b.dispute_ran);
                assert!(a.delivered.is_none());
                for (fa, fb, phase) in [
                    (a.times.phase1, b.times.phase1, "phase1"),
                    (a.times.equality, b.times.equality, "equality"),
                    (a.times.flags, b.times.flags, "flags"),
                    (a.times.dispute, b.times.dispute, "dispute"),
                ] {
                    assert!(
                        (fa - fb).abs() < 5e-3,
                        "{phase}: formula {fa} vs message-level {fb}"
                    );
                }
                assert!((a.times.total() - b.times.total()).abs() < 5e-3);
                if !b.defaulted {
                    let d = b.delivered.as_ref().expect("net mode records deliveries");
                    assert!(d.phase1.count() > 0);
                    assert_eq!(d.instance.count(), 1);
                }
            }
        }
    }

    #[test]
    fn message_level_latency_slows_instances_deterministically() {
        let x = input(12);
        let model = nab_net::NetSpec::parse("uniform:1000000:500000+loss:0.2:2:2000000")
            .unwrap()
            .build();
        let run = |seed: u64| {
            let mut e = engine(12);
            e.set_net(Some(crate::netexec::NetExec {
                model: model.clone(),
                seed,
            }));
            e.run_instance(&x, &BTreeSet::new(), &mut HonestStrategy)
                .unwrap()
        };
        let base = {
            let mut e = engine(12);
            e.run_instance(&x, &BTreeSet::new(), &mut HonestStrategy)
                .unwrap()
        };
        let a = run(5);
        // Latency and loss can only push completion later.
        assert!(a.times.total() > base.times.total());
        for v in a.outputs.values() {
            assert_eq!(*v, x, "timing must not affect outputs");
        }
        // Same seed → identical timings; different seed → different jitter.
        let b = run(5);
        assert_eq!(a.times, b.times);
        assert_eq!(a.delivered, b.delivered);
        let c = run(6);
        assert_ne!(a.delivered, c.delivered);
    }

    #[test]
    fn phase_times_reproduce_paper_costs() {
        // K4 cap 2: γ=6, U=12 → ρ=6… check L/γ and L/ρ shape.
        let mut e = engine(12);
        let x = input(12);
        let rep = e
            .run_instance(&x, &BTreeSet::new(), &mut HonestStrategy)
            .unwrap();
        let l = x.bits() as f64;
        assert!((rep.times.phase1 - l / rep.gamma_k as f64).abs() < 1e-6);
        // Equality time is L/ρ rounded up to whole 16-bit columns.
        let cols = (12usize).div_ceil(rep.rho_k as usize) as f64;
        assert!((rep.times.equality - cols * 16.0).abs() < 1e-6);
    }
}
