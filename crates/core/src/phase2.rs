//! Phase 2: failure detection — the equality check on the wire (step 2.1)
//! and Byzantine broadcast of the 1-bit flags (step 2.2).

use std::collections::{BTreeMap, BTreeSet};

use nab_bb::baselines::RoutedChannel;
use nab_bb::eig::{run_eig, EigChannel, HonestAdversary};
use nab_bb::phaseking::{run_phase_king, PkHonest};
use nab_bb::router::{PathRouter, Routed};
use nab_gf::{Gf2_16, WordMatrix};
use nab_netgraph::arborescence::Arborescence;
use nab_netgraph::{DiGraph, NodeId};
use nab_sim::NetSim;

use crate::adversary::NabAdversary;
use crate::dispute::NodeClaims;
use crate::equality::CodingScheme;
use crate::value::{Value, SYMBOL_BITS};

/// Ground truth of one equality-check execution (step 2.1).
#[derive(Debug, Clone)]
pub struct EqOutcome {
    /// Coded symbols actually transmitted per edge.
    pub sends: BTreeMap<(NodeId, NodeId), Vec<Gf2_16>>,
    /// Each node's honestly computed flag (`true` = MISMATCH). Faulty
    /// nodes may *announce* something else; see
    /// [`run_flag_broadcast`].
    pub flags: BTreeMap<NodeId, bool>,
    /// Wall-clock duration (`≈ L/ρ_k`).
    pub duration: f64,
}

/// Runs the equality check (Algorithm 1) on `gk`.
///
/// Links are reliable, so the receiver's view of an edge equals the
/// sender's transmission; the phase is evaluated directly on the ground
/// truth, charging the same `max_e(bits_e / z_e)` round time the
/// simulator would.
pub fn run_equality_phase(
    gk: &DiGraph,
    values: &BTreeMap<NodeId, Value>,
    scheme: &CodingScheme,
    faulty: &BTreeSet<NodeId>,
    adv: &mut dyn NabAdversary,
) -> EqOutcome {
    let mut sends = BTreeMap::new();

    // Each node's value is reshaped into ρ-symbol columns exactly once;
    // the per-edge encode/check then runs on the nab-gf row kernels.
    let reshaped: BTreeMap<NodeId, Vec<Vec<Gf2_16>>> = gk
        .nodes()
        .map(|v| (v, values[&v].reshape(scheme.rho())))
        .collect();

    let mut flags: BTreeMap<NodeId, bool> = gk.nodes().map(|v| (v, false)).collect();
    let mut link_bits: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    for (_, e) in gk.edges() {
        let honest = scheme.encode_cols(e.src, e.dst, &reshaped[&e.src]);
        let sent = if faulty.contains(&e.src) {
            adv.equality_symbols(e.src, e.dst, &honest)
        } else {
            honest
        };
        *link_bits.entry((e.src, e.dst)).or_insert(0) += sent.len() as u64 * SYMBOL_BITS;
        if !scheme.check_cols(e.src, e.dst, &reshaped[&e.dst], &sent) {
            flags.insert(e.dst, true);
        }
        sends.insert((e.src, e.dst), sent);
    }
    let duration = equality_duration(gk, &link_bits);

    EqOutcome {
        sends,
        flags,
        duration,
    }
}

/// The synchronous round charge `max_e(bits_e / z_e)` over per-link bit
/// totals — identical to `NetSim::deliver_round` on the same sends.
fn equality_duration(gk: &DiGraph, link_bits: &BTreeMap<(NodeId, NodeId), u64>) -> f64 {
    let mut duration: f64 = 0.0;
    for (&(src, dst), &bits) in link_bits {
        let cap = gk
            .find_edge(src, dst)
            .map(|(_, e)| e.cap)
            .expect("edge exists"); // nab-lint: allow(NAB003): packed trees only use edges of G_k by construction
        duration = duration.max(bits as f64 / cap as f64);
    }
    duration
}

/// Packs the reshaped value columns of every stream into one row-major
/// `ρ × Σ_s cols_s` slab: stream `s`'s column `j` lands at slab column
/// `offsets[s] + j`. This is the `Xᵀ` operand of the batched equality
/// check. Streams may hold **different column counts at the same node**
/// (a length-tampering adversary grows or shrinks a forwarded block, so
/// a downstream node's assembled value no longer has `S` symbols), which
/// is why each stream gets a cumulative offset instead of a uniform
/// stride. Returns the slab plus the `streams + 1` column offsets
/// (`offsets[s]..offsets[s + 1]` is stream `s`'s span).
fn pack_columns(reshaped: &[&Vec<Vec<Gf2_16>>], rho: usize) -> (WordMatrix, Vec<usize>) {
    let mut offsets = Vec::with_capacity(reshaped.len() + 1);
    offsets.push(0usize);
    for stream_cols in reshaped {
        offsets.push(offsets.last().unwrap() + stream_cols.len()); // nab-lint: allow(NAB003): offsets starts as [0], never empty
    }
    let width = *offsets.last().unwrap(); // nab-lint: allow(NAB003): offsets starts as [0], never empty
                                          // DetSan: the gather/scatter loops below index the slab by this
                                          // table; a non-monotonic table would silently interleave streams.
    #[cfg(feature = "sanitize")]
    crate::detsan::check_offsets_monotonic(&offsets);
    let mut xt = WordMatrix::zero(rho, width);
    let slab = xt.as_mut_slice();
    for (s, stream_cols) in reshaped.iter().enumerate() {
        for (j, col) in stream_cols.iter().enumerate() {
            for (r, &sym) in col.iter().enumerate() {
                slab[r * width + offsets[s] + j] = sym;
            }
        }
    }
    (xt, offsets)
}

/// Extracts one stream's coded symbols (slab columns
/// `start..start + cols`) from a batched `Yᵀ = C_eᵀ · Xᵀ` slab,
/// flattened column-major exactly like [`CodingScheme::encode_cols`]:
/// symbol `j·z + r` is `Yᵀ(r, start + j)`.
fn scatter_stream(yt: &WordMatrix, start: usize, cols: usize) -> Vec<Gf2_16> {
    let z = yt.rows();
    let width = yt.cols();
    let slab = yt.as_slice();
    let mut out = Vec::with_capacity(cols * z);
    for j in 0..cols {
        for r in 0..z {
            out.push(slab[r * width + start + j]);
        }
    }
    out
}

/// The batched equality check: one execution of Algorithm 1 per stream,
/// all sharing the same coding scheme (streams at the same instance index
/// use identical per-edge matrices), evaluated as **one blocked matrix
/// multiply per edge** over a packed cross-stream slab instead of
/// per-column vector products.
///
/// Per edge `e`, the sender-side slab is `Y_eᵀ = C_eᵀ · Xᵀ` where `Xᵀ`
/// stacks every stream's value columns side by side (at cumulative
/// offsets, since tampered values may differ in length); the
/// receiver-side expectation reuses the same shape. Row lengths grow
/// from `z_e` to `≈ streams · S/ρ`, which is the shape the
/// [`nab_gf::simd`] row kernels want. Results are bit-identical to [`run_equality_phase`] per stream
/// (`GF(2^16)` addition is exact XOR, so any grouping of the same
/// multiply-accumulates produces the same symbols), which the engine's
/// batch tests pin.
///
/// # Panics
///
/// Panics if `values` and `advs` lengths differ, or some active node is
/// missing a value.
pub fn run_equality_phase_batched(
    gk: &DiGraph,
    values: &[&BTreeMap<NodeId, Value>],
    scheme: &CodingScheme,
    faulty: &BTreeSet<NodeId>,
    advs: &mut [&mut dyn NabAdversary],
) -> Vec<EqOutcome> {
    assert_eq!(values.len(), advs.len(), "one adversary per stream");
    let streams = values.len();
    let rho = scheme.rho();

    // Reshape every node's value per stream, then pack per node.
    let reshaped: Vec<BTreeMap<NodeId, Vec<Vec<Gf2_16>>>> = values
        .iter()
        .map(|vals| gk.nodes().map(|v| (v, vals[&v].reshape(rho))).collect())
        .collect();
    let packed: BTreeMap<NodeId, (WordMatrix, Vec<usize>)> = gk
        .nodes()
        .map(|v| {
            let per_stream: Vec<&Vec<Vec<Gf2_16>>> = reshaped.iter().map(|r| &r[&v]).collect();
            (v, pack_columns(&per_stream, rho))
        })
        .collect();

    let mut sends: Vec<BTreeMap<(NodeId, NodeId), Vec<Gf2_16>>> = vec![BTreeMap::new(); streams];
    let mut flags: Vec<BTreeMap<NodeId, bool>> = (0..streams)
        .map(|_| gk.nodes().map(|v| (v, false)).collect())
        .collect();
    let mut link_bits: Vec<BTreeMap<(NodeId, NodeId), u64>> = vec![BTreeMap::new(); streams];

    for (_, e) in gk.edges() {
        // One blocked multiply covers every stream's encode on this edge;
        // a second covers every stream's receiver-side expectation. The
        // sender and receiver slabs carry independent per-stream widths
        // (values may differ in length after tampering), so each side
        // scatters with its own offsets — a cross-side length mismatch
        // then fails the `sent != expected` compare exactly like the
        // per-instance [`CodingScheme::check_cols`] does.
        let (src_slab, src_off) = &packed[&e.src];
        let (dst_slab, dst_off) = &packed[&e.dst];
        let ys = scheme.encode_slab(e.src, e.dst, src_slab);
        let yd = scheme.encode_slab(e.src, e.dst, dst_slab);
        for s in 0..streams {
            let honest = scatter_stream(&ys, src_off[s], src_off[s + 1] - src_off[s]);
            let sent = if faulty.contains(&e.src) {
                advs[s].equality_symbols(e.src, e.dst, &honest)
            } else {
                honest
            };
            *link_bits[s].entry((e.src, e.dst)).or_insert(0) += sent.len() as u64 * SYMBOL_BITS;
            if sent != scatter_stream(&yd, dst_off[s], dst_off[s + 1] - dst_off[s]) {
                flags[s].insert(e.dst, true);
            }
            sends[s].insert((e.src, e.dst), sent);
        }
    }

    (0..streams)
        .map(|s| EqOutcome {
            sends: std::mem::take(&mut sends[s]),
            flags: std::mem::take(&mut flags[s]),
            duration: equality_duration(gk, &link_bits[s]),
        })
        .collect()
}

/// Which classic BB protocol serves as `Broadcast_Default` for flags and
/// dispute-control claims.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BroadcastKind {
    /// Exponential Information Gathering: optimal resilience (`n > 3f`),
    /// message count `O(n^{f+1})`.
    #[default]
    Eig,
    /// Phase-King: polynomial messages `O(f·n²)` but needs `n > 4f`;
    /// automatically falls back to EIG when the participant count is too
    /// small.
    PhaseKing,
}

/// Runs one `Broadcast_Default` of `input` from `source` among
/// `participants` over the given channel, returning every participant's
/// decision.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn broadcast_value<V, C>(
    kind: BroadcastKind,
    participants: &[NodeId],
    source: NodeId,
    f: usize,
    input: V,
    faulty: &BTreeSet<NodeId>,
    chan: &mut C,
    bits: u64,
) -> BTreeMap<NodeId, V>
where
    V: Clone + Eq + Ord + Default,
    C: EigChannel<V>,
{
    match kind {
        BroadcastKind::PhaseKing if participants.len() > 4 * f => {
            run_phase_king(
                participants,
                source,
                f,
                input,
                faulty,
                &mut PkHonest,
                chan,
                bits,
            )
            .decisions
        }
        _ => {
            run_eig(
                participants,
                source,
                f,
                input,
                faulty,
                &mut HonestAdversary,
                chan,
                bits,
            )
            .decisions
        }
    }
}

/// Outcome of step 2.2: every participant Byzantine-broadcasts its flag.
#[derive(Debug, Clone)]
pub struct FlagOutcome {
    /// The flag each node *announced* (faulty nodes may have lied).
    pub announced: BTreeMap<NodeId, bool>,
    /// Per broadcaster, the decision each participant reached (all
    /// fault-free participants agree, by EIG correctness).
    pub decisions: BTreeMap<NodeId, BTreeMap<NodeId, bool>>,
    /// Wall-clock duration of all flag broadcasts.
    pub duration: f64,
    /// Per-round send lists `(src, dst, bits)`, recorded only when the
    /// caller asked for them (message-level replay); empty otherwise.
    pub rounds: Vec<Vec<(NodeId, NodeId, u64)>>,
}

impl FlagOutcome {
    /// The agreed flag of broadcaster `b` as seen by `observer`.
    pub fn agreed(&self, b: NodeId, observer: NodeId) -> bool {
        self.decisions[&b][&observer]
    }

    /// Whether any broadcaster's agreed flag (at `observer`) is MISMATCH.
    pub fn any_mismatch(&self, observer: NodeId) -> bool {
        self.decisions.values().any(|d| d[&observer])
    }
}

/// Runs step 2.2: one EIG broadcast per participant of its 1-bit flag,
/// over the `2f+1`-disjoint-path emulated complete graph of the *original*
/// network `g0` (dispute-removed links still physically exist; NAB only
/// stops trusting them for its own phases).
///
/// `f_residual` is the fault budget among the participants (original `f`
/// minus nodes already exposed and excluded).
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn run_flag_broadcast(
    g0: &DiGraph,
    router: &PathRouter,
    participants: &[NodeId],
    f_residual: usize,
    computed_flags: &BTreeMap<NodeId, bool>,
    faulty: &BTreeSet<NodeId>,
    adv: &mut dyn NabAdversary,
    kind: BroadcastKind,
    record_rounds: bool,
) -> FlagOutcome {
    let mut net: NetSim<Routed<u64>> = NetSim::new(g0.clone());
    net.set_record_transcript(record_rounds);

    let mut announced = BTreeMap::new();
    let mut decisions = BTreeMap::new();
    for &b in participants {
        let honest = computed_flags[&b];
        let flag = if faulty.contains(&b) {
            adv.flag(b, honest)
        } else {
            honest
        };
        announced.insert(b, flag);
        let dec = {
            let mut chan = RoutedChannel {
                net: &mut net,
                router,
                faulty,
            };
            broadcast_value(
                kind,
                participants,
                b,
                f_residual,
                flag as u64,
                faulty,
                &mut chan,
                1,
            )
        };
        decisions.insert(b, dec.iter().map(|(&n, &v)| (n, v != 0)).collect());
    }

    FlagOutcome {
        announced,
        decisions,
        duration: net.clock(),
        rounds: crate::netexec::transcript_rounds(net.transcript()),
    }
}

/// Builds every node's *truthful* claims from the ground truth of Phases
/// 1–2 (what Phase 3 broadcasts when nodes do not lie about their
/// transcripts). `announced_flags` are the flags from step 2.2.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn honest_claims(
    gk: &DiGraph,
    source: NodeId,
    input: &Value,
    _trees: &[Arborescence],
    _scheme: &CodingScheme,
    p1: &crate::phase1::Phase1Output,
    eq: &EqOutcome,
    announced_flags: &BTreeMap<NodeId, bool>,
) -> BTreeMap<NodeId, NodeClaims> {
    let mut claims: BTreeMap<NodeId, NodeClaims> = gk
        .nodes()
        .map(|v| {
            (
                v,
                NodeClaims {
                    flag: announced_flags.get(&v).copied().unwrap_or(false),
                    ..NodeClaims::default()
                },
            )
        })
        .collect();
    claims.get_mut(&source).unwrap().input = Some(input.symbols().to_vec()); // nab-lint: allow(NAB003): claims is pre-populated with an entry per node

    for (&(t, src, dst), block) in &p1.sends {
        claims
            .get_mut(&src)
            .unwrap() // nab-lint: allow(NAB003): claims is pre-populated with an entry per node
            .p1_sent
            .insert((t, dst), block.as_ref().clone());
        claims
            .get_mut(&dst)
            .unwrap() // nab-lint: allow(NAB003): claims is pre-populated with an entry per node
            .p1_received
            .insert((t, src), block.as_ref().clone());
    }
    for (&(src, dst), symbols) in &eq.sends {
        claims
            .get_mut(&src)
            .unwrap() // nab-lint: allow(NAB003): claims is pre-populated with an entry per node
            .eq_sent
            .insert(dst, symbols.clone());
        claims
            .get_mut(&dst)
            .unwrap() // nab-lint: allow(NAB003): claims is pre-populated with an entry per node
            .eq_received
            .insert(src, symbols.clone());
    }
    claims
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{EqualityGarbler, FalseAlarm, HonestStrategy, TruthfulCorruptor};
    use crate::phase1::run_phase1;
    use nab_netgraph::arborescence::pack_arborescences;
    use nab_netgraph::flow::broadcast_rate;
    use nab_netgraph::gen;

    fn complete_setup() -> (DiGraph, Vec<Arborescence>, CodingScheme, Value) {
        let g = gen::complete(4, 2);
        let gamma = broadcast_rate(&g, 0);
        let trees = pack_arborescences(&g, 0, gamma).unwrap();
        let scheme = CodingScheme::random(&g, 2, 17);
        let input = Value::from_u64s(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12]);
        (g, trees, scheme, input)
    }

    #[test]
    fn clean_run_raises_no_flags() {
        let (g, trees, scheme, input) = complete_setup();
        let p1 = run_phase1(&g, 0, &input, &trees, &BTreeSet::new(), &mut HonestStrategy);
        let eq = run_equality_phase(
            &g,
            &p1.values,
            &scheme,
            &BTreeSet::new(),
            &mut HonestStrategy,
        );
        assert!(eq.flags.values().all(|f| !f));
    }

    #[test]
    fn equality_duration_is_l_over_rho() {
        let (g, trees, scheme, input) = complete_setup();
        let p1 = run_phase1(&g, 0, &input, &trees, &BTreeSet::new(), &mut HonestStrategy);
        let eq = run_equality_phase(
            &g,
            &p1.values,
            &scheme,
            &BTreeSet::new(),
            &mut HonestStrategy,
        );
        // S=12 symbols, ρ=2 → 6 columns × 16 bits = 96 bits = L/ρ, and
        // every link of capacity z carries 6·z symbols → 96 time units / z·z…
        // each link: z·6 symbols·16 bits / z cap = 96.
        assert!(
            (eq.duration - 96.0).abs() < 1e-9,
            "duration {}",
            eq.duration
        );
    }

    #[test]
    fn phase1_corruption_is_flagged() {
        let (g, trees, scheme, input) = complete_setup();
        let faulty = BTreeSet::from([1]);
        let mut adv = TruthfulCorruptor;
        let p1 = run_phase1(&g, 0, &input, &trees, &faulty, &mut adv);
        let eq = run_equality_phase(&g, &p1.values, &scheme, &faulty, &mut adv);
        assert!(
            eq.flags.iter().any(|(v, f)| *f && !faulty.contains(v)),
            "a fault-free node must flag the mismatch: {:?}",
            eq.flags
        );
    }

    #[test]
    fn garbled_equality_symbols_flag_receivers() {
        let (g, trees, scheme, input) = complete_setup();
        let faulty = BTreeSet::from([2]);
        let mut adv = EqualityGarbler;
        let p1 = run_phase1(&g, 0, &input, &trees, &faulty, &mut adv);
        let eq = run_equality_phase(&g, &p1.values, &scheme, &faulty, &mut adv);
        assert!(eq.flags.iter().any(|(v, f)| *f && *v != 2));
    }

    #[test]
    fn flag_broadcast_reaches_agreement() {
        let (g, _, _, _) = complete_setup();
        let router = PathRouter::build(&g, 1).unwrap();
        let participants: Vec<NodeId> = g.nodes().collect();
        let computed: BTreeMap<NodeId, bool> = participants.iter().map(|&v| (v, v == 2)).collect();
        let out = run_flag_broadcast(
            &g,
            &router,
            &participants,
            1,
            &computed,
            &BTreeSet::new(),
            &mut HonestStrategy,
            BroadcastKind::Eig,
            false,
        );
        for &b in &participants {
            for &o in &participants {
                assert_eq!(out.agreed(b, o), b == 2);
            }
        }
        assert!(out.any_mismatch(0));
        assert!(out.duration > 0.0);
    }

    #[test]
    fn false_alarm_is_agreed_as_mismatch() {
        let (g, _, _, _) = complete_setup();
        let router = PathRouter::build(&g, 1).unwrap();
        let participants: Vec<NodeId> = g.nodes().collect();
        let computed: BTreeMap<NodeId, bool> = participants.iter().map(|&v| (v, false)).collect();
        let faulty = BTreeSet::from([3]);
        let out = run_flag_broadcast(
            &g,
            &router,
            &participants,
            1,
            &computed,
            &faulty,
            &mut FalseAlarm,
            BroadcastKind::Eig,
            false,
        );
        // All honest observers see node 3's MISMATCH announcement.
        for o in [0, 1, 2] {
            assert!(out.agreed(3, o));
            assert!(out.any_mismatch(o));
        }
    }

    #[test]
    fn honest_claims_are_mutually_consistent() {
        let (g, trees, scheme, input) = complete_setup();
        let p1 = run_phase1(&g, 0, &input, &trees, &BTreeSet::new(), &mut HonestStrategy);
        let eq = run_equality_phase(
            &g,
            &p1.values,
            &scheme,
            &BTreeSet::new(),
            &mut HonestStrategy,
        );
        let claims = honest_claims(&g, 0, &input, &trees, &scheme, &p1, &eq, &eq.flags);
        assert!(crate::dispute::dc2_disputes(&claims).is_empty());
        assert!(crate::dispute::dc3_exposed(&g, 0, &trees, &scheme, &claims).is_empty());
        // Claims have meaningful sizes.
        assert!(claims[&0].bits() > 0);
        assert_eq!(claims[&0].implied_value(trees.len()), input);
    }
}
