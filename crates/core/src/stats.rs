//! Link-utilization analysis of NAB executions.
//!
//! The throughput argument rests on Phase 1 *saturating* a minimum cut:
//! time `L/γ_k` is optimal precisely because the arborescence packing
//! drives the binding links at full capacity. This module measures that,
//! and reports per-link load so operators can see where capacity is
//! stranded.

use std::collections::BTreeMap;

use nab_netgraph::arborescence::Arborescence;
use nab_netgraph::{DiGraph, NodeId};

use crate::phase1::Phase1Output;
use crate::value::SYMBOL_BITS;

/// Load placed on one directed link during a phase.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkLoad {
    /// Bits carried.
    pub bits: u64,
    /// Link capacity.
    pub cap: u64,
    /// `bits / (cap · duration)` — 1.0 means the link was busy for the
    /// whole phase.
    pub utilization: f64,
}

/// Per-link Phase-1 loads from the ground-truth sends.
pub fn phase1_link_loads(gk: &DiGraph, p1: &Phase1Output) -> BTreeMap<(NodeId, NodeId), LinkLoad> {
    let mut bits: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    for (&(_, src, dst), block) in &p1.sends {
        *bits.entry((src, dst)).or_insert(0) += block.len() as u64 * SYMBOL_BITS;
    }
    bits.into_iter()
        .map(|((src, dst), b)| {
            let cap = gk.find_edge(src, dst).map(|(_, e)| e.cap).unwrap_or(1);
            let utilization = if p1.duration > 0.0 {
                b as f64 / (cap as f64 * p1.duration)
            } else {
                0.0
            };
            (
                (src, dst),
                LinkLoad {
                    bits: b,
                    cap,
                    utilization,
                },
            )
        })
        .collect()
}

/// Utilization summary of a Phase-1 run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UtilizationSummary {
    /// Highest per-link utilization (should be ≈ 1.0: some link is the
    /// bottleneck that defines the phase duration).
    pub max: f64,
    /// Mean utilization over links that carried traffic.
    pub mean_loaded: f64,
    /// Number of links that carried any traffic.
    pub loaded_links: usize,
    /// Number of live links in `G_k`.
    pub total_links: usize,
}

/// Summarizes Phase-1 utilization.
pub fn phase1_utilization(gk: &DiGraph, p1: &Phase1Output) -> UtilizationSummary {
    let loads = phase1_link_loads(gk, p1);
    let max = loads.values().map(|l| l.utilization).fold(0.0, f64::max);
    let mean_loaded = if loads.is_empty() {
        0.0
    } else {
        loads.values().map(|l| l.utilization).sum::<f64>() / loads.len() as f64
    };
    UtilizationSummary {
        max,
        mean_loaded,
        loaded_links: loads.len(),
        total_links: gk.edge_count(),
    }
}

/// How many units of each edge's capacity the packing consumes — the
/// static (schedule-independent) view of the same saturation argument.
pub fn packing_usage(trees: &[Arborescence]) -> BTreeMap<(NodeId, NodeId), u64> {
    let mut usage = BTreeMap::new();
    for t in trees {
        for &(s, d) in &t.edges {
            *usage.entry((s, d)).or_insert(0) += 1;
        }
    }
    usage
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::HonestStrategy;
    use crate::phase1::run_phase1;
    use crate::value::Value;
    use nab_netgraph::arborescence::pack_arborescences;
    use nab_netgraph::flow::{broadcast_rate, min_cut};
    use nab_netgraph::gen;
    use std::collections::BTreeSet;

    fn run(g: &DiGraph, symbols: usize) -> (Vec<Arborescence>, Phase1Output) {
        let gamma = broadcast_rate(g, 0);
        let trees = pack_arborescences(g, 0, gamma).unwrap();
        let input = Value::from_u64s(&(0..symbols as u64).collect::<Vec<_>>());
        let out = run_phase1(g, 0, &input, &trees, &BTreeSet::new(), &mut HonestStrategy);
        (trees, out)
    }

    #[test]
    fn some_link_is_fully_utilized() {
        // The phase duration is defined by its busiest link, so max
        // utilization is exactly 1.
        for g in [gen::figure_2a(), gen::complete(4, 2), gen::complete(5, 1)] {
            let (_, p1) = run(&g, 60);
            let s = phase1_utilization(&g, &p1);
            assert!((s.max - 1.0).abs() < 1e-9, "max={} on {g:?}", s.max);
            assert!(s.loaded_links > 0);
            assert!(s.loaded_links <= s.total_links);
        }
    }

    #[test]
    fn source_min_cut_is_saturated_on_figure_2a() {
        // γ = 2 on figure_2a and the cut into node 2 (paper node 3) is the
        // binding one; the packing must consume the full capacity of the
        // source's outgoing cut used by the binding flow.
        let g = gen::figure_2a();
        let (trees, _) = run(&g, 60);
        let usage = packing_usage(&trees);
        // Link (1,2) of the paper — (0,1) here, capacity 2 — is used twice.
        assert_eq!(usage[&(0, 1)], 2);
        let gamma = broadcast_rate(&g, 0);
        assert_eq!(min_cut(&g, 0, 2), gamma);
    }

    #[test]
    fn loads_respect_capacity_times_duration() {
        let g = gen::complete(4, 3);
        let (_, p1) = run(&g, 120);
        for ((s, d), load) in phase1_link_loads(&g, &p1) {
            assert!(
                load.utilization <= 1.0 + 1e-9,
                "link ({s},{d}) over-driven: {}",
                load.utilization
            );
            assert_eq!(load.cap, 3);
        }
    }

    #[test]
    fn packing_usage_counts_every_tree_edge() {
        let g = gen::complete(4, 1);
        let (trees, _) = run(&g, 12);
        let usage = packing_usage(&trees);
        let total: u64 = usage.values().sum();
        let expected: usize = trees.iter().map(|t| t.edges.len()).sum();
        assert_eq!(total as usize, expected);
    }
}
