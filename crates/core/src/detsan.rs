//! DetSan — the runtime determinism sanitizer (`--features sanitize`).
//!
//! The static pass (`nab-lint`) keeps nondeterminism *sources* out of the
//! code; DetSan checks the *effects* at runtime. With the `sanitize`
//! feature enabled, the engine digests its canonical state at every phase
//! boundary (FNV-1a over a fixed serialization order) and emits the digest
//! as an [`EventKind::DetSanDigest`] trace event, and a handful of
//! invariants that the optimized paths rely on — packing validity after
//! incremental plan repair, slab-offset monotonicity, histogram merge
//! commutativity — are re-verified on the spot. Two runs of the same
//! configuration must produce identical digest sequences; diffing two
//! sanitize traces pinpoints the first phase where determinism broke.
//!
//! Everything in this module is compiled out without the feature; the
//! default build carries zero cost. The canonical outputs themselves are
//! unaffected either way — a sweep under `sanitize` is byte-identical to
//! one without (CI asserts this).
//!
//! [`EventKind::DetSanDigest`]: nab_obs::trace::EventKind::DetSanDigest

use std::collections::{BTreeMap, BTreeSet};

use nab_netgraph::NodeId;

use crate::dispute::DisputeState;
use crate::value::Value;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// An incremental 64-bit FNV-1a hasher over little-endian words.
///
/// FNV-1a is used (rather than `DefaultHasher`) because its output is
/// specified: digests must be stable across Rust versions and platforms so
/// that traces from different builds are diffable.
#[derive(Debug, Clone)]
pub struct Fnv1a(u64);

impl Default for Fnv1a {
    fn default() -> Self {
        Fnv1a(FNV_OFFSET)
    }
}

impl Fnv1a {
    /// A fresh hasher at the offset basis.
    pub fn new() -> Self {
        Self::default()
    }

    /// Absorbs one byte.
    pub fn byte(&mut self, b: u8) -> &mut Self {
        self.0 = (self.0 ^ u64::from(b)).wrapping_mul(FNV_PRIME);
        self
    }

    /// Absorbs a `u64` as eight little-endian bytes.
    pub fn u64(&mut self, x: u64) -> &mut Self {
        for b in x.to_le_bytes() {
            self.byte(b);
        }
        self
    }

    /// The digest so far.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Digest of per-node values (Phase 1 output / instance outputs).
///
/// `BTreeMap` iteration is ordered, so the serialization order is fixed:
/// `(node, len, symbols...)` per entry.
pub fn digest_values(values: &BTreeMap<NodeId, Value>) -> u64 {
    let mut h = Fnv1a::new();
    h.u64(values.len() as u64);
    for (&v, val) in values {
        h.u64(v as u64);
        h.u64(val.len() as u64);
        for s in val.symbols() {
            h.u64(u64::from(s.0));
        }
    }
    h.finish()
}

/// Digest of per-node equality flags (Phase 2 output).
pub fn digest_flags(flags: &BTreeMap<NodeId, bool>) -> u64 {
    let mut h = Fnv1a::new();
    h.u64(flags.len() as u64);
    for (&v, &flag) in flags {
        h.u64(v as u64);
        h.byte(u8::from(flag));
    }
    h.finish()
}

/// Digest of the dispute state (Phase 3 output): all pairs, then all
/// removed nodes, in their `BTreeSet` order.
pub fn digest_disputes(disputes: &DisputeState) -> u64 {
    let mut h = Fnv1a::new();
    h.u64(disputes.pairs.len() as u64);
    for &(a, b) in &disputes.pairs {
        h.u64(a as u64);
        h.u64(b as u64);
    }
    h.u64(disputes.removed.len() as u64);
    for &v in &disputes.removed {
        h.u64(v as u64);
    }
    h.finish()
}

/// Digest of a faulty set, mixed into instance-level digests so runs with
/// different fault injections cannot alias.
pub fn digest_node_set(set: &BTreeSet<NodeId>) -> u64 {
    let mut h = Fnv1a::new();
    h.u64(set.len() as u64);
    for &v in set {
        h.u64(v as u64);
    }
    h.finish()
}

/// Asserts that a slab offset table is strictly monotonic and starts at
/// zero — the invariant the batched Phase-2 gather/scatter kernels index
/// by. Called by `phase2` under `sanitize`.
///
/// # Panics
///
/// Panics with the offending index when the invariant is violated.
pub fn check_offsets_monotonic(offsets: &[usize]) {
    assert!(
        offsets.first() == Some(&0),
        "DetSan: slab offset table must start at 0, got {:?}",
        offsets.first()
    );
    for (i, w) in offsets.windows(2).enumerate() {
        assert!(
            w[0] <= w[1],
            "DetSan: slab offsets not monotonic at index {i}: {} > {}",
            w[0],
            w[1]
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(Fnv1a::new().finish(), 0xcbf2_9ce4_8422_2325);
        let mut h = Fnv1a::new();
        for b in b"a" {
            h.byte(*b);
        }
        assert_eq!(h.finish(), 0xaf63_dc4c_8601_ec8c);
    }

    #[test]
    fn value_digest_is_order_and_content_sensitive() {
        let mut a = BTreeMap::new();
        a.insert(0, Value::from_u64s(&[1, 2, 3]));
        a.insert(1, Value::from_u64s(&[4, 5, 6]));
        let mut b = a.clone();
        assert_eq!(digest_values(&a), digest_values(&b));
        b.insert(1, Value::from_u64s(&[4, 5, 7]));
        assert_ne!(digest_values(&a), digest_values(&b));
    }

    #[test]
    fn flags_digest_distinguishes_nodes_and_bits() {
        let mut a = BTreeMap::new();
        a.insert(0, false);
        a.insert(2, true);
        let mut b = a.clone();
        assert_eq!(digest_flags(&a), digest_flags(&b));
        b.insert(2, false);
        assert_ne!(digest_flags(&a), digest_flags(&b));
    }

    #[test]
    fn offsets_check_accepts_valid_tables() {
        check_offsets_monotonic(&[0]);
        check_offsets_monotonic(&[0, 3, 3, 9]);
    }

    #[test]
    #[should_panic(expected = "not monotonic")]
    fn offsets_check_rejects_regression() {
        check_offsets_monotonic(&[0, 4, 2]);
    }
}
