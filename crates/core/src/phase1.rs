//! Phase 1: unreliable broadcast over spanning arborescences (Appendix A).
//!
//! The `L`-bit input splits into `γ_k` blocks, one streamed down each
//! capacity-respecting spanning arborescence of `G_k`. No fault tolerance
//! is attempted: a faulty relay can corrupt everything downstream of it on
//! its tree. With zero propagation delay the whole phase takes `L/γ_k`
//! time — each link `e` carries `(uses of e) · L/γ_k ≤ z_e · L/γ_k` bits.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use nab_gf::Gf2_16;
use nab_netgraph::arborescence::Arborescence;
use nab_netgraph::{DiGraph, NodeId};

use crate::adversary::NabAdversary;
use crate::value::{Value, SYMBOL_BITS};

/// A Phase-1 block as carried by the network. Honest relays forward the
/// block they received unchanged, so the ground truth shares one
/// allocation per tree among the source, every relay, and the send
/// records — only faulty nodes materialize new blocks.
pub type Block = Arc<Vec<Gf2_16>>;

/// Ground truth of one Phase-1 execution.
#[derive(Debug, Clone)]
pub struct Phase1Output {
    /// The value each active node holds at the end of the phase (the
    /// source holds its input).
    pub values: BTreeMap<NodeId, Value>,
    /// Every block actually transmitted: `(tree, src, dst) → block`.
    pub sends: BTreeMap<(usize, NodeId, NodeId), Block>,
    /// Wall-clock duration charged (`≈ L/γ_k`).
    pub duration: f64,
}

/// Runs Phase 1 on `gk`.
///
/// Faulty nodes (including a faulty source) choose their transmissions via
/// `adv`; fault-free nodes follow the protocol. The returned
/// [`Phase1Output::sends`] is the network's ground truth — each receiver's
/// local view equals the sender's transmission because links are reliable.
///
/// # Panics
///
/// Panics if `source` is inactive in `gk` or a tree edge is missing from
/// `gk`.
pub fn run_phase1(
    gk: &DiGraph,
    source: NodeId,
    input: &Value,
    trees: &[Arborescence],
    faulty: &BTreeSet<NodeId>,
    adv: &mut dyn NabAdversary,
) -> Phase1Output {
    assert!(gk.is_active(source), "source must be active in G_k");
    let honest_blocks: Vec<Block> = input
        .split_blocks(trees.len().max(1))
        .into_iter()
        .map(Arc::new)
        .collect();

    let mut sends: BTreeMap<(usize, NodeId, NodeId), Block> = BTreeMap::new();
    // Per-tree block held at each node.
    let mut held: Vec<BTreeMap<NodeId, Block>> = vec![BTreeMap::new(); trees.len()];

    for (t, tree) in trees.iter().enumerate() {
        held[t].insert(source, Arc::clone(&honest_blocks[t]));
        for u in tree.bfs_order() {
            let received = held[t].get(&u).cloned().unwrap_or_default();
            for child in tree.children(u) {
                let payload = if u == source {
                    if faulty.contains(&source) {
                        Arc::new(adv.phase1_source_block(t, child, &honest_blocks[t]))
                    } else {
                        Arc::clone(&honest_blocks[t])
                    }
                } else if faulty.contains(&u) {
                    Arc::new(adv.phase1_forward(u, t, child, &received))
                } else {
                    Arc::clone(&received)
                };
                sends.insert((t, u, child), Arc::clone(&payload));
                held[t].insert(child, payload);
            }
        }
    }

    // Charge link time: all transmissions happen concurrently (zero
    // propagation delay), so the phase lasts as long as its busiest link
    // — `max_e(bits_e / z_e)` with per-link bit totals, exactly the
    // round charge `NetSim::deliver_round` computes.
    let mut link_bits: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
    for ((_, src, dst), block) in &sends {
        *link_bits.entry((*src, *dst)).or_insert(0) += block.len() as u64 * SYMBOL_BITS;
    }
    let mut duration: f64 = 0.0;
    for (&(src, dst), &bits) in &link_bits {
        let cap = gk
            .find_edge(src, dst)
            .map(|(_, e)| e.cap)
            .expect("tree edges exist in G_k"); // nab-lint: allow(NAB003): packed trees only use edges of G_k by construction
        duration = duration.max(bits as f64 / cap as f64);
    }

    // Final values.
    let mut values = BTreeMap::new();
    for v in gk.nodes() {
        if v == source {
            values.insert(v, input.clone());
        } else {
            let mut symbols = Vec::with_capacity(input.len());
            for per_tree in &held {
                if let Some(block) = per_tree.get(&v) {
                    symbols.extend_from_slice(block);
                }
            }
            values.insert(v, Value::from_symbols(symbols));
        }
    }

    Phase1Output {
        values,
        sends,
        duration,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::{EquivocatingSource, HonestStrategy, TruthfulCorruptor};
    use nab_netgraph::arborescence::pack_arborescences;
    use nab_netgraph::flow::broadcast_rate;
    use nab_netgraph::gen;

    fn setup(g: &DiGraph) -> (Vec<Arborescence>, Value) {
        let gamma = broadcast_rate(g, 0);
        let trees = pack_arborescences(g, 0, gamma).unwrap();
        let input = Value::from_u64s(&[11, 22, 33, 44, 55, 66]);
        (trees, input)
    }

    #[test]
    fn fault_free_run_delivers_input_everywhere() {
        let g = gen::figure_2a();
        let (trees, input) = setup(&g);
        let out = run_phase1(&g, 0, &input, &trees, &BTreeSet::new(), &mut HonestStrategy);
        for v in g.nodes() {
            assert_eq!(out.values[&v], input, "node {v} got wrong value");
        }
    }

    #[test]
    fn duration_is_l_over_gamma() {
        // figure_2a: γ=2, S=6 symbols → L=96 bits → L/γ = 48 time units.
        let g = gen::figure_2a();
        let (trees, input) = setup(&g);
        let out = run_phase1(&g, 0, &input, &trees, &BTreeSet::new(), &mut HonestStrategy);
        assert!(
            (out.duration - 48.0).abs() < 1e-9,
            "duration {}",
            out.duration
        );
    }

    #[test]
    fn corrupt_relay_poisons_its_subtree_only() {
        let g = gen::figure_2a();
        let (trees, input) = setup(&g);
        let faulty = BTreeSet::from([1]);
        let out = run_phase1(&g, 0, &input, &trees, &faulty, &mut TruthfulCorruptor);
        // Node 1 corrupts everything it forwards; some downstream node must
        // end up with a value differing from the input.
        let poisoned = g.nodes().filter(|&v| out.values[&v] != input).count();
        assert!(poisoned > 0, "corruption must reach someone");
        // The source always holds its own input.
        assert_eq!(out.values[&0], input);
    }

    #[test]
    fn equivocating_source_creates_disagreement() {
        let g = gen::figure_2a();
        let (trees, input) = setup(&g);
        let faulty = BTreeSet::from([0]);
        let out = run_phase1(&g, 0, &input, &trees, &faulty, &mut EquivocatingSource);
        let distinct: std::collections::HashSet<_> = g
            .nodes()
            .filter(|&v| v != 0)
            .map(|v| out.values[&v].clone())
            .collect();
        // Tree 0 is corrupted, so at least one non-source node differs from
        // the honest input.
        assert!(
            g.nodes()
                .filter(|&v| v != 0)
                .any(|v| out.values[&v] != input),
            "equivocation must corrupt someone: {distinct:?}"
        );
    }

    #[test]
    fn sends_ground_truth_covers_every_tree_edge() {
        let g = gen::complete(4, 1);
        let (trees, input) = setup(&g);
        let out = run_phase1(&g, 0, &input, &trees, &BTreeSet::new(), &mut HonestStrategy);
        let expected: usize = trees.iter().map(|t| t.edges.len()).sum();
        assert_eq!(out.sends.len(), expected);
    }

    #[test]
    fn single_tree_graph() {
        // A directed path has γ=1.
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1, 1);
        g.add_edge(1, 2, 1);
        let trees = pack_arborescences(&g, 0, 1).unwrap();
        let input = Value::from_u64s(&[1, 2, 3]);
        let out = run_phase1(&g, 0, &input, &trees, &BTreeSet::new(), &mut HonestStrategy);
        assert_eq!(out.values[&2], input);
        // 48 bits over unit links: 48 time units on each of 2 links, in
        // parallel → 48.
        assert!((out.duration - 48.0).abs() < 1e-9);
    }
}
