//! Deterministic discrete-event network timing kernel.
//!
//! The synchronous engine in `nab` charges phases by formula
//! (`max_e bits_e / cap_e` per round); this crate replays the same
//! message sets through an *event-driven* link model so that sweeps can
//! report delivered-time **distributions** under WAN latency, jitter,
//! stragglers, and lossy links — not just steady-state rates.
//!
//! Design constraints, in priority order:
//!
//! 1. **Determinism.** Every sampled quantity (jitter, loss) is derived
//!    by hash-mixing `(seed, link, per-link attempt counter)` — never
//!    from wall-clock or from a shared RNG consumed in pop order. Two
//!    runs with the same seed and the same *multiset* of scheduled
//!    messages produce the same delivery schedule, regardless of the
//!    order in which messages were inserted or which worker thread runs
//!    the simulation.
//! 2. **Reproducible tie-breaking.** The event queue is a binary heap
//!    keyed by `(time_ns, src, dst, bits, id, seq)`: simultaneous
//!    events pop in a canonical content order, with the insertion
//!    sequence number only breaking ties between fully identical
//!    (hence interchangeable) messages.
//! 3. **Formula compatibility.** With the zero model ([`LinkModel::zero`];
//!    zero latency, no loss) the completion time of a batch of messages
//!    on a link equals `total_bits / cap` — identical to the synchronous
//!    round charge, so the message-level path cross-checks against the
//!    formula path to within integer-nanosecond rounding.
//!
//! Times are in virtual nanoseconds; [`UNIT_NS`] nanoseconds equal one
//! abstract capacity time-unit (the time a `cap = 1` link needs for one
//! bit), which is the unit the formula path reports.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

use nab_netgraph::{DiGraph, NodeId};

/// Virtual nanoseconds per abstract capacity time-unit (one bit on a
/// `cap = 1` link). Event times divided by `UNIT_NS` are in the same
/// unit as the formula path's `PhaseTimes`.
pub const UNIT_NS: u64 = 1_000_000;

/// SplitMix64-style mixer; same constants as the sweep runner's per-job
/// seed derivation, so net randomness composes with the existing
/// seed-mixing discipline.
#[must_use]
pub fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a mixed 64-bit draw onto the unit interval `[0, 1)`.
fn unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// Propagation-delay model of one directed link.
#[derive(Debug, Clone, PartialEq)]
pub enum Latency {
    /// Constant propagation delay.
    Fixed {
        /// Delay in virtual nanoseconds.
        delay_ns: u64,
    },
    /// `base + U[0, jitter]` uniform jitter.
    Uniform {
        /// Minimum delay in virtual nanoseconds.
        base_ns: u64,
        /// Width of the uniform jitter band in virtual nanoseconds.
        jitter_ns: u64,
    },
    /// Log-normal delay: `median · exp(sigma · z)` with `z` standard
    /// normal (clamped to `[-4, 4]` to bound the tail).
    LogNormal {
        /// Median delay in virtual nanoseconds.
        median_ns: u64,
        /// Shape parameter σ of the underlying normal.
        sigma: f64,
    },
}

impl Latency {
    /// Samples a delay from `draw` (a mixed 64-bit value).
    #[must_use]
    pub fn sample_ns(&self, draw: u64) -> u64 {
        match *self {
            Latency::Fixed { delay_ns } => delay_ns,
            Latency::Uniform { base_ns, jitter_ns } => {
                base_ns + (unit_f64(draw) * jitter_ns as f64).round() as u64
            }
            Latency::LogNormal { median_ns, sigma } => {
                // Box-Muller from two sub-draws of the same 64-bit seed.
                let u1 = unit_f64(mix(draw, 1)).max(f64::MIN_POSITIVE);
                let u2 = unit_f64(mix(draw, 2));
                let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                let z = z.clamp(-4.0, 4.0);
                (median_ns as f64 * (sigma * z).exp()).round() as u64
            }
        }
    }

    /// Scales every delay parameter by `factor` (straggler links).
    #[must_use]
    pub fn scaled(&self, factor: u64) -> Latency {
        match *self {
            Latency::Fixed { delay_ns } => Latency::Fixed {
                delay_ns: delay_ns * factor,
            },
            Latency::Uniform { base_ns, jitter_ns } => Latency::Uniform {
                base_ns: base_ns * factor,
                jitter_ns: jitter_ns * factor,
            },
            Latency::LogNormal { median_ns, sigma } => Latency::LogNormal {
                median_ns: median_ns * factor,
                sigma,
            },
        }
    }
}

/// I.i.d. per-attempt loss with bounded retransmit.
///
/// A lost attempt occupies the link for its full serialization time,
/// then the sender retransmits `rto_ns` later. After `max_retries`
/// failed attempts the final attempt always succeeds: links here model
/// *degraded timing*, not Byzantine drops — the protocol's correctness
/// argument assumes reliable links, so loss shifts delivered-time
/// distributions rightward without ever losing a message. This is also
/// what guarantees the simulation terminates for every seed.
#[derive(Debug, Clone, PartialEq)]
pub struct Loss {
    /// Per-attempt loss probability in `[0, 1]`.
    pub p: f64,
    /// Failed attempts allowed before the reliable final attempt.
    pub max_retries: u32,
    /// Retransmit timeout in virtual nanoseconds.
    pub rto_ns: u64,
}

/// Full per-link model: propagation delay plus optional loss.
#[derive(Debug, Clone, PartialEq)]
pub struct LinkModel {
    /// Propagation-delay model.
    pub latency: Latency,
    /// Loss model; `None` means a lossless link.
    pub loss: Option<Loss>,
}

impl LinkModel {
    /// Zero latency, no loss: event timing degenerates to the
    /// synchronous formula charge.
    #[must_use]
    pub fn zero() -> Self {
        LinkModel {
            latency: Latency::Fixed { delay_ns: 0 },
            loss: None,
        }
    }
}

/// Link models for a whole network: a default plus per-link overrides.
#[derive(Debug, Clone, PartialEq)]
pub struct NetModel {
    /// Model for every link without an override.
    pub default: LinkModel,
    /// Per-directed-link overrides.
    pub overrides: BTreeMap<(NodeId, NodeId), LinkModel>,
}

impl NetModel {
    /// A uniform model for every link.
    #[must_use]
    pub fn uniform(link: LinkModel) -> Self {
        NetModel {
            default: link,
            overrides: BTreeMap::new(),
        }
    }

    /// The model governing the directed link `src → dst`.
    #[must_use]
    pub fn link(&self, src: NodeId, dst: NodeId) -> &LinkModel {
        self.overrides.get(&(src, dst)).unwrap_or(&self.default)
    }
}

impl Default for NetModel {
    fn default() -> Self {
        NetModel::uniform(LinkModel::zero())
    }
}

/// One completed delivery, as reported by [`EventNet::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Delivery {
    /// Caller-assigned message id (e.g. arborescence index).
    pub id: u64,
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Message size in bits.
    pub bits: u64,
    /// Time the message was scheduled.
    pub sent_ns: u64,
    /// Time the last bit arrived at `dst`.
    pub delivered_ns: u64,
    /// Transmission attempts taken (1 = no loss).
    pub attempts: u32,
}

/// A pending transmission attempt in the event queue.
///
/// Derived `Ord` gives the canonical pop order
/// `(time, src, dst, bits, id, seq, attempt)`: content keys first, the
/// insertion sequence number only separating otherwise-identical
/// (interchangeable) messages, so the delivery *schedule* is invariant
/// under insertion-order permutations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Attempt {
    time_ns: u64,
    src: NodeId,
    dst: NodeId,
    bits: u64,
    id: u64,
    seq: u64,
    attempt: u32,
}

/// Deterministic discrete-event simulator over one capacitated graph.
///
/// [`schedule`](EventNet::schedule) enqueues messages;
/// [`run`](EventNet::run) drains the event heap, applying FIFO link
/// serialization (`bits / cap`, virtual-ns), sampled propagation delay,
/// and bounded retransmit on loss, and returns the deliveries. Per-node
/// virtual clocks track the last delivery seen by each node.
#[derive(Debug, Clone)]
pub struct EventNet {
    caps: BTreeMap<(NodeId, NodeId), u64>,
    model: NetModel,
    seed: u64,
    heap: BinaryHeap<Reverse<Attempt>>,
    seq: u64,
    link_busy: BTreeMap<(NodeId, NodeId), u64>,
    link_draws: BTreeMap<(NodeId, NodeId), u64>,
    node_clock: BTreeMap<NodeId, u64>,
    clock_ns: u64,
}

impl EventNet {
    /// A simulator over `g`'s links (parallel edges pool their
    /// capacity) under `model`, with all randomness derived from
    /// `seed`.
    #[must_use]
    pub fn new(g: &DiGraph, model: NetModel, seed: u64) -> Self {
        let mut caps = BTreeMap::new();
        for (_, e) in g.edges() {
            *caps.entry((e.src, e.dst)).or_insert(0) += e.cap;
        }
        EventNet {
            caps,
            model,
            seed,
            heap: BinaryHeap::new(),
            seq: 0,
            link_busy: BTreeMap::new(),
            link_draws: BTreeMap::new(),
            node_clock: BTreeMap::new(),
            clock_ns: 0,
        }
    }

    /// Enqueues a message of `bits` bits on `src → dst` at `at_ns`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no `src → dst` link — scheduling on a
    /// missing link is a protocol-layer bug, mirroring
    /// `nab_sim::SendError::NoSuchLink`.
    pub fn schedule(&mut self, id: u64, src: NodeId, dst: NodeId, bits: u64, at_ns: u64) {
        assert!(
            self.caps.contains_key(&(src, dst)),
            "EventNet::schedule: no such link {src} -> {dst}"
        );
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse(Attempt {
            time_ns: at_ns,
            src,
            dst,
            bits,
            id,
            seq,
            attempt: 1,
        }));
    }

    /// Next 64-bit draw for link `(src, dst)`: mixed from the seed, the
    /// link identity, and a per-link counter advanced in that link's
    /// deterministic pop order.
    fn draw(&mut self, src: NodeId, dst: NodeId) -> u64 {
        let counter = self.link_draws.entry((src, dst)).or_insert(0);
        let c = *counter;
        *counter += 1;
        let link_key = ((src as u64) << 32) ^ dst as u64;
        mix(mix(self.seed, link_key), c)
    }

    /// Drains the event queue, returning every delivery sorted by
    /// `(delivered_ns, src, dst, id)`.
    pub fn run(&mut self) -> Vec<Delivery> {
        let mut out = Vec::new();
        while let Some(Reverse(ev)) = self.heap.pop() {
            let cap = self.caps[&(ev.src, ev.dst)];
            let busy = self.link_busy.entry((ev.src, ev.dst)).or_insert(0);
            let start = ev.time_ns.max(*busy);
            let tx_end = start + (ev.bits * UNIT_NS).div_ceil(cap);
            *busy = tx_end;

            let link = self.model.link(ev.src, ev.dst).clone();
            if let Some(loss) = &link.loss {
                if ev.attempt <= loss.max_retries && unit_f64(self.draw(ev.src, ev.dst)) < loss.p {
                    let seq = self.seq;
                    self.seq += 1;
                    self.heap.push(Reverse(Attempt {
                        time_ns: tx_end + loss.rto_ns,
                        attempt: ev.attempt + 1,
                        seq,
                        ..ev
                    }));
                    continue;
                }
            }
            let lat = link.latency.sample_ns(self.draw(ev.src, ev.dst));
            let delivered_ns = tx_end + lat;
            let clock = self.node_clock.entry(ev.dst).or_insert(0);
            *clock = (*clock).max(delivered_ns);
            self.clock_ns = self.clock_ns.max(delivered_ns);
            out.push(Delivery {
                id: ev.id,
                src: ev.src,
                dst: ev.dst,
                bits: ev.bits,
                sent_ns: ev.time_ns,
                delivered_ns,
                attempts: ev.attempt,
            });
        }
        out.sort_by_key(|d| (d.delivered_ns, d.src, d.dst, d.id));
        out
    }

    /// The virtual clock of `v`: the time of the last delivery it has
    /// received (0 if none yet).
    #[must_use]
    pub fn node_clock(&self, v: NodeId) -> u64 {
        self.node_clock.get(&v).copied().unwrap_or(0)
    }

    /// Global virtual clock: the latest delivery so far.
    #[must_use]
    pub fn clock_ns(&self) -> u64 {
        self.clock_ns
    }
}

/// Textual link-model spec, as written in a `.scenario` document's
/// `link_model` key. Grammar (all times in virtual nanoseconds;
/// [`UNIT_NS`] ns = one capacity time-unit):
///
/// ```text
/// link_model = <latency>[+loss:P:RETRIES:RTO][+straggler:SRC:DST:FACTOR]
/// <latency>  = fixed:DELAY | uniform:BASE:JITTER | lognormal:MEDIAN:SIGMA
/// ```
///
/// `straggler` multiplies the latency parameters of the single directed
/// link `SRC → DST` by `FACTOR`, leaving every other link on the
/// default model.
#[derive(Debug, Clone, PartialEq)]
pub struct NetSpec {
    /// Default latency model for every link.
    pub latency: Latency,
    /// Optional loss model applied to every link.
    pub loss: Option<Loss>,
    /// Optional straggler override: `(src, dst, latency factor)`.
    pub straggler: Option<(NodeId, NodeId, u64)>,
}

impl Default for NetSpec {
    fn default() -> Self {
        NetSpec {
            latency: Latency::Fixed { delay_ns: 0 },
            loss: None,
            straggler: None,
        }
    }
}

impl NetSpec {
    /// Parses a spec string like
    /// `uniform:1000000:250000+loss:0.01:3:2000000`.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed clause.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let mut out = NetSpec::default();
        let mut clauses = spec.split('+');
        let latency = clauses.next().unwrap_or("");
        let parts: Vec<&str> = latency.split(':').collect();
        out.latency = match (parts[0], parts.len()) {
            ("fixed", 2) => Latency::Fixed {
                delay_ns: parse_u64("fixed delay", parts[1])?,
            },
            ("uniform", 3) => Latency::Uniform {
                base_ns: parse_u64("uniform base", parts[1])?,
                jitter_ns: parse_u64("uniform jitter", parts[2])?,
            },
            ("lognormal", 3) => {
                let sigma = parse_f64("lognormal sigma", parts[2])?;
                if !(0.0..=4.0).contains(&sigma) {
                    return Err(format!("link_model: lognormal sigma {sigma} outside [0,4]"));
                }
                Latency::LogNormal {
                    median_ns: parse_u64("lognormal median", parts[1])?,
                    sigma,
                }
            }
            _ => {
                return Err(format!(
                    "link_model: unknown latency {latency:?} (known: fixed:DELAY_NS, \
                     uniform:BASE_NS:JITTER_NS, lognormal:MEDIAN_NS:SIGMA)"
                ))
            }
        };
        for clause in clauses {
            let parts: Vec<&str> = clause.split(':').collect();
            match (parts[0], parts.len()) {
                ("loss", 4) => {
                    let p = parse_f64("loss probability", parts[1])?;
                    if !(0.0..=1.0).contains(&p) {
                        return Err(format!("link_model: loss probability {p} outside [0,1]"));
                    }
                    let max_retries = parse_u64("loss retries", parts[2])? as u32;
                    if max_retries > 16 {
                        return Err("link_model: loss retries capped at 16".into());
                    }
                    out.loss = Some(Loss {
                        p,
                        max_retries,
                        rto_ns: parse_u64("loss rto", parts[3])?,
                    });
                }
                ("straggler", 4) => {
                    let factor = parse_u64("straggler factor", parts[3])?;
                    if factor == 0 {
                        return Err("link_model: straggler factor must be >= 1".into());
                    }
                    out.straggler = Some((
                        parse_u64("straggler src", parts[1])? as NodeId,
                        parse_u64("straggler dst", parts[2])? as NodeId,
                        factor,
                    ));
                }
                _ => {
                    return Err(format!(
                        "link_model: unknown clause {clause:?} (known: loss:P:RETRIES:RTO_NS, \
                         straggler:SRC:DST:FACTOR)"
                    ))
                }
            }
        }
        Ok(out)
    }

    /// The canonical spec string this parses back from.
    #[must_use]
    pub fn spec_string(&self) -> String {
        let mut s = match &self.latency {
            Latency::Fixed { delay_ns } => format!("fixed:{delay_ns}"),
            Latency::Uniform { base_ns, jitter_ns } => format!("uniform:{base_ns}:{jitter_ns}"),
            Latency::LogNormal { median_ns, sigma } => format!("lognormal:{median_ns}:{sigma}"),
        };
        if let Some(loss) = &self.loss {
            s.push_str(&format!(
                "+loss:{}:{}:{}",
                loss.p, loss.max_retries, loss.rto_ns
            ));
        }
        if let Some((src, dst, factor)) = self.straggler {
            s.push_str(&format!("+straggler:{src}:{dst}:{factor}"));
        }
        s
    }

    /// Resolves the spec into a concrete [`NetModel`].
    #[must_use]
    pub fn build(&self) -> NetModel {
        let default = LinkModel {
            latency: self.latency.clone(),
            loss: self.loss.clone(),
        };
        let mut model = NetModel::uniform(default.clone());
        if let Some((src, dst, factor)) = self.straggler {
            model.overrides.insert(
                (src, dst),
                LinkModel {
                    latency: default.latency.scaled(factor),
                    loss: default.loss,
                },
            );
        }
        model
    }
}

fn parse_u64(what: &str, raw: &str) -> Result<u64, String> {
    raw.parse()
        .map_err(|_| format!("link_model: bad {what} {raw:?}"))
}

fn parse_f64(what: &str, raw: &str) -> Result<f64, String> {
    raw.parse()
        .map_err(|_| format!("link_model: bad {what} {raw:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize, cap: u64) -> DiGraph {
        let mut g = DiGraph::new(n);
        for v in 0..n - 1 {
            g.add_edge(v, v + 1, cap);
            g.add_edge(v + 1, v, cap);
        }
        g
    }

    #[test]
    fn zero_model_matches_formula_charge() {
        // Three messages totalling 12 bits on a cap-2 link: the last
        // completes at 12/2 = 6 units, exactly the round formula.
        let g = line(2, 2);
        let mut net = EventNet::new(&g, NetModel::default(), 7);
        net.schedule(0, 0, 1, 4, 0);
        net.schedule(1, 0, 1, 4, 0);
        net.schedule(2, 0, 1, 4, 0);
        let deliveries = net.run();
        assert_eq!(deliveries.len(), 3);
        assert_eq!(deliveries.last().unwrap().delivered_ns, 6 * UNIT_NS);
        assert_eq!(net.clock_ns(), 6 * UNIT_NS);
        assert_eq!(net.node_clock(1), 6 * UNIT_NS);
        assert_eq!(net.node_clock(0), 0);
    }

    #[test]
    fn fixed_latency_shifts_every_delivery() {
        let g = line(2, 1);
        let model = NetModel::uniform(LinkModel {
            latency: Latency::Fixed { delay_ns: 500 },
            loss: None,
        });
        let mut net = EventNet::new(&g, model, 7);
        net.schedule(0, 0, 1, 2, 0);
        let d = net.run();
        assert_eq!(d[0].delivered_ns, 2 * UNIT_NS + 500);
    }

    #[test]
    fn ties_pop_in_canonical_content_order() {
        // Two same-time messages on the same link: the smaller id
        // serializes first regardless of insertion order.
        let g = line(2, 1);
        for flip in [false, true] {
            let mut net = EventNet::new(&g, NetModel::default(), 7);
            let ids: [u64; 2] = if flip { [1, 0] } else { [0, 1] };
            for id in ids {
                net.schedule(id, 0, 1, 1, 0);
            }
            let d = net.run();
            assert_eq!((d[0].id, d[0].delivered_ns), (0, UNIT_NS));
            assert_eq!((d[1].id, d[1].delivered_ns), (1, 2 * UNIT_NS));
        }
    }

    #[test]
    fn loss_retransmits_are_bounded_and_terminate() {
        let g = line(2, 1);
        let model = NetModel::uniform(LinkModel {
            latency: Latency::Fixed { delay_ns: 0 },
            loss: Some(Loss {
                p: 1.0,
                max_retries: 3,
                rto_ns: 10,
            }),
        });
        let mut net = EventNet::new(&g, model, 7);
        net.schedule(0, 0, 1, 1, 0);
        let d = net.run();
        assert_eq!(d.len(), 1, "the reliable final attempt always delivers");
        assert_eq!(d[0].attempts, 4);
        // 4 serializations of 1 unit each + 3 RTOs of 10 ns.
        assert_eq!(d[0].delivered_ns, 4 * UNIT_NS + 30);
    }

    #[test]
    fn same_seed_same_schedule() {
        let g = line(3, 2);
        let model = NetModel::uniform(LinkModel {
            latency: Latency::Uniform {
                base_ns: 100,
                jitter_ns: 400,
            },
            loss: Some(Loss {
                p: 0.3,
                max_retries: 2,
                rto_ns: 50,
            }),
        });
        let run = |seed| {
            let mut net = EventNet::new(&g, model.clone(), seed);
            for (id, (s, t)) in [(0, 1), (1, 2), (1, 0), (2, 1)].iter().enumerate() {
                net.schedule(id as u64, *s, *t, 3, 0);
            }
            net.run()
        };
        assert_eq!(run(11), run(11));
        assert_ne!(run(11), run(12), "seed feeds through to the schedule");
    }

    #[test]
    fn lognormal_sampling_is_deterministic_and_positive() {
        let lat = Latency::LogNormal {
            median_ns: 1_000_000,
            sigma: 0.5,
        };
        let a = lat.sample_ns(mix(1, 2));
        assert_eq!(a, lat.sample_ns(mix(1, 2)));
        // σ·z clamped to [-2, 2]: within e^±2 of the median.
        assert!(
            (135_335..=7_389_057).contains(&a),
            "sample {a} out of range"
        );
    }

    #[test]
    fn straggler_override_scales_one_link() {
        let spec = NetSpec::parse("fixed:100+straggler:0:1:20").unwrap();
        let model = spec.build();
        assert_eq!(model.link(0, 1).latency, Latency::Fixed { delay_ns: 2000 });
        assert_eq!(model.link(1, 0).latency, Latency::Fixed { delay_ns: 100 });
    }

    #[test]
    fn spec_string_roundtrips() {
        for s in [
            "fixed:0",
            "fixed:1000000",
            "uniform:1000000:250000",
            "lognormal:2000000:0.5",
            "fixed:100000+loss:0.05:3:400000",
            "uniform:10:20+loss:0.5:2:30+straggler:0:1:16",
        ] {
            let spec = NetSpec::parse(s).unwrap();
            assert_eq!(spec.spec_string(), s);
            assert_eq!(NetSpec::parse(&spec.spec_string()).unwrap(), spec);
        }
    }

    #[test]
    fn spec_parse_rejects_malformed_clauses() {
        for bad in [
            "",
            "fixed",
            "fixed:abc",
            "gaussian:5",
            "uniform:1",
            "lognormal:10:9.0",
            "fixed:1+loss:2.0:1:1",
            "fixed:1+loss:0.5:99:1",
            "fixed:1+straggler:0:1:0",
            "fixed:1+warp:9",
        ] {
            assert!(NetSpec::parse(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn schedule_panics_on_missing_link() {
        let g = line(3, 1);
        let mut net = EventNet::new(&g, NetModel::default(), 1);
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            net.schedule(0, 0, 2, 1, 0);
        }));
        assert!(err.is_err());
    }
}
