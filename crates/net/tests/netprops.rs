//! Property tests for the discrete-event kernel's determinism contract:
//! the delivery schedule is a function of the scheduled message *set*
//! (never of insertion order), and bounded retransmission terminates
//! with every message delivered for every seed and loss rate.

use nab_net::{EventNet, Latency, LinkModel, Loss, NetModel};
use nab_netgraph::gen;
use proptest::prelude::*;

/// A jittery, lossy model on every link — the adversarial case for
/// order-dependence, since every pop consumes a per-link random draw.
fn lossy_model(p: f64, max_retries: u32) -> NetModel {
    NetModel::uniform(LinkModel {
        latency: Latency::Uniform {
            base_ns: 1_000,
            jitter_ns: 5_000,
        },
        loss: Some(Loss {
            p,
            max_retries,
            rto_ns: 7_000,
        }),
    })
}

/// Deterministic Fisher–Yates driven by a SplitMix64-style stream, so
/// the "shuffled" insertion order is reproducible per test case.
fn shuffle<T>(items: &mut [T], mut state: u64) {
    for i in (1..items.len()).rev() {
        state = nab_net::mix(state, i as u64);
        items.swap(i, (state % (i as u64 + 1)) as usize);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Identical seeds produce identical delivery schedules regardless of
    /// the order messages were scheduled in — the property that makes
    /// `--net` sweeps thread-count invariant.
    #[test]
    fn delivery_schedule_is_insertion_order_invariant(
        seed in any::<u64>(),
        perm_seed in any::<u64>(),
        raw in proptest::collection::vec(
            (0usize..4, 0usize..4, 1u64..64, 0u64..10_000),
            1..24,
        ),
    ) {
        let g = gen::complete(4, 2);
        // Self-loops are not links; remap them to the (dst+1) neighbor so
        // every drawn tuple stays a schedulable message.
        let msgs: Vec<(u64, usize, usize, u64, u64)> = raw
            .iter()
            .enumerate()
            .map(|(id, &(src, dst, bits, at))| {
                let dst = if src == dst { (dst + 1) % 4 } else { dst };
                (id as u64, src, dst, bits, at)
            })
            .collect();

        let mut in_order = EventNet::new(&g, lossy_model(0.3, 3), seed);
        for &(id, src, dst, bits, at) in &msgs {
            in_order.schedule(id, src, dst, bits, at);
        }
        let reference = in_order.run();

        let mut permuted = msgs.clone();
        shuffle(&mut permuted, perm_seed);
        let mut shuffled = EventNet::new(&g, lossy_model(0.3, 3), seed);
        for &(id, src, dst, bits, at) in &permuted {
            shuffled.schedule(id, src, dst, bits, at);
        }
        prop_assert_eq!(reference, shuffled.run());
    }

    /// Loss with bounded retransmission terminates for every seed and
    /// every loss rate — including p = 1.0 — with each message delivered
    /// in at most `1 + max_retries` attempts.
    #[test]
    fn loss_and_retransmit_terminate_for_every_seed(
        seed in any::<u64>(),
        p_pct in 0u32..=100,
        max_retries in 0u32..5,
        count in 1usize..16,
    ) {
        let g = gen::complete(4, 2);
        let mut net = EventNet::new(&g, lossy_model(f64::from(p_pct) / 100.0, max_retries), seed);
        for id in 0..count {
            net.schedule(id as u64, id % 4, (id + 1) % 4, 16, 0);
        }
        let deliveries = net.run();
        prop_assert_eq!(deliveries.len(), count, "every message is delivered");
        for d in &deliveries {
            prop_assert!(d.attempts >= 1);
            prop_assert!(
                d.attempts <= 1 + max_retries,
                "attempts {} exceed bound {}",
                d.attempts,
                1 + max_retries
            );
            prop_assert!(d.delivered_ns >= d.sent_ns);
        }
    }

    /// The whole run is a pure function of `(messages, model, seed)`:
    /// re-running the same configuration reproduces the schedule, and the
    /// virtual clock equals the last delivery.
    #[test]
    fn identical_configurations_reproduce_schedules(
        seed in any::<u64>(),
        count in 1usize..12,
    ) {
        let g = gen::complete(5, 3);
        let run = |seed: u64| {
            let mut net = EventNet::new(&g, lossy_model(0.5, 2), seed);
            for id in 0..count {
                net.schedule(id as u64, id % 5, (id + 2) % 5, 32, 0);
            }
            let d = net.run();
            (d, net.clock_ns())
        };
        let (d1, clock1) = run(seed);
        let (d2, clock2) = run(seed);
        prop_assert_eq!(&d1, &d2);
        prop_assert_eq!(clock1, clock2);
        let last = d1.iter().map(|d| d.delivered_ns).max().unwrap();
        prop_assert_eq!(clock1, last, "clock is the final delivery time");
    }
}
