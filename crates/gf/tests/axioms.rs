//! Field-axiom property tests for `Gf256` and the generic `Gf2m` family:
//! associativity, distributivity, inverse round-trips, and the Frobenius
//! endomorphism.
//!
//! The crate-internal proptests cover the basic abelian-group laws; this
//! suite adds the characteristic-2 structure the equality-check algebra
//! leans on:
//!
//! - the **Frobenius map** `x ↦ x²` is additive (`(x+y)² = x² + y²`) and
//!   multiplicative, i.e. a field endomorphism;
//! - iterating Frobenius `m` times is the identity on `GF(2^m)`
//!   (equivalently `x^(2^m) = x`, Fermat's little theorem for the field);
//! - inversion round-trips through multiplication and division, and
//!   distributes over products (`(xy)⁻¹ = y⁻¹ x⁻¹`).

use nab_gf::field::Field;
use nab_gf::{Gf256, Gf2_16, Gf2m};
use proptest::prelude::*;

/// Applies the Frobenius endomorphism `x ↦ x²`, `k` times.
fn frobenius<F: Field>(x: F, k: u32) -> F {
    let mut y = x;
    for _ in 0..k {
        y = y.mul(y);
    }
    y
}

macro_rules! axiom_suite {
    ($modname:ident, $ty:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn add_associates(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                    let (x, y, z) = (<$ty>::from_u64(a), <$ty>::from_u64(b), <$ty>::from_u64(c));
                    prop_assert_eq!(x.add(y).add(z), x.add(y.add(z)));
                }

                #[test]
                fn mul_associates(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                    let (x, y, z) = (<$ty>::from_u64(a), <$ty>::from_u64(b), <$ty>::from_u64(c));
                    prop_assert_eq!(x.mul(y).mul(z), x.mul(y.mul(z)));
                }

                #[test]
                fn mul_distributes_over_add(
                    a in any::<u64>(), b in any::<u64>(), c in any::<u64>()
                ) {
                    let (x, y, z) = (<$ty>::from_u64(a), <$ty>::from_u64(b), <$ty>::from_u64(c));
                    prop_assert_eq!(x.mul(y.add(z)), x.mul(y).add(x.mul(z)));
                    // Right distributivity too (multiplication commutes,
                    // but check the law independently).
                    prop_assert_eq!(y.add(z).mul(x), y.mul(x).add(z.mul(x)));
                }

                #[test]
                fn inverse_round_trip(a in any::<u64>()) {
                    let x = <$ty>::from_u64(a);
                    match x.inv() {
                        Some(ix) => {
                            prop_assert_eq!(x.mul(ix), <$ty>::ONE);
                            // inv is an involution.
                            prop_assert_eq!(ix.inv(), Some(x));
                            // Division round-trips: (x / x) = 1, y·x/x = y.
                            prop_assert_eq!(x.div(x), Some(<$ty>::ONE));
                        }
                        None => prop_assert_eq!(x, <$ty>::ZERO),
                    }
                }

                #[test]
                fn inverse_of_product(a in any::<u64>(), b in any::<u64>()) {
                    let (x, y) = (<$ty>::from_u64(a), <$ty>::from_u64(b));
                    if let (Some(ix), Some(iy)) = (x.inv(), y.inv()) {
                        prop_assert_eq!(x.mul(y).inv(), Some(iy.mul(ix)));
                    }
                }

                #[test]
                fn frobenius_is_additive(a in any::<u64>(), b in any::<u64>()) {
                    // Freshman's dream, valid in characteristic 2:
                    // (x + y)² = x² + y².
                    let (x, y) = (<$ty>::from_u64(a), <$ty>::from_u64(b));
                    prop_assert_eq!(
                        frobenius(x.add(y), 1),
                        frobenius(x, 1).add(frobenius(y, 1))
                    );
                }

                #[test]
                fn frobenius_is_multiplicative(a in any::<u64>(), b in any::<u64>()) {
                    let (x, y) = (<$ty>::from_u64(a), <$ty>::from_u64(b));
                    prop_assert_eq!(
                        frobenius(x.mul(y), 1),
                        frobenius(x, 1).mul(frobenius(y, 1))
                    );
                }

                #[test]
                fn frobenius_order_is_field_degree(a in any::<u64>()) {
                    // x^(2^m) = x for every x in GF(2^m): iterating the
                    // Frobenius endomorphism BITS times is the identity.
                    let x = <$ty>::from_u64(a);
                    prop_assert_eq!(frobenius(x, <$ty>::BITS), x);
                }
            }
        }
    };
}

axiom_suite!(axioms_gf256, Gf256);
axiom_suite!(axioms_gf2_16, Gf2_16);
axiom_suite!(axioms_gf2m_1, Gf2m<1>);
axiom_suite!(axioms_gf2m_8, Gf2m<8>);
axiom_suite!(axioms_gf2m_16, Gf2m<16>);
axiom_suite!(axioms_gf2m_24, Gf2m<24>);
axiom_suite!(axioms_gf2m_48, Gf2m<48>);
axiom_suite!(axioms_gf2m_64, Gf2m<64>);

/// The Frobenius fixed field of `GF(2^m)` is `GF(2)`: only 0 and 1 square
/// to themselves (deterministic exhaustive check on a small field).
#[test]
fn frobenius_fixed_points_are_the_prime_field() {
    let fixed: Vec<u64> = (0..256u64)
        .filter(|&a| {
            let x = Gf2m::<8>::from_u64(a);
            frobenius(x, 1) == x
        })
        .collect();
    assert_eq!(fixed, vec![0, 1]);
}
