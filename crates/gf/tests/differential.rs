//! Differential test suite: every row-kernel operation must be
//! **bit-identical** to the generic scalar `Matrix`/`linalg` path, across
//! random shapes and seeds.
//!
//! This is the contract that lets the NAB hot paths route through
//! [`nab_gf::kernel`] and [`nab_gf::bytes`] without changing a single
//! simulation result: the fast tiers may only change speed, never
//! values. Each property draws random shapes (including degenerate 0/1
//! dimensions and rows straddling the `GF(2^16)` split-table threshold)
//! and compares the kernel output against the scalar reference
//! element-for-element.

use nab_gf::bytes::{self, ByteMatrix};
use nab_gf::field::Field;
use nab_gf::kernel::{self, scalar_mul_row_add, scalar_scale_row, FastOps};
use nab_gf::linalg;
use nab_gf::matrix::Matrix;
use nab_gf::{Gf256, Gf2_16, Gf2m, WordMatrix};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A random matrix of the given shape from a drawn seed.
fn mat<F: Field>(rows: usize, cols: usize, seed: u64) -> Matrix<F> {
    let mut rng = StdRng::seed_from_u64(seed);
    Matrix::random(rows, cols, &mut rng)
}

fn vec_of<F: Field>(len: usize, seed: u64) -> Vec<F> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len).map(|_| F::random(&mut rng)).collect()
}

/// Row lengths covering both sides of the `GF(2^16)` split-table
/// threshold (1024): half the draws are short rows (0..200), half are
/// long rows (1000..1100).
fn row_len() -> impl Strategy<Value = usize> {
    (any::<bool>(), 0usize..200).prop_map(|(long, l)| if long { 1000 + l % 100 } else { l })
}

/// Instantiates the full differential property set for one field.
macro_rules! differential_suite {
    ($modname:ident, $ty:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #![proptest_config(ProptestConfig::with_cases(32))]

                #[test]
                fn mul_row_add_matches_scalar(
                    len in row_len(),
                    seed in any::<u64>(),
                    s in any::<u64>(),
                ) {
                    let s = <$ty>::from_u64(s);
                    let src = vec_of::<$ty>(len, seed);
                    let mut fast = vec_of::<$ty>(len, seed ^ 1);
                    let mut slow = fast.clone();
                    <$ty as FastOps>::mul_row_add(&mut fast, &src, s);
                    scalar_mul_row_add(&mut slow, &src, s);
                    prop_assert_eq!(fast, slow);
                }

                #[test]
                fn scale_row_matches_scalar(
                    len in row_len(),
                    seed in any::<u64>(),
                    s in any::<u64>(),
                ) {
                    let s = <$ty>::from_u64(s);
                    let mut fast = vec_of::<$ty>(len, seed);
                    let mut slow = fast.clone();
                    <$ty as FastOps>::scale_row(&mut fast, s);
                    scalar_scale_row(&mut slow, s);
                    prop_assert_eq!(fast, slow);
                }

                #[test]
                fn mat_mul_matches_matrix_mul(
                    r in 1usize..10, k in 1usize..10, c in 1usize..10,
                    seed in any::<u64>(),
                ) {
                    let a = mat::<$ty>(r, k, seed);
                    let b = mat::<$ty>(k, c, seed ^ 0xFACE);
                    prop_assert_eq!(kernel::mat_mul(&a, &b), a.mul(&b));
                }

                #[test]
                fn left_mul_vec_matches_matrix(
                    r in 1usize..12, c in 1usize..12,
                    seed in any::<u64>(),
                ) {
                    let m = mat::<$ty>(r, c, seed);
                    let v = vec_of::<$ty>(r, seed ^ 0xBEEF);
                    prop_assert_eq!(kernel::left_mul_vec(&m, &v), m.left_mul_vec(&v));
                }

                #[test]
                fn echelon_and_rank_match_linalg(
                    r in 1usize..8, c in 1usize..10,
                    seed in any::<u64>(),
                ) {
                    let a = mat::<$ty>(r, c, seed);
                    let fast = kernel::echelon(&a);
                    let slow = linalg::echelon(&a);
                    prop_assert_eq!(&fast.pivots, &slow.pivots);
                    prop_assert_eq!(fast.matrix, slow.matrix);
                    prop_assert_eq!(kernel::rank(&a), linalg::rank(&a));
                }

                #[test]
                fn invert_matches_linalg(n in 1usize..9, seed in any::<u64>()) {
                    let a = mat::<$ty>(n, n, seed);
                    prop_assert_eq!(kernel::invert(&a), linalg::invert(&a));
                    prop_assert_eq!(
                        kernel::is_invertible(&a),
                        linalg::is_invertible(&a)
                    );
                }

                #[test]
                fn solve_matches_linalg(
                    r in 1usize..8, c in 1usize..8,
                    seed in any::<u64>(),
                ) {
                    // Arbitrary rectangular systems: consistent or not,
                    // both paths must agree exactly (including the choice
                    // of solution for under-determined systems).
                    let a = mat::<$ty>(r, c, seed);
                    let b = vec_of::<$ty>(r, seed ^ 0xD1CE);
                    prop_assert_eq!(kernel::solve(&a, &b), linalg::solve(&a, &b));
                }

                #[test]
                fn kernel_basis_matches_linalg(
                    r in 1usize..7, c in 1usize..9,
                    seed in any::<u64>(),
                ) {
                    let a = mat::<$ty>(r, c, seed);
                    prop_assert_eq!(kernel::kernel_basis(&a), linalg::kernel_basis(&a));
                }

                #[test]
                fn mul_row_add_batch_matches_sequential_scalar(
                    len in row_len(),
                    arity in 0usize..6,
                    seed in any::<u64>(),
                ) {
                    let rows: Vec<Vec<$ty>> = (0..arity)
                        .map(|j| vec_of::<$ty>(len, seed ^ (j as u64)))
                        .collect();
                    let srcs: Vec<&[$ty]> = rows.iter().map(|r| r.as_slice()).collect();
                    let scalars = vec_of::<$ty>(arity, seed ^ 0x5CA1A);
                    let mut fast = vec_of::<$ty>(len, seed ^ 0xD0);
                    let mut slow = fast.clone();
                    <$ty as FastOps>::mul_row_add_batch(&mut fast, &srcs, &scalars);
                    for (src, &s) in rows.iter().zip(&scalars) {
                        scalar_mul_row_add(&mut slow, src, s);
                    }
                    prop_assert_eq!(fast, slow);
                }

                #[test]
                fn encode_batch_matches_per_column_left_mul_vec(
                    rho in 1usize..6, z in 1usize..6,
                    // Widths cover the empty batch (0), a single packed
                    // column (the Q=1 shape), and slabs straddling the
                    // batch column-block stripe.
                    width in (0usize..4, 0usize..40).prop_map(|(kind, w)| match kind {
                        0 => 0,
                        1 => 1,
                        2 => w,
                        _ => kernel::BATCH_COL_BLOCK - 3 + (w % 6),
                    }),
                    seed in any::<u64>(),
                ) {
                    let code = mat::<$ty>(rho, z, seed);
                    let x = vec_of::<$ty>(rho * width, seed ^ 0xE0C0);
                    let mut fast = vec![<$ty>::ZERO; z * width];
                    <$ty as FastOps>::encode_batch(&code, &x, width, &mut fast);
                    // Reference: encode each packed column with the scalar
                    // per-column path, then scatter into the slab layout.
                    let mut slow = vec![<$ty>::ZERO; z * width];
                    for col in 0..width {
                        let v: Vec<$ty> = (0..rho).map(|k| x[k * width + col]).collect();
                        for (r, y) in code.left_mul_vec(&v).into_iter().enumerate() {
                            slow[r * width + col] = y;
                        }
                    }
                    prop_assert_eq!(&fast, &slow);
                    prop_assert!(<$ty as FastOps>::check_batch(&code, &x, width, &fast));
                    // Any single-symbol tampering must flip the check.
                    if z * width > 0 {
                        let mut bad = fast.clone();
                        let idx = (seed as usize) % bad.len();
                        bad[idx] = bad[idx].add(<$ty>::ONE);
                        prop_assert!(!<$ty as FastOps>::check_batch(&code, &x, width, &bad));
                    }
                }
            }
        }
    };
}

differential_suite!(diff_gf256, Gf256);
differential_suite!(diff_gf2_16, Gf2_16);
differential_suite!(diff_gf2m_13, Gf2m<13>);
differential_suite!(diff_gf2m_32, Gf2m<32>);

// ---------------------------------------------------------------------------
// ByteMatrix (GF(256) byte slab) vs. the scalar Matrix<Gf256> path.
// ---------------------------------------------------------------------------

fn byte_mat(rows: usize, cols: usize, seed: u64) -> ByteMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    ByteMatrix::random(rows, cols, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn byte_mul_row_add_matches_scalar(
        len in 0usize..300,
        seed in any::<u64>(),
        s in any::<u8>(),
    ) {
        let src: Vec<u8> = vec_of::<Gf256>(len, seed).iter().map(|x| x.0).collect();
        let base: Vec<u8> = vec_of::<Gf256>(len, seed ^ 9).iter().map(|x| x.0).collect();
        let mut fast = base.clone();
        bytes::mul_row_add(&mut fast, &src, s);
        let mut slow: Vec<Gf256> = base.iter().map(|&x| Gf256(x)).collect();
        let srcf: Vec<Gf256> = src.iter().map(|&x| Gf256(x)).collect();
        scalar_mul_row_add(&mut slow, &srcf, Gf256(s));
        prop_assert_eq!(fast, slow.iter().map(|x| x.0).collect::<Vec<_>>());
    }

    #[test]
    fn byte_mat_mul_matches_matrix(
        r in 1usize..10, k in 1usize..10, c in 1usize..10,
        seed in any::<u64>(),
    ) {
        let a = byte_mat(r, k, seed);
        let b = byte_mat(k, c, seed ^ 0xC0DE);
        prop_assert_eq!(
            a.mat_mul(&b).to_matrix(),
            a.to_matrix().mul(&b.to_matrix())
        );
    }

    #[test]
    fn byte_echelon_rank_match_linalg(
        r in 1usize..8, c in 1usize..10,
        seed in any::<u64>(),
    ) {
        let a = byte_mat(r, c, seed);
        let mut e = a.clone();
        let pivots = e.echelon_in_place();
        let slow = linalg::echelon(&a.to_matrix());
        prop_assert_eq!(pivots, slow.pivots);
        prop_assert_eq!(e.to_matrix(), slow.matrix);
        prop_assert_eq!(a.rank(), linalg::rank(&a.to_matrix()));
    }

    #[test]
    fn byte_invert_matches_linalg(n in 1usize..9, seed in any::<u64>()) {
        let a = byte_mat(n, n, seed);
        let fast = a.invert().map(|m| m.to_matrix());
        let slow = linalg::invert(&a.to_matrix());
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn byte_solve_matches_linalg(
        r in 1usize..8, c in 1usize..8,
        seed in any::<u64>(),
    ) {
        let a = byte_mat(r, c, seed);
        let b: Vec<u8> = vec_of::<Gf256>(r, seed ^ 3).iter().map(|x| x.0).collect();
        let fast = a.solve(&b);
        let bf: Vec<Gf256> = b.iter().map(|&x| Gf256(x)).collect();
        let slow = linalg::solve(&a.to_matrix(), &bf)
            .map(|v| v.into_iter().map(|x| x.0).collect::<Vec<_>>());
        prop_assert_eq!(fast, slow);
    }

    #[test]
    fn byte_left_mul_vec_matches_matrix(
        r in 1usize..12, c in 1usize..12,
        seed in any::<u64>(),
    ) {
        let m = byte_mat(r, c, seed);
        let v: Vec<u8> = vec_of::<Gf256>(r, seed ^ 0xF00D).iter().map(|x| x.0).collect();
        let vf: Vec<Gf256> = v.iter().map(|&x| Gf256(x)).collect();
        prop_assert_eq!(
            m.left_mul_vec(&v),
            m.to_matrix()
                .left_mul_vec(&vf)
                .iter()
                .map(|x| x.0)
                .collect::<Vec<_>>()
        );
    }
}

// ---------------------------------------------------------------------------
// WordMatrix (GF(2^16) word slab) vs. the scalar Matrix<Gf2_16> path.
// ---------------------------------------------------------------------------

fn word_mat(rows: usize, cols: usize, seed: u64) -> WordMatrix {
    let mut rng = StdRng::seed_from_u64(seed);
    WordMatrix::random(rows, cols, &mut rng)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn word_mat_mul_matches_matrix(
        r in 1usize..8, k in 1usize..8,
        // Output widths cover both sides of the slab column-block stripe
        // (the batched-execution shape: few rows, very wide slabs).
        c in (any::<bool>(), 1usize..12).prop_map(|(wide, c)| if wide { 1018 + c } else { c }),
        seed in any::<u64>(),
    ) {
        let a = word_mat(r, k, seed);
        let b = word_mat(k, c, seed ^ 0xC0DE);
        prop_assert_eq!(
            a.mat_mul(&b).to_matrix(),
            a.to_matrix().mul(&b.to_matrix())
        );
    }

    #[test]
    fn word_left_mul_vec_matches_matrix(
        r in 1usize..12, c in 1usize..12,
        seed in any::<u64>(),
    ) {
        let m = word_mat(r, c, seed);
        let v = vec_of::<Gf2_16>(r, seed ^ 0xF00D);
        prop_assert_eq!(m.left_mul_vec(&v), m.to_matrix().left_mul_vec(&v));
    }
}
