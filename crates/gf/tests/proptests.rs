//! Property-based tests: field axioms and linear-algebra invariants.

use nab_gf::field::Field;
use nab_gf::gf256::Gf256;
use nab_gf::gf2m::{Gf2_16, Gf2m};
use nab_gf::linalg;
use nab_gf::matrix::Matrix;
use proptest::prelude::*;

macro_rules! field_axioms {
    ($modname:ident, $ty:ty) => {
        mod $modname {
            use super::*;

            proptest! {
                #[test]
                fn add_commutes(a in any::<u64>(), b in any::<u64>()) {
                    let (x, y) = (<$ty>::from_u64(a), <$ty>::from_u64(b));
                    prop_assert_eq!(x.add(y), y.add(x));
                }

                #[test]
                fn mul_commutes(a in any::<u64>(), b in any::<u64>()) {
                    let (x, y) = (<$ty>::from_u64(a), <$ty>::from_u64(b));
                    prop_assert_eq!(x.mul(y), y.mul(x));
                }

                #[test]
                fn mul_associates(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                    let (x, y, z) = (<$ty>::from_u64(a), <$ty>::from_u64(b), <$ty>::from_u64(c));
                    prop_assert_eq!(x.mul(y).mul(z), x.mul(y.mul(z)));
                }

                #[test]
                fn distributes(a in any::<u64>(), b in any::<u64>(), c in any::<u64>()) {
                    let (x, y, z) = (<$ty>::from_u64(a), <$ty>::from_u64(b), <$ty>::from_u64(c));
                    prop_assert_eq!(x.mul(y.add(z)), x.mul(y).add(x.mul(z)));
                }

                #[test]
                fn additive_self_inverse(a in any::<u64>()) {
                    let x = <$ty>::from_u64(a);
                    prop_assert_eq!(x.add(x), <$ty>::ZERO);
                }

                #[test]
                fn inverse_roundtrip(a in any::<u64>()) {
                    let x = <$ty>::from_u64(a);
                    if let Some(ix) = x.inv() {
                        prop_assert_eq!(x.mul(ix), <$ty>::ONE);
                    } else {
                        prop_assert_eq!(x, <$ty>::ZERO);
                    }
                }

                #[test]
                fn one_is_identity(a in any::<u64>()) {
                    let x = <$ty>::from_u64(a);
                    prop_assert_eq!(x.mul(<$ty>::ONE), x);
                    prop_assert_eq!(x.add(<$ty>::ZERO), x);
                }

                #[test]
                fn pow_adds_exponents(a in any::<u64>(), e1 in 0u64..50, e2 in 0u64..50) {
                    let x = <$ty>::from_u64(a);
                    prop_assert_eq!(x.pow(e1).mul(x.pow(e2)), x.pow(e1 + e2));
                }
            }
        }
    };
}

field_axioms!(axioms_gf256, Gf256);
field_axioms!(axioms_gf2_16, Gf2_16);
field_axioms!(axioms_gf2m_13, Gf2m<13>);
field_axioms!(axioms_gf2m_32, Gf2m<32>);
field_axioms!(axioms_gf2m_64, Gf2m<64>);

fn arb_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix<Gf256>> {
    proptest::collection::vec(any::<u8>(), rows * cols)
        .prop_map(move |data| Matrix::from_fn(rows, cols, |r, c| Gf256(data[r * cols + c])))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn rank_bounded_by_dims(m in arb_matrix(4, 6)) {
        let r = linalg::rank(&m);
        prop_assert!(r <= 4);
    }

    #[test]
    fn rank_invariant_under_transpose(m in arb_matrix(4, 6)) {
        prop_assert_eq!(linalg::rank(&m), linalg::rank(&m.transpose()));
    }

    #[test]
    fn inverse_is_two_sided(m in arb_matrix(5, 5)) {
        if let Some(inv) = linalg::invert(&m) {
            prop_assert_eq!(m.mul(&inv), Matrix::identity(5));
            prop_assert_eq!(inv.mul(&m), Matrix::identity(5));
        } else {
            prop_assert!(linalg::rank(&m) < 5);
        }
    }

    #[test]
    fn rank_nullity(m in arb_matrix(4, 7)) {
        let k = linalg::kernel_basis(&m);
        prop_assert_eq!(linalg::rank(&m) + k.rows(), 7);
    }

    #[test]
    fn determinant_multiplicative(a in arb_matrix(3, 3), b in arb_matrix(3, 3)) {
        let da = linalg::determinant(&a);
        let db = linalg::determinant(&b);
        let dab = linalg::determinant(&a.mul(&b));
        prop_assert_eq!(dab, da.mul(db));
    }

    #[test]
    fn solve_produces_solutions(a in arb_matrix(4, 4), xs in proptest::collection::vec(any::<u8>(), 4)) {
        let x: Vec<Gf256> = xs.into_iter().map(Gf256).collect();
        // b = a * x
        let b = a.transpose().left_mul_vec(&x);
        if let Some(sol) = linalg::solve(&a, &b) {
            let asol = a.transpose().left_mul_vec(&sol);
            prop_assert_eq!(asol, b);
        } else {
            // a*x = b always has solution x; solve must not return None.
            prop_assert!(false, "solve returned None for a consistent system");
        }
    }
}
