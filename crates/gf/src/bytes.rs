//! Row-major `GF(256)` byte-slab linear algebra — the fastest kernel tier.
//!
//! When the field is exactly `GF(2^8)`, a field element *is* a byte, so a
//! matrix can live in a flat `Vec<u8>` and every row operation becomes a
//! table-driven byte loop: `dst[i] ^= MUL[s][src[i]]`. This is the layout
//! erasure-coding libraries use for their encode hot loops, and it is the
//! bottom layer of this crate's performance stack (see `docs/perf.md`):
//!
//! 1. [`ByteMatrix`] — `GF(256)` byte slabs (this module),
//! 2. [`crate::kernel::FastOps`] — per-field row kernels over generic
//!    [`crate::matrix::Matrix`] storage,
//! 3. the scalar [`crate::matrix`]/[`crate::linalg`] reference path.
//!
//! Every operation here is bit-identical to the generic scalar path (the
//! differential test suite in `tests/differential.rs` pins this), so the
//! fast tier can be swapped in anywhere without changing results.

use std::sync::OnceLock;

use rand::Rng;

use crate::field::Field;
use crate::gf256::Gf256;
use crate::matrix::{split_rows_mut, Matrix};

/// The full 256×256 `GF(256)` product table (64 KiB, built once).
fn product_table() -> &'static [[u8; 256]; 256] {
    static TABLE: OnceLock<Box<[[u8; 256]; 256]>> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut t = Box::new([[0u8; 256]; 256]);
        for a in 0..256 {
            for b in a..256 {
                let p = Gf256(a as u8).mul(Gf256(b as u8)).0;
                t[a][b] = p;
                t[b][a] = p;
            }
        }
        t
    })
}

/// The 256-entry product row for one scalar: `mul_table(s)[x] == s·x`.
#[inline]
pub fn mul_table(s: u8) -> &'static [u8; 256] {
    &product_table()[s as usize]
}

/// Fused multiply-add row kernel: `dst[i] ^= s · src[i]`.
///
/// In characteristic 2 this is simultaneously `dst += s·src` and
/// `dst -= s·src`, which is all Gaussian elimination ever needs.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn mul_row_add(dst: &mut [u8], src: &[u8], s: u8) {
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_row_add length mismatch: dst has {} bytes, src has {}",
        dst.len(),
        src.len()
    );
    match s {
        0 => {}
        1 => {
            for (d, &x) in dst.iter_mut().zip(src) {
                *d ^= x;
            }
        }
        _ if dst.len() >= crate::simd::SIMD_THRESHOLD => {
            crate::simd::gf256_mul_row_add(dst, src, s);
        }
        _ => {
            let t = mul_table(s);
            for (d, &x) in dst.iter_mut().zip(src) {
                *d ^= t[x as usize];
            }
        }
    }
}

/// In-place row scaling: `row[i] = s · row[i]`.
pub fn scale_row(row: &mut [u8], s: u8) {
    match s {
        0 => row.fill(0),
        1 => {}
        _ if row.len() >= crate::simd::SIMD_THRESHOLD => {
            crate::simd::gf256_scale_row(row, s);
        }
        _ => {
            let t = mul_table(s);
            for x in row.iter_mut() {
                *x = t[*x as usize];
            }
        }
    }
}

/// Column-block width for [`ByteMatrix::mat_mul`]: output rows are walked
/// in stripes of this many bytes so the destination and source stripes
/// stay L1-resident even for very wide matrices.
const COL_BLOCK: usize = 1024;

/// A dense row-major `GF(256)` matrix stored as a flat byte slab.
///
/// # Example
///
/// ```
/// use nab_gf::bytes::ByteMatrix;
/// let i = ByteMatrix::identity(3);
/// let a = ByteMatrix::from_fn(3, 3, |r, c| (r * 3 + c) as u8);
/// assert_eq!(i.mat_mul(&a), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct ByteMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u8>,
}

impl ByteMatrix {
    /// The all-zero `rows × cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("ByteMatrix dimensions overflow usize"); // nab-lint: allow(NAB003): dimension overflow is unrecoverable misuse; documented panic
        ByteMatrix {
            rows,
            cols,
            data: vec![0; len],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.data[i * n + i] = 1;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> u8) -> Self {
        let mut m = Self::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = f(r, c);
            }
        }
        m
    }

    /// A matrix with independently uniform random entries.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.gen::<u64>() as u8)
    }

    /// Converts from the generic element representation.
    pub fn from_matrix(m: &Matrix<Gf256>) -> Self {
        Self::from_fn(m.rows(), m.cols(), |r, c| m[(r, c)].0)
    }

    /// Converts back to the generic element representation.
    pub fn to_matrix(&self) -> Matrix<Gf256> {
        Matrix::from_fn(self.rows, self.cols, |r, c| {
            Gf256(self.data[r * self.cols + c])
        })
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    ///
    /// # Panics
    ///
    /// Panics (with the offending indices) when out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> u8 {
        assert!(
            r < self.rows && c < self.cols,
            "ByteMatrix index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Entry setter.
    ///
    /// # Panics
    ///
    /// Panics (with the offending indices) when out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: u8) {
        assert!(
            r < self.rows && c < self.cols,
            "ByteMatrix index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as a byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[u8] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a byte slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [u8] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Blocked matrix multiplication `self * rhs` on row kernels: the
    /// i–k–j loop order turns the inner dimension into whole-row
    /// [`mul_row_add`] calls, striped [`COL_BLOCK`] columns at a time.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols() == rhs.rows()`.
    pub fn mat_mul(&self, rhs: &ByteMatrix) -> ByteMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "mat_mul dim mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zero(self.rows, rhs.cols);
        let w = rhs.cols;
        for j0 in (0..w).step_by(COL_BLOCK) {
            let j1 = (j0 + COL_BLOCK).min(w);
            for i in 0..self.rows {
                for k in 0..self.cols {
                    let s = self.data[i * self.cols + k];
                    if s != 0 {
                        mul_row_add(
                            &mut out.data[i * w + j0..i * w + j1],
                            &rhs.data[k * w + j0..k * w + j1],
                            s,
                        );
                    }
                }
            }
        }
        out
    }

    /// Row-vector × matrix product `v * self` (the Algorithm-1 encode
    /// shape), as whole-row fused multiply-adds.
    ///
    /// # Panics
    ///
    /// Panics unless `v.len() == self.rows()`.
    pub fn left_mul_vec(&self, v: &[u8]) -> Vec<u8> {
        assert_eq!(
            v.len(),
            self.rows,
            "left_mul_vec dim mismatch: vector of {} over {} rows",
            v.len(),
            self.rows
        );
        let mut out = vec![0u8; self.cols];
        for (r, &x) in v.iter().enumerate() {
            if x != 0 {
                mul_row_add(&mut out, self.row(r), x);
            }
        }
        out
    }

    /// Reduces `self` to *reduced* row-echelon form in place, returning
    /// the pivot columns. Pivot selection matches
    /// [`crate::linalg::echelon`] exactly (first non-zero row at or below
    /// the pivot row, columns left to right), so results are bit-identical
    /// to the scalar path.
    pub fn echelon_in_place(&mut self) -> Vec<usize> {
        let (rows, cols, w) = (self.rows, self.cols, self.cols);
        let mut pivots = Vec::new();
        let mut pr = 0;
        for pc in 0..cols {
            let Some(sel) = (pr..rows).find(|&r| self.data[r * w + pc] != 0) else {
                continue;
            };
            if sel != pr {
                self.swap_rows(sel, pr);
            }
            let inv = Gf256(self.data[pr * w + pc])
                .inv()
                .expect("pivot non-zero") // nab-lint: allow(NAB003): pivot was selected non-zero by the search above
                .0;
            scale_row(&mut self.data[pr * w..(pr + 1) * w], inv);
            for r in 0..rows {
                if r != pr {
                    let factor = self.data[r * w + pc];
                    if factor != 0 {
                        let (dst, src) = split_rows_mut(&mut self.data, w, r, pr);
                        mul_row_add(dst, src, factor);
                    }
                }
            }
            pivots.push(pc);
            pr += 1;
            if pr == rows {
                break;
            }
        }
        pivots
    }

    /// Swaps two rows in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(
            a < self.rows && b < self.rows,
            "swap_rows({a}, {b}) out of bounds ({} rows)",
            self.rows
        );
        if a == b {
            return;
        }
        let w = self.cols;
        let (ra, rb) = split_rows_mut(&mut self.data, w, a, b);
        ra.swap_with_slice(rb);
    }

    /// The rank of `self`.
    pub fn rank(&self) -> usize {
        self.clone().echelon_in_place().len()
    }

    /// Inverts a square matrix by in-place Gauss–Jordan elimination on the
    /// augmented slab `[A | I]`, returning `None` if singular.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not square.
    pub fn invert(&self) -> Option<ByteMatrix> {
        assert_eq!(
            self.rows, self.cols,
            "inversion requires a square matrix, got {}x{}",
            self.rows, self.cols
        );
        let n = self.rows;
        let w = 2 * n;
        let mut aug = Self::zero(n, w);
        for r in 0..n {
            aug.row_mut(r)[..n].copy_from_slice(self.row(r));
            aug.data[r * w + n + r] = 1;
        }
        let pivots = aug.echelon_in_place();
        // Invertible iff the left block reduced to the identity, i.e. the
        // first n pivots are exactly columns 0..n.
        if pivots.len() < n || pivots.iter().take(n).enumerate().any(|(i, &pc)| pc != i) {
            return None;
        }
        let mut out = Self::zero(n, n);
        for r in 0..n {
            out.row_mut(r).copy_from_slice(&aug.row(r)[n..]);
        }
        Some(out)
    }

    /// Solves `self · x = b` for one solution (free variables zero),
    /// returning `None` if the system is inconsistent. Mirrors
    /// [`crate::linalg::solve`].
    ///
    /// # Panics
    ///
    /// Panics unless `b.len() == self.rows()`.
    pub fn solve(&self, b: &[u8]) -> Option<Vec<u8>> {
        assert_eq!(
            b.len(),
            self.rows,
            "rhs length {} must equal row count {}",
            b.len(),
            self.rows
        );
        let w = self.cols + 1;
        let mut aug = Self::zero(self.rows, w);
        for (r, &rhs) in b.iter().enumerate() {
            aug.row_mut(r)[..self.cols].copy_from_slice(self.row(r));
            aug.data[r * w + self.cols] = rhs;
        }
        let pivots = aug.echelon_in_place();
        if pivots.last() == Some(&self.cols) {
            return None;
        }
        let mut x = vec![0u8; self.cols];
        for (row, &pc) in pivots.iter().enumerate() {
            x[pc] = aug.data[row * w + self.cols];
        }
        Some(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mul_table_matches_field_mul() {
        for s in [0u8, 1, 2, 0x53, 0xFF] {
            let t = mul_table(s);
            for x in 0..=255u8 {
                assert_eq!(t[x as usize], Gf256(s).mul(Gf256(x)).0, "{s} * {x}");
            }
        }
    }

    #[test]
    fn mul_row_add_is_fused_multiply_add() {
        let src = [1u8, 2, 3, 0xFF];
        let mut dst = [9u8, 8, 7, 6];
        let expect: Vec<u8> = dst
            .iter()
            .zip(&src)
            .map(|(&d, &x)| Gf256(d).add(Gf256(0x1D).mul(Gf256(x))).0)
            .collect();
        mul_row_add(&mut dst, &src, 0x1D);
        assert_eq!(dst.to_vec(), expect);
        // s = 0 is a no-op; s = 1 is plain XOR.
        let before = dst;
        mul_row_add(&mut dst, &src, 0);
        assert_eq!(dst, before);
        mul_row_add(&mut dst, &src, 1);
        for i in 0..4 {
            assert_eq!(dst[i], before[i] ^ src[i]);
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mul_row_add_rejects_length_mismatch() {
        let mut dst = [0u8; 3];
        mul_row_add(&mut dst, &[0u8; 4], 2);
    }

    #[test]
    fn mat_mul_matches_scalar_matrix() {
        let mut rng = StdRng::seed_from_u64(5);
        for (r, k, c) in [(3, 4, 5), (1, 1, 1), (7, 2, 9), (16, 16, 16)] {
            let a = ByteMatrix::random(r, k, &mut rng);
            let b = ByteMatrix::random(k, c, &mut rng);
            let fast = a.mat_mul(&b);
            let slow = a.to_matrix().mul(&b.to_matrix());
            assert_eq!(fast.to_matrix(), slow);
        }
    }

    #[test]
    fn blocked_mat_mul_handles_wide_outputs() {
        // Wider than COL_BLOCK so the stripe loop actually splits.
        let mut rng = StdRng::seed_from_u64(17);
        let a = ByteMatrix::random(2, 3, &mut rng);
        let b = ByteMatrix::random(3, COL_BLOCK + 37, &mut rng);
        assert_eq!(a.mat_mul(&b).to_matrix(), a.to_matrix().mul(&b.to_matrix()));
    }

    #[test]
    fn invert_roundtrip_and_singular() {
        let mut rng = StdRng::seed_from_u64(23);
        let mut inverted = 0;
        for _ in 0..10 {
            let a = ByteMatrix::random(8, 8, &mut rng);
            match a.invert() {
                Some(inv) => {
                    assert_eq!(a.mat_mul(&inv), ByteMatrix::identity(8));
                    assert_eq!(inv.mat_mul(&a), ByteMatrix::identity(8));
                    inverted += 1;
                }
                None => assert!(a.rank() < 8),
            }
        }
        assert!(inverted >= 8, "too many singular 8x8 over GF(256)");
        let sing = ByteMatrix::from_fn(2, 2, |_, c| (c + 1) as u8);
        assert!(sing.invert().is_none());
    }

    #[test]
    fn echelon_matches_scalar_linalg() {
        let mut rng = StdRng::seed_from_u64(31);
        for _ in 0..10 {
            let a = ByteMatrix::random(4, 7, &mut rng);
            let mut e = a.clone();
            let pivots = e.echelon_in_place();
            let scalar = linalg::echelon(&a.to_matrix());
            assert_eq!(pivots, scalar.pivots);
            assert_eq!(e.to_matrix(), scalar.matrix);
        }
    }

    #[test]
    fn solve_matches_scalar_linalg() {
        let mut rng = StdRng::seed_from_u64(37);
        for _ in 0..10 {
            let a = ByteMatrix::random(5, 5, &mut rng);
            let b: Vec<u8> = (0..5).map(|_| rng.gen::<u64>() as u8).collect();
            let fast = a.solve(&b);
            let slow = linalg::solve(
                &a.to_matrix(),
                &b.iter().map(|&x| Gf256(x)).collect::<Vec<_>>(),
            );
            assert_eq!(fast, slow.map(|v| v.into_iter().map(|x| x.0).collect()));
        }
    }

    #[test]
    #[should_panic(expected = "mat_mul dim mismatch")]
    fn mat_mul_rejects_bad_shapes() {
        let a = ByteMatrix::zero(2, 3);
        let b = ByteMatrix::zero(2, 3);
        let _ = a.mat_mul(&b);
    }
}
