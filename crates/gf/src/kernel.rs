//! Row-kernel linear algebra over generic fields: the [`FastOps`]
//! specialization trait and kernelized Gaussian elimination.
//!
//! The scalar [`crate::matrix`]/[`crate::linalg`] path multiplies one
//! element at a time through the [`Field`] vtable of operations. Every hot
//! loop in the NAB pipeline, however, has the same *row shape* — "add a
//! scalar multiple of one row into another" — so this module factors that
//! shape out as [`FastOps::mul_row_add`] and lets each field supply its
//! best implementation:
//!
//! - [`crate::gf256::Gf256`] — one 256-entry product-table row per scalar
//!   (shared with [`crate::bytes`]),
//! - [`crate::gf2m::Gf2_16`] — two 256-entry split tables (low/high byte)
//!   built per scalar, amortized over long rows; short rows use a
//!   log-domain loop,
//! - [`crate::gf2m::Gf2m`] (any degree) — the scalar default, so generic
//!   field code keeps working unchanged.
//!
//! The functions here ([`mat_mul`], [`echelon`], [`invert`], [`solve`],
//! [`kernel_basis`], [`left_mul_vec`]) mirror [`crate::linalg`]
//! operation-for-operation — same pivot choices, same elimination order —
//! so their results are **bit-identical** to the scalar path for every
//! field (pinned by `tests/differential.rs`).

use crate::bytes;
use crate::field::Field;
use crate::gf256::Gf256;
use crate::gf2m::{Gf2_16, Gf2m};
use crate::linalg::Echelon;
use crate::matrix::Matrix;
use crate::simd;

/// Row lengths below this use the log-domain loop for `Gf2_16`: building
/// the two 256-entry split tables costs 512 field multiplications plus a
/// kilobyte of cache traffic, which only pays off once the row is long
/// enough to amortize it (measured break-even sits near 1k elements; see
/// `BENCH_gf.json`). Rows of [`crate::simd::SIMD_THRESHOLD`] or more take
/// the arch-SIMD tier first when one was detected (see [`crate::simd`]).
pub const GF2_16_SPLIT_THRESHOLD: usize = 1024;

/// Column-stripe width (in elements) for the blocked batched ops
/// ([`FastOps::encode_batch`]): destination and source stripes stay
/// cache-resident even for very wide packed slabs. Blocking never changes
/// results — characteristic-2 accumulation is exact XOR.
pub const BATCH_COL_BLOCK: usize = 1024;

/// The scalar reference implementation of the fused row kernel:
/// `dst[i] += s · src[i]` one element at a time. This is both the default
/// body of [`FastOps::mul_row_add`] and the baseline the differential
/// tests and the `perf` binary compare specialized kernels against.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn scalar_mul_row_add<F: Field>(dst: &mut [F], src: &[F], s: F) {
    assert_eq!(
        dst.len(),
        src.len(),
        "mul_row_add length mismatch: dst has {} elements, src has {}",
        dst.len(),
        src.len()
    );
    if s.is_zero() {
        return;
    }
    for (d, &x) in dst.iter_mut().zip(src) {
        *d = d.add(s.mul(x));
    }
}

/// The scalar reference implementation of in-place row scaling.
pub fn scalar_scale_row<F: Field>(row: &mut [F], s: F) {
    if s == F::ONE {
        return;
    }
    for x in row.iter_mut() {
        *x = x.mul(s);
    }
}

/// Per-field row kernels — the specialization seam between generic
/// [`Field`] code and table-driven byte loops.
///
/// Every provided field implements this trait; fields without a special
/// kernel inherit the scalar defaults, so `F: FastOps` is no more
/// restrictive than `F: Field` in practice. All implementations must be
/// *exact*: specialized kernels may not change results, only speed
/// (enforced by the differential test suite).
pub trait FastOps: Field {
    /// Human-readable kernel name, surfaced by the perf report.
    const KERNEL: &'static str = "scalar";

    /// Fused multiply-add row kernel: `dst[i] += s · src[i]`
    /// (equivalently `-=` in characteristic 2).
    ///
    /// # Panics
    ///
    /// Panics if the slices have different lengths.
    fn mul_row_add(dst: &mut [Self], src: &[Self], s: Self) {
        scalar_mul_row_add(dst, src, s);
    }

    /// In-place row scaling: `row[i] = s · row[i]`.
    fn scale_row(row: &mut [Self], s: Self) {
        scalar_scale_row(row, s);
    }

    /// Batched fused multiply-add: `dst[i] += Σ_j scalars[j] · srcs[j][i]`
    /// — one destination row accumulating many scaled source rows (the
    /// inner product shape of a blocked matrix multiply with the reduction
    /// loop fused).
    ///
    /// # Panics
    ///
    /// Panics if `srcs` and `scalars` have different lengths, or any
    /// source row's length differs from `dst`'s.
    fn mul_row_add_batch(dst: &mut [Self], srcs: &[&[Self]], scalars: &[Self]) {
        assert_eq!(
            srcs.len(),
            scalars.len(),
            "mul_row_add_batch arity mismatch: {} rows, {} scalars",
            srcs.len(),
            scalars.len()
        );
        for (src, &s) in srcs.iter().zip(scalars) {
            Self::mul_row_add(dst, src, s);
        }
    }

    /// Batched Algorithm-1 encode over a packed column slab:
    /// `out = Cᵀ · X`, where `code` is the `ρ × z` coding matrix, `x` is a
    /// row-major `ρ × width` slab (row `k` holds symbol `k` of `width`
    /// packed value-columns), and `out` is the row-major `z × width`
    /// result slab. One call replaces `width` per-column
    /// [`left_mul_vec`] calls, turning the hot loop into long-row
    /// [`FastOps::mul_row_add`]s striped [`BATCH_COL_BLOCK`] columns at a
    /// time. Bit-identical to the per-column path (characteristic-2
    /// accumulation is exact and order-independent).
    ///
    /// # Panics
    ///
    /// Panics unless `x.len() == code.rows() * width` and
    /// `out.len() == code.cols() * width`.
    fn encode_batch(code: &Matrix<Self>, x: &[Self], width: usize, out: &mut [Self]) {
        let (rho, z) = (code.rows(), code.cols());
        assert_eq!(
            x.len(),
            rho * width,
            "encode_batch: x slab is {} elements, want {rho} rows × {width}",
            x.len()
        );
        assert_eq!(
            out.len(),
            z * width,
            "encode_batch: out slab is {} elements, want {z} rows × {width}",
            out.len()
        );
        out.fill(Self::ZERO);
        for j0 in (0..width).step_by(BATCH_COL_BLOCK) {
            let j1 = (j0 + BATCH_COL_BLOCK).min(width);
            for r in 0..z {
                for k in 0..rho {
                    let s = code[(k, r)];
                    if !s.is_zero() {
                        Self::mul_row_add(
                            &mut out[r * width + j0..r * width + j1],
                            &x[k * width + j0..k * width + j1],
                            s,
                        );
                    }
                }
            }
        }
    }

    /// Batched Algorithm-1 check: recomputes [`FastOps::encode_batch`]
    /// and compares against the received slab.
    ///
    /// # Panics
    ///
    /// Panics on the same shape mismatches as [`FastOps::encode_batch`],
    /// plus `expected.len() != code.cols() * width`.
    fn check_batch(code: &Matrix<Self>, x: &[Self], width: usize, expected: &[Self]) -> bool {
        assert_eq!(
            expected.len(),
            code.cols() * width,
            "check_batch: expected slab is {} elements, want {} rows × {width}",
            expected.len(),
            code.cols()
        );
        let mut out = vec![Self::ZERO; code.cols() * width];
        Self::encode_batch(code, x, width, &mut out);
        out == expected
    }
}

impl FastOps for Gf256 {
    const KERNEL: &'static str = "table256";

    fn mul_row_add(dst: &mut [Self], src: &[Self], s: Self) {
        assert_eq!(
            dst.len(),
            src.len(),
            "mul_row_add length mismatch: dst has {} elements, src has {}",
            dst.len(),
            src.len()
        );
        match s.0 {
            0 => {}
            1 => {
                for (d, &x) in dst.iter_mut().zip(src) {
                    d.0 ^= x.0;
                }
            }
            // `Gf256` is repr(transparent) over `u8`, so the element rows
            // reinterpret as byte rows and share the SIMD-dispatched byte
            // kernel with `ByteMatrix`.
            _ => bytes::mul_row_add(gf256_bytes_mut(dst), gf256_bytes(src), s.0),
        }
    }

    fn scale_row(row: &mut [Self], s: Self) {
        match s.0 {
            0 => row.fill(Gf256(0)),
            1 => {}
            _ => bytes::scale_row(gf256_bytes_mut(row), s.0),
        }
    }
}

/// Reinterprets a `Gf256` slice as raw bytes (sound: repr(transparent)).
#[inline]
fn gf256_bytes(s: &[Gf256]) -> &[u8] {
    // SAFETY: `Gf256` is `#[repr(transparent)]` over `u8`, so the slice
    // shares its layout, alignment, and length with a byte slice.
    unsafe { std::slice::from_raw_parts(s.as_ptr() as *const u8, s.len()) }
}

/// Mutable variant of [`gf256_bytes`].
#[inline]
fn gf256_bytes_mut(s: &mut [Gf256]) -> &mut [u8] {
    // SAFETY: `Gf256` is `#[repr(transparent)]` over `u8` (see above),
    // and the mutable borrow is exclusive for the returned lifetime.
    unsafe { std::slice::from_raw_parts_mut(s.as_mut_ptr() as *mut u8, s.len()) }
}

/// Builds the split product tables for one `GF(2^16)` scalar:
/// `lo[b] = s·b` and `hi[b] = s·(b << 8)`. Multiplication is
/// `GF(2)`-linear, so `s·x = lo[x & 0xFF] ^ hi[x >> 8]`.
fn gf2_16_split_tables(s: Gf2_16) -> ([u16; 256], [u16; 256]) {
    let mut lo = [0u16; 256];
    let mut hi = [0u16; 256];
    for b in 1..256u16 {
        lo[b as usize] = s.mul(Gf2_16(b)).0;
        hi[b as usize] = s.mul(Gf2_16(b << 8)).0;
    }
    (lo, hi)
}

impl FastOps for Gf2_16 {
    const KERNEL: &'static str = "split-table16";

    fn mul_row_add(dst: &mut [Self], src: &[Self], s: Self) {
        assert_eq!(
            dst.len(),
            src.len(),
            "mul_row_add length mismatch: dst has {} elements, src has {}",
            dst.len(),
            src.len()
        );
        if s.0 == 0 {
            return;
        }
        if s.0 == 1 {
            for (d, &x) in dst.iter_mut().zip(src) {
                d.0 ^= x.0;
            }
        } else if dst.len() >= simd::SIMD_THRESHOLD && simd::gf2_16_mul_row_add(dst, src, s) {
            // Handled by the detected arch-SIMD tier; `false` (no tier)
            // falls through to the table loops below.
        } else if dst.len() >= GF2_16_SPLIT_THRESHOLD {
            let (lo, hi) = gf2_16_split_tables(s);
            for (d, &x) in dst.iter_mut().zip(src) {
                d.0 ^= lo[(x.0 & 0xFF) as usize] ^ hi[(x.0 >> 8) as usize];
            }
        } else {
            crate::gf2m::mul_row_add_log16(dst, src, s);
        }
    }

    fn scale_row(row: &mut [Self], s: Self) {
        if s.0 == 1 {
            return;
        }
        if s.0 == 0 {
            row.fill(Gf2_16(0));
        } else if row.len() >= GF2_16_SPLIT_THRESHOLD {
            let (lo, hi) = gf2_16_split_tables(s);
            for x in row.iter_mut() {
                x.0 = lo[(x.0 & 0xFF) as usize] ^ hi[(x.0 >> 8) as usize];
            }
        } else {
            crate::gf2m::scale_row_log16(row, s);
        }
    }
}

// Every other degree: scalar defaults (carry-less multiplication has no
// table representation worth building at runtime).
impl<const M: u32> FastOps for Gf2m<M> {}

/// Kernelized matrix multiplication `a * b`: the i–k–j loop order turns
/// the inner dimension into whole-row [`FastOps::mul_row_add`] calls.
/// Bit-identical to [`Matrix::mul`].
///
/// # Panics
///
/// Panics unless `a.cols() == b.rows()`.
pub fn mat_mul<F: FastOps>(a: &Matrix<F>, b: &Matrix<F>) -> Matrix<F> {
    assert_eq!(
        a.cols(),
        b.rows(),
        "mat_mul dim mismatch: {}x{} * {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let mut out = Matrix::zero(a.rows(), b.cols());
    for i in 0..a.rows() {
        for k in 0..a.cols() {
            let s = a[(i, k)];
            if !s.is_zero() {
                F::mul_row_add(out.row_mut(i), b.row(k), s);
            }
        }
    }
    out
}

/// Kernelized row-vector × matrix product `v * m` (the Algorithm-1 encode
/// shape). Bit-identical to [`Matrix::left_mul_vec`].
///
/// # Panics
///
/// Panics unless `v.len() == m.rows()`.
pub fn left_mul_vec<F: FastOps>(m: &Matrix<F>, v: &[F]) -> Vec<F> {
    assert_eq!(
        v.len(),
        m.rows(),
        "left_mul_vec dim mismatch: vector of {} over {} rows",
        v.len(),
        m.rows()
    );
    let mut out = vec![F::ZERO; m.cols()];
    for (r, &x) in v.iter().enumerate() {
        if !x.is_zero() {
            F::mul_row_add(&mut out, m.row(r), x);
        }
    }
    out
}

/// Reduces `m` to reduced row-echelon form in place, returning the pivot
/// columns. Pivot selection and elimination order match
/// [`crate::linalg::echelon`] exactly.
pub fn echelon_in_place<F: FastOps>(m: &mut Matrix<F>) -> Vec<usize> {
    let (rows, cols) = (m.rows(), m.cols());
    let mut pivots = Vec::new();
    let mut pr = 0;
    for pc in 0..cols {
        let Some(sel) = (pr..rows).find(|&r| !m[(r, pc)].is_zero()) else {
            continue;
        };
        if sel != pr {
            m.swap_rows(sel, pr);
        }
        let inv = m[(pr, pc)].inv().expect("pivot is non-zero"); // nab-lint: allow(NAB003): pivot was selected non-zero by the search above
        F::scale_row(m.row_mut(pr), inv);
        for r in 0..rows {
            if r != pr {
                let factor = m[(r, pc)];
                if !factor.is_zero() {
                    let (dst, src) = m.two_rows_mut(r, pr);
                    // add == sub in characteristic 2.
                    F::mul_row_add(dst, src, factor);
                }
            }
        }
        pivots.push(pc);
        pr += 1;
        if pr == rows {
            break;
        }
    }
    pivots
}

/// Kernelized [`crate::linalg::echelon`].
pub fn echelon<F: FastOps>(a: &Matrix<F>) -> Echelon<F> {
    let mut m = a.clone();
    let pivots = echelon_in_place(&mut m);
    Echelon { matrix: m, pivots }
}

/// Kernelized [`crate::linalg::rank`].
pub fn rank<F: FastOps>(a: &Matrix<F>) -> usize {
    let mut m = a.clone();
    echelon_in_place(&mut m).len()
}

/// Kernelized [`crate::linalg::is_invertible`].
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn is_invertible<F: FastOps>(a: &Matrix<F>) -> bool {
    assert_eq!(a.rows(), a.cols(), "invertibility requires a square matrix");
    rank(a) == a.rows()
}

/// Kernelized [`crate::linalg::invert`]: Gauss–Jordan on the augmented
/// matrix `[A | I]` with row kernels, in place.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn invert<F: FastOps>(a: &Matrix<F>) -> Option<Matrix<F>> {
    assert_eq!(a.rows(), a.cols(), "inversion requires a square matrix");
    let n = a.rows();
    let mut aug = a.hstack(&Matrix::identity(n));
    let pivots = echelon_in_place(&mut aug);
    // Invertible iff the left block reduced to the identity, i.e. the
    // first n pivots are exactly columns 0..n.
    if pivots.len() < n || pivots.iter().take(n).enumerate().any(|(i, &pc)| pc != i) {
        return None;
    }
    let right: Vec<usize> = (n..2 * n).collect();
    Some(aug.select_cols(&right))
}

/// Kernelized [`crate::linalg::solve`].
///
/// # Panics
///
/// Panics unless `b.len() == a.rows()`.
pub fn solve<F: FastOps>(a: &Matrix<F>, b: &[F]) -> Option<Vec<F>> {
    assert_eq!(b.len(), a.rows(), "rhs length must equal row count");
    let bm = Matrix::from_fn(a.rows(), 1, |r, _| b[r]);
    let mut aug = a.hstack(&bm);
    let pivots = echelon_in_place(&mut aug);
    if pivots.last() == Some(&a.cols()) {
        return None;
    }
    let mut x = vec![F::ZERO; a.cols()];
    for (row, &pc) in pivots.iter().enumerate() {
        x[pc] = aug[(row, a.cols())];
    }
    Some(x)
}

/// Kernelized [`crate::linalg::kernel_basis`].
pub fn kernel_basis<F: FastOps>(a: &Matrix<F>) -> Matrix<F> {
    let e = echelon(a);
    let n = a.cols();
    let pivot_set: std::collections::HashSet<usize> = e.pivots.iter().copied().collect();
    let free: Vec<usize> = (0..n).filter(|c| !pivot_set.contains(c)).collect();

    let mut rows = Vec::with_capacity(free.len());
    for &fc in &free {
        let mut v = vec![F::ZERO; n];
        v[fc] = F::ONE;
        for (row, &pc) in e.pivots.iter().enumerate() {
            v[pc] = e.matrix[(row, fc)];
        }
        rows.push(v);
    }
    if rows.is_empty() {
        Matrix::zero(0, n)
    } else {
        Matrix::from_rows(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linalg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kernel_names_reflect_specialization() {
        assert_eq!(<Gf256 as FastOps>::KERNEL, "table256");
        assert_eq!(<Gf2_16 as FastOps>::KERNEL, "split-table16");
        assert_eq!(<Gf2m<13> as FastOps>::KERNEL, "scalar");
    }

    #[test]
    fn gf2_16_split_kernel_matches_scalar_at_all_lengths() {
        // Cover both sides of the split-table threshold.
        let mut rng = StdRng::seed_from_u64(71);
        for len in [
            0,
            1,
            7,
            GF2_16_SPLIT_THRESHOLD - 1,
            GF2_16_SPLIT_THRESHOLD,
            200,
        ] {
            let src: Vec<Gf2_16> = (0..len).map(|_| Gf2_16::random(&mut rng)).collect();
            let base: Vec<Gf2_16> = (0..len).map(|_| Gf2_16::random(&mut rng)).collect();
            for s in [0u64, 1, 2, 0xFFFF, 0xABCD] {
                let s = Gf2_16::from_u64(s);
                let mut fast = base.clone();
                let mut slow = base.clone();
                Gf2_16::mul_row_add(&mut fast, &src, s);
                scalar_mul_row_add(&mut slow, &src, s);
                assert_eq!(fast, slow, "len={len} s={s:?}");
                let mut fast = base.clone();
                let mut slow = base.clone();
                Gf2_16::scale_row(&mut fast, s);
                scalar_scale_row(&mut slow, s);
                assert_eq!(fast, slow, "scale len={len} s={s:?}");
            }
        }
    }

    #[test]
    fn gf256_kernel_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(13);
        let src: Vec<Gf256> = (0..300).map(|_| Gf256::random(&mut rng)).collect();
        let base: Vec<Gf256> = (0..300).map(|_| Gf256::random(&mut rng)).collect();
        for s in [0u64, 1, 2, 0x1D, 0xFF] {
            let s = Gf256::from_u64(s);
            let mut fast = base.clone();
            let mut slow = base.clone();
            Gf256::mul_row_add(&mut fast, &src, s);
            scalar_mul_row_add(&mut slow, &src, s);
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn kernel_linalg_matches_scalar_linalg() {
        let mut rng = StdRng::seed_from_u64(41);
        for _ in 0..8 {
            let a = Matrix::<Gf2_16>::random(5, 8, &mut rng);
            let e_fast = echelon(&a);
            let e_slow = linalg::echelon(&a);
            assert_eq!(e_fast.pivots, e_slow.pivots);
            assert_eq!(e_fast.matrix, e_slow.matrix);
            assert_eq!(rank(&a), linalg::rank(&a));
            assert_eq!(kernel_basis(&a), linalg::kernel_basis(&a));

            let sq = Matrix::<Gf2_16>::random(6, 6, &mut rng);
            assert_eq!(invert(&sq), linalg::invert(&sq));
            let b: Vec<Gf2_16> = (0..6).map(|_| Gf2_16::random(&mut rng)).collect();
            assert_eq!(solve(&sq, &b), linalg::solve(&sq, &b));
        }
    }

    #[test]
    fn mat_mul_matches_scalar_mul_for_generic_fields() {
        let mut rng = StdRng::seed_from_u64(43);
        let a = Matrix::<Gf2m<13>>::random(4, 6, &mut rng);
        let b = Matrix::<Gf2m<13>>::random(6, 3, &mut rng);
        assert_eq!(mat_mul(&a, &b), a.mul(&b));
        let v: Vec<Gf2m<13>> = (0..4).map(|_| Gf2m::random(&mut rng)).collect();
        assert_eq!(left_mul_vec(&a, &v), a.left_mul_vec(&v));
    }
}
