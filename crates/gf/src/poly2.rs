//! Polynomial arithmetic over `GF(2)` with `u128` bit-packed coefficients.
//!
//! Used to implement the generic [`crate::gf2m::Gf2m`] field (carry-less
//! multiplication and modular reduction) and to *verify* that the built-in
//! irreducible-polynomial table really is irreducible (see
//! [`is_irreducible`]), so a typo in the table cannot silently corrupt field
//! arithmetic.

/// Degree of a `GF(2)` polynomial packed into a `u128` (`-1` → zero poly).
#[inline]
pub fn degree(p: u128) -> i32 {
    127 - p.leading_zeros() as i32
}

/// Carry-less multiplication of two bit-packed `GF(2)` polynomials.
///
/// The result is exact (no reduction); callers must ensure the true product
/// fits in 128 bits, i.e. `degree(a) + degree(b) < 128`.
pub fn clmul(a: u128, b: u128) -> u128 {
    let mut acc = 0u128;
    let mut a = a;
    let mut b = b;
    while b != 0 {
        if b & 1 == 1 {
            acc ^= a;
        }
        a <<= 1;
        b >>= 1;
    }
    acc
}

/// Remainder of bit-packed polynomial division: `a mod m`.
///
/// # Panics
///
/// Panics if `m` is zero.
pub fn pmod(mut a: u128, m: u128) -> u128 {
    assert!(m != 0, "polynomial modulus must be non-zero");
    let dm = degree(m);
    while degree(a) >= dm {
        a ^= m << (degree(a) - dm) as u32;
    }
    a
}

/// Greatest common divisor of two bit-packed `GF(2)` polynomials.
pub fn pgcd(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = pmod(a, b);
        a = b;
        b = r;
    }
    a
}

/// Squares `x` modulo `m`.
pub fn sqr_mod(x: u128, m: u128) -> u128 {
    // Squaring in GF(2)[x] spreads bits: bit i -> bit 2i. For degree < 64
    // inputs the spread fits in 128 bits.
    debug_assert!(degree(x) < 64);
    let mut out = 0u128;
    let mut i = 0;
    let mut v = x;
    while v != 0 {
        if v & 1 == 1 {
            out ^= 1u128 << (2 * i);
        }
        v >>= 1;
        i += 1;
    }
    pmod(out, m)
}

/// Multiplies `a * b mod m` for polynomials of degree < 64.
pub fn mul_mod(a: u128, b: u128, m: u128) -> u128 {
    pmod(clmul(a, b), m)
}

/// Computes `x^(2^k) mod m` by repeated squaring.
pub fn pow2k_mod(mut x: u128, k: u32, m: u128) -> u128 {
    for _ in 0..k {
        x = sqr_mod(x, m);
    }
    x
}

/// Tests whether the bit-packed polynomial `m` of degree `d` is irreducible
/// over `GF(2)`.
///
/// Uses Rabin's irreducibility test: `m` (degree `d`) is irreducible iff
/// `x^(2^d) ≡ x (mod m)` and `gcd(x^(2^(d/q)) − x, m) = 1` for every prime
/// divisor `q` of `d`.
pub fn is_irreducible(m: u128) -> bool {
    let d = degree(m);
    if d <= 0 {
        return false;
    }
    let d = d as u32;
    let x = pmod(2, m); // the polynomial "x", reduced mod m (matters for d=1)

    // x^(2^d) mod m must equal x.
    if pow2k_mod(x, d, m) != x {
        return false;
    }
    // For each prime q | d, gcd(x^(2^(d/q)) - x, m) must be 1.
    for q in prime_divisors(d) {
        let t = pow2k_mod(x, d / q, m);
        if pgcd(t ^ x, m) != 1 {
            return false;
        }
    }
    true
}

/// The distinct prime divisors of `n`.
fn prime_divisors(mut n: u32) -> Vec<u32> {
    let mut out = Vec::new();
    let mut p = 2;
    while p * p <= n {
        if n.is_multiple_of(p) {
            out.push(p);
            while n.is_multiple_of(p) {
                n /= p;
            }
        }
        p += 1;
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn degree_of_constants() {
        assert_eq!(degree(0), -1);
        assert_eq!(degree(1), 0);
        assert_eq!(degree(2), 1);
        assert_eq!(degree(0b1000), 3);
    }

    #[test]
    fn clmul_simple_products() {
        // (x+1)(x+1) = x^2 + 1 over GF(2)
        assert_eq!(clmul(0b11, 0b11), 0b101);
        // x * (x^2 + x + 1) = x^3 + x^2 + x
        assert_eq!(clmul(0b10, 0b111), 0b1110);
        assert_eq!(clmul(0, 12345), 0);
        assert_eq!(clmul(1, 12345), 12345);
    }

    #[test]
    fn pmod_reduces_below_modulus_degree() {
        // x^3 mod (x^2+x+1) : x^3 = x*(x^2+x+1) + (x^2+x) -> then x^2+x mod = 1
        let r = pmod(0b1000, 0b111);
        assert!(degree(r) < 2);
        assert_eq!(r, 1); // x^3 ≡ 1 mod x^2+x+1 (x has order 3)
    }

    #[test]
    fn gcd_of_coprime_is_one() {
        // x and x+1 are coprime
        assert_eq!(pgcd(0b10, 0b11), 1);
        // x^2+1 = (x+1)^2, gcd with x+1 is x+1
        assert_eq!(pgcd(0b101, 0b11), 0b11);
    }

    #[test]
    fn known_irreducibles() {
        // x^2+x+1, x^3+x+1, x^8+x^4+x^3+x+1 (AES-ish), x^8+x^4+x^3+x^2+1
        for p in [0b111u128, 0b1011, 0x11B, 0x11D] {
            assert!(is_irreducible(p), "{p:#x} should be irreducible");
        }
    }

    #[test]
    fn known_reducibles() {
        // x^2+1 = (x+1)^2 ; x^4+x^2 = x^2(x^2+1); x^2 ; 1 ; 0
        for p in [0b101u128, 0b10100, 0b100, 0b1, 0b0] {
            assert!(!is_irreducible(p), "{p:#x} should be reducible");
        }
    }

    #[test]
    fn sqr_mod_matches_mul_mod() {
        let m = 0x11Bu128;
        for v in 0..=255u128 {
            assert_eq!(sqr_mod(v, m), mul_mod(v, v, m));
        }
    }

    #[test]
    fn prime_divisor_sets() {
        assert_eq!(prime_divisors(1), Vec::<u32>::new());
        assert_eq!(prime_divisors(2), vec![2]);
        assert_eq!(prime_divisors(12), vec![2, 3]);
        assert_eq!(prime_divisors(64), vec![2]);
        assert_eq!(prime_divisors(60), vec![2, 3, 5]);
        assert_eq!(prime_divisors(61), vec![61]);
    }
}
