//! Finite fields `GF(2^m)` and dense linear algebra over them.
//!
//! The NAB equality-check algorithm (Algorithm 1 of Liang & Vaidya 2012)
//! interprets an `L`-bit broadcast value as `ρ` symbols of `GF(2^{L/ρ})` and
//! transmits random linear combinations of those symbols on every link. This
//! crate provides everything that machinery needs:
//!
//! - [`field::Field`] — the abstract field interface,
//! - [`gf256::Gf256`] and [`gf2m::Gf2_16`] — fast table-based fields,
//! - [`gf2m::Gf2m`] — generic `GF(2^m)` for any `1 ≤ m ≤ 64` via carry-less
//!   multiplication and a built-in table of low-weight irreducible
//!   polynomials,
//! - [`matrix::Matrix`] — dense matrices with multiplication, stacking and
//!   slicing,
//! - [`linalg`] — scalar Gaussian elimination: rank, determinant-zero
//!   testing, inversion, solving, and kernel bases (the reference path),
//! - [`kernel`] — the [`kernel::FastOps`] row-kernel specialization trait
//!   and kernelized linear algebra, bit-identical to [`linalg`] but
//!   table-driven for `GF(256)` and `GF(2^16)`,
//! - [`bytes`] — row-major `GF(256)` byte-slab storage
//!   ([`bytes::ByteMatrix`]) with fully table-driven row kernels,
//! - [`words`] — row-major `GF(2^16)` word-slab storage
//!   ([`words::WordMatrix`]) for the batched execution path,
//! - [`simd`] — the runtime-detected arch-SIMD row-kernel tier
//!   (nibble-split PSHUFB tables via SSSE3/AVX2 intrinsics, with a
//!   portable fallback identical in results).
//!
//! # Example
//!
//! ```
//! use nab_gf::gf2m::Gf2_16;
//! use nab_gf::matrix::Matrix;
//! use nab_gf::field::Field;
//!
//! # fn main() {
//! let mut rng = rand::thread_rng();
//! let a = Matrix::<Gf2_16>::random(4, 4, &mut rng);
//! if let Some(inv) = nab_gf::linalg::invert(&a) {
//!     assert_eq!(a.mul(&inv), Matrix::identity(4));
//! }
//! # }
//! ```

pub mod bytes;
pub mod field;
pub mod gf256;
pub mod gf2m;
pub mod kernel;
pub mod linalg;
pub mod matrix;
pub mod poly2;
pub mod simd;
pub mod words;

pub use bytes::ByteMatrix;
pub use field::Field;
pub use gf256::Gf256;
pub use gf2m::{Gf2_16, Gf2_32, Gf2m};
pub use kernel::FastOps;
pub use matrix::Matrix;
pub use words::WordMatrix;
