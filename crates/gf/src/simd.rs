//! Arch-SIMD row kernels: nibble-split PSHUFB-style table lookups.
//!
//! `GF(2^m)` multiplication by a fixed scalar `s` is `GF(2)`-linear, so it
//! splits over any basis of the operand: `s·x = Σ_k s·(nibble_k(x) << 4k)`.
//! Each 4-bit nibble has only 16 possible values, and a 16-entry byte table
//! is exactly one `PSHUFB` (`_mm_shuffle_epi8`) register, so one fused
//! multiply-add over a row becomes a handful of shuffles and XORs per
//! 16/32-byte vector. This is the classic SIMD erasure-coding kernel
//! (ISA-L, klauspost/reedsolomon).
//!
//! The tier is picked **once per process** by runtime CPU-feature
//! detection ([`tier`]): `avx2` → 32-byte vectors, `ssse3` → 16-byte
//! vectors, `portable` → the chunked table loops the process already had
//! (non-x86 builds compile only the portable path). Every tier is
//! **bit-identical**: characteristic-2 addition is XOR, so vectorization
//! changes neither values nor any accumulation result. The differential
//! suite in `tests/differential.rs` pins all tiers against the scalar
//! reference.

use std::sync::OnceLock;

use crate::bytes;
use crate::field::Field;
use crate::gf2m::Gf2_16;

/// Rows shorter than this (in elements) skip the SIMD dispatch: below a
/// couple of vectors the table-build and tail handling dominate, and the
/// scalar table loops are already fast.
pub const SIMD_THRESHOLD: usize = 64;

/// The kernel tier selected for this process.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
enum Tier {
    Avx2,
    Ssse3,
    Portable,
}

fn detect() -> Tier {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return Tier::Avx2;
        }
        if std::arch::is_x86_feature_detected!("ssse3") {
            return Tier::Ssse3;
        }
    }
    Tier::Portable
}

fn tier_enum() -> Tier {
    static TIER: OnceLock<Tier> = OnceLock::new();
    *TIER.get_or_init(detect)
}

/// The selected SIMD tier name: `"avx2"`, `"ssse3"`, or `"portable"`.
/// Decided once at first use from runtime CPU-feature detection.
pub fn tier() -> &'static str {
    match tier_enum() {
        Tier::Avx2 => "avx2",
        Tier::Ssse3 => "ssse3",
        Tier::Portable => "portable",
    }
}

/// Comma-joined list of the detected CPU features relevant to the GF
/// kernels (e.g. `"sse2,ssse3,avx2"`), or `"none"` when no candidate
/// feature is present (including non-x86 builds). Recorded in perf
/// baselines and the sweep-start trace event so numbers from different
/// machines stay comparable.
pub fn cpu_features() -> &'static str {
    static FEATURES: OnceLock<String> = OnceLock::new();
    FEATURES.get_or_init(|| {
        let mut found: Vec<&str> = Vec::new();
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("sse2") {
                found.push("sse2");
            }
            if std::arch::is_x86_feature_detected!("ssse3") {
                found.push("ssse3");
            }
            if std::arch::is_x86_feature_detected!("avx") {
                found.push("avx");
            }
            if std::arch::is_x86_feature_detected!("avx2") {
                found.push("avx2");
            }
        }
        if found.is_empty() {
            "none".to_string()
        } else {
            found.join(",")
        }
    })
}

// --- GF(256): two 16-entry nibble tables per scalar. ----------------------

/// The 16-entry nibble product tables for one scalar: `lo[n] = s·n`,
/// `hi[n] = s·(n << 4)`; then `s·x = lo[x & 0xF] ^ hi[x >> 4]`.
#[inline]
fn gf256_nibble_tables(s: u8) -> ([u8; 16], [u8; 16]) {
    let t = bytes::mul_table(s);
    let mut lo = [0u8; 16];
    let mut hi = [0u8; 16];
    for n in 0..16 {
        lo[n] = t[n];
        hi[n] = t[n << 4];
    }
    (lo, hi)
}

/// SIMD-dispatched `dst[i] ^= s · src[i]` over `GF(256)` bytes.
///
/// Caller guarantees `s >= 2` and equal lengths; [`bytes::mul_row_add`]
/// handles the `0`/`1` fast cases and is the public entry point.
pub(crate) fn gf256_mul_row_add(dst: &mut [u8], src: &[u8], s: u8) {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert!(s >= 2);
    match tier_enum() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: this tier is only selected after runtime detection
        // proved AVX2 is available on this CPU.
        Tier::Avx2 => unsafe { gf256_mul_row_add_avx2(dst, src, s) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: this tier is only selected after runtime detection
        // proved SSSE3 is available on this CPU.
        Tier::Ssse3 => unsafe { gf256_mul_row_add_ssse3(dst, src, s) },
        _ => gf256_mul_row_add_portable(dst, src, s),
    }
}

/// SIMD-dispatched `row[i] = s · row[i]` over `GF(256)` bytes.
///
/// Caller guarantees `s >= 2`; [`bytes::scale_row`] handles `0`/`1`.
pub(crate) fn gf256_scale_row(row: &mut [u8], s: u8) {
    debug_assert!(s >= 2);
    match tier_enum() {
        #[cfg(target_arch = "x86_64")]
        // SAFETY: this tier is only selected after runtime detection
        // proved AVX2 is available on this CPU.
        Tier::Avx2 => unsafe { gf256_scale_row_avx2(row, s) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: this tier is only selected after runtime detection
        // proved SSSE3 is available on this CPU.
        Tier::Ssse3 => unsafe { gf256_scale_row_ssse3(row, s) },
        _ => {
            let t = bytes::mul_table(s);
            for x in row.iter_mut() {
                *x = t[*x as usize];
            }
        }
    }
}

/// The portable fallback: the same chunked table loop the pre-SIMD tier
/// used (identical results by construction).
fn gf256_mul_row_add_portable(dst: &mut [u8], src: &[u8], s: u8) {
    let t = bytes::mul_table(s);
    for (d, &x) in dst.iter_mut().zip(src) {
        *d ^= t[x as usize];
    }
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    //! The `cfg`-gated intrinsics bodies. Safety contract throughout:
    //! the caller checked the CPU feature at runtime (the tier is only
    //! selected when detection succeeded), and all loads/stores are
    //! unaligned (`loadu`/`storeu`) so no alignment obligations exist.
    use super::*;
    use std::arch::x86_64::*;

    // SAFETY: caller must have verified SSSE3 via runtime
    // detection; all vector loads/stores below are unaligned and
    // bounded by the slice lengths, so no other obligations exist.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn gf256_mul_row_add_ssse3(dst: &mut [u8], src: &[u8], s: u8) {
        let (lo, hi) = gf256_nibble_tables(s);
        let vlo = _mm_loadu_si128(lo.as_ptr() as *const __m128i);
        let vhi = _mm_loadu_si128(hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let n = dst.len();
        let mut i = 0;
        while i + 16 <= n {
            let x = _mm_loadu_si128(src.as_ptr().add(i) as *const __m128i);
            let nl = _mm_and_si128(x, mask);
            let nh = _mm_and_si128(_mm_srli_epi64::<4>(x), mask);
            let p = _mm_xor_si128(_mm_shuffle_epi8(vlo, nl), _mm_shuffle_epi8(vhi, nh));
            let d = _mm_loadu_si128(dst.as_ptr().add(i) as *const __m128i);
            _mm_storeu_si128(dst.as_mut_ptr().add(i) as *mut __m128i, _mm_xor_si128(d, p));
            i += 16;
        }
        gf256_mul_row_add_portable(&mut dst[i..], &src[i..], s);
    }

    // SAFETY: caller must have verified AVX2 via runtime
    // detection; all vector loads/stores below are unaligned and
    // bounded by the slice lengths, so no other obligations exist.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gf256_mul_row_add_avx2(dst: &mut [u8], src: &[u8], s: u8) {
        let (lo, hi) = gf256_nibble_tables(s);
        let vlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr() as *const __m128i));
        let vhi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        let n = dst.len();
        let mut i = 0;
        while i + 32 <= n {
            let x = _mm256_loadu_si256(src.as_ptr().add(i) as *const __m256i);
            let nl = _mm256_and_si256(x, mask);
            let nh = _mm256_and_si256(_mm256_srli_epi64::<4>(x), mask);
            let p = _mm256_xor_si256(_mm256_shuffle_epi8(vlo, nl), _mm256_shuffle_epi8(vhi, nh));
            let d = _mm256_loadu_si256(dst.as_ptr().add(i) as *const __m256i);
            _mm256_storeu_si256(
                dst.as_mut_ptr().add(i) as *mut __m256i,
                _mm256_xor_si256(d, p),
            );
            i += 32;
        }
        gf256_mul_row_add_portable(&mut dst[i..], &src[i..], s);
    }

    // SAFETY: caller must have verified SSSE3 via runtime
    // detection; all vector loads/stores below are unaligned and
    // bounded by the slice lengths, so no other obligations exist.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn gf256_scale_row_ssse3(row: &mut [u8], s: u8) {
        let (lo, hi) = gf256_nibble_tables(s);
        let vlo = _mm_loadu_si128(lo.as_ptr() as *const __m128i);
        let vhi = _mm_loadu_si128(hi.as_ptr() as *const __m128i);
        let mask = _mm_set1_epi8(0x0F);
        let n = row.len();
        let mut i = 0;
        while i + 16 <= n {
            let x = _mm_loadu_si128(row.as_ptr().add(i) as *const __m128i);
            let nl = _mm_and_si128(x, mask);
            let nh = _mm_and_si128(_mm_srli_epi64::<4>(x), mask);
            let p = _mm_xor_si128(_mm_shuffle_epi8(vlo, nl), _mm_shuffle_epi8(vhi, nh));
            _mm_storeu_si128(row.as_mut_ptr().add(i) as *mut __m128i, p);
            i += 16;
        }
        let t = bytes::mul_table(s);
        for x in row[i..].iter_mut() {
            *x = t[*x as usize];
        }
    }

    // SAFETY: caller must have verified AVX2 via runtime
    // detection; all vector loads/stores below are unaligned and
    // bounded by the slice lengths, so no other obligations exist.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gf256_scale_row_avx2(row: &mut [u8], s: u8) {
        let (lo, hi) = gf256_nibble_tables(s);
        let vlo = _mm256_broadcastsi128_si256(_mm_loadu_si128(lo.as_ptr() as *const __m128i));
        let vhi = _mm256_broadcastsi128_si256(_mm_loadu_si128(hi.as_ptr() as *const __m128i));
        let mask = _mm256_set1_epi8(0x0F);
        let n = row.len();
        let mut i = 0;
        while i + 32 <= n {
            let x = _mm256_loadu_si256(row.as_ptr().add(i) as *const __m256i);
            let nl = _mm256_and_si256(x, mask);
            let nh = _mm256_and_si256(_mm256_srli_epi64::<4>(x), mask);
            let p = _mm256_xor_si256(_mm256_shuffle_epi8(vlo, nl), _mm256_shuffle_epi8(vhi, nh));
            _mm256_storeu_si256(row.as_mut_ptr().add(i) as *mut __m256i, p);
            i += 32;
        }
        let t = bytes::mul_table(s);
        for x in row[i..].iter_mut() {
            *x = t[*x as usize];
        }
    }

    // --- GF(2^16): four nibble tables, each split lo/hi product byte. ---
    //
    // A 16-bit operand has four nibbles; `T_k[n] = s·(n << 4k)` for
    // k = 0..3, with each table stored as two 16-byte PSHUFB registers
    // (low product byte, high product byte). Per vector of operands:
    // deinterleave into a low-byte vector and a high-byte vector with
    // PACKUSWB (exact — inputs are pre-masked to ≤ 255, so saturation
    // never fires), do 8 shuffles + XOR trees, then re-interleave the
    // product bytes with PUNPCKL/HBW. Both pack and unpack operate
    // per 128-bit lane, so the lane permutation pack introduces is
    // exactly undone by unpack and products land back on their operands.

    pub(super) struct Tables16x4 {
        lo: [[u8; 16]; 4],
        hi: [[u8; 16]; 4],
    }

    pub(super) fn gf2_16_nibble_tables(s: Gf2_16) -> Tables16x4 {
        let mut t = Tables16x4 {
            lo: [[0; 16]; 4],
            hi: [[0; 16]; 4],
        };
        for k in 0..4 {
            for n in 0..16u16 {
                let p = s.mul(Gf2_16(n << (4 * k))).0;
                t.lo[k][n as usize] = p as u8;
                t.hi[k][n as usize] = (p >> 8) as u8;
            }
        }
        t
    }

    // SAFETY: caller must have verified SSSE3 via runtime
    // detection; all vector loads/stores below are unaligned and
    // bounded by the slice lengths, so no other obligations exist.
    #[target_feature(enable = "ssse3")]
    pub(super) unsafe fn gf2_16_mul_row_add_ssse3(dst: &mut [Gf2_16], src: &[Gf2_16], s: Gf2_16) {
        let t = gf2_16_nibble_tables(s);
        let tl: [__m128i; 4] =
            std::array::from_fn(|k| _mm_loadu_si128(t.lo[k].as_ptr() as *const __m128i));
        let th: [__m128i; 4] =
            std::array::from_fn(|k| _mm_loadu_si128(t.hi[k].as_ptr() as *const __m128i));
        let nib = _mm_set1_epi8(0x0F);
        let byte = _mm_set1_epi16(0x00FF);
        let n = dst.len();
        // `Gf2_16` is repr(transparent) over u16, so the slabs reinterpret
        // as raw u16 (little-endian byte pairs) for the vector loads.
        let sp = src.as_ptr() as *const u8;
        let dp = dst.as_mut_ptr() as *mut u8;
        let mut i = 0;
        // 16 elements (two 8×u16 vectors) per iteration.
        while i + 16 <= n {
            let v0 = _mm_loadu_si128(sp.add(2 * i) as *const __m128i);
            let v1 = _mm_loadu_si128(sp.add(2 * i + 16) as *const __m128i);
            let lob = _mm_packus_epi16(_mm_and_si128(v0, byte), _mm_and_si128(v1, byte));
            let hib = _mm_packus_epi16(_mm_srli_epi16::<8>(v0), _mm_srli_epi16::<8>(v1));
            let n0 = _mm_and_si128(lob, nib);
            let n1 = _mm_and_si128(_mm_srli_epi64::<4>(lob), nib);
            let n2 = _mm_and_si128(hib, nib);
            let n3 = _mm_and_si128(_mm_srli_epi64::<4>(hib), nib);
            let plo = _mm_xor_si128(
                _mm_xor_si128(_mm_shuffle_epi8(tl[0], n0), _mm_shuffle_epi8(tl[1], n1)),
                _mm_xor_si128(_mm_shuffle_epi8(tl[2], n2), _mm_shuffle_epi8(tl[3], n3)),
            );
            let phi = _mm_xor_si128(
                _mm_xor_si128(_mm_shuffle_epi8(th[0], n0), _mm_shuffle_epi8(th[1], n1)),
                _mm_xor_si128(_mm_shuffle_epi8(th[2], n2), _mm_shuffle_epi8(th[3], n3)),
            );
            let r0 = _mm_unpacklo_epi8(plo, phi);
            let r1 = _mm_unpackhi_epi8(plo, phi);
            let d0 = _mm_loadu_si128(dp.add(2 * i) as *const __m128i);
            let d1 = _mm_loadu_si128(dp.add(2 * i + 16) as *const __m128i);
            _mm_storeu_si128(dp.add(2 * i) as *mut __m128i, _mm_xor_si128(d0, r0));
            _mm_storeu_si128(dp.add(2 * i + 16) as *mut __m128i, _mm_xor_si128(d1, r1));
            i += 16;
        }
        if i < n {
            crate::gf2m::mul_row_add_log16(&mut dst[i..], &src[i..], s);
        }
    }

    // SAFETY: caller must have verified AVX2 via runtime
    // detection; all vector loads/stores below are unaligned and
    // bounded by the slice lengths, so no other obligations exist.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gf2_16_mul_row_add_avx2(dst: &mut [Gf2_16], src: &[Gf2_16], s: Gf2_16) {
        let t = gf2_16_nibble_tables(s);
        let tl: [__m256i; 4] = std::array::from_fn(|k| {
            _mm256_broadcastsi128_si256(_mm_loadu_si128(t.lo[k].as_ptr() as *const __m128i))
        });
        let th: [__m256i; 4] = std::array::from_fn(|k| {
            _mm256_broadcastsi128_si256(_mm_loadu_si128(t.hi[k].as_ptr() as *const __m128i))
        });
        let nib = _mm256_set1_epi8(0x0F);
        let byte = _mm256_set1_epi16(0x00FF);
        let n = dst.len();
        let sp = src.as_ptr() as *const u8;
        let dp = dst.as_mut_ptr() as *mut u8;
        let mut i = 0;
        // 32 elements (two 16×u16 vectors) per iteration. VPACKUSWB and
        // VPUNPCKL/HBW are both per-lane, so pack's lane interleaving is
        // undone by unpack: r0 covers elements i..i+16, r1 the next 16.
        while i + 32 <= n {
            let v0 = _mm256_loadu_si256(sp.add(2 * i) as *const __m256i);
            let v1 = _mm256_loadu_si256(sp.add(2 * i + 32) as *const __m256i);
            let lob = _mm256_packus_epi16(_mm256_and_si256(v0, byte), _mm256_and_si256(v1, byte));
            let hib = _mm256_packus_epi16(_mm256_srli_epi16::<8>(v0), _mm256_srli_epi16::<8>(v1));
            let n0 = _mm256_and_si256(lob, nib);
            let n1 = _mm256_and_si256(_mm256_srli_epi64::<4>(lob), nib);
            let n2 = _mm256_and_si256(hib, nib);
            let n3 = _mm256_and_si256(_mm256_srli_epi64::<4>(hib), nib);
            let plo = _mm256_xor_si256(
                _mm256_xor_si256(
                    _mm256_shuffle_epi8(tl[0], n0),
                    _mm256_shuffle_epi8(tl[1], n1),
                ),
                _mm256_xor_si256(
                    _mm256_shuffle_epi8(tl[2], n2),
                    _mm256_shuffle_epi8(tl[3], n3),
                ),
            );
            let phi = _mm256_xor_si256(
                _mm256_xor_si256(
                    _mm256_shuffle_epi8(th[0], n0),
                    _mm256_shuffle_epi8(th[1], n1),
                ),
                _mm256_xor_si256(
                    _mm256_shuffle_epi8(th[2], n2),
                    _mm256_shuffle_epi8(th[3], n3),
                ),
            );
            let r0 = _mm256_unpacklo_epi8(plo, phi);
            let r1 = _mm256_unpackhi_epi8(plo, phi);
            let d0 = _mm256_loadu_si256(dp.add(2 * i) as *const __m256i);
            let d1 = _mm256_loadu_si256(dp.add(2 * i + 32) as *const __m256i);
            _mm256_storeu_si256(dp.add(2 * i) as *mut __m256i, _mm256_xor_si256(d0, r0));
            _mm256_storeu_si256(dp.add(2 * i + 32) as *mut __m256i, _mm256_xor_si256(d1, r1));
            i += 32;
        }
        if i < n {
            crate::gf2m::mul_row_add_log16(&mut dst[i..], &src[i..], s);
        }
    }
}

#[cfg(target_arch = "x86_64")]
use x86::*;

/// SIMD-dispatched `dst[i] ^= s · src[i]` over `GF(2^16)`.
///
/// Caller guarantees `s ∉ {0, 1}` and equal lengths; returns `false`
/// when no SIMD tier is available so the caller falls back to its table
/// loops (the "portable" tier).
pub(crate) fn gf2_16_mul_row_add(dst: &mut [Gf2_16], src: &[Gf2_16], s: Gf2_16) -> bool {
    debug_assert_eq!(dst.len(), src.len());
    debug_assert!(s.0 >= 2);
    match tier_enum() {
        #[cfg(target_arch = "x86_64")]
        Tier::Avx2 => {
            // SAFETY: this tier is only selected after runtime detection
            // proved AVX2 is available on this CPU.
            unsafe { gf2_16_mul_row_add_avx2(dst, src, s) };
            true
        }
        #[cfg(target_arch = "x86_64")]
        Tier::Ssse3 => {
            // SAFETY: this tier is only selected after runtime detection
            // proved SSSE3 is available on this CPU.
            unsafe { gf2_16_mul_row_add_ssse3(dst, src, s) };
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::scalar_mul_row_add;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn tier_is_a_known_name_and_stable() {
        let t = tier();
        assert!(["avx2", "ssse3", "portable"].contains(&t), "{t}");
        assert_eq!(tier(), t, "tier is decided once");
    }

    #[test]
    fn cpu_features_is_nonempty_and_consistent_with_tier() {
        let f = cpu_features();
        assert!(!f.is_empty());
        match tier() {
            "avx2" => assert!(f.contains("avx2"), "{f}"),
            "ssse3" => assert!(f.contains("ssse3"), "{f}"),
            _ => {}
        }
    }

    #[test]
    fn gf256_simd_matches_scalar_at_awkward_lengths() {
        let mut rng = StdRng::seed_from_u64(0x51D);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 1000] {
            let src: Vec<u8> = (0..len).map(|_| rng.gen::<u64>() as u8).collect();
            let base: Vec<u8> = (0..len).map(|_| rng.gen::<u64>() as u8).collect();
            for s in [2u8, 0x1D, 0x80, 0xFF] {
                let mut fast = base.clone();
                gf256_mul_row_add(&mut fast, &src, s);
                let mut slow: Vec<crate::Gf256> = base.iter().map(|&x| crate::Gf256(x)).collect();
                let srcf: Vec<crate::Gf256> = src.iter().map(|&x| crate::Gf256(x)).collect();
                scalar_mul_row_add(&mut slow, &srcf, crate::Gf256(s));
                assert_eq!(
                    fast,
                    slow.iter().map(|x| x.0).collect::<Vec<_>>(),
                    "len={len} s={s:#x}"
                );
                let mut fast = base.clone();
                gf256_scale_row(&mut fast, s);
                let expect: Vec<u8> = base
                    .iter()
                    .map(|&x| crate::Gf256(s).mul(crate::Gf256(x)).0)
                    .collect();
                assert_eq!(fast, expect, "scale len={len} s={s:#x}");
            }
        }
    }

    #[test]
    fn gf2_16_simd_matches_scalar_at_awkward_lengths() {
        let mut rng = StdRng::seed_from_u64(0x51E);
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 47, 64, 65, 500] {
            let src: Vec<Gf2_16> = (0..len).map(|_| Gf2_16::random(&mut rng)).collect();
            let base: Vec<Gf2_16> = (0..len).map(|_| Gf2_16::random(&mut rng)).collect();
            for s in [2u16, 0x100, 0xABCD, 0xFFFF] {
                let s = Gf2_16(s);
                let mut fast = base.clone();
                if !gf2_16_mul_row_add(&mut fast, &src, s) {
                    continue; // portable tier: nothing to compare
                }
                let mut slow = base.clone();
                scalar_mul_row_add(&mut slow, &src, s);
                assert_eq!(fast, slow, "len={len} s={s:?}");
            }
        }
    }
}
