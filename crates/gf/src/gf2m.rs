//! Generic `GF(2^m)` for `1 ≤ m ≤ 64`, plus a fast table-based `GF(2^16)`.
//!
//! The equality-check soundness bound of Theorem 1 improves exponentially in
//! the symbol size `L/ρ`; experiments sweep that size, so the field degree
//! must be a runtime-choosable *type* parameter. [`Gf2m<M>`] provides every
//! degree up to 64 from a built-in table of low-weight irreducible
//! polynomials (validated by Rabin's test in this crate's test suite).

use std::fmt;
use std::sync::OnceLock;

use crate::field::Field;
use crate::poly2;

/// Low-order tap masks of irreducible polynomials `x^m + taps` for
/// `m = 1..=64` (index `m-1`), following the usual low-weight tables
/// (trinomials where they exist, else pentanomials).
///
/// Entry `m` encodes the polynomial `(1 << m) | TAPS[m-1]`.
pub const TAPS: [u64; 64] = [
    0x1,        // m=1:  x + 1
    0x3,        // m=2:  x^2+x+1
    0x3,        // m=3:  x^3+x+1
    0x3,        // m=4:  x^4+x+1
    0x5,        // m=5:  x^5+x^2+1
    0x3,        // m=6:  x^6+x+1
    0x3,        // m=7:  x^7+x+1
    0x1B,       // m=8:  x^8+x^4+x^3+x+1
    0x3,        // m=9:  x^9+x+1
    0x9,        // m=10: x^10+x^3+1
    0x5,        // m=11: x^11+x^2+1
    0x9,        // m=12: x^12+x^3+1
    0x1B,       // m=13: x^13+x^4+x^3+x+1
    0x21,       // m=14: x^14+x^5+1
    0x3,        // m=15: x^15+x+1
    0x2B,       // m=16: x^16+x^5+x^3+x+1
    0x9,        // m=17: x^17+x^3+1
    0x9,        // m=18: x^18+x^3+1
    0x27,       // m=19: x^19+x^5+x^2+x+1
    0x9,        // m=20: x^20+x^3+1
    0x5,        // m=21: x^21+x^2+1
    0x3,        // m=22: x^22+x+1
    0x21,       // m=23: x^23+x^5+1
    0x1B,       // m=24: x^24+x^4+x^3+x+1
    0x9,        // m=25: x^25+x^3+1
    0x1B,       // m=26: x^26+x^4+x^3+x+1
    0x27,       // m=27: x^27+x^5+x^2+x+1
    0x3,        // m=28: x^28+x+1
    0x5,        // m=29: x^29+x^2+1
    0x3,        // m=30: x^30+x+1
    0x9,        // m=31: x^31+x^3+1
    0x8D,       // m=32: x^32+x^7+x^3+x^2+1
    0x401,      // m=33: x^33+x^10+1
    0x81,       // m=34: x^34+x^7+1
    0x5,        // m=35: x^35+x^2+1
    0x201,      // m=36: x^36+x^9+1
    0x53,       // m=37: x^37+x^6+x^4+x+1
    0x63,       // m=38: x^38+x^6+x^5+x+1
    0x11,       // m=39: x^39+x^4+1
    0x39,       // m=40: x^40+x^5+x^4+x^3+1
    0x9,        // m=41: x^41+x^3+1
    0x81,       // m=42: x^42+x^7+1
    0x59,       // m=43: x^43+x^6+x^4+x^3+1
    0x21,       // m=44: x^44+x^5+1
    0x1B,       // m=45: x^45+x^4+x^3+x+1
    0x3,        // m=46: x^46+x+1
    0x21,       // m=47: x^47+x^5+1
    0x2D,       // m=48: x^48+x^5+x^3+x^2+1
    0x201,      // m=49: x^49+x^9+1
    0x1D,       // m=50: x^50+x^4+x^3+x^2+1
    0x4B,       // m=51: x^51+x^6+x^3+x+1
    0x9,        // m=52: x^52+x^3+1
    0x47,       // m=53: x^53+x^6+x^2+x+1
    0x201,      // m=54: x^54+x^9+1
    0x81,       // m=55: x^55+x^7+1
    0x95,       // m=56: x^56+x^7+x^4+x^2+1
    0x11,       // m=57: x^57+x^4+1
    0x80001,    // m=58: x^58+x^19+1
    0x95,       // m=59: x^59+x^7+x^4+x^2+1
    0x3,        // m=60: x^60+x+1
    0x27,       // m=61: x^61+x^5+x^2+x+1
    0x20000001, // m=62: x^62+x^29+1
    0x3,        // m=63: x^63+x+1
    0x1B,       // m=64: x^64+x^4+x^3+x+1
];

/// The full modulus polynomial for `GF(2^m)` as a bit-packed `u128`.
///
/// # Panics
///
/// Panics if `m` is 0 or greater than 64.
pub const fn modulus(m: u32) -> u128 {
    assert!(m >= 1 && m <= 64, "GF(2^m) supported only for 1 <= m <= 64");
    (1u128 << m) | TAPS[(m - 1) as usize] as u128
}

/// An element of `GF(2^M)` for any `1 ≤ M ≤ 64`.
///
/// Arithmetic uses software carry-less multiplication with reduction modulo
/// the built-in irreducible polynomial for degree `M`; inversion uses
/// Fermat's little theorem (`x^(2^M − 2)`).
///
/// # Example
///
/// ```
/// use nab_gf::{Field, Gf2m};
/// type F = Gf2m<20>;
/// let a = F::from_u64(0xABCDE);
/// assert_eq!(a.mul(a.inv().unwrap()), F::ONE);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Gf2m<const M: u32>(pub u64);

impl<const M: u32> Gf2m<M> {
    /// Bit mask selecting the `M` low bits.
    pub const MASK: u64 = if M == 64 { u64::MAX } else { (1u64 << M) - 1 };

    /// The modulus polynomial of this field.
    pub const MODULUS: u128 = modulus(M);

    /// Number of elements in the field, saturating at `u64::MAX` for `M=64`.
    pub const fn order_minus_one() -> u64 {
        if M == 64 {
            u64::MAX
        } else {
            (1u64 << M) - 1
        }
    }
}

impl<const M: u32> fmt::Debug for Gf2m<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2m<{M}>({:#x})", self.0)
    }
}

impl<const M: u32> fmt::Display for Gf2m<M> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

impl<const M: u32> Field for Gf2m<M> {
    const ZERO: Self = Gf2m(0);
    const ONE: Self = Gf2m(1);
    const BITS: u32 = M;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf2m(self.0 ^ rhs.0)
    }

    fn mul(self, rhs: Self) -> Self {
        let p = poly2::mul_mod(self.0 as u128, rhs.0 as u128, Self::MODULUS);
        Gf2m(p as u64)
    }

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            return None;
        }
        // x^(2^M - 2) = x^(-1). 2^M - 2 = order_minus_one() - 1.
        Some(self.pow(Self::order_minus_one() - 1))
    }

    #[inline]
    fn from_u64(x: u64) -> Self {
        Gf2m(x & Self::MASK)
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self.0
    }
}

// ---------------------------------------------------------------------------
// Fast table-based GF(2^16)
// ---------------------------------------------------------------------------

/// The primitive polynomial `x^16 + x^12 + x^3 + x + 1` (`0x1100B`), for
/// which `x` is a multiplicative generator.
pub const GF2_16_MODULUS: u32 = 0x1100B;

struct Tables16 {
    exp: Vec<u16>,
    log: Vec<u32>,
}

#[allow(clippy::needless_range_loop)] // the index is the discrete log itself
fn tables16() -> &'static Tables16 {
    static TABLES: OnceLock<Tables16> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = vec![0u16; 131072];
        let mut log = vec![0u32; 65536];
        let mut x: u32 = 1;
        for i in 0..65535 {
            exp[i] = x as u16;
            log[x as usize] = i as u32;
            x <<= 1;
            if x & 0x10000 != 0 {
                x ^= GF2_16_MODULUS;
            }
        }
        for i in 65535..131072 {
            exp[i] = exp[i - 65535];
        }
        Tables16 { exp, log }
    })
}

/// An element of `GF(2^16)` with log/antilog-table arithmetic.
///
/// This is the workhorse field for equality-check simulations: 16-bit
/// symbols give a per-check soundness error around `2^-16` scaled by the
/// union-bound factor of Theorem 1, while staying fast enough to run
/// millions of trials.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Gf2_16(pub u16);

impl fmt::Debug for Gf2_16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf2_16({:#06x})", self.0)
    }
}

impl fmt::Display for Gf2_16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:04x}", self.0)
    }
}

impl Field for Gf2_16 {
    const ZERO: Self = Gf2_16(0);
    const ONE: Self = Gf2_16(1);
    const BITS: u32 = 16;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf2_16(self.0 ^ rhs.0)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf2_16(0);
        }
        let t = tables16();
        let idx = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf2_16(t.exp[idx])
    }

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            return None;
        }
        let t = tables16();
        let l = t.log[self.0 as usize] as usize;
        Some(Gf2_16(t.exp[65535 - l]))
    }

    #[inline]
    fn from_u64(x: u64) -> Self {
        Gf2_16(x as u16)
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self.0 as u64
    }
}

/// Log-domain fused row kernel for `GF(2^16)`: `dst[i] ^= s · src[i]`
/// with the sender's discrete log hoisted out of the loop. Used by the
/// [`crate::kernel::FastOps`] impl for rows too short to amortize
/// building per-scalar split tables.
///
/// Caller guarantees `s != 0` and equal slice lengths.
pub(crate) fn mul_row_add_log16(dst: &mut [Gf2_16], src: &[Gf2_16], s: Gf2_16) {
    debug_assert!(s.0 != 0);
    let t = tables16();
    let ls = t.log[s.0 as usize] as usize;
    for (d, &x) in dst.iter_mut().zip(src) {
        if x.0 != 0 {
            d.0 ^= t.exp[ls + t.log[x.0 as usize] as usize];
        }
    }
}

/// Log-domain in-place row scaling for `GF(2^16)` (caller guarantees
/// `s != 0`).
pub(crate) fn scale_row_log16(row: &mut [Gf2_16], s: Gf2_16) {
    debug_assert!(s.0 != 0);
    let t = tables16();
    let ls = t.log[s.0 as usize] as usize;
    for x in row.iter_mut() {
        if x.0 != 0 {
            x.0 = t.exp[ls + t.log[x.0 as usize] as usize];
        }
    }
}

/// `GF(2^32)` via the generic carry-less implementation.
pub type Gf2_32 = Gf2m<32>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_table_entry_is_irreducible() {
        for m in 1..=64u32 {
            assert!(
                poly2::is_irreducible(modulus(m)),
                "modulus for m={m} is reducible: {:#x}",
                modulus(m)
            );
        }
    }

    #[test]
    fn gf2_16_modulus_is_irreducible() {
        assert!(poly2::is_irreducible(GF2_16_MODULUS as u128));
    }

    #[test]
    fn gf2_16_table_matches_generic_field() {
        // Both implementations use different moduli, so compare the *algebra*
        // instead: commutativity with a fixed isomorphic check is overkill;
        // instead verify the table field against direct polynomial math on
        // its own modulus.
        for (a, b) in [(3u64, 7u64), (0xFFFF, 0x8001), (12345, 54321), (1, 0xFFFF)] {
            let fast = Gf2_16::from_u64(a).mul(Gf2_16::from_u64(b)).to_u64();
            let slow = poly2::mul_mod(a as u128, b as u128, GF2_16_MODULUS as u128) as u64;
            assert_eq!(fast, slow);
        }
    }

    #[test]
    fn gf2_16_inverses_spot_check() {
        for a in [1u64, 2, 0x8000, 0xFFFF, 31337] {
            let x = Gf2_16::from_u64(a);
            assert_eq!(x.mul(x.inv().unwrap()), Gf2_16::ONE);
        }
        assert_eq!(Gf2_16::ZERO.inv(), None);
    }

    #[test]
    fn generic_field_inverses_at_various_degrees() {
        fn check<const M: u32>() {
            for raw in [1u64, 2, 3, 0xDEADBEEF_u64, u64::MAX] {
                let x = Gf2m::<M>::from_u64(raw);
                if x.is_zero() {
                    continue;
                }
                let ix = x.inv().expect("non-zero invertible");
                assert_eq!(x.mul(ix), Gf2m::<M>::ONE, "m={M} raw={raw}");
            }
        }
        check::<1>();
        check::<2>();
        check::<5>();
        check::<8>();
        check::<13>();
        check::<16>();
        check::<24>();
        check::<32>();
        check::<48>();
        check::<63>();
        check::<64>();
    }

    #[test]
    fn generic_mul_is_commutative_and_associative() {
        type F = Gf2m<24>;
        let a = F::from_u64(0xABCDEF);
        let b = F::from_u64(0x123456);
        let c = F::from_u64(0xF0F0F0);
        assert_eq!(a.mul(b), b.mul(a));
        assert_eq!(a.mul(b).mul(c), a.mul(b.mul(c)));
        assert_eq!(a.mul(b.add(c)), a.mul(b).add(a.mul(c)));
    }

    #[test]
    fn from_u64_masks_to_field_width() {
        let x = Gf2m::<4>::from_u64(0xFF);
        assert_eq!(x.to_u64(), 0xF);
    }

    #[test]
    fn gf2m_8_matches_its_own_modulus_reference() {
        // Gf2m<8> uses 0x11B; verify against poly arithmetic.
        type F = Gf2m<8>;
        for a in 0..=255u64 {
            let b = (a * 7 + 13) & 0xFF;
            let fast = F::from_u64(a).mul(F::from_u64(b)).to_u64();
            let slow = poly2::mul_mod(a as u128, b as u128, modulus(8)) as u64;
            assert_eq!(fast, slow);
        }
    }
}
