//! Dense matrices over an arbitrary [`Field`].
//!
//! The equality-check machinery of NAB is naturally phrased in matrix
//! language: per-edge coding matrices `C_e` (`ρ × z_e`), their block
//! expansions `B_e`, the concatenated check matrix `C_H`, and the square
//! spanning-tree submatrix `M_H` whose invertibility Theorem 1 establishes.

use std::fmt;
use std::ops::{Index, IndexMut};

use rand::Rng;

use crate::field::Field;

/// A dense row-major matrix over a finite field `F`.
///
/// # Example
///
/// ```
/// use nab_gf::{Matrix, Gf256, Field};
/// let i = Matrix::<Gf256>::identity(3);
/// let a = Matrix::from_fn(3, 3, |r, c| Gf256::from_u64((r * 3 + c) as u64));
/// assert_eq!(i.mul(&a), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Matrix<F> {
    rows: usize,
    cols: usize,
    data: Vec<F>,
}

impl<F: Field> Matrix<F> {
    /// The all-zero `rows × cols` matrix.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn zero(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize"); // nab-lint: allow(NAB003): dimension overflow is unrecoverable misuse; documented panic
        Matrix {
            rows,
            cols,
            data: vec![F::ZERO; len],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m[(i, i)] = F::ONE;
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` overflows `usize`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> F) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("matrix dimensions overflow usize"); // nab-lint: allow(NAB003): dimension overflow is unrecoverable misuse; documented panic
        let mut data = Vec::with_capacity(len);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Matrix { rows, cols, data }
    }

    /// Builds a matrix from a row-major nested vector.
    ///
    /// # Panics
    ///
    /// Panics if the rows have unequal lengths.
    pub fn from_rows(rows_in: Vec<Vec<F>>) -> Self {
        let rows = rows_in.len();
        let cols = rows_in.first().map_or(0, Vec::len);
        let mut data = Vec::with_capacity(rows * cols);
        for row in &rows_in {
            assert_eq!(row.len(), cols, "ragged rows in Matrix::from_rows");
            data.extend_from_slice(row);
        }
        Matrix { rows, cols, data }
    }

    /// A matrix with independently uniform random entries.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        Self::from_fn(rows, cols, |_, _| F::random(rng))
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Whether every entry is zero.
    pub fn is_zero(&self) -> bool {
        self.data.iter().all(|x| x.is_zero())
    }

    /// Borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row(&self, r: usize) -> &[F] {
        assert!(r < self.rows, "row index out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    pub fn row_mut(&mut self, r: usize) -> &mut [F] {
        assert!(r < self.rows, "row index out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Extracts column `c` as an owned vector.
    ///
    /// # Panics
    ///
    /// Panics if `c` is out of bounds.
    pub fn col(&self, c: usize) -> Vec<F> {
        assert!(c < self.cols, "column index out of bounds");
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Matrix addition.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn add(&self, rhs: &Self) -> Self {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add dim mismatch"
        );
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&rhs.data)
                .map(|(&a, &b)| a.add(b))
                .collect(),
        }
    }

    /// Matrix multiplication `self * rhs`.
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols() == rhs.rows()`.
    pub fn mul(&self, rhs: &Self) -> Self {
        assert_eq!(
            self.cols, rhs.rows,
            "mul dim mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zero(self.rows, rhs.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a.is_zero() {
                    continue;
                }
                for c in 0..rhs.cols {
                    let prod = a.mul(rhs[(k, c)]);
                    out[(r, c)] = out[(r, c)].add(prod);
                }
            }
        }
        out
    }

    /// Row-vector × matrix product: `v * self`, returning a vector of length
    /// `self.cols()`.
    ///
    /// This is the shape used by Algorithm 1 (`Y_e = X_i · C_e`).
    ///
    /// # Panics
    ///
    /// Panics unless `v.len() == self.rows()`.
    pub fn left_mul_vec(&self, v: &[F]) -> Vec<F> {
        assert_eq!(v.len(), self.rows, "left_mul_vec dim mismatch");
        let mut out = vec![F::ZERO; self.cols];
        for (r, &x) in v.iter().enumerate() {
            if x.is_zero() {
                continue;
            }
            for c in 0..self.cols {
                out[c] = out[c].add(x.mul(self[(r, c)]));
            }
        }
        out
    }

    /// Scalar multiplication.
    pub fn scale(&self, s: F) -> Self {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| x.mul(s)).collect(),
        }
    }

    /// The transpose.
    pub fn transpose(&self) -> Self {
        Self::from_fn(self.cols, self.rows, |r, c| self[(c, r)])
    }

    /// Horizontal concatenation `[self | rhs]`.
    ///
    /// # Panics
    ///
    /// Panics unless row counts match.
    pub fn hstack(&self, rhs: &Self) -> Self {
        assert_eq!(self.rows, rhs.rows, "hstack row mismatch");
        Self::from_fn(self.rows, self.cols + rhs.cols, |r, c| {
            if c < self.cols {
                self[(r, c)]
            } else {
                rhs[(r, c - self.cols)]
            }
        })
    }

    /// Vertical concatenation `[self; rhs]`.
    ///
    /// # Panics
    ///
    /// Panics unless column counts match.
    pub fn vstack(&self, rhs: &Self) -> Self {
        assert_eq!(self.cols, rhs.cols, "vstack col mismatch");
        Self::from_fn(self.rows + rhs.rows, self.cols, |r, c| {
            if r < self.rows {
                self[(r, c)]
            } else {
                rhs[(r - self.rows, c)]
            }
        })
    }

    /// The submatrix selecting the given rows and columns (in order).
    ///
    /// # Panics
    ///
    /// Panics if any index is out of bounds.
    pub fn submatrix(&self, rows: &[usize], cols: &[usize]) -> Self {
        Self::from_fn(rows.len(), cols.len(), |r, c| self[(rows[r], cols[c])])
    }

    /// The submatrix selecting the given columns (all rows).
    pub fn select_cols(&self, cols: &[usize]) -> Self {
        let all_rows: Vec<usize> = (0..self.rows).collect();
        self.submatrix(&all_rows, cols)
    }

    /// Swaps two rows in place (no-op when `a == b`).
    ///
    /// # Panics
    ///
    /// Panics if either index is out of bounds.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(
            a < self.rows && b < self.rows,
            "swap_rows({a}, {b}) out of bounds ({} rows)",
            self.rows
        );
        if a == b {
            return;
        }
        let w = self.cols;
        let (ra, rb) = split_rows_mut(&mut self.data, w, a, b);
        ra.swap_with_slice(rb);
    }

    /// Disjoint mutable borrows of rows `a` and `b` — the split-borrow the
    /// row-kernel elimination in [`crate::kernel`] needs ("add a multiple
    /// of row `b` into row `a`").
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either index is out of bounds.
    pub fn two_rows_mut(&mut self, a: usize, b: usize) -> (&mut [F], &mut [F]) {
        assert!(
            a < self.rows && b < self.rows,
            "two_rows_mut({a}, {b}) out of bounds ({} rows)",
            self.rows
        );
        split_rows_mut(&mut self.data, self.cols, a, b)
    }
}

/// Splits two distinct rows of width `w` out of a flat row-major slab —
/// the split-borrow both [`Matrix`] and [`crate::bytes::ByteMatrix`]
/// need for row-kernel elimination.
///
/// # Panics
///
/// Panics if `a == b`.
pub(crate) fn split_rows_mut<T>(
    data: &mut [T],
    w: usize,
    a: usize,
    b: usize,
) -> (&mut [T], &mut [T]) {
    assert_ne!(a, b, "split_rows_mut requires distinct row indices");
    if a < b {
        let (head, tail) = data.split_at_mut(b * w);
        (&mut head[a * w..(a + 1) * w], &mut tail[..w])
    } else {
        let (head, tail) = data.split_at_mut(a * w);
        let rb = &mut head[b * w..(b + 1) * w];
        (&mut tail[..w], rb)
    }
}

impl<F: Field> Index<(usize, usize)> for Matrix<F> {
    type Output = F;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &F {
        debug_assert!(
            r < self.rows && c < self.cols,
            "matrix index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[r * self.cols + c]
    }
}

impl<F: Field> IndexMut<(usize, usize)> for Matrix<F> {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut F {
        debug_assert!(
            r < self.rows && c < self.cols,
            "matrix index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[r * self.cols + c]
    }
}

impl<F: Field> fmt::Debug for Matrix<F> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows {
            write!(f, "  ")?;
            for c in 0..self.cols {
                write!(f, "{:x} ", self[(r, c)].to_u64())?;
            }
            writeln!(f)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf256::Gf256;

    type M = Matrix<Gf256>;

    fn m(rows: &[&[u64]]) -> M {
        Matrix::from_rows(
            rows.iter()
                .map(|r| r.iter().map(|&x| Gf256::from_u64(x)).collect())
                .collect(),
        )
    }

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = m(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]);
        let i = M::identity(3);
        assert_eq!(i.mul(&a), a);
        assert_eq!(a.mul(&i), a);
    }

    #[test]
    fn transpose_involution() {
        let a = m(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose().rows(), 3);
        assert_eq!(a.transpose().cols(), 2);
    }

    #[test]
    fn left_mul_vec_matches_full_mul() {
        let a = m(&[&[1, 2], &[3, 4], &[5, 6]]);
        let v = [Gf256::from_u64(9), Gf256::from_u64(8), Gf256::from_u64(7)];
        let as_row = Matrix::from_rows(vec![v.to_vec()]);
        assert_eq!(a.left_mul_vec(&v), as_row.mul(&a).row(0).to_vec());
    }

    #[test]
    fn hstack_vstack_shapes_and_content() {
        let a = m(&[&[1, 2]]);
        let b = m(&[&[3, 4]]);
        let h = a.hstack(&b);
        assert_eq!(h, m(&[&[1, 2, 3, 4]]));
        let v = a.vstack(&b);
        assert_eq!(v, m(&[&[1, 2], &[3, 4]]));
    }

    #[test]
    fn submatrix_picks_requested_entries() {
        let a = m(&[&[1, 2, 3], &[4, 5, 6], &[7, 8, 9]]);
        let s = a.submatrix(&[0, 2], &[1, 2]);
        assert_eq!(s, m(&[&[2, 3], &[8, 9]]));
        let c = a.select_cols(&[0]);
        assert_eq!(c, m(&[&[1], &[4], &[7]]));
    }

    #[test]
    fn addition_is_xor_in_char_2() {
        let a = m(&[&[1, 2]]);
        assert!(a.add(&a).is_zero());
    }

    #[test]
    fn mul_associates() {
        let a = m(&[&[1, 2], &[3, 4]]);
        let b = m(&[&[5, 6], &[7, 8]]);
        let c = m(&[&[9, 10], &[11, 12]]);
        assert_eq!(a.mul(&b).mul(&c), a.mul(&b.mul(&c)));
    }

    #[test]
    #[should_panic(expected = "mul dim mismatch")]
    fn mul_rejects_bad_shapes() {
        let a = m(&[&[1, 2, 3]]);
        let b = m(&[&[1, 2]]);
        let _ = a.mul(&b);
    }

    #[test]
    fn swap_and_two_rows_mut() {
        let mut a = m(&[&[1, 2], &[3, 4], &[5, 6]]);
        a.swap_rows(0, 2);
        assert_eq!(a, m(&[&[5, 6], &[3, 4], &[1, 2]]));
        a.swap_rows(1, 1); // no-op
        let (top, bottom) = a.two_rows_mut(0, 2);
        assert_eq!(top.len(), 2);
        assert_eq!(bottom[0].to_u64(), 1);
        // Order of the requested indices is preserved.
        let (r2, r0) = a.two_rows_mut(2, 0);
        assert_eq!(r2[0].to_u64(), 1);
        assert_eq!(r0[0].to_u64(), 5);
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "out of bounds for 2x3 matrix")]
    fn index_out_of_bounds_panics_with_shape() {
        let a = m(&[&[1, 2, 3], &[4, 5, 6]]);
        let _ = a[(2, 0)];
    }

    #[test]
    #[should_panic(expected = "two_rows_mut(0, 3) out of bounds")]
    fn two_rows_mut_rejects_out_of_bounds() {
        let mut a = m(&[&[1, 2], &[3, 4]]);
        let _ = a.two_rows_mut(0, 3);
    }

    #[test]
    fn row_and_col_accessors() {
        let a = m(&[&[1, 2, 3], &[4, 5, 6]]);
        assert_eq!(
            a.row(1).iter().map(|x| x.to_u64()).collect::<Vec<_>>(),
            vec![4, 5, 6]
        );
        assert_eq!(
            a.col(2).iter().map(|x| x.to_u64()).collect::<Vec<_>>(),
            vec![3, 6]
        );
    }
}
