//! Row-major `GF(2^16)` word-slab linear algebra — the 16-bit analogue of
//! [`crate::bytes::ByteMatrix`].
//!
//! The batched execution path packs the value-columns of many broadcast
//! instances/streams into one flat slab so per-edge encode/check becomes a
//! single blocked matrix multiply over long contiguous rows — the shape
//! the arch-SIMD row kernels ([`crate::simd`]) are built for. Rows are
//! contiguous `Gf2_16` (repr(transparent) over `u16`), so every row
//! operation is one [`FastOps::mul_row_add`] call and inherits whichever
//! kernel tier the process detected.
//!
//! Every operation is bit-identical to the generic
//! [`crate::matrix::Matrix`] path (pinned by `tests/differential.rs`).

use rand::Rng;

use crate::gf2m::Gf2_16;
use crate::kernel::FastOps;
use crate::matrix::Matrix;

/// Column-stripe width for [`WordMatrix::mat_mul`] (elements, i.e. 2 KiB
/// stripes): keeps destination and source stripes L1-resident for very
/// wide packed slabs.
const COL_BLOCK: usize = 1024;

/// A dense row-major `GF(2^16)` matrix stored as a flat word slab.
///
/// # Example
///
/// ```
/// use nab_gf::words::WordMatrix;
/// let i = WordMatrix::identity(3);
/// let a = WordMatrix::from_fn(3, 3, |r, c| (r * 3 + c) as u16);
/// assert_eq!(i.mat_mul(&a), a);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct WordMatrix {
    rows: usize,
    cols: usize,
    data: Vec<Gf2_16>,
}

impl WordMatrix {
    /// The all-zero `rows × cols` matrix.
    pub fn zero(rows: usize, cols: usize) -> Self {
        let len = rows
            .checked_mul(cols)
            .expect("WordMatrix dimensions overflow usize"); // nab-lint: allow(NAB003): dimension overflow is unrecoverable misuse; documented panic
        WordMatrix {
            rows,
            cols,
            data: vec![Gf2_16(0); len],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zero(n, n);
        for i in 0..n {
            m.data[i * n + i] = Gf2_16(1);
        }
        m
    }

    /// Builds a matrix by evaluating `f(row, col)` for every entry.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> u16) -> Self {
        let mut m = Self::zero(rows, cols);
        for r in 0..rows {
            for c in 0..cols {
                m.data[r * cols + c] = Gf2_16(f(r, c));
            }
        }
        m
    }

    /// A matrix with independently uniform random entries.
    pub fn random<R: Rng + ?Sized>(rows: usize, cols: usize, rng: &mut R) -> Self {
        Self::from_fn(rows, cols, |_, _| rng.gen::<u64>() as u16)
    }

    /// Converts from the generic element representation.
    pub fn from_matrix(m: &Matrix<Gf2_16>) -> Self {
        Self::from_fn(m.rows(), m.cols(), |r, c| m[(r, c)].0)
    }

    /// Converts back to the generic element representation.
    pub fn to_matrix(&self) -> Matrix<Gf2_16> {
        Matrix::from_fn(self.rows, self.cols, |r, c| self.data[r * self.cols + c])
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Entry accessor.
    ///
    /// # Panics
    ///
    /// Panics (with the offending indices) when out of bounds.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> Gf2_16 {
        assert!(
            r < self.rows && c < self.cols,
            "WordMatrix index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c]
    }

    /// Entry setter.
    ///
    /// # Panics
    ///
    /// Panics (with the offending indices) when out of bounds.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: Gf2_16) {
        assert!(
            r < self.rows && c < self.cols,
            "WordMatrix index ({r}, {c}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.data[r * self.cols + c] = v;
    }

    /// Borrow row `r` as an element slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row(&self, r: usize) -> &[Gf2_16] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r` as an element slice.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of bounds.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [Gf2_16] {
        assert!(
            r < self.rows,
            "row index {r} out of bounds ({} rows)",
            self.rows
        );
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Blocked matrix multiplication `self * rhs` on the `GF(2^16)` row
    /// kernel: i–k–j loop order, striped [`COL_BLOCK`] columns at a time.
    /// Bit-identical to [`Matrix::mul`].
    ///
    /// # Panics
    ///
    /// Panics unless `self.cols() == rhs.rows()`.
    pub fn mat_mul(&self, rhs: &WordMatrix) -> WordMatrix {
        assert_eq!(
            self.cols, rhs.rows,
            "mat_mul dim mismatch: {}x{} * {}x{}",
            self.rows, self.cols, rhs.rows, rhs.cols
        );
        let mut out = Self::zero(self.rows, rhs.cols);
        let w = rhs.cols;
        for j0 in (0..w).step_by(COL_BLOCK) {
            let j1 = (j0 + COL_BLOCK).min(w);
            for i in 0..self.rows {
                for k in 0..self.cols {
                    let s = self.data[i * self.cols + k];
                    if s.0 != 0 {
                        Gf2_16::mul_row_add(
                            &mut out.data[i * w + j0..i * w + j1],
                            &rhs.data[k * w + j0..k * w + j1],
                            s,
                        );
                    }
                }
            }
        }
        out
    }

    /// Row-vector × matrix product `v * self` (the Algorithm-1 encode
    /// shape), as whole-row fused multiply-adds.
    ///
    /// # Panics
    ///
    /// Panics unless `v.len() == self.rows()`.
    pub fn left_mul_vec(&self, v: &[Gf2_16]) -> Vec<Gf2_16> {
        assert_eq!(
            v.len(),
            self.rows,
            "left_mul_vec dim mismatch: vector of {} over {} rows",
            v.len(),
            self.rows
        );
        let mut out = vec![Gf2_16(0); self.cols];
        for (r, &x) in v.iter().enumerate() {
            if x.0 != 0 {
                Gf2_16::mul_row_add(&mut out, self.row(r), x);
            }
        }
        out
    }

    /// Borrow the whole slab (row-major, rows contiguous).
    #[inline]
    pub fn as_slice(&self) -> &[Gf2_16] {
        &self.data
    }

    /// Mutably borrow the whole slab (row-major, rows contiguous).
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [Gf2_16] {
        &mut self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::field::Field;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mat_mul_matches_scalar_matrix() {
        let mut rng = StdRng::seed_from_u64(7);
        for (r, k, c) in [(3, 4, 5), (1, 1, 1), (7, 2, 9), (4, 4, COL_BLOCK + 37)] {
            let a = WordMatrix::random(r, k, &mut rng);
            let b = WordMatrix::random(k, c, &mut rng);
            let fast = a.mat_mul(&b);
            let slow = a.to_matrix().mul(&b.to_matrix());
            assert_eq!(fast.to_matrix(), slow);
        }
    }

    #[test]
    fn left_mul_vec_matches_scalar() {
        let mut rng = StdRng::seed_from_u64(9);
        let a = WordMatrix::random(5, 40, &mut rng);
        let v: Vec<Gf2_16> = (0..5).map(|_| Gf2_16::random(&mut rng)).collect();
        assert_eq!(a.left_mul_vec(&v), a.to_matrix().left_mul_vec(&v));
    }

    #[test]
    fn identity_and_accessors() {
        let i = WordMatrix::identity(4);
        assert_eq!(i.get(2, 2), Gf2_16(1));
        assert_eq!(i.get(2, 3), Gf2_16(0));
        let mut m = WordMatrix::zero(2, 3);
        m.set(1, 2, Gf2_16(0xABCD));
        assert_eq!(m.row(1), &[Gf2_16(0), Gf2_16(0), Gf2_16(0xABCD)]);
        assert_eq!(m.as_slice().len(), 6);
    }

    #[test]
    #[should_panic(expected = "mat_mul dim mismatch")]
    fn mat_mul_rejects_bad_shapes() {
        let a = WordMatrix::zero(2, 3);
        let b = WordMatrix::zero(2, 3);
        let _ = a.mat_mul(&b);
    }
}
