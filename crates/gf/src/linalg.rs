//! Gaussian elimination over finite fields: rank, inversion, solving, and
//! kernel computation.
//!
//! Theorem 1 of the paper reduces equality-check soundness to the
//! invertibility of the spanning-tree submatrix `M_H`; [`rank`] and
//! [`invert`] are the executable versions of that argument.

use crate::field::Field;
use crate::matrix::Matrix;

/// Result of reducing a matrix to row-echelon form.
#[derive(Debug, Clone)]
pub struct Echelon<F: Field> {
    /// The reduced matrix (fully reduced row-echelon form).
    pub matrix: Matrix<F>,
    /// Column index of the pivot in each pivot row, in order.
    pub pivots: Vec<usize>,
}

impl<F: Field> Echelon<F> {
    /// The rank of the original matrix.
    pub fn rank(&self) -> usize {
        self.pivots.len()
    }
}

/// Reduces `a` to *reduced* row-echelon form.
pub fn echelon<F: Field>(a: &Matrix<F>) -> Echelon<F> {
    let mut m = a.clone();
    let (rows, cols) = (m.rows(), m.cols());
    let mut pivots = Vec::new();
    let mut pr = 0; // next pivot row

    for pc in 0..cols {
        // Find a row at or below pr with non-zero entry in column pc.
        let Some(sel) = (pr..rows).find(|&r| !m[(r, pc)].is_zero()) else {
            continue;
        };
        // Swap into place.
        if sel != pr {
            for c in 0..cols {
                let tmp = m[(sel, c)];
                m[(sel, c)] = m[(pr, c)];
                m[(pr, c)] = tmp;
            }
        }
        // Normalize pivot row.
        let inv = m[(pr, pc)].inv().expect("pivot is non-zero"); // nab-lint: allow(NAB003): pivot was selected non-zero by the search above
        for c in 0..cols {
            m[(pr, c)] = m[(pr, c)].mul(inv);
        }
        // Eliminate everywhere else.
        for r in 0..rows {
            if r != pr && !m[(r, pc)].is_zero() {
                let factor = m[(r, pc)];
                for c in 0..cols {
                    let sub = factor.mul(m[(pr, c)]);
                    m[(r, c)] = m[(r, c)].sub(sub);
                }
            }
        }
        pivots.push(pc);
        pr += 1;
        if pr == rows {
            break;
        }
    }

    Echelon { matrix: m, pivots }
}

/// The rank of `a`.
pub fn rank<F: Field>(a: &Matrix<F>) -> usize {
    echelon(a).rank()
}

/// Whether a square matrix is invertible (full rank).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn is_invertible<F: Field>(a: &Matrix<F>) -> bool {
    assert_eq!(a.rows(), a.cols(), "invertibility requires a square matrix");
    rank(a) == a.rows()
}

/// Inverts a square matrix, returning `None` if it is singular.
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn invert<F: Field>(a: &Matrix<F>) -> Option<Matrix<F>> {
    assert_eq!(a.rows(), a.cols(), "inversion requires a square matrix");
    let n = a.rows();
    let aug = a.hstack(&Matrix::identity(n));
    let e = echelon(&aug);
    // Invertible iff the left block reduced to the identity, i.e. the first
    // n pivots are exactly columns 0..n.
    if e.pivots.len() < n || e.pivots[..n] != (0..n).collect::<Vec<_>>()[..] {
        return None;
    }
    let right: Vec<usize> = (n..2 * n).collect();
    Some(e.matrix.select_cols(&right))
}

/// Solves `a · x = b` for a single solution, returning `None` if
/// inconsistent. When the system is under-determined an arbitrary solution
/// (free variables set to zero) is returned.
///
/// # Panics
///
/// Panics unless `b.len() == a.rows()`.
pub fn solve<F: Field>(a: &Matrix<F>, b: &[F]) -> Option<Vec<F>> {
    assert_eq!(b.len(), a.rows(), "rhs length must equal row count");
    let bm = Matrix::from_fn(a.rows(), 1, |r, _| b[r]);
    let aug = a.hstack(&bm);
    let e = echelon(&aug);
    // Inconsistent iff a pivot landed in the augmented column.
    if e.pivots.last() == Some(&a.cols()) {
        return None;
    }
    let mut x = vec![F::ZERO; a.cols()];
    for (row, &pc) in e.pivots.iter().enumerate() {
        x[pc] = e.matrix[(row, a.cols())];
    }
    Some(x)
}

/// A basis for the right null space of `a` (vectors `v` with `a · v = 0`),
/// returned as the rows of a matrix with `a.cols()` columns.
pub fn kernel_basis<F: Field>(a: &Matrix<F>) -> Matrix<F> {
    let e = echelon(a);
    let n = a.cols();
    let pivot_set: std::collections::HashSet<usize> = e.pivots.iter().copied().collect();
    let free: Vec<usize> = (0..n).filter(|c| !pivot_set.contains(c)).collect();

    let mut rows = Vec::with_capacity(free.len());
    for &fc in &free {
        let mut v = vec![F::ZERO; n];
        v[fc] = F::ONE;
        // For each pivot row: pivot_col value = -(entry at free col) = entry
        // (char 2).
        for (row, &pc) in e.pivots.iter().enumerate() {
            v[pc] = e.matrix[(row, fc)];
        }
        rows.push(v);
    }
    if rows.is_empty() {
        Matrix::zero(0, n)
    } else {
        Matrix::from_rows(rows)
    }
}

/// Determinant via elimination (field version, sign-free in char 2).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn determinant<F: Field>(a: &Matrix<F>) -> F {
    assert_eq!(a.rows(), a.cols(), "determinant requires a square matrix");
    let n = a.rows();
    let mut m = a.clone();
    let mut det = F::ONE;
    for pc in 0..n {
        let Some(sel) = (pc..n).find(|&r| !m[(r, pc)].is_zero()) else {
            return F::ZERO;
        };
        if sel != pc {
            for c in 0..n {
                let tmp = m[(sel, c)];
                m[(sel, c)] = m[(pc, c)];
                m[(pc, c)] = tmp;
            }
            // In characteristic 2 a row swap does not change the determinant.
        }
        det = det.mul(m[(pc, pc)]);
        let inv = m[(pc, pc)].inv().expect("pivot non-zero"); // nab-lint: allow(NAB003): pivot was selected non-zero by the search above
        for r in (pc + 1)..n {
            if !m[(r, pc)].is_zero() {
                let factor = m[(r, pc)].mul(inv);
                for c in pc..n {
                    let sub = factor.mul(m[(pc, c)]);
                    m[(r, c)] = m[(r, c)].sub(sub);
                }
            }
        }
    }
    det
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf256::Gf256;
    use crate::gf2m::Gf2_16;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn m(rows: &[&[u64]]) -> Matrix<Gf256> {
        Matrix::from_rows(
            rows.iter()
                .map(|r| r.iter().map(|&x| Gf256::from_u64(x)).collect())
                .collect(),
        )
    }

    #[test]
    fn rank_of_identity_and_zero() {
        assert_eq!(rank(&Matrix::<Gf256>::identity(5)), 5);
        assert_eq!(rank(&Matrix::<Gf256>::zero(4, 6)), 0);
    }

    #[test]
    fn rank_detects_dependent_rows() {
        // Row 2 = row 0 + row 1 (XOR per entry in char 2).
        let a = m(&[&[1, 2, 3], &[4, 5, 6], &[1 ^ 4, 2 ^ 5, 3 ^ 6]]);
        assert_eq!(rank(&a), 2);
    }

    #[test]
    fn invert_roundtrip_random() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut found = 0;
        for _ in 0..20 {
            let a = Matrix::<Gf2_16>::random(6, 6, &mut rng);
            if let Some(inv) = invert(&a) {
                assert_eq!(a.mul(&inv), Matrix::identity(6));
                assert_eq!(inv.mul(&a), Matrix::identity(6));
                found += 1;
            }
        }
        // Random 6x6 over GF(2^16) is invertible w.p. ~ 1 - 2^-16.
        assert!(found >= 19, "too many singular random matrices: {found}");
    }

    #[test]
    fn invert_singular_returns_none() {
        let a = m(&[&[1, 2], &[1, 2]]);
        assert!(invert(&a).is_none());
        assert!(!is_invertible(&a));
    }

    #[test]
    fn solve_consistent_system() {
        let mut rng = StdRng::seed_from_u64(7);
        let a = Matrix::<Gf2_16>::random(5, 5, &mut rng);
        let x_true: Vec<Gf2_16> = (0..5).map(|i| Gf2_16::from_u64(i as u64 + 1)).collect();
        let b = a.transpose().left_mul_vec(&x_true); // a * x computed via transpose trick
        if let Some(x) = solve(&a, &b) {
            let ax = a.transpose().left_mul_vec(&x);
            assert_eq!(ax, b);
        }
    }

    #[test]
    fn solve_inconsistent_returns_none() {
        // [1 0; 1 0] x = [1, 0] is inconsistent (x0 = 1 and x0 = 0).
        let a = m(&[&[1, 0], &[1, 0]]);
        let b = [Gf256::ONE, Gf256::ZERO];
        assert!(solve(&a, &b).is_none());
    }

    #[test]
    fn kernel_vectors_annihilate() {
        let a = m(&[&[1, 2, 3], &[4, 5, 6]]);
        let k = kernel_basis(&a);
        assert_eq!(k.rows() + rank(&a), a.cols(), "rank-nullity");
        for r in 0..k.rows() {
            let v = k.row(r).to_vec();
            let av = a.transpose().left_mul_vec(&v);
            assert!(
                av.iter().all(|x| x.is_zero()),
                "kernel vector not annihilated"
            );
        }
    }

    #[test]
    fn determinant_zero_iff_singular() {
        let sing = m(&[&[1, 2], &[1, 2]]);
        assert!(determinant(&sing).is_zero());
        let nonsing = m(&[&[1, 0], &[0, 1]]);
        assert_eq!(determinant(&nonsing), Gf256::ONE);
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10 {
            let a = Matrix::<Gf256>::random(4, 4, &mut rng);
            assert_eq!(determinant(&a).is_zero(), !is_invertible(&a));
        }
    }

    #[test]
    fn echelon_pivots_are_increasing() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Matrix::<Gf256>::random(5, 8, &mut rng);
        let e = echelon(&a);
        for w in e.pivots.windows(2) {
            assert!(w[0] < w[1]);
        }
    }
}
