//! `GF(2^8)` with log/antilog tables — the fast small field.
//!
//! Uses the primitive polynomial `x^8 + x^4 + x^3 + x^2 + 1` (`0x11D`), the
//! conventional Reed–Solomon modulus, for which `x` (i.e. `2`) is a
//! multiplicative generator.

use std::fmt;
use std::sync::OnceLock;

use crate::field::Field;

/// The modulus `x^8 + x^4 + x^3 + x^2 + 1`.
pub const MODULUS: u16 = 0x11D;

struct Tables {
    exp: [u8; 512],
    log: [u16; 256],
}

#[allow(clippy::needless_range_loop)] // the index is the discrete log itself
fn tables() -> &'static Tables {
    static TABLES: OnceLock<Tables> = OnceLock::new();
    TABLES.get_or_init(|| {
        let mut exp = [0u8; 512];
        let mut log = [0u16; 256];
        let mut x: u16 = 1;
        for i in 0..255 {
            exp[i] = x as u8;
            log[x as usize] = i as u16;
            x <<= 1;
            if x & 0x100 != 0 {
                x ^= MODULUS;
            }
        }
        // Duplicate so exp[log a + log b] never needs a mod-255 reduction.
        for i in 255..512 {
            exp[i] = exp[i - 255];
        }
        Tables { exp, log }
    })
}

/// An element of `GF(2^8)`.
///
/// # Example
///
/// ```
/// use nab_gf::{Field, Gf256};
/// let a = Gf256::from_u64(7);
/// let b = a.inv().expect("non-zero");
/// assert_eq!(a.mul(b), Gf256::ONE);
/// ```
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[repr(transparent)]
pub struct Gf256(pub u8);

impl fmt::Debug for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Gf256({:#04x})", self.0)
    }
}

impl fmt::Display for Gf256 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:02x}", self.0)
    }
}

impl Field for Gf256 {
    const ZERO: Self = Gf256(0);
    const ONE: Self = Gf256(1);
    const BITS: u32 = 8;

    #[inline]
    fn add(self, rhs: Self) -> Self {
        Gf256(self.0 ^ rhs.0)
    }

    #[inline]
    fn mul(self, rhs: Self) -> Self {
        if self.0 == 0 || rhs.0 == 0 {
            return Gf256(0);
        }
        let t = tables();
        let idx = t.log[self.0 as usize] as usize + t.log[rhs.0 as usize] as usize;
        Gf256(t.exp[idx])
    }

    fn inv(self) -> Option<Self> {
        if self.0 == 0 {
            return None;
        }
        let t = tables();
        let l = t.log[self.0 as usize] as usize;
        Some(Gf256(t.exp[255 - l]))
    }

    #[inline]
    fn from_u64(x: u64) -> Self {
        Gf256(x as u8)
    }

    #[inline]
    fn to_u64(self) -> u64 {
        self.0 as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly2;

    #[test]
    fn modulus_is_irreducible() {
        assert!(poly2::is_irreducible(MODULUS as u128));
    }

    #[test]
    fn mul_matches_polynomial_reference() {
        // Cross-check the table multiply against carry-less poly arithmetic.
        for a in 0..=255u64 {
            for b in (0..=255u64).step_by(7) {
                let fast = Gf256::from_u64(a).mul(Gf256::from_u64(b)).to_u64();
                let slow = poly2::mul_mod(a as u128, b as u128, MODULUS as u128) as u64;
                assert_eq!(fast, slow, "mismatch at {a} * {b}");
            }
        }
    }

    #[test]
    fn every_nonzero_element_has_inverse() {
        for a in 1..=255u64 {
            let x = Gf256::from_u64(a);
            let ix = x.inv().expect("non-zero element must be invertible");
            assert_eq!(x.mul(ix), Gf256::ONE, "inverse failed for {a}");
        }
        assert_eq!(Gf256::ZERO.inv(), None);
    }

    #[test]
    fn generator_has_full_order() {
        // 2 is a generator for 0x11D: its powers enumerate all 255 non-zero
        // elements.
        let g = Gf256::from_u64(2);
        let mut seen = std::collections::HashSet::new();
        let mut x = Gf256::ONE;
        for _ in 0..255 {
            assert!(seen.insert(x.0));
            x = x.mul(g);
        }
        assert_eq!(x, Gf256::ONE);
        assert_eq!(seen.len(), 255);
    }

    #[test]
    fn pow_matches_repeated_multiplication() {
        let x = Gf256::from_u64(9);
        let mut acc = Gf256::ONE;
        for e in 0..20u64 {
            assert_eq!(x.pow(e), acc);
            acc = acc.mul(x);
        }
    }

    #[test]
    fn div_is_mul_by_inverse() {
        let a = Gf256::from_u64(100);
        let b = Gf256::from_u64(33);
        let q = a.div(b).unwrap();
        assert_eq!(q.mul(b), a);
        assert_eq!(a.div(Gf256::ZERO), None);
    }
}
