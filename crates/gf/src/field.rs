//! The [`Field`] trait: the minimal algebraic interface the rest of the
//! workspace needs from a finite field.

use std::fmt::Debug;
use std::hash::Hash;

use rand::Rng;

/// A finite field of characteristic 2.
///
/// Implementors are small `Copy` value types (a wrapped integer). All
/// arithmetic is total except [`Field::inv`], which returns `None` for zero.
///
/// # Laws
///
/// Implementations must satisfy the usual field axioms; these are checked by
/// property tests in this crate for every provided implementation:
///
/// - `(F, add)` is an abelian group with identity [`Field::ZERO`]; in
///   characteristic 2, every element is its own additive inverse.
/// - `(F \ {0}, mul)` is an abelian group with identity [`Field::ONE`].
/// - Multiplication distributes over addition.
pub trait Field:
    Copy + Clone + Eq + PartialEq + Debug + Hash + Default + Send + Sync + 'static
{
    /// The additive identity.
    const ZERO: Self;
    /// The multiplicative identity.
    const ONE: Self;
    /// Number of bits per element, i.e. the `m` in `GF(2^m)`.
    const BITS: u32;

    /// Field addition (XOR in characteristic 2).
    fn add(self, rhs: Self) -> Self;

    /// Field subtraction. In characteristic 2 this equals [`Field::add`].
    #[inline]
    fn sub(self, rhs: Self) -> Self {
        self.add(rhs)
    }

    /// Field multiplication.
    fn mul(self, rhs: Self) -> Self;

    /// Multiplicative inverse, or `None` if `self` is zero.
    fn inv(self) -> Option<Self>;

    /// Field division.
    ///
    /// Returns `None` when `rhs` is zero.
    #[inline]
    fn div(self, rhs: Self) -> Option<Self> {
        rhs.inv().map(|r| self.mul(r))
    }

    /// Exponentiation by squaring.
    fn pow(self, mut e: u64) -> Self {
        let mut base = self;
        let mut acc = Self::ONE;
        while e > 0 {
            if e & 1 == 1 {
                acc = acc.mul(base);
            }
            base = base.mul(base);
            e >>= 1;
        }
        acc
    }

    /// Whether this element is the additive identity.
    #[inline]
    fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Construct an element from the low `BITS` bits of `x`.
    fn from_u64(x: u64) -> Self;

    /// The canonical integer representation of this element.
    fn to_u64(self) -> u64;

    /// Sample a uniformly random field element.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        Self::from_u64(rng.gen::<u64>())
    }

    /// Sample a uniformly random *non-zero* field element.
    fn random_nonzero<R: Rng + ?Sized>(rng: &mut R) -> Self {
        loop {
            let x = Self::random(rng);
            if !x.is_zero() {
                return x;
            }
        }
    }
}

/// Convenience: sum of an iterator of field elements.
pub fn sum<F: Field, I: IntoIterator<Item = F>>(iter: I) -> F {
    iter.into_iter().fold(F::ZERO, F::add)
}

/// Convenience: dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot<F: Field>(a: &[F], b: &[F]) -> F {
    assert_eq!(a.len(), b.len(), "dot product of unequal-length slices");
    a.iter()
        .zip(b.iter())
        .fold(F::ZERO, |acc, (&x, &y)| acc.add(x.mul(y)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gf256::Gf256;

    #[test]
    fn dot_product_matches_manual_expansion() {
        let a = [Gf256::from_u64(3), Gf256::from_u64(5)];
        let b = [Gf256::from_u64(7), Gf256::from_u64(11)];
        let expected = a[0].mul(b[0]).add(a[1].mul(b[1]));
        assert_eq!(dot(&a, &b), expected);
    }

    #[test]
    fn sum_of_pairs_cancels_in_char_2() {
        let x = Gf256::from_u64(123);
        assert_eq!(sum([x, x]), Gf256::ZERO);
    }

    #[test]
    #[should_panic(expected = "unequal-length")]
    fn dot_panics_on_length_mismatch() {
        let a = [Gf256::ONE];
        let b = [Gf256::ONE, Gf256::ONE];
        let _ = dot(&a, &b);
    }
}
