//! Complete-graph emulation: reliable unicast over `2f+1` vertex-disjoint
//! paths with receiver-side majority voting (Appendix D).
//!
//! With at most `f` faulty nodes and `2f + 1` internally-vertex-disjoint
//! paths between `u` and `v`, at most `f` path copies can be corrupted
//! (each faulty node lies on at most one path), so the majority copy is
//! always the sender's value. This turns any `2f+1`-connected network into
//! a virtual complete graph on which classic BB protocols run unchanged.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::{Arc, PoisonError, RwLock};

use nab_netgraph::connectivity::{
    strongly_connected, vertex_connectivity_at_least, vertex_disjoint_paths,
};
use nab_netgraph::{DiGraph, NodeId};
use nab_sim::{NetSim, SendError};

/// Errors surfaced by the fallible routing entry points.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RouterError {
    /// The pair has no `2f+1` disjoint paths — the node was removed after
    /// [`PathRouter::build`] proved connectivity, or never existed.
    Unroutable {
        /// Requested source.
        src: NodeId,
        /// Requested destination.
        dst: NodeId,
    },
    /// A hop of an extracted path no longer exists in the simulator.
    Send(SendError),
}

impl std::fmt::Display for RouterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouterError::Unroutable { src, dst } => {
                write!(f, "no disjoint path system from {src} to {dst}")
            }
            RouterError::Send(e) => write!(f, "routed hop failed: {e}"),
        }
    }
}

impl std::error::Error for RouterError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RouterError::Send(e) => Some(e),
            RouterError::Unroutable { .. } => None,
        }
    }
}

impl From<SendError> for RouterError {
    fn from(e: SendError) -> Self {
        RouterError::Send(e)
    }
}

/// Routes logical unicasts over vertex-disjoint path systems, computed
/// lazily per ordered pair.
///
/// Eager all-pairs routing is `O(n²)` max-flows before the first instance
/// can run — the planning wall at datacenter scale. [`PathRouter::build`]
/// now only proves the `2f+1`-connectivity precondition (so path existence
/// is guaranteed by Menger's theorem) and each pair's paths are extracted on
/// first use, memoized behind a lock. The extraction is deterministic per
/// pair, so lazy evaluation is invisible to results regardless of which
/// thread routes a pair first.
/// Memoized disjoint-path sets per ordered `(src, dst)` pair.
type PairPaths = BTreeMap<(NodeId, NodeId), Arc<Vec<Vec<NodeId>>>>;

#[derive(Debug)]
pub struct PathRouter {
    g: DiGraph,
    paths: RwLock<PairPaths>,
    copies: usize,
}

impl Clone for PathRouter {
    fn clone(&self) -> Self {
        // Poison-tolerant: the memo only ever holds fully-constructed
        // `Arc` entries, so a panicked writer cannot leave torn state.
        let paths = self
            .paths
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone();
        PathRouter {
            g: self.g.clone(),
            paths: RwLock::new(paths),
            copies: self.copies,
        }
    }
}

/// A payload in flight along one path: the logical value plus routing
/// metadata so receivers can group copies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Routed<V> {
    /// Logical sender.
    pub origin: NodeId,
    /// Logical receiver.
    pub target: NodeId,
    /// Index of the disjoint path carrying this copy.
    pub path_idx: usize,
    /// The value (possibly corrupted by a faulty relay).
    pub value: V,
}

impl PathRouter {
    /// Prepares `2f + 1`-disjoint-path routing between every ordered pair
    /// of active nodes.
    ///
    /// Returns `None` if the graph's vertex connectivity is below `2f + 1`
    /// — i.e. the network violates the paper's connectivity assumption.
    /// When it holds, Menger's theorem guarantees every pair has the
    /// required paths, so they are extracted lazily on first use instead of
    /// eagerly for all `n(n−1)` pairs.
    pub fn build(g: &DiGraph, f: usize) -> Option<Self> {
        let copies = 2 * f + 1;
        let routable = if f == 0 {
            strongly_connected(g)
        } else {
            vertex_connectivity_at_least(g, copies as u64)
        };
        routable.then(|| PathRouter {
            g: g.clone(),
            paths: RwLock::new(BTreeMap::new()),
            copies,
        })
    }

    /// Number of copies (`2f + 1`) each unicast travels on.
    pub fn copies(&self) -> usize {
        self.copies
    }

    /// The disjoint paths used for the ordered pair, computing and
    /// memoizing them on first use.
    ///
    /// Returns [`RouterError::Unroutable`] if the pair cannot be routed
    /// (inactive node) — impossible while the graph that passed
    /// [`PathRouter::build`] is intact, by Menger's theorem.
    pub fn try_paths_for(
        &self,
        s: NodeId,
        t: NodeId,
    ) -> Result<Arc<Vec<Vec<NodeId>>>, RouterError> {
        // Lock access is poison-tolerant: the memo map only ever holds
        // fully-constructed entries (`or_insert` of a finished `Arc`), so a
        // panicked holder cannot have left it torn.
        if let Some(p) = self
            .paths
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(&(s, t))
        {
            return Ok(Arc::clone(p));
        }
        let extracted = vertex_disjoint_paths(&self.g, s, t, self.copies)
            .ok_or(RouterError::Unroutable { src: s, dst: t })?;
        let p = Arc::new(extracted);
        let mut map = self.paths.write().unwrap_or_else(PoisonError::into_inner);
        // Another thread may have raced us here; keep the first entry so
        // every caller shares one allocation (both computations are
        // identical anyway — extraction is deterministic).
        Ok(Arc::clone(map.entry((s, t)).or_insert(p)))
    }

    /// Infallible convenience over [`PathRouter::try_paths_for`].
    ///
    /// # Panics
    ///
    /// Panics if the pair cannot be routed (inactive node).
    pub fn paths_for(&self, s: NodeId, t: NodeId) -> Arc<Vec<Vec<NodeId>>> {
        self.try_paths_for(s, t)
            // nab-lint: allow(NAB003): documented panicking convenience; fallible callers use try_paths_for
            .expect("connectivity was proven at build time")
    }

    /// Performs one reliable unicast of `value` (`bits` wide) from `origin`
    /// to `target`, hop-by-hop through the simulator.
    ///
    /// `corrupt` is the Byzantine interposition hook: called whenever a
    /// *faulty relay* forwards a copy, it returns the (possibly altered)
    /// value to forward. Fault-free relays forward verbatim.
    ///
    /// Returns the majority value among delivered copies, or `None` if no
    /// strict majority exists (cannot happen when at most `f` of `2f+1`
    /// copies are corrupted). Fails with [`RouterError`] if the pair has no
    /// path system or a path hop lost its link — both impossible while the
    /// graph proven connected at build time is intact.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
    pub fn try_unicast<V, FC>(
        &self,
        net: &mut NetSim<Routed<V>>,
        faulty: &BTreeSet<NodeId>,
        origin: NodeId,
        target: NodeId,
        bits: u64,
        value: V,
        corrupt: &mut FC,
    ) -> Result<Option<V>, RouterError>
    where
        V: Clone + Eq,
        FC: FnMut(NodeId, &V) -> V,
    {
        let paths = self.try_paths_for(origin, target)?;
        // Current position and carried value per copy.
        let mut carried: Vec<V> = vec![value.clone(); paths.len()];
        let max_hops = paths.iter().map(|p| p.len() - 1).max().unwrap_or(0);
        for hop in 0..max_hops {
            for (idx, path) in paths.iter().enumerate() {
                if hop + 1 >= path.len() {
                    continue;
                }
                let (a, b) = (path[hop], path[hop + 1]);
                // A faulty relay (not the origin: origin equivocation is
                // modeled a layer up) may corrupt the copy before
                // forwarding.
                if hop > 0 && faulty.contains(&a) {
                    carried[idx] = corrupt(a, &carried[idx]);
                }
                let msg = Routed {
                    origin,
                    target,
                    path_idx: idx,
                    value: carried[idx].clone(),
                };
                net.send(a, b, bits, msg)?;
            }
            net.deliver_round(&format!("route/{origin}->{target}/hop{hop}"));
        }
        // Collect the copies that arrived at the target.
        let inbox = net.take_inbox(target);
        let mut final_copies: Vec<V> = Vec::new();
        let mut leftovers = Vec::new();
        for (from, m) in inbox {
            if m.origin == origin && m.target == target {
                // Only the last hop of each path terminates at target.
                final_copies.push(m.value);
            } else {
                leftovers.push((from, m));
            }
        }
        // Intermediate inboxes along paths were consumed implicitly: the
        // simulator delivers to inboxes, but relays in this router forward
        // from `carried`, so drain stale entries to keep inboxes clean.
        for v in net.graph().node_set() {
            if v != target {
                let _ = net.take_inbox(v);
            }
        }
        for m in leftovers {
            // Copies addressed to other logical receivers should not occur
            // within a single unicast call.
            debug_assert!(false, "unexpected routed message {:?}", (m.0));
        }
        Ok(majority(&final_copies))
    }

    /// Infallible convenience over [`PathRouter::try_unicast`] for callers
    /// operating on the graph that passed [`PathRouter::build`], where
    /// routing cannot fail.
    ///
    /// # Panics
    ///
    /// Panics if the pair cannot be routed or a path hop lost its link.
    #[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
    pub fn unicast<V, FC>(
        &self,
        net: &mut NetSim<Routed<V>>,
        faulty: &BTreeSet<NodeId>,
        origin: NodeId,
        target: NodeId,
        bits: u64,
        value: V,
        corrupt: &mut FC,
    ) -> Option<V>
    where
        V: Clone + Eq,
        FC: FnMut(NodeId, &V) -> V,
    {
        self.try_unicast(net, faulty, origin, target, bits, value, corrupt)
            // nab-lint: allow(NAB003): documented panicking convenience; fallible callers use try_unicast
            .expect("routing over the build-time graph cannot fail")
    }
}

/// The strict-majority element of a slice, if one exists.
///
/// Runs the Boyer–Moore majority-vote scan (one candidate pass plus one
/// verification pass, `O(n)` comparisons) instead of the naive quadratic
/// count — this sits under every unicast vote and every internal node of
/// the EIG resolve tree, so it is one of the hottest comparisons in the
/// whole simulator.
pub fn majority<V: Clone + Eq>(items: &[V]) -> Option<V> {
    let mut candidate: Option<&V> = None;
    let mut count = 0usize;
    for x in items {
        match candidate {
            Some(c) if c == x => count += 1,
            _ if count == 0 => {
                candidate = Some(x);
                count = 1;
            }
            _ => count -= 1,
        }
    }
    // Only a strict majority (not a mere plurality) wins; verify.
    let c = candidate?;
    if 2 * items.iter().filter(|x| *x == c).count() > items.len() {
        Some(c.clone())
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nab_netgraph::gen;

    #[test]
    fn majority_basic() {
        assert_eq!(majority(&[1, 1, 2]), Some(1));
        assert_eq!(majority(&[1, 2, 3]), None);
        assert_eq!(majority::<u64>(&[]), None);
        assert_eq!(majority(&[5]), Some(5));
    }

    #[test]
    fn build_requires_connectivity() {
        // K4 is 3-connected: f=1 works, f=2 does not.
        let g = gen::complete(4, 1);
        assert!(PathRouter::build(&g, 1).is_some());
        assert!(PathRouter::build(&g, 2).is_none());
    }

    #[test]
    fn unicast_delivers_without_faults() {
        let g = gen::complete(4, 1);
        let router = PathRouter::build(&g, 1).unwrap();
        let mut net = NetSim::new(g);
        let faulty = BTreeSet::new();
        let got = router.unicast(&mut net, &faulty, 0, 3, 1, 42u64, &mut |_, v| *v);
        assert_eq!(got, Some(42));
        assert!(net.clock() > 0.0, "routing must consume time");
    }

    #[test]
    fn unicast_survives_faulty_relay() {
        let g = gen::complete(4, 1);
        let router = PathRouter::build(&g, 1).unwrap();
        let mut net = NetSim::new(g);
        // Node 1 is faulty and flips every value it relays.
        let faulty = BTreeSet::from([1]);
        let got = router.unicast(&mut net, &faulty, 0, 3, 1, 42u64, &mut |_, _| 999);
        assert_eq!(
            got,
            Some(42),
            "majority over 3 disjoint paths beats 1 fault"
        );
    }

    #[test]
    fn unicast_survives_two_faulty_relays_with_f2() {
        let g = gen::complete(7, 1);
        let router = PathRouter::build(&g, 2).unwrap();
        let mut net = NetSim::new(g);
        let faulty = BTreeSet::from([2, 3]);
        let got = router.unicast(&mut net, &faulty, 0, 6, 1, 7u64, &mut |_, _| 0);
        assert_eq!(got, Some(7), "5 disjoint paths beat 2 faults");
    }

    #[test]
    fn paths_are_internally_disjoint() {
        let g = gen::complete(5, 1);
        let router = PathRouter::build(&g, 1).unwrap();
        let paths = router.paths_for(0, 4);
        assert_eq!(paths.len(), 3);
        // A second lookup shares the memoized allocation.
        assert!(Arc::ptr_eq(&paths, &router.paths_for(0, 4)));
        let mut internal = std::collections::HashSet::new();
        for p in paths.iter() {
            for &v in &p[1..p.len() - 1] {
                assert!(internal.insert(v));
            }
        }
    }
}
