//! Exponential Information Gathering (EIG) Byzantine broadcast.
//!
//! The classic Pease–Shostak–Lamport protocol [19]: `f + 1` relay rounds
//! build, at every node, a tree of claims `val(σ)` — "node `i_k` said that
//! `i_{k-1}` said that … the source said `v`" — after which each node
//! decides by recursive strict-majority over the tree. Correct for
//! `n > 3f` participants on a (possibly emulated) complete graph.
//!
//! NAB invokes this as `Broadcast_Default` for the 1-bit equality-check
//! flags (step 2.2) and for the dispute-control transcript claims (Phase 3);
//! its cost is the `O(n^α)` per-bit overhead that the throughput analysis
//! amortizes away.

use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Re-export: node identifier.
pub use nab_netgraph::NodeId;

/// Adversary hook: chooses what a *faulty* node transmits at each point of
/// the EIG protocol.
pub trait EigAdversary<V> {
    /// The value faulty `sender` reports to `receiver` for claim-path
    /// `path` (which ends in `sender`); `honest` is what a correct node
    /// would have sent.
    fn send_value(&mut self, sender: NodeId, path: &[NodeId], receiver: NodeId, honest: &V) -> V;
}

/// The trivial adversary: faulty nodes follow the protocol.
#[derive(Debug, Clone, Default)]
pub struct HonestAdversary;

impl<V: Clone> EigAdversary<V> for HonestAdversary {
    fn send_value(&mut self, _: NodeId, _: &[NodeId], _: NodeId, honest: &V) -> V {
        honest.clone()
    }
}

/// Outcome of one EIG broadcast.
#[derive(Debug, Clone)]
pub struct EigResult<V> {
    /// Decision of every participant (faulty ones included, for
    /// inspection; only fault-free decisions are meaningful).
    pub decisions: BTreeMap<NodeId, V>,
    /// Number of logical point-to-point messages exchanged.
    pub messages: u64,
}

/// The transport EIG runs over: a reliable logical unicast (on a real
/// complete graph this is a link; on an incomplete one, a
/// [`crate::router::PathRouter`] majority-unicast).
pub trait EigChannel<V> {
    /// Delivers `value` from `from` to `to`, returning what arrives.
    fn unicast(&mut self, from: NodeId, to: NodeId, bits: u64, value: V) -> V;
}

/// An ideal channel: direct, lossless, free. Useful for unit tests and for
/// cost models that charge communication separately.
#[derive(Debug, Clone, Default)]
pub struct IdealChannel;

impl<V> EigChannel<V> for IdealChannel {
    fn unicast(&mut self, _: NodeId, _: NodeId, _: u64, value: V) -> V {
        value
    }
}

/// Runs one EIG Byzantine broadcast.
///
/// - `participants`: the nodes taking part (must include `source`);
/// - `f`: upper bound on the number of faulty *participants*;
/// - `input`: the source's input value;
/// - `faulty` / `adversary`: which nodes misbehave and how;
/// - `chan`: the transport;
/// - `bits`: the width charged per logical message.
///
/// Guarantees (for `|participants| > 3f`): all fault-free participants
/// decide the same value, equal to `input` when the source is fault-free.
///
/// # Panics
///
/// Panics if `source` is not a participant or `|participants| ≤ 3f`.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn run_eig<V, C>(
    participants: &[NodeId],
    source: NodeId,
    f: usize,
    input: V,
    faulty: &BTreeSet<NodeId>,
    adversary: &mut dyn EigAdversary<V>,
    chan: &mut C,
    bits: u64,
) -> EigResult<V>
where
    V: Clone + Eq + Default,
    C: EigChannel<V>,
{
    assert!(participants.contains(&source), "source must participate");
    assert!(
        participants.len() > 3 * f,
        "EIG requires n > 3f (n={}, f={f})",
        participants.len()
    );

    let mut messages = 0u64;
    // Per-node claim trees: path -> value heard.
    let mut trees: BTreeMap<NodeId, HashMap<Vec<NodeId>, V>> =
        participants.iter().map(|&p| (p, HashMap::new())).collect();

    // Round 1: the source announces its input.
    let root_path = vec![source];
    for &r in participants {
        let honest = input.clone();
        let sent = if faulty.contains(&source) {
            adversary.send_value(source, &root_path, r, &honest)
        } else {
            honest
        };
        let got = if r == source {
            sent // self-delivery
        } else {
            messages += 1;
            chan.unicast(source, r, bits, sent)
        };
        trees.get_mut(&r).unwrap().insert(root_path.clone(), got); // nab-lint: allow(NAB003): trees is pre-populated with an entry per receiver
    }

    // Rounds 2..=f+1: relay every level-(k-1) claim.
    for level in 1..=f {
        // Paths of length `level` currently known (same set at every node).
        let paths: Vec<Vec<NodeId>> = trees[&source]
            .keys()
            .filter(|p| p.len() == level)
            .cloned()
            .collect();
        let mut new_entries: Vec<(NodeId, Vec<NodeId>, V)> = Vec::new();
        for path in &paths {
            for &relay in participants {
                if path.contains(&relay) {
                    continue;
                }
                let mut new_path = path.clone();
                new_path.push(relay);
                let honest = trees[&relay].get(path).cloned().unwrap_or_default();
                for &r in participants {
                    if r == relay {
                        new_entries.push((r, new_path.clone(), honest.clone()));
                        continue;
                    }
                    let sent = if faulty.contains(&relay) {
                        adversary.send_value(relay, &new_path, r, &honest)
                    } else {
                        honest.clone()
                    };
                    messages += 1;
                    let got = chan.unicast(relay, r, bits, sent);
                    new_entries.push((r, new_path.clone(), got));
                }
            }
        }
        for (node, path, v) in new_entries {
            trees.get_mut(&node).unwrap().insert(path, v); // nab-lint: allow(NAB003): trees is pre-populated with an entry per receiver
        }
    }

    // Decision: recursive strict-majority resolve from the root.
    let mut decisions = BTreeMap::new();
    for &p in participants {
        let tree = &trees[&p];
        let v = resolve(tree, &root_path, participants, f);
        decisions.insert(p, v);
    }

    EigResult {
        decisions,
        messages,
    }
}

/// Recursive EIG resolution: leaves report their stored value; internal
/// paths take the strict majority of their children (default on tie).
fn resolve<V: Clone + Eq + Default>(
    tree: &HashMap<Vec<NodeId>, V>,
    path: &[NodeId],
    participants: &[NodeId],
    f: usize,
) -> V {
    if path.len() == f + 1 {
        return tree.get(path).cloned().unwrap_or_default();
    }
    let mut children: Vec<V> = Vec::new();
    for &j in participants {
        if path.contains(&j) {
            continue;
        }
        let mut child = path.to_vec();
        child.push(j);
        children.push(resolve(tree, &child, participants, f));
    }
    // No strict majority → the protocol-wide default value. (Falling back
    // to the node's own stored value would break agreement: an
    // equivocating source gives every node a different stored value.)
    crate::router::majority(&children).unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Adversary: faulty nodes send `receiver-id`-dependent garbage.
    struct Equivocator;

    impl EigAdversary<u64> for Equivocator {
        fn send_value(&mut self, _: NodeId, _: &[NodeId], receiver: NodeId, _: &u64) -> u64 {
            receiver as u64 * 1000 + 7
        }
    }

    /// Adversary: flips the honest value deterministically.
    struct Flipper;

    impl EigAdversary<u64> for Flipper {
        fn send_value(&mut self, _: NodeId, _: &[NodeId], _: NodeId, honest: &u64) -> u64 {
            honest ^ 1
        }
    }

    fn all_agree(res: &EigResult<u64>, honest: &[NodeId]) -> Option<u64> {
        let vals: Vec<u64> = honest.iter().map(|n| res.decisions[n]).collect();
        vals.windows(2).all(|w| w[0] == w[1]).then(|| vals[0])
    }

    #[test]
    fn validity_with_honest_source() {
        let parts: Vec<NodeId> = (0..4).collect();
        let res = run_eig(
            &parts,
            0,
            1,
            77u64,
            &BTreeSet::new(),
            &mut HonestAdversary,
            &mut IdealChannel,
            1,
        );
        assert_eq!(all_agree(&res, &parts), Some(77));
    }

    #[test]
    fn agreement_with_equivocating_source_f1() {
        let parts: Vec<NodeId> = (0..4).collect();
        let faulty = BTreeSet::from([0]);
        let res = run_eig(
            &parts,
            0,
            1,
            77u64,
            &faulty,
            &mut Equivocator,
            &mut IdealChannel,
            1,
        );
        let honest: Vec<NodeId> = (1..4).collect();
        assert!(
            all_agree(&res, &honest).is_some(),
            "honest nodes must agree"
        );
    }

    #[test]
    fn validity_despite_faulty_relay_f1() {
        let parts: Vec<NodeId> = (0..4).collect();
        let faulty = BTreeSet::from([2]);
        let res = run_eig(
            &parts,
            0,
            1,
            5u64,
            &faulty,
            &mut Flipper,
            &mut IdealChannel,
            1,
        );
        for n in [0, 1, 3] {
            assert_eq!(res.decisions[&n], 5, "node {n} must decide source value");
        }
    }

    #[test]
    fn agreement_with_two_faults_f2() {
        let parts: Vec<NodeId> = (0..7).collect();
        let faulty = BTreeSet::from([0, 3]);
        let res = run_eig(
            &parts,
            0,
            2,
            9u64,
            &faulty,
            &mut Equivocator,
            &mut IdealChannel,
            1,
        );
        let honest: Vec<NodeId> = parts
            .iter()
            .copied()
            .filter(|n| !faulty.contains(n))
            .collect();
        assert!(all_agree(&res, &honest).is_some());
    }

    #[test]
    fn validity_with_two_faulty_relays_f2() {
        let parts: Vec<NodeId> = (0..7).collect();
        let faulty = BTreeSet::from([5, 6]);
        let res = run_eig(
            &parts,
            0,
            2,
            13u64,
            &faulty,
            &mut Flipper,
            &mut IdealChannel,
            1,
        );
        for n in 0..5 {
            assert_eq!(res.decisions[&n], 13);
        }
    }

    #[test]
    fn f0_is_single_round() {
        let parts: Vec<NodeId> = (0..2).collect();
        let res = run_eig(
            &parts,
            1,
            0,
            3u64,
            &BTreeSet::new(),
            &mut HonestAdversary,
            &mut IdealChannel,
            1,
        );
        assert_eq!(res.decisions[&0], 3);
        assert_eq!(res.messages, 1);
    }

    #[test]
    #[should_panic(expected = "n > 3f")]
    fn too_few_participants_rejected() {
        let parts: Vec<NodeId> = (0..3).collect();
        let _ = run_eig(
            &parts,
            0,
            1,
            0u64,
            &BTreeSet::new(),
            &mut HonestAdversary,
            &mut IdealChannel,
            1,
        );
    }

    #[test]
    fn works_with_string_values() {
        // EIG is generic over the value domain — dispute control broadcasts
        // structured claims, not bits.
        let parts: Vec<NodeId> = (0..4).collect();
        let res = run_eig(
            &parts,
            0,
            1,
            "claim:sent[1,2,3]".to_string(),
            &BTreeSet::new(),
            &mut HonestAdversary,
            &mut IdealChannel,
            128,
        );
        assert_eq!(res.decisions[&3], "claim:sent[1,2,3]");
    }

    /// Exhaustive check for n=4, f=1: for every choice of faulty node and
    /// both adversaries, agreement + validity hold.
    #[test]
    fn exhaustive_single_fault_n4() {
        let parts: Vec<NodeId> = (0..4).collect();
        for bad in 0..4 {
            for adv_kind in 0..2 {
                let faulty = BTreeSet::from([bad]);
                let mut equiv = Equivocator;
                let mut flip = Flipper;
                let adversary: &mut dyn EigAdversary<u64> =
                    if adv_kind == 0 { &mut equiv } else { &mut flip };
                let res = run_eig(
                    &parts,
                    0,
                    1,
                    42u64,
                    &faulty,
                    adversary,
                    &mut IdealChannel,
                    1,
                );
                let honest: Vec<NodeId> = parts.iter().copied().filter(|n| *n != bad).collect();
                let agreed = all_agree(&res, &honest);
                assert!(agreed.is_some(), "disagreement with faulty={bad}");
                if bad != 0 {
                    assert_eq!(agreed, Some(42), "validity violated with faulty={bad}");
                }
            }
        }
    }
}
