//! Classic Byzantine-broadcast primitives and capacity-oblivious baselines.
//!
//! NAB uses "a previously proposed Byzantine broadcast algorithm, such as
//! [19]/[6]" as a black box in two places: step 2.2 (agreeing on the 1-bit
//! equality-check flags) and Phase 3 (dispute-control transcript
//! broadcasts). This crate supplies that black box:
//!
//! - [`eig`] — Exponential Information Gathering (Pease–Shostak–Lamport),
//!   the textbook `f+1`-round BB for `n > 3f`, generic over the value
//!   domain and over the channel it runs on;
//! - [`router`] — complete-graph emulation over a `2f+1`-connected network:
//!   every logical unicast travels `2f+1` internally-vertex-disjoint paths
//!   and the receiver majority-votes (Appendix D of the paper);
//! - [`baselines`] — the capacity-oblivious full-value broadcast that NAB
//!   is compared against in experiment E5 (Section 1's "previously proposed
//!   algorithms can perform poorly");
//! - [`phaseking`] — a polynomial-message alternative `Broadcast_Default`
//!   (`O(f·n²)` messages, needs `n > 4f`);
//! - [`dolev`] — Dolev's topology-oblivious reliable broadcast, the
//!   classical root of the `2f+1`-connectivity prerequisite.

pub mod baselines;
pub mod dolev;
pub mod eig;
pub mod phaseking;
pub mod router;

pub use eig::{run_eig, EigAdversary, EigResult, HonestAdversary};
pub use phaseking::{run_phase_king, PkAdversary, PkResult};
pub use router::PathRouter;
