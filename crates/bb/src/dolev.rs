//! Dolev's reliable broadcast over incompletely connected networks (1982).
//!
//! The paper's `2f+1`-connectivity prerequisite descends from Dolev's
//! classic result: with at most `f` Byzantine nodes and vertex connectivity
//! `≥ 2f+1`, a fault-free source can transmit reliably to every fault-free
//! node *without* pre-computed routes. Every copy of the message carries
//! the path it traversed; receivers validate that each copy arrived from
//! the last node on its path (so a faulty node can only inject copies
//! whose recorded path passes through itself), and accept a value once the
//! union of its supporting paths contains `f + 1` internally-vertex-
//! disjoint source→receiver paths — more than the adversary can forge.
//!
//! This module complements [`crate::router::PathRouter`] (which needs
//! global topology knowledge to pre-compute disjoint paths); Dolev's
//! protocol trades exponential message complexity for topology-obliviousness.

use std::collections::{BTreeMap, BTreeSet};

use nab_netgraph::{DiGraph, NodeId};

/// Outcome of one Dolev broadcast.
#[derive(Debug, Clone)]
pub struct DolevResult {
    /// Value accepted by each node (`None` = nothing reached the `f+1`
    /// disjoint-path threshold).
    pub accepted: BTreeMap<NodeId, Option<u64>>,
    /// Total point-to-point messages carried.
    pub messages: u64,
    /// Flooding rounds until quiescence.
    pub rounds: usize,
}

/// A copy in flight: the value plus the relay path (starting at the
/// source, ending at the current holder's predecessor).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct Copy {
    value: u64,
    path: Vec<NodeId>,
}

/// Runs Dolev's flooding broadcast of `value` from `source` on `g`.
///
/// `forge(relay, path, value)` is the Byzantine hook: what a faulty relay
/// substitutes when forwarding (faulty nodes may also *originate* bogus
/// copies, but any copy they emit records them on its path — enforced by
/// receiver-side validation — so this hook captures their full power).
///
/// # Panics
///
/// Panics if `source` is inactive.
pub fn dolev_broadcast(
    g: &DiGraph,
    source: NodeId,
    f: usize,
    value: u64,
    faulty: &BTreeSet<NodeId>,
    forge: &mut dyn FnMut(NodeId, &[NodeId], u64) -> u64,
) -> DolevResult {
    assert!(g.is_active(source), "source must be active");
    let n = g.node_count();

    // Copies received at each node (deduplicated).
    let mut received: BTreeMap<NodeId, BTreeSet<Copy>> =
        g.nodes().map(|v| (v, BTreeSet::new())).collect();
    let mut messages = 0u64;

    // Round 0: the source emits (value, [source]) on every outgoing link.
    // A faulty source may equivocate via the forge hook.
    let mut frontier: Vec<(NodeId, Copy)> = Vec::new(); // (recipient, copy)
    for (_, e) in g.out_edges(source) {
        let v = if faulty.contains(&source) {
            forge(source, &[source], value)
        } else {
            value
        };
        frontier.push((
            e.dst,
            Copy {
                value: v,
                path: vec![source],
            },
        ));
        messages += 1;
    }

    let mut rounds = 0;
    while !frontier.is_empty() && rounds < n + 1 {
        rounds += 1;
        let mut next = Vec::new();
        for (holder, copy) in frontier {
            // Receiver validation: the copy must have arrived from the
            // last node on its path (the simulator guarantees physical
            // provenance; a faulty node cannot spoof another sender).
            if copy.path.contains(&holder) {
                continue;
            }
            // nab-lint: allow(NAB003): received is pre-populated with an entry per node
            if !received.get_mut(&holder).unwrap().insert(copy.clone()) {
                continue; // duplicate
            }
            // Relay with self appended, to every neighbor not on the path.
            let forwarded_value = if faulty.contains(&holder) {
                forge(holder, &copy.path, copy.value)
            } else {
                copy.value
            };
            let mut new_path = copy.path.clone();
            new_path.push(holder);
            for (_, e) in g.out_edges(holder) {
                if !new_path.contains(&e.dst) {
                    next.push((
                        e.dst,
                        Copy {
                            value: forwarded_value,
                            path: new_path.clone(),
                        },
                    ));
                    messages += 1;
                }
            }
        }
        frontier = next;
    }

    // Acceptance: for each node and candidate value, test whether the
    // union of supporting paths carries f+1 internally-disjoint
    // source→node paths.
    let mut accepted = BTreeMap::new();
    for v in g.nodes() {
        if v == source {
            accepted.insert(v, Some(value));
            continue;
        }
        let copies = &received[&v];
        let candidates: BTreeSet<u64> = copies.iter().map(|c| c.value).collect();
        let mut decided = None;
        for cand in candidates {
            if has_disjoint_support(copies, cand, f + 1) {
                decided = Some(cand);
                break;
            }
        }
        accepted.insert(v, decided);
    }

    DolevResult {
        accepted,
        messages,
        rounds,
    }
}

/// Dolev's acceptance test: do `need` copies of `cand` exist whose relay
/// sets (path minus the source) are *pairwise disjoint*?
///
/// This is the sound criterion: every copy a faulty node injects or
/// corrupts records that node on its path (directly, or on the prefix an
/// honest relay faithfully extends), so at most `f` pairwise-disjoint
/// relay sets can carry a forged value. (Testing connectivity of the
/// *union* of paths instead would be unsound — honest relays replicate a
/// forged value across paths whose union looks well-connected even though
/// every individual recorded path passes through the forger.)
fn has_disjoint_support(copies: &BTreeSet<Copy>, cand: u64, need: usize) -> bool {
    // Distinct relay sets, smallest first (greedy-friendly DFS order).
    // Note: supersets must NOT be pruned — each set is consumed by the
    // packing, so a dominated set still contributes a disjoint slot.
    let dedup: BTreeSet<BTreeSet<NodeId>> = copies
        .iter()
        .filter(|c| c.value == cand)
        .map(|c| c.path[1..].iter().copied().collect())
        .collect();
    let mut minimal: Vec<BTreeSet<NodeId>> = dedup.into_iter().collect();
    minimal.sort_by_key(BTreeSet::len);
    // DFS set packing for `need` pairwise-disjoint sets.
    fn dfs(sets: &[BTreeSet<NodeId>], start: usize, used: &BTreeSet<NodeId>, need: usize) -> bool {
        if need == 0 {
            return true;
        }
        if sets.len() - start < need {
            return false;
        }
        for i in start..sets.len() {
            if sets[i].is_disjoint(used) {
                let mut next = used.clone();
                next.extend(sets[i].iter().copied());
                if dfs(sets, i + 1, &next, need - 1) {
                    return true;
                }
            }
        }
        false
    }
    dfs(&minimal, 0, &BTreeSet::new(), need)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nab_netgraph::gen;

    fn no_forge(_: NodeId, _: &[NodeId], v: u64) -> u64 {
        v
    }

    #[test]
    fn fault_free_broadcast_accepted_everywhere() {
        let g = gen::complete(5, 1);
        let res = dolev_broadcast(&g, 0, 1, 42, &BTreeSet::new(), &mut no_forge);
        for v in g.nodes() {
            assert_eq!(res.accepted[&v], Some(42), "node {v}");
        }
        assert!(res.messages > 0);
    }

    #[test]
    fn forging_relay_cannot_fool_anyone() {
        let g = gen::complete(5, 1);
        let faulty = BTreeSet::from([2]);
        let mut forge = |_: NodeId, _: &[NodeId], _: u64| 666u64;
        let res = dolev_broadcast(&g, 0, 1, 42, &faulty, &mut forge);
        for v in g.nodes().filter(|&v| !faulty.contains(&v)) {
            assert_eq!(res.accepted[&v], Some(42), "node {v} fooled");
        }
    }

    #[test]
    fn two_forging_relays_with_f2_on_k7() {
        let g = gen::complete(7, 1);
        let faulty = BTreeSet::from([3, 5]);
        let mut forge = |relay: NodeId, _: &[NodeId], v: u64| v + relay as u64;
        let res = dolev_broadcast(&g, 0, 2, 9, &faulty, &mut forge);
        for v in g.nodes().filter(|&v| !faulty.contains(&v)) {
            assert_eq!(res.accepted[&v], Some(9), "node {v}");
        }
    }

    #[test]
    fn insufficient_connectivity_blocks_acceptance() {
        // A 4-ring is 2-connected: with f = 1 the threshold of 2 disjoint
        // paths is reachable, but f = 2 (needs 3 disjoint paths) is not.
        let g = gen::ring(4, 1);
        let res = dolev_broadcast(&g, 0, 2, 5, &BTreeSet::new(), &mut no_forge);
        assert_eq!(res.accepted[&2], None, "ring cannot support f=2");
        let res1 = dolev_broadcast(&g, 0, 1, 5, &BTreeSet::new(), &mut no_forge);
        assert_eq!(
            res1.accepted[&2],
            Some(5),
            "f=1 works on a 2-connected ring"
        );
    }

    #[test]
    fn faulty_cut_between_source_and_victim() {
        // Put the full fault budget on a vertex cut: with connectivity 3
        // and f=1, honest support (2 clean disjoint paths) still wins.
        let g = gen::complete(4, 1);
        let faulty = BTreeSet::from([1]);
        let mut forge = |_: NodeId, _: &[NodeId], _: u64| 0u64;
        let res = dolev_broadcast(&g, 0, 1, 7, &faulty, &mut forge);
        for v in [2, 3] {
            assert_eq!(res.accepted[&v], Some(7));
        }
    }

    #[test]
    fn equivocating_source_splits_but_never_forges_acceptance_of_both() {
        // A faulty source can make different nodes accept different values
        // (Dolev gives reliable *transmission*, not agreement) — but each
        // node accepts at most one value, and only values the source
        // actually emitted somewhere.
        let g = gen::complete(5, 1);
        let faulty = BTreeSet::from([0]);
        let mut forge = |_: NodeId, path: &[NodeId], v: u64| {
            if path.len() == 1 {
                // Source-level equivocation keyed on nothing in particular:
                // alternate between two values.
                v ^ 1
            } else {
                v
            }
        };
        let res = dolev_broadcast(&g, 0, 1, 10, &faulty, &mut forge);
        for v in g.nodes().filter(|&v| v != 0) {
            if let Some(a) = res.accepted[&v] {
                assert!(a == 10 || a == 11, "node {v} accepted fabricated {a}");
            }
        }
    }

    #[test]
    fn message_complexity_is_exponential_but_bounded() {
        let g = gen::complete(6, 1);
        let res = dolev_broadcast(&g, 0, 1, 1, &BTreeSet::new(), &mut no_forge);
        // All copies traverse simple paths, so the count is finite and the
        // protocol quiesces within n rounds.
        assert!(res.rounds <= 7);
        assert!(
            res.messages > 100,
            "flooding should be heavy: {}",
            res.messages
        );
    }
}
