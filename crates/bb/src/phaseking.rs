//! Phase-King Byzantine broadcast (Berman–Garay–Perry style).
//!
//! An alternative `Broadcast_Default` with *polynomial* message complexity
//! `O(f · n²)` — EIG sends `O(n^{f+1})` messages, which is fine for the
//! small `f` NAB targets but explodes for larger deployments. The classic
//! two-round phase-king protocol implemented here requires `n > 4f`
//! (the three-round `n > 3f` variant trades more rounds for resilience);
//! callers choose it when their network clears that threshold.
//!
//! Structure: the source disperses its value, then `f + 1` consensus
//! phases run, each with a designated *king*. Some phase has a fault-free
//! king, after which all fault-free nodes agree and agreement persists.

use std::collections::{BTreeMap, BTreeSet};

use nab_netgraph::NodeId;

use crate::eig::EigChannel;

/// Adversary hook for Phase-King: what a faulty `sender` transmits to
/// `receiver` in the given `(phase, round)` (source dispersal is phase 0).
pub trait PkAdversary<V> {
    /// Returns the (possibly corrupted) value to send; `honest` is the
    /// protocol-prescribed one.
    fn value(
        &mut self,
        sender: NodeId,
        phase: usize,
        round: usize,
        receiver: NodeId,
        honest: &V,
    ) -> V;
}

/// Faulty nodes follow the protocol.
#[derive(Debug, Clone, Default)]
pub struct PkHonest;

impl<V: Clone> PkAdversary<V> for PkHonest {
    fn value(&mut self, _: NodeId, _: usize, _: usize, _: NodeId, honest: &V) -> V {
        honest.clone()
    }
}

/// Outcome of one Phase-King broadcast.
#[derive(Debug, Clone)]
pub struct PkResult<V> {
    /// Every participant's decision.
    pub decisions: BTreeMap<NodeId, V>,
    /// Logical point-to-point messages sent.
    pub messages: u64,
}

/// Runs Phase-King broadcast.
///
/// Guarantees for `|participants| > 4f`: agreement among fault-free nodes
/// always; validity when the source is fault-free.
///
/// # Panics
///
/// Panics if `source` is not a participant or `|participants| ≤ 4f`.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn run_phase_king<V, C>(
    participants: &[NodeId],
    source: NodeId,
    f: usize,
    input: V,
    faulty: &BTreeSet<NodeId>,
    adversary: &mut dyn PkAdversary<V>,
    chan: &mut C,
    bits: u64,
) -> PkResult<V>
where
    V: Clone + Eq + Ord + Default,
    C: EigChannel<V>,
{
    assert!(participants.contains(&source), "source must participate");
    let n = participants.len();
    assert!(n > 4 * f, "phase-king needs n > 4f (n={n}, f={f})");

    let mut messages = 0u64;
    let mut value: BTreeMap<NodeId, V> = BTreeMap::new();

    // Phase 0: the source disperses its input.
    for &r in participants {
        let sent = if faulty.contains(&source) {
            adversary.value(source, 0, 0, r, &input)
        } else {
            input.clone()
        };
        let got = if r == source {
            sent
        } else {
            messages += 1;
            chan.unicast(source, r, bits, sent)
        };
        value.insert(r, got);
    }

    // f + 1 king phases. Kings are the first f+1 participants — at least
    // one of them is fault-free.
    for phase in 1..=f + 1 {
        let king = participants[(phase - 1) % n];

        // Round 1: everyone announces its current value.
        let mut heard: BTreeMap<NodeId, Vec<V>> =
            participants.iter().map(|&p| (p, Vec::new())).collect();
        for &s in participants {
            let honest = value[&s].clone();
            for &r in participants {
                let sent = if faulty.contains(&s) {
                    adversary.value(s, phase, 1, r, &honest)
                } else {
                    honest.clone()
                };
                let got = if r == s {
                    sent
                } else {
                    messages += 1;
                    chan.unicast(s, r, bits, sent)
                };
                heard.get_mut(&r).unwrap().push(got); // nab-lint: allow(NAB003): heard is pre-populated with an entry per receiver
            }
        }

        // Each node computes its plurality proposal and that proposal's
        // support.
        let mut proposal: BTreeMap<NodeId, (V, usize)> = BTreeMap::new();
        for &p in participants {
            let votes = &heard[&p];
            let mut counts: BTreeMap<&V, usize> = BTreeMap::new();
            for v in votes {
                *counts.entry(v).or_insert(0) += 1;
            }
            let (best, cnt) = counts
                .into_iter()
                .max_by_key(|&(v, c)| (c, std::cmp::Reverse(v.clone())))
                .expect("non-empty votes"); // nab-lint: allow(NAB003): every peer pushed one vote above; n >= 1
            proposal.insert(p, (best.clone(), cnt));
        }

        // Round 2: the king broadcasts its proposal; weakly supported
        // nodes adopt it.
        let king_honest = proposal[&king].0.clone();
        let mut next: BTreeMap<NodeId, V> = BTreeMap::new();
        for &r in participants {
            let from_king = if r == king {
                king_honest.clone()
            } else {
                let sent = if faulty.contains(&king) {
                    adversary.value(king, phase, 2, r, &king_honest)
                } else {
                    king_honest.clone()
                };
                messages += 1;
                chan.unicast(king, r, bits, sent)
            };
            let (own, support) = proposal[&r].clone();
            // Strong support (≥ n − f announcers) survives any king;
            // otherwise defer to the king.
            if support >= n - f {
                next.insert(r, own);
            } else {
                next.insert(r, from_king);
            }
        }
        value = next;
    }

    PkResult {
        decisions: value,
        messages,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::eig::IdealChannel;

    struct Equivocate;

    impl PkAdversary<u64> for Equivocate {
        fn value(&mut self, _: NodeId, _: usize, _: usize, r: NodeId, _: &u64) -> u64 {
            r as u64 * 31 + 5
        }
    }

    struct Flip;

    impl PkAdversary<u64> for Flip {
        fn value(&mut self, _: NodeId, _: usize, _: usize, _: NodeId, honest: &u64) -> u64 {
            honest ^ 0xFF
        }
    }

    fn agreed(res: &PkResult<u64>, honest: &[NodeId]) -> Option<u64> {
        let vals: Vec<u64> = honest.iter().map(|n| res.decisions[n]).collect();
        vals.windows(2).all(|w| w[0] == w[1]).then(|| vals[0])
    }

    #[test]
    fn validity_fault_free() {
        let parts: Vec<NodeId> = (0..5).collect();
        let res = run_phase_king(
            &parts,
            0,
            1,
            42u64,
            &BTreeSet::new(),
            &mut PkHonest,
            &mut IdealChannel,
            8,
        );
        assert_eq!(agreed(&res, &parts), Some(42));
    }

    #[test]
    fn agreement_under_equivocating_source() {
        let parts: Vec<NodeId> = (0..5).collect();
        let faulty = BTreeSet::from([0]);
        let res = run_phase_king(
            &parts,
            0,
            1,
            42u64,
            &faulty,
            &mut Equivocate,
            &mut IdealChannel,
            8,
        );
        let honest: Vec<NodeId> = (1..5).collect();
        assert!(agreed(&res, &honest).is_some(), "{:?}", res.decisions);
    }

    #[test]
    fn validity_with_faulty_relay_every_position() {
        let parts: Vec<NodeId> = (0..5).collect();
        for bad in 1..5 {
            let faulty = BTreeSet::from([bad]);
            let res = run_phase_king(&parts, 0, 1, 7u64, &faulty, &mut Flip, &mut IdealChannel, 8);
            let honest: Vec<NodeId> = parts.iter().copied().filter(|&p| p != bad).collect();
            assert_eq!(agreed(&res, &honest), Some(7), "faulty={bad}");
        }
    }

    #[test]
    fn agreement_with_equivocator_in_every_position() {
        let parts: Vec<NodeId> = (0..5).collect();
        for bad in 0..5 {
            let faulty = BTreeSet::from([bad]);
            let res = run_phase_king(
                &parts,
                0,
                1,
                9u64,
                &faulty,
                &mut Equivocate,
                &mut IdealChannel,
                8,
            );
            let honest: Vec<NodeId> = parts.iter().copied().filter(|&p| p != bad).collect();
            let a = agreed(&res, &honest);
            assert!(a.is_some(), "faulty={bad}");
            if bad != 0 {
                assert_eq!(a, Some(9), "validity, faulty={bad}");
            }
        }
    }

    #[test]
    fn two_faults_with_n9() {
        let parts: Vec<NodeId> = (0..9).collect();
        for pair in [[0usize, 1], [1, 2], [7, 8]] {
            let faulty: BTreeSet<NodeId> = pair.into_iter().collect();
            let res = run_phase_king(
                &parts,
                0,
                2,
                11u64,
                &faulty,
                &mut Equivocate,
                &mut IdealChannel,
                8,
            );
            let honest: Vec<NodeId> = parts
                .iter()
                .copied()
                .filter(|p| !faulty.contains(p))
                .collect();
            let a = agreed(&res, &honest);
            assert!(a.is_some(), "faulty={pair:?}");
            if !faulty.contains(&0) {
                assert_eq!(a, Some(11));
            }
        }
    }

    #[test]
    fn polynomial_vs_exponential_messages() {
        // Phase-King messages grow ~n², EIG ~n^{f+1}; at f=2 the gap is
        // visible already for n=9.
        use crate::eig::{run_eig, HonestAdversary};
        let parts: Vec<NodeId> = (0..9).collect();
        let pk = run_phase_king(
            &parts,
            0,
            2,
            1u64,
            &BTreeSet::new(),
            &mut PkHonest,
            &mut IdealChannel,
            1,
        );
        let eig = run_eig(
            &parts,
            0,
            2,
            1u64,
            &BTreeSet::new(),
            &mut HonestAdversary,
            &mut IdealChannel,
            1,
        );
        assert!(
            pk.messages < eig.messages,
            "phase-king {} !< EIG {}",
            pk.messages,
            eig.messages
        );
    }

    #[test]
    #[should_panic(expected = "n > 4f")]
    fn rejects_insufficient_n() {
        let parts: Vec<NodeId> = (0..4).collect();
        let _ = run_phase_king(
            &parts,
            0,
            1,
            0u64,
            &BTreeSet::new(),
            &mut PkHonest,
            &mut IdealChannel,
            1,
        );
    }

    #[test]
    fn exhaustive_single_fault_n5_binary_inputs() {
        // Exhaustive over faulty position × adversary × input bit.
        let parts: Vec<NodeId> = (0..5).collect();
        for bad in 0..5 {
            for input in [0u64, 1] {
                for adv_id in 0..2 {
                    let faulty = BTreeSet::from([bad]);
                    let mut eq = Equivocate;
                    let mut fl = Flip;
                    let adv: &mut dyn PkAdversary<u64> =
                        if adv_id == 0 { &mut eq } else { &mut fl };
                    let res =
                        run_phase_king(&parts, 0, 1, input, &faulty, adv, &mut IdealChannel, 1);
                    let honest: Vec<NodeId> = parts.iter().copied().filter(|&p| p != bad).collect();
                    let a = agreed(&res, &honest);
                    assert!(a.is_some(), "bad={bad} input={input} adv={adv_id}");
                    if bad != 0 {
                        assert_eq!(a, Some(input));
                    }
                }
            }
        }
    }
}
