//! Capacity-oblivious baselines NAB is measured against (experiment E5).
//!
//! Section 1 of the paper: "When capacities of the different links are not
//! identical, previously proposed algorithms can perform poorly. In fact,
//! one can easily construct example networks in which previously proposed
//! algorithms achieve throughput that is arbitrarily worse than the optimal
//! throughput." The canonical prior algorithm broadcasts the whole `L`-bit
//! value through a classic BB protocol (EIG) over the emulated complete
//! graph, ignoring link capacities entirely — every logical message carries
//! all `L` bits regardless of how thin the links it crosses are.

use std::collections::BTreeSet;

use nab_netgraph::{DiGraph, NodeId};
use nab_sim::NetSim;

use crate::eig::{run_eig, EigAdversary, EigChannel, HonestAdversary};
use crate::router::{PathRouter, Routed};

/// An [`EigChannel`] that transports every logical unicast over `2f+1`
/// vertex-disjoint paths of the real network, charging real link time.
pub struct RoutedChannel<'a, V> {
    /// The simulator carrying the traffic.
    pub net: &'a mut NetSim<Routed<V>>,
    /// Pre-built disjoint-path routing tables.
    pub router: &'a PathRouter,
    /// The faulty set (relays on paths may corrupt copies; majority wins).
    pub faulty: &'a BTreeSet<NodeId>,
}

impl<V: Clone + Eq> EigChannel<V> for RoutedChannel<'_, V> {
    fn unicast(&mut self, from: NodeId, to: NodeId, bits: u64, value: V) -> V {
        // Relay corruption cannot defeat the 2f+1 majority, so the hook
        // forwards verbatim; adversarial *content* is injected at the EIG
        // layer by the sender itself.
        self.router
            .unicast(
                self.net,
                self.faulty,
                from,
                to,
                bits,
                value.clone(),
                &mut |_, v| v.clone(),
            )
            .unwrap_or(value)
    }
}

/// Report from one baseline broadcast run.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Simulated wall-clock time for one `L`-bit broadcast.
    pub time: f64,
    /// Total bits carried by the network.
    pub bits_carried: u64,
    /// Whether all fault-free nodes agreed on the source's value.
    pub correct: bool,
}

/// Runs the capacity-oblivious baseline: one EIG broadcast of an `L`-bit
/// value (token `value`) over the emulated complete graph of `g`.
///
/// Returns `None` if `g` lacks the `2f+1` connectivity the emulation needs.
pub fn oblivious_full_value_broadcast(
    g: &DiGraph,
    source: NodeId,
    f: usize,
    l_bits: u64,
    value: u64,
    faulty: &BTreeSet<NodeId>,
    adversary: &mut dyn EigAdversary<u64>,
) -> Option<BaselineReport> {
    let router = PathRouter::build(g, f)?;
    Some(oblivious_broadcast_with_router(
        g, &router, source, f, l_bits, value, faulty, adversary,
    ))
}

/// [`oblivious_full_value_broadcast`] against a pre-built routing table —
/// the shared-setup entry point: callers that already realized a network
/// plan (e.g. the NAB planning layer, which owns a `2f+1`-disjoint-path
/// router per network) lend it here instead of paying the all-pairs
/// vertex-disjoint-path construction again per baseline run.
#[allow(clippy::too_many_arguments)] // mirrors the paper's parameter list
pub fn oblivious_broadcast_with_router(
    g: &DiGraph,
    router: &PathRouter,
    source: NodeId,
    f: usize,
    l_bits: u64,
    value: u64,
    faulty: &BTreeSet<NodeId>,
    adversary: &mut dyn EigAdversary<u64>,
) -> BaselineReport {
    let mut net: NetSim<Routed<u64>> = NetSim::new(g.clone());
    net.set_record_transcript(true);
    let participants: Vec<NodeId> = g.nodes().collect();
    let res = {
        let mut chan = RoutedChannel {
            net: &mut net,
            router,
            faulty,
        };
        run_eig(
            &participants,
            source,
            f,
            value,
            faulty,
            adversary,
            &mut chan,
            l_bits,
        )
    };
    let correct = participants
        .iter()
        .filter(|p| !faulty.contains(p))
        .all(|p| res.decisions[p] == value || faulty.contains(&source));
    BaselineReport {
        time: net.clock(),
        bits_carried: net.transcript().total_bits(),
        correct,
    }
}

/// Throughput (bits per time unit) of the oblivious baseline on `g` in the
/// fault-free execution: `L / time(L)`. The per-instance EIG round
/// structure is independent of `L`, so this is also the large-`L` limit.
pub fn oblivious_throughput(g: &DiGraph, source: NodeId, f: usize, l_bits: u64) -> Option<f64> {
    let rep = oblivious_full_value_broadcast(
        g,
        source,
        f,
        l_bits,
        0xA5A5,
        &BTreeSet::new(),
        &mut HonestAdversary,
    )?;
    Some(l_bits as f64 / rep.time)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nab_netgraph::gen;

    #[test]
    fn baseline_is_correct_without_faults() {
        let g = gen::complete(4, 1);
        let rep = oblivious_full_value_broadcast(
            &g,
            0,
            1,
            64,
            123,
            &BTreeSet::new(),
            &mut HonestAdversary,
        )
        .unwrap();
        assert!(rep.correct);
        assert!(rep.time > 0.0);
        assert!(rep.bits_carried >= 64);
    }

    #[test]
    fn baseline_time_scales_linearly_in_l() {
        let g = gen::complete(4, 2);
        let t1 = oblivious_throughput(&g, 0, 1, 100).unwrap();
        let t2 = oblivious_throughput(&g, 0, 1, 10_000).unwrap();
        // Throughput is L-independent because every message carries L bits.
        assert!((t1 - t2).abs() / t1 < 1e-9, "t1={t1} t2={t2}");
    }

    #[test]
    fn baseline_ignores_fat_links() {
        // Upgrade one link to huge capacity: oblivious throughput barely
        // moves, because the protocol still pushes L bits over thin links.
        let g_thin = gen::complete(4, 1);
        let mut g_fat = gen::complete(4, 1);
        g_fat.remove_edges_between(0, 1);
        g_fat.add_edge(0, 1, 1000);
        g_fat.add_edge(1, 0, 1000);
        let t_thin = oblivious_throughput(&g_thin, 0, 1, 1000).unwrap();
        let t_fat = oblivious_throughput(&g_fat, 0, 1, 1000).unwrap();
        assert!(
            t_fat <= t_thin * 1.5,
            "oblivious baseline should not exploit the fat link: {t_thin} vs {t_fat}"
        );
    }

    #[test]
    fn insufficient_connectivity_yields_none() {
        let mut g = DiGraph::new(4);
        // A directed ring is only 1-connected.
        for i in 0..4 {
            g.add_edge(i, (i + 1) % 4, 1);
        }
        assert!(oblivious_full_value_broadcast(
            &g,
            0,
            1,
            8,
            1,
            &BTreeSet::new(),
            &mut HonestAdversary
        )
        .is_none());
    }

    #[test]
    fn borrowed_router_matches_private_router() {
        let g = gen::complete(4, 2);
        let router = PathRouter::build(&g, 1).unwrap();
        let via_shared = oblivious_broadcast_with_router(
            &g,
            &router,
            0,
            1,
            64,
            123,
            &BTreeSet::new(),
            &mut HonestAdversary,
        );
        let via_private = oblivious_full_value_broadcast(
            &g,
            0,
            1,
            64,
            123,
            &BTreeSet::new(),
            &mut HonestAdversary,
        )
        .unwrap();
        assert_eq!(via_shared.time, via_private.time);
        assert_eq!(via_shared.bits_carried, via_private.bits_carried);
        assert!(via_shared.correct);
    }

    #[test]
    fn baseline_survives_faulty_relay() {
        struct Flip;
        impl EigAdversary<u64> for Flip {
            fn send_value(&mut self, _: NodeId, _: &[NodeId], _: NodeId, honest: &u64) -> u64 {
                honest ^ 0xFFFF
            }
        }
        let g = gen::complete(4, 1);
        let rep = oblivious_full_value_broadcast(&g, 0, 1, 64, 55, &BTreeSet::from([2]), &mut Flip)
            .unwrap();
        assert!(rep.correct, "EIG must tolerate one faulty relay at n=4");
    }
}
