//! A synchronous message-passing simulator with per-link capacity/time
//! accounting — the "testbed" for NAB.
//!
//! The paper's model (Section 1): a synchronous network where a directed
//! link of capacity `z_e` can carry `z_e · τ` bits in time `τ`, with zero
//! propagation delay. Throughput is bits reliably broadcast per unit time.
//! This crate implements exactly that accounting:
//!
//! - protocols proceed in *rounds*; during a round every node may place
//!   messages on its outgoing links;
//! - when the round is delivered, the simulator charges wall-clock time
//!   `max_e (bits_e / z_e)` — all links transmit in parallel, so a round
//!   lasts as long as its most loaded link (this reproduces the paper's
//!   `L/γ` and `L/ρ` phase costs, see `nab` crate tests);
//! - every send is recorded in a [`Transcript`], which is what Phase 3
//!   (dispute control) replays and cross-examines.
//!
//! The simulator carries an arbitrary payload type `M`; Byzantine behavior
//! is produced *above* this layer (faulty nodes simply hand different
//! payloads to [`NetSim::send`]), keeping the fabric itself trustworthy,
//! which mirrors the paper's model where links are reliable and only nodes
//! misbehave.

use std::collections::BTreeMap;

use nab_netgraph::{DiGraph, NodeId};

/// A record of one message as carried by the network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SentMsg<M> {
    /// Transmitting node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Size charged against the link capacity.
    pub bits: u64,
    /// The payload (opaque to the simulator).
    pub payload: M,
}

/// One delivered round: its label and every message it carried.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundRecord<M> {
    /// Protocol-assigned label (e.g. `"phase1/tree0"`).
    pub label: String,
    /// Messages carried, in send order.
    pub sends: Vec<SentMsg<M>>,
    /// Wall-clock duration charged for this round.
    pub duration: f64,
}

/// The full communication transcript of an execution.
#[derive(Debug, Clone, PartialEq)]
pub struct Transcript<M> {
    /// Delivered rounds in order.
    pub rounds: Vec<RoundRecord<M>>,
}

impl<M> Default for Transcript<M> {
    fn default() -> Self {
        Transcript { rounds: Vec::new() }
    }
}

impl<M: Clone> Transcript<M> {
    /// All messages sent by `node`, with round labels.
    pub fn sent_by(&self, node: NodeId) -> Vec<(&str, &SentMsg<M>)> {
        self.rounds
            .iter()
            .flat_map(|r| {
                r.sends
                    .iter()
                    .filter(move |s| s.src == node)
                    .map(move |s| (r.label.as_str(), s))
            })
            .collect()
    }

    /// All messages received by `node`, with round labels.
    pub fn received_by(&self, node: NodeId) -> Vec<(&str, &SentMsg<M>)> {
        self.rounds
            .iter()
            .flat_map(|r| {
                r.sends
                    .iter()
                    .filter(move |s| s.dst == node)
                    .map(move |s| (r.label.as_str(), s))
            })
            .collect()
    }

    /// Total bits carried across all rounds.
    pub fn total_bits(&self) -> u64 {
        self.rounds
            .iter()
            .flat_map(|r| &r.sends)
            .map(|s| s.bits)
            .sum()
    }
}

/// Errors returned by [`NetSim::send`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The directed link does not exist (or an endpoint was removed).
    NoSuchLink {
        /// Attempted transmitter.
        src: NodeId,
        /// Attempted receiver.
        dst: NodeId,
    },
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SendError::NoSuchLink { src, dst } => {
                write!(f, "no directed link from {src} to {dst}")
            }
        }
    }
}

impl std::error::Error for SendError {}

/// The synchronous capacitated network simulator.
///
/// # Example
///
/// ```
/// use nab_netgraph::gen;
/// use nab_sim::NetSim;
///
/// let mut net = NetSim::<String>::new(gen::complete(3, 2));
/// net.send(0, 1, 4, "hello".into()).unwrap();
/// net.deliver_round("greeting");
/// assert_eq!(net.take_inbox(1), vec![(0, "hello".to_string())]);
/// // 4 bits over a capacity-2 link: 2 time units.
/// assert_eq!(net.clock(), 2.0);
/// ```
#[derive(Debug, Clone)]
pub struct NetSim<M> {
    graph: DiGraph,
    clock: f64,
    pending: Vec<SentMsg<M>>,
    inboxes: BTreeMap<NodeId, Vec<(NodeId, M)>>,
    transcript: Transcript<M>,
    record_transcript: bool,
}

impl<M: Clone> NetSim<M> {
    /// Creates a simulator over the given network.
    pub fn new(graph: DiGraph) -> Self {
        NetSim {
            graph,
            clock: 0.0,
            pending: Vec::new(),
            inboxes: BTreeMap::new(),
            transcript: Transcript::default(),
            record_transcript: true,
        }
    }

    /// Disables transcript recording (large-run benches).
    pub fn set_record_transcript(&mut self, on: bool) {
        self.record_transcript = on;
    }

    /// The underlying network graph.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// Mutable access to the graph — NAB shrinks `G_k` between instances.
    pub fn graph_mut(&mut self) -> &mut DiGraph {
        &mut self.graph
    }

    /// Elapsed simulated time.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Charges extra wall-clock time not tied to message bits (e.g. an
    /// analytically-computed phase cost).
    ///
    /// # Panics
    ///
    /// Panics if `duration` is negative.
    pub fn charge(&mut self, duration: f64) {
        assert!(duration >= 0.0, "cannot charge negative time");
        self.clock += duration;
    }

    /// Queues a message on the directed link `src → dst` for the current
    /// round.
    ///
    /// # Errors
    ///
    /// Returns [`SendError::NoSuchLink`] if the link is absent. Protocol
    /// layers treat a missing message as a default value per the fault
    /// model, so callers typically propagate this only for fault-free
    /// senders.
    pub fn send(
        &mut self,
        src: NodeId,
        dst: NodeId,
        bits: u64,
        payload: M,
    ) -> Result<(), SendError> {
        if self.graph.find_edge(src, dst).is_none() {
            return Err(SendError::NoSuchLink { src, dst });
        }
        self.pending.push(SentMsg {
            src,
            dst,
            bits,
            payload,
        });
        Ok(())
    }

    /// Delivers all queued messages, charging `max_e(bits_e / z_e)` time,
    /// and returns the round duration.
    pub fn deliver_round(&mut self, label: &str) -> f64 {
        let mut per_link: BTreeMap<(NodeId, NodeId), u64> = BTreeMap::new();
        for m in &self.pending {
            *per_link.entry((m.src, m.dst)).or_insert(0) += m.bits;
        }
        let mut duration: f64 = 0.0;
        for ((src, dst), bits) in &per_link {
            let cap = self
                .graph
                .find_edge(*src, *dst)
                .map(|(_, e)| e.cap)
                .expect("link vanished mid-round"); // nab-lint: allow(NAB003): send() verified the link; topology is frozen within a round
            duration = duration.max(*bits as f64 / cap as f64);
        }
        let sends = std::mem::take(&mut self.pending);
        for m in &sends {
            self.inboxes
                .entry(m.dst)
                .or_default()
                .push((m.src, m.payload.clone()));
        }
        if self.record_transcript {
            self.transcript.rounds.push(RoundRecord {
                label: label.to_string(),
                sends,
                duration,
            });
        }
        self.clock += duration;
        duration
    }

    /// Removes and returns the accumulated inbox of `node` as
    /// (sender, payload) pairs in arrival order.
    pub fn take_inbox(&mut self, node: NodeId) -> Vec<(NodeId, M)> {
        self.inboxes.remove(&node).unwrap_or_default()
    }

    /// Peeks at the inbox without draining it.
    pub fn inbox(&self, node: NodeId) -> &[(NodeId, M)] {
        self.inboxes.get(&node).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The execution transcript so far.
    pub fn transcript(&self) -> &Transcript<M> {
        &self.transcript
    }

    /// Clears the transcript (e.g. between NAB instances once disputes have
    /// been resolved).
    pub fn clear_transcript(&mut self) {
        self.transcript.rounds.clear();
    }

    /// Resets the clock to zero, keeping graph and transcript.
    pub fn reset_clock(&mut self) {
        self.clock = 0.0;
    }
}

/// Per-link load statistics over a transcript, for utilization reports.
pub fn link_loads<M: Clone>(t: &Transcript<M>) -> BTreeMap<(NodeId, NodeId), u64> {
    let mut out = BTreeMap::new();
    for r in &t.rounds {
        for s in &r.sends {
            *out.entry((s.src, s.dst)).or_insert(0) += s.bits;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nab_netgraph::gen;

    fn net() -> NetSim<u64> {
        NetSim::new(gen::figure_1a())
    }

    #[test]
    fn send_on_missing_link_fails() {
        let mut n = net();
        // Figure 1(a) has no link between ids 1 and 3.
        assert_eq!(
            n.send(1, 3, 8, 0),
            Err(SendError::NoSuchLink { src: 1, dst: 3 })
        );
        assert!(n.send(0, 1, 8, 0).is_ok());
    }

    #[test]
    fn round_duration_is_max_over_links() {
        let mut n = net();
        // (0,1) has cap 2; (0,2) has cap 2; load them unevenly.
        n.send(0, 1, 8, 1).unwrap(); // 4 time units worth
        n.send(0, 2, 2, 2).unwrap(); // 1 time unit worth
        let d = n.deliver_round("r");
        assert_eq!(d, 4.0);
        assert_eq!(n.clock(), 4.0);
    }

    #[test]
    fn multiple_messages_on_one_link_accumulate() {
        let mut n = net();
        n.send(0, 1, 3, 1).unwrap();
        n.send(0, 1, 5, 2).unwrap();
        let d = n.deliver_round("r");
        assert_eq!(d, 4.0); // 8 bits over cap 2
    }

    #[test]
    fn inboxes_deliver_in_order_and_drain() {
        let mut n = net();
        n.send(0, 1, 1, 10).unwrap();
        n.send(0, 1, 1, 20).unwrap();
        n.deliver_round("r");
        assert_eq!(n.inbox(1), &[(0, 10), (0, 20)]);
        assert_eq!(n.take_inbox(1), vec![(0, 10), (0, 20)]);
        assert!(n.take_inbox(1).is_empty());
    }

    #[test]
    fn transcript_records_everything() {
        let mut n = net();
        n.send(0, 1, 2, 7).unwrap();
        n.deliver_round("phase1");
        n.send(1, 2, 1, 9).unwrap();
        n.deliver_round("phase2");
        let t = n.transcript();
        assert_eq!(t.rounds.len(), 2);
        assert_eq!(t.rounds[0].label, "phase1");
        assert_eq!(t.total_bits(), 3);
        assert_eq!(t.sent_by(0).len(), 1);
        assert_eq!(t.received_by(2).len(), 1);
    }

    #[test]
    fn transcript_can_be_disabled() {
        let mut n = net();
        n.set_record_transcript(false);
        n.send(0, 1, 2, 7).unwrap();
        n.deliver_round("r");
        assert!(n.transcript().rounds.is_empty());
        // Delivery still happened.
        assert_eq!(n.inbox(1).len(), 1);
    }

    #[test]
    fn charge_accumulates_time() {
        let mut n = net();
        n.charge(2.5);
        n.charge(0.5);
        assert_eq!(n.clock(), 3.0);
        n.reset_clock();
        assert_eq!(n.clock(), 0.0);
    }

    #[test]
    fn empty_round_costs_nothing() {
        let mut n = net();
        assert_eq!(n.deliver_round("idle"), 0.0);
    }

    #[test]
    fn link_loads_aggregate() {
        let mut n = net();
        n.send(0, 1, 2, 1).unwrap();
        n.deliver_round("a");
        n.send(0, 1, 3, 2).unwrap();
        n.deliver_round("b");
        let loads = link_loads(n.transcript());
        assert_eq!(loads[&(0, 1)], 5);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_charge_rejected() {
        let mut n = net();
        n.charge(-1.0);
    }
}
