//! Workspace self-check: the repository must lint clean under `--deny`.
//!
//! This is the same pass CI runs via `cargo run -p nab-lint -- --deny`,
//! wired into `cargo test` so a finding fails the ordinary test suite too.

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("lint crate lives two levels below the workspace root")
        .to_path_buf();
    let cfg = nab_lint::Config::workspace_default();
    let diags = nab_lint::lint_workspace(&root, &cfg).expect("workspace scan succeeds");
    assert!(
        diags.is_empty(),
        "workspace has lint findings:\n{}",
        diags
            .iter()
            .map(|d| d.render_human())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
