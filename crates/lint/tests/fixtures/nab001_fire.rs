use std::time::{Instant, SystemTime};

pub fn measure() -> Instant {
    Instant::now()
}

pub fn wall() -> SystemTime {
    SystemTime::now()
}
