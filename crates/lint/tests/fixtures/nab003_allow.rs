pub fn take(x: Option<u32>) -> u32 {
    x.unwrap() // nab-lint: allow(NAB003): fixture invariant holds by construction
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        Some(1u32).unwrap();
    }
}
