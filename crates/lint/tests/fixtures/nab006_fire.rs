pub fn me() -> std::thread::ThreadId {
    std::thread::current().id()
}

pub fn key(xs: &[u8]) -> usize {
    xs.as_ptr() as usize
}
