pub fn mean(xs: &[u64]) -> f64 {
    let sum = xs.iter().sum::<u64>() as f64; // nab-lint: allow(NAB005): deterministic sum over a fixed order
    sum / 2.0 // nab-lint: allow(NAB005): constant divisor
}
