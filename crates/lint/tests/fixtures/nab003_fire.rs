pub fn take(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn must(x: Result<u32, String>) -> u32 {
    x.expect("always ok")
}

pub fn never() {
    panic!("boom");
}
