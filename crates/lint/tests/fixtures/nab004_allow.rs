pub fn read_first(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees the slice is non-empty, so the
    // pointer read stays in bounds.
    unsafe { *xs.as_ptr() }
}
