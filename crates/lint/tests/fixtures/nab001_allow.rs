use std::time::Instant;

pub fn measure() -> Instant {
    Instant::now() // nab-lint: allow(NAB001): fixture demonstrates a justified clock read
}

#[cfg(test)]
mod tests {
    #[test]
    fn timing_in_tests_is_fine() {
        let _ = std::time::Instant::now();
    }
}
