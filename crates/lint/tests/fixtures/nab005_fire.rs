pub fn mean(xs: &[u64]) -> f64 {
    let sum = xs.iter().sum::<u64>() as f64;
    sum / 2.0
}
