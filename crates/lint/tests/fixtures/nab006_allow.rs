pub fn me() -> std::thread::ThreadId {
    std::thread::current().id() // nab-lint: allow(NAB006): diagnostics only; never keys canonical state
}

pub fn key(xs: &[u8]) -> usize {
    xs.as_ptr() as usize // nab-lint: allow(NAB006): debug print of a buffer address
}
