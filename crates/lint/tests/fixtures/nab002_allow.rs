// nab-lint: allow-file(NAB002): point lookups only; never iterated toward canonical output
use std::collections::HashMap;

pub fn build() -> HashMap<u32, u32> {
    HashMap::new()
}
