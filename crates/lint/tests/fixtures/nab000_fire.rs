// nab-lint: allow(NAB003)
pub fn missing_reason() {}

// nab-lint: allow(NAB999): no such rule
pub fn unknown_code() {}
