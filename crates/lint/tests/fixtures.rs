//! Golden-fixture suite: every rule has a firing fixture and a suppressed
//! fixture under `tests/fixtures/`, linted with a purpose-built [`Config`]
//! so the expectations are independent of the real workspace layout.

use nab_lint::{lint_file, Code, Config};

/// Lints a fixture under the given virtual workspace-relative path and
/// returns `(code, line)` pairs in diagnostic order.
fn lint_fixture(name: &str, rel: &str, cfg: &Config) -> Vec<(Code, u32)> {
    let path = format!("{}/tests/fixtures/{name}", env!("CARGO_MANIFEST_DIR"));
    let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    lint_file(rel, &src, cfg)
        .into_iter()
        .map(|d| (d.code, d.line))
        .collect()
}

/// A config that scopes every path-sensitive rule onto the fixture's
/// virtual `crates/demo` crate.
fn demo_cfg() -> Config {
    Config {
        clock_files: vec!["crates/demo/src/clock.rs".into()],
        canonical_crates: vec!["demo".into()],
        unsafe_files: vec!["crates/demo/src/simd.rs".into()],
        float_audit_files: vec!["crates/demo/src/report.rs".into()],
        float_formatter_files: vec!["crates/demo/src/json.rs".into()],
    }
}

fn codes(found: &[(Code, u32)]) -> Vec<Code> {
    found.iter().map(|&(c, _)| c).collect()
}

#[test]
fn nab001_fires_on_clock_reads_outside_whitelist() {
    let found = lint_fixture("nab001_fire.rs", "crates/demo/src/timing.rs", &demo_cfg());
    assert_eq!(found, vec![(Code::Nab001, 4), (Code::Nab001, 8)]);
}

#[test]
fn nab001_suppressed_and_test_scoped() {
    let found = lint_fixture("nab001_allow.rs", "crates/demo/src/timing.rs", &demo_cfg());
    assert_eq!(found, vec![]);
}

#[test]
fn nab001_whitelisted_file_is_exempt() {
    let found = lint_fixture("nab001_fire.rs", "crates/demo/src/clock.rs", &demo_cfg());
    assert_eq!(found, vec![]);
}

#[test]
fn nab002_fires_in_canonical_crates_only() {
    let cfg = demo_cfg();
    let found = lint_fixture("nab002_fire.rs", "crates/demo/src/map.rs", &cfg);
    assert!(!found.is_empty());
    assert!(codes(&found).iter().all(|&c| c == Code::Nab002));
    // The same source in a non-canonical crate is clean.
    let found = lint_fixture("nab002_fire.rs", "crates/other/src/map.rs", &cfg);
    assert_eq!(found, vec![]);
}

#[test]
fn nab002_file_level_allow_suppresses_all() {
    let found = lint_fixture("nab002_allow.rs", "crates/demo/src/map.rs", &demo_cfg());
    assert_eq!(found, vec![]);
}

#[test]
fn nab003_fires_on_unwrap_expect_and_panic() {
    let found = lint_fixture("nab003_fire.rs", "crates/demo/src/lib.rs", &demo_cfg());
    assert_eq!(
        found,
        vec![(Code::Nab003, 2), (Code::Nab003, 6), (Code::Nab003, 10)]
    );
}

#[test]
fn nab003_suppressed_and_test_scoped() {
    let found = lint_fixture("nab003_allow.rs", "crates/demo/src/lib.rs", &demo_cfg());
    assert_eq!(found, vec![]);
}

#[test]
fn nab003_exempt_in_test_files_and_bins() {
    let cfg = demo_cfg();
    for rel in [
        "crates/demo/tests/integration.rs",
        "crates/demo/src/bin/tool.rs",
        "src/main.rs",
    ] {
        let found = lint_fixture("nab003_fire.rs", rel, &cfg);
        assert_eq!(found, vec![], "{rel} should be NAB003-exempt");
    }
}

#[test]
fn nab004_fires_outside_the_unsafe_allowlist() {
    let found = lint_fixture("nab004_fire.rs", "crates/demo/src/ptr.rs", &demo_cfg());
    assert_eq!(found, vec![(Code::Nab004, 2)]);
}

#[test]
fn nab004_fires_without_safety_comment_even_in_allowlisted_file() {
    let found = lint_fixture("nab004_fire.rs", "crates/demo/src/simd.rs", &demo_cfg());
    assert_eq!(found, vec![(Code::Nab004, 2)]);
}

#[test]
fn nab004_safety_comment_justifies_allowlisted_unsafe() {
    let found = lint_fixture("nab004_allow.rs", "crates/demo/src/simd.rs", &demo_cfg());
    assert_eq!(found, vec![]);
}

#[test]
fn nab005_fires_on_floats_in_audited_files() {
    let cfg = demo_cfg();
    let found = lint_fixture("nab005_fire.rs", "crates/demo/src/report.rs", &cfg);
    assert_eq!(found, vec![(Code::Nab005, 2), (Code::Nab005, 3)]);
    // The audited formatter file and unaudited files are exempt.
    for rel in ["crates/demo/src/json.rs", "crates/demo/src/other.rs"] {
        let found = lint_fixture("nab005_fire.rs", rel, &cfg);
        assert_eq!(found, vec![], "{rel} should be NAB005-exempt");
    }
}

#[test]
fn nab005_suppressed_with_reasons() {
    let found = lint_fixture("nab005_allow.rs", "crates/demo/src/report.rs", &demo_cfg());
    assert_eq!(found, vec![]);
}

#[test]
fn nab006_fires_on_thread_identity_and_pointer_keys() {
    let found = lint_fixture("nab006_fire.rs", "crates/demo/src/sched.rs", &demo_cfg());
    assert_eq!(found, vec![(Code::Nab006, 2), (Code::Nab006, 6)]);
}

#[test]
fn nab006_suppressed_with_reasons() {
    let found = lint_fixture("nab006_allow.rs", "crates/demo/src/sched.rs", &demo_cfg());
    assert_eq!(found, vec![]);
}

#[test]
fn nab000_fires_on_malformed_annotations() {
    let found = lint_fixture("nab000_fire.rs", "crates/demo/src/lib.rs", &demo_cfg());
    assert_eq!(found, vec![(Code::Nab000, 1), (Code::Nab000, 4)]);
}
