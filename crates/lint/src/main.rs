//! The `nab-lint` CLI.
//!
//! ```text
//! nab-lint [--deny] [--json] [--root DIR] [FILE...]
//! ```
//!
//! With no `FILE` arguments, lints the whole workspace under `--root`
//! (default: the current directory, which is the workspace root under
//! `cargo run -p nab-lint`). Exit codes: `0` clean (or findings without
//! `--deny`), `1` findings under `--deny`, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use nab_lint::{lint_file, lint_workspace, render_json_report, Code, Config, Diagnostic};

const USAGE: &str = "nab-lint: static analysis for the NAB workspace

USAGE:
    nab-lint [--deny] [--json] [--root DIR] [FILE...]

OPTIONS:
    --deny        exit 1 when any finding survives suppression
    --json        machine-readable output (one JSON document)
    --root DIR    workspace root to scan (default: .)
    FILE...       lint only these files (paths relative to the root)
    --help        print this help

RULES:";

fn main() -> ExitCode {
    let mut deny = false;
    let mut json = false;
    let mut root = PathBuf::from(".");
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--deny" => deny = true,
            "--json" => json = true,
            "--root" => match args.next() {
                Some(d) => root = PathBuf::from(d),
                None => {
                    eprintln!("--root needs a directory argument");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                for c in Code::ALL {
                    println!("    {}", c.as_str());
                }
                return ExitCode::SUCCESS;
            }
            f if !f.starts_with('-') => files.push(f.to_string()),
            other => {
                eprintln!("unknown flag `{other}` (see --help)");
                return ExitCode::from(2);
            }
        }
    }

    let cfg = Config::workspace_default();
    let diags: Vec<Diagnostic> = if files.is_empty() {
        match lint_workspace(&root, &cfg) {
            Ok(d) => d,
            Err(e) => {
                eprintln!("nab-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        let mut d = Vec::new();
        for rel in &files {
            let path = root.join(rel);
            match std::fs::read_to_string(&path) {
                Ok(src) => d.extend(lint_file(rel, &src, &cfg)),
                Err(e) => {
                    eprintln!("nab-lint: read {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            }
        }
        d
    };

    if json {
        println!("{}", render_json_report(&diags));
    } else {
        for d in &diags {
            println!("{}", d.render_human());
        }
        if diags.is_empty() {
            eprintln!("nab-lint: clean");
        } else {
            eprintln!("nab-lint: {} finding(s)", diags.len());
        }
    }
    if deny && !diags.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
