//! `nab-lint`: token-level static analysis for the NAB workspace.
//!
//! The reproduction rests on invariants no compiler checks: canonical
//! JSON must be byte-identical across thread counts and execution modes,
//! wall-clock reads must never leak into deterministic paths, `unsafe`
//! is confined to the audited SIMD tier. The proptests catch violations
//! *after the fact*; this crate makes the rules *machine-checkable
//! without re-running the protocol* — a third party (or CI) can audit
//! that the source obeys them in milliseconds.
//!
//! Design: a hand-rolled lexer ([`lexer`]) produces tokens and comments
//! (so string/comment contents can never trigger a rule), and a rule
//! engine ([`rules`]) walks the token stream with stable error codes and
//! `file:line:col` diagnostics. Findings are suppressed site-by-site
//! with an *audited* annotation that must carry a reason:
//!
//! ```text
//! // nab-lint: allow(NAB003): poisoning is impossible — lock holders never panic
//! // nab-lint: allow-file(NAB003): measurement harness; panics abort the bench run
//! ```
//!
//! A leading comment covers the next code line, a trailing comment its
//! own line, and `allow-file` the whole file. A malformed annotation
//! (unknown code, missing reason) is itself a finding (`NAB000`), so
//! suppressions cannot silently rot.
//!
//! See `docs/lint.md` for the rule catalog and how to add a rule.

pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

use lexer::{lex, Lexed};

/// Stable rule codes. New rules append; codes are never reused.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Code {
    /// Malformed or unknown `nab-lint:` annotation.
    Nab000,
    /// Wall-clock read outside the clock whitelist.
    Nab001,
    /// Hash-ordered collection in a canonical-JSON crate.
    Nab002,
    /// `unwrap`/`expect`/`panic!`-family in non-test library code.
    Nab003,
    /// `unsafe` without a `SAFETY:` comment or outside the allowlist.
    Nab004,
    /// Float creation feeding canonical serialization.
    Nab005,
    /// Thread-identity or pointer-as-key in deterministic paths.
    Nab006,
}

impl Code {
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Nab000 => "NAB000",
            Code::Nab001 => "NAB001",
            Code::Nab002 => "NAB002",
            Code::Nab003 => "NAB003",
            Code::Nab004 => "NAB004",
            Code::Nab005 => "NAB005",
            Code::Nab006 => "NAB006",
        }
    }

    pub fn parse(s: &str) -> Option<Code> {
        match s {
            "NAB000" => Some(Code::Nab000),
            "NAB001" => Some(Code::Nab001),
            "NAB002" => Some(Code::Nab002),
            "NAB003" => Some(Code::Nab003),
            "NAB004" => Some(Code::Nab004),
            "NAB005" => Some(Code::Nab005),
            "NAB006" => Some(Code::Nab006),
            _ => None,
        }
    }

    /// All rule codes, for `--help` and the catalog test.
    pub const ALL: [Code; 7] = [
        Code::Nab000,
        Code::Nab001,
        Code::Nab002,
        Code::Nab003,
        Code::Nab004,
        Code::Nab005,
        Code::Nab006,
    ];
}

/// One finding, anchored at `path:line:col` (1-based).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    pub code: Code,
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

impl Diagnostic {
    pub fn render_human(&self) -> String {
        format!(
            "{}:{}:{}: {} {}",
            self.path,
            self.line,
            self.col,
            self.code.as_str(),
            self.message
        )
    }

    pub fn render_json(&self) -> String {
        format!(
            "{{\"code\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\"}}",
            self.code.as_str(),
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message)
        )
    }
}

/// Renders all diagnostics as one JSON document with a summary header.
pub fn render_json_report(diags: &[Diagnostic]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&d.render_json());
    }
    out.push_str(&format!("],\"count\":{}}}", diags.len()));
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Workspace-specific rule scoping. Paths are workspace-relative with
/// `/` separators.
#[derive(Clone, Debug)]
pub struct Config {
    /// The only files allowed to read the wall clock (NAB001).
    pub clock_files: Vec<String>,
    /// Crates (by `crates/<name>` directory name, or `.` for the root
    /// crate) whose data ends up in canonical JSON (NAB002, NAB005).
    pub canonical_crates: Vec<String>,
    /// Files where `unsafe` is permitted — each block still needs a
    /// `SAFETY:` comment (NAB004).
    pub unsafe_files: Vec<String>,
    /// Files that assemble canonical JSON values: float creation there is
    /// audited by NAB005.
    pub float_audit_files: Vec<String>,
    /// The audited float-formatter files, exempt from NAB005.
    pub float_formatter_files: Vec<String>,
}

impl Config {
    /// The configuration the workspace is linted with in CI.
    pub fn workspace_default() -> Config {
        Config {
            clock_files: vec!["crates/obs/src/clock.rs".into()],
            canonical_crates: vec!["core".into(), "scenario".into()],
            unsafe_files: vec![
                "crates/gf/src/simd.rs".into(),
                "crates/gf/src/kernel.rs".into(),
            ],
            float_audit_files: vec![
                "crates/scenario/src/report.rs".into(),
                "crates/scenario/src/json.rs".into(),
            ],
            float_formatter_files: vec!["crates/scenario/src/json.rs".into()],
        }
    }
}

/// Everything the rules know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative path with `/` separators.
    pub rel: String,
    /// `crates/<name>/…` → `Some(name)`; root-crate files → `None`.
    pub crate_name: Option<String>,
    /// Integration tests, benches, examples, fixtures.
    pub is_test_file: bool,
    /// Binary targets (`src/bin/…`, `src/main.rs`).
    pub is_bin: bool,
    pub lines: Vec<&'a str>,
    pub lexed: Lexed,
    /// Inclusive line ranges covered by `#[test]` / `#[cfg(test)]` items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl FileCtx<'_> {
    /// Is `line` inside a `#[cfg(test)]`/`#[test]` item?
    pub fn in_test(&self, line: u32) -> bool {
        self.is_test_file
            || self
                .test_ranges
                .iter()
                .any(|&(a, b)| a <= line && line <= b)
    }

    /// The raw source text of 1-based `line` (empty when out of range).
    pub fn line_text(&self, line: u32) -> &str {
        self.lines.get(line as usize - 1).copied().unwrap_or("")
    }
}

fn classify(rel: &str) -> (Option<String>, bool, bool) {
    let crate_name = rel
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .map(|s| s.to_string());
    let is_test_file = rel.contains("/tests/")
        || rel.starts_with("tests/")
        || rel.contains("/benches/")
        || rel.contains("/examples/")
        || rel.starts_with("examples/");
    let is_bin = rel.contains("/bin/") || rel.ends_with("/main.rs") || rel == "src/main.rs";
    (crate_name, is_test_file, is_bin)
}

/// Finds the line ranges of items annotated with a `test`-bearing
/// attribute (`#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`).
fn test_ranges(lexed: &Lexed) -> Vec<(u32, u32)> {
    let toks = &lexed.toks;
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].text != "#" || i + 1 >= toks.len() || toks[i + 1].text != "[" {
            i += 1;
            continue;
        }
        let attr_line = toks[i].line;
        // Scan the attribute body to its matching `]`.
        let mut depth = 0i32;
        let mut j = i + 1;
        let mut has_test = false;
        while j < toks.len() {
            match toks[j].text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                "test" => has_test = true,
                _ => {}
            }
            j += 1;
        }
        if !has_test {
            i = j + 1;
            continue;
        }
        // Skip any further attributes, then find the item body.
        let mut k = j + 1;
        while k + 1 < toks.len() && toks[k].text == "#" && toks[k + 1].text == "[" {
            let mut d = 0i32;
            k += 1;
            while k < toks.len() {
                match toks[k].text.as_str() {
                    "[" => d += 1,
                    "]" => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                k += 1;
            }
            k += 1;
        }
        // The item ends at its matching close brace (or a `;` for
        // brace-less items like `mod tests;`).
        let mut brace = 0i32;
        let mut end_line = attr_line;
        while k < toks.len() {
            match toks[k].text.as_str() {
                "{" => brace += 1,
                "}" => {
                    brace -= 1;
                    if brace == 0 {
                        end_line = toks[k].line;
                        break;
                    }
                }
                ";" if brace == 0 => {
                    end_line = toks[k].line;
                    break;
                }
                _ => {}
            }
            k += 1;
        }
        if k >= toks.len() {
            end_line = toks.last().map_or(attr_line, |t| t.line);
        }
        ranges.push((attr_line, end_line));
        i = k + 1;
    }
    ranges
}

/// One parsed `nab-lint:` annotation.
struct Suppression {
    code: Code,
    /// Line the annotation covers (ignored for `file_level`).
    line: u32,
    file_level: bool,
}

/// Parses suppressions out of the comments; malformed annotations become
/// `NAB000` diagnostics.
fn parse_suppressions(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) -> Vec<Suppression> {
    let mut sups = Vec::new();
    for c in &ctx.lexed.comments {
        // Suppressions live in plain comments; doc comments merely *talk
        // about* the annotation syntax.
        if c.text.starts_with("///")
            || c.text.starts_with("//!")
            || c.text.starts_with("/**")
            || c.text.starts_with("/*!")
        {
            continue;
        }
        let Some(at) = c.text.find("nab-lint:") else {
            continue;
        };
        let rest = c.text[at + "nab-lint:".len()..].trim_start();
        let (file_level, body) = if let Some(b) = rest.strip_prefix("allow-file(") {
            (true, b)
        } else if let Some(b) = rest.strip_prefix("allow(") {
            (false, b)
        } else {
            diags.push(Diagnostic {
                code: Code::Nab000,
                path: ctx.rel.clone(),
                line: c.line,
                col: c.col,
                message: format!(
                    "malformed nab-lint annotation (expected `allow(CODE): reason` \
                     or `allow-file(CODE): reason`): `{}`",
                    c.text.trim()
                ),
            });
            continue;
        };
        let Some(close) = body.find(')') else {
            diags.push(Diagnostic {
                code: Code::Nab000,
                path: ctx.rel.clone(),
                line: c.line,
                col: c.col,
                message: "unterminated nab-lint allow annotation".into(),
            });
            continue;
        };
        let code_str = body[..close].trim();
        let Some(code) = Code::parse(code_str) else {
            diags.push(Diagnostic {
                code: Code::Nab000,
                path: ctx.rel.clone(),
                line: c.line,
                col: c.col,
                message: format!("unknown rule code `{code_str}` in nab-lint annotation"),
            });
            continue;
        };
        let reason = body[close + 1..]
            .trim_start()
            .strip_prefix(':')
            .map(str::trim)
            .unwrap_or("");
        if reason.is_empty() {
            diags.push(Diagnostic {
                code: Code::Nab000,
                path: ctx.rel.clone(),
                line: c.line,
                col: c.col,
                message: format!(
                    "nab-lint allow({code_str}) must carry a reason: `allow({code_str}): why`"
                ),
            });
            continue;
        }
        // A trailing comment covers its own line; a leading comment
        // covers the line of the first token after it.
        let line = if c.trailing || file_level {
            c.line
        } else {
            ctx.lexed
                .toks
                .iter()
                .find(|t| t.line > c.line || (t.line == c.line && t.col > c.col))
                .map(|t| t.line)
                .unwrap_or(c.line)
        };
        sups.push(Suppression {
            code,
            line,
            file_level,
        });
    }
    sups
}

/// Lints one file's source text under `cfg`, returning unsuppressed
/// findings. `rel` is the workspace-relative path used for scoping.
pub fn lint_file(rel: &str, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let ranges = test_ranges(&lexed);
    let (crate_name, is_test_file, is_bin) = classify(rel);
    let ctx = FileCtx {
        rel: rel.to_string(),
        crate_name,
        is_test_file,
        is_bin,
        lines: src.lines().collect(),
        lexed,
        test_ranges: ranges,
    };
    let mut diags = Vec::new();
    let sups = parse_suppressions(&ctx, &mut diags);
    rules::run_all(&ctx, cfg, &mut diags);
    diags.retain(|d| {
        d.code == Code::Nab000
            || !sups
                .iter()
                .any(|s| s.code == d.code && (s.file_level || s.line == d.line))
    });
    diags.sort_by_key(|a| (a.line, a.col, a.code));
    diags
}

/// Directories scanned by a workspace lint, relative to the root.
const SCAN_ROOTS: [&str; 4] = ["crates", "src", "tests", "examples"];

/// Path fragments that are never scanned.
fn skip(rel: &str) -> bool {
    rel.starts_with("vendor/")
        || rel.starts_with("target/")
        || rel.contains("/target/")
        || rel.starts_with("crates/lint/tests/fixtures/")
}

fn walk(dir: &Path, root: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = Vec::new();
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        paths.push(entry.path());
    }
    paths.sort();
    for p in paths {
        let rel = rel_path(&p, root);
        if skip(&rel) {
            continue;
        }
        if p.is_dir() {
            walk(&p, root, out)?;
        } else if rel.ends_with(".rs") {
            out.push(p);
        }
    }
    Ok(())
}

fn rel_path(p: &Path, root: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    let mut s = String::new();
    for comp in rel.components() {
        if !s.is_empty() {
            s.push('/');
        }
        s.push_str(&comp.as_os_str().to_string_lossy());
    }
    s
}

/// Lints every workspace `.rs` file under `root` (excluding `vendor/`,
/// `target/`, and the lint fixtures). Diagnostics are sorted by path.
pub fn lint_workspace(root: &Path, cfg: &Config) -> Result<Vec<Diagnostic>, String> {
    let mut files = Vec::new();
    for sub in SCAN_ROOTS {
        let dir = root.join(sub);
        if dir.is_dir() {
            walk(&dir, root, &mut files)?;
        }
    }
    let mut diags = Vec::new();
    for f in &files {
        let src = std::fs::read_to_string(f).map_err(|e| format!("read {}: {e}", f.display()))?;
        let rel = rel_path(f, root);
        diags.extend(lint_file(&rel, &src, cfg));
    }
    diags.sort_by(|a, b| (&a.path, a.line, a.col, a.code).cmp(&(&b.path, b.line, b.col, b.code)));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/core/src/engine.rs"),
            (Some("core".into()), false, false)
        );
        assert!(classify("src/bin/nab-sim.rs").2);
        assert!(classify("crates/gf/tests/differential.rs").1);
        assert!(classify("examples/scenario_sweep.rs").1);
    }

    #[test]
    fn test_ranges_cover_cfg_test_mod() {
        let src =
            "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { x.unwrap(); }\n}\nfn tail() {}\n";
        let lexed = lex(src);
        let r = test_ranges(&lexed);
        assert_eq!(r, vec![(2, 5)]);
    }

    #[test]
    fn suppression_requires_reason() {
        let cfg = Config::workspace_default();
        let src = "// nab-lint: allow(NAB003)\nfn f() { x.unwrap(); }\n";
        let d = lint_file("crates/core/src/x.rs", src, &cfg);
        assert!(d.iter().any(|d| d.code == Code::Nab000));
        assert!(d.iter().any(|d| d.code == Code::Nab003), "not suppressed");
    }

    #[test]
    fn leading_and_trailing_suppressions() {
        let cfg = Config::workspace_default();
        let lead = "// nab-lint: allow(NAB003): fixture reason\nfn f() { x.unwrap(); }\n";
        assert!(lint_file("crates/core/src/x.rs", lead, &cfg).is_empty());
        let trail = "fn f() { x.unwrap(); } // nab-lint: allow(NAB003): fixture reason\n";
        assert!(lint_file("crates/core/src/x.rs", trail, &cfg).is_empty());
        let file = "// nab-lint: allow-file(NAB003): fixture reason\nfn f() { x.unwrap(); }\nfn g() { y.unwrap(); }\n";
        assert!(lint_file("crates/core/src/x.rs", file, &cfg).is_empty());
    }

    #[test]
    fn suppression_is_per_rule() {
        let cfg = Config::workspace_default();
        let src = "fn f() { x.unwrap(); } // nab-lint: allow(NAB001): wrong rule\n";
        let d = lint_file("crates/core/src/x.rs", src, &cfg);
        assert!(d.iter().any(|d| d.code == Code::Nab003));
    }

    #[test]
    fn json_report_shape() {
        let d = Diagnostic {
            code: Code::Nab001,
            path: "a.rs".into(),
            line: 3,
            col: 7,
            message: "\"quoted\"".into(),
        };
        assert_eq!(
            d.render_json(),
            "{\"code\":\"NAB001\",\"path\":\"a.rs\",\"line\":3,\"col\":7,\
             \"message\":\"\\\"quoted\\\"\"}"
        );
        assert!(render_json_report(&[d]).ends_with("\"count\":1}"));
    }
}
