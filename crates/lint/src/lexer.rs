//! A minimal Rust lexer for token-level static analysis.
//!
//! The rules in this crate only need a faithful *token stream* — idents,
//! punctuation, literals — with source positions, plus the comments
//! (which carry `SAFETY:` justifications and `nab-lint:` suppressions).
//! What makes a grep-based linter lie is exactly what this lexer gets
//! right: string literals (including raw `r#"…"#` and byte strings),
//! char literals vs. lifetimes, nested block comments, and float
//! literals vs. ranges (`1.5` is a float, `1..5` is not).
//!
//! It is intentionally *not* a parser: no token trees, no precedence.
//! Anything it cannot classify becomes a single-character punct token,
//! so lexing never fails — an essential property for a tool that must
//! run over every file in the workspace, fixtures included.

/// Classification of one token.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum TokKind {
    /// Identifier or keyword (`unsafe`, `HashMap`, `f64`, …).
    Ident,
    /// Single punctuation character (`:`, `(`, `*`, …).
    Punct,
    /// String, byte-string, or raw-string literal.
    Str,
    /// Character literal (`'x'`, `'\n'`).
    Char,
    /// Integer literal (also hex/octal/binary).
    Int,
    /// Floating-point literal (`1.5`, `2e9`, `3f64`).
    Float,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
}

/// One lexed token with its 1-based source position.
#[derive(Clone, Debug)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

/// One comment (line or block) with its 1-based *start* position.
#[derive(Clone, Debug)]
pub struct Comment {
    pub text: String,
    pub line: u32,
    pub col: u32,
    /// `true` when code tokens precede the comment on its start line.
    pub trailing: bool,
}

/// The result of lexing one file: tokens and comments, in source order.
#[derive(Default, Debug)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into tokens and comments. Never fails: unrecognized bytes
/// become punct tokens.
pub fn lex(src: &str) -> Lexed {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();
    // Line of the most recent token, to classify comments as trailing.
    let mut last_tok_line = 0u32;
    while let Some(b) = c.peek() {
        let (line, col) = (c.line, c.col);
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                c.bump();
            }
            b'/' if c.peek_at(1) == Some(b'/') => {
                let start = c.pos;
                while c.peek().is_some_and(|b| b != b'\n') {
                    c.bump();
                }
                out.comments.push(Comment {
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                    trailing: last_tok_line == line,
                });
            }
            b'/' if c.peek_at(1) == Some(b'*') => {
                let start = c.pos;
                c.bump();
                c.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (c.peek(), c.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            c.bump();
                            c.bump();
                        }
                        (Some(_), _) => {
                            c.bump();
                        }
                        (None, _) => break,
                    }
                }
                out.comments.push(Comment {
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                    trailing: last_tok_line == line,
                });
            }
            b'"' => {
                let text = lex_string(&mut c, src);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
                last_tok_line = c.line;
            }
            b'\'' => {
                let (kind, text) = lex_quote(&mut c, src);
                out.toks.push(Tok {
                    kind,
                    text,
                    line,
                    col,
                });
                last_tok_line = c.line;
            }
            b'r' | b'b' if raw_string_ahead(&c) => {
                let text = lex_raw_or_byte_string(&mut c, src);
                out.toks.push(Tok {
                    kind: TokKind::Str,
                    text,
                    line,
                    col,
                });
                last_tok_line = c.line;
            }
            _ if is_ident_start(b) => {
                let start = c.pos;
                while c.peek().is_some_and(is_ident_continue) {
                    c.bump();
                }
                out.toks.push(Tok {
                    kind: TokKind::Ident,
                    text: src[start..c.pos].to_string(),
                    line,
                    col,
                });
                last_tok_line = line;
            }
            _ if b.is_ascii_digit() => {
                let (kind, text) = lex_number(&mut c, src);
                out.toks.push(Tok {
                    kind,
                    text,
                    line,
                    col,
                });
                last_tok_line = line;
            }
            _ => {
                c.bump();
                out.toks.push(Tok {
                    kind: TokKind::Punct,
                    text: (b as char).to_string(),
                    line,
                    col,
                });
                last_tok_line = line;
            }
        }
    }
    out
}

/// Does the cursor sit on an `r"`, `r#`, `b"`, `br"`, or `br#` literal
/// prefix (as opposed to an identifier starting with `r`/`b`)?
fn raw_string_ahead(c: &Cursor) -> bool {
    let mut i = 1;
    if c.peek() == Some(b'b') && c.peek_at(1) == Some(b'r') {
        i = 2;
    }
    match (c.peek(), c.peek_at(i)) {
        (Some(b'b'), Some(b'"')) => true,
        (Some(b'r') | Some(b'b'), Some(b'"') | Some(b'#')) => {
            // `r#foo` raw identifiers: `r#` followed by ident-start is an
            // identifier, not a string. Require a `"` after the hashes.
            let mut j = i;
            while c.peek_at(j) == Some(b'#') {
                j += 1;
            }
            c.peek_at(j) == Some(b'"')
        }
        _ => false,
    }
}

fn lex_string(c: &mut Cursor, src: &str) -> String {
    let start = c.pos;
    c.bump(); // opening quote
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'"' => {
                c.bump();
                break;
            }
            _ => {
                c.bump();
            }
        }
    }
    src[start..c.pos].to_string()
}

fn lex_raw_or_byte_string(c: &mut Cursor, src: &str) -> String {
    let start = c.pos;
    if c.peek() == Some(b'b') {
        c.bump();
    }
    if c.peek() == Some(b'r') {
        c.bump();
        let mut hashes = 0usize;
        while c.peek() == Some(b'#') {
            hashes += 1;
            c.bump();
        }
        c.bump(); // opening quote
        loop {
            match c.peek() {
                None => break,
                Some(b'"') => {
                    c.bump();
                    let mut seen = 0usize;
                    while seen < hashes && c.peek() == Some(b'#') {
                        seen += 1;
                        c.bump();
                    }
                    if seen == hashes {
                        break;
                    }
                }
                Some(_) => {
                    c.bump();
                }
            }
        }
    } else {
        // b"..." — an escaped string body.
        let _ = lex_string(c, src);
    }
    src[start..c.pos].to_string()
}

/// Distinguishes a char literal from a lifetime after a leading `'`.
fn lex_quote(c: &mut Cursor, src: &str) -> (TokKind, String) {
    let start = c.pos;
    c.bump(); // the quote
              // Lifetime: 'ident not followed by a closing quote.
    if c.peek().is_some_and(is_ident_start) && c.peek() != Some(b'\\') {
        let mut j = 0;
        while c.peek_at(j).is_some_and(is_ident_continue) {
            j += 1;
        }
        if c.peek_at(j) != Some(b'\'') {
            while c.peek().is_some_and(is_ident_continue) {
                c.bump();
            }
            return (TokKind::Lifetime, src[start..c.pos].to_string());
        }
    }
    // Char literal: consume (escaped) content until the closing quote.
    while let Some(b) = c.peek() {
        match b {
            b'\\' => {
                c.bump();
                c.bump();
            }
            b'\'' => {
                c.bump();
                break;
            }
            _ => {
                c.bump();
            }
        }
    }
    (TokKind::Char, src[start..c.pos].to_string())
}

fn lex_number(c: &mut Cursor, src: &str) -> (TokKind, String) {
    let start = c.pos;
    let radix_prefixed = c.peek() == Some(b'0')
        && matches!(
            c.peek_at(1),
            Some(b'x') | Some(b'X') | Some(b'o') | Some(b'O') | Some(b'b') | Some(b'B')
        );
    // The main run: digits, `_`, and alphanumeric suffix characters.
    while c.peek().is_some_and(is_ident_continue) {
        c.bump();
    }
    let mut is_float = false;
    // A decimal point followed by a digit (so `1..5` and `1.max()` stay
    // integers).
    if !radix_prefixed && c.peek() == Some(b'.') && c.peek_at(1).is_some_and(|b| b.is_ascii_digit())
    {
        is_float = true;
        c.bump();
        while c.peek().is_some_and(is_ident_continue) {
            c.bump();
        }
    }
    // Exponent sign: `1e-3` / `2.5E+10` leave the run at `-`/`+`.
    if c.peek() == Some(b'-') || c.peek() == Some(b'+') {
        let prev = src.as_bytes()[c.pos - 1];
        if (prev == b'e' || prev == b'E') && !radix_prefixed {
            is_float = true;
            c.bump();
            while c.peek().is_some_and(is_ident_continue) {
                c.bump();
            }
        }
    }
    let text = &src[start..c.pos];
    if !radix_prefixed && (text.ends_with("f32") || text.ends_with("f64")) {
        is_float = true;
    }
    if !radix_prefixed && !is_float {
        // `2e9` style exponents without a sign live inside the ident run.
        let body = text.trim_end_matches(|ch: char| ch == 'u' || ch.is_ascii_digit());
        if body.contains('e') || body.contains('E') {
            let mantissa_exp = text.trim_end_matches(|ch: char| ch.is_ascii_digit() || ch == '_');
            if (mantissa_exp.ends_with('e') || mantissa_exp.ends_with('E'))
                && text.len() > mantissa_exp.len()
            {
                is_float = true;
            }
        }
    }
    let kind = if is_float {
        TokKind::Float
    } else {
        TokKind::Int
    };
    (kind, text.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src)
            .toks
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let t = texts("let x: u32 = y;");
        assert_eq!(t[0], (TokKind::Ident, "let".into()));
        assert_eq!(t[2], (TokKind::Punct, ":".into()));
    }

    #[test]
    fn strings_hide_their_contents() {
        let l = lex(r#"let s = "Instant::now() // not a comment";"#);
        assert!(l.toks.iter().all(|t| t.text != "Instant"));
        assert!(l.comments.is_empty());
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_and_hashes() {
        let l = lex("let s = r#\"quote \" inside\"#; let t = r\"x\"; let u = b\"y\";");
        assert_eq!(l.toks.iter().filter(|t| t.kind == TokKind::Str).count(), 3);
    }

    #[test]
    fn raw_identifier_is_not_a_string() {
        let l = lex("let r#type = 1;");
        assert!(l.toks.iter().any(|t| t.text == "type"));
    }

    #[test]
    fn nested_block_comments() {
        let l = lex("/* outer /* inner */ still outer */ fn x() {}");
        assert_eq!(l.comments.len(), 1);
        assert!(l.comments[0].text.contains("inner"));
        assert_eq!(l.toks[0].text, "fn");
    }

    #[test]
    fn char_vs_lifetime() {
        let l = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes = l
            .toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .count();
        let chars = l.toks.iter().filter(|t| t.kind == TokKind::Char).count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 2);
    }

    #[test]
    fn float_vs_range_vs_method() {
        let f = |src: &str| {
            lex(src)
                .toks
                .iter()
                .filter(|t| t.kind == TokKind::Float)
                .count()
        };
        assert_eq!(f("let x = 1.5;"), 1);
        assert_eq!(f("let x = 1..5;"), 0);
        assert_eq!(f("let x = 1.max(2);"), 0);
        assert_eq!(f("let x = 2e9;"), 1);
        assert_eq!(f("let x = 1e-3;"), 1);
        assert_eq!(f("let x = 3f64;"), 1);
        assert_eq!(f("let x = 0xep8;"), 0); // hex digits never float
        assert_eq!(f("let x = 1_000;"), 0);
    }

    #[test]
    fn trailing_comment_flag() {
        let l = lex("let x = 1; // trailing\n// leading\nlet y = 2;");
        assert!(l.comments[0].trailing);
        assert!(!l.comments[1].trailing);
    }

    #[test]
    fn positions_are_one_based() {
        let l = lex("a\n  b");
        assert_eq!((l.toks[0].line, l.toks[0].col), (1, 1));
        assert_eq!((l.toks[1].line, l.toks[1].col), (2, 3));
    }
}
