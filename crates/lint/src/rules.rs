//! The rule set. Each rule is a pure function over one file's token
//! stream; scoping (which crates, test exemptions, allowlists) is part
//! of the rule's definition and documented in `docs/lint.md`.

use crate::lexer::{Tok, TokKind};
use crate::{Code, Config, Diagnostic, FileCtx};

/// Runs every rule over one file.
pub fn run_all(ctx: &FileCtx, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    nab001_wall_clock(ctx, cfg, diags);
    nab002_hash_collections(ctx, cfg, diags);
    nab003_panics(ctx, diags);
    nab004_unsafe(ctx, cfg, diags);
    nab005_floats(ctx, cfg, diags);
    nab006_nondeterministic_identity(ctx, diags);
}

fn push(diags: &mut Vec<Diagnostic>, ctx: &FileCtx, code: Code, t: &Tok, message: String) {
    diags.push(Diagnostic {
        code,
        path: ctx.rel.clone(),
        line: t.line,
        col: t.col,
        message,
    });
}

/// Does the token sequence starting at `i` spell `texts` exactly?
fn seq(toks: &[Tok], i: usize, texts: &[&str]) -> bool {
    toks.len() - i >= texts.len()
        && texts
            .iter()
            .enumerate()
            .all(|(k, s)| toks[i + k].text == *s)
}

/// Is this crate in the canonical-JSON set? Root-crate files count when
/// `"."` is configured.
fn in_canonical_crate(ctx: &FileCtx, cfg: &Config) -> bool {
    match &ctx.crate_name {
        Some(name) => cfg.canonical_crates.iter().any(|c| c == name),
        None => cfg.canonical_crates.iter().any(|c| c == "."),
    }
}

/// NAB001 — wall-clock reads (`Instant::now`, `SystemTime::now`) outside
/// the clock whitelist. Wall time observed anywhere else can leak into
/// scheduling or output and break cross-run byte-identity; every read
/// must route through `nab_obs::clock`. Test code is exempt (tests may
/// time themselves).
fn nab001_wall_clock(ctx: &FileCtx, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    if cfg.clock_files.contains(&ctx.rel) || ctx.is_test_file {
        return;
    }
    let toks = &ctx.lexed.toks;
    for i in 0..toks.len() {
        if ctx.in_test(toks[i].line) {
            continue;
        }
        for clock in ["Instant", "SystemTime"] {
            if seq(toks, i, &[clock, ":", ":", "now"]) {
                push(
                    diags,
                    ctx,
                    Code::Nab001,
                    &toks[i],
                    format!(
                        "wall-clock read `{clock}::now` outside the clock whitelist; \
                         route it through `nab_obs::clock`"
                    ),
                );
            }
        }
    }
}

/// NAB002 — `HashMap`/`HashSet` in crates that emit canonical JSON.
/// Hash iteration order is randomized per process, so any hash-ordered
/// collection that feeds serialization (or any fold over one) silently
/// breaks byte-identity. Use `BTreeMap`/`BTreeSet`, or annotate the
/// site with a reason proving its iteration order never reaches output.
fn nab002_hash_collections(ctx: &FileCtx, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    if !in_canonical_crate(ctx, cfg) || ctx.is_test_file {
        return;
    }
    for t in &ctx.lexed.toks {
        if t.kind == TokKind::Ident
            && (t.text == "HashMap" || t.text == "HashSet")
            && !ctx.in_test(t.line)
        {
            push(
                diags,
                ctx,
                Code::Nab002,
                t,
                format!(
                    "`{}` in a canonical-JSON crate: hash iteration order is \
                     nondeterministic; use the BTree equivalent or annotate why \
                     ordering never reaches serialized output",
                    t.text
                ),
            );
        }
    }
}

/// NAB003 — `unwrap`/`expect`/`panic!`/`unreachable!`/`todo!`/
/// `unimplemented!` in non-test library code. A panic inside the engine
/// aborts a whole sweep job (and before the catch_unwind hardening, the
/// whole sweep); library paths must propagate `NabError`/`Result`
/// instead. Tests, benches, examples, and binary targets (which own
/// their exit) are exempt.
fn nab003_panics(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if ctx.is_test_file || ctx.is_bin {
        return;
    }
    let toks = &ctx.lexed.toks;
    for i in 0..toks.len() {
        if toks[i].kind != TokKind::Ident || ctx.in_test(toks[i].line) {
            continue;
        }
        let t = &toks[i];
        let method_call = |name: &str| {
            t.text == name
                && i > 0
                && toks[i - 1].text == "."
                && toks.get(i + 1).is_some_and(|n| n.text == "(")
        };
        if method_call("unwrap") || method_call("expect") {
            push(
                diags,
                ctx,
                Code::Nab003,
                t,
                format!(
                    "`.{}()` in library code: propagate the error (`NabError`/`Result`) \
                     or annotate why this cannot fail",
                    t.text
                ),
            );
        }
        let bang_macro = matches!(
            t.text.as_str(),
            "panic" | "unreachable" | "todo" | "unimplemented"
        ) && toks.get(i + 1).is_some_and(|n| n.text == "!");
        if bang_macro {
            push(
                diags,
                ctx,
                Code::Nab003,
                t,
                format!(
                    "`{}!` in library code: propagate the error or annotate why \
                     this site is unreachable",
                    t.text
                ),
            );
        }
    }
}

/// NAB004 — `unsafe` outside the audited allowlist, or inside it without
/// a `SAFETY:` comment in the contiguous comment/attribute block directly
/// above it (or on the same line). The workspace confines `unsafe` to the
/// SIMD tier (`crates/gf/src/simd.rs`, `kernel.rs`); every block must
/// state its proof obligation where the reviewer reads it. Applies to all
/// code, tests included.
fn nab004_unsafe(ctx: &FileCtx, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    let allowed_file = cfg.unsafe_files.contains(&ctx.rel);
    for t in &ctx.lexed.toks {
        if t.kind != TokKind::Ident || t.text != "unsafe" {
            continue;
        }
        if !allowed_file {
            push(
                diags,
                ctx,
                Code::Nab004,
                t,
                "`unsafe` outside the audited allowlist (crates/gf/src/{simd,kernel}.rs)"
                    .to_string(),
            );
            continue;
        }
        // Same line, or the contiguous run of comment/attribute lines
        // immediately above (a blank or code line ends the run).
        let mut justified = ctx.line_text(t.line).contains("SAFETY:");
        let mut line = t.line;
        while !justified && line > 1 {
            line -= 1;
            let text = ctx.line_text(line).trim_start();
            if text.starts_with("//") || text.starts_with("#[") || text.starts_with("#![") {
                justified = text.contains("SAFETY:");
            } else {
                break;
            }
        }
        if !justified {
            push(
                diags,
                ctx,
                Code::Nab004,
                t,
                "`unsafe` without a `// SAFETY:` comment in the three preceding lines".to_string(),
            );
        }
    }
}

/// NAB005 — float *creation* (literals, `as f64`/`as f32` casts) in the
/// files that assemble canonical JSON, outside the audited formatter.
/// Floats that reach canonical serialization must flow through
/// `Json::F64` (whose formatter is deterministic and NaN-normalizing); a
/// float minted in the serialization layer on a line that never mentions
/// `F64(` is presumed to feed output by a path the formatter cannot
/// audit, and needs an annotation arguing its value is a deterministic
/// function of the inputs.
fn nab005_floats(ctx: &FileCtx, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    if !cfg.float_audit_files.contains(&ctx.rel)
        || ctx.is_test_file
        || cfg.float_formatter_files.contains(&ctx.rel)
    {
        return;
    }
    let toks = &ctx.lexed.toks;
    for i in 0..toks.len() {
        let t = &toks[i];
        if ctx.in_test(t.line) || ctx.line_text(t.line).contains("F64(") {
            continue;
        }
        let float_cast = t.text == "as"
            && toks
                .get(i + 1)
                .is_some_and(|n| n.text == "f64" || n.text == "f32");
        if t.kind == TokKind::Float || float_cast {
            push(
                diags,
                ctx,
                Code::Nab005,
                t,
                format!(
                    "float {} in a canonical-JSON crate outside the audited \
                     `Json::F64` path; floats feeding canonical serialization \
                     must be deterministic and formatter-audited",
                    if float_cast { "cast" } else { "literal" }
                ),
            );
        }
    }
}

/// NAB006 — thread-identity (`thread::current`) or pointer-as-key
/// (`as_ptr()/as *const … as usize`) patterns in non-test code. Thread
/// ids and addresses differ run to run; using either as a key, seed, or
/// tiebreaker makes results depend on scheduling and allocation.
fn nab006_nondeterministic_identity(ctx: &FileCtx, diags: &mut Vec<Diagnostic>) {
    if ctx.is_test_file {
        return;
    }
    let toks = &ctx.lexed.toks;
    for i in 0..toks.len() {
        if ctx.in_test(toks[i].line) {
            continue;
        }
        if seq(toks, i, &["thread", ":", ":", "current"]) {
            push(
                diags,
                ctx,
                Code::Nab006,
                &toks[i],
                "`thread::current` in a deterministic path: thread identity \
                 varies across runs and schedulers"
                    .to_string(),
            );
        }
        // Pointer-as-integer on one line: `… as usize` preceded on the
        // same line by a pointer producer (`as *const/mut`, `as_ptr`).
        if toks[i].text == "usize" && i > 0 && toks[i - 1].text == "as" {
            let line = toks[i].line;
            let mut j = i - 1;
            let mut ptr_source = false;
            loop {
                if toks[j].line != line {
                    break;
                }
                if toks[j].text == "as_ptr"
                    || toks[j].text == "as_mut_ptr"
                    || (toks[j].text == "as"
                        && toks.get(j + 1).is_some_and(|n| n.text == "*")
                        && toks
                            .get(j + 2)
                            .is_some_and(|n| n.text == "const" || n.text == "mut"))
                {
                    ptr_source = true;
                    break;
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            if ptr_source {
                push(
                    diags,
                    ctx,
                    Code::Nab006,
                    &toks[i - 1],
                    "pointer cast to `usize` in a deterministic path: addresses \
                     vary across runs; derive keys from content, not identity"
                        .to_string(),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::{lint_file, Code, Config};

    fn codes(rel: &str, src: &str) -> Vec<Code> {
        lint_file(rel, src, &Config::workspace_default())
            .into_iter()
            .map(|d| d.code)
            .collect()
    }

    #[test]
    fn nab001_scoping() {
        let src = "fn f() { let t = std::time::Instant::now(); }\n";
        assert_eq!(codes("crates/core/src/engine.rs", src), vec![Code::Nab001]);
        assert_eq!(codes("crates/obs/src/clock.rs", src), vec![]);
        assert_eq!(codes("crates/core/tests/t.rs", src), vec![]);
        let st = "fn f() { let t = SystemTime::now(); }\n";
        assert_eq!(codes("crates/net/src/lib.rs", st), vec![Code::Nab001]);
    }

    #[test]
    fn nab001_ignores_strings_and_comments() {
        let src = "// Instant::now is discussed here\nfn f() { let s = \"Instant::now\"; }\n";
        assert_eq!(codes("crates/core/src/engine.rs", src), vec![]);
    }

    #[test]
    fn nab002_only_canonical_crates() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(codes("crates/core/src/plan.rs", src), vec![Code::Nab002]);
        assert_eq!(
            codes("crates/scenario/src/sweep.rs", src),
            vec![Code::Nab002]
        );
        assert_eq!(codes("crates/gf/src/matrix.rs", src), vec![]);
    }

    #[test]
    fn nab003_scoping() {
        let src = "fn f(x: Option<u8>) { x.unwrap(); }\n";
        assert_eq!(codes("crates/core/src/plan.rs", src), vec![Code::Nab003]);
        assert_eq!(codes("src/bin/nab-sim.rs", src), vec![]);
        assert_eq!(codes("crates/core/tests/t.rs", src), vec![]);
        let test_mod = "#[cfg(test)]\nmod tests {\n  fn f(x: Option<u8>) { x.unwrap(); }\n}\n";
        assert_eq!(codes("crates/core/src/plan.rs", test_mod), vec![]);
        let mac = "fn f() { panic!(\"boom\"); }\n";
        assert_eq!(codes("crates/core/src/plan.rs", mac), vec![Code::Nab003]);
        // Free fn named unwrap, field access, and `expect` without a
        // call are not method calls.
        let not_call = "fn unwrap() {} fn g() { let expect = 3; }\n";
        assert_eq!(codes("crates/core/src/plan.rs", not_call), vec![]);
    }

    #[test]
    fn nab004_allowlist_and_safety() {
        let bare = "fn f() { unsafe { work() } }\n";
        assert_eq!(codes("crates/core/src/engine.rs", bare), vec![Code::Nab004]);
        assert_eq!(codes("crates/gf/src/simd.rs", bare), vec![Code::Nab004]);
        let ok = "fn f() {\n    // SAFETY: the feature was detected at runtime.\n    unsafe { work() }\n}\n";
        assert_eq!(codes("crates/gf/src/simd.rs", ok), vec![]);
        assert_eq!(codes("crates/core/src/engine.rs", ok), vec![Code::Nab004]);
        let far = "fn f() {\n    // SAFETY: too far away.\n\n\n\n    unsafe { work() }\n}\n";
        assert_eq!(codes("crates/gf/src/simd.rs", far), vec![Code::Nab004]);
    }

    #[test]
    fn nab005_floats() {
        let lit = "fn f() -> f64 { 1.5 }\n";
        assert_eq!(
            codes("crates/scenario/src/report.rs", lit),
            vec![Code::Nab005]
        );
        assert_eq!(codes("crates/scenario/src/json.rs", lit), vec![]);
        assert_eq!(codes("crates/gf/src/field.rs", lit), vec![]);
        let cast = "fn f(n: u64) -> f64 { n as f64 }\n";
        assert_eq!(
            codes("crates/scenario/src/report.rs", cast),
            vec![Code::Nab005]
        );
        let audited = "fn f(n: u64) -> Json { Json::F64(n as f64) }\n";
        assert_eq!(codes("crates/scenario/src/report.rs", audited), vec![]);
        let int = "fn f() { let x = 1..5; let y = 2; }\n";
        assert_eq!(codes("crates/scenario/src/report.rs", int), vec![]);
    }

    #[test]
    fn nab006_identity() {
        let thr = "fn f() { let id = std::thread::current().id(); }\n";
        assert_eq!(codes("crates/core/src/engine.rs", thr), vec![Code::Nab006]);
        let ptr = "fn f(v: &[u8]) { let k = v.as_ptr() as usize; }\n";
        assert_eq!(codes("crates/core/src/engine.rs", ptr), vec![Code::Nab006]);
        let ptr2 = "fn f(v: &V) { let k = v as *const V as usize; }\n";
        assert_eq!(codes("crates/core/src/engine.rs", ptr2), vec![Code::Nab006]);
        // Plain integer casts and pointer casts without the usize round
        // trip stay clean.
        let ok =
            "fn f(n: u64, v: &[u8]) { let a = n as usize; let p = v.as_ptr() as *const u8; }\n";
        assert_eq!(codes("crates/core/src/engine.rs", ok), vec![]);
    }
}
