//! Property tests pinning down the scenario engine's determinism
//! guarantee: a `.scenario` document with a fixed seed produces
//! byte-identical `SweepReport` JSON — run-to-run and for 1 vs. N worker
//! threads.

use nab_obs::trace::EventKind;
use nab_obs::BufferSink;
use nab_scenario::{parse_str, run_sweep, run_sweep_with_options, SweepOptions};
use proptest::prelude::*;
use std::sync::Arc;

/// Builds a random-but-valid `.scenario` document from drawn parameters.
#[allow(clippy::too_many_arguments)]
fn scenario_text(
    topo: usize,
    adv: usize,
    faults: usize,
    q: usize,
    symbols: usize,
    seeds: u64,
    seed0: u64,
    streams: usize,
) -> String {
    // All families here are valid for n ∈ {4,5} with f = 1.
    let topology = ["complete:$n:$cap", "hetero:$n:1:$cap", "fig1a", "fig2a"][topo % 4];
    let adversary = [
        "honest",
        "corruptor",
        "liar",
        "false-alarm",
        "garbler",
        "random:0.4",
    ][adv % 6];
    let faults = ["none", "fixed:2", "rotating:1", "worst-case:1:3"][faults % 4];
    // fig1a/fig2a ignore $n/$cap; grid axes still expand.
    format!(
        "name = prop\n\
         topology = {topology}\n\
         adversary = {adversary}\n\
         faults = {faults}\n\
         q = {q}\n\
         streams = {streams}\n\
         n = 4,5\n\
         cap = 2\n\
         f = 1\n\
         symbols = {symbols}\n\
         seeds = {seeds}\n\
         seed0 = {seed0}\n"
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Same document, same seed → byte-identical JSON, twice in a row and
    /// under 1 vs. 4 worker threads.
    #[test]
    fn sweep_json_is_thread_count_invariant(
        topo in 0usize..4,
        adv in 0usize..6,
        faults in 0usize..4,
        q in 1usize..4,
        symbols in 4usize..17,
        seeds in 1u64..3,
        seed0 in any::<u64>(),
        streams in 1usize..3,
    ) {
        let text = scenario_text(topo, adv, faults, q, symbols, seeds, seed0, streams);
        let spec = parse_str(&text).unwrap();

        let single = run_sweep(&spec, 1).unwrap();
        let single_again = run_sweep(&spec, 1).unwrap();
        let parallel = run_sweep(&spec, 4).unwrap();

        prop_assert_eq!(
            single.to_json(),
            single_again.to_json(),
            "run-to-run determinism"
        );
        prop_assert_eq!(
            single.to_json(),
            parallel.to_json(),
            "thread-count invariance"
        );
        prop_assert_eq!(single.to_json_pretty(), parallel.to_json_pretty());
    }

    /// The plan cache is a pure wall-clock optimization: canonical
    /// `SweepReport` JSON is byte-identical with the cache enabled vs.
    /// disabled, at 1 and at 4 worker threads, and against an externally
    /// pre-warmed cache.
    #[test]
    fn sweep_json_is_plan_cache_invariant(
        topo in 0usize..4,
        adv in 0usize..6,
        faults in 0usize..4,
        q in 1usize..4,
        symbols in 4usize..17,
        seeds in 1u64..3,
        seed0 in any::<u64>(),
        streams in 1usize..3,
    ) {
        let text = scenario_text(topo, adv, faults, q, symbols, seeds, seed0, streams);
        let mut spec = parse_str(&text).unwrap();
        spec.plan_cache = true;
        let cached_single = run_sweep(&spec, 1).unwrap();
        let cached_parallel = run_sweep(&spec, 4).unwrap();
        spec.plan_cache = false;
        let cold_single = run_sweep(&spec, 1).unwrap();
        let cold_parallel = run_sweep(&spec, 4).unwrap();

        let reference = cached_single.to_json();
        prop_assert_eq!(&reference, &cold_single.to_json(), "cache on vs off");
        prop_assert_eq!(&reference, &cached_parallel.to_json(), "cached, 1 vs 4 threads");
        prop_assert_eq!(&reference, &cold_parallel.to_json(), "cold, 1 vs 4 threads");

        // A cache warmed by a previous sweep must not perturb the next.
        spec.plan_cache = true;
        let cache = nab::plan::PlanCache::new();
        let _ = nab_scenario::run_sweep_with_cache(&spec, 2, Some(&cache)).unwrap();
        let rewarmed = nab_scenario::run_sweep_with_cache(&spec, 2, Some(&cache)).unwrap();
        prop_assert_eq!(&reference, &rewarmed.to_json(), "pre-warmed external cache");
    }

    /// Event tracing is a pure observer: installing a trace sink leaves
    /// canonical JSON byte-identical, while the sink does capture the
    /// sweep's event stream.
    #[test]
    fn tracing_is_invisible_to_canonical_json(
        topo in 0usize..4,
        adv in 0usize..6,
        faults in 0usize..4,
        q in 1usize..3,
        symbols in 4usize..17,
        seed0 in any::<u64>(),
    ) {
        let text = scenario_text(topo, adv, faults, q, symbols, 1, seed0, 1);
        let spec = parse_str(&text).unwrap();
        let plain = run_sweep(&spec, 2).unwrap();
        let sink = Arc::new(BufferSink::new());
        let opts = SweepOptions {
            threads: 2,
            trace: Some(sink.clone()),
            ..SweepOptions::default()
        };
        let traced = run_sweep_with_options(&spec, &opts).unwrap();
        prop_assert_eq!(plain.to_json(), traced.to_json(), "tracing on vs off");
        let events = sink.take_sorted();
        prop_assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::SweepStart { .. })));
        prop_assert!(events.iter().any(|e| matches!(e.kind, EventKind::JobEnd)));
    }

    /// Message-level (`net = on`) execution keeps both halves of the
    /// determinism contract: with net **off** the file's `link_model` is
    /// completely inert (canonical JSON byte-identical to a spec that
    /// never mentions it), and with net **on** the sweep is byte-identical
    /// run-to-run and for 1 vs. 4 worker threads.
    #[test]
    fn net_mode_preserves_determinism(
        topo in 0usize..4,
        adv in 0usize..6,
        faults in 0usize..4,
        q in 1usize..3,
        symbols in 4usize..17,
        seed0 in any::<u64>(),
        model in 0usize..3,
    ) {
        let text = scenario_text(topo, adv, faults, q, symbols, 1, seed0, 1);
        let mut spec = parse_str(&text).unwrap();
        let base = run_sweep(&spec, 2).unwrap();
        spec.link_model = nab_net::NetSpec::parse([
            "fixed:3000000",
            "uniform:2000000:1000000+loss:0.2:2:4000000",
            "lognormal:5000000:1.5+straggler:0:1:10",
        ][model]).unwrap();
        let off = run_sweep(&spec, 2).unwrap();
        prop_assert_eq!(base.to_json(), off.to_json(), "net off: link_model is inert");

        spec.net = true;
        let single = run_sweep(&spec, 1).unwrap();
        let again = run_sweep(&spec, 1).unwrap();
        let parallel = run_sweep(&spec, 4).unwrap();
        prop_assert_eq!(single.to_json(), again.to_json(), "net on: run-to-run");
        prop_assert_eq!(single.to_json(), parallel.to_json(), "net on: 1 vs 4 threads");
    }

    /// Changing the base seed changes per-job seeds (no accidental seed
    /// collapse), while the grid shape stays fixed.
    #[test]
    fn seed0_feeds_through(seed0 in 0u64..1_000_000) {
        let text = scenario_text(0, 0, 0, 1, 8, 1, seed0, 1);
        let spec = parse_str(&text).unwrap();
        let report = run_sweep(&spec, 2).unwrap();
        prop_assert_eq!(report.jobs.len(), 2);
        prop_assert!(report.jobs[0].seed != report.jobs[1].seed);
        let other = parse_str(&scenario_text(0, 0, 0, 1, 8, 1, seed0 ^ 1, 1)).unwrap();
        let other_report = run_sweep(&other, 2).unwrap();
        prop_assert!(other_report.jobs[0].seed != report.jobs[0].seed);
    }
}

/// Latency-histogram aggregation is partition-invariant: the merged
/// distributions carry identical sample *counts* for 1 vs. 4 worker
/// threads (the nanosecond values themselves are wall-clock and vary, so
/// only the counts — which phases ran how often — are pinned).
#[test]
fn latency_histogram_counts_are_thread_invariant() {
    let text = scenario_text(0, 1, 2, 2, 8, 2, 11, 2);
    let spec = parse_str(&text).unwrap();
    let single = run_sweep(&spec, 1).unwrap();
    let parallel = run_sweep(&spec, 4).unwrap();
    for ((name, h1), (_, hn)) in single
        .aggregate
        .latency
        .phases()
        .iter()
        .zip(parallel.aggregate.latency.phases().iter())
    {
        assert_eq!(h1.count(), hn.count(), "phase {name}");
    }
    assert!(
        single.aggregate.latency.instance.count() as usize == single.aggregate.total_instances,
        "every instance lands in the instance histogram"
    );
}

/// Delivered-time histograms (net mode) are *fully* thread-invariant —
/// they record simulated nanoseconds, not wall clock, so the whole
/// distributions (not just counts) must match across worker counts.
#[test]
fn delivered_histograms_are_thread_invariant() {
    let text = scenario_text(0, 1, 2, 2, 8, 2, 11, 2);
    let mut spec = parse_str(&text).unwrap();
    spec.net = true;
    spec.link_model = nab_net::NetSpec::parse("uniform:1000000:500000+loss:0.1:2:2000000").unwrap();
    let single = run_sweep(&spec, 1).unwrap();
    let parallel = run_sweep(&spec, 4).unwrap();
    let d1 = single.aggregate.delivered.as_ref().expect("net on records");
    let dn = parallel.aggregate.delivered.as_ref().unwrap();
    assert_eq!(d1, dn, "identical distributions, not just counts");
    assert!(d1.instance.count() > 0);
}

/// The bundled scenario library must parse and stay thread-invariant on a
/// down-scaled grid (full runs are the CI smoke test's job).
#[test]
fn bundled_scenarios_parse_and_shrunk_runs_are_deterministic() {
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../scenarios");
    let mut found = 0;
    for entry in std::fs::read_dir(dir).expect("scenarios/ directory") {
        let path = entry.unwrap().path();
        if path.extension().and_then(|e| e.to_str()) != Some("scenario") {
            continue;
        }
        found += 1;
        let text = std::fs::read_to_string(&path).unwrap();
        let mut spec = parse_str(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        // Shrink the workload so this stays a unit-scale test.
        spec.q = spec.q.min(2);
        spec.seeds = spec.seeds.min(2);
        spec.symbols.truncate(1);
        spec.bounds = false;
        let a = run_sweep(&spec, 1).unwrap();
        let b = run_sweep(&spec, 3).unwrap();
        assert_eq!(a.to_json(), b.to_json(), "{}", path.display());
    }
    assert!(
        found >= 8,
        "bundled scenario library shrank to {found} files"
    );
}
