//! Declarative fault/workload scenarios and a parallel sweep runner for
//! NAB (Liang & Vaidya, PODC 2012).
//!
//! Every experiment used to be a hand-coded Rust function; this crate
//! turns "run NAB on topology X with faults Y under adversary Z across a
//! parameter grid" into *data*:
//!
//! - [`spec::ScenarioSpec`] — the declarative scenario: a parameterized
//!   [`topology::TopologyTemplate`], a [`faults::FaultSchedule`], an
//!   [`adversary::AdversarySpec`], the broadcast backend, and the
//!   workload grid (`n × cap × f × symbols × seeds`, `q` instances per
//!   job, optional interleaved streams);
//! - [`parse`] — the `.scenario` text format (see `docs/scenarios.md`
//!   for the reference and `scenarios/` for the bundled library);
//! - [`sweep`] — grid expansion into jobs and the multi-threaded runner
//!   with deterministic per-job seeding: results are bit-identical for
//!   any worker-thread count;
//! - [`report`] — per-job metrics (throughput, phase times, dispute
//!   counts vs. the `f(f+1)` budget, exposure histories, the paper's
//!   Eq. 6 / Theorem 2 bounds) aggregated into a
//!   [`report::SweepReport`];
//! - [`json`] — the hand-rolled deterministic JSON serializer behind
//!   [`report::SweepReport::to_json`].
//!
//! # Quickstart
//!
//! ```
//! use nab_scenario::parse;
//! use nab_scenario::sweep::run_sweep;
//!
//! let spec = parse::parse_str(
//!     "name = demo\n\
//!      topology = complete:$n:$cap\n\
//!      adversary = corruptor\n\
//!      faults = fixed:2\n\
//!      q = 3\n\
//!      n = 4\n\
//!      cap = 2\n\
//!      symbols = 8\n",
//! )
//! .unwrap();
//! let report = run_sweep(&spec, 2).unwrap();
//! assert!(report.aggregate.all_correct);
//! assert!(report.to_json().contains("\"scenario\":\"demo\""));
//! ```

pub mod adversary;
pub mod faults;
pub mod json;
pub mod mutations;
pub mod parse;
pub mod report;
pub mod spec;
pub mod sweep;
pub mod topology;

pub use adversary::AdversarySpec;
pub use faults::FaultSchedule;
pub use mutations::MutationSchedule;
pub use parse::{load, parse_str, ParseError};
pub use report::{Aggregate, JobMetrics, JobOutcome, PhaseLatency, SweepReport};
pub use spec::ScenarioSpec;
pub use sweep::{
    expand_jobs, run_sweep, run_sweep_with_cache, run_sweep_with_options, Job, ProgressSnapshot,
    SweepOptions,
};
pub use topology::{Tok, TopologyTemplate};
