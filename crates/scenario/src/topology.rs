//! Topology templates: parameterized graph families resolved per job.
//!
//! A scenario names a *family* (`complete:$n:$cap`), not a single graph;
//! the sweep runner substitutes each job's grid point into the template's
//! [`Tok`] parameters and materializes a concrete
//! [`DiGraph`](nab_netgraph::DiGraph). Random families (`hetero`,
//! `kconnected`) draw from the job's deterministic RNG, so the same job
//! always sees the same graph.

use nab_netgraph::{gen, DiGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One template parameter: a literal or a job-grid variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tok {
    /// A literal value.
    Lit(u64),
    /// `$n` — the job's node count.
    N,
    /// `$cap` — the job's capacity scale.
    Cap,
    /// `$f` — the job's fault bound.
    F,
    /// `2f+1` — the NAB connectivity prerequisite for the job's `f`.
    TwoFPlusOne,
}

/// The grid point a template is resolved against.
#[derive(Debug, Clone, Copy)]
pub struct ResolveCtx {
    /// Node count (`$n`).
    pub n: usize,
    /// Capacity scale (`$cap`).
    pub cap: u64,
    /// Fault bound (`$f`, `2f+1`).
    pub f: usize,
    /// Seed for random families.
    pub seed: u64,
}

impl Tok {
    /// Resolves against a grid point.
    pub fn resolve(self, ctx: &ResolveCtx) -> u64 {
        match self {
            Tok::Lit(x) => x,
            Tok::N => ctx.n as u64,
            Tok::Cap => ctx.cap,
            Tok::F => ctx.f as u64,
            Tok::TwoFPlusOne => 2 * ctx.f as u64 + 1,
        }
    }

    /// Parses one template token: a number, `$n`, `$cap`, `$f`, or `2f+1`.
    pub fn parse(s: &str) -> Result<Tok, String> {
        match s {
            "$n" => Ok(Tok::N),
            "$cap" => Ok(Tok::Cap),
            "$f" => Ok(Tok::F),
            "2f+1" => Ok(Tok::TwoFPlusOne),
            _ => s.parse::<u64>().map(Tok::Lit).map_err(|_| {
                format!("bad parameter {s:?}: expected a number, $n, $cap, $f, or 2f+1")
            }),
        }
    }
}

/// A parameterized topology family.
#[derive(Debug, Clone, PartialEq)]
pub enum TopologyTemplate {
    /// The paper's Figure 1(a) worked example.
    Figure1a,
    /// Figure 1(a) after the (2,3) dispute.
    Figure1b,
    /// The paper's Figure 2(a) worked example.
    Figure2a,
    /// Figure 2(a) plus the minimum reverse unit links (4→1, 3→2 in paper
    /// numbering) that make the digraph strongly connected — the raw
    /// figure has no path back to the source, so only this closure can
    /// host an engine run. The closure preserves `γ = 2` (it adds no
    /// in-capacity at the binding node 3).
    Figure2aClosed,
    /// Complete digraph `complete:N:CAP`.
    Complete {
        /// Node count.
        n: Tok,
        /// Uniform capacity.
        cap: Tok,
    },
    /// Complete digraph, capacities uniform in `LO..=HI`: `hetero:N:LO:HI`.
    Hetero {
        /// Node count.
        n: Tok,
        /// Minimum capacity.
        lo: Tok,
        /// Maximum capacity.
        hi: Tok,
    },
    /// Bidirectional ring `ring:N:CAP`.
    Ring {
        /// Node count.
        n: Tok,
        /// Uniform capacity.
        cap: Tok,
    },
    /// Two cliques joined by bridges: `barbell:HALF:CAP:BRIDGES:BCAP`.
    Barbell {
        /// Nodes per cluster.
        half: Tok,
        /// Intra-cluster capacity.
        cluster_cap: Tok,
        /// Bridge count.
        bridges: Tok,
        /// Per-bridge capacity.
        bridge_cap: Tok,
    },
    /// Harary circulant `circulant:N:M:CAP` (connectivity exactly `2M`).
    Circulant {
        /// Node count.
        n: Tok,
        /// Chord half-width.
        m: Tok,
        /// Uniform capacity.
        cap: Tok,
    },
    /// Three-tier fat-tree `fattree:K:CAP` (`K` even; `(K/2)²` cores,
    /// `K` pods of `K/2` aggregation + `K/2` edge switches — the
    /// datacenter Clos fabric, `5K²/4` nodes total).
    FatTree {
        /// Pod/port parameter (even, ≥ 2).
        k: Tok,
        /// Uniform link capacity.
        cap: Tok,
    },
    /// 2-D wraparound torus `torus:ROWS:COLS:CAP` (each node links to its
    /// four grid neighbors; vertex connectivity 4).
    Torus {
        /// Grid rows (≥ 3).
        rows: Tok,
        /// Grid columns (≥ 3).
        cols: Tok,
        /// Uniform link capacity.
        cap: Tok,
    },
    /// Dragonfly `dragonfly:GROUPS:ROUTERS:CAP`: fully connected groups
    /// of `ROUTERS` routers, one global link per group pair.
    Dragonfly {
        /// Number of groups (≥ 2).
        groups: Tok,
        /// Routers per group (≥ 2).
        routers: Tok,
        /// Uniform link capacity.
        cap: Tok,
    },
    /// Random-regular-ish expander `expander:N:DEG:MAXCAP`: a
    /// bidirectional ring plus random chords to degree ≈ `DEG`, caps
    /// uniform in `1..=MAXCAP`.
    Expander {
        /// Node count (≥ 3).
        n: Tok,
        /// Target degree (≥ 2).
        degree: Tok,
        /// Maximum link capacity.
        max_cap: Tok,
    },
    /// Random guaranteed-`K`-connected family
    /// `kconnected:N:K:MAXCAP:EXTRA%` (see
    /// [`gen::random_k_connected`]).
    KConnected {
        /// Node count.
        n: Tok,
        /// Connectivity guarantee (use `2f+1` for NAB's prerequisite).
        k: Tok,
        /// Maximum link capacity.
        max_cap: Tok,
        /// Extra-chord probability in percent (0–100).
        extra_pct: Tok,
    },
}

impl TopologyTemplate {
    /// Parses a topology spec like `complete:$n:$cap` or `fig1a`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        let tok = |i: usize| -> Result<Tok, String> {
            parts
                .get(i)
                .ok_or_else(|| format!("topology {spec:?}: missing parameter {i}"))
                .and_then(|s| Tok::parse(s))
        };
        let arity = |want: usize| -> Result<(), String> {
            if parts.len() == want + 1 {
                Ok(())
            } else {
                Err(format!(
                    "topology {spec:?}: {} takes {want} parameter(s), got {}",
                    parts[0],
                    parts.len() - 1
                ))
            }
        };
        match parts[0] {
            "fig1a" => arity(0).map(|_| TopologyTemplate::Figure1a),
            "fig1b" => arity(0).map(|_| TopologyTemplate::Figure1b),
            "fig2a" => arity(0).map(|_| TopologyTemplate::Figure2a),
            "fig2a-closed" => arity(0).map(|_| TopologyTemplate::Figure2aClosed),
            "complete" => {
                arity(2)?;
                Ok(TopologyTemplate::Complete {
                    n: tok(1)?,
                    cap: tok(2)?,
                })
            }
            "hetero" => {
                arity(3)?;
                Ok(TopologyTemplate::Hetero {
                    n: tok(1)?,
                    lo: tok(2)?,
                    hi: tok(3)?,
                })
            }
            "ring" => {
                arity(2)?;
                Ok(TopologyTemplate::Ring {
                    n: tok(1)?,
                    cap: tok(2)?,
                })
            }
            "barbell" => {
                arity(4)?;
                Ok(TopologyTemplate::Barbell {
                    half: tok(1)?,
                    cluster_cap: tok(2)?,
                    bridges: tok(3)?,
                    bridge_cap: tok(4)?,
                })
            }
            "circulant" => {
                arity(3)?;
                Ok(TopologyTemplate::Circulant {
                    n: tok(1)?,
                    m: tok(2)?,
                    cap: tok(3)?,
                })
            }
            "kconnected" => {
                arity(4)?;
                Ok(TopologyTemplate::KConnected {
                    n: tok(1)?,
                    k: tok(2)?,
                    max_cap: tok(3)?,
                    extra_pct: tok(4)?,
                })
            }
            "fattree" => {
                arity(2)?;
                Ok(TopologyTemplate::FatTree {
                    k: tok(1)?,
                    cap: tok(2)?,
                })
            }
            "torus" => {
                arity(3)?;
                Ok(TopologyTemplate::Torus {
                    rows: tok(1)?,
                    cols: tok(2)?,
                    cap: tok(3)?,
                })
            }
            "dragonfly" => {
                arity(3)?;
                Ok(TopologyTemplate::Dragonfly {
                    groups: tok(1)?,
                    routers: tok(2)?,
                    cap: tok(3)?,
                })
            }
            "expander" => {
                arity(3)?;
                Ok(TopologyTemplate::Expander {
                    n: tok(1)?,
                    degree: tok(2)?,
                    max_cap: tok(3)?,
                })
            }
            other => Err(format!(
                "unknown topology {other:?} (known: fig1a, fig1b, fig2a, fig2a-closed, \
                 complete, hetero, ring, barbell, circulant, kconnected, fattree, torus, \
                 dragonfly, expander)"
            )),
        }
    }

    /// The canonical spec string this template parses from.
    pub fn spec_string(&self) -> String {
        fn t(tok: &Tok) -> String {
            match tok {
                Tok::Lit(x) => x.to_string(),
                Tok::N => "$n".into(),
                Tok::Cap => "$cap".into(),
                Tok::F => "$f".into(),
                Tok::TwoFPlusOne => "2f+1".into(),
            }
        }
        match self {
            TopologyTemplate::Figure1a => "fig1a".into(),
            TopologyTemplate::Figure1b => "fig1b".into(),
            TopologyTemplate::Figure2a => "fig2a".into(),
            TopologyTemplate::Figure2aClosed => "fig2a-closed".into(),
            TopologyTemplate::Complete { n, cap } => format!("complete:{}:{}", t(n), t(cap)),
            TopologyTemplate::Hetero { n, lo, hi } => {
                format!("hetero:{}:{}:{}", t(n), t(lo), t(hi))
            }
            TopologyTemplate::Ring { n, cap } => format!("ring:{}:{}", t(n), t(cap)),
            TopologyTemplate::Barbell {
                half,
                cluster_cap,
                bridges,
                bridge_cap,
            } => format!(
                "barbell:{}:{}:{}:{}",
                t(half),
                t(cluster_cap),
                t(bridges),
                t(bridge_cap)
            ),
            TopologyTemplate::Circulant { n, m, cap } => {
                format!("circulant:{}:{}:{}", t(n), t(m), t(cap))
            }
            TopologyTemplate::KConnected {
                n,
                k,
                max_cap,
                extra_pct,
            } => format!(
                "kconnected:{}:{}:{}:{}",
                t(n),
                t(k),
                t(max_cap),
                t(extra_pct)
            ),
            TopologyTemplate::FatTree { k, cap } => format!("fattree:{}:{}", t(k), t(cap)),
            TopologyTemplate::Torus { rows, cols, cap } => {
                format!("torus:{}:{}:{}", t(rows), t(cols), t(cap))
            }
            TopologyTemplate::Dragonfly {
                groups,
                routers,
                cap,
            } => format!("dragonfly:{}:{}:{}", t(groups), t(routers), t(cap)),
            TopologyTemplate::Expander { n, degree, max_cap } => {
                format!("expander:{}:{}:{}", t(n), t(degree), t(max_cap))
            }
        }
    }

    /// Materializes the concrete graph for one grid point.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated family constraint (instead of
    /// panicking) so a sweep can record the grid point as rejected.
    pub fn build(&self, ctx: &ResolveCtx) -> Result<DiGraph, String> {
        let mut rng = StdRng::seed_from_u64(ctx.seed ^ 0x746F_706F_6C6F_6779); // "topology"
        match self {
            TopologyTemplate::Figure1a => Ok(gen::figure_1a()),
            TopologyTemplate::Figure1b => Ok(gen::figure_1b()),
            TopologyTemplate::Figure2a => Ok(gen::figure_2a()),
            TopologyTemplate::Figure2aClosed => {
                let mut g = gen::figure_2a();
                g.add_edge(3, 0, 1);
                g.add_edge(2, 1, 1);
                Ok(g)
            }
            TopologyTemplate::Complete { n, cap } => {
                let (n, cap) = (n.resolve(ctx) as usize, cap.resolve(ctx));
                if n < 2 || cap == 0 {
                    return Err(format!(
                        "complete: need n ≥ 2 and cap ≥ 1, got n={n} cap={cap}"
                    ));
                }
                Ok(gen::complete(n, cap))
            }
            TopologyTemplate::Hetero { n, lo, hi } => {
                let (n, lo, hi) = (n.resolve(ctx) as usize, lo.resolve(ctx), hi.resolve(ctx));
                if n < 2 || lo == 0 || lo > hi {
                    return Err(format!(
                        "hetero: need n ≥ 2 and 1 ≤ lo ≤ hi, got n={n} lo={lo} hi={hi}"
                    ));
                }
                Ok(gen::complete_heterogeneous(n, lo, hi, &mut rng))
            }
            TopologyTemplate::Ring { n, cap } => {
                let (n, cap) = (n.resolve(ctx) as usize, cap.resolve(ctx));
                if n < 3 || cap == 0 {
                    return Err(format!("ring: need n ≥ 3 and cap ≥ 1, got n={n} cap={cap}"));
                }
                Ok(gen::ring(n, cap))
            }
            TopologyTemplate::Barbell {
                half,
                cluster_cap,
                bridges,
                bridge_cap,
            } => {
                let half = half.resolve(ctx) as usize;
                let cluster_cap = cluster_cap.resolve(ctx);
                let bridges = bridges.resolve(ctx) as usize;
                let bridge_cap = bridge_cap.resolve(ctx);
                if half < 2 || cluster_cap == 0 || bridge_cap == 0 || bridges == 0 {
                    return Err(format!(
                        "barbell: need half ≥ 2, bridges ≥ 1, caps ≥ 1; got \
                         half={half} cluster_cap={cluster_cap} bridges={bridges} \
                         bridge_cap={bridge_cap}"
                    ));
                }
                if bridges > half {
                    return Err(format!("barbell: bridges {bridges} > half {half}"));
                }
                Ok(gen::barbell(half, cluster_cap, bridges, bridge_cap))
            }
            TopologyTemplate::Circulant { n, m, cap } => {
                let (n, m, cap) = (
                    n.resolve(ctx) as usize,
                    m.resolve(ctx) as usize,
                    cap.resolve(ctx),
                );
                if m < 1 || 2 * m >= n || cap == 0 {
                    return Err(format!(
                        "circulant: need 1 ≤ m and 2m < n and cap ≥ 1, got n={n} m={m} cap={cap}"
                    ));
                }
                Ok(gen::circulant(n, m, cap))
            }
            TopologyTemplate::KConnected {
                n,
                k,
                max_cap,
                extra_pct,
            } => {
                let nn = n.resolve(ctx) as usize;
                let k = k.resolve(ctx) as usize;
                let max_cap = max_cap.resolve(ctx);
                let extra_pct = extra_pct.resolve(ctx);
                if k < 1 || 2 * k.div_ceil(2) >= nn || max_cap == 0 || extra_pct > 100 {
                    return Err(format!(
                        "kconnected: need 1 ≤ k, 2⌈k/2⌉ < n, max_cap ≥ 1, extra ≤ 100; \
                         got n={nn} k={k} max_cap={max_cap} extra={extra_pct}%"
                    ));
                }
                Ok(gen::random_k_connected(
                    nn,
                    k,
                    max_cap,
                    extra_pct as f64 / 100.0,
                    &mut rng,
                ))
            }
            TopologyTemplate::FatTree { k, cap } => {
                let (k, cap) = (k.resolve(ctx) as usize, cap.resolve(ctx));
                if k < 2 || k % 2 != 0 || cap == 0 {
                    return Err(format!(
                        "fattree: need even k ≥ 2 and cap ≥ 1, got k={k} cap={cap}"
                    ));
                }
                Ok(gen::fat_tree(k, cap))
            }
            TopologyTemplate::Torus { rows, cols, cap } => {
                let (rows, cols, cap) = (
                    rows.resolve(ctx) as usize,
                    cols.resolve(ctx) as usize,
                    cap.resolve(ctx),
                );
                if rows < 3 || cols < 3 || cap == 0 {
                    return Err(format!(
                        "torus: need rows ≥ 3, cols ≥ 3, cap ≥ 1; got rows={rows} \
                         cols={cols} cap={cap}"
                    ));
                }
                Ok(gen::torus(rows, cols, cap))
            }
            TopologyTemplate::Dragonfly {
                groups,
                routers,
                cap,
            } => {
                let (groups, routers, cap) = (
                    groups.resolve(ctx) as usize,
                    routers.resolve(ctx) as usize,
                    cap.resolve(ctx),
                );
                if groups < 2 || routers < 2 || cap == 0 {
                    return Err(format!(
                        "dragonfly: need groups ≥ 2, routers ≥ 2, cap ≥ 1; got \
                         groups={groups} routers={routers} cap={cap}"
                    ));
                }
                Ok(gen::dragonfly(groups, routers, cap))
            }
            TopologyTemplate::Expander { n, degree, max_cap } => {
                let (nn, degree, max_cap) = (
                    n.resolve(ctx) as usize,
                    degree.resolve(ctx) as usize,
                    max_cap.resolve(ctx),
                );
                if nn < 3 || degree < 2 || max_cap == 0 {
                    return Err(format!(
                        "expander: need n ≥ 3, degree ≥ 2, max_cap ≥ 1; got n={nn} \
                         degree={degree} max_cap={max_cap}"
                    ));
                }
                Ok(gen::random_expander(nn, degree, max_cap, &mut rng))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx() -> ResolveCtx {
        ResolveCtx {
            n: 5,
            cap: 3,
            f: 1,
            seed: 11,
        }
    }

    #[test]
    fn tokens_resolve() {
        let c = ctx();
        assert_eq!(Tok::Lit(9).resolve(&c), 9);
        assert_eq!(Tok::N.resolve(&c), 5);
        assert_eq!(Tok::Cap.resolve(&c), 3);
        assert_eq!(Tok::F.resolve(&c), 1);
        assert_eq!(Tok::TwoFPlusOne.resolve(&c), 3);
    }

    #[test]
    fn parse_roundtrips_spec_strings() {
        for s in [
            "fig1a",
            "fig1b",
            "fig2a",
            "fig2a-closed",
            "complete:$n:$cap",
            "hetero:$n:1:$cap",
            "ring:6:2",
            "barbell:3:$cap:1:1",
            "circulant:$n:2:$cap",
            "kconnected:$n:2f+1:$cap:25",
            "fattree:4:$cap",
            "torus:4:8:$cap",
            "dragonfly:6:4:$cap",
            "expander:$n:4:$cap",
        ] {
            let t = TopologyTemplate::parse(s).unwrap();
            assert_eq!(t.spec_string(), s);
        }
    }

    #[test]
    fn unknown_family_is_an_error() {
        let e = TopologyTemplate::parse("hypercube:4:4").unwrap_err();
        assert!(e.contains("unknown topology"), "{e}");
        assert!(e.contains("known:"), "{e}");
    }

    #[test]
    fn wrong_arity_is_an_error() {
        assert!(TopologyTemplate::parse("complete:4").is_err());
        assert!(TopologyTemplate::parse("fig1a:4").is_err());
    }

    #[test]
    fn builds_are_deterministic_per_seed() {
        let t = TopologyTemplate::parse("kconnected:8:3:4:30").unwrap();
        let a = t.build(&ctx()).unwrap();
        let b = t.build(&ctx()).unwrap();
        assert_eq!(a.edge_count(), b.edge_count());
        let caps_a: Vec<u64> = a.edges().map(|(_, e)| e.cap).collect();
        let caps_b: Vec<u64> = b.edges().map(|(_, e)| e.cap).collect();
        assert_eq!(caps_a, caps_b);
    }

    #[test]
    fn fig2a_closed_is_strongly_connected_with_gamma_2() {
        use nab_netgraph::flow::broadcast_rate;
        let raw = TopologyTemplate::Figure2a.build(&ctx()).unwrap();
        assert!(!raw.all_reachable_from(2), "raw figure has no return path");
        let closed = TopologyTemplate::Figure2aClosed.build(&ctx()).unwrap();
        for s in closed.nodes() {
            assert!(closed.all_reachable_from(s));
        }
        assert_eq!(broadcast_rate(&closed, 0), 2, "closure preserves γ");
    }

    #[test]
    fn substituted_build_matches_literal_build() {
        let templ = TopologyTemplate::parse("complete:$n:$cap").unwrap();
        let g = templ.build(&ctx()).unwrap();
        assert_eq!(g.active_count(), 5);
        assert_eq!(g.find_edge(0, 1).unwrap().1.cap, 3);
    }

    #[test]
    fn constraint_violations_are_errors_not_panics() {
        let t = TopologyTemplate::parse("circulant:4:2:1").unwrap();
        assert!(t.build(&ctx()).is_err());
        let t = TopologyTemplate::parse("barbell:3:1:5:1").unwrap();
        assert!(t.build(&ctx()).is_err());
        // Odd fat-tree k, degenerate torus, 1-group dragonfly, degree-1
        // expander: all rejected, never panicked.
        for bad in [
            "fattree:3:2",
            "torus:2:4:1",
            "dragonfly:1:4:1",
            "expander:8:1:2",
        ] {
            let t = TopologyTemplate::parse(bad).unwrap();
            assert!(t.build(&ctx()).is_err(), "{bad} should reject");
        }
    }

    #[test]
    fn datacenter_families_build_at_scale() {
        use nab_netgraph::connectivity::strongly_connected;
        let cases = [
            ("fattree:4:8", 20),
            ("torus:4:5:2", 20),
            ("dragonfly:5:4:3", 20),
            ("expander:24:4:6", 24),
        ];
        for (spec, nodes) in cases {
            let g = TopologyTemplate::parse(spec)
                .unwrap()
                .build(&ctx())
                .unwrap();
            assert_eq!(g.active_count(), nodes, "{spec}");
            assert!(strongly_connected(&g), "{spec}");
        }
        // Random expanders are deterministic per seed.
        let t = TopologyTemplate::parse("expander:24:4:6").unwrap();
        let (a, b) = (t.build(&ctx()).unwrap(), t.build(&ctx()).unwrap());
        assert_eq!(a, b);
    }
}
