//! The declarative scenario specification.
//!
//! A [`ScenarioSpec`] describes a whole *family* of NAB executions: a
//! parameterized topology, a fault placement schedule, an adversary
//! strategy, a broadcast backend, a workload shape, and the grid of
//! parameters (`n`, `cap`, `f`, `symbols`, seed repetitions) the sweep
//! runner expands into jobs. Build one in Rust with the chainable
//! `with_*` methods, or load one from a `.scenario` file via
//! [`crate::parse`].

use nab::BroadcastKind;

use crate::adversary::AdversarySpec;
use crate::faults::FaultSchedule;
use crate::mutations::MutationSchedule;
use crate::topology::TopologyTemplate;

/// A declarative fault/workload scenario (see module docs).
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Scenario name (reported in the sweep JSON).
    pub name: String,
    /// Parameterized topology family.
    pub topology: TopologyTemplate,
    /// Classic-BB backend for flag/claim broadcasts.
    pub broadcast: BroadcastKind,
    /// Byzantine strategy of the faulty nodes.
    pub adversary: AdversarySpec,
    /// Fault placement schedule.
    pub faults: FaultSchedule,
    /// Mid-job topology mutation schedule: every `every` instances the
    /// network's link capacities are rewritten (OCS-style degrade /
    /// re-provision) and engines migrate to the new network's plan,
    /// carrying their dispute state. `none` by default.
    pub mutations: MutationSchedule,
    /// Broadcast instances per job (the paper's `Q`).
    pub q: usize,
    /// Interleaved independent broadcast streams per job (each stream is
    /// its own engine; instances alternate round-robin).
    pub streams: usize,
    /// Grid axis: node counts substituted for `$n`.
    pub n: Vec<usize>,
    /// Grid axis: capacity scales substituted for `$cap`.
    pub cap: Vec<u64>,
    /// Grid axis: fault bounds substituted for `$f` / `2f+1`.
    pub f: Vec<usize>,
    /// Grid axis: input sizes in 16-bit symbols.
    pub symbols: Vec<usize>,
    /// Seed repetitions per grid point (seed indices `0..seeds`).
    pub seeds: u64,
    /// Base seed all per-job seeds derive from.
    pub seed0: u64,
    /// Whether each job also computes the paper's bounds (Eq. 6 lower,
    /// Theorem 2 upper) for comparison — costs extra per job.
    pub bounds: bool,
    /// Enumeration budget for `γ*` when `bounds` is on.
    pub bounds_budget: usize,
    /// Default worker threads (`0` = one per available CPU); the CLI
    /// `--threads` flag overrides this.
    pub threads: usize,
    /// Whether sweep jobs share network plans through the
    /// content-addressed `PlanCache` (on by default; results are
    /// byte-identical either way — the toggle exists for cold-vs-cached
    /// benchmarking and for the determinism tests that pin the
    /// equivalence).
    pub plan_cache: bool,
    /// Whether engines use incremental plan repair for disputed `G_k`
    /// derivations (on by default; results are bit-identical either way
    /// — the toggle, CLI `--no-repair`, exists for A/B benchmarking and
    /// the differential tests that pin the equivalence).
    pub plan_repair: bool,
    /// Per-link latency/jitter/loss models used when message-level
    /// execution is on (see [`ScenarioSpec::net`]). The default is the
    /// zero model (zero latency, lossless), under which message-level
    /// timing matches the formula path within rounding.
    pub link_model: nab_net::NetSpec,
    /// Whether jobs execute message-level over the `nab-net` event
    /// kernel (phase durations and delivered-time histograms come from
    /// messages in flight) instead of the synchronous formula charges.
    /// Off by default; the CLI `--net` flag switches it on.
    pub net: bool,
    /// Whether jobs take the batched cross-stream execution path (all
    /// undisputed streams' equality columns packed into one slab
    /// multiply per edge). On by default; results are bit-identical
    /// either way — the toggle (`batch = off`, CLI `--no-batch`) exists
    /// for A/B benchmarking and the equivalence tests that pin it.
    pub batch: bool,
}

impl Default for ScenarioSpec {
    fn default() -> Self {
        ScenarioSpec {
            name: "unnamed".into(),
            topology: TopologyTemplate::Complete {
                n: crate::topology::Tok::N,
                cap: crate::topology::Tok::Cap,
            },
            broadcast: BroadcastKind::default(),
            adversary: AdversarySpec::Honest,
            faults: FaultSchedule::None,
            mutations: MutationSchedule::None,
            q: 8,
            streams: 1,
            n: vec![4],
            cap: vec![2],
            f: vec![1],
            symbols: vec![16],
            seeds: 1,
            seed0: 7,
            bounds: false,
            bounds_budget: 1 << 14,
            threads: 0,
            plan_cache: true,
            plan_repair: true,
            link_model: nab_net::NetSpec::default(),
            net: false,
            batch: true,
        }
    }
}

impl ScenarioSpec {
    /// A default spec with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        ScenarioSpec {
            name: name.into(),
            ..ScenarioSpec::default()
        }
    }

    /// Sets the topology family.
    pub fn with_topology(mut self, t: TopologyTemplate) -> Self {
        self.topology = t;
        self
    }

    /// Sets the broadcast backend.
    pub fn with_broadcast(mut self, b: BroadcastKind) -> Self {
        self.broadcast = b;
        self
    }

    /// Sets the adversary strategy.
    pub fn with_adversary(mut self, a: AdversarySpec) -> Self {
        self.adversary = a;
        self
    }

    /// Sets the fault schedule.
    pub fn with_faults(mut self, f: FaultSchedule) -> Self {
        self.faults = f;
        self
    }

    /// Sets the topology mutation schedule.
    pub fn with_mutations(mut self, m: MutationSchedule) -> Self {
        self.mutations = m;
        self
    }

    /// Sets instances per job.
    pub fn with_q(mut self, q: usize) -> Self {
        self.q = q;
        self
    }

    /// Sets interleaved streams per job.
    pub fn with_streams(mut self, s: usize) -> Self {
        self.streams = s;
        self
    }

    /// Sets the `$n` grid axis.
    pub fn with_n(mut self, n: Vec<usize>) -> Self {
        self.n = n;
        self
    }

    /// Sets the `$cap` grid axis.
    pub fn with_cap(mut self, cap: Vec<u64>) -> Self {
        self.cap = cap;
        self
    }

    /// Sets the `$f` grid axis.
    pub fn with_f(mut self, f: Vec<usize>) -> Self {
        self.f = f;
        self
    }

    /// Sets the symbols grid axis.
    pub fn with_symbols(mut self, symbols: Vec<usize>) -> Self {
        self.symbols = symbols;
        self
    }

    /// Sets seed repetitions per grid point.
    pub fn with_seeds(mut self, seeds: u64) -> Self {
        self.seeds = seeds;
        self
    }

    /// Sets the base seed.
    pub fn with_seed0(mut self, seed0: u64) -> Self {
        self.seed0 = seed0;
        self
    }

    /// Enables or disables per-job bound computation.
    pub fn with_bounds(mut self, on: bool) -> Self {
        self.bounds = on;
        self
    }

    /// Enables or disables plan sharing through the `PlanCache`.
    pub fn with_plan_cache(mut self, on: bool) -> Self {
        self.plan_cache = on;
        self
    }

    /// Enables or disables incremental plan repair in the engines.
    pub fn with_plan_repair(mut self, on: bool) -> Self {
        self.plan_repair = on;
        self
    }

    /// Sets the link models for message-level execution.
    pub fn with_link_model(mut self, m: nab_net::NetSpec) -> Self {
        self.link_model = m;
        self
    }

    /// Enables or disables message-level (event-driven) execution.
    pub fn with_net(mut self, on: bool) -> Self {
        self.net = on;
        self
    }

    /// Enables or disables batched cross-stream execution.
    pub fn with_batch(mut self, on: bool) -> Self {
        self.batch = on;
        self
    }

    /// Validates cross-field consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.name.is_empty() {
            return Err("scenario name must not be empty".into());
        }
        if self.q == 0 {
            return Err("q must be ≥ 1".into());
        }
        if self.streams == 0 {
            return Err("streams must be ≥ 1".into());
        }
        // `seeds = 0` is a legal *empty* grid (zero jobs): sweeps run
        // vacuously and the CLI reports it as a distinct exit code, so a
        // scripted `sed`-style seeds override can turn a scenario off.
        for axis in [
            ("n", self.n.is_empty()),
            ("cap", self.cap.is_empty()),
            ("f", self.f.is_empty()),
            ("symbols", self.symbols.is_empty()),
        ] {
            if axis.1 {
                return Err(format!("grid axis {:?} must not be empty", axis.0));
            }
        }
        if self.symbols.contains(&0) {
            return Err("symbols entries must be ≥ 1".into());
        }
        Ok(())
    }

    /// Total jobs the grid expands to.
    pub fn job_count(&self) -> usize {
        self.n.len() * self.cap.len() * self.f.len() * self.symbols.len() * self.seeds as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_composes() {
        let s = ScenarioSpec::new("t")
            .with_topology(TopologyTemplate::Figure1a)
            .with_adversary(AdversarySpec::Corruptor)
            .with_faults(FaultSchedule::Rotating { count: 1 })
            .with_q(4)
            .with_n(vec![4, 5])
            .with_cap(vec![1, 2])
            .with_f(vec![1])
            .with_symbols(vec![8, 16])
            .with_seeds(3)
            .with_seed0(99);
        assert!(s.validate().is_ok());
        assert_eq!(s.job_count(), 2 * 2 * 2 * 3);
    }

    #[test]
    fn validation_catches_empty_axes() {
        let s = ScenarioSpec::new("t").with_n(vec![]);
        assert!(s.validate().unwrap_err().contains("\"n\""));
        let s = ScenarioSpec::new("t").with_q(0);
        assert!(s.validate().is_err());
        let s = ScenarioSpec::new("t").with_symbols(vec![0]);
        assert!(s.validate().is_err());
    }
}
