//! Grid expansion and the parallel sweep runner.
//!
//! A scenario's grid (`n × cap × f × symbols × seeds`) expands into
//! [`Job`]s in a fixed deterministic order. Jobs are fully independent:
//! every random choice a job makes (topology, inputs, adversary coin
//! flips) derives from a per-job seed mixed from `seed0` and the job
//! index, so a sweep produces **bit-identical results for any worker
//! thread count** — the property the determinism property tests pin down.
//!
//! Execution uses a work-stealing loop over `std::thread::scope`: an
//! atomic cursor hands out job indices, each worker writes its result
//! into the job's slot, and the report assembles slots in index order.

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

use nab::adversary::NabAdversary;
use nab::dispute::DisputeState;
use nab::engine::{instance_correct, run_instances_batched, NabConfig, NabEngine};
use nab::plan::{ExecutionPlan, PlanCache};
use nab::value::{Value, SYMBOL_BITS};
use nab_netgraph::{DiGraph, NodeId};
use nab_obs::trace::{self, EventKind, TraceSink};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::report::{Aggregate, JobBounds, JobMetrics, JobOutcome, PhaseLatency, SweepReport};
use crate::spec::ScenarioSpec;
use crate::topology::ResolveCtx;

/// One grid point of a sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Job {
    /// Position in the expanded grid (stable across thread counts).
    pub index: usize,
    /// Node count (`$n`).
    pub n: usize,
    /// Capacity scale (`$cap`).
    pub cap: u64,
    /// Fault bound (`$f`).
    pub f: usize,
    /// Input size in 16-bit symbols.
    pub symbols: usize,
    /// Seed repetition index (`0..spec.seeds`).
    pub seed_index: u64,
    /// The job's derived deterministic seed.
    pub seed: u64,
}

/// SplitMix64-style mixing for per-job seed derivation.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expands a scenario's grid into jobs, in deterministic order
/// (`n`, then `cap`, then `f`, then `symbols`, then seed index).
pub fn expand_jobs(spec: &ScenarioSpec) -> Vec<Job> {
    let mut jobs = Vec::with_capacity(spec.job_count());
    for &n in &spec.n {
        for &cap in &spec.cap {
            for &f in &spec.f {
                for &symbols in &spec.symbols {
                    for seed_index in 0..spec.seeds {
                        let index = jobs.len();
                        jobs.push(Job {
                            index,
                            n,
                            cap,
                            f,
                            symbols,
                            seed_index,
                            seed: mix(spec.seed0, index as u64),
                        });
                    }
                }
            }
        }
    }
    jobs
}

/// Runs every job of a scenario across `threads` workers and aggregates
/// the results.
///
/// `threads = 0` uses one worker per available CPU. Results are
/// independent of the worker count *and* of the plan-cache state: when
/// `spec.plan_cache` is on (the default) the workers share a
/// content-addressed [`PlanCache`] of network plans, which changes wall
/// clock but never canonical output.
///
/// # Errors
///
/// Returns the scenario validation failure, if any; per-job failures
/// (impossible grid points, rejected networks) are recorded in the
/// report instead of aborting the sweep.
pub fn run_sweep(spec: &ScenarioSpec, threads: usize) -> Result<SweepReport, String> {
    run_sweep_with_cache(spec, threads, None)
}

/// A point-in-time view of sweep progress, handed to the
/// [`SweepOptions::progress`] callback after every completed job. All
/// counters are cumulative over the sweep so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProgressSnapshot {
    /// Jobs completed so far (measured or rejected).
    pub jobs_done: usize,
    /// Total jobs in the grid.
    pub jobs_total: usize,
    /// Broadcast instances executed so far.
    pub instances: u64,
    /// Dispute-control executions observed so far.
    pub dispute_rounds: u64,
    /// Plan-cache hits so far.
    pub plan_hits: u64,
    /// Plan builds (cache misses or direct builds) so far.
    pub plan_misses: u64,
    /// Jobs rejected so far (impossible grid points).
    pub rejected: u64,
}

/// Execution options for [`run_sweep_with_options`]. Everything here is a
/// pure observer: none of the fields can change canonical sweep results.
#[derive(Default)]
pub struct SweepOptions<'a> {
    /// Worker threads; 0 = one per available CPU.
    pub threads: usize,
    /// Externally owned plan cache (see [`run_sweep_with_cache`]).
    pub cache: Option<&'a PlanCache>,
    /// Trace sink installed on every worker thread for the duration of
    /// the sweep. Workers emit job/instance/phase/dispute/plan-cache
    /// events (see `nab_obs::trace::EventKind`).
    pub trace: Option<Arc<dyn TraceSink>>,
    /// Called after each completed job with cumulative progress — the
    /// CLI's `--progress` reporter. Invoked from worker threads; must be
    /// `Sync`.
    #[allow(clippy::type_complexity)]
    pub progress: Option<&'a (dyn Fn(ProgressSnapshot) + Sync)>,
}

/// Cumulative progress counters shared by the worker threads. Updated
/// with relaxed atomics — the snapshot a callback sees is monotone but
/// only approximately ordered across workers, which is all a live
/// reporter needs.
struct ProgressState {
    jobs_total: usize,
    jobs_done: AtomicUsize,
    instances: AtomicU64,
    dispute_rounds: AtomicU64,
    plan_hits: AtomicU64,
    plan_misses: AtomicU64,
    rejected: AtomicU64,
}

impl ProgressState {
    fn new(jobs_total: usize) -> Self {
        Self {
            jobs_total,
            jobs_done: AtomicUsize::new(0),
            instances: AtomicU64::new(0),
            dispute_rounds: AtomicU64::new(0),
            plan_hits: AtomicU64::new(0),
            plan_misses: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
        }
    }

    /// Fold one finished job into the counters and return the snapshot
    /// after it.
    fn account(&self, outcome: &JobOutcome) -> ProgressSnapshot {
        let jobs_done = self.jobs_done.fetch_add(1, Ordering::Relaxed) + 1;
        let mut snapshot = ProgressSnapshot {
            jobs_done,
            jobs_total: self.jobs_total,
            ..ProgressSnapshot::default()
        };
        match &outcome.result {
            Ok(m) => {
                snapshot.instances = self
                    .instances
                    .fetch_add(m.instances as u64, Ordering::Relaxed)
                    + m.instances as u64;
                snapshot.dispute_rounds = self
                    .dispute_rounds
                    .fetch_add(m.dispute_rounds as u64, Ordering::Relaxed)
                    + m.dispute_rounds as u64;
                snapshot.plan_hits =
                    self.plan_hits.fetch_add(m.plan_hits, Ordering::Relaxed) + m.plan_hits;
                snapshot.plan_misses =
                    self.plan_misses.fetch_add(m.plan_misses, Ordering::Relaxed) + m.plan_misses;
                snapshot.rejected = self.rejected.load(Ordering::Relaxed);
            }
            Err(_) => {
                snapshot.rejected = self.rejected.fetch_add(1, Ordering::Relaxed) + 1;
                snapshot.instances = self.instances.load(Ordering::Relaxed);
                snapshot.dispute_rounds = self.dispute_rounds.load(Ordering::Relaxed);
                snapshot.plan_hits = self.plan_hits.load(Ordering::Relaxed);
                snapshot.plan_misses = self.plan_misses.load(Ordering::Relaxed);
            }
        }
        snapshot
    }
}

/// [`run_sweep`] with an externally owned plan cache, so callers (the
/// `perf` benchmark, long-lived services sweeping many scenarios over
/// the same topology family) can keep plans warm across sweeps. Passing
/// `None` uses a sweep-private cache when `spec.plan_cache` is on, and
/// no cache at all when it is off.
///
/// # Errors
///
/// Returns the scenario validation failure, if any.
pub fn run_sweep_with_cache(
    spec: &ScenarioSpec,
    threads: usize,
    external_cache: Option<&PlanCache>,
) -> Result<SweepReport, String> {
    run_sweep_with_options(
        spec,
        &SweepOptions {
            threads,
            cache: external_cache,
            ..SweepOptions::default()
        },
    )
}

/// The fully general sweep entry point: [`run_sweep_with_cache`] plus
/// observability hooks (trace sink, progress callback). The hooks never
/// change canonical results — the determinism proptests pin JSON
/// byte-equality with tracing on vs. off.
///
/// # Errors
///
/// Returns the scenario validation failure, if any.
pub fn run_sweep_with_options(
    spec: &ScenarioSpec,
    opts: &SweepOptions<'_>,
) -> Result<SweepReport, String> {
    spec.validate()?;
    let private_cache = PlanCache::new();
    let cache: Option<&PlanCache> = match opts.cache {
        Some(c) => Some(c),
        None if spec.plan_cache => Some(&private_cache),
        None => None,
    };
    let jobs = expand_jobs(spec);
    let threads = if opts.threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        opts.threads
    }
    .min(jobs.len())
    .max(1);

    if let Some(sink) = &opts.trace {
        // Sweep start/end events come from the coordinating thread.
        trace::set_thread_sink(Some(Arc::clone(sink)));
        trace::emit(EventKind::SweepStart {
            jobs: jobs.len() as u64,
            tier: nab_gf::simd::tier(),
            cpu: nab_gf::simd::cpu_features(),
        });
    }
    let progress = ProgressState::new(jobs.len());
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobOutcome>>> = jobs.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                if let Some(sink) = &opts.trace {
                    trace::set_thread_sink(Some(Arc::clone(sink)));
                }
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs.len() {
                        break;
                    }
                    trace::set_job(i as u64);
                    trace::emit(EventKind::JobStart);
                    // A panicking job (an engine bug, a chaos-panic
                    // adversary) becomes a job-level error: the worker
                    // survives, the remaining jobs still run, and the
                    // report records what happened. Without this, one
                    // panic poisoned every job slot behind it and the
                    // final assembly aborted the whole process.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        run_job(spec, &jobs[i], cache)
                    }))
                    .unwrap_or_else(|payload| panicked_outcome(&jobs[i], payload.as_ref()));
                    trace::emit(EventKind::JobEnd);
                    if let Some(callback) = opts.progress {
                        callback(progress.account(&outcome));
                    }
                    *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(outcome);
                }
                if opts.trace.is_some() {
                    trace::set_thread_sink(None);
                }
            });
        }
    });
    if opts.trace.is_some() {
        trace::set_job(0);
        trace::emit(EventKind::SweepEnd);
        trace::set_thread_sink(None);
    }
    let outcomes: Vec<JobOutcome> = slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .unwrap_or_else(|e| e.into_inner())
                .expect("worker loop covered every job") // nab-lint: allow(NAB003): static partition assigns every job to exactly one worker
        })
        .collect();

    let aggregate = Aggregate::from_outcomes(&outcomes);
    Ok(SweepReport {
        scenario: spec.name.clone(),
        topology: spec.topology.spec_string(),
        adversary: spec.adversary.spec_string(),
        faults: spec.faults.spec_string(),
        jobs: outcomes,
        aggregate,
    })
}

/// Builds the outcome recorded for a job whose measurement panicked:
/// the panic payload (a `&str` or `String` for every `panic!` with a
/// message) becomes the job-level error string.
fn panicked_outcome(job: &Job, payload: &(dyn std::any::Any + Send)) -> JobOutcome {
    let msg = payload
        .downcast_ref::<&str>()
        .map(|s| (*s).to_string())
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into());
    JobOutcome {
        index: job.index,
        n: job.n,
        cap: job.cap,
        f: job.f,
        symbols: job.symbols,
        seed_index: job.seed_index,
        seed: job.seed,
        faulty: Vec::new(),
        candidates_tried: 0,
        candidates_failed: 0,
        candidate_error: None,
        result: Err(format!("job panicked: {msg}")),
    }
}

/// Runs one job: materializes its graph, resolves the fault placement
/// (searching candidates for worst-case schedules), and measures.
/// `cache` is the sweep-shared plan cache (`None` = plan per engine,
/// the cold path).
pub fn run_job(spec: &ScenarioSpec, job: &Job, cache: Option<&PlanCache>) -> JobOutcome {
    let mut outcome = JobOutcome {
        index: job.index,
        n: job.n,
        cap: job.cap,
        f: job.f,
        symbols: job.symbols,
        seed_index: job.seed_index,
        seed: job.seed,
        faulty: Vec::new(),
        candidates_tried: 0,
        candidates_failed: 0,
        candidate_error: None,
        result: Err("unresolved".into()),
    };
    let ctx = ResolveCtx {
        n: job.n,
        cap: job.cap,
        f: job.f,
        seed: job.seed,
    };
    let graph = match spec.topology.build(&ctx) {
        Ok(g) => g,
        Err(e) => {
            outcome.result = Err(format!("topology rejected: {e}"));
            return outcome;
        }
    };
    let candidates = spec.faults.candidates(graph.node_count(), job.seed_index);
    if candidates.is_empty() {
        outcome.result = Err(format!(
            "fault schedule {} has no valid placement on {} nodes",
            spec.faults.spec_string(),
            graph.node_count()
        ));
        return outcome;
    }
    if spec.faults.fault_count() > job.f {
        outcome.result = Err(format!(
            "fault schedule places {} nodes but the job's fault bound is f={}",
            spec.faults.fault_count(),
            job.f
        ));
        return outcome;
    }

    // Worst-case search: measure every candidate placement, keep the
    // throughput minimizer (ties break to the earlier candidate, which is
    // deterministic because candidate order is). A candidate whose
    // measurement errors is arguably the *most* damaging placement, so it
    // is never silently dropped: the failure count and first error travel
    // in the outcome even when other candidates succeed.
    let mut worst: Option<(BTreeSet<NodeId>, JobMetrics)> = None;
    let mut first_err: Option<(Vec<NodeId>, String)> = None;
    // Plan-cache accounting is summed over *all* candidate measurements
    // (not just the selected worst one) so the job's timed report shows
    // everything the job actually paid for.
    let (mut plan_hits, mut plan_misses, mut plan_build_ns) = (0u64, 0u64, 0u64);
    for faulty in &candidates {
        match measure(spec, job, &graph, faulty, cache) {
            Ok(metrics) => {
                plan_hits += metrics.plan_hits;
                plan_misses += metrics.plan_misses;
                plan_build_ns += metrics.plan_build_ns;
                let replace = match &worst {
                    None => true,
                    Some((_, best)) => metrics.throughput < best.throughput,
                };
                if replace {
                    worst = Some((faulty.clone(), metrics));
                }
            }
            Err(e) => {
                outcome.candidates_failed += 1;
                if first_err.is_none() {
                    first_err = Some((faulty.iter().copied().collect(), e));
                }
            }
        }
    }
    outcome.candidates_tried = candidates.len();
    outcome.candidate_error = first_err
        .as_ref()
        .map(|(faulty, e)| format!("placement {faulty:?}: {e}"));
    match worst {
        Some((faulty, mut metrics)) => {
            metrics.plan_hits = plan_hits;
            metrics.plan_misses = plan_misses;
            metrics.plan_build_ns = plan_build_ns;
            outcome.faulty = faulty.into_iter().collect();
            outcome.result = Ok(metrics);
        }
        None => {
            let (faulty, e) =
                first_err.unwrap_or_else(|| (Vec::new(), "no candidate measured".into()));
            outcome.faulty = faulty;
            outcome.result = Err(e);
        }
    }
    outcome
}

/// Measures one (graph, faulty-set) pair: `spec.streams` interleaved
/// engines, `spec.q` instances each. With a cache, the network plan is
/// fetched once and every stream's engine borrows it; without one, each
/// stream realizes its own plan (the pre-split behavior, kept as the
/// cold baseline). Either way the measured protocol behavior is
/// bit-identical — plans are deterministic functions of `(G, f)`.
fn measure(
    spec: &ScenarioSpec,
    job: &Job,
    graph: &DiGraph,
    faulty: &BTreeSet<NodeId>,
    cache: Option<&PlanCache>,
) -> Result<JobMetrics, String> {
    spec.adversary.validate_for(graph.node_count(), faulty)?;
    let job_start = nab_obs::clock::mono_now();
    let cfg = NabConfig {
        f: job.f,
        symbols: job.symbols,
        seed: job.seed,
    };
    let (mut plan_hits, mut plan_misses, mut plan_build_ns) = (0u64, 0u64, 0u64);
    let shared_plan: Option<Arc<ExecutionPlan>> = match cache {
        Some(c) => {
            let fetch = c
                .fetch(graph, job.f)
                .map_err(|e| format!("network rejected: {e}"))?;
            if fetch.hit {
                plan_hits += 1;
            } else {
                plan_misses += 1;
                plan_build_ns += fetch.build_ns;
            }
            Some(fetch.plan)
        }
        None => None,
    };
    let mut engines = Vec::with_capacity(spec.streams);
    let mut advs: Vec<Box<dyn NabAdversary>> = Vec::with_capacity(spec.streams);
    let mut input_rngs = Vec::with_capacity(spec.streams);
    for s in 0..spec.streams as u64 {
        let plan = match &shared_plan {
            Some(p) => Arc::clone(p),
            None => {
                let plan = ExecutionPlan::build(graph.clone(), job.f)
                    .map_err(|e| format!("network rejected: {e}"))?;
                plan_misses += 1;
                plan_build_ns += plan.build_wall_ns();
                Arc::new(plan)
            }
        };
        let mut engine =
            NabEngine::from_plan(plan, cfg).map_err(|e| format!("network rejected: {e}"))?;
        engine.set_broadcast_kind(spec.broadcast);
        engine.set_plan_repair(spec.plan_repair);
        if spec.net {
            // Each stream samples its own jitter/loss stream, derived
            // from the job seed exactly like its adversary and input
            // RNGs — never from wall-clock.
            engine.set_net(Some(nab::NetExec {
                model: spec.link_model.build(),
                seed: mix(job.seed, 0x7E7u64 ^ s),
            }));
        }
        engines.push(engine);
        advs.push(spec.adversary.build(mix(job.seed, 0x0ADu64 ^ s)));
        input_rngs.push(StdRng::seed_from_u64(mix(job.seed, 0x1A7u64 ^ s)));
    }

    let bits_per_instance = job.symbols as u64 * SYMBOL_BITS;
    let mut metrics = JobMetrics {
        instances: 0,
        total_bits: 0,
        total_time: 0.0,
        throughput: 0.0,
        steady_throughput: None,
        phase1_time: 0.0,
        equality_time: 0.0,
        flags_time: 0.0,
        dispute_time: 0.0,
        dispute_rounds: 0,
        // Each stream is an independent deployment with its own f(f+1)
        // dispute budget; the job-level budget is their sum. Per-stream
        // compliance is checked once the traces are complete.
        dispute_budget: spec.streams * DisputeState::max_executions(job.f),
        dispute_budget_exceeded: false,
        mismatch_instances: 0,
        defaulted_instances: 0,
        pairs: Vec::new(),
        removed: Vec::new(),
        exposed_history: Vec::new(),
        amortized_overhead: 0.0,
        all_correct: true,
        gamma1: 0,
        rho1: 0,
        bounds: None,
        latency: PhaseLatency::default(),
        delivered: spec.net.then(nab::DeliveredTimes::default),
        wall_ns: 0,
        plan_hits,
        plan_misses,
        plan_build_ns,
        plan_repairs: 0,
        plan_full_recomputes: 0,
        plan_repair_ns: 0,
    };
    // Per-stream instance trace for the steady-state tail:
    // (time, useful bits, disputed). A defaulted instance (source already
    // exposed) delivers the default value, not the payload, at zero
    // simulated cost — it must count zero useful bits, or source-faulty
    // placements would report *inflated* throughput and a worst-case
    // search would never select them.
    let mut traces: Vec<Vec<(f64, u64, bool)>> = vec![Vec::new(); spec.streams];

    let mut cur_epoch = 0usize;
    for inst in 0..spec.q {
        // Epoch boundary: the mutation schedule re-provisions link
        // capacities (node/edge sets unchanged) and every stream's engine
        // migrates to the new network's plan, carrying its dispute state
        // — a live deployment following an OCS reconfiguration. Mutated
        // graphs are content-addressed like any other, so a schedule that
        // revisits a profile (flap) hits the plan cache.
        let epoch = spec.mutations.epoch(inst);
        if epoch != cur_epoch {
            cur_epoch = epoch;
            let mutated = spec.mutations.graph_for_epoch(graph, epoch, job.seed);
            match cache {
                Some(c) => {
                    let fetch = c
                        .fetch(&mutated, job.f)
                        .map_err(|e| format!("mutated network rejected: {e}"))?;
                    if fetch.hit {
                        metrics.plan_hits += 1;
                    } else {
                        metrics.plan_misses += 1;
                        metrics.plan_build_ns += fetch.build_ns;
                    }
                    for engine in &mut engines {
                        engine
                            .migrate_to_plan(Arc::clone(&fetch.plan))
                            .map_err(|e| format!("mutated network rejected: {e}"))?;
                    }
                }
                None => {
                    // Cold path: every stream replans privately, matching
                    // the cache-off accounting at job start.
                    for engine in &mut engines {
                        let plan = ExecutionPlan::build(mutated.clone(), job.f)
                            .map_err(|e| format!("mutated network rejected: {e}"))?;
                        metrics.plan_misses += 1;
                        metrics.plan_build_ns += plan.build_wall_ns();
                        engine
                            .migrate_to_plan(Arc::new(plan))
                            .map_err(|e| format!("mutated network rejected: {e}"))?;
                    }
                }
            }
        }
        // One round-robin step: every stream runs instance `inst`. The
        // batched entry point packs all undisputed streams' equality
        // columns into one slab multiply per edge (falling back to the
        // per-stream loop internally once disputes shrink some G_k);
        // message-level execution retimes streams independently, so it
        // stays on the per-stream path. Inputs are drawn per stream from
        // that stream's own RNG either way — identical values.
        let step: Vec<(Value, nab::InstanceReport)> = if spec.batch && !spec.net {
            let inputs: Vec<Value> = input_rngs
                .iter_mut()
                .map(|rng| Value::random(job.symbols, rng))
                .collect();
            let mut adv_refs: Vec<&mut dyn NabAdversary> = advs
                .iter_mut()
                .map(|a| &mut **a as &mut dyn NabAdversary)
                .collect();
            let reps = run_instances_batched(&mut engines, &inputs, faulty, &mut adv_refs)
                .map_err(|e| format!("instance failed: {e}"))?;
            inputs.into_iter().zip(reps).collect()
        } else {
            let mut step = Vec::with_capacity(spec.streams);
            for s in 0..spec.streams {
                trace::set_stream(s as u32);
                let input = Value::random(job.symbols, &mut input_rngs[s]);
                let rep = engines[s]
                    .run_instance(&input, faulty, advs[s].as_mut())
                    .map_err(|e| format!("instance failed: {e}"))?;
                step.push((input, rep));
            }
            step
        };
        for (s, (input, rep)) in step.iter().enumerate() {
            let global_inst = inst * spec.streams + s;
            if global_inst == 0 {
                metrics.gamma1 = rep.gamma_k;
                metrics.rho1 = rep.rho_k;
            }
            let t = rep.times.total();
            let useful_bits = if rep.defaulted { 0 } else { bits_per_instance };
            metrics.instances += 1;
            metrics.total_bits += useful_bits;
            metrics.total_time += t;
            metrics.phase1_time += rep.times.phase1;
            metrics.equality_time += rep.times.equality;
            metrics.flags_time += rep.times.flags;
            metrics.dispute_time += rep.times.dispute;
            metrics.latency.record_instance(rep);
            if let (Some(acc), Some(d)) = (metrics.delivered.as_mut(), rep.delivered.as_ref()) {
                acc.merge(d);
            }
            metrics.dispute_rounds += usize::from(rep.dispute_ran);
            metrics.mismatch_instances += usize::from(rep.mismatch_detected);
            metrics.defaulted_instances += usize::from(rep.defaulted);
            for &v in &rep.newly_removed {
                metrics.exposed_history.push((global_inst, v));
            }
            traces[s].push((t, useful_bits, rep.dispute_ran));

            if !instance_correct(rep, faulty, input) {
                metrics.all_correct = false;
            }
        }
    }

    // Accumulated dispute state and replanning counters across streams.
    let mut pairs = BTreeSet::new();
    let mut removed = BTreeSet::new();
    for engine in &engines {
        pairs.extend(engine.disputes().pairs.iter().copied());
        removed.extend(engine.disputes().removed.iter().copied());
        let rs = engine.repair_stats();
        metrics.plan_repairs += rs.repairs;
        metrics.plan_full_recomputes += rs.full_recomputes;
        metrics.plan_repair_ns += rs.repair_ns;
    }
    metrics.pairs = pairs.into_iter().collect();
    metrics.removed = removed.into_iter().collect();

    metrics.throughput = if metrics.total_time > 0.0 {
        metrics.total_bits as f64 / metrics.total_time
    } else {
        0.0
    };
    let per_stream_budget = DisputeState::max_executions(job.f);
    metrics.dispute_budget_exceeded = traces
        .iter()
        .any(|t| t.iter().filter(|&&(_, _, d)| d).count() > per_stream_budget);
    // Steady state: instances after each stream's last dispute round —
    // the regime the paper's f(f+1) amortization argument converges to.
    // Like the overall figure, it counts useful bits only.
    let mut steady_time = 0.0;
    let mut steady_bits = 0u64;
    for trace in &traces {
        let tail_start = trace
            .iter()
            .rposition(|&(_, _, disputed)| disputed)
            .map(|p| p + 1)
            .unwrap_or(0);
        for &(t, bits, _) in &trace[tail_start..] {
            steady_time += t;
            steady_bits += bits;
        }
    }
    if steady_bits > 0 && steady_time > 0.0 {
        metrics.steady_throughput = Some(steady_bits as f64 / steady_time);
    }
    // Amortized overhead: time beyond the optimal unreliable broadcast
    // (everything Phase 2/3 adds), per instance.
    metrics.amortized_overhead = if metrics.instances > 0 {
        (metrics.total_time - metrics.phase1_time) / metrics.instances as f64
    } else {
        0.0
    };

    if spec.bounds {
        // The γ*/ρ* enumeration is cached in the plan: worst-case
        // candidate searches and interleaved streams on the same network
        // pay for it once (the computed values are identical either way).
        metrics.bounds = engines[0]
            .plan()
            .bounds_report(spec.bounds_budget)
            .map(|r| JobBounds {
                eq6_lower: r.tnab_lower,
                thm2_upper: r.capacity_upper,
                fraction_of_lower: if r.tnab_lower > 0.0 {
                    metrics.throughput / r.tnab_lower
                } else {
                    0.0
                },
                fraction_of_upper: if r.capacity_upper > 0 {
                    metrics.throughput / r.capacity_upper as f64
                } else {
                    0.0
                },
            });
    }
    metrics.wall_ns = job_start.elapsed().as_nanos() as u64;
    Ok(metrics)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adversary::AdversarySpec;
    use crate::faults::FaultSchedule;
    use crate::spec::ScenarioSpec;
    use crate::topology::{Tok, TopologyTemplate};

    fn small_spec() -> ScenarioSpec {
        ScenarioSpec::new("unit")
            .with_topology(TopologyTemplate::Complete {
                n: Tok::N,
                cap: Tok::Cap,
            })
            .with_q(2)
            .with_n(vec![4, 5])
            .with_cap(vec![1, 2])
            .with_symbols(vec![8])
            .with_seeds(2)
    }

    #[test]
    fn grid_expansion_order_and_seeds_are_stable() {
        let jobs = expand_jobs(&small_spec());
        assert_eq!(jobs.len(), 8);
        assert_eq!((jobs[0].n, jobs[0].cap, jobs[0].seed_index), (4, 1, 0));
        assert_eq!((jobs[1].n, jobs[1].cap, jobs[1].seed_index), (4, 1, 1));
        assert_eq!((jobs[2].n, jobs[2].cap, jobs[2].seed_index), (4, 2, 0));
        assert_eq!((jobs[7].n, jobs[7].cap, jobs[7].seed_index), (5, 2, 1));
        // Seeds differ per job but reproduce exactly.
        let again = expand_jobs(&small_spec());
        assert_eq!(jobs, again);
        let seeds: BTreeSet<u64> = jobs.iter().map(|j| j.seed).collect();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn fault_free_sweep_measures_throughput() {
        let report = run_sweep(&small_spec(), 1).unwrap();
        assert_eq!(report.jobs.len(), 8);
        assert_eq!(report.aggregate.rejected_jobs, 0);
        assert!(report.aggregate.all_correct);
        assert_eq!(report.aggregate.total_dispute_rounds, 0);
        for job in &report.jobs {
            let m = job.result.as_ref().unwrap();
            assert!(m.throughput > 0.0);
            assert_eq!(m.instances, 2);
            // No disputes → the whole run is steady state.
            assert_eq!(m.steady_throughput, Some(m.throughput));
        }
    }

    #[test]
    fn options_hooks_observe_the_sweep() {
        use nab_obs::trace::EventKind;
        use nab_obs::BufferSink;
        use std::sync::Mutex;

        let spec = small_spec(); // 8 jobs
        let sink = Arc::new(BufferSink::new());
        let snapshots: Mutex<Vec<ProgressSnapshot>> = Mutex::new(Vec::new());
        let progress = |s: ProgressSnapshot| snapshots.lock().unwrap().push(s);
        let opts = SweepOptions {
            threads: 2,
            trace: Some(sink.clone()),
            progress: Some(&progress),
            ..SweepOptions::default()
        };
        let report = run_sweep_with_options(&spec, &opts).unwrap();

        // One progress callback per finished job, culminating in done == total.
        let snaps = snapshots.into_inner().unwrap();
        assert_eq!(snaps.len(), 8);
        assert!(snaps.iter().any(|s| s.jobs_done == 8));
        assert!(snaps.iter().all(|s| s.jobs_total == 8 && s.rejected == 0));
        let instances = snaps.iter().map(|s| s.instances).max().unwrap();
        assert_eq!(instances as usize, report.aggregate.total_instances);

        // The trace stream brackets the sweep, every job, and every phase.
        let events = sink.take_sorted();
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::SweepStart { jobs: 8, .. }))
                .count(),
            1
        );
        assert_eq!(
            events
                .iter()
                .filter(|e| matches!(e.kind, EventKind::SweepEnd))
                .count(),
            1
        );
        let started: BTreeSet<u64> = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::JobStart))
            .map(|e| e.job)
            .collect();
        assert_eq!(started.len(), 8, "every job emits JobStart");
        let phase_starts = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PhaseStart(_)))
            .count();
        let phase_ends = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::PhaseEnd(_)))
            .count();
        assert!(phase_starts > 0);
        assert_eq!(phase_starts, phase_ends, "phase spans close on all paths");
        assert!(events
            .iter()
            .any(|e| matches!(e.kind, EventKind::InstanceStart)));
    }

    #[test]
    fn corruptor_sweep_finds_disputes_and_stays_correct() {
        let spec = small_spec()
            .with_adversary(AdversarySpec::Corruptor)
            .with_faults(FaultSchedule::Fixed(std::collections::BTreeSet::from([2])))
            .with_q(3);
        let report = run_sweep(&spec, 1).unwrap();
        assert!(report.aggregate.all_correct);
        assert!(report.aggregate.total_dispute_rounds > 0);
        for job in &report.jobs {
            let m = job.result.as_ref().unwrap();
            assert!(m.dispute_rounds <= m.dispute_budget, "f(f+1) exceeded");
            // The truthful corruptor gets exposed.
            assert_eq!(m.removed, vec![2]);
            assert!(m.exposed_history.iter().any(|&(_, v)| v == 2));
        }
    }

    #[test]
    fn rotating_schedule_covers_distinct_placements() {
        let spec = small_spec()
            .with_n(vec![4])
            .with_cap(vec![2])
            .with_faults(FaultSchedule::Rotating { count: 1 })
            .with_adversary(AdversarySpec::Corruptor)
            .with_seeds(4);
        let report = run_sweep(&spec, 1).unwrap();
        let placements: BTreeSet<Vec<usize>> =
            report.jobs.iter().map(|j| j.faulty.clone()).collect();
        assert_eq!(placements.len(), 4, "4 seed indices → 4 placements");
        assert!(report.aggregate.all_correct);
    }

    #[test]
    fn worst_case_search_picks_throughput_minimizer() {
        let spec = small_spec()
            .with_n(vec![4])
            .with_cap(vec![2])
            .with_seeds(1)
            .with_adversary(AdversarySpec::Corruptor)
            .with_faults(FaultSchedule::WorstCase {
                count: 1,
                max_candidates: 4,
            });
        let report = run_sweep(&spec, 1).unwrap();
        let job = &report.jobs[0];
        assert_eq!(job.candidates_tried, 4);
        let chosen = job.result.as_ref().unwrap().throughput;
        // Verify minimality by re-measuring each candidate.
        let jobs = expand_jobs(&spec);
        for cand in spec.faults.candidates(4, 0) {
            let g = spec
                .topology
                .build(&ResolveCtx {
                    n: 4,
                    cap: 2,
                    f: 1,
                    seed: jobs[0].seed,
                })
                .unwrap();
            let m = measure(&spec, &jobs[0], &g, &cand, None).unwrap();
            assert!(chosen <= m.throughput + 1e-12);
        }
    }

    #[test]
    fn worst_case_search_can_select_the_source() {
        // An equivocating source gets exposed after a couple of disputes;
        // the remaining instances default with zero *useful* bits. If
        // defaulted instances counted full payload bits (at zero cost),
        // the source placement would look artificially fast and the
        // search would always avoid it.
        let spec = small_spec()
            .with_n(vec![4])
            .with_cap(vec![2])
            .with_seeds(1)
            .with_q(6)
            .with_adversary(AdversarySpec::Equivocate)
            .with_faults(FaultSchedule::WorstCase {
                count: 1,
                max_candidates: 4,
            });
        let report = run_sweep(&spec, 1).unwrap();
        let job = &report.jobs[0];
        let m = job.result.as_ref().unwrap();
        assert!(m.all_correct);
        assert_eq!(
            job.faulty,
            vec![0],
            "a faulty source that stops delivering payload is the worst placement"
        );
        assert!(m.defaulted_instances > 0, "exposure defaults the tail");
        assert_eq!(
            m.total_bits,
            (m.instances - m.defaulted_instances) as u64 * 8 * 16,
            "defaulted instances count zero useful bits"
        );
    }

    #[test]
    fn impossible_grid_points_are_recorded_not_fatal() {
        // A ring is never 3-connected: engine must reject, sweep must go on.
        let spec = ScenarioSpec::new("rejects")
            .with_topology(TopologyTemplate::Ring {
                n: Tok::N,
                cap: Tok::Cap,
            })
            .with_n(vec![5])
            .with_cap(vec![1])
            .with_q(1);
        let report = run_sweep(&spec, 1).unwrap();
        assert_eq!(report.aggregate.rejected_jobs, 1);
        let job = &report.jobs[0];
        let err = job.result.as_ref().unwrap_err();
        assert!(err.contains("network rejected"), "{err}");
        // The failed candidate is accounted for, not silently dropped.
        assert_eq!(job.candidates_failed, 1);
        assert!(job.candidate_error.as_ref().unwrap().contains("placement"));
    }

    #[test]
    fn fault_count_above_f_is_rejected_cleanly() {
        let spec = small_spec()
            .with_faults(FaultSchedule::Fixed(std::collections::BTreeSet::from([
                1, 2,
            ])))
            .with_f(vec![1]);
        let report = run_sweep(&spec, 1).unwrap();
        assert_eq!(report.aggregate.rejected_jobs, report.jobs.len());
        assert!(report.jobs[0]
            .result
            .as_ref()
            .unwrap_err()
            .contains("fault bound"));
    }

    #[test]
    fn streams_interleave_and_scale_bits() {
        let spec = small_spec()
            .with_n(vec![4])
            .with_cap(vec![2])
            .with_seeds(1)
            .with_streams(3)
            .with_q(2);
        let report = run_sweep(&spec, 1).unwrap();
        let m = report.jobs[0].result.as_ref().unwrap();
        assert_eq!(m.instances, 6);
        assert_eq!(m.total_bits, 6 * 8 * 16);
    }

    #[test]
    fn panicking_jobs_become_job_errors_not_process_aborts() {
        // Every job's adversary panics mid-instance (faulty node 2 acts
        // in every Phase 1). The sweep must finish all 8 jobs, record
        // each panic as a job-level error, and keep the report sound.
        let spec = small_spec()
            .with_adversary(AdversarySpec::ChaosPanic)
            .with_faults(FaultSchedule::Fixed(std::collections::BTreeSet::from([2])));
        let report = run_sweep(&spec, 2).unwrap();
        assert_eq!(report.jobs.len(), 8);
        assert_eq!(report.aggregate.rejected_jobs, 8);
        for job in &report.jobs {
            let err = job.result.as_ref().unwrap_err();
            assert!(err.contains("job panicked"), "{err}");
            assert!(err.contains("chaos-panic"), "{err}");
        }
    }

    #[test]
    fn net_zero_model_matches_formula_and_carries_delivered_times() {
        let base = small_spec().with_n(vec![4]).with_cap(vec![2]).with_seeds(1);
        let off = run_sweep(&base, 1).unwrap();
        let zero = run_sweep(&base.clone().with_net(true), 1).unwrap();
        let m_off = off.jobs[0].result.as_ref().unwrap();
        let m_zero = zero.jobs[0].result.as_ref().unwrap();
        // Zero-latency lossless links: message-level time equals the
        // formula charge within per-message rounding.
        assert!(
            (m_off.total_time - m_zero.total_time).abs() < 1e-2,
            "{} vs {}",
            m_off.total_time,
            m_zero.total_time
        );
        assert!(m_off.delivered.is_none(), "formula path records nothing");
        let d = m_zero.delivered.as_ref().expect("net mode records");
        assert_eq!(d.instance.count() as usize, m_zero.instances);
        assert!(m_zero.all_correct);
    }

    #[test]
    fn net_latency_slows_jobs_without_changing_outcomes() {
        let base = small_spec()
            .with_n(vec![4])
            .with_cap(vec![2])
            .with_seeds(1)
            .with_adversary(AdversarySpec::Corruptor)
            .with_faults(FaultSchedule::Fixed(std::collections::BTreeSet::from([2])))
            .with_q(3);
        let off = run_sweep(&base, 1).unwrap();
        let spec = base.with_net(true).with_link_model(
            nab_net::NetSpec::parse("uniform:1000000:500000+loss:0.2:2:2000000").unwrap(),
        );
        let on = run_sweep(&spec, 1).unwrap();
        let m_off = off.jobs[0].result.as_ref().unwrap();
        let m_on = on.jobs[0].result.as_ref().unwrap();
        // Latency strictly slows simulated time but never perturbs the
        // protocol: same dispute history, same exposures, same validity.
        assert!(m_on.total_time > m_off.total_time);
        assert!(m_on.throughput < m_off.throughput);
        assert_eq!(m_on.removed, m_off.removed);
        assert_eq!(m_on.dispute_rounds, m_off.dispute_rounds);
        assert!(m_on.all_correct);
        assert!(m_on.delivered.as_ref().unwrap().phase1.count() > 0);
    }

    #[test]
    fn net_mode_is_thread_invariant() {
        let spec = small_spec()
            .with_adversary(AdversarySpec::Corruptor)
            .with_faults(FaultSchedule::Rotating { count: 1 })
            .with_net(true)
            .with_link_model(
                nab_net::NetSpec::parse("lognormal:1000000:0.5+loss:0.1:2:2000000").unwrap(),
            );
        let a = run_sweep(&spec, 1).unwrap();
        let b = run_sweep(&spec, 4).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let spec = small_spec()
            .with_adversary(AdversarySpec::Random { p: 0.4 })
            .with_faults(FaultSchedule::Rotating { count: 1 });
        let a = run_sweep(&spec, 1).unwrap();
        let b = run_sweep(&spec, 4).unwrap();
        assert_eq!(a.to_json(), b.to_json());
    }

    #[test]
    fn plan_cache_state_does_not_change_results() {
        let spec = small_spec()
            .with_adversary(AdversarySpec::Corruptor)
            .with_faults(FaultSchedule::Rotating { count: 1 })
            .with_seeds(3);
        let cached = run_sweep(&spec, 2).unwrap();
        let cold = run_sweep(&spec.clone().with_plan_cache(false), 2).unwrap();
        assert_eq!(cached.to_json(), cold.to_json());
        // An externally warmed cache changes nothing either.
        let cache = nab::plan::PlanCache::new();
        let warm1 = run_sweep_with_cache(&spec, 2, Some(&cache)).unwrap();
        let warm2 = run_sweep_with_cache(&spec, 2, Some(&cache)).unwrap();
        assert_eq!(warm1.to_json(), cached.to_json());
        assert_eq!(warm2.to_json(), cached.to_json());
        // The second pass over a warmed cache is all hits.
        let w2 = &warm2.aggregate;
        assert_eq!(w2.plan_misses, 0, "warm cache rebuilds nothing");
        assert!(w2.plan_hits > 0);
        assert_eq!(w2.plan_build_ns, 0);
    }

    #[test]
    fn plan_stats_account_for_sharing() {
        // 2 n-values × 2 caps × 3 seeds on a deterministic topology:
        // 4 distinct networks, 12 jobs → 4 misses, 8 hits.
        let spec = small_spec().with_seeds(3);
        let report = run_sweep(&spec, 1).unwrap();
        let a = &report.aggregate;
        assert_eq!(a.plan_misses, 4);
        assert_eq!(a.plan_hits, 8);
        assert!(a.plan_build_ns > 0);
        // With the cache off, every stream of every job plans privately.
        let cold = run_sweep(&spec.with_plan_cache(false), 1).unwrap();
        assert_eq!(cold.aggregate.plan_misses, 12);
        assert_eq!(cold.aggregate.plan_hits, 0);
        // The stats live in timed JSON only; canonical JSON is identical
        // despite the differing counters.
        assert_eq!(report.to_json(), cold.to_json());
        assert!(report.to_json_timed().contains("\"plan_cache_hits\":8"));
    }

    #[test]
    fn plan_repair_toggle_never_changes_canonical_results() {
        // Dispute-heavy: a corruptor forces replans; repair on vs. off
        // must agree byte-for-byte (the scenario-level differential on
        // top of the engine-level bit-identity test).
        let spec = small_spec()
            .with_adversary(AdversarySpec::Corruptor)
            .with_faults(FaultSchedule::Rotating { count: 1 })
            .with_q(4)
            .with_seeds(2);
        let fast = run_sweep(&spec, 2).unwrap();
        let slow = run_sweep(&spec.clone().with_plan_repair(false), 2).unwrap();
        assert_eq!(fast.to_json(), slow.to_json());
        // The replan counters live in timed JSON only and differ by mode:
        // repair-off counts every disputed derivation as a full recompute.
        assert_eq!(slow.aggregate.plan_repairs, 0, "repair-off never repairs");
        assert!(slow.aggregate.plan_full_recomputes > 0);
        assert!(
            fast.aggregate.plan_repairs + fast.aggregate.plan_full_recomputes > 0,
            "disputes forced replans"
        );
        assert!(fast.to_json_timed().contains("\"plan_repairs\":"));
        assert!(
            !fast.to_json().contains("plan_repair"),
            "canonical stays clean"
        );
    }

    #[test]
    fn mutations_migrate_plans_mid_job_and_stay_correct() {
        // 8 instances, flapping every 2: epochs 0..3 alternate between the
        // base and one degraded profile, so the shared cache sees exactly
        // 2 distinct networks and the revisits all hit.
        let spec = small_spec()
            .with_n(vec![5])
            .with_cap(vec![4])
            .with_seeds(1)
            .with_q(8)
            .with_mutations(crate::mutations::MutationSchedule::parse("flap:2:3:50").unwrap());
        let report = run_sweep(&spec, 1).unwrap();
        assert!(report.aggregate.all_correct);
        let m = report.jobs[0].result.as_ref().unwrap();
        assert_eq!(m.instances, 8);
        assert_eq!(m.plan_misses, 2, "base + one degraded profile");
        assert_eq!(m.plan_hits, 2, "epochs 2 and 3 revisit cached profiles");
        // Thread count still cannot perturb results under mutations.
        let again = run_sweep(&spec, 4).unwrap();
        assert_eq!(report.to_json(), again.to_json());
        // Mutations change measured behavior vs. the static network
        // (degraded links slow instances down).
        let static_net = run_sweep(
            &spec
                .clone()
                .with_mutations(crate::mutations::MutationSchedule::None),
            1,
        )
        .unwrap();
        assert_ne!(report.to_json(), static_net.to_json());
    }

    #[test]
    fn mutations_carry_dispute_state_across_migrations() {
        let spec = small_spec()
            .with_n(vec![5])
            .with_cap(vec![4])
            .with_seeds(1)
            .with_q(6)
            .with_adversary(AdversarySpec::Corruptor)
            .with_faults(FaultSchedule::Fixed(std::collections::BTreeSet::from([2])))
            .with_mutations(crate::mutations::MutationSchedule::parse("flap:3:2:50").unwrap());
        let report = run_sweep(&spec, 1).unwrap();
        assert!(report.aggregate.all_correct);
        let m = report.jobs[0].result.as_ref().unwrap();
        // The corruptor is exposed once and STAYS exposed after the epoch
        // switch: dispute state survived the plan migration.
        assert_eq!(m.removed, vec![2]);
        assert!(
            m.dispute_rounds <= m.dispute_budget,
            "migrations must not reset the f(f+1) amortization"
        );
    }

    #[test]
    fn disk_warm_cache_reproduces_cold_results_byte_for_byte() {
        let dir = std::env::temp_dir().join(format!(
            "nab-sweep-disk-{}-{:x}",
            std::process::id(),
            std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .unwrap()
                .as_nanos()
        ));
        let spec = small_spec()
            .with_adversary(AdversarySpec::Corruptor)
            .with_faults(FaultSchedule::Rotating { count: 1 });
        let cold = run_sweep(&spec, 2).unwrap();
        // First disk-backed sweep populates the directory…
        let store = nab::plan::PlanCache::with_dir(&dir);
        let warm1 = run_sweep_with_cache(&spec, 2, Some(&store)).unwrap();
        assert!(store.stats().disk_stores > 0, "plans persisted");
        // …a FRESH cache over the same directory loads instead of building.
        let reload = nab::plan::PlanCache::with_dir(&dir);
        let warm2 = run_sweep_with_cache(&spec, 2, Some(&reload)).unwrap();
        assert!(reload.stats().disk_hits > 0, "disk tier served plans");
        assert_eq!(reload.stats().misses, 0, "nothing rebuilt from scratch");
        assert_eq!(cold.to_json(), warm1.to_json());
        assert_eq!(cold.to_json(), warm2.to_json());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bounds_attach_when_requested() {
        let spec = small_spec()
            .with_n(vec![4])
            .with_cap(vec![2])
            .with_seeds(1)
            .with_bounds(true);
        let report = run_sweep(&spec, 1).unwrap();
        let m = report.jobs[0].result.as_ref().unwrap();
        let b = m.bounds.as_ref().expect("bounds computed");
        assert!(b.eq6_lower > 0.0);
        assert!(b.thm2_upper > 0);
        assert!(b.fraction_of_upper <= 1.0 + 1e-9, "Theorem 2 violated?");
    }
}
