//! Fault-placement schedules.
//!
//! The paper's fault model fixes the faulty set for the lifetime of a
//! deployment (dispute state assumes a node exposed once is faulty
//! forever), so a schedule varies placement **across jobs**, never within
//! one engine's instance stream:
//!
//! - [`FaultSchedule::Fixed`] — the same explicit set in every job;
//! - [`FaultSchedule::Rotating`] — a contiguous window of `count` nodes
//!   whose start rotates with the job's seed index, sweeping placement
//!   around the network across the sweep;
//! - [`FaultSchedule::WorstCase`] — per job, try candidate `count`-subsets
//!   and keep the placement that minimizes throughput (an empirical
//!   inner `min` over the adversary's placement choice).

use std::collections::BTreeSet;

use nab_netgraph::NodeId;

/// How faulty nodes are placed for each job of a sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultSchedule {
    /// No faulty nodes anywhere.
    None,
    /// The same explicit faulty set in every job.
    Fixed(BTreeSet<NodeId>),
    /// `count` contiguous node ids starting at `seed_index mod n`.
    Rotating {
        /// Number of faulty nodes.
        count: usize,
    },
    /// Search candidate placements, keep the throughput-minimizing one.
    WorstCase {
        /// Number of faulty nodes per candidate set.
        count: usize,
        /// Upper bound on candidate sets tried per job. When `C(n, count)`
        /// exceeds this, the candidates are evenly spaced ranks of the
        /// lexicographic combination ordering (not a prefix), so they span
        /// the whole node-id range.
        max_candidates: usize,
    },
}

impl FaultSchedule {
    /// Parses specs like `none`, `fixed:2,3`, `rotating:1`,
    /// `worst-case:1` or `worst-case:1:12`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, rest) = match spec.split_once(':') {
            Some((k, r)) => (k, Some(r)),
            None => (spec, None),
        };
        match kind {
            "none" => match rest {
                None => Ok(FaultSchedule::None),
                Some(_) => Err("faults none takes no parameters".into()),
            },
            "fixed" => {
                let rest = rest.ok_or("faults fixed needs node ids, e.g. fixed:2,3")?;
                let mut set = BTreeSet::new();
                for part in rest.split(',') {
                    let id: NodeId = part
                        .trim()
                        .parse()
                        .map_err(|_| format!("faults fixed: bad node id {part:?}"))?;
                    set.insert(id);
                }
                Ok(FaultSchedule::Fixed(set))
            }
            "rotating" => {
                let count = rest
                    .ok_or("faults rotating needs a count, e.g. rotating:1")?
                    .parse()
                    .map_err(|_| format!("faults rotating: bad count {rest:?}"))?;
                Ok(FaultSchedule::Rotating { count })
            }
            "worst-case" => {
                let rest = rest.ok_or("faults worst-case needs a count, e.g. worst-case:1")?;
                let mut it = rest.split(':');
                let count = it
                    .next()
                    .unwrap_or("")
                    .parse()
                    .map_err(|_| format!("faults worst-case: bad count in {rest:?}"))?;
                let max_candidates = match it.next() {
                    None => 16,
                    Some(m) => m
                        .parse()
                        .map_err(|_| format!("faults worst-case: bad candidate cap {m:?}"))?,
                };
                if it.next().is_some() {
                    return Err(format!(
                        "faults worst-case: too many parameters in {rest:?}"
                    ));
                }
                Ok(FaultSchedule::WorstCase {
                    count,
                    max_candidates,
                })
            }
            other => Err(format!(
                "unknown fault schedule {other:?} (known: none, fixed:IDS, rotating:COUNT, \
                 worst-case:COUNT[:MAX_CANDIDATES])"
            )),
        }
    }

    /// The canonical spec string this schedule parses from.
    pub fn spec_string(&self) -> String {
        match self {
            FaultSchedule::None => "none".into(),
            FaultSchedule::Fixed(set) => {
                let ids: Vec<String> = set.iter().map(|v| v.to_string()).collect();
                format!("fixed:{}", ids.join(","))
            }
            FaultSchedule::Rotating { count } => format!("rotating:{count}"),
            FaultSchedule::WorstCase {
                count,
                max_candidates,
            } => format!("worst-case:{count}:{max_candidates}"),
        }
    }

    /// Number of faulty nodes this schedule places.
    pub fn fault_count(&self) -> usize {
        match self {
            FaultSchedule::None => 0,
            FaultSchedule::Fixed(set) => set.len(),
            FaultSchedule::Rotating { count } => *count,
            FaultSchedule::WorstCase { count, .. } => *count,
        }
    }

    /// The candidate faulty sets for a job on `n` nodes with seed index
    /// `seed_index`. Single-candidate schedules return one set;
    /// [`FaultSchedule::WorstCase`] returns the (truncated) search space.
    ///
    /// Candidates containing node ids `≥ n` are filtered out (a `fixed`
    /// set can name nodes a small grid point does not have — the caller
    /// rejects the job in that case).
    pub fn candidates(&self, n: usize, seed_index: u64) -> Vec<BTreeSet<NodeId>> {
        match self {
            FaultSchedule::None => vec![BTreeSet::new()],
            FaultSchedule::Fixed(set) => {
                if set.iter().any(|&v| v >= n) {
                    Vec::new()
                } else {
                    vec![set.clone()]
                }
            }
            FaultSchedule::Rotating { count } => {
                if *count >= n {
                    return Vec::new();
                }
                let start = (seed_index as usize) % n;
                vec![(0..*count).map(|i| (start + i) % n).collect()]
            }
            FaultSchedule::WorstCase {
                count,
                max_candidates,
            } => {
                if *count >= n {
                    return Vec::new();
                }
                spread_subsets(n, *count, *max_candidates)
            }
        }
    }
}

/// Up to `max` `k`-subsets of `0..n`, deterministically **spread across
/// the whole lexicographic combination space** — when `C(n, k) ≤ max`
/// every subset is returned; otherwise `max` evenly spaced ranks are
/// unranked via the combinatorial number system. A plain lexicographic
/// prefix would confine every candidate to the lowest node ids, which on
/// asymmetric topologies (barbells, rings) systematically misses the
/// damaging placements; spreading keeps determinism while covering the
/// id range. `C(n, k)` is never materialized as a set family.
fn spread_subsets(n: usize, k: usize, max: usize) -> Vec<BTreeSet<NodeId>> {
    if k > n || max == 0 {
        return Vec::new();
    }
    let total = binom(n, k);
    let picks = (max as u128).min(total);
    // stride-first keeps `i * stride < total`, so the multiplication can
    // never overflow even when `binom` saturated to `u128::MAX`.
    let stride = total / picks;
    (0..picks)
        .map(|i| unrank_subset(n, k, i * stride))
        .collect()
}

/// Saturating binomial coefficient in `u128` (saturation is unreachable
/// for any realistic node count, and even then only compresses spacing).
fn binom(n: usize, k: usize) -> u128 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut acc: u128 = 1;
    for i in 0..k {
        acc = acc
            .saturating_mul((n - i) as u128)
            .checked_div((i + 1) as u128)
            .unwrap_or(u128::MAX);
    }
    acc
}

/// The `rank`-th `k`-subset of `0..n` in lexicographic order
/// (combinatorial number system unranking).
fn unrank_subset(n: usize, k: usize, mut rank: u128) -> BTreeSet<NodeId> {
    let mut out = BTreeSet::new();
    let mut x = 0;
    let mut remaining = k;
    while remaining > 0 {
        // Subsets starting with `x` continue with any (remaining-1)-subset
        // of the ids above it.
        let with_x = binom(n - x - 1, remaining - 1);
        if rank < with_x {
            out.insert(x);
            remaining -= 1;
        } else {
            rank -= with_x;
        }
        x += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips() {
        for s in ["none", "fixed:2,3", "rotating:1", "worst-case:1:16"] {
            let sched = FaultSchedule::parse(s).unwrap();
            assert_eq!(sched.spec_string(), s);
        }
        // Default candidate cap fills in.
        assert_eq!(
            FaultSchedule::parse("worst-case:2").unwrap().spec_string(),
            "worst-case:2:16"
        );
    }

    #[test]
    fn bad_specs_are_errors() {
        assert!(FaultSchedule::parse("fixed").is_err());
        assert!(FaultSchedule::parse("fixed:x").is_err());
        assert!(FaultSchedule::parse("rotating").is_err());
        assert!(FaultSchedule::parse("sometimes:1").is_err());
        assert!(FaultSchedule::parse("none:1").is_err());
    }

    #[test]
    fn rotating_sweeps_placement() {
        let sched = FaultSchedule::Rotating { count: 2 };
        let a = &sched.candidates(5, 0)[0];
        let b = &sched.candidates(5, 1)[0];
        let wrap = &sched.candidates(5, 4)[0];
        assert_eq!(a, &BTreeSet::from([0, 1]));
        assert_eq!(b, &BTreeSet::from([1, 2]));
        assert_eq!(wrap, &BTreeSet::from([4, 0]));
    }

    #[test]
    fn worst_case_enumerates_subsets() {
        let sched = FaultSchedule::WorstCase {
            count: 1,
            max_candidates: 16,
        };
        let cands = sched.candidates(4, 0);
        assert_eq!(cands.len(), 4);
        let sched = FaultSchedule::WorstCase {
            count: 2,
            max_candidates: 3,
        };
        assert_eq!(sched.candidates(5, 0).len(), 3, "cap applies");
    }

    #[test]
    fn spread_subsets_cover_the_whole_family_when_it_fits() {
        let nodes: Vec<NodeId> = (0..6).collect();
        let full = nab::bounds::k_subsets(&nodes, 3);
        let spread = super::spread_subsets(6, 3, 1000);
        assert_eq!(spread.len(), 20, "C(6,3) = 20, all enumerated");
        assert_eq!(full, spread, "small families come back in lex order");
    }

    #[test]
    fn unranking_matches_lexicographic_enumeration() {
        let nodes: Vec<NodeId> = (0..7).collect();
        let full = nab::bounds::k_subsets(&nodes, 3);
        for (rank, expect) in full.iter().enumerate() {
            assert_eq!(
                &super::unrank_subset(7, 3, rank as u128),
                expect,
                "rank {rank}"
            );
        }
    }

    #[test]
    fn worst_case_on_huge_n_spreads_without_materializing_the_family() {
        // C(64, 4) ≈ 635k; the cap must bound the work, not the family —
        // and the candidates must span the id range, not cluster at the
        // low ids (a lexicographic prefix would confine all 16 candidates
        // to nodes {0..6}).
        let sched = FaultSchedule::WorstCase {
            count: 4,
            max_candidates: 16,
        };
        let cands = sched.candidates(64, 0);
        assert_eq!(cands.len(), 16);
        assert_eq!(
            cands[0],
            BTreeSet::from([0, 1, 2, 3]),
            "rank 0 is lex-first"
        );
        let touched: BTreeSet<NodeId> = cands.iter().flatten().copied().collect();
        let hi = *touched.iter().max().unwrap();
        assert!(
            hi >= 32,
            "candidates must reach the upper id range, max touched {hi}"
        );
        // Distinct ranks → distinct candidates.
        assert_eq!(cands.iter().collect::<BTreeSet<_>>().len(), 16);
    }

    #[test]
    fn saturated_binomials_do_not_overflow_rank_spacing() {
        // C(130, 65) saturates binom() to u128::MAX; spacing must stay
        // well-defined (stride-first math) and candidates distinct.
        let sched = FaultSchedule::WorstCase {
            count: 65,
            max_candidates: 8,
        };
        let cands = sched.candidates(130, 0);
        assert_eq!(cands.len(), 8);
        assert_eq!(cands.iter().collect::<BTreeSet<_>>().len(), 8);
        for c in &cands {
            assert_eq!(c.len(), 65);
            assert!(c.iter().all(|&v| v < 130));
        }
    }

    #[test]
    fn out_of_range_fixed_set_yields_no_candidates() {
        let sched = FaultSchedule::Fixed(BTreeSet::from([6]));
        assert!(sched.candidates(4, 0).is_empty());
    }
}
