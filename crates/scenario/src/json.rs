//! A minimal deterministic JSON value tree and serializer.
//!
//! The sweep report must serialize **byte-identically** for identical
//! inputs regardless of worker-thread count or platform, so the report
//! pipeline uses this hand-rolled writer instead of an external dependency:
//! object keys keep insertion order, floats use Rust's shortest-roundtrip
//! `Display` (deterministic), and non-finite floats become `null`.

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (serialized without a decimal point).
    U64(u64),
    /// A float (shortest-roundtrip representation; non-finite → `null`).
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; pairs keep their insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Builds a string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Serializes to a compact JSON string.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Serializes with two-space indentation (stable layout for diffing).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(x) => out.push_str(&x.to_string()),
            Json::F64(x) => write_f64(*x, out),
            Json::Str(s) => write_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    fn write_pretty(&self, out: &mut String, depth: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    item.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(pairs) if !pairs.is_empty() => {
                out.push_str("{\n");
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(",\n");
                    }
                    indent(out, depth + 1);
                    write_string(k, out);
                    out.push_str(": ");
                    v.write_pretty(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
            other => other.write(out),
        }
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_f64(x: f64, out: &mut String) {
    if !x.is_finite() {
        out.push_str("null");
        return;
    }
    let s = format!("{x}");
    out.push_str(&s);
    // `Display` prints integral floats without a point; keep the value
    // typed as a float on the wire.
    if !s.contains('.') && !s.contains('e') {
        out.push_str(".0");
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_render() {
        assert_eq!(Json::Null.render(), "null");
        assert_eq!(Json::Bool(true).render(), "true");
        assert_eq!(Json::U64(42).render(), "42");
        assert_eq!(Json::F64(1.5).render(), "1.5");
        assert_eq!(Json::F64(2.0).render(), "2.0");
        assert_eq!(Json::F64(f64::NAN).render(), "null");
        assert_eq!(Json::str("a\"b\\c\nd").render(), "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn containers_preserve_order() {
        let j = Json::obj(vec![
            ("z", Json::U64(1)),
            ("a", Json::Arr(vec![Json::U64(2), Json::Bool(false)])),
        ]);
        assert_eq!(j.render(), "{\"z\":1,\"a\":[2,false]}");
    }

    #[test]
    fn pretty_is_parseable_shape() {
        let j = Json::obj(vec![("k", Json::Arr(vec![Json::U64(1)]))]);
        let p = j.render_pretty();
        assert!(p.contains("\"k\": [\n"));
        assert!(p.ends_with("}\n"));
    }

    #[test]
    fn float_rendering_is_shortest_roundtrip() {
        let x = 1.0 / 3.0;
        let rendered = Json::F64(x).render();
        assert_eq!(rendered.parse::<f64>().unwrap(), x);
    }
}
