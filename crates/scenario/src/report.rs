//! Sweep results: per-job metrics, the aggregated report, and its
//! deterministic JSON rendering.
//!
//! Two serialization flavors exist:
//!
//! - [`SweepReport::to_json`] / [`SweepReport::to_json_pretty`] — the
//!   **canonical** form, byte-identical for identical sweeps regardless of
//!   thread count (the determinism tests pin this). Wall-clock timings are
//!   excluded, because they vary run to run.
//! - [`SweepReport::to_json_timed`] / [`SweepReport::to_json_pretty_timed`]
//!   — the same document plus the measured per-phase wall-clock
//!   nanoseconds (`wall_*_ns` keys). This is what `nab-sim --timings` and
//!   the `perf` binary's `BENCH_sweep.json` emit; the *schema* is still
//!   deterministic (fixed keys in a fixed order), only the nanosecond
//!   values vary.

use nab::engine::InstanceReport;
use nab::DeliveredTimes;
use nab_netgraph::NodeId;
use nab_obs::{Histogram, Registry};

use crate::json::Json;

/// Per-phase wall-clock **latency distributions** over a set of broadcast
/// instances. Replaces the old sum-only `PhaseWallNanos` accumulation in
/// job metrics: the exact per-phase sums are still available
/// ([`Histogram::sum`] backs the legacy `wall_*_ns` keys), but the
/// histograms additionally carry p50/p90/p99 and min/max.
///
/// A phase's histogram only receives a sample when that phase actually
/// ran: defaulted instances record nothing per phase, instances served by
/// the phase-1-only fast path skip `equality`/`flags`, and `dispute` only
/// records when dispute control executed. The `instance` histogram records
/// every instance's total (0 for defaulted ones). Merging is commutative
/// and associative (see [`Histogram::merge`]), so aggregation is
/// deterministic for any worker-thread partition of the jobs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseLatency {
    /// Phase 1 (arborescence streaming) wall nanoseconds per instance.
    pub phase1: Histogram,
    /// Equality-check wall nanoseconds per instance.
    pub equality: Histogram,
    /// Flag-broadcast wall nanoseconds per instance.
    pub flags: Histogram,
    /// Dispute-control wall nanoseconds per instance that disputed.
    pub dispute: Histogram,
    /// Whole-instance wall nanoseconds (sum of the phases that ran).
    pub instance: Histogram,
}

impl PhaseLatency {
    /// Record one instance's measured wall-clock breakdown.
    pub fn record_instance(&mut self, rep: &InstanceReport) {
        let total = rep.wall.phase1 + rep.wall.equality + rep.wall.flags + rep.wall.dispute;
        self.instance.record(total);
        if rep.defaulted {
            return;
        }
        self.phase1.record(rep.wall.phase1);
        if rep.rho_k > 0 {
            self.equality.record(rep.wall.equality);
            self.flags.record(rep.wall.flags);
        }
        if rep.dispute_ran {
            self.dispute.record(rep.wall.dispute);
        }
    }

    /// Merge another job's distributions into this one.
    pub fn merge(&mut self, other: &PhaseLatency) {
        self.phase1.merge(&other.phase1);
        self.equality.merge(&other.equality);
        self.flags.merge(&other.flags);
        self.dispute.merge(&other.dispute);
        self.instance.merge(&other.instance);
    }

    /// `(name, histogram)` pairs in the fixed serialization order.
    pub fn phases(&self) -> [(&'static str, &Histogram); 5] {
        [
            ("phase1", &self.phase1),
            ("equality", &self.equality),
            ("flags", &self.flags),
            ("dispute", &self.dispute),
            ("instance", &self.instance),
        ]
    }
}

/// The paper's bounds evaluated for one job's network.
#[derive(Debug, Clone, PartialEq)]
pub struct JobBounds {
    /// Eq. 6 throughput lower bound `γ*ρ*/(γ*+ρ*)`.
    pub eq6_lower: f64,
    /// Theorem 2 capacity upper bound `min(γ*, 2ρ*)`.
    pub thm2_upper: u64,
    /// `throughput / eq6_lower` (≥ 1 once `L` is large enough).
    pub fraction_of_lower: f64,
    /// `throughput / thm2_upper` (≤ 1 always, per Theorem 2).
    pub fraction_of_upper: f64,
}

/// Everything measured for one job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMetrics {
    /// Broadcast instances executed (`q × streams`).
    pub instances: usize,
    /// Useful payload bits broadcast: `L` per instance, except defaulted
    /// instances (source already exposed), which deliver the default
    /// value instead of a payload and count zero.
    pub total_bits: u64,
    /// Total simulated time.
    pub total_time: f64,
    /// `total_bits / total_time`.
    pub throughput: f64,
    /// Throughput over the instances after each stream's last dispute
    /// round. `None` when no such instance carries simulated time: every
    /// instance disputed, or the post-dispute tail consists only of
    /// zero-cost defaulted instances (source exposed as faulty).
    pub steady_throughput: Option<f64>,
    /// Summed Phase-1 time.
    pub phase1_time: f64,
    /// Summed equality-check time.
    pub equality_time: f64,
    /// Summed flag-broadcast time.
    pub flags_time: f64,
    /// Summed dispute-control time.
    pub dispute_time: f64,
    /// Dispute-control executions observed (summed over streams).
    pub dispute_rounds: usize,
    /// Job-level dispute budget: `streams × f(f+1)` (each stream is an
    /// independent deployment with its own paper bound).
    pub dispute_budget: usize,
    /// Whether any single stream exceeded its own `f(f+1)` budget.
    pub dispute_budget_exceeded: bool,
    /// Instances whose equality check raised MISMATCH.
    pub mismatch_instances: usize,
    /// Instances served by the known-faulty-source fast path.
    pub defaulted_instances: usize,
    /// All dispute pairs accumulated (union across streams).
    pub pairs: Vec<(NodeId, NodeId)>,
    /// Nodes exposed as faulty (union across streams).
    pub removed: Vec<NodeId>,
    /// `(instance, node)` exposure events in execution order.
    pub exposed_history: Vec<(usize, NodeId)>,
    /// Per-instance time beyond Phase 1 (the overhead the `f(f+1)` bound
    /// amortizes away).
    pub amortized_overhead: f64,
    /// Agreement + validity held in every instance.
    pub all_correct: bool,
    /// `γ_k` of the first instance.
    pub gamma1: u64,
    /// `ρ_k` of the first instance.
    pub rho1: u64,
    /// The paper's bounds, when the scenario asked for them.
    pub bounds: Option<JobBounds>,
    /// Per-phase **wall-clock** latency distributions across the job's
    /// instances (measured, not simulated; excluded from canonical JSON).
    /// The per-phase sums back the legacy `wall_*_ns` keys.
    pub latency: PhaseLatency,
    /// Per-phase **delivered-time** distributions (virtual nanoseconds)
    /// from message-level execution, merged over the job's instances.
    /// `Some` only when the scenario ran with `net = on`; rendered in
    /// timed JSON alongside the wall-clock latency block.
    pub delivered: Option<DeliveredTimes>,
    /// Total measured wall-clock nanoseconds for the job's measurement
    /// loop (includes engine setup and input generation).
    pub wall_ns: u64,
    /// Plan-cache hits across the job's candidate measurements (excluded
    /// from canonical JSON: under multiple worker threads, *which* job
    /// misses first is scheduling-dependent).
    pub plan_hits: u64,
    /// Plan builds (cache misses, or direct builds when the cache is
    /// disabled) across the job's candidate measurements.
    pub plan_misses: u64,
    /// Wall nanoseconds this job spent building network plans.
    pub plan_build_ns: u64,
    /// Disputed-`G_k` replans resolved by incremental repair (γ/ρ bounds
    /// unchanged) across the job's engines (timed JSON only).
    pub plan_repairs: u64,
    /// Disputed-`G_k` replans that fell back to a full recompute (a γ or
    /// ρ bound changed, or repair was disabled).
    pub plan_full_recomputes: u64,
    /// Wall nanoseconds spent replanning disputed `G_k`s.
    pub plan_repair_ns: u64,
}

/// One job's parameters and outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct JobOutcome {
    /// Grid position.
    pub index: usize,
    /// Node count.
    pub n: usize,
    /// Capacity scale.
    pub cap: u64,
    /// Fault bound.
    pub f: usize,
    /// Symbols per value.
    pub symbols: usize,
    /// Seed repetition index.
    pub seed_index: u64,
    /// Derived job seed.
    pub seed: u64,
    /// The fault placement used (the worst one, for search schedules; the
    /// first erroring one when every candidate failed).
    pub faulty: Vec<NodeId>,
    /// Fault placements evaluated.
    pub candidates_tried: usize,
    /// Candidate placements whose measurement errored (a worst-case
    /// search never silently drops them — see [`crate::sweep::run_job`]).
    pub candidates_failed: usize,
    /// The first candidate failure (placement + reason), if any.
    pub candidate_error: Option<String>,
    /// Metrics, or why the grid point was rejected.
    pub result: Result<JobMetrics, String>,
}

/// Whole-sweep summary statistics (over successfully measured jobs).
#[derive(Debug, Clone, PartialEq)]
pub struct Aggregate {
    /// Total jobs in the grid.
    pub jobs: usize,
    /// Jobs measured successfully.
    pub ok_jobs: usize,
    /// Jobs rejected (impossible grid points).
    pub rejected_jobs: usize,
    /// Instances across all measured jobs.
    pub total_instances: usize,
    /// Bits across all measured jobs.
    pub total_bits: u64,
    /// Simulated time across all measured jobs.
    pub total_time: f64,
    /// Unweighted mean of per-job throughput.
    pub mean_throughput: f64,
    /// Minimum per-job throughput.
    pub min_throughput: f64,
    /// Maximum per-job throughput.
    pub max_throughput: f64,
    /// Dispute-control executions across all jobs.
    pub total_dispute_rounds: usize,
    /// Largest per-job dispute count.
    pub max_dispute_rounds: usize,
    /// Whether any job exceeded its `f(f+1)` dispute budget.
    pub dispute_budget_violated: bool,
    /// Agreement + validity held in every instance of every job.
    pub all_correct: bool,
    /// Total exposure events.
    pub exposed_nodes: usize,
    /// Summed measured wall-clock nanoseconds over all measured jobs
    /// (excluded from canonical JSON).
    pub wall_ns: u64,
    /// Plan-cache hits summed over measured jobs (timed JSON only).
    pub plan_hits: u64,
    /// Plan builds summed over measured jobs (timed JSON only).
    pub plan_misses: u64,
    /// Plan-build wall nanoseconds summed over measured jobs (timed JSON
    /// only).
    pub plan_build_ns: u64,
    /// Incremental plan repairs summed over measured jobs (timed JSON
    /// only).
    pub plan_repairs: u64,
    /// Full `G_k` recomputes summed over measured jobs (timed JSON only).
    pub plan_full_recomputes: u64,
    /// Replanning wall nanoseconds summed over measured jobs (timed JSON
    /// only).
    pub plan_repair_ns: u64,
    /// Per-phase latency distributions merged over all measured jobs
    /// (timed JSON only; the merge is partition-invariant, so this is
    /// identical for any worker-thread count).
    pub latency: PhaseLatency,
    /// Delivered-time distributions merged over all measured jobs that
    /// ran message-level (`None` when no job did).
    pub delivered: Option<DeliveredTimes>,
}

impl Aggregate {
    /// Computes the aggregate over a slice of outcomes (deterministic:
    /// pure folds in index order).
    pub fn from_outcomes(outcomes: &[JobOutcome]) -> Aggregate {
        let mut agg = Aggregate {
            jobs: outcomes.len(),
            ok_jobs: 0,
            rejected_jobs: 0,
            total_instances: 0,
            total_bits: 0,
            // nab-lint: allow(NAB005): constant zero initializer
            total_time: 0.0,
            // nab-lint: allow(NAB005): constant zero initializer
            mean_throughput: 0.0,
            min_throughput: f64::INFINITY,
            // nab-lint: allow(NAB005): constant zero initializer
            max_throughput: 0.0,
            total_dispute_rounds: 0,
            max_dispute_rounds: 0,
            dispute_budget_violated: false,
            all_correct: true,
            exposed_nodes: 0,
            wall_ns: 0,
            plan_hits: 0,
            plan_misses: 0,
            plan_build_ns: 0,
            plan_repairs: 0,
            plan_full_recomputes: 0,
            plan_repair_ns: 0,
            latency: PhaseLatency::default(),
            delivered: None,
        };
        let mut throughput_sum = 0.0; // nab-lint: allow(NAB005): constant zero initializer
        for outcome in outcomes {
            match &outcome.result {
                Ok(m) => {
                    agg.ok_jobs += 1;
                    agg.total_instances += m.instances;
                    agg.total_bits += m.total_bits;
                    agg.total_time += m.total_time;
                    throughput_sum += m.throughput;
                    agg.min_throughput = agg.min_throughput.min(m.throughput);
                    agg.max_throughput = agg.max_throughput.max(m.throughput);
                    agg.total_dispute_rounds += m.dispute_rounds;
                    agg.max_dispute_rounds = agg.max_dispute_rounds.max(m.dispute_rounds);
                    if m.dispute_budget_exceeded {
                        agg.dispute_budget_violated = true;
                    }
                    if !m.all_correct {
                        agg.all_correct = false;
                    }
                    agg.exposed_nodes += m.exposed_history.len();
                    agg.wall_ns += m.wall_ns;
                    agg.plan_hits += m.plan_hits;
                    agg.plan_misses += m.plan_misses;
                    agg.plan_build_ns += m.plan_build_ns;
                    agg.plan_repairs += m.plan_repairs;
                    agg.plan_full_recomputes += m.plan_full_recomputes;
                    agg.plan_repair_ns += m.plan_repair_ns;
                    agg.latency.merge(&m.latency);
                    if let Some(d) = &m.delivered {
                        agg.delivered
                            .get_or_insert_with(DeliveredTimes::default)
                            .merge(d);
                    }
                }
                Err(_) => agg.rejected_jobs += 1,
            }
        }
        if agg.ok_jobs > 0 {
            // nab-lint: allow(NAB005): mean over the outcome slice in its
            // fixed job order — a deterministic function of the inputs.
            agg.mean_throughput = throughput_sum / agg.ok_jobs as f64;
        } else {
            agg.min_throughput = 0.0; // nab-lint: allow(NAB005): constant zero
        }
        agg
    }
}

/// The full result of running a scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepReport {
    /// Scenario name.
    pub scenario: String,
    /// Canonical topology spec string.
    pub topology: String,
    /// Canonical adversary spec string.
    pub adversary: String,
    /// Canonical fault-schedule spec string.
    pub faults: String,
    /// Per-job outcomes in grid order.
    pub jobs: Vec<JobOutcome>,
    /// Whole-sweep summary.
    pub aggregate: Aggregate,
}

impl SweepReport {
    /// Serializes to compact JSON. Byte-identical for identical sweeps
    /// regardless of worker-thread count (wall-clock timings excluded).
    pub fn to_json(&self) -> String {
        self.to_json_value(false).render()
    }

    /// Serializes to pretty-printed JSON (same determinism guarantee).
    pub fn to_json_pretty(&self) -> String {
        self.to_json_value(false).render_pretty()
    }

    /// Compact JSON including measured `wall_*_ns` timing fields (schema
    /// deterministic, values run-dependent).
    pub fn to_json_timed(&self) -> String {
        self.to_json_value(true).render()
    }

    /// Pretty JSON including measured `wall_*_ns` timing fields.
    pub fn to_json_pretty_timed(&self) -> String {
        self.to_json_value(true).render_pretty()
    }

    /// The report as a JSON value tree, optionally with wall-clock
    /// timings — exposed so downstream tooling (the `perf` binary) can
    /// embed the report in a larger document.
    pub fn to_json_value(&self, with_timings: bool) -> Json {
        let mut doc = Json::obj(vec![
            ("scenario", Json::str(&self.scenario)),
            ("topology", Json::str(&self.topology)),
            ("adversary", Json::str(&self.adversary)),
            ("faults", Json::str(&self.faults)),
            (
                "jobs",
                Json::Arr(
                    self.jobs
                        .iter()
                        .map(|j| job_json(j, with_timings))
                        .collect(),
                ),
            ),
            ("aggregate", aggregate_json(&self.aggregate, with_timings)),
        ]);
        if with_timings {
            if let Json::Obj(pairs) = &mut doc {
                pairs.push(("metrics".into(), registry_json(&self.metrics_registry())));
            }
        }
        doc
    }

    /// The sweep's fixed-schema metrics registry: counters for the things
    /// the sweep did and per-phase latency histograms merged over all
    /// measured jobs. This is what the timed JSON's `metrics` section and
    /// the `perf` binary's percentile block render; future subsystems
    /// (the stats endpoint of a serving layer) can consume it directly.
    pub fn metrics_registry(&self) -> Registry {
        let a = &self.aggregate;
        let mut reg = Registry::new();
        reg.counter_add("jobs", a.jobs as u64);
        reg.counter_add("jobs_ok", a.ok_jobs as u64);
        reg.counter_add("jobs_rejected", a.rejected_jobs as u64);
        reg.counter_add("instances", a.total_instances as u64);
        reg.counter_add("dispute_rounds", a.total_dispute_rounds as u64);
        reg.counter_add("nodes_exposed", a.exposed_nodes as u64);
        reg.counter_add("plan_cache_hits", a.plan_hits);
        reg.counter_add("plan_cache_misses", a.plan_misses);
        reg.counter_add("plan_repairs", a.plan_repairs);
        reg.counter_add("plan_full_recomputes", a.plan_full_recomputes);
        let (mut mismatch, mut defaulted) = (0u64, 0u64);
        for job in &self.jobs {
            if let Ok(m) = &job.result {
                mismatch += m.mismatch_instances as u64;
                defaulted += m.defaulted_instances as u64;
            }
        }
        reg.counter_add("mismatch_instances", mismatch);
        reg.counter_add("defaulted_instances", defaulted);
        for (name, histogram) in a.latency.phases() {
            reg.set_histogram(&format!("latency_{name}_ns"), histogram.clone());
        }
        reg
    }

    /// A terminal-friendly summary table of the per-job outcomes.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "  job |  n | cap | f | symbols | seed# | faulty      | throughput | disputes | ok\n",
        );
        out.push_str(
            "------+----+-----+---+---------+-------+-------------+------------+----------+----\n",
        );
        for job in &self.jobs {
            let faulty = format!("{:?}", job.faulty);
            match &job.result {
                Ok(m) => out.push_str(&format!(
                    "{:>5} | {:>2} | {:>3} | {} | {:>7} | {:>5} | {:<11} | {:>10.3} | {:>8} | {}\n",
                    job.index,
                    job.n,
                    job.cap,
                    job.f,
                    job.symbols,
                    job.seed_index,
                    faulty,
                    m.throughput,
                    m.dispute_rounds,
                    if m.all_correct { "yes" } else { "NO" },
                )),
                Err(e) => out.push_str(&format!(
                    "{:>5} | {:>2} | {:>3} | {} | {:>7} | {:>5} | {:<11} | {:>10} | {:>8} | --  ({e})\n",
                    job.index, job.n, job.cap, job.f, job.symbols, job.seed_index, faulty, "rejected", "-",
                )),
            }
        }
        out
    }
}

fn job_json(job: &JobOutcome, with_timings: bool) -> Json {
    let mut pairs = vec![
        ("index", Json::U64(job.index as u64)),
        ("n", Json::U64(job.n as u64)),
        ("cap", Json::U64(job.cap)),
        ("f", Json::U64(job.f as u64)),
        ("symbols", Json::U64(job.symbols as u64)),
        ("seed_index", Json::U64(job.seed_index)),
        ("seed", Json::U64(job.seed)),
        (
            "faulty",
            Json::Arr(job.faulty.iter().map(|&v| Json::U64(v as u64)).collect()),
        ),
        ("candidates_tried", Json::U64(job.candidates_tried as u64)),
    ];
    if job.candidates_failed > 0 {
        pairs.push(("candidates_failed", Json::U64(job.candidates_failed as u64)));
        if let Some(e) = &job.candidate_error {
            pairs.push(("candidate_error", Json::str(e)));
        }
    }
    match &job.result {
        Ok(m) => pairs.push(("metrics", metrics_json(m, with_timings))),
        Err(e) => pairs.push(("error", Json::str(e))),
    }
    Json::obj(pairs)
}

fn metrics_json(m: &JobMetrics, with_timings: bool) -> Json {
    let mut pairs = vec![
        ("instances", Json::U64(m.instances as u64)),
        ("total_bits", Json::U64(m.total_bits)),
        ("total_time", Json::F64(m.total_time)),
        ("throughput", Json::F64(m.throughput)),
        (
            "steady_throughput",
            m.steady_throughput.map(Json::F64).unwrap_or(Json::Null),
        ),
        ("phase1_time", Json::F64(m.phase1_time)),
        ("equality_time", Json::F64(m.equality_time)),
        ("flags_time", Json::F64(m.flags_time)),
        ("dispute_time", Json::F64(m.dispute_time)),
        ("dispute_rounds", Json::U64(m.dispute_rounds as u64)),
        ("dispute_budget", Json::U64(m.dispute_budget as u64)),
        (
            "dispute_budget_exceeded",
            Json::Bool(m.dispute_budget_exceeded),
        ),
        ("mismatch_instances", Json::U64(m.mismatch_instances as u64)),
        (
            "defaulted_instances",
            Json::U64(m.defaulted_instances as u64),
        ),
        (
            "pairs",
            Json::Arr(
                m.pairs
                    .iter()
                    .map(|&(a, b)| Json::Arr(vec![Json::U64(a as u64), Json::U64(b as u64)]))
                    .collect(),
            ),
        ),
        (
            "removed",
            Json::Arr(m.removed.iter().map(|&v| Json::U64(v as u64)).collect()),
        ),
        (
            "exposed_history",
            Json::Arr(
                m.exposed_history
                    .iter()
                    .map(|&(i, v)| Json::Arr(vec![Json::U64(i as u64), Json::U64(v as u64)]))
                    .collect(),
            ),
        ),
        ("amortized_overhead", Json::F64(m.amortized_overhead)),
        ("all_correct", Json::Bool(m.all_correct)),
        ("gamma1", Json::U64(m.gamma1)),
        ("rho1", Json::U64(m.rho1)),
    ];
    if let Some(b) = &m.bounds {
        pairs.push((
            "bounds",
            Json::obj(vec![
                ("eq6_lower", Json::F64(b.eq6_lower)),
                ("thm2_upper", Json::U64(b.thm2_upper)),
                ("fraction_of_lower", Json::F64(b.fraction_of_lower)),
                ("fraction_of_upper", Json::F64(b.fraction_of_upper)),
            ]),
        ));
    }
    if with_timings {
        pairs.push(("wall_phase1_ns", Json::U64(m.latency.phase1.sum())));
        pairs.push(("wall_equality_ns", Json::U64(m.latency.equality.sum())));
        pairs.push(("wall_flags_ns", Json::U64(m.latency.flags.sum())));
        pairs.push(("wall_dispute_ns", Json::U64(m.latency.dispute.sum())));
        pairs.push(("wall_total_ns", Json::U64(m.wall_ns)));
        pairs.push(("plan_cache_hits", Json::U64(m.plan_hits)));
        pairs.push(("plan_cache_misses", Json::U64(m.plan_misses)));
        pairs.push(("plan_build_ns", Json::U64(m.plan_build_ns)));
        pairs.push(("plan_repairs", Json::U64(m.plan_repairs)));
        pairs.push(("plan_full_recomputes", Json::U64(m.plan_full_recomputes)));
        pairs.push(("plan_repair_ns", Json::U64(m.plan_repair_ns)));
        pairs.push(("latency", latency_json(&m.latency)));
        if let Some(d) = &m.delivered {
            pairs.push(("delivered", delivered_json(d)));
        }
    }
    Json::obj(pairs)
}

/// Histogram summary in the fixed timed-JSON schema: exact count/sum and
/// min/max plus the log2-bucket percentile estimates. An empty histogram
/// (a phase that never ran) renders zeroed exact stats and **omits** the
/// percentile keys — percentiles of nothing are meaningless, and `min`
/// must never surface the internal `u64::MAX` sentinel.
fn histogram_json(h: &Histogram) -> Json {
    let mut pairs = vec![
        ("count", Json::U64(h.count())),
        ("sum_ns", Json::U64(h.sum())),
        ("min_ns", Json::U64(h.min())),
        ("max_ns", Json::U64(h.max())),
    ];
    if h.count() > 0 {
        // nab-lint: allow(NAB005): constant percentile ranks (the values
        // serialized are the u64 bucket bounds, not floats)
        pairs.push(("p50_ns", Json::U64(h.percentile(50.0))));
        // nab-lint: allow(NAB005): constant percentile rank
        pairs.push(("p90_ns", Json::U64(h.percentile(90.0))));
        // nab-lint: allow(NAB005): constant percentile rank
        pairs.push(("p99_ns", Json::U64(h.percentile(99.0))));
    }
    Json::obj(pairs)
}

fn latency_json(latency: &PhaseLatency) -> Json {
    Json::obj(
        latency
            .phases()
            .into_iter()
            .map(|(name, h)| (name, histogram_json(h)))
            .collect(),
    )
}

fn delivered_json(delivered: &DeliveredTimes) -> Json {
    Json::obj(
        delivered
            .phases()
            .into_iter()
            .map(|(name, h)| (name, histogram_json(h)))
            .collect(),
    )
}

fn registry_json(reg: &Registry) -> Json {
    Json::obj(vec![
        (
            "counters",
            Json::obj(reg.counters().map(|(n, v)| (n, Json::U64(v))).collect()),
        ),
        (
            "histograms",
            Json::obj(
                reg.histograms()
                    .map(|(n, h)| (n, histogram_json(h)))
                    .collect(),
            ),
        ),
    ])
}

fn aggregate_json(a: &Aggregate, with_timings: bool) -> Json {
    let mut pairs = vec![
        ("jobs", Json::U64(a.jobs as u64)),
        ("ok_jobs", Json::U64(a.ok_jobs as u64)),
        ("rejected_jobs", Json::U64(a.rejected_jobs as u64)),
        ("total_instances", Json::U64(a.total_instances as u64)),
        ("total_bits", Json::U64(a.total_bits)),
        ("total_time", Json::F64(a.total_time)),
        ("mean_throughput", Json::F64(a.mean_throughput)),
        ("min_throughput", Json::F64(a.min_throughput)),
        ("max_throughput", Json::F64(a.max_throughput)),
        (
            "total_dispute_rounds",
            Json::U64(a.total_dispute_rounds as u64),
        ),
        ("max_dispute_rounds", Json::U64(a.max_dispute_rounds as u64)),
        (
            "dispute_budget_violated",
            Json::Bool(a.dispute_budget_violated),
        ),
        ("all_correct", Json::Bool(a.all_correct)),
        ("exposed_nodes", Json::U64(a.exposed_nodes as u64)),
    ];
    if with_timings {
        pairs.push(("wall_phase1_ns", Json::U64(a.latency.phase1.sum())));
        pairs.push(("wall_equality_ns", Json::U64(a.latency.equality.sum())));
        pairs.push(("wall_flags_ns", Json::U64(a.latency.flags.sum())));
        pairs.push(("wall_dispute_ns", Json::U64(a.latency.dispute.sum())));
        pairs.push(("wall_total_ns", Json::U64(a.wall_ns)));
        pairs.push(("plan_cache_hits", Json::U64(a.plan_hits)));
        pairs.push(("plan_cache_misses", Json::U64(a.plan_misses)));
        pairs.push(("plan_build_ns", Json::U64(a.plan_build_ns)));
        pairs.push(("plan_repairs", Json::U64(a.plan_repairs)));
        pairs.push(("plan_full_recomputes", Json::U64(a.plan_full_recomputes)));
        pairs.push(("plan_repair_ns", Json::U64(a.plan_repair_ns)));
        pairs.push(("latency", latency_json(&a.latency)));
        if let Some(d) = &a.delivered {
            pairs.push(("delivered", delivered_json(d)));
        }
    }
    Json::obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn latency() -> PhaseLatency {
        // One fault-free instance measured at 100/50/25 ns: same sums the
        // old `PhaseWallNanos { 100, 50, 25, 0 }` fixture carried.
        let mut lat = PhaseLatency::default();
        lat.phase1.record(100);
        lat.equality.record(50);
        lat.flags.record(25);
        lat.instance.record(175);
        lat
    }

    fn metrics() -> JobMetrics {
        JobMetrics {
            instances: 2,
            total_bits: 256,
            total_time: 64.0,
            throughput: 4.0,
            steady_throughput: Some(4.0),
            phase1_time: 32.0,
            equality_time: 16.0,
            flags_time: 16.0,
            dispute_time: 0.0,
            dispute_rounds: 0,
            dispute_budget: 2,
            dispute_budget_exceeded: false,
            mismatch_instances: 0,
            defaulted_instances: 0,
            pairs: vec![(1, 2)],
            removed: vec![2],
            exposed_history: vec![(0, 2)],
            amortized_overhead: 16.0,
            all_correct: true,
            gamma1: 6,
            rho1: 4,
            bounds: None,
            latency: latency(),
            delivered: None,
            wall_ns: 200,
            plan_hits: 1,
            plan_misses: 1,
            plan_build_ns: 40,
            plan_repairs: 3,
            plan_full_recomputes: 1,
            plan_repair_ns: 60,
        }
    }

    fn outcome(index: usize, result: Result<JobMetrics, String>) -> JobOutcome {
        JobOutcome {
            index,
            n: 4,
            cap: 2,
            f: 1,
            symbols: 8,
            seed_index: 0,
            seed: 9,
            faulty: vec![2],
            candidates_tried: 1,
            candidates_failed: 0,
            candidate_error: None,
            result,
        }
    }

    #[test]
    fn aggregate_folds_ok_and_rejected() {
        let outcomes = vec![
            outcome(0, Ok(metrics())),
            outcome(1, Err("nope".into())),
            outcome(
                2,
                Ok(JobMetrics {
                    throughput: 2.0,
                    all_correct: false,
                    dispute_rounds: 3,
                    dispute_budget_exceeded: true,
                    ..metrics()
                }),
            ),
        ];
        let a = Aggregate::from_outcomes(&outcomes);
        assert_eq!((a.jobs, a.ok_jobs, a.rejected_jobs), (3, 2, 1));
        assert_eq!(a.mean_throughput, 3.0);
        assert_eq!((a.min_throughput, a.max_throughput), (2.0, 4.0));
        assert!(!a.all_correct);
        assert!(a.dispute_budget_violated, "3 > budget 2");
        assert_eq!(a.exposed_nodes, 2);
    }

    #[test]
    fn empty_aggregate_is_zeroed() {
        let a = Aggregate::from_outcomes(&[]);
        assert_eq!(a.min_throughput, 0.0);
        assert_eq!(a.mean_throughput, 0.0);
        assert!(a.all_correct);
    }

    #[test]
    fn json_shape_is_stable() {
        let report = SweepReport {
            scenario: "s".into(),
            topology: "complete:$n:$cap".into(),
            adversary: "honest".into(),
            faults: "none".into(),
            jobs: vec![outcome(0, Ok(metrics())), outcome(1, Err("bad".into()))],
            aggregate: Aggregate::from_outcomes(&[outcome(0, Ok(metrics()))]),
        };
        let j = report.to_json();
        assert!(j.starts_with("{\"scenario\":\"s\""));
        assert!(j.contains("\"metrics\":{\"instances\":2"));
        assert!(j.contains("\"error\":\"bad\""));
        // Candidate-failure fields only appear when a placement errored.
        assert!(!j.contains("candidates_failed"));
        let mut failing = outcome(2, Ok(metrics()));
        failing.candidates_failed = 1;
        failing.candidate_error = Some("placement [0]: boom".into());
        let solo = SweepReport {
            jobs: vec![failing],
            ..report.clone()
        };
        let j3 = solo.to_json();
        assert!(j3.contains("\"candidates_failed\":1"));
        assert!(j3.contains("\"candidate_error\":\"placement [0]: boom\""));
        assert!(j.contains("\"pairs\":[[1,2]]"));
        assert!(j.contains("\"aggregate\":{"));
        // Pretty form carries the same data.
        assert!(report.to_json_pretty().contains("\"throughput\": 4.0"));
        // The table renders one line per job.
        let t = report.summary_table();
        assert!(t.contains("rejected"));
        assert!(t.lines().count() >= 4);
    }

    #[test]
    fn wall_timings_only_appear_in_timed_json() {
        let report = SweepReport {
            scenario: "t".into(),
            topology: "complete:$n:$cap".into(),
            adversary: "honest".into(),
            faults: "none".into(),
            jobs: vec![outcome(0, Ok(metrics()))],
            aggregate: Aggregate::from_outcomes(&[outcome(0, Ok(metrics()))]),
        };
        // Canonical JSON stays timing- and cache-stat-free (the
        // determinism guarantee: cache state and scheduling must not
        // perturb it).
        let canonical = report.to_json();
        assert!(!canonical.contains("wall_"), "{canonical}");
        assert!(!canonical.contains("plan_"), "{canonical}");
        assert!(!canonical.contains("latency"), "{canonical}");
        assert!(!canonical.contains("delivered"), "{canonical}");
        assert!(
            !canonical.contains("\"metrics\":{\"counters\""),
            "{canonical}"
        );
        // Timed JSON carries the full per-phase breakdown plus totals
        // and the plan-cache counters.
        let timed = report.to_json_timed();
        for key in [
            "\"wall_phase1_ns\":100",
            "\"wall_equality_ns\":50",
            "\"wall_flags_ns\":25",
            "\"wall_dispute_ns\":0",
            "\"wall_total_ns\":200",
            "\"plan_cache_hits\":1",
            "\"plan_cache_misses\":1",
            "\"plan_build_ns\":40",
            "\"plan_repairs\":3",
            "\"plan_full_recomputes\":1",
            "\"plan_repair_ns\":60",
        ] {
            assert!(timed.contains(key), "missing {key} in {timed}");
        }
        // Per-job and aggregate latency distributions with percentiles.
        assert!(
            timed.contains("\"latency\":{\"phase1\":{\"count\":1,\"sum_ns\":100"),
            "{timed}"
        );
        for key in ["\"p50_ns\":", "\"p90_ns\":", "\"p99_ns\":"] {
            assert!(timed.contains(key), "missing {key} in {timed}");
        }
        // The report-level metrics section closes the timed document.
        assert!(timed.contains("\"metrics\":{\"counters\":{"), "{timed}");
        assert!(timed.contains("\"latency_phase1_ns\":{"), "{timed}");
        assert!(timed.ends_with("}}}"), "{timed}");
        assert!(report
            .to_json_pretty_timed()
            .contains("\"wall_total_ns\": 200"));
    }

    #[test]
    fn empty_histogram_serializes_zeroed_without_percentiles() {
        // A phase that never ran must not leak the internal u64::MAX
        // min sentinel or fabricate percentiles from zero samples.
        let empty = histogram_json(&Histogram::new()).render();
        assert_eq!(
            empty,
            "{\"count\":0,\"sum_ns\":0,\"min_ns\":0,\"max_ns\":0}"
        );
        assert!(!empty.contains("18446744073709551615"));
        assert!(!empty.contains("p50_ns"));
        // One sample brings the percentile keys back.
        let mut h = Histogram::new();
        h.record(7);
        let one = histogram_json(&h).render();
        assert!(one.contains("\"min_ns\":7"), "{one}");
        assert!(one.contains("\"p99_ns\":7"), "{one}");
        // The timed report renders the never-run dispute phase that way.
        let report = SweepReport {
            scenario: "t".into(),
            topology: "complete:$n:$cap".into(),
            adversary: "honest".into(),
            faults: "none".into(),
            jobs: vec![outcome(0, Ok(metrics()))],
            aggregate: Aggregate::from_outcomes(&[outcome(0, Ok(metrics()))]),
        };
        let timed = report.to_json_timed();
        assert!(
            timed.contains("\"dispute\":{\"count\":0,\"sum_ns\":0,\"min_ns\":0,\"max_ns\":0}"),
            "{timed}"
        );
        assert!(!timed.contains("18446744073709551615"), "{timed}");
    }

    #[test]
    fn delivered_times_appear_in_timed_json_only() {
        let mut m = metrics();
        let mut d = DeliveredTimes::default();
        d.phase1.record(1_000);
        d.instance.record(1_000);
        m.delivered = Some(d);
        let report = SweepReport {
            scenario: "net".into(),
            topology: "complete:$n:$cap".into(),
            adversary: "honest".into(),
            faults: "none".into(),
            jobs: vec![outcome(0, Ok(m.clone()))],
            aggregate: Aggregate::from_outcomes(&[outcome(0, Ok(m))]),
        };
        assert!(!report.to_json().contains("delivered"));
        let timed = report.to_json_timed();
        assert!(
            timed.contains("\"delivered\":{\"phase1\":{\"count\":1,\"sum_ns\":1000"),
            "{timed}"
        );
        // The aggregate block carries the merged distributions too.
        assert_eq!(timed.matches("\"delivered\":{").count(), 2, "{timed}");
    }

    #[test]
    fn phase_latency_records_only_phases_that_ran() {
        use nab::engine::{PhaseTimes, PhaseWallNanos};
        use std::collections::BTreeMap;
        let rep = |defaulted: bool, rho_k: u64, dispute_ran: bool| InstanceReport {
            outputs: BTreeMap::new(),
            times: PhaseTimes::default(),
            wall: PhaseWallNanos {
                phase1: 10,
                equality: 20,
                flags: 30,
                dispute: 40,
            },
            gamma_k: 1,
            rho_k,
            mismatch_detected: dispute_ran,
            dispute_ran,
            new_pairs: Vec::new(),
            newly_removed: Vec::new(),
            defaulted,
            delivered: None,
        };
        let mut lat = PhaseLatency::default();
        lat.record_instance(&rep(false, 4, true)); // full instance
        lat.record_instance(&rep(false, 0, false)); // phase-1-only fast path
        lat.record_instance(&rep(true, 0, false)); // defaulted
        assert_eq!(lat.phase1.count(), 2);
        assert_eq!(lat.equality.count(), 1);
        assert_eq!(lat.flags.count(), 1);
        assert_eq!(lat.dispute.count(), 1);
        assert_eq!(lat.instance.count(), 3);
        assert_eq!(lat.phase1.sum(), 20);
        assert_eq!(lat.dispute.sum(), 40);

        // Aggregate merge accumulates distributions over jobs.
        let a = Aggregate::from_outcomes(&[outcome(0, Ok(metrics())), outcome(1, Ok(metrics()))]);
        assert_eq!(a.latency.phase1.count(), 2);
        assert_eq!(a.latency.phase1.sum(), 200);
    }
}
