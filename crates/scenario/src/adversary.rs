//! Per-node adversary strategy specs, resolved to live
//! [`NabAdversary`] instances per job.

use nab::adversary::{
    EqualityGarbler, EquivocatingSource, FalseAlarm, FramingCollusion, HonestStrategy,
    LyingCorruptor, NabAdversary, RandomStrategy, TruthfulCorruptor,
};
use nab_gf::Gf2_16;
use nab_netgraph::NodeId;

/// A declarative adversary strategy.
#[derive(Debug, Clone, PartialEq)]
pub enum AdversarySpec {
    /// Faulty nodes follow the protocol ("crash-like" faults).
    Honest,
    /// Corrupt Phase-1 forwards, tell the truth in dispute control.
    Corruptor,
    /// Corrupt Phase-1 forwards and lie in dispute control.
    Liar,
    /// Announce MISMATCH on clean instances (the amortization attack).
    FalseAlarm,
    /// A source that equivocates across arborescences.
    Equivocate,
    /// Garble equality-check symbols only.
    Garbler,
    /// Corrupt each hook independently with probability `p`.
    Random {
        /// Per-hook corruption probability.
        p: f64,
    },
    /// Two colluding faulty nodes frame an innocent `scapegoat`.
    Collude {
        /// The fault-free node the colluders implicate.
        scapegoat: NodeId,
        /// The faulty node that corrupts Phase 1.
        corruptor: NodeId,
    },
    /// Chaos-testing hook: the adversary **panics** the first time a
    /// faulty node acts. Not a protocol attack — it exists to exercise
    /// the sweep runner's per-job panic isolation (a panicking job must
    /// become a job-level error, never take down the sweep).
    ChaosPanic,
}

/// The live strategy behind [`AdversarySpec::ChaosPanic`].
struct PanicInjector;

impl NabAdversary for PanicInjector {
    fn phase1_source_block(
        &mut self,
        tree: usize,
        child: NodeId,
        _honest: &[Gf2_16],
    ) -> Vec<Gf2_16> {
        // nab-lint: allow(NAB003): chaos-panic adversary panics by design; harness catches the unwind
        panic!("chaos-panic adversary fired (source block, tree {tree}, child {child})");
    }

    fn phase1_forward(
        &mut self,
        node: NodeId,
        tree: usize,
        _child: NodeId,
        _honest: &[Gf2_16],
    ) -> Vec<Gf2_16> {
        // nab-lint: allow(NAB003): chaos-panic adversary panics by design; harness catches the unwind
        panic!("chaos-panic adversary fired (forward, node {node}, tree {tree})");
    }

    fn equality_symbols(&mut self, src: NodeId, _dst: NodeId, _honest: &[Gf2_16]) -> Vec<Gf2_16> {
        panic!("chaos-panic adversary fired (equality, node {src})"); // nab-lint: allow(NAB003): chaos-panic adversary panics by design; harness catches the unwind
    }

    fn flag(&mut self, node: NodeId, _honest: bool) -> bool {
        panic!("chaos-panic adversary fired (flag, node {node})"); // nab-lint: allow(NAB003): chaos-panic adversary panics by design; harness catches the unwind
    }
}

impl AdversarySpec {
    /// Parses specs like `honest`, `random:0.3`, `collude:3:2`.
    pub fn parse(spec: &str) -> Result<Self, String> {
        let parts: Vec<&str> = spec.split(':').collect();
        match parts[0] {
            "honest" if parts.len() == 1 => Ok(AdversarySpec::Honest),
            "corruptor" if parts.len() == 1 => Ok(AdversarySpec::Corruptor),
            "liar" if parts.len() == 1 => Ok(AdversarySpec::Liar),
            "false-alarm" if parts.len() == 1 => Ok(AdversarySpec::FalseAlarm),
            "equivocate" if parts.len() == 1 => Ok(AdversarySpec::Equivocate),
            "garbler" if parts.len() == 1 => Ok(AdversarySpec::Garbler),
            "random" => {
                let p: f64 = match parts.len() {
                    1 => 0.5,
                    2 => parts[1]
                        .parse()
                        .map_err(|_| format!("adversary random: bad probability {:?}", parts[1]))?,
                    _ => return Err("adversary random takes one parameter: random:P".into()),
                };
                if !(0.0..=1.0).contains(&p) {
                    return Err(format!("adversary random: probability {p} outside [0,1]"));
                }
                Ok(AdversarySpec::Random { p })
            }
            "collude" if parts.len() == 3 => {
                let scapegoat = parts[1]
                    .parse()
                    .map_err(|_| format!("adversary collude: bad scapegoat id {:?}", parts[1]))?;
                let corruptor = parts[2]
                    .parse()
                    .map_err(|_| format!("adversary collude: bad corruptor id {:?}", parts[2]))?;
                Ok(AdversarySpec::Collude {
                    scapegoat,
                    corruptor,
                })
            }
            "chaos-panic" if parts.len() == 1 => Ok(AdversarySpec::ChaosPanic),
            other => Err(format!(
                "unknown adversary {other:?} (known: honest, corruptor, liar, false-alarm, \
                 equivocate, garbler, random:P, collude:SCAPEGOAT:CORRUPTOR, chaos-panic)"
            )),
        }
    }

    /// The canonical spec string this adversary parses from.
    pub fn spec_string(&self) -> String {
        match self {
            AdversarySpec::Honest => "honest".into(),
            AdversarySpec::Corruptor => "corruptor".into(),
            AdversarySpec::Liar => "liar".into(),
            AdversarySpec::FalseAlarm => "false-alarm".into(),
            AdversarySpec::Equivocate => "equivocate".into(),
            AdversarySpec::Garbler => "garbler".into(),
            AdversarySpec::Random { p } => format!("random:{p}"),
            AdversarySpec::Collude {
                scapegoat,
                corruptor,
            } => format!("collude:{scapegoat}:{corruptor}"),
            AdversarySpec::ChaosPanic => "chaos-panic".into(),
        }
    }

    /// Checks the strategy is meaningful for a concrete network and fault
    /// placement. Only `collude` carries node ids: its corruptor must
    /// actually be faulty (adversary hooks fire only for faulty nodes)
    /// and its scapegoat must be an existing fault-free node — otherwise
    /// the "attack" silently never executes and the run measures an
    /// honest deployment.
    ///
    /// # Errors
    ///
    /// Returns why the strategy cannot act.
    pub fn validate_for(
        &self,
        n: usize,
        faulty: &std::collections::BTreeSet<NodeId>,
    ) -> Result<(), String> {
        let AdversarySpec::Collude {
            scapegoat,
            corruptor,
        } = self
        else {
            return Ok(());
        };
        if *scapegoat >= n || *corruptor >= n {
            return Err(format!(
                "collude:{scapegoat}:{corruptor} names a node outside 0..{n}"
            ));
        }
        if !faulty.contains(corruptor) {
            return Err(format!(
                "collude corruptor {corruptor} is not in the faulty set {faulty:?}, \
                 so the attack would never execute"
            ));
        }
        if faulty.contains(scapegoat) {
            return Err(format!(
                "collude scapegoat {scapegoat} must be fault-free, but it is in the \
                 faulty set {faulty:?}"
            ));
        }
        Ok(())
    }

    /// Instantiates the strategy for one job; randomized strategies are
    /// seeded from the job's deterministic seed.
    pub fn build(&self, job_seed: u64) -> Box<dyn NabAdversary> {
        match self {
            AdversarySpec::Honest => Box::new(HonestStrategy),
            AdversarySpec::Corruptor => Box::new(TruthfulCorruptor),
            AdversarySpec::Liar => Box::new(LyingCorruptor),
            AdversarySpec::FalseAlarm => Box::new(FalseAlarm),
            AdversarySpec::Equivocate => Box::new(EquivocatingSource),
            AdversarySpec::Garbler => Box::new(EqualityGarbler),
            AdversarySpec::Random { p } => Box::new(RandomStrategy::new(
                job_seed ^ 0x6164_7665_7273_6172, // "adversar"
                *p,
            )),
            AdversarySpec::Collude {
                scapegoat,
                corruptor,
            } => Box::new(FramingCollusion {
                scapegoat: *scapegoat,
                corruptor: *corruptor,
            }),
            AdversarySpec::ChaosPanic => Box::new(PanicInjector),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_roundtrips() {
        for s in [
            "honest",
            "corruptor",
            "liar",
            "false-alarm",
            "equivocate",
            "garbler",
            "random:0.25",
            "collude:3:2",
            "chaos-panic",
        ] {
            let a = AdversarySpec::parse(s).unwrap();
            assert_eq!(a.spec_string(), s);
        }
    }

    #[test]
    fn bad_specs_are_errors() {
        assert!(AdversarySpec::parse("evil").is_err());
        assert!(AdversarySpec::parse("random:2.0").is_err());
        assert!(AdversarySpec::parse("random:x").is_err());
        assert!(AdversarySpec::parse("collude:1").is_err());
        assert!(AdversarySpec::parse("honest:1").is_err());
    }

    #[test]
    fn collude_validation_requires_a_faulty_corruptor_and_honest_scapegoat() {
        use std::collections::BTreeSet;
        let spec = AdversarySpec::Collude {
            scapegoat: 3,
            corruptor: 1,
        };
        let faulty = BTreeSet::from([1, 2]);
        assert!(spec.validate_for(7, &faulty).is_ok());
        // Corruptor not faulty → the attack would never run.
        let e = spec.validate_for(7, &BTreeSet::from([2])).unwrap_err();
        assert!(e.contains("never execute"), "{e}");
        // Scapegoat faulty → nothing to frame.
        let e = spec.validate_for(7, &BTreeSet::from([1, 3])).unwrap_err();
        assert!(e.contains("fault-free"), "{e}");
        // Ids outside the graph.
        let e = spec.validate_for(3, &faulty).unwrap_err();
        assert!(e.contains("outside"), "{e}");
        // Non-collude strategies have nothing to validate.
        assert!(AdversarySpec::Honest.validate_for(1, &faulty).is_ok());
    }

    #[test]
    fn build_produces_working_strategies() {
        use nab_gf::field::Field;
        use nab_gf::Gf2_16;
        let block = vec![Gf2_16::ONE, Gf2_16::ZERO];
        // Honest is the identity on forwards; corruptor is not.
        let mut honest = AdversarySpec::Honest.build(1);
        assert_eq!(honest.phase1_forward(1, 0, 2, &block), block);
        let mut corr = AdversarySpec::Corruptor.build(1);
        assert_ne!(corr.phase1_forward(1, 0, 2, &block), block);
        // p=1 random always corrupts the flag.
        let mut rnd = AdversarySpec::Random { p: 1.0 }.build(1);
        assert!(rnd.flag(0, false));
    }
}
