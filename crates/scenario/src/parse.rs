//! The `.scenario` text format.
//!
//! One `key = value` assignment per line; `#` starts a comment; blank
//! lines are ignored. Unknown keys and malformed values are hard errors
//! with line numbers, so a typo'd scenario fails loudly instead of
//! silently running defaults. See `docs/scenarios.md` for the complete
//! reference, and `scenarios/` for the bundled library.
//!
//! ```text
//! # Throughput sweep on heterogeneous meshes under a framing collusion.
//! name      = hetero-collusion
//! topology  = hetero:$n:1:$cap
//! broadcast = eig
//! adversary = collude:3:2
//! faults    = fixed:1,2
//! q         = 6
//! symbols   = 16,64
//! n         = 5,6
//! cap       = 4,8
//! f         = 2
//! seeds     = 3
//! seed0     = 11
//! bounds    = true
//! ```

use nab::BroadcastKind;

use crate::adversary::AdversarySpec;
use crate::faults::FaultSchedule;
use crate::mutations::MutationSchedule;
use crate::spec::ScenarioSpec;
use crate::topology::TopologyTemplate;

/// A parse failure, locating the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number (0 for whole-file errors).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parses a `.scenario` document.
///
/// # Errors
///
/// Returns the first malformed line.
pub fn parse_str(text: &str) -> Result<ScenarioSpec, ParseError> {
    let mut spec = ScenarioSpec::default();
    let mut seen: std::collections::BTreeMap<String, usize> = std::collections::BTreeMap::new();
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = match raw.find('#') {
            Some(pos) => &raw[..pos],
            None => raw,
        }
        .trim();
        if line.is_empty() {
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| err(lineno, format!("expected `key = value`, got {line:?}")))?;
        let (key, value) = (key.trim(), value.trim());
        if value.is_empty() {
            return Err(err(lineno, format!("key {key:?} has an empty value")));
        }
        if let Some(prev) = seen.insert(key.to_string(), lineno) {
            return Err(err(
                lineno,
                format!("duplicate key {key:?} (first set on line {prev})"),
            ));
        }
        match key {
            "name" => spec.name = value.to_string(),
            "topology" => {
                spec.topology = TopologyTemplate::parse(value).map_err(|e| err(lineno, e))?
            }
            "broadcast" => {
                spec.broadcast = match value {
                    "eig" => BroadcastKind::Eig,
                    "phase-king" => BroadcastKind::PhaseKing,
                    other => {
                        return Err(err(
                            lineno,
                            format!("unknown broadcast {other:?} (known: eig, phase-king)"),
                        ))
                    }
                }
            }
            "adversary" => {
                spec.adversary = AdversarySpec::parse(value).map_err(|e| err(lineno, e))?
            }
            "faults" => spec.faults = FaultSchedule::parse(value).map_err(|e| err(lineno, e))?,
            "mutations" => {
                spec.mutations = MutationSchedule::parse(value).map_err(|e| err(lineno, e))?
            }
            "q" => spec.q = parse_num(lineno, key, value)?,
            "streams" => spec.streams = parse_num(lineno, key, value)?,
            "n" => spec.n = parse_list(lineno, key, value)?,
            "cap" => spec.cap = parse_list(lineno, key, value)?,
            "f" => spec.f = parse_list(lineno, key, value)?,
            "symbols" => spec.symbols = parse_list(lineno, key, value)?,
            "seeds" => spec.seeds = parse_num(lineno, key, value)?,
            "seed0" => spec.seed0 = parse_num(lineno, key, value)?,
            "bounds" => spec.bounds = parse_bool(lineno, key, value)?,
            "bounds_budget" => spec.bounds_budget = parse_num(lineno, key, value)?,
            "threads" => spec.threads = parse_num(lineno, key, value)?,
            "plan_cache" => spec.plan_cache = parse_bool(lineno, key, value)?,
            "plan_repair" => spec.plan_repair = parse_bool(lineno, key, value)?,
            "link_model" => {
                spec.link_model = nab_net::NetSpec::parse(value).map_err(|e| err(lineno, e))?
            }
            "net" => spec.net = parse_bool(lineno, key, value)?,
            "batch" => spec.batch = parse_bool(lineno, key, value)?,
            other => {
                return Err(err(
                    lineno,
                    format!(
                        "unknown key {other:?} (known: name, topology, broadcast, adversary, \
                         faults, mutations, q, streams, n, cap, f, symbols, seeds, seed0, \
                         bounds, bounds_budget, threads, plan_cache, plan_repair, link_model, \
                         net, batch)"
                    ),
                ))
            }
        }
    }
    spec.validate().map_err(|e| err(0, e))?;
    Ok(spec)
}

/// Loads and parses a `.scenario` file.
///
/// # Errors
///
/// Returns I/O failures (as a line-0 error naming the path) and parse
/// failures.
pub fn load(path: &str) -> Result<ScenarioSpec, ParseError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| err(0, format!("cannot read scenario {path:?}: {e}")))?;
    parse_str(&text)
}

fn parse_bool(line: usize, key: &str, value: &str) -> Result<bool, ParseError> {
    match value {
        "true" | "on" | "yes" => Ok(true),
        "false" | "off" | "no" => Ok(false),
        other => Err(err(line, format!("key {key:?}: bad boolean {other:?}"))),
    }
}

fn parse_num<T: std::str::FromStr>(line: usize, key: &str, value: &str) -> Result<T, ParseError> {
    value
        .parse()
        .map_err(|_| err(line, format!("key {key:?}: bad number {value:?}")))
}

fn parse_list<T: std::str::FromStr>(
    line: usize,
    key: &str,
    value: &str,
) -> Result<Vec<T>, ParseError> {
    value
        .split(',')
        .map(|part| {
            part.trim()
                .parse()
                .map_err(|_| err(line, format!("key {key:?}: bad list entry {part:?}")))
        })
        .collect()
}

/// Renders a spec back to the `.scenario` format (canonical form).
pub fn to_scenario_string(spec: &ScenarioSpec) -> String {
    fn list<T: std::fmt::Display>(items: &[T]) -> String {
        items
            .iter()
            .map(|x| x.to_string())
            .collect::<Vec<_>>()
            .join(",")
    }
    let broadcast = match spec.broadcast {
        BroadcastKind::Eig => "eig",
        BroadcastKind::PhaseKing => "phase-king",
    };
    format!(
        "name = {}\ntopology = {}\nbroadcast = {}\nadversary = {}\nfaults = {}\n\
         mutations = {}\nq = {}\nstreams = {}\nn = {}\ncap = {}\nf = {}\nsymbols = {}\n\
         seeds = {}\nseed0 = {}\nbounds = {}\nbounds_budget = {}\nthreads = {}\n\
         plan_cache = {}\nplan_repair = {}\nlink_model = {}\nnet = {}\nbatch = {}\n",
        spec.name,
        spec.topology.spec_string(),
        broadcast,
        spec.adversary.spec_string(),
        spec.faults.spec_string(),
        spec.mutations.spec_string(),
        spec.q,
        spec.streams,
        list(&spec.n),
        list(&spec.cap),
        list(&spec.f),
        list(&spec.symbols),
        spec.seeds,
        spec.seed0,
        spec.bounds,
        spec.bounds_budget,
        spec.threads,
        spec.plan_cache,
        spec.plan_repair,
        spec.link_model.spec_string(),
        spec.net,
        spec.batch,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::Tok;
    use std::collections::BTreeSet;

    const FULL: &str = r#"
# A full scenario exercising every key.
name = full          # trailing comments work too
topology = kconnected:$n:2f+1:$cap:25
broadcast = phase-king
adversary = random:0.3
faults = rotating:1
q = 5
streams = 2
n = 5, 7
cap = 1,2,4
f = 1
symbols = 8,32
seeds = 2
seed0 = 13
bounds = true
bounds_budget = 4096
threads = 2
"#;

    #[test]
    fn full_document_parses() {
        let s = parse_str(FULL).unwrap();
        assert_eq!(s.name, "full");
        assert_eq!(
            s.topology,
            TopologyTemplate::KConnected {
                n: Tok::N,
                k: Tok::TwoFPlusOne,
                max_cap: Tok::Cap,
                extra_pct: Tok::Lit(25),
            }
        );
        assert_eq!(s.broadcast, BroadcastKind::PhaseKing);
        assert_eq!(s.adversary, AdversarySpec::Random { p: 0.3 });
        assert_eq!(s.faults, FaultSchedule::Rotating { count: 1 });
        assert_eq!((s.q, s.streams), (5, 2));
        assert_eq!(s.n, vec![5, 7]);
        assert_eq!(s.cap, vec![1, 2, 4]);
        assert_eq!(s.symbols, vec![8, 32]);
        assert_eq!((s.seeds, s.seed0), (2, 13));
        assert!(s.bounds);
        assert_eq!(s.bounds_budget, 4096);
        assert_eq!(s.threads, 2);
        assert_eq!(s.job_count(), (2 * 3) * 2 * 2);
    }

    #[test]
    fn roundtrip_through_canonical_form() {
        let s = parse_str(FULL).unwrap();
        let text = to_scenario_string(&s);
        assert_eq!(parse_str(&text).unwrap(), s);
    }

    #[test]
    fn defaults_fill_unset_keys() {
        let s = parse_str("name = tiny\n").unwrap();
        assert_eq!(s.q, 8);
        assert_eq!(s.n, vec![4]);
        assert_eq!(s.faults, FaultSchedule::None);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse_str("name = x\nbogus-key = 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("unknown key"));
        let e = parse_str("topology = torus:3\n").unwrap_err();
        assert_eq!(e.line, 1);
        let e = parse_str("q = many\n").unwrap_err();
        assert!(e.message.contains("bad number"));
        let e = parse_str("name = x\nq 9\n").unwrap_err();
        assert!(e.message.contains("key = value"));
    }

    #[test]
    fn plan_cache_key_parses_and_defaults_on() {
        let s = parse_str("name = x\n").unwrap();
        assert!(s.plan_cache, "plan cache is on by default");
        let s = parse_str("name = x\nplan_cache = off\n").unwrap();
        assert!(!s.plan_cache);
        let e = parse_str("name = x\nplan_cache = maybe\n").unwrap_err();
        assert!(e.message.contains("bad boolean"), "{e}");
    }

    #[test]
    fn plan_repair_key_parses_and_defaults_on() {
        let s = parse_str("name = x\n").unwrap();
        assert!(s.plan_repair, "plan repair is on by default");
        let s = parse_str("name = x\nplan_repair = off\n").unwrap();
        assert!(!s.plan_repair);
        let e = parse_str("name = x\nplan_repair = 7\n").unwrap_err();
        assert!(e.message.contains("bad boolean"), "{e}");
    }

    #[test]
    fn mutations_key_parses_and_defaults_none() {
        let s = parse_str("name = x\n").unwrap();
        assert_eq!(s.mutations, MutationSchedule::None);
        let s = parse_str("name = x\nmutations = flap:4:2:50\n").unwrap();
        assert_eq!(
            s.mutations,
            MutationSchedule::Flap {
                every: 4,
                links: 2,
                pct: 50
            }
        );
        let e = parse_str("name = x\nmutations = degrade:4:2\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("3 parameters"), "{e}");
    }

    #[test]
    fn batch_key_parses_and_defaults_on() {
        let s = parse_str("name = x\n").unwrap();
        assert!(s.batch, "batched execution is on by default");
        let s = parse_str("name = x\nbatch = off\n").unwrap();
        assert!(!s.batch);
        let e = parse_str("name = x\nbatch = 2\n").unwrap_err();
        assert!(e.message.contains("bad boolean"), "{e}");
    }

    #[test]
    fn duplicate_keys_are_errors() {
        let e = parse_str("name = x\nq = 5\nq = 1\n").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("duplicate key \"q\""), "{e}");
        assert!(e.message.contains("line 2"), "{e}");
    }

    #[test]
    fn fixed_fault_sets_parse_into_sorted_sets() {
        let s = parse_str("name = x\nfaults = fixed:3,1\n").unwrap();
        assert_eq!(s.faults, FaultSchedule::Fixed(BTreeSet::from([1, 3])));
    }

    #[test]
    fn whole_file_validation_runs() {
        let e = parse_str("name = x\nn = 4\nq = 0\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.message.contains("q"));
    }
}
