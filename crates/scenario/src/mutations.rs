//! Mid-sweep topology mutation schedules.
//!
//! Datacenter fabrics are not static: optical circuit switches re-provision
//! link rates between traffic epochs, failures degrade links, and
//! maintenance restores them. A [`MutationSchedule`] models this inside one
//! job's instance stream: every `every` instances the job's network is
//! re-derived (capacity-only — the node and edge sets never change, so
//! accumulated dispute state stays meaningful) and the engines migrate to
//! the new network's plan.
//!
//! Every mutation is a deterministic function of `(base graph, epoch,
//! job seed)`, so sweeps stay bit-identical across worker-thread counts;
//! and because [`MutationSchedule::Flap`] alternates between exactly two
//! capacity profiles, its plans land on the same content-addressed
//! `PlanCache` entries every other epoch — the access pattern the
//! persistent plan cache is designed for.

use nab_netgraph::DiGraph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// How (and how often) a job's network mutates between instance epochs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationSchedule {
    /// The network never changes (the default).
    None,
    /// Every `every` instances, `links` random links lose `pct`% of their
    /// capacity (cumulative across epochs, clamped to ≥ 1).
    Degrade {
        /// Instances per epoch.
        every: usize,
        /// Links mutated per epoch.
        links: usize,
        /// Capacity reduction percent (1–99).
        pct: u64,
    },
    /// Every `every` instances, `links` random links gain `pct`% capacity
    /// (cumulative across epochs, rounded up so a boost always boosts).
    Boost {
        /// Instances per epoch.
        every: usize,
        /// Links mutated per epoch.
        links: usize,
        /// Capacity increase percent (≥ 1).
        pct: u64,
    },
    /// OCS-style flapping: odd epochs degrade `links` links by `pct`%,
    /// even epochs restore the base capacities — the network alternates
    /// between exactly two profiles.
    Flap {
        /// Instances per epoch.
        every: usize,
        /// Links mutated per odd epoch.
        links: usize,
        /// Capacity reduction percent (1–99).
        pct: u64,
    },
}

impl MutationSchedule {
    /// Parses specs like `none`, `degrade:8:4:50`, `boost:8:4:100`, or
    /// `flap:8:4:50` (`KIND:EVERY:LINKS:PCT`).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, rest) = match spec.split_once(':') {
            Some((k, r)) => (k, Some(r)),
            None => (spec, None),
        };
        if kind == "none" {
            return match rest {
                None => Ok(MutationSchedule::None),
                Some(_) => Err("mutations none takes no parameters".into()),
            };
        }
        let rest = rest
            .ok_or_else(|| format!("mutations {kind} needs EVERY:LINKS:PCT, e.g. {kind}:8:4:50"))?;
        let parts: Vec<&str> = rest.split(':').collect();
        if parts.len() != 3 {
            return Err(format!(
                "mutations {kind} takes 3 parameters (EVERY:LINKS:PCT), got {}",
                parts.len()
            ));
        }
        let num = |i: usize, what: &str| -> Result<u64, String> {
            parts[i]
                .parse()
                .map_err(|_| format!("mutations {kind}: bad {what} {:?}", parts[i]))
        };
        let every = num(0, "epoch length")? as usize;
        let links = num(1, "link count")? as usize;
        let pct = num(2, "percent")?;
        if every == 0 || links == 0 || pct == 0 {
            return Err(format!(
                "mutations {kind}: EVERY, LINKS, and PCT must all be ≥ 1"
            ));
        }
        match kind {
            "degrade" | "flap" if pct > 99 => Err(format!(
                "mutations {kind}: PCT must be ≤ 99 (a link never vanishes, it degrades)"
            )),
            "degrade" => Ok(MutationSchedule::Degrade { every, links, pct }),
            "boost" => Ok(MutationSchedule::Boost { every, links, pct }),
            "flap" => Ok(MutationSchedule::Flap { every, links, pct }),
            other => Err(format!(
                "unknown mutation schedule {other:?} (known: none, degrade:EVERY:LINKS:PCT, \
                 boost:EVERY:LINKS:PCT, flap:EVERY:LINKS:PCT)"
            )),
        }
    }

    /// The canonical spec string this schedule parses from.
    pub fn spec_string(&self) -> String {
        match self {
            MutationSchedule::None => "none".into(),
            MutationSchedule::Degrade { every, links, pct } => {
                format!("degrade:{every}:{links}:{pct}")
            }
            MutationSchedule::Boost { every, links, pct } => format!("boost:{every}:{links}:{pct}"),
            MutationSchedule::Flap { every, links, pct } => format!("flap:{every}:{links}:{pct}"),
        }
    }

    /// The epoch instance `inst` falls into (always 0 for `none`).
    pub fn epoch(&self, inst: usize) -> usize {
        match self {
            MutationSchedule::None => 0,
            MutationSchedule::Degrade { every, .. }
            | MutationSchedule::Boost { every, .. }
            | MutationSchedule::Flap { every, .. } => inst / every,
        }
    }

    /// The network for `epoch`, derived from the base graph and the job
    /// seed. Epoch 0 is always the base graph; later epochs apply the
    /// schedule's capacity rewrites. Pure function — calling it twice
    /// yields equal graphs, which is what lets mutated plans share
    /// `PlanCache` entries.
    pub fn graph_for_epoch(&self, base: &DiGraph, epoch: usize, seed: u64) -> DiGraph {
        let mut g = base.clone();
        match *self {
            MutationSchedule::None => {}
            MutationSchedule::Degrade { links, pct, .. } => {
                for round in 1..=epoch {
                    rewrite_caps(&mut g, links, seed, round as u64, |cap| {
                        (cap * (100 - pct) / 100).max(1)
                    });
                }
            }
            MutationSchedule::Boost { links, pct, .. } => {
                for round in 1..=epoch {
                    rewrite_caps(&mut g, links, seed, round as u64, |cap| {
                        (cap * (100 + pct)).div_ceil(100)
                    });
                }
            }
            MutationSchedule::Flap { links, pct, .. } => {
                // Odd epochs all apply the SAME degraded profile (round
                // key 1), so the job alternates between two graphs.
                if epoch % 2 == 1 {
                    rewrite_caps(&mut g, links, seed, 1, |cap| {
                        (cap * (100 - pct) / 100).max(1)
                    });
                }
            }
        }
        g
    }
}

/// Applies `f` to the capacities of `links` deterministically chosen live
/// edges. Selection draws edge positions from an RNG keyed by `(seed,
/// round)`; duplicates re-apply `f`, which keeps the draw count fixed (and
/// therefore the selection deterministic) without rejection loops.
fn rewrite_caps(g: &mut DiGraph, links: usize, seed: u64, round: u64, f: impl Fn(u64) -> u64) {
    let ids: Vec<usize> = g.edges().map(|(id, _)| id).collect();
    if ids.is_empty() {
        return;
    }
    let mut rng = StdRng::seed_from_u64(
        seed ^ round.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x6D75_7461_7465, // "mutate"
    );
    for _ in 0..links {
        let id = ids[rng.gen_range(0..ids.len())];
        let cap = g.edge(id).expect("selected edge is live").cap; // nab-lint: allow(NAB003): edge id was drawn from the live edge list above
        g.set_edge_cap(id, f(cap));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nab_netgraph::gen;

    #[test]
    fn parse_roundtrips() {
        for s in ["none", "degrade:8:4:50", "boost:4:2:100", "flap:6:3:30"] {
            let m = MutationSchedule::parse(s).unwrap();
            assert_eq!(m.spec_string(), s);
        }
    }

    #[test]
    fn bad_specs_are_errors() {
        for bad in [
            "degrade",
            "degrade:8:4",
            "degrade:8:4:0",
            "degrade:8:4:100",
            "flap:8:4:250",
            "boost:0:1:10",
            "sometimes:1:2:3",
            "none:1",
        ] {
            assert!(MutationSchedule::parse(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn epochs_partition_the_instance_stream() {
        let m = MutationSchedule::parse("degrade:4:1:50").unwrap();
        assert_eq!(m.epoch(0), 0);
        assert_eq!(m.epoch(3), 0);
        assert_eq!(m.epoch(4), 1);
        assert_eq!(m.epoch(11), 2);
        assert_eq!(MutationSchedule::None.epoch(999), 0);
    }

    #[test]
    fn epoch_zero_is_the_base_graph() {
        let base = gen::complete(5, 8);
        for spec in ["degrade:2:3:50", "boost:2:3:50", "flap:2:3:50"] {
            let m = MutationSchedule::parse(spec).unwrap();
            assert_eq!(m.graph_for_epoch(&base, 0, 42), base, "{spec}");
        }
    }

    #[test]
    fn mutations_are_deterministic_and_capacity_only() {
        let base = gen::complete(6, 10);
        let m = MutationSchedule::parse("degrade:2:5:40").unwrap();
        let a = m.graph_for_epoch(&base, 3, 7);
        let b = m.graph_for_epoch(&base, 3, 7);
        assert_eq!(a, b, "pure function of (base, epoch, seed)");
        assert_ne!(a, base, "epoch 3 has degraded links");
        assert_eq!(a.node_count(), base.node_count());
        assert_eq!(a.edge_count(), base.edge_count());
        // Degradation is monotone per link and clamped ≥ 1.
        for ((id, ea), (_, eb)) in a.edges().zip(base.edges()) {
            assert!(ea.cap <= eb.cap, "edge {id} grew under degrade");
            assert!(ea.cap >= 1);
        }
        // A different seed mutates different links.
        let c = m.graph_for_epoch(&base, 3, 8);
        assert_ne!(a, c);
    }

    #[test]
    fn boost_raises_capacities() {
        let base = gen::complete(5, 1);
        let m = MutationSchedule::parse("boost:1:4:50").unwrap();
        let g = m.graph_for_epoch(&base, 1, 3);
        assert!(g.edges().any(|(_, e)| e.cap > 1), "cap-1 links still boost");
        for (_, e) in g.edges() {
            assert!(e.cap >= 1);
        }
    }

    #[test]
    fn flap_alternates_between_exactly_two_profiles() {
        let base = gen::complete(6, 8);
        let m = MutationSchedule::parse("flap:2:4:50").unwrap();
        let e0 = m.graph_for_epoch(&base, 0, 9);
        let e1 = m.graph_for_epoch(&base, 1, 9);
        let e2 = m.graph_for_epoch(&base, 2, 9);
        let e3 = m.graph_for_epoch(&base, 3, 9);
        assert_eq!(e0, base);
        assert_eq!(e2, base, "even epochs restore the base profile");
        assert_eq!(e1, e3, "odd epochs reuse one degraded profile");
        assert_ne!(e1, base);
    }
}
